// Command optimize regenerates the paper's deployment-optimization
// experiments: Table I (minimum-cost machine selection per flow stage
// under total-runtime constraints, with NA for infeasible deadlines)
// and Fig. 6 (cost and runtime of the optimizer against the
// over-provisioning and under-provisioning baselines on four designs).
// With -execute it additionally runs the optimized plan through the
// fleet scheduler — each stage placed on its knapsack-chosen instance
// — and prints predicted versus simulated per-stage runtimes and
// bills. With -batch it co-optimizes several flows against one shared
// bounded fleet (shadow prices on contended instance types over each
// job's knapsack), prints the contention-aware forecast, verifies it
// against the fleet simulation, and compares the joint plan with
// independently optimized plans executed on the same fleet.
//
// Usage:
//
//	optimize -table1 -design sparc_core
//	optimize -figure6
//	optimize -table1 -deadlines 10000,6000,5645,5000
//	optimize -execute -design ibex -deadline 250
//	optimize -execute -fleet gp.1x=1,mem.8x=2 -minbill 60
//	optimize -batch -designs ibex,aes,ibex -fleet gp.1x=1,gp.8x=1,mem.1x=1,mem.8x=1
//	optimize -spot -designs aes,jpeg -slack 1.15 -hazard-seed 2 -hazard-rate 240
//
// -spot is the preemptible-fleet experiment: the same batch planned
// three ways — on-demand only, naively on spot prices, and with
// revocation-risk-adjusted expected cost — then executed under the
// same seeded revocation timelines, so the realized bills and missed
// deadlines of the three strategies are directly comparable.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"edacloud/internal/cache"
	"edacloud/internal/cloud"
	"edacloud/internal/core"
	"edacloud/internal/flow"
	"edacloud/internal/mckp"
	"edacloud/internal/techlib"
)

func main() {
	design := flag.String("design", "sparc_core", "design for Table I / plan execution")
	scale := flag.Float64("scale", 0.03, "design scale factor")
	table1 := flag.Bool("table1", false, "regenerate Table I")
	figure6 := flag.Bool("figure6", false, "regenerate Figure 6")
	execute := flag.Bool("execute", false, "execute the optimized plan on a fleet and compare against the prediction")
	batch := flag.Bool("batch", false, "co-optimize a batch of flows against one shared fleet")
	spot := flag.Bool("spot", false, "compare on-demand, naive-spot and risk-adjusted batch plans under seeded revocations")
	hazardSeed := flag.Int64("hazard-seed", 1, "revocation timeline seed for -spot")
	hazardRate := flag.Float64("hazard-rate", 240, "revocations per spot-instance-hour for -spot")
	designList := flag.String("designs", "ibex,aes,ibex", "comma-separated designs for -batch (repeats allowed)")
	deadlineList := flag.String("deadlines", "", "comma-separated deadline seconds for Table I (default: derived from the design)")
	deadline := flag.Int("deadline", 0, "deadline seconds for -execute (0 = midway between fastest and cheapest)")
	fleetSpec := flag.String("fleet", "", "fleet for -execute as name=count,... (default: one instance per plan-chosen type)")
	minBill := flag.Float64("minbill", 0, "minimum billing granularity in seconds for -execute (0 = pure per-second)")
	slack := flag.Float64("slack", 1.1, "Figure 6 deadline as a multiple of the fastest schedule")
	useCache := flag.Bool("cache", false, "attach an artifact store to -batch: repeated stage work is planned as cache hits and the joint plan is compared against the cache-blind one")
	workers := flag.Int("workers", 0, "bound for the characterization fan-out and kernel pools (0 = all cores; results identical)")
	flag.Parse()

	if !*table1 && !*figure6 && !*execute && !*batch && !*spot {
		*table1 = true
		*figure6 = true
	}

	lib := techlib.Default14nm()
	catalog := cloud.DefaultCatalog()
	if *minBill > 0 {
		catalog = catalog.WithMinBill(*minBill)
	}
	opts := core.CharacterizeOptions{Scale: *scale, Workers: *workers}

	if *execute {
		executePlan(lib, catalog, *design, opts, *deadline, *fleetSpec)
	}

	if *batch {
		var store *cache.Store
		if *useCache {
			store = cache.New(0)
		}
		batchOptimize(lib, catalog, strings.Split(*designList, ","), opts, *slack, *fleetSpec, store)
	}
	if *useCache && !*batch {
		fail(fmt.Errorf("-cache applies to -batch (the store dedups across a batch of flows)"))
	}

	if *spot {
		spotCompare(lib, catalog, strings.Split(*designList, ","), opts, *slack, *fleetSpec, *hazardSeed, *hazardRate)
	}

	if *table1 {
		_, prob := buildProblem(lib, catalog, *design, opts)
		fmt.Printf("Table I: minimizing deployment cost for %s under runtime constraints\n\n", *design)
		printStageTable(prob)

		deadlines := parseDeadlines(*deadlineList)
		if deadlines == nil {
			minTime := prob.MinTime()
			under := prob.UnderProvision()
			deadlines = []int{
				under.TotalTime,
				(minTime + under.TotalTime) / 2,
				minTime + (under.TotalTime-minTime)/10,
				minTime,
				minTime - minTime/10,
			}
		}
		rows, err := prob.TableI(deadlines)
		if err != nil {
			fail(err)
		}
		fmt.Printf("\n%-12s %-52s %10s %10s\n", "constraint", "selection", "total time", "cost ($)")
		for _, r := range rows {
			if !r.Plan.Feasible {
				fmt.Printf("%-12d %-52s %10s %10s\n", r.DeadlineSec, "NA", "NA", "NA")
				continue
			}
			fmt.Printf("%-12d %-52s %9ds %10.4f\n",
				r.DeadlineSec, picksString(r.Plan), r.Plan.TotalTime, r.Plan.TotalCost)
		}
	}

	if *figure6 {
		fmt.Println("\nFigure 6: cost savings vs provisioning policies")
		fmt.Printf("%-12s %12s %12s %12s %10s %12s\n",
			"design", "over ($)", "opt ($)", "under ($)", "saving", "opt overhead")
		var totalSaving float64
		designsList := []string{"sparc_core", "coyote", "ariane", "swerv"}
		for _, d := range designsList {
			_, prob := buildProblem(lib, catalog, d, opts)
			cmp, err := core.CompareProvisioning(prob, *slack)
			if err != nil {
				fail(err)
			}
			fmt.Printf("%-12s %12.4f %12.4f %12.4f %9.1f%% %11.1f%%\n",
				d, cmp.Over.TotalCost, cmp.Opt.TotalCost, cmp.Under.TotalCost,
				cmp.SavingVsOverPct, cmp.OverheadVsBestPct)
			totalSaving += cmp.SavingVsOverPct
		}
		fmt.Printf("\nAverage saving vs over-provisioning: %.2f%% (paper: 35.29%%)\n",
			totalSaving/float64(len(designsList)))
	}
}

func buildProblem(lib *techlib.Library, catalog *cloud.Catalog, design string, opts core.CharacterizeOptions) (*core.DesignCharacterization, *core.DeploymentProblem) {
	char, err := core.CharacterizeEval(lib, design, opts)
	if err != nil {
		fail(err)
	}
	prob, err := core.BuildDeploymentProblem(char, catalog)
	if err != nil {
		fail(err)
	}
	return char, prob
}

// executePlan is the run-the-plan mode: optimize a deployment under
// the deadline, then execute it stage by stage over a fleet with
// flow.PlanPolicy, validating the knapsack's per-stage predictions
// against the simulated schedule.
func executePlan(lib *techlib.Library, catalog *cloud.Catalog, design string, opts core.CharacterizeOptions, deadline int, fleetSpec string) {
	char, prob := buildProblem(lib, catalog, design, opts)
	if deadline <= 0 {
		deadline = (prob.MinTime() + prob.UnderProvision().TotalTime) / 2
	}
	plan, err := prob.Optimize(deadline)
	if err != nil {
		fail(err)
	}
	if !plan.Feasible {
		fail(fmt.Errorf("deadline %ds below the fastest achievable %ds", deadline, prob.MinTime()))
	}
	var fleet *cloud.Fleet
	if fleetSpec != "" {
		if fleet, err = cloud.ParseFleetSpec(catalog, fleetSpec); err != nil {
			fail(err)
		}
	}
	sched, err := core.ExecutePlan(lib, char, plan, opts, fleet)
	if err != nil {
		fail(err)
	}
	j := sched.Jobs[0]
	if j.Err != nil {
		fail(j.Err)
	}

	fmt.Printf("Plan execution: %s under a %ds deadline (policy %s, fleet %s)\n\n",
		design, deadline, sched.Policy, sched.Fleet)
	fmt.Printf("%-12s %-10s %12s %12s %14s %14s\n",
		"stage", "instance", "predicted", "simulated", "pred cost ($)", "sim cost ($)")
	for _, st := range j.Stages {
		pick, err := plan.Pick(st.Kind)
		if err != nil {
			fail(err)
		}
		fmt.Printf("%-12s %-10s %11.1fs %11.1fs %14.4f %14.4f\n",
			st.Kind, st.Instance, pick.Seconds, st.Seconds, pick.Cost, st.CostUSD)
	}
	fmt.Printf("\nplan: time %ds cost $%.4f | simulated: busy %.1fs finish %.1fs cost $%.4f wait %.1fs\n",
		plan.TotalTime, plan.TotalCost, j.Seconds, j.FinishSec, j.CostUSD, j.WaitSec)
	fmt.Printf("fleet utilization %.1f%% over a %.1fs makespan\n\n",
		sched.UtilizationPct, sched.MakespanSec)
}

// batchOptimize is the -batch mode: co-optimize the named designs'
// flows against one shared fleet, print the contention-aware forecast,
// verify it against the fleet simulation, and compare the joint plan
// against independently optimized plans on the same fleet (static and
// adaptive executions).
func batchOptimize(lib *techlib.Library, catalog *cloud.Catalog, names []string, opts core.CharacterizeOptions, slack float64, fleetSpec string, store *cache.Store) {
	if fleetSpec == "" {
		fleetSpec = "gp.1x=1,gp.8x=1,mem.1x=1,mem.8x=1"
	}
	fleet, err := cloud.ParseFleetSpec(catalog, fleetSpec)
	if err != nil {
		fail(err)
	}

	// Characterize each distinct design once; repeats share the table.
	chars := map[string]*core.DesignCharacterization{}
	probs := map[string]*core.DeploymentProblem{}
	var specs []core.BatchJobSpec
	for i, name := range names {
		name = strings.TrimSpace(name)
		if chars[name] == nil {
			char, prob := buildProblem(lib, catalog, name, opts)
			chars[name], probs[name] = char, prob
		}
		specs = append(specs, core.BatchJobSpec{
			Name: fmt.Sprintf("%s#%d", name, i),
			Char: chars[name],
			Prob: probs[name],
		})
	}
	// Deadlines: slack x each job's independently optimal serial time —
	// met alone on an idle fleet, contended in the batch.
	ibp, err := core.IndependentBatchPlan(specs, fleet)
	if err != nil {
		fail(err)
	}
	if !ibp.Feasible {
		fail(fmt.Errorf("independent plans infeasible on fleet %s", fleet))
	}
	for i := range specs {
		specs[i].DeadlineSec = int(slack * float64(ibp.Plans[i].TotalTime))
	}
	if ibp, err = core.IndependentBatchPlan(specs, fleet); err != nil {
		fail(err)
	}
	if store != nil {
		// Predict which stages the store (empty here, so only earlier
		// jobs in this batch) will serve, and keep a cache-blind copy of
		// the specs so the two joint plans can be priced side by side.
		if err := core.PredictCacheHits(store, lib, specs, opts); err != nil {
			fail(err)
		}
	}
	bp, err := core.OptimizeBatchOpts(specs, fleet, core.BatchOptions{Cache: store})
	if err != nil {
		fail(err)
	}
	if !bp.Feasible {
		fail(fmt.Errorf("batch infeasible: a job cannot meet its own deadline alone"))
	}

	fmt.Printf("Batch co-optimization: %d jobs on fleet %s (deadline slack %.2fx, method %s)\n\n",
		len(specs), fleet, slack, bp.Selection.Method)
	fmt.Printf("%-12s %9s %-52s %9s %10s\n", "job", "deadline", "plan", "busy", "cost ($)")
	for i, spec := range specs {
		fmt.Printf("%-12s %8ds %-52s %8ds %10.4f\n",
			spec.Name, spec.DeadlineSec, picksString(bp.Plans[i]),
			bp.Plans[i].TotalTime, bp.Plans[i].TotalCost)
	}

	sched, err := core.ExecuteBatchPlan(lib, specs, bp, opts, fleet.Clone(), false)
	if err != nil {
		fail(err)
	}
	fmt.Printf("\nPredicted schedule under contention (verified against the fleet simulation):\n\n")
	fmt.Printf("%-12s %9s %9s %9s %10s %9s %9s\n",
		"job", "start", "wait", "finish", "cost ($)", "deadline", "simulated")
	exact := true
	for i, f := range bp.Forecast.Jobs {
		j := sched.Jobs[i]
		if j.Err != nil {
			fail(j.Err)
		}
		match := "match"
		if j.StartSec != f.StartSec || j.FinishSec != f.FinishSec ||
			j.WaitSec != f.WaitSec || j.CostUSD != f.CostUSD {
			match, exact = "MISMATCH", false
		}
		status := "met"
		if !f.DeadlineMet {
			status = "MISSED"
		}
		fmt.Printf("%-12s %8.0fs %8.0fs %8.0fs %10.4f %9s %9s\n",
			f.Name, f.StartSec, f.WaitSec, f.FinishSec, f.CostUSD, status, match)
	}
	if !exact {
		fail(fmt.Errorf("forecast diverged from the fleet simulation"))
	}
	fmt.Printf("\nBatch: $%.4f, makespan %.0fs, %.0fs queued, %d deadline(s) missed, fleet %.1f%% utilized\n",
		sched.TotalCostUSD, sched.MakespanSec, sched.TotalWaitSec,
		sched.DeadlinesMissed, sched.UtilizationPct)

	if store != nil {
		if sched.CacheHits != bp.Forecast.CacheHits {
			fail(fmt.Errorf("execution billed %d cache hits, forecast predicted %d", sched.CacheHits, bp.Forecast.CacheHits))
		}
		// Price the cache-aware joint plan against the cache-blind one
		// under the same predicted hits: both batches would execute over
		// the same store, so hit stages are free either way — the aware
		// plan wins by not buying speed for work the store serves.
		blindSpecs := make([]core.BatchJobSpec, len(specs))
		copy(blindSpecs, specs)
		for i := range blindSpecs {
			blindSpecs[i].CacheHits = nil
		}
		blind, err := core.OptimizeBatch(blindSpecs, fleet)
		if err != nil {
			fail(err)
		}
		st := store.Stats()
		fmt.Printf("\nArtifact cache: %d hits billed (as forecast), %d misses, %d entries live (%d bytes)\n",
			sched.CacheHits, st.Misses, store.Len(), store.Bytes())
		if blind.Feasible {
			fmt.Printf("Cache-aware plan bills $%.4f under the predicted hits; the cache-blind plan would bill $%.4f on the same store.\n",
				batchCostUnderHits(bp, specs), batchCostUnderHits(blind, specs))
		} else {
			fmt.Printf("The cache-blind batch is infeasible at these deadlines; only the cache-aware plan clears them.\n")
		}
	}

	// The baseline: every job's knapsack solved in isolation, executed
	// on the same fleet — statically and with the adaptive policy
	// upgrading queue-starved stages.
	static, err := core.ExecuteBatchPlan(lib, specs, ibp, opts, fleet.Clone(), false)
	if err != nil {
		fail(err)
	}
	adaptive, err := core.ExecuteBatchPlan(lib, specs, ibp, opts, fleet.Clone(), true)
	if err != nil {
		fail(err)
	}
	fmt.Printf("\n%-34s %10s %10s %10s %8s\n", "execution", "cost ($)", "makespan", "queued", "missed")
	rows := []struct {
		name  string
		sched *flow.Schedule
	}{
		{"independent plans, static", static},
		{"independent plans, adaptive", adaptive},
		{"co-optimized batch", sched},
	}
	for _, r := range rows {
		fmt.Printf("%-34s %10.4f %9.0fs %9.0fs %8d\n",
			r.name, r.sched.TotalCostUSD, r.sched.MakespanSec, r.sched.TotalWaitSec, r.sched.DeadlinesMissed)
	}
	if sched.TotalCostUSD <= static.TotalCostUSD+1e-9 {
		fmt.Printf("\nCo-optimization meets %d more deadline(s) than the static baseline at no extra busy-time cost beyond the plan.\n\n",
			static.DeadlinesMissed-sched.DeadlinesMissed)
	} else {
		fmt.Printf("\nCo-optimization pays $%.4f over the static baseline to recover %d deadline(s).\n\n",
			sched.TotalCostUSD-static.TotalCostUSD, static.DeadlinesMissed-sched.DeadlinesMissed)
	}
}

// spotCompare is the -spot mode: plan the named designs' batch three
// ways — on-demand only, naively trusting spot prices, and with
// revocation-risk-adjusted expected costs — and execute all three on
// the same spot-priced fleet under identical seeded revocation
// timelines. Deadlines are slack x each job's cheapest on-demand
// serial plan, so the on-demand execution always meets them; the
// interesting question is what the two spot strategies pay and miss.
func spotCompare(lib *techlib.Library, catalog *cloud.Catalog, names []string, opts core.CharacterizeOptions, slack float64, fleetSpec string, seed int64, rate float64) {
	spotCat, err := catalog.WithSpot(0.7)
	if err != nil {
		fail(err)
	}
	if fleetSpec == "" {
		// Two machines per type: the on-demand strategy fits the batch
		// without contention, so any miss it would show is purely the
		// deadline sizing, not the fleet.
		fleetSpec = "gp.2x=2,mem.2x=2,gp.2x.spot=2,mem.2x.spot=2"
	}
	fleet, err := cloud.ParseFleetSpec(spotCat, fleetSpec)
	if err != nil {
		fail(err)
	}
	// Planning sees an unarmed fleet — the naive strategy's whole
	// mistake is trusting nominal spot prices. Executions run on armed
	// clones sharing one seeded model, so all three strategies face
	// identical per-instance revocation timelines.
	hazards := cloud.UniformSpotHazards(spotCat, rate)
	execFleet := func() *cloud.Fleet {
		f := fleet.Clone()
		f.Revocation = cloud.NewRevocationModel(seed, hazards)
		return f
	}
	retry := flow.RetryPolicy{MaxAttempts: 200, BackoffSec: 15}

	// Characterize each distinct design once; build both the on-demand
	// deployment problem and its spot-extended twin.
	chars := map[string]*core.DesignCharacterization{}
	odProbs := map[string]*core.DeploymentProblem{}
	spotProbs := map[string]*core.DeploymentProblem{}
	var odSpecs, spotSpecs []core.BatchJobSpec
	for i, name := range names {
		name = strings.TrimSpace(name)
		if chars[name] == nil {
			char, err := core.CharacterizeEval(lib, name, opts)
			if err != nil {
				fail(err)
			}
			odProb, err := core.BuildDeploymentProblem(char, catalog)
			if err != nil {
				fail(err)
			}
			spotProb, err := core.BuildDeploymentProblem(char, spotCat)
			if err != nil {
				fail(err)
			}
			chars[name], odProbs[name], spotProbs[name] = char, odProb, spotProb
		}
		cheapest, err := odProbs[name].Optimize(odProbs[name].UnderProvision().TotalTime)
		if err != nil {
			fail(err)
		}
		deadline := int(slack * float64(cheapest.TotalTime))
		jobName := fmt.Sprintf("%s#%d", name, i)
		odSpecs = append(odSpecs, core.BatchJobSpec{
			Name: jobName, Char: chars[name], Prob: odProbs[name], DeadlineSec: deadline,
		})
		spotSpecs = append(spotSpecs, core.BatchJobSpec{
			Name: jobName, Char: chars[name], Prob: spotProbs[name], DeadlineSec: deadline,
		})
	}

	type strategy struct {
		name  string
		specs []core.BatchJobSpec
		opts  core.BatchOptions
	}
	strategies := []strategy{
		{"on-demand only", odSpecs, core.BatchOptions{Retry: retry}},
		{"naive spot", spotSpecs, core.BatchOptions{Retry: retry}},
		{"risk-adjusted spot", spotSpecs, core.BatchOptions{Hazards: mckp.Hazards(hazards), Retry: retry}},
	}

	fmt.Printf("Preemptible fleet: %d jobs on %s (hazard %.0f/h per spot instance, seed %d, slack %.2fx)\n\n",
		len(names), fleet, rate, seed, slack)

	var scheds []*flow.Schedule
	for _, s := range strategies {
		bp, err := core.OptimizeBatchOpts(s.specs, fleet, s.opts)
		if err != nil {
			fail(err)
		}
		if !bp.Feasible {
			fail(fmt.Errorf("%s: batch infeasible", s.name))
		}
		fmt.Printf("%s plans:\n", s.name)
		for i, spec := range s.specs {
			fmt.Printf("  %-12s deadline %5ds  %s\n", spec.Name, spec.DeadlineSec, picksString(bp.Plans[i]))
		}
		sched, err := core.ExecuteBatchPlan(lib, s.specs, bp, opts, execFleet(), false)
		if err != nil {
			fail(err)
		}
		// A job revoked past its attempt cap is a legitimate outcome of
		// the naive gamble — reported, not fatal. Anything else is a bug.
		for _, j := range sched.Jobs {
			if j.Err != nil && !strings.Contains(j.Err.Error(), "revoked on attempt") {
				fail(j.Err)
			}
		}
		scheds = append(scheds, sched)
		fmt.Println()
	}

	fmt.Printf("Executed under the same seeded revocation timelines:\n\n")
	fmt.Printf("%-20s %10s %10s %12s %11s %8s %8s\n",
		"strategy", "cost ($)", "makespan", "revocations", "lost work", "missed", "failed")
	for i, s := range strategies {
		sched := scheds[i]
		fmt.Printf("%-20s %10.4f %9.0fs %12d %10.0fs %8d %8d\n",
			s.name, sched.TotalCostUSD, sched.MakespanSec,
			sched.Revocations, sched.RetriedSec, sched.DeadlinesMissed, sched.Failed)
	}

	naive, risk := scheds[1], scheds[2]
	fmt.Printf("\n%-12s %9s | %9s %9s %6s | %9s %9s %6s\n",
		"job", "deadline", "naive fin", "lost", "", "risk fin", "lost", "")
	for i := range spotSpecs {
		nj, rj := naive.Jobs[i], risk.Jobs[i]
		status := func(j flow.JobResult) string {
			switch {
			case j.Err != nil:
				return "FAILED"
			case j.DeadlineMet:
				return "met"
			}
			return "MISSED"
		}
		fmt.Printf("%-12s %8ds | %8.0fs %8.0fs %6s | %8.0fs %8.0fs %6s\n",
			spotSpecs[i].Name, spotSpecs[i].DeadlineSec,
			nj.FinishSec, nj.RetriedSec, status(nj),
			rj.FinishSec, rj.RetriedSec, status(rj))
	}

	naiveBad := naive.DeadlinesMissed + naive.Failed
	riskBad := risk.DeadlinesMissed + risk.Failed
	switch {
	case riskBad < naiveBad && risk.TotalCostUSD <= naive.TotalCostUSD:
		fmt.Printf("\nRisk-adjusted planning recovers %d job(s) the naive spot gamble misses or loses and bills $%.4f less.\n\n",
			naiveBad-riskBad, naive.TotalCostUSD-risk.TotalCostUSD)
	case riskBad < naiveBad:
		fmt.Printf("\nRisk-adjusted planning recovers %d job(s) the naive spot gamble misses or loses for $%.4f extra.\n\n",
			naiveBad-riskBad, risk.TotalCostUSD-naive.TotalCostUSD)
	default:
		fmt.Printf("\nRisk-adjusted and naive spot planning tie on deadlines at this hazard rate.\n\n")
	}
}

func printStageTable(prob *core.DeploymentProblem) {
	fmt.Printf("%-12s %-18s", "task", "family")
	for _, c := range prob.Stages[0] {
		fmt.Printf("%10dv", c.Instance.VCPUs)
	}
	fmt.Println()
	for i, stage := range prob.Stages {
		k := core.JobKinds()[i]
		fmt.Printf("%-12s %-18s", k, stage[0].Instance.Family)
		for _, c := range stage {
			fmt.Printf("%10.0fs", c.Seconds)
		}
		fmt.Println()
		fmt.Printf("%-12s %-18s", "", "cost ($)")
		for _, c := range stage {
			fmt.Printf("%11.4f", c.Cost)
		}
		fmt.Println()
	}
}

func picksString(p *core.Plan) string {
	parts := make([]string, len(p.Picks))
	for i, pick := range p.Picks {
		parts[i] = fmt.Sprintf("%s:%s", pick.Job, pick.Instance.Name)
	}
	return strings.Join(parts, " ")
}

// batchCostUnderHits prices a joint plan's bill given the predicted
// hits: a hit stage is served from the store for free, every other
// stage bills its pick — the common yardstick for comparing the
// cache-aware and cache-blind plans over the same store.
func batchCostUnderHits(bp *core.BatchPlan, specs []core.BatchJobSpec) float64 {
	var total float64
	for i, plan := range bp.Plans {
		for _, pick := range plan.Picks {
			if !specs[i].CacheHits[pick.Job] {
				total += pick.Cost
			}
		}
	}
	return total
}

func parseDeadlines(s string) []int {
	if s == "" {
		return nil
	}
	var out []int
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			fail(fmt.Errorf("bad deadline %q: %w", f, err))
		}
		out = append(out, v)
	}
	return out
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "optimize:", err)
	os.Exit(1)
}
