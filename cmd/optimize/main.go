// Command optimize regenerates the paper's deployment-optimization
// experiments: Table I (minimum-cost machine selection per flow stage
// under total-runtime constraints, with NA for infeasible deadlines)
// and Fig. 6 (cost and runtime of the optimizer against the
// over-provisioning and under-provisioning baselines on four designs).
//
// Usage:
//
//	optimize -table1 -design sparc_core
//	optimize -figure6
//	optimize -table1 -deadlines 10000,6000,5645,5000
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"edacloud/internal/cloud"
	"edacloud/internal/core"
	"edacloud/internal/techlib"
)

func main() {
	design := flag.String("design", "sparc_core", "design for Table I")
	scale := flag.Float64("scale", 0.03, "design scale factor")
	table1 := flag.Bool("table1", false, "regenerate Table I")
	figure6 := flag.Bool("figure6", false, "regenerate Figure 6")
	deadlineList := flag.String("deadlines", "", "comma-separated deadline seconds for Table I (default: derived from the design)")
	slack := flag.Float64("slack", 1.1, "Figure 6 deadline as a multiple of the fastest schedule")
	workers := flag.Int("workers", 0, "bound for the characterization fan-out and kernel pools (0 = all cores; results identical)")
	flag.Parse()

	if !*table1 && !*figure6 {
		*table1 = true
		*figure6 = true
	}

	lib := techlib.Default14nm()
	catalog := cloud.DefaultCatalog()
	opts := core.CharacterizeOptions{Scale: *scale, Workers: *workers}

	if *table1 {
		prob := buildProblem(lib, catalog, *design, opts)
		fmt.Printf("Table I: minimizing deployment cost for %s under runtime constraints\n\n", *design)
		printStageTable(prob)

		deadlines := parseDeadlines(*deadlineList)
		if deadlines == nil {
			minTime := prob.MinTime()
			under := prob.UnderProvision()
			deadlines = []int{
				under.TotalTime,
				(minTime + under.TotalTime) / 2,
				minTime + (under.TotalTime-minTime)/10,
				minTime,
				minTime - minTime/10,
			}
		}
		rows, err := prob.TableI(deadlines)
		if err != nil {
			fail(err)
		}
		fmt.Printf("\n%-12s %-52s %10s %10s\n", "constraint", "selection", "total time", "cost ($)")
		for _, r := range rows {
			if !r.Plan.Feasible {
				fmt.Printf("%-12d %-52s %10s %10s\n", r.DeadlineSec, "NA", "NA", "NA")
				continue
			}
			fmt.Printf("%-12d %-52s %9ds %10.4f\n",
				r.DeadlineSec, picksString(r.Plan), r.Plan.TotalTime, r.Plan.TotalCost)
		}
	}

	if *figure6 {
		fmt.Println("\nFigure 6: cost savings vs provisioning policies")
		fmt.Printf("%-12s %12s %12s %12s %10s %12s\n",
			"design", "over ($)", "opt ($)", "under ($)", "saving", "opt overhead")
		var totalSaving float64
		designsList := []string{"sparc_core", "coyote", "ariane", "swerv"}
		for _, d := range designsList {
			prob := buildProblem(lib, catalog, d, opts)
			cmp, err := core.CompareProvisioning(prob, *slack)
			if err != nil {
				fail(err)
			}
			fmt.Printf("%-12s %12.4f %12.4f %12.4f %9.1f%% %11.1f%%\n",
				d, cmp.Over.TotalCost, cmp.Opt.TotalCost, cmp.Under.TotalCost,
				cmp.SavingVsOverPct, cmp.OverheadVsBestPct)
			totalSaving += cmp.SavingVsOverPct
		}
		fmt.Printf("\nAverage saving vs over-provisioning: %.2f%% (paper: 35.29%%)\n",
			totalSaving/float64(len(designsList)))
	}
}

func buildProblem(lib *techlib.Library, catalog *cloud.Catalog, design string, opts core.CharacterizeOptions) *core.DeploymentProblem {
	char, err := core.CharacterizeEval(lib, design, opts)
	if err != nil {
		fail(err)
	}
	prob, err := core.BuildDeploymentProblem(char, catalog)
	if err != nil {
		fail(err)
	}
	return prob
}

func printStageTable(prob *core.DeploymentProblem) {
	fmt.Printf("%-12s %-18s", "task", "family")
	for _, c := range prob.Stages[0] {
		fmt.Printf("%10dv", c.Instance.VCPUs)
	}
	fmt.Println()
	for i, stage := range prob.Stages {
		k := core.JobKinds()[i]
		fmt.Printf("%-12s %-18s", k, stage[0].Instance.Family)
		for _, c := range stage {
			fmt.Printf("%10.0fs", c.Seconds)
		}
		fmt.Println()
		fmt.Printf("%-12s %-18s", "", "cost ($)")
		for _, c := range stage {
			fmt.Printf("%11.4f", c.Cost)
		}
		fmt.Println()
	}
}

func picksString(p *core.Plan) string {
	parts := make([]string, len(p.Picks))
	for i, pick := range p.Picks {
		parts[i] = fmt.Sprintf("%s:%s", pick.Job, pick.Instance.Name)
	}
	return strings.Join(parts, " ")
}

func parseDeadlines(s string) []int {
	if s == "" {
		return nil
	}
	var out []int
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			fail(fmt.Errorf("bad deadline %q: %w", f, err))
		}
		out = append(out, v)
	}
	return out
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "optimize:", err)
	os.Exit(1)
}
