package main

import (
	"flag"
	"testing"

	"edacloud/internal/clitest"
)

var update = flag.Bool("update", false, "rewrite the golden files")

// TestBatchGolden pins the -batch mode's stdout end to end: the
// co-optimized plans, the forecast-vs-simulation table (which the
// command itself verifies for an exact match), and the three-way
// execution comparison. Every printed value is simulated and
// deterministic, so the comparison is byte-exact after whitespace
// normalization.
func TestBatchGolden(t *testing.T) {
	bin := clitest.Build(t, "")
	got := clitest.Run(t, bin,
		"-batch",
		"-designs", "ibex,aes,ibex",
		"-fleet", "gp.1x=1,gp.8x=1,mem.1x=1,mem.8x=1",
		"-slack", "1.3",
		"-scale", "0.03",
	)
	clitest.Golden(t, "testdata/batch.golden", got, *update)
}
