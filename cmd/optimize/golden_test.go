package main

import (
	"flag"
	"testing"

	"edacloud/internal/clitest"
)

var update = flag.Bool("update", false, "rewrite the golden files")

// TestBatchGolden pins the -batch mode's stdout end to end: the
// co-optimized plans, the forecast-vs-simulation table (which the
// command itself verifies for an exact match), and the three-way
// execution comparison. Every printed value is simulated and
// deterministic, so the comparison is byte-exact after whitespace
// normalization.
// TestSpotGolden pins the -spot mode's three-way comparison: the
// on-demand, naive-spot and risk-adjusted plans, their executions
// under the same seeded revocation timelines, and the closing verdict.
// The scenario is calibrated so the naive gamble misses one deadline
// and loses one job to the attempt cap while the risk-adjusted plan
// meets everything for less money — the PR's headline behavior, pinned
// byte-exactly.
func TestSpotGolden(t *testing.T) {
	bin := clitest.Build(t, "")
	got := clitest.Run(t, bin,
		"-spot",
		"-designs", "aes,jpeg",
		"-slack", "1.15",
		"-hazard-seed", "2",
		"-hazard-rate", "240",
		"-scale", "0.03",
	)
	clitest.Golden(t, "testdata/spot.golden", got, *update)
}

func TestBatchGolden(t *testing.T) {
	bin := clitest.Build(t, "")
	got := clitest.Run(t, bin,
		"-batch",
		"-designs", "ibex,aes,ibex",
		"-fleet", "gp.1x=1,gp.8x=1,mem.1x=1,mem.8x=1",
		"-slack", "1.3",
		"-scale", "0.03",
	)
	clitest.Golden(t, "testdata/batch.golden", got, *update)
}

// TestBatchCacheGolden pins the -cache batch: repeated designs are
// planned as cache hits (their plan rows collapse to probe time at
// zero cost), the forecast still matches the simulation exactly, and
// the closing comparison shows the cache-aware joint plan billing
// less than the cache-blind one priced over the same store. The tight
// 1.02x slack is what makes the comparison strict: the blind solve
// must buy speed for stages the store actually serves.
func TestBatchCacheGolden(t *testing.T) {
	bin := clitest.Build(t, "")
	got := clitest.Run(t, bin,
		"-batch",
		"-cache",
		"-designs", "ibex,aes,ibex,aes",
		"-fleet", "gp.1x=1,gp.8x=1,mem.1x=1,mem.8x=1",
		"-slack", "1.02",
		"-scale", "0.03",
	)
	clitest.Golden(t, "testdata/batch_cache.golden", got, *update)
}
