// Command benchdiff compares two sets of BENCH_*.json perf-trajectory
// snapshots (the artifacts the repo's bench smoke emits, see
// bench_test.go) and reports per-metric deltas, flagging regressions
// beyond a threshold.
//
// Each snapshot directory holds files of the form BENCH_<name>.json
// with a {benchmark, gomaxprocs, unix_sec, metrics} payload. benchdiff
// pairs files by name, diffs each metric, and classifies the direction
// by the metric's name: throughput-like metrics (jobs_per_sec,
// *_speedup, *_util_pct, admitted) regress when they drop, cost-like
// metrics (*_sec, *_usd, *_lost_pct, replans) regress when they rise.
// Metrics with no recognizable direction are printed but never
// flagged.
//
// By default regressions are warnings (exit 0), so a noisy CI runner
// cannot fail the build; -fail turns them into a non-zero exit for
// setups with stable reference hardware.
//
// Usage:
//
//	benchdiff old-snapshots/ new-snapshots/
//	benchdiff -threshold 10 -fail baseline/ current/
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

type snapshot struct {
	Benchmark  string             `json:"benchmark"`
	GoMaxProcs int                `json:"gomaxprocs"`
	UnixSec    int64              `json:"unix_sec"`
	Metrics    map[string]float64 `json:"metrics"`
}

// direction classifies a metric name: +1 higher is better, -1 lower is
// better, 0 unknown (never flagged).
func direction(metric string) int {
	m := strings.ToLower(metric)
	switch {
	case strings.HasSuffix(m, "_per_sec") || strings.HasSuffix(m, "_speedup") ||
		strings.HasSuffix(m, "_util_pct") || m == "admitted" || m == "jobs_per_sec":
		return +1
	case strings.HasSuffix(m, "_sec") || strings.HasSuffix(m, "_usd") ||
		strings.HasSuffix(m, "_lost_pct") || m == "replans" || m == "rounds" ||
		strings.HasSuffix(m, "_bytes") || strings.HasSuffix(m, "_mib"):
		return -1
	}
	return 0
}

// delta is one compared metric.
type delta struct {
	Benchmark, Metric   string
	Old, New, ChangePct float64
	Direction           int
	Regressed, Improved bool
}

// compare pairs the two snapshot sets by benchmark name and diffs
// every metric present in both. thresholdPct bounds the tolerated
// regression.
func compare(old, new map[string]snapshot, thresholdPct float64) []delta {
	var names []string
	for name := range old {
		if _, ok := new[name]; ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	var out []delta
	for _, name := range names {
		o, n := old[name], new[name]
		var metrics []string
		for m := range o.Metrics {
			if _, ok := n.Metrics[m]; ok {
				metrics = append(metrics, m)
			}
		}
		sort.Strings(metrics)
		for _, m := range metrics {
			ov, nv := o.Metrics[m], n.Metrics[m]
			d := delta{Benchmark: name, Metric: m, Old: ov, New: nv, Direction: direction(m)}
			if ov != 0 {
				d.ChangePct = 100 * (nv - ov) / ov
			}
			switch d.Direction {
			case +1:
				d.Regressed = d.ChangePct < -thresholdPct
				d.Improved = d.ChangePct > thresholdPct
			case -1:
				d.Regressed = d.ChangePct > thresholdPct
				d.Improved = d.ChangePct < -thresholdPct
			}
			out = append(out, d)
		}
	}
	return out
}

// loadDir reads every BENCH_*.json under dir keyed by benchmark name.
func loadDir(dir string) (map[string]snapshot, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return nil, err
	}
	if len(paths) == 0 {
		return nil, fmt.Errorf("benchdiff: no BENCH_*.json under %s", dir)
	}
	out := map[string]snapshot{}
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			return nil, err
		}
		var s snapshot
		if err := json.Unmarshal(data, &s); err != nil {
			return nil, fmt.Errorf("benchdiff: %s: %w", p, err)
		}
		if s.Benchmark == "" {
			return nil, fmt.Errorf("benchdiff: %s has no benchmark name", p)
		}
		out[s.Benchmark] = s
	}
	return out, nil
}

func main() {
	threshold := flag.Float64("threshold", 20, "regression threshold in percent")
	failOnRegress := flag.Bool("fail", false, "exit non-zero on regression (default: warn only)")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-threshold pct] [-fail] <old-dir> <new-dir>")
		os.Exit(2)
	}
	oldSnaps, err := loadDir(flag.Arg(0))
	if err != nil {
		fail(err)
	}
	newSnaps, err := loadDir(flag.Arg(1))
	if err != nil {
		fail(err)
	}
	deltas := compare(oldSnaps, newSnaps, *threshold)
	if len(deltas) == 0 {
		fmt.Println("benchdiff: no common benchmarks to compare")
		return
	}
	regressions := 0
	fmt.Printf("%-24s %-16s %14s %14s %9s\n", "benchmark", "metric", "old", "new", "change")
	for _, d := range deltas {
		verdict := ""
		switch {
		case d.Regressed:
			verdict = "  REGRESSED"
			regressions++
		case d.Improved:
			verdict = "  improved"
		case d.Direction == 0:
			verdict = "  (untracked)"
		}
		fmt.Printf("%-24s %-16s %14.4f %14.4f %+8.1f%%%s\n",
			d.Benchmark, d.Metric, d.Old, d.New, d.ChangePct, verdict)
	}
	if regressions > 0 {
		fmt.Printf("\nbenchdiff: %d metric(s) regressed beyond %.0f%%\n", regressions, *threshold)
		if *failOnRegress {
			os.Exit(1)
		}
		fmt.Println("benchdiff: warning only (pass -fail to enforce)")
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
