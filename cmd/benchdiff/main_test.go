package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func writeSnap(t *testing.T, dir, name string, metrics map[string]float64) {
	t.Helper()
	s := snapshot{Benchmark: name, GoMaxProcs: 4, UnixSec: 1, Metrics: metrics}
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "BENCH_"+name+".json"), data, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestDirection pins the metric-name heuristics.
func TestDirection(t *testing.T) {
	for metric, want := range map[string]int{
		"jobs_per_sec":   +1,
		"gcn_speedup":    +1,
		"fleet_util_pct": +1,
		"admitted":       +1,
		"makespan_sec":   -1,
		"cost_usd":       -1,
		"work_lost_pct":  -1,
		"replans":        -1,
		"rounds":         -1,
		"peak_heap_mib":  -1,
		"scratch_bytes":  -1,
		"mystery":        0,
	} {
		if got := direction(metric); got != want {
			t.Errorf("direction(%q) = %d, want %d", metric, got, want)
		}
	}
}

// TestCompare: a 30% throughput drop and a 30% cost rise regress at
// the 20% threshold; a 10% wobble and untracked metrics never do; and
// improvements are labeled, not flagged.
func TestCompare(t *testing.T) {
	oldDir, newDir := t.TempDir(), t.TempDir()
	writeSnap(t, oldDir, "Alpha", map[string]float64{
		"jobs_per_sec": 100, "cost_usd": 10, "mystery": 5,
	})
	writeSnap(t, newDir, "Alpha", map[string]float64{
		"jobs_per_sec": 70, "cost_usd": 13, "mystery": 50,
	})
	writeSnap(t, oldDir, "Beta", map[string]float64{"makespan_sec": 100})
	writeSnap(t, newDir, "Beta", map[string]float64{"makespan_sec": 90})
	// Gamma exists only on one side: silently skipped.
	writeSnap(t, oldDir, "Gamma", map[string]float64{"jobs_per_sec": 1})

	oldSnaps, err := loadDir(oldDir)
	if err != nil {
		t.Fatal(err)
	}
	newSnaps, err := loadDir(newDir)
	if err != nil {
		t.Fatal(err)
	}
	deltas := compare(oldSnaps, newSnaps, 20)
	got := map[string]delta{}
	for _, d := range deltas {
		got[d.Benchmark+"/"+d.Metric] = d
	}
	if len(got) != 4 {
		t.Fatalf("want 4 compared metrics, got %d: %+v", len(got), deltas)
	}
	if d := got["Alpha/jobs_per_sec"]; !d.Regressed || d.Improved {
		t.Fatalf("throughput drop not flagged: %+v", d)
	}
	if d := got["Alpha/cost_usd"]; !d.Regressed {
		t.Fatalf("cost rise not flagged: %+v", d)
	}
	if d := got["Alpha/mystery"]; d.Regressed || d.Improved {
		t.Fatalf("untracked metric flagged: %+v", d)
	}
	// A 10% makespan drop is inside the 20% threshold: neither flagged
	// nor celebrated.
	if d := got["Beta/makespan_sec"]; d.Regressed || d.Improved {
		t.Fatalf("within-threshold wobble flagged: %+v", d)
	}
	// Within threshold: nothing flagged.
	for _, d := range compare(oldSnaps, newSnaps, 50) {
		if d.Regressed {
			t.Fatalf("50%% threshold still flagged %+v", d)
		}
	}
}

// TestLoadDirErrors: empty directories and malformed files refuse.
func TestLoadDirErrors(t *testing.T) {
	if _, err := loadDir(t.TempDir()); err == nil {
		t.Fatal("empty dir accepted")
	}
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "BENCH_bad.json"), []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadDir(dir); err == nil {
		t.Fatal("malformed snapshot accepted")
	}
}
