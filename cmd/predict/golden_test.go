package main

import (
	"flag"
	"testing"

	"edacloud/internal/clitest"
)

var update = flag.Bool("update", false, "rewrite the golden files")

// TestPredictGolden pins the Fig. 5 reproduction end to end on a
// small deterministic slice: dataset shape, per-application error
// summaries and the signed-error histograms. Dataset generation and
// GCN training are worker-count- and machine-independent, so the
// comparison is byte-exact; the -workers 4 rerun proves it.
func TestPredictGolden(t *testing.T) {
	bin := clitest.Build(t, "")
	args := []string{
		"-benchmarks", "6",
		"-recipes", "2",
		"-scale", "0.05",
		"-epochs", "8",
		"-hidden1", "12",
		"-hidden2", "8",
		"-fc", "8",
		"-seed", "5",
		"-bins", "6",
	}
	one := clitest.Run(t, bin, append(args, "-workers", "1")...)
	clitest.Golden(t, "testdata/predict.golden", one, *update)
	four := clitest.Run(t, bin, append(args, "-workers", "4")...)
	if one != four {
		t.Fatal("-workers 4 output diverged from -workers 1")
	}
}
