// Command predict regenerates the paper's runtime-prediction
// experiment (Fig. 5): it builds the benchmark-times-recipes dataset,
// trains one GCN per EDA application on a design-disjoint split, and
// reports per-application average percentage error plus the signed
// error histogram the paper plots.
//
// Usage:
//
//	predict -scale 0.06 -recipes 4 -epochs 60 -hidden1 64 -hidden2 32
//
// The paper's full hyperparameters (256/128/128 hidden units, 200
// epochs, all 8 recipes) are available through the flags; the defaults
// are sized to finish in a few minutes of CPU time.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"edacloud/internal/core"
	"edacloud/internal/gcn"
	"edacloud/internal/synth"
	"edacloud/internal/techlib"
)

func main() {
	scale := flag.Float64("scale", 0.06, "benchmark scale factor")
	recipes := flag.Int("recipes", 4, "number of logic-optimization recipes (max 8)")
	benchmarks := flag.Int("benchmarks", 18, "number of benchmarks (max 18)")
	epochs := flag.Int("epochs", 60, "training epochs (paper: 200)")
	hidden1 := flag.Int("hidden1", 64, "first graph-conv width (paper: 256)")
	hidden2 := flag.Int("hidden2", 32, "second graph-conv width (paper: 128)")
	fcHidden := flag.Int("fc", 32, "fully-connected width (paper: 128)")
	lr := flag.Float64("lr", 1e-3, "Adam learning rate (paper: 1e-4)")
	testFrac := flag.Float64("test", 0.2, "held-out design fraction")
	seed := flag.Int64("seed", 1, "split and init seed")
	bins := flag.Int("bins", 12, "error histogram bins")
	workers := flag.Int("workers", 0, "bound for the per-(benchmark, recipe) flow fan-out (0 = all cores; dataset identical)")
	flag.Parse()

	lib := techlib.Default14nm()
	names := benchNames(*benchmarks)
	nRecipes := *recipes
	if nRecipes > len(synth.StandardRecipes) {
		nRecipes = len(synth.StandardRecipes)
	}

	fmt.Printf("Building dataset: %d benchmarks x %d recipes at scale %g...\n",
		len(names), nRecipes, *scale)
	ds, err := core.BuildDataset(lib, core.DatasetOptions{
		Benchmarks: names,
		Recipes:    synth.StandardRecipes[:nRecipes],
		Scale:      *scale,
		Workers:    *workers,
	})
	if err != nil {
		fail(err)
	}
	fmt.Printf("Dataset: %d netlists, %d runtime labels\n\n", ds.NumNetlists(), ds.NumLabels())

	cfg := gcn.Config{
		Hidden1: *hidden1, Hidden2: *hidden2, FCHidden: *fcHidden,
		LR: *lr, Epochs: *epochs,
	}
	fmt.Printf("Training per-application GCNs (%d epochs)...\n", *epochs)
	_, eval, err := core.TrainPredictor(ds, cfg, *testFrac, *seed)
	if err != nil {
		fail(err)
	}

	fmt.Println("\nFigure 5: runtime prediction error on unseen designs")
	for _, k := range core.JobKinds() {
		je := eval.PerJob[k]
		fmt.Printf("\n%s: avg |error| = %.1f%% over %d test netlists\n",
			k, je.AvgAbsPctErr, len(je.Records))
		edges, counts := je.Histogram(*bins)
		if edges == nil {
			continue
		}
		maxCount := 1
		for _, c := range counts {
			if c > maxCount {
				maxCount = c
			}
		}
		for i, c := range counts {
			bar := strings.Repeat("#", c*40/maxCount)
			fmt.Printf("  [%9.2fs, %9.2fs) %4d %s\n", edges[i], edges[i+1], c, bar)
		}
	}
}

func benchNames(n int) []string {
	all := []string{
		"adder", "bar", "div", "hyp", "log2", "max", "multiplier", "sin", "sqrt", "square",
		"arbiter", "cavlc", "dec", "i2c", "int2float", "mem_ctrl", "priority", "voter",
	}
	if n > len(all) {
		n = len(all)
	}
	if n < 2 {
		n = 2
	}
	return all[:n]
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "predict:", err)
	os.Exit(1)
}
