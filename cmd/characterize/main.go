// Command characterize regenerates the paper's characterization
// experiments: Fig. 2a-d (branch misses, cache misses, vector-FP share
// and total runtime of synthesis, placement, routing and STA under
// 1/2/4/8 vCPUs) and Fig. 3 (routing speedup versus vCPU count across
// the eight evaluation designs).
//
// Usage:
//
//	characterize -figure all -design sparc_core -scale 0.03
//	characterize -figure 3 -scale 0.02
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"edacloud/internal/core"
	"edacloud/internal/designs"
	"edacloud/internal/techlib"
)

func main() {
	design := flag.String("design", "sparc_core", "evaluation design for Fig. 2 (dyn_node..sparc_core)")
	scale := flag.Float64("scale", 0.03, "design scale factor (1 = full size; keep small for quick runs)")
	figure := flag.String("figure", "all", "which figure to regenerate: 2a, 2b, 2c, 2d, 2 (all of 2a-2d), 3, or all")
	workers := flag.Int("workers", 0, "bound for the per-VM-config fan-out and kernel pools (0 = all cores; results identical)")
	flag.Parse()

	lib := techlib.Default14nm()
	opts := core.CharacterizeOptions{Scale: *scale, Workers: *workers}

	want := func(f string) bool {
		if *figure == "all" || *figure == f {
			return true
		}
		// "2" expands to the whole Fig. 2 family (one characterization
		// run, four tables) without the Fig. 3 design sweep.
		return *figure == "2" && len(f) == 2 && f[0] == '2'
	}

	if want("2a") || want("2b") || want("2c") || want("2d") {
		char, err := core.CharacterizeEval(lib, *design, opts)
		if err != nil {
			fail(err)
		}
		fmt.Printf("Characterization of %s (%d cells, work scale %.0fx)\n\n",
			char.Design, char.Cells, char.WorkScale)
		if want("2a") {
			printMetric(char, "Figure 2a: Branch Misses (%)", func(p core.JobProfile) float64 { return p.BranchMissPct })
		}
		if want("2b") {
			printMetric(char, "Figure 2b: Cache Misses (%)", func(p core.JobProfile) float64 { return p.CacheMissPct })
		}
		if want("2c") {
			printMetric(char, "Figure 2c: Floating-point AVX Operations (%)", func(p core.JobProfile) float64 { return p.FPVectorPct })
		}
		if want("2d") {
			printMetric(char, "Figure 2d: Total Runtime (extrapolated seconds)", func(p core.JobProfile) float64 { return p.Seconds })
		}
	}

	if want("3") {
		fmt.Println("Figure 3: Routing speedup vs #vCPUs")
		fmt.Printf("%-12s", "design")
		for v := 1; v <= 8; v++ {
			fmt.Printf("%8dv", v)
		}
		fmt.Println()
		for _, name := range designs.EvalDesignNames() {
			curve, err := core.RoutingSpeedupCurve(lib, name, 8, opts)
			if err != nil {
				fail(err)
			}
			fmt.Printf("%-12s", name)
			for _, s := range curve {
				fmt.Printf("%9.2f", s)
			}
			fmt.Println()
		}
	}
}

func printMetric(char *core.DesignCharacterization, title string, metric func(core.JobProfile) float64) {
	fmt.Println(title)
	fmt.Printf("%-12s", "job")
	for _, v := range char.VCPUs {
		fmt.Printf("%8dv", v)
	}
	fmt.Println()
	for _, k := range core.JobKinds() {
		fmt.Printf("%-12s", k)
		for _, v := range char.VCPUs {
			p, err := char.Profile(k, v)
			if err != nil {
				fail(err)
			}
			fmt.Printf("%9.2f", metric(p))
		}
		fmt.Println()
	}
	fmt.Println(strings.Repeat("-", 50))
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "characterize:", err)
	os.Exit(1)
}
