package main

import (
	"flag"
	"testing"

	"edacloud/internal/clitest"
)

var update = flag.Bool("update", false, "rewrite the golden files")

// TestFigure2Golden pins the Fig. 2 family end to end: one
// characterization run of the smallest evaluation design, printed as
// the four per-job/per-vCPU tables (branch misses, cache misses,
// vector-FP share, extrapolated runtime). Every number is simulated
// and deterministic — the runtime table now rests on the *measured*
// parallel fractions of the cone-parallel synthesis passes, so a
// change in the partitioned rewrite path shows up here as a diff.
func TestFigure2Golden(t *testing.T) {
	bin := clitest.Build(t, "")
	got := clitest.Run(t, bin,
		"-design", "dyn_node",
		"-scale", "0.02",
		"-figure", "2",
	)
	clitest.Golden(t, "testdata/figure2.golden", got, *update)
}
