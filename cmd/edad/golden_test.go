package main

import (
	"flag"
	"testing"

	"edacloud/internal/clitest"
)

var update = flag.Bool("update", false, "rewrite the golden files")

// TestReplayGolden pins the -replay mode's stdout end to end: the
// trace header, the rolling-horizon and independent reports, the
// comparison line and the PASS verdicts. Everything printed is
// simulated and deterministic (worker-count-independent by the serve
// engine's design), so the comparison is byte-exact after whitespace
// normalization.
func TestReplayGolden(t *testing.T) {
	bin := clitest.Build(t, "")
	got := clitest.Run(t, bin,
		"-replay",
		"-designs", "ibex,aes",
		"-scale", "0.03",
		"-fleet", "gp.1x=1,gp.2x=1,gp.8x=1,mem.1x=1,mem.2x=1,mem.8x=1",
		"-trace-seed", "7",
		"-trace-jobs", "12",
		"-rate", "0.02",
		"-burst", "0.3",
		"-slack", "3",
	)
	clitest.Golden(t, "testdata/replay.golden", got, *update)
}

// TestReplayHazardsGolden pins the preemptible-capacity serving path:
// a spot-extended catalog, a fleet holding spot twins, uniform spot
// hazards risk-adjusting admission, and the seeded revocation model
// armed on both engines' fleets.
func TestReplayHazardsGolden(t *testing.T) {
	bin := clitest.Build(t, "")
	got := clitest.Run(t, bin,
		"-replay",
		"-designs", "ibex,aes",
		"-scale", "0.03",
		"-fleet", "gp.1x=1,gp.2x=1,gp.8x=1,mem.1x=1,mem.2x=1,mem.8x=1,gp.8x.spot=1,mem.8x.spot=1",
		"-spot", "0.7",
		"-hazard-rate", "12",
		"-hazard-seed", "5",
		"-trace-seed", "7",
		"-trace-jobs", "12",
		"-rate", "0.02",
		"-burst", "0.3",
		"-slack", "3",
	)
	clitest.Golden(t, "testdata/replay_hazards.golden", got, *update)
}

// TestReplayCacheGolden pins the cache-aware serving path: templates
// carry their artifact chain keys, so repeat submissions of a design
// are planned as cache hits and the report counts them.
func TestReplayCacheGolden(t *testing.T) {
	bin := clitest.Build(t, "")
	got := clitest.Run(t, bin,
		"-replay",
		"-cache",
		"-designs", "ibex,aes",
		"-scale", "0.03",
		"-fleet", "gp.1x=1,gp.2x=1,gp.8x=1,mem.1x=1,mem.2x=1,mem.8x=1",
		"-trace-seed", "7",
		"-trace-jobs", "12",
		"-rate", "0.02",
		"-burst", "0.3",
		"-slack", "3",
	)
	clitest.Golden(t, "testdata/replay_cache.golden", got, *update)
}

// TestReplayGoldenWorkers re-runs the same replay with -workers 1 and
// -workers 8: the output must match the golden byte for byte — the
// serving layer's determinism contract.
func TestReplayGoldenWorkers(t *testing.T) {
	bin := clitest.Build(t, "")
	for _, w := range []string{"1", "8"} {
		got := clitest.Run(t, bin,
			"-replay",
			"-designs", "ibex,aes",
			"-scale", "0.03",
			"-fleet", "gp.1x=1,gp.2x=1,gp.8x=1,mem.1x=1,mem.2x=1,mem.8x=1",
			"-trace-seed", "7",
			"-trace-jobs", "12",
			"-rate", "0.02",
			"-burst", "0.3",
			"-slack", "3",
			"-workers", w,
		)
		clitest.Golden(t, "testdata/replay.golden", got, false)
	}
}
