package main

import (
	"flag"
	"testing"

	"edacloud/internal/clitest"
)

var update = flag.Bool("update", false, "rewrite the golden files")

// TestReplayGolden pins the -replay mode's stdout end to end: the
// trace header, the rolling-horizon and independent reports, the
// comparison line and the PASS verdicts. Everything printed is
// simulated and deterministic (worker-count-independent by the serve
// engine's design), so the comparison is byte-exact after whitespace
// normalization.
func TestReplayGolden(t *testing.T) {
	bin := clitest.Build(t, "")
	got := clitest.Run(t, bin,
		"-replay",
		"-designs", "ibex,aes",
		"-scale", "0.03",
		"-fleet", "gp.1x=1,gp.2x=1,gp.8x=1,mem.1x=1,mem.2x=1,mem.8x=1",
		"-trace-seed", "7",
		"-trace-jobs", "12",
		"-rate", "0.02",
		"-burst", "0.3",
		"-slack", "3",
	)
	clitest.Golden(t, "testdata/replay.golden", got, *update)
}

// TestReplayGoldenWorkers re-runs the same replay with -workers 1 and
// -workers 8: the output must match the golden byte for byte — the
// serving layer's determinism contract.
func TestReplayGoldenWorkers(t *testing.T) {
	bin := clitest.Build(t, "")
	for _, w := range []string{"1", "8"} {
		got := clitest.Run(t, bin,
			"-replay",
			"-designs", "ibex,aes",
			"-scale", "0.03",
			"-fleet", "gp.1x=1,gp.2x=1,gp.8x=1,mem.1x=1,mem.2x=1,mem.8x=1",
			"-trace-seed", "7",
			"-trace-jobs", "12",
			"-rate", "0.02",
			"-burst", "0.3",
			"-slack", "3",
			"-workers", w,
		)
		clitest.Golden(t, "testdata/replay.golden", got, false)
	}
}
