// Command edad is the EDA-flow serving daemon: a multi-tenant
// admission-controlled job queue over a bounded cloud fleet, with
// rolling-horizon re-optimization of every in-flight plan at each
// arrival and completion (internal/serve).
//
// In daemon mode (-listen) it characterizes the requested designs into
// job templates, builds the serving fleet, and serves the HTTP/JSON
// API: POST /v1/jobs to submit, GET /v1/jobs/{id} for status,
// GET /v1/jobs/{id}/events for progress, POST /v1/jobs/{id}/cancel,
// POST /v1/advance to move the simulated clock, GET /v1/tenants and
// GET /v1/report for the ledgers.
//
// In replay mode (-replay) it generates a seeded arrival trace and
// replays it twice over identical fleets — once under the
// rolling-horizon engine, once under the independent per-arrival
// baseline — and prints both reports plus the comparison. The replay
// is deterministic: the same seed and flags print byte-identical
// output at any -workers value.
//
// Usage:
//
//	edad -listen :8080 -designs ibex,aes
//	edad -replay -designs ibex,aes -trace-jobs 40 -trace-seed 7 -slack 4
//	edad -replay -trace-jobs 1000 -rate 0.5 -burst 0.4
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"

	"edacloud/internal/cloud"
	"edacloud/internal/core"
	"edacloud/internal/serve"
	"edacloud/internal/techlib"
)

func main() {
	listen := flag.String("listen", "", "address to serve the HTTP API on (daemon mode)")
	replay := flag.Bool("replay", false, "replay a generated trace and compare rolling-horizon against the independent baseline")
	designList := flag.String("designs", "ibex,aes", "comma-separated designs to characterize into job templates")
	scale := flag.Float64("scale", 0.03, "design scale factor for characterization")
	fleetSpec := flag.String("fleet", "gp.1x=1,gp.2x=1,gp.4x=1,gp.8x=1,mem.1x=1,mem.2x=1,mem.4x=1,mem.8x=1",
		"serving fleet as name=count,...")
	tenantSpec := flag.String("tenants", "acme=3,blue=1", "tenants as name=weight,...")
	traceSeed := flag.Int64("trace-seed", 1, "trace generator seed for -replay")
	traceJobs := flag.Int("trace-jobs", 24, "trace length for -replay")
	rate := flag.Float64("rate", 0.02, "mean arrival rate (jobs/simulated second) for -replay")
	burst := flag.Float64("burst", 0.3, "arrival burstiness in [0,1) for -replay")
	slack := flag.Float64("slack", 0, "deadline slack as a multiple of the template's slowest plan (0 = deadline-free)")
	workers := flag.Int("workers", 0, "bound for characterization and re-plan fan-out (0 = all cores; results identical)")
	spot := flag.Float64("spot", 0, "spot discount in (0,1): extends the catalog with preemptible twins the fleet spec may name (e.g. gp.2x.spot)")
	hazardRate := flag.Float64("hazard-rate", 0, "spot revocation rate in events/hour: risk-adjusts admission and arms the fleet's revocation model")
	hazardSeed := flag.Int64("hazard-seed", 1, "seed for the fleet's revocation timelines (with -hazard-rate)")
	useCache := flag.Bool("cache", false, "enable the fleet-wide artifact cache: templates carry their chain keys, so jobs sharing a flow prefix are planned as cache hits")
	flag.Parse()

	if *listen == "" && !*replay {
		fail(fmt.Errorf("edad: pass -listen for daemon mode or -replay for trace replay"))
	}

	catalog := cloud.DefaultCatalog()
	if *spot > 0 {
		var err error
		if catalog, err = catalog.WithSpot(*spot); err != nil {
			fail(err)
		}
	}
	var hazards map[string]float64
	if *hazardRate > 0 {
		hazards = cloud.UniformSpotHazards(catalog, *hazardRate)
	}
	armFleet := func(spec string) *cloud.Fleet {
		f, err := cloud.ParseFleetSpec(catalog, spec)
		if err != nil {
			fail(err)
		}
		if hazards != nil {
			f.Revocation = cloud.NewRevocationModel(*hazardSeed, hazards)
		}
		return f
	}
	fleet := armFleet(*fleetSpec)
	tenants, err := parseTenants(*tenantSpec)
	if err != nil {
		fail(err)
	}
	designs := strings.Split(*designList, ",")
	templates, err := buildTemplates(catalog, fleet, designs, *scale, *workers, *useCache)
	if err != nil {
		fail(err)
	}

	if *replay {
		runReplay(fleet, tenants, templates, replayParams{
			seed: *traceSeed, jobs: *traceJobs, rate: *rate, burst: *burst,
			slack: *slack, workers: *workers,
			fleetSpec: *fleetSpec, designs: designs,
			hazards: hazards, hazardRate: *hazardRate, hazardSeed: *hazardSeed,
			spot: *spot, cache: *useCache, armFleet: armFleet,
		})
		return
	}

	srv, err := serve.NewServer(serve.Config{
		Fleet: fleet, Tenants: tenants, Templates: templates, Workers: *workers,
		Hazards: hazards,
	})
	if err != nil {
		fail(err)
	}
	fmt.Printf("edad: serving %d templates to %d tenants on %s\n", len(templates), len(tenants), *listen)
	fail(http.ListenAndServe(*listen, srv.Handler()))
}

// parseTenants parses "name=weight,name=weight".
func parseTenants(spec string) ([]serve.Tenant, error) {
	var out []serve.Tenant
	for _, part := range strings.Split(spec, ",") {
		name, weight, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return nil, fmt.Errorf("edad: tenant %q is not name=weight", part)
		}
		w, err := strconv.ParseFloat(weight, 64)
		if err != nil {
			return nil, fmt.Errorf("edad: tenant %q weight: %v", name, err)
		}
		out = append(out, serve.Tenant{Name: name, Weight: w})
	}
	return out, nil
}

// buildTemplates characterizes each design and converts its deployment
// problem into a serving template, keeping only the machine choices
// the serving fleet actually offers.
func buildTemplates(catalog *cloud.Catalog, fleet *cloud.Fleet, designs []string, scale float64, workers int, useCache bool) ([]serve.Template, error) {
	lib := techlib.Default14nm()
	opts := core.CharacterizeOptions{Scale: scale, Workers: workers}
	var out []serve.Template
	for _, d := range designs {
		d = strings.TrimSpace(d)
		char, err := core.CharacterizeEval(lib, d, opts)
		if err != nil {
			return nil, err
		}
		prob, err := core.BuildDeploymentProblem(char, catalog)
		if err != nil {
			return nil, err
		}
		tpl := serve.Template{Name: d, Kinds: core.JobKinds()}
		if useCache {
			sk, err := core.CacheChain(lib, d, opts)
			if err != nil {
				return nil, err
			}
			for _, s := range sk {
				tpl.Chain = append(tpl.Chain, s.Key)
			}
		}
		for l, cl := range prob.Classes {
			kept := cl
			kept.Items = nil
			for _, it := range cl.Items {
				if _, ok := fleet.TypeByName(it.Label); ok {
					kept.Items = append(kept.Items, it)
				}
			}
			if len(kept.Items) == 0 {
				return nil, fmt.Errorf("edad: design %s stage %s has no machine choice in fleet", d, tpl.Kinds[l])
			}
			tpl.Classes = append(tpl.Classes, kept)
		}
		out = append(out, tpl)
	}
	return out, nil
}

type replayParams struct {
	seed        int64
	jobs        int
	rate, burst float64
	slack       float64
	workers     int
	fleetSpec   string
	designs     []string
	hazards     map[string]float64
	hazardRate  float64
	hazardSeed  int64
	spot        float64
	cache       bool
	// armFleet builds a fresh fleet from a spec with the replay's
	// revocation model attached — both engines must face identical
	// revocation timelines.
	armFleet func(string) *cloud.Fleet
}

// runReplay generates the trace, replays it under both engines over
// identical fleets, and prints the comparison.
func runReplay(fleet *cloud.Fleet, tenants []serve.Tenant, templates []serve.Template, p replayParams) {
	// Deadline slack is denominated in each template's slowest solo
	// runtime, so one -slack value works across designs and scales.
	slackSec := 0.0
	if p.slack > 0 {
		worst := 0
		for _, tpl := range templates {
			total := 0
			for _, cl := range tpl.Classes {
				w := 0
				for _, it := range cl.Items {
					if it.TimeSec > w {
						w = it.TimeSec
					}
				}
				total += w
			}
			if total > worst {
				worst = total
			}
		}
		slackSec = p.slack * float64(worst)
	}

	var tnames, dnames []string
	for _, t := range tenants {
		tnames = append(tnames, t.Name)
	}
	for _, tpl := range templates {
		dnames = append(dnames, tpl.Name)
	}
	trace, err := serve.TraceGen(serve.TraceConfig{
		Seed: p.seed, Jobs: p.jobs, RatePerSec: p.rate, Burstiness: p.burst,
		SlackSec: slackSec, Tenants: tnames, Templates: dnames,
	})
	if err != nil {
		fail(err)
	}

	fmt.Printf("edad replay: %d jobs, seed %d, rate %.3g/s, burstiness %.2f, slack %.0fs\n",
		p.jobs, p.seed, p.rate, p.burst, slackSec)
	fmt.Printf("fleet: %s\n", p.fleetSpec)
	if p.spot > 0 {
		fmt.Printf("spot: %.0f%% discount\n", 100*p.spot)
	}
	if p.hazardRate > 0 {
		fmt.Printf("hazards: %.3g revocations/h on spot capacity, seed %d\n", p.hazardRate, p.hazardSeed)
	}
	if p.cache {
		fmt.Printf("artifact cache: enabled (templates carry chain keys)\n")
	}
	fmt.Printf("tenants: %s\n", strings.Join(tnames, ", "))
	fmt.Printf("templates: %s\n\n", strings.Join(dnames, ", "))

	_, rolling, err := serve.Replay(serve.Config{
		Fleet: fleet, Tenants: tenants, Templates: templates, Workers: p.workers,
		Hazards: p.hazards,
	}, trace)
	if err != nil {
		fail(err)
	}
	_, indep, err := serve.Replay(serve.Config{
		Fleet: p.armFleet(p.fleetSpec), Tenants: tenants, Templates: templates, Workers: p.workers,
		Hazards:     p.hazards,
		Independent: true,
	}, trace)
	if err != nil {
		fail(err)
	}

	fmt.Printf("rolling-horizon:\n%s\n", indent(rolling.String()))
	fmt.Printf("independent baseline:\n%s\n", indent(indep.String()))

	fmt.Printf("rolling vs independent: cost $%.4f vs $%.4f, makespan %.3fs vs %.3fs, admitted %d vs %d\n",
		rolling.TotalCostUSD, indep.TotalCostUSD,
		rolling.MakespanSec, indep.MakespanSec,
		rolling.Admitted, indep.Admitted)
	check("no admitted job missed its deadline or its promise",
		rolling.MissedDeadlines == 0 && rolling.MissedPromises == 0)
	// The cost comparison is apples-to-apples only when both engines
	// admitted the same jobs; when the rolling engine squeezes extra
	// jobs in, its bill covers more work.
	sameSet := len(rolling.Statuses) == len(indep.Statuses)
	if sameSet {
		for i := range rolling.Statuses {
			if (rolling.Statuses[i].Status == serve.StatusRejected) != (indep.Statuses[i].Status == serve.StatusRejected) {
				sameSet = false
				break
			}
		}
	}
	if sameSet {
		check("rolling-horizon cost within the independent baseline",
			rolling.TotalCostUSD <= indep.TotalCostUSD+1e-9)
	} else {
		fmt.Printf("note: admitted sets differ (rolling %d vs independent %d); total bills cover different work\n",
			rolling.Admitted, indep.Admitted)
	}
	printBusiest(rolling)
}

// printBusiest lists each tenant's share of the admitted spend — the
// fairness ledger at a glance.
func printBusiest(rep *serve.Report) {
	stats := append([]serve.TenantStat(nil), rep.Tenants...)
	sort.Slice(stats, func(i, j int) bool { return stats[i].CostUSD > stats[j].CostUSD })
	fmt.Println("\nspend by tenant:")
	for _, s := range stats {
		share := 0.0
		if rep.TotalCostUSD > 0 {
			share = 100 * s.CostUSD / rep.TotalCostUSD
		}
		fmt.Printf("  %-8s $%.4f (%5.1f%%) across %d jobs\n", s.Name, s.CostUSD, share, s.Done+s.Canceled)
	}
}

func check(what string, ok bool) {
	if ok {
		fmt.Printf("PASS: %s\n", what)
		return
	}
	fmt.Printf("FAIL: %s\n", what)
	os.Exit(1)
}

func indent(s string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i := range lines {
		lines[i] = "  " + lines[i]
	}
	return strings.Join(lines, "\n") + "\n"
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
