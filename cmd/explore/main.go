// Command explore runs the DSE autopilot: a seeded multi-objective
// search over synthesis recipes, STA clock periods and deadline slack,
// evaluated on a bounded simulated fleet with GCN-predicted runtimes
// pruning the cheap rung and the real flow engines scoring the
// survivors. It prints the Pareto front over (QoR, cost, runtime) and,
// with -cache, the artifact-store dedup that lets a fixed budget buy
// more trials.
//
// Usage:
//
//	explore -design dyn_node -seed 3 -rounds 3 -budget 0.5 -cache
//
// Every printed quantity is simulated and deterministic: the same seed
// produces byte-identical output at any -workers value.
package main

import (
	"flag"
	"fmt"
	"os"

	"edacloud/internal/cache"
	"edacloud/internal/cloud"
	"edacloud/internal/core"
	"edacloud/internal/dse"
	"edacloud/internal/gcn"
	"edacloud/internal/synth"
	"edacloud/internal/techlib"
)

func main() {
	design := flag.String("design", "dyn_node", "evaluation design to explore")
	scale := flag.Float64("scale", 0.02, "design scale factor")
	fleetSpec := flag.String("fleet", "gp.1x=1,gp.2x=1,mem.1x=1,mem.2x=1", "bounded fleet (type=count,...)")
	seed := flag.Int64("seed", 1, "search seed")
	rounds := flag.Int("rounds", 3, "successive-halving rounds")
	population := flag.Int("population", 4, "candidates sampled per round")
	eta := flag.Int("eta", 4, "halving factor (ceil(population/eta) survive the cheap rung)")
	maxPasses := flag.Int("max-passes", 3, "longest sampled recipe")
	budget := flag.Float64("budget", 0, "simulated budget in USD (0 = unlimited)")
	useCache := flag.Bool("cache", false, "route trials through a shared artifact store")
	workers := flag.Int("workers", 0, "host fan-out bound (0 = all cores; results identical)")
	trainScale := flag.Float64("train-scale", 0.05, "predictor training-set scale")
	epochs := flag.Int("epochs", 5, "predictor training epochs")
	flag.Parse()

	lib := techlib.Default14nm()
	catalog := cloud.DefaultCatalog()
	fleet, err := cloud.ParseFleetSpec(catalog, *fleetSpec)
	if err != nil {
		fail(err)
	}

	fmt.Printf("DSE autopilot: %s at scale %g on fleet %s\n", *design, *scale, *fleetSpec)
	fmt.Printf("Training runtime predictor (3 benchmarks x 1 recipe at scale %g, %d epochs)...\n",
		*trainScale, *epochs)
	ds, err := core.BuildDataset(lib, core.DatasetOptions{
		Benchmarks: []string{"adder", "bar", "dec"},
		Recipes:    synth.StandardRecipes[:1],
		Scale:      *trainScale,
		Workers:    *workers,
	})
	if err != nil {
		fail(err)
	}
	pred, _, err := core.TrainPredictor(ds, gcn.Config{
		Hidden1: 8, Hidden2: 6, FCHidden: 6, LR: 3e-3, Epochs: *epochs,
	}, 0.34, 7)
	if err != nil {
		fail(err)
	}

	var store *cache.Store
	if *useCache {
		store = cache.New(0)
	}
	budgetLabel := "unlimited"
	if *budget > 0 {
		budgetLabel = fmt.Sprintf("$%.4f", *budget)
	}
	fmt.Printf("Exploring: %d rounds x population %d, eta %d, seed %d, budget %s\n\n",
		*rounds, *population, *eta, *seed, budgetLabel)

	res, err := dse.Explore(dse.Config{
		Design:     *design,
		Scale:      *scale,
		MaxPasses:  *maxPasses,
		Population: *population,
		Eta:        *eta,
		Rounds:     *rounds,
		BudgetUSD:  *budget,
		Seed:       *seed,
		Workers:    *workers,
		Fleet:      fleet,
		Catalog:    catalog,
		Lib:        lib,
		Predictor:  pred,
		Store:      store,
	})
	if err != nil {
		fail(err)
	}

	prev := 0.0
	for i, cum := range res.RoundSpentUSD {
		fmt.Printf("round %d: spent $%.4f (cumulative $%.4f)\n", i+1, cum-prev, cum)
		prev = cum
	}
	fmt.Printf("\nExplored %d candidates in %d rounds: %d full evaluations, $%.4f simulated spend\n",
		res.Sampled, res.Rounds, res.Evaluated, res.SpentUSD)
	if store != nil {
		st := res.CacheStats
		fmt.Printf("Artifact cache: %d hits / %d misses (%.1f%% hit rate)\n",
			st.Hits, st.Misses, 100*st.HitRate())
	}

	fmt.Printf("\nPareto front over (QoR, cost, runtime) — no point dominates another:\n")
	fmt.Printf("  %-12s %8s %6s %10s %10s %9s\n", "recipe", "clock_ns", "slack", "qor", "cost_usd", "runtime_s")
	for _, tr := range res.Front {
		fmt.Printf("  %-12s %8.2f %6.2f %10.1f %10.4f %9.0f\n",
			tr.Recipe.Name, tr.ClockPeriodNs, tr.SlackFactor,
			tr.Full.QoR, tr.Full.CostUSD, tr.Full.RuntimeSec)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "explore:", err)
	os.Exit(1)
}
