package main

import (
	"flag"
	"testing"

	"edacloud/internal/clitest"
)

var update = flag.Bool("update", false, "rewrite the golden files")

// TestExploreGolden pins one full exploration end to end — the round
// spends, the summary counts and the Pareto front — and proves the
// determinism contract the autopilot advertises: the same seed yields
// byte-identical output at -workers 1 and -workers 8.
func TestExploreGolden(t *testing.T) {
	bin := clitest.Build(t, "")
	args := []string{
		"-design", "dyn_node",
		"-seed", "3",
		"-rounds", "3",
		"-population", "6",
		"-eta", "3",
	}
	one := clitest.Run(t, bin, append(args, "-workers", "1")...)
	clitest.Golden(t, "testdata/explore.golden", one, *update)
	eight := clitest.Run(t, bin, append(args, "-workers", "8")...)
	if one != eight {
		t.Fatal("-workers 8 output diverged from -workers 1")
	}
}

// TestExploreCacheGolden pins the cache-enabled mode: the same search
// with a shared artifact store reports the dedup hit rate and a bill
// no larger than the blind run's — the "more trials per simulated
// dollar" headline in its CLI form.
func TestExploreCacheGolden(t *testing.T) {
	bin := clitest.Build(t, "")
	got := clitest.Run(t, bin,
		"-design", "dyn_node",
		"-seed", "3",
		"-rounds", "3",
		"-population", "6",
		"-eta", "3",
		"-cache",
	)
	clitest.Golden(t, "testdata/explore_cache.golden", got, *update)
}
