package main

import (
	"flag"
	"testing"

	"edacloud/internal/clitest"
)

var update = flag.Bool("update", false, "rewrite the golden files")

// TestAdaptiveFleetGolden pins the -fleet -policy adaptive mode's
// stdout end to end: the co-optimized plans, the contended schedule
// with its per-stage placements (where adaptive upgrades are visible
// as off-plan instances), and the fleet ledger.
func TestAdaptiveFleetGolden(t *testing.T) {
	bin := clitest.Build(t, "")
	got := clitest.Run(t, bin,
		"-design", "ibex",
		"-scale", "0.03",
		"-fleet", "gp.1x=1,gp.8x=1,mem.1x=1,mem.8x=1",
		"-batch", "3",
		"-policy", "adaptive",
	)
	clitest.Golden(t, "testdata/adaptive_fleet.golden", got, *update)
}
