package main

import (
	"flag"
	"testing"

	"edacloud/internal/clitest"
)

var update = flag.Bool("update", false, "rewrite the golden files")

// TestAdaptiveFleetGolden pins the -fleet -policy adaptive mode's
// stdout end to end: the co-optimized plans, the contended schedule
// with its per-stage placements (where adaptive upgrades are visible
// as off-plan instances), and the fleet ledger.
// TestSpotFleetGolden pins the -spot fleet batch's stdout end to end:
// the per-job schedule with revocation and lost-work columns, the
// per-attempt stage table (checkpoint recovery and escalation to the
// on-demand counterpart are visible as attempt-2 rows on mem.4x), the
// batch preemption summary, and the truncated-lease fleet ledger.
func TestSpotFleetGolden(t *testing.T) {
	bin := clitest.Build(t, "")
	got := clitest.Run(t, bin,
		"-design", "aes",
		"-scale", "0.03",
		"-fleet", "mem.4x.spot=2,mem.4x=1",
		"-batch", "3",
		"-instance", "mem.4x.spot",
		"-spot",
		"-hazard-seed", "11",
		"-hazard-rate", "60",
		"-escalate-after", "1",
	)
	clitest.Golden(t, "testdata/spot_fleet.golden", got, *update)
}

func TestAdaptiveFleetGolden(t *testing.T) {
	bin := clitest.Build(t, "")
	got := clitest.Run(t, bin,
		"-design", "ibex",
		"-scale", "0.03",
		"-fleet", "gp.1x=1,gp.8x=1,mem.1x=1,mem.8x=1",
		"-batch", "3",
		"-policy", "adaptive",
	)
	clitest.Golden(t, "testdata/adaptive_fleet.golden", got, *update)
}

// TestHierFleetGolden pins the -hier fleet batch: the design split into
// cone-partition sub-designs, one scheduled job per partition, and the
// stitched result's stats with the equivalence verdict.
func TestHierFleetGolden(t *testing.T) {
	bin := clitest.Build(t, "")
	got := clitest.Run(t, bin,
		"-design", "aes",
		"-scale", "0.02",
		"-stages", "synthesis",
		"-fleet", "gp.4x=2",
		"-policy", "firstfit",
		"-hier",
		"-hier-grain", "300",
	)
	clitest.Golden(t, "testdata/hier_fleet.golden", got, *update)
}

// TestCacheFleetGolden pins the -cache fleet batch: an artifact store
// attached across three copies of the same flow. The first copy
// computes every stage; the planner predicts the rest as hits, so
// their stage tables show "(cache)" placements at the probe constant
// and the batch bills a single copy's work. The cache summary line
// pins the hit/miss accounting.
func TestCacheFleetGolden(t *testing.T) {
	bin := clitest.Build(t, "")
	got := clitest.Run(t, bin,
		"-design", "aes",
		"-scale", "0.03",
		"-fleet", "gp.2x=1,mem.2x=1",
		"-batch", "3",
		"-policy", "adaptive",
		"-cache",
	)
	clitest.Golden(t, "testdata/cache_fleet.golden", got, *update)
}

// TestCacheFirstFitGolden pins -cache under the firstfit policy: the
// scheduler-level dedup path (no planner involved) — later copies'
// stages adopt the first copy's artifacts and book no machine.
func TestCacheFirstFitGolden(t *testing.T) {
	bin := clitest.Build(t, "")
	got := clitest.Run(t, bin,
		"-design", "aes",
		"-scale", "0.03",
		"-fleet", "gp.4x=1,mem.8x=1",
		"-batch", "3",
		"-policy", "firstfit",
		"-cache",
	)
	clitest.Golden(t, "testdata/cache_firstfit.golden", got, *update)
}
