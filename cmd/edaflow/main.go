// Command edaflow runs an EDA flow — synthesis, placement, routing,
// static timing — on one design through the composable flow.Pipeline
// API, streaming per-stage progress, and prints the artifacts each
// stage produces plus (optionally) the per-stage performance profile
// under a chosen VM configuration.
//
// Usage:
//
//	edaflow -design ibex -scale 0.05 -recipe resyn2 -vcpus 4
//	edaflow -bench multiplier -scale 0.2
//	edaflow -design ibex -stages synthesis,sta
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"edacloud/internal/aig"
	"edacloud/internal/designs"
	"edacloud/internal/flow"
	"edacloud/internal/perf"
	"edacloud/internal/place"
	"edacloud/internal/route"
	"edacloud/internal/sta"
	"edacloud/internal/synth"
	"edacloud/internal/techlib"
)

func main() {
	design := flag.String("design", "", "evaluation design name (dyn_node..sparc_core)")
	bench := flag.String("bench", "", "benchmark name (adder..voter); alternative to -design")
	scale := flag.Float64("scale", 0.05, "design scale factor")
	recipeName := flag.String("recipe", "resyn2", "synthesis recipe (raw, b, rw, rf, resyn, resyn2, compress, deep)")
	vcpus := flag.Int("vcpus", 4, "VM vCPU count for the performance profile")
	registers := flag.Bool("registers", false, "register all primary outputs behind DFFs")
	clock := flag.Float64("clock", 1.0, "clock period for STA (ns)")
	stages := flag.String("stages", "", "comma-separated partial flow (e.g. synthesis,sta); empty runs the full flow")
	workers := flag.Int("workers", 0, "worker-pool bound for every stage (0 = all cores; results identical)")
	flag.Parse()

	var g *aig.Graph
	var err error
	switch {
	case *design != "":
		g, err = designs.EvalDesign(*design, *scale)
	case *bench != "":
		g, err = designs.Benchmark(*bench, *scale)
	default:
		g, err = designs.EvalDesign("ibex", *scale)
	}
	if err != nil {
		fail(err)
	}
	recipe, err := synth.RecipeByName(*recipeName)
	if err != nil {
		fail(err)
	}

	fmt.Printf("Design %s: %v\n\n", g.Name, g.Stats())

	lib := techlib.Default14nm()
	estCells := flow.EstimateCells(g.NumAnds())
	opts := []flow.Option{
		flow.WithRecipe(recipe),
		flow.WithRegisterOutputs(*registers),
		flow.WithClockPeriodNs(*clock),
		flow.WithWorkers(*workers),
		flow.WithNewProbe(func(flow.JobKind) *perf.Probe {
			return flow.NewJobProbe(*vcpus, estCells)
		}),
		flow.WithEvents(func(e flow.Event) {
			switch e.Type {
			case flow.StageStarted:
				fmt.Printf("[%d/%d] %s...\n", e.Index+1, e.Total, e.Stage)
			case flow.StageFinished:
				if e.Err != nil {
					fmt.Printf("[%d/%d] %s failed: %v\n", e.Index+1, e.Total, e.Stage, e.Err)
				}
			}
		}),
	}
	if list := partialStages(*stages, recipe, *registers, *clock); list != nil {
		opts = append(opts, flow.WithStages(list...))
	}

	rc, err := flow.NewPipeline(opts...).Run(g, lib)
	if err != nil {
		fail(err)
	}

	fmt.Println()
	if rc.Netlist != nil {
		fmt.Printf("Synthesis  (%s): %v -> %s\n", recipe.Name, rc.Optimized.Stats(), rc.Netlist.Stats())
	}
	if rc.Placement != nil {
		fmt.Printf("Placement  : die %.1f x %.1f um, HPWL %.1f um (global %.1f), overflow %.3f\n",
			rc.Placement.DieW, rc.Placement.DieH, rc.Placement.HPWL,
			rc.Placement.HPWLGlobal, rc.Placement.Overflow)
	}
	if rc.Routing != nil {
		fmt.Printf("Routing    : grid %dx%d, %d connections, wirelength %d, overflow %d, %d RRR iters\n",
			rc.Routing.GridW, rc.Routing.GridH, rc.Routing.Connections,
			rc.Routing.Wirelength, rc.Routing.Overflow, rc.Routing.Iterations)
	}
	if rc.Timing != nil {
		fmt.Printf("STA        : max arrival %.3f ns, WNS %.3f ns, TNS %.3f ns over %d endpoints\n",
			rc.Timing.MaxArrival, rc.Timing.WNS, rc.Timing.TNS, rc.Timing.Endpoints)
		fmt.Printf("Critical path: %d cells\n", len(rc.Timing.CriticalPath))
	}

	fmt.Printf("\nPerformance profile at %d vCPUs:\n", *vcpus)
	m := perf.Xeon14(*vcpus)
	for _, k := range flow.JobKinds() {
		rep := rc.Reports[k]
		if rep == nil {
			continue
		}
		c := rep.Total()
		fmt.Printf("  %-10s %12d instr, %6.2f%% br-miss, %5.1f%% cache-miss, %5.1f%% AVX, %.4fs\n",
			k, c.Instrs, c.BranchMissPct(), c.CacheMissPct(), c.FPVectorPct(), m.Seconds(rep))
	}
}

// partialStages translates the -stages flag into a stage list; nil
// means the full default flow.
func partialStages(spec string, recipe synth.Recipe, registers bool, clock float64) []flow.Stage {
	if spec == "" {
		return nil
	}
	var out []flow.Stage
	for _, name := range strings.Split(spec, ",") {
		switch strings.TrimSpace(name) {
		case "synthesis":
			out = append(out, flow.Synthesis(synth.Options{Recipe: recipe, RegisterOutputs: registers}))
		case "placement":
			out = append(out, flow.Placement(place.Options{}))
		case "routing":
			out = append(out, flow.Routing(route.Options{}))
		case "sta":
			out = append(out, flow.STA(sta.Options{ClockPeriodNs: clock}))
		default:
			fail(fmt.Errorf("unknown stage %q (want synthesis, placement, routing, sta)", name))
		}
	}
	return out
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "edaflow:", err)
	os.Exit(1)
}
