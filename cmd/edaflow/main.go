// Command edaflow runs an EDA flow — synthesis, placement, routing,
// static timing — on one design through the composable flow.Pipeline
// API, streaming per-stage progress, and prints the artifacts each
// stage produces plus (optionally) the per-stage performance profile
// under a chosen VM configuration. With -fleet it instead schedules a
// batch of copies of the flow over a bounded instance fleet and prints
// the contended schedule and the fleet's utilization/cost ledger.
//
// Usage:
//
//	edaflow -design ibex -scale 0.05 -recipe resyn2 -vcpus 4
//	edaflow -bench multiplier -scale 0.2
//	edaflow -design ibex -stages synthesis,sta
//	edaflow -design ibex -fleet mem.8x=2 -batch 4 -instance mem.8x
//	edaflow -design aes -fleet gp.4x=1,mem.8x=1 -batch 3 -policy firstfit -minbill 60
//	edaflow -design ibex -fleet gp.1x=1,gp.8x=1,mem.1x=1,mem.8x=1 -batch 3 -policy adaptive
//	edaflow -design aes -fleet mem.4x.spot=2,mem.4x=1 -batch 3 -instance mem.4x.spot -spot -hazard-seed 11 -escalate-after 1
//	edaflow -bench adder -scale 100 -stages synthesis -fleet gp.4x=4 -policy firstfit -hier -hier-grain 20000
//
// -hier switches the -fleet batch to hierarchical mode: instead of
// -batch copies of the whole flow, the one design is split into cone
// partitions of roughly -hier-grain AND nodes, each partition runs as
// its own schedulable job on the fleet, and the optimized sub-designs
// are stitched back into one equivalence-checked graph — design-level
// parallelism for million-gate designs.
//
// -spot prices revocable twins of every catalog type at a 30%
// discount and arms a seeded revocation injector over the fleet's
// spot instances: revoked stages lose only the work since their last
// stage-boundary checkpoint, re-enter the queue with backoff, and can
// escalate to the on-demand counterpart after -escalate-after
// revocations. The schedule and ledger report the revocations and the
// lost work alongside the usual columns.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"edacloud/internal/aig"
	"edacloud/internal/cache"
	"edacloud/internal/cloud"
	"edacloud/internal/core"
	"edacloud/internal/designs"
	"edacloud/internal/flow"
	"edacloud/internal/perf"
	"edacloud/internal/place"
	"edacloud/internal/route"
	"edacloud/internal/sta"
	"edacloud/internal/synth"
	"edacloud/internal/techlib"
)

func main() {
	design := flag.String("design", "", "evaluation design name (dyn_node..sparc_core)")
	bench := flag.String("bench", "", "benchmark name (adder..voter); alternative to -design")
	scale := flag.Float64("scale", 0.05, "design scale factor")
	recipeName := flag.String("recipe", "resyn2", "synthesis recipe (raw, b, rw, rf, resyn, resyn2, compress, deep)")
	vcpus := flag.Int("vcpus", 4, "VM vCPU count for the performance profile")
	registers := flag.Bool("registers", false, "register all primary outputs behind DFFs")
	clock := flag.Float64("clock", 1.0, "clock period for STA (ns)")
	stages := flag.String("stages", "", "comma-separated partial flow (e.g. synthesis,sta); empty runs the full flow")
	workers := flag.Int("workers", 0, "worker-pool bound for every stage (0 = all cores; results identical)")
	fleetSpec := flag.String("fleet", "", "schedule a batch over this bounded fleet (name=count,...) instead of one local run")
	batch := flag.Int("batch", 4, "number of flow copies in the -fleet batch")
	instName := flag.String("instance", "mem.4x", "instance type each batch job nominally rents (single policy)")
	policyName := flag.String("policy", "single", "fleet placement policy: single (job keeps one machine), firstfit (greedy any-machine, per stage), or adaptive (co-optimized stage plans, upgrading when queueing eats a job's slack; needs -design)")
	minBill := flag.Float64("minbill", 0, "minimum billing granularity in seconds (0 = pure per-second)")
	deadlineSec := flag.Float64("deadline", 0, "per-job completion deadline in simulated seconds (0 = none)")
	spot := flag.Bool("spot", false, "price revocable spot twins of every type at a 30% discount and arm the revocation injector")
	hazardSeed := flag.Int64("hazard-seed", 1, "revocation timeline seed for -spot")
	hazardRate := flag.Float64("hazard-rate", 60, "revocations per spot-instance-hour for -spot")
	escalateAfter := flag.Int("escalate-after", 0, "escalate a stage to the on-demand counterpart after this many revocations (0 = never)")
	useCache := flag.Bool("cache", false, "attach a content-addressed artifact store across the -fleet batch: identical stage work dedups to cache hits (adaptive policy also plans against predicted hits)")
	hier := flag.Bool("hier", false, "hierarchical -fleet mode: schedule the design's cone partitions as the batch jobs instead of -batch copies, then stitch the optimized sub-designs back together (-batch is ignored)")
	hierGrain := flag.Int("hier-grain", 2000, "target AND nodes per sub-design in -hier mode")
	flag.Parse()

	var g *aig.Graph
	var err error
	switch {
	case *design != "":
		g, err = designs.EvalDesign(*design, *scale)
	case *bench != "":
		g, err = designs.Benchmark(*bench, *scale)
	default:
		g, err = designs.EvalDesign("ibex", *scale)
	}
	if err != nil {
		fail(err)
	}
	recipe, err := synth.RecipeByName(*recipeName)
	if err != nil {
		fail(err)
	}

	fmt.Printf("Design %s: %v\n\n", g.Name, g.Stats())

	lib := techlib.Default14nm()
	stageList := partialStages(*stages, recipe, *registers, *clock)

	if *fleetSpec != "" {
		runFleetBatch(g, lib, recipe, stageList, batchConfig{
			fleetSpec: *fleetSpec, batch: *batch, instance: *instName,
			policy: *policyName, minBill: *minBill, deadline: *deadlineSec,
			workers: *workers, registers: *registers, clock: *clock,
			design: *design, scale: *scale,
			spot: *spot, hazardSeed: *hazardSeed, hazardRate: *hazardRate,
			escalateAfter: *escalateAfter, cache: *useCache,
			hier: *hier, hierGrain: *hierGrain,
		})
		return
	}
	if *spot {
		fail(fmt.Errorf("-spot needs -fleet: revocations only exist in the fleet simulation"))
	}
	if *useCache {
		fail(fmt.Errorf("-cache needs -fleet: the artifact store dedups across a batch"))
	}
	if *hier {
		fail(fmt.Errorf("-hier needs -fleet: sub-designs are scheduled as fleet jobs"))
	}

	estCells := flow.EstimateCells(g.NumAnds())
	opts := []flow.Option{
		flow.WithRecipe(recipe),
		flow.WithRegisterOutputs(*registers),
		flow.WithClockPeriodNs(*clock),
		flow.WithWorkers(*workers),
		flow.WithNewProbe(func(flow.JobKind) *perf.Probe {
			return flow.NewJobProbe(*vcpus, estCells)
		}),
		flow.WithEvents(func(e flow.Event) {
			switch e.Type {
			case flow.StageStarted:
				fmt.Printf("[%d/%d] %s...\n", e.Index+1, e.Total, e.Stage)
			case flow.StageFinished:
				if e.Err != nil {
					fmt.Printf("[%d/%d] %s failed: %v\n", e.Index+1, e.Total, e.Stage, e.Err)
				}
			}
		}),
	}
	if stageList != nil {
		opts = append(opts, flow.WithStages(stageList...))
	}

	rc, err := flow.NewPipeline(opts...).Run(g, lib)
	if err != nil {
		fail(err)
	}

	fmt.Println()
	if rc.Netlist != nil {
		fmt.Printf("Synthesis  (%s): %v -> %s\n", recipe.Name, rc.Optimized.Stats(), rc.Netlist.Stats())
	}
	if rc.Placement != nil {
		fmt.Printf("Placement  : die %.1f x %.1f um, HPWL %.1f um (global %.1f), overflow %.3f\n",
			rc.Placement.DieW, rc.Placement.DieH, rc.Placement.HPWL,
			rc.Placement.HPWLGlobal, rc.Placement.Overflow)
	}
	if rc.Routing != nil {
		fmt.Printf("Routing    : grid %dx%d, %d connections, wirelength %d, overflow %d, %d RRR iters\n",
			rc.Routing.GridW, rc.Routing.GridH, rc.Routing.Connections,
			rc.Routing.Wirelength, rc.Routing.Overflow, rc.Routing.Iterations)
	}
	if rc.Timing != nil {
		fmt.Printf("STA        : max arrival %.3f ns, WNS %.3f ns, TNS %.3f ns over %d endpoints\n",
			rc.Timing.MaxArrival, rc.Timing.WNS, rc.Timing.TNS, rc.Timing.Endpoints)
		fmt.Printf("Critical path: %d cells\n", len(rc.Timing.CriticalPath))
	}

	fmt.Printf("\nPerformance profile at %d vCPUs:\n", *vcpus)
	m := perf.Xeon14(*vcpus)
	for _, k := range flow.JobKinds() {
		rep := rc.Reports[k]
		if rep == nil {
			continue
		}
		c := rep.Total()
		fmt.Printf("  %-10s %12d instr, %6.2f%% br-miss, %5.1f%% cache-miss, %5.1f%% AVX, %.4fs\n",
			k, c.Instrs, c.BranchMissPct(), c.CacheMissPct(), c.FPVectorPct(), m.Seconds(rep))
	}
}

// batchConfig carries the -fleet batch mode's knobs.
type batchConfig struct {
	fleetSpec string
	batch     int
	instance  string
	policy    string
	minBill   float64
	deadline  float64
	workers   int
	registers bool
	clock     float64
	// design and scale identify the evaluation design for the adaptive
	// policy, which must re-characterize it to build choice tables.
	design string
	scale  float64
	// spot arms the preemptible-fleet mode: discounted revocable twins
	// in the catalog plus a seeded revocation injector over the fleet.
	spot          bool
	hazardSeed    int64
	hazardRate    float64
	escalateAfter int
	// cache attaches a content-addressed artifact store to the batch:
	// copies of the same flow dedup to cache hits after the first.
	cache bool
	// hier schedules the design's cone partitions (of roughly hierGrain
	// AND nodes each) as the batch jobs instead of batch copies, then
	// stitches the optimized sub-designs back together.
	hier      bool
	hierGrain int
}

// runFleetBatch schedules copies of the configured flow over a bounded
// fleet — the paper's batch-deployment scenario — and prints the
// contended schedule plus the fleet's utilization/cost ledger. The
// adaptive policy first co-optimizes the copies' stage plans against
// the fleet (core.OptimizeBatch) and lets queue-starved stages upgrade
// within their choice tables at placement time.
func runFleetBatch(g *aig.Graph, lib *techlib.Library, recipe synth.Recipe, stageList []flow.Stage, cfg batchConfig) {
	catalog := cloud.DefaultCatalog()
	if cfg.spot {
		var err error
		if catalog, err = catalog.WithSpot(0.7); err != nil {
			fail(err)
		}
	}
	if cfg.minBill > 0 {
		catalog = catalog.WithMinBill(cfg.minBill)
	}
	fleet, err := cloud.ParseFleetSpec(catalog, cfg.fleetSpec)
	if err != nil {
		fail(err)
	}
	var retry flow.RetryPolicy
	if cfg.spot {
		fleet.Revocation = cloud.NewRevocationModel(cfg.hazardSeed,
			cloud.UniformSpotHazards(catalog, cfg.hazardRate))
		retry = flow.RetryPolicy{MaxAttempts: 50, BackoffSec: 30, EscalateAfter: cfg.escalateAfter}
	}
	var store *cache.Store
	if cfg.cache {
		store = cache.New(0)
	}

	var sched *flow.Schedule
	var hb *flow.HierarchicalBatch
	perJobDeadlines := cfg.deadline > 0
	switch cfg.policy {
	case "single", "firstfit":
		inst, err := catalog.ByName(cfg.instance)
		if err != nil {
			fail(err)
		}
		policy := flow.Policy(flow.SingleInstance{})
		if cfg.policy == "firstfit" {
			policy = flow.FirstFit{}
		}
		opts := []flow.Option{
			flow.WithRecipe(recipe),
			flow.WithRegisterOutputs(cfg.registers),
			flow.WithClockPeriodNs(cfg.clock),
		}
		if stageList != nil {
			opts = append(opts, flow.WithStages(stageList...))
		}
		var jobs []flow.Job
		if cfg.hier {
			hb, err = flow.Hierarchical(flow.Job{
				Design:      g,
				Lib:         lib,
				Options:     opts,
				Instance:    inst,
				DeadlineSec: cfg.deadline,
				Retry:       retry,
				// Extrapolate the reduced-scale simulation to full-flow
				// magnitudes (the dataset generator's representative factor).
				WorkScale: 2e4,
			}, cfg.hierGrain)
			if err != nil {
				fail(err)
			}
			jobs = hb.Jobs
			fmt.Printf("Hierarchical split: %d sub-designs (grain %d ANDs)\n", len(hb.Subs), cfg.hierGrain)
			fmt.Printf("%-12s %9s %9s %9s %9s\n", "sub", "ands", "inputs", "outputs", "exports")
			for pi, sub := range hb.Subs {
				fmt.Printf("%-12s %9d %9d %9d %9d\n", hb.Jobs[pi].Name,
					sub.Graph.NumAnds(), len(sub.Imports), len(sub.Outputs), len(sub.Exports))
			}
			fmt.Println()
		} else {
			for i := 0; i < cfg.batch; i++ {
				jobs = append(jobs, flow.Job{
					Name:        fmt.Sprintf("%s#%d", g.Name, i),
					Design:      g,
					Lib:         lib,
					Options:     opts,
					Instance:    inst,
					DeadlineSec: cfg.deadline,
					Retry:       retry,
					// Extrapolate the reduced-scale simulation to full-flow
					// magnitudes (the dataset generator's representative factor).
					WorkScale: 2e4,
				})
			}
		}
		if sched, err = (&flow.Scheduler{Workers: cfg.workers, Fleet: fleet, Policy: policy, Cache: store}).Run(nil, jobs); err != nil {
			fail(err)
		}
	case "adaptive":
		// The adaptive path executes through core.ExecuteBatchPlan,
		// which always runs the full default flow at the default clock:
		// flags it would silently drop are rejected instead.
		if stageList != nil || cfg.registers || cfg.clock != 1.0 {
			fail(fmt.Errorf("-policy adaptive runs the full default flow; -stages, -registers and -clock do not apply"))
		}
		if cfg.hier {
			fail(fmt.Errorf("-hier applies to the single and firstfit policies; adaptive plans per-design choice tables, not sub-design splits"))
		}
		if cfg.spot {
			fail(fmt.Errorf("-spot applies to the single and firstfit policies; use optimize -spot for risk-adjusted planning"))
		}
		sched = runAdaptiveBatch(lib, catalog, fleet, recipe, cfg, store)
		perJobDeadlines = true
	default:
		fail(fmt.Errorf("unknown policy %q (want single, firstfit or adaptive)", cfg.policy))
	}

	batchDesc := fmt.Sprintf("%d x %s", cfg.batch, g.Name)
	if hb != nil {
		batchDesc = fmt.Sprintf("%s split into %d sub-designs", g.Name, len(hb.Jobs))
	}
	if cfg.spot {
		fmt.Printf("Fleet batch: %s on %s (policy %s, hazard %.0f/h, seed %d)\n\n",
			batchDesc, fleet, sched.Policy, cfg.hazardRate, cfg.hazardSeed)
		fmt.Printf("%-12s %9s %9s %9s %9s %10s %6s %9s %9s\n",
			"job", "start", "busy", "wait", "finish", "cost ($)", "revs", "lost", "deadline")
	} else {
		fmt.Printf("Fleet batch: %s on %s (policy %s)\n\n", batchDesc, fleet, sched.Policy)
		fmt.Printf("%-12s %9s %9s %9s %9s %10s %9s\n",
			"job", "start", "busy", "wait", "finish", "cost ($)", "deadline")
	}
	for _, j := range sched.Jobs {
		if j.Err != nil {
			fail(j.Err)
		}
		status := "met"
		if !j.DeadlineMet {
			status = "MISSED"
		}
		if !perJobDeadlines {
			status = "-"
		}
		if cfg.spot {
			fmt.Printf("%-12s %8.0fs %8.0fs %8.0fs %8.0fs %10.4f %6d %8.0fs %9s\n",
				j.Name, j.StartSec, j.Seconds, j.WaitSec, j.FinishSec, j.CostUSD,
				j.Revocations, j.RetriedSec, status)
			continue
		}
		fmt.Printf("%-12s %8.0fs %8.0fs %8.0fs %8.0fs %10.4f %9s\n",
			j.Name, j.StartSec, j.Seconds, j.WaitSec, j.FinishSec, j.CostUSD, status)
	}
	if cfg.spot {
		fmt.Printf("\n%-12s %-10s %-14s %7s %9s %9s %9s\n",
			"job", "stage", "instance", "attempt", "start", "busy", "outcome")
		for _, j := range sched.Jobs {
			for _, st := range j.Stages {
				outcome := "done"
				if st.Revoked {
					outcome = "REVOKED"
				}
				fmt.Printf("%-12s %-10s %-14s %7d %8.0fs %8.0fs %9s\n",
					j.Name, st.Kind, st.Instance, st.Attempt, st.StartSec, st.Seconds, outcome)
			}
		}
	}
	if cfg.policy == "adaptive" {
		fmt.Printf("\n%-12s %-10s %-10s %9s %9s %9s\n",
			"job", "stage", "instance", "start", "wait", "busy")
		for _, j := range sched.Jobs {
			for _, st := range j.Stages {
				inst := st.Instance
				if st.Cached {
					inst = "(cache)"
				}
				fmt.Printf("%-12s %-10s %-10s %8.0fs %8.0fs %8.0fs\n",
					j.Name, st.Kind, inst, st.StartSec, st.WaitSec, st.Seconds)
			}
		}
	}
	if cfg.spot {
		fmt.Printf("\nBatch: $%.4f, makespan %.0fs, %.0fs queued, %d revocations, %.0fs lost to preemption, fleet %.1f%% utilized\n\n",
			sched.TotalCostUSD, sched.MakespanSec, sched.TotalWaitSec,
			sched.Revocations, sched.RetriedSec, sched.UtilizationPct)
	} else {
		fmt.Printf("\nBatch: $%.4f, makespan %.0fs, %.0fs queued, fleet %.1f%% utilized\n\n",
			sched.TotalCostUSD, sched.MakespanSec, sched.TotalWaitSec, sched.UtilizationPct)
	}
	if store != nil {
		st := store.Stats()
		fmt.Printf("Artifact cache: %d hits, %d misses, %d entries live (%d bytes)\n\n",
			st.Hits, st.Misses, store.Len(), store.Bytes())
	}
	fmt.Printf("%-12s %7s %9s %10s %7s\n", "instance", "leases", "busy", "cost ($)", "util")
	for _, row := range sched.Fleet.Ledger(sched.MakespanSec) {
		fmt.Printf("%-12s %7d %8.0fs %10.4f %6.1f%%\n",
			row.ID, row.Leases, row.BusySec, row.CostUSD, row.UtilizationPct)
	}
	if hb != nil {
		stitched, err := hb.Stitch(sched.Jobs)
		if err != nil {
			fail(err)
		}
		equiv := "equivalent"
		if !aig.SimEquiv(g, stitched, 1, 16) {
			equiv = "NOT EQUIVALENT"
		}
		fmt.Printf("\nStitched: %s (%s to the input design)\n", stitched.Stats(), equiv)
	}
}

// runAdaptiveBatch characterizes the design, co-optimizes the batch's
// stage plans against the fleet, prints them, and executes the batch
// under flow.AdaptivePolicy — each job carrying its choice table so a
// queue-starved stage can upgrade its instance class at placement
// time. The fleet is mutated with the run's leases for the ledger.
func runAdaptiveBatch(lib *techlib.Library, catalog *cloud.Catalog, fleet *cloud.Fleet, recipe synth.Recipe, cfg batchConfig, store *cache.Store) *flow.Schedule {
	if cfg.design == "" {
		fail(fmt.Errorf("-policy adaptive needs -design (it characterizes the design to build choice tables)"))
	}
	charOpts := core.CharacterizeOptions{Scale: cfg.scale, Recipe: recipe, Workers: cfg.workers}
	char, err := core.CharacterizeEval(lib, cfg.design, charOpts)
	if err != nil {
		fail(err)
	}
	prob, err := core.BuildDeploymentProblem(char, catalog)
	if err != nil {
		fail(err)
	}
	specs := make([]core.BatchJobSpec, cfg.batch)
	for i := range specs {
		specs[i] = core.BatchJobSpec{
			Name: fmt.Sprintf("%s#%d", cfg.design, i),
			Char: char, Prob: prob, DeadlineSec: int(cfg.deadline),
		}
	}
	if cfg.deadline <= 0 {
		// Default deadlines: 1.3x each copy's independently optimal
		// serial runtime — met alone on an idle fleet, eroded by
		// queueing in the contended batch.
		ibp, err := core.IndependentBatchPlan(specs, fleet)
		if err != nil {
			fail(err)
		}
		if !ibp.Feasible {
			fail(fmt.Errorf("no feasible plan on fleet %s", fleet))
		}
		for i := range specs {
			specs[i].DeadlineSec = int(1.3 * float64(ibp.Plans[i].TotalTime))
		}
	}
	if store != nil {
		// Predict which stages the store (plus earlier copies in this
		// batch) will serve, so the joint solve can spend each copy's
		// deadline budget on the stages it actually computes.
		if err := core.PredictCacheHits(store, lib, specs, charOpts); err != nil {
			fail(err)
		}
	}
	bp, err := core.OptimizeBatchOpts(specs, fleet, core.BatchOptions{Cache: store})
	if err != nil {
		fail(err)
	}
	if !bp.Feasible {
		fail(fmt.Errorf("batch infeasible: a copy cannot meet its own deadline alone"))
	}
	fmt.Printf("Co-optimized plans (method %s):\n", bp.Selection.Method)
	for i := range specs {
		fmt.Printf("  %-12s deadline %4ds  %s\n", specs[i].Name, specs[i].DeadlineSec, bp.Plans[i])
	}
	fmt.Println()
	sched, err := core.ExecuteBatchPlan(lib, specs, bp, charOpts, fleet, true)
	if err != nil {
		fail(err)
	}
	return sched
}

// partialStages translates the -stages flag into a stage list; nil
// means the full default flow.
func partialStages(spec string, recipe synth.Recipe, registers bool, clock float64) []flow.Stage {
	if spec == "" {
		return nil
	}
	var out []flow.Stage
	for _, name := range strings.Split(spec, ",") {
		switch strings.TrimSpace(name) {
		case "synthesis":
			out = append(out, flow.Synthesis(synth.Options{Recipe: recipe, RegisterOutputs: registers}))
		case "placement":
			out = append(out, flow.Placement(place.Options{}))
		case "routing":
			out = append(out, flow.Routing(route.Options{}))
		case "sta":
			out = append(out, flow.STA(sta.Options{ClockPeriodNs: clock}))
		default:
			fail(fmt.Errorf("unknown stage %q (want synthesis, placement, routing, sta)", name))
		}
	}
	return out
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "edaflow:", err)
	os.Exit(1)
}
