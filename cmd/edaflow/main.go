// Command edaflow runs the full four-stage EDA flow — synthesis,
// placement, routing, static timing — on one design and prints the
// artifacts each stage produces, plus (optionally) the per-stage
// performance profile under a chosen VM configuration.
//
// Usage:
//
//	edaflow -design ibex -scale 0.05 -recipe resyn2 -vcpus 4
//	edaflow -bench multiplier -scale 0.2
package main

import (
	"flag"
	"fmt"
	"os"

	"edacloud/internal/aig"
	"edacloud/internal/core"
	"edacloud/internal/designs"
	"edacloud/internal/perf"
	"edacloud/internal/synth"
	"edacloud/internal/techlib"
)

func main() {
	design := flag.String("design", "", "evaluation design name (dyn_node..sparc_core)")
	bench := flag.String("bench", "", "benchmark name (adder..voter); alternative to -design")
	scale := flag.Float64("scale", 0.05, "design scale factor")
	recipeName := flag.String("recipe", "resyn2", "synthesis recipe (raw, b, rw, rf, resyn, resyn2, compress, deep)")
	vcpus := flag.Int("vcpus", 4, "VM vCPU count for the performance profile")
	registers := flag.Bool("registers", false, "register all primary outputs behind DFFs")
	clock := flag.Float64("clock", 1.0, "clock period for STA (ns)")
	flag.Parse()

	var g *aig.Graph
	var err error
	switch {
	case *design != "":
		g, err = designs.EvalDesign(*design, *scale)
	case *bench != "":
		g, err = designs.Benchmark(*bench, *scale)
	default:
		g, err = designs.EvalDesign("ibex", *scale)
	}
	if err != nil {
		fail(err)
	}
	recipe, err := synth.RecipeByName(*recipeName)
	if err != nil {
		fail(err)
	}

	fmt.Printf("Design %s: %v\n", g.Name, g.Stats())

	lib := techlib.Default14nm()
	estCells := core.EstimateCells(g.NumAnds())
	flow, err := core.RunFlow(g, lib, core.FlowOptions{
		Recipe:          recipe,
		RegisterOutputs: *registers,
		ClockPeriodNs:   *clock,
		NewProbe: func(core.JobKind) *perf.Probe {
			return core.NewJobProbe(*vcpus, estCells)
		},
	})
	if err != nil {
		fail(err)
	}

	fmt.Printf("\nSynthesis  (%s): %v -> %s\n", recipe.Name, flow.Optimized.Stats(), flow.Netlist.Stats())
	fmt.Printf("Placement  : die %.1f x %.1f um, HPWL %.1f um (global %.1f), overflow %.3f\n",
		flow.Placement.DieW, flow.Placement.DieH, flow.Placement.HPWL,
		flow.Placement.HPWLGlobal, flow.Placement.Overflow)
	fmt.Printf("Routing    : grid %dx%d, %d connections, wirelength %d, overflow %d, %d RRR iters\n",
		flow.Routing.GridW, flow.Routing.GridH, flow.Routing.Connections,
		flow.Routing.Wirelength, flow.Routing.Overflow, flow.Routing.Iterations)
	fmt.Printf("STA        : max arrival %.3f ns, WNS %.3f ns, TNS %.3f ns over %d endpoints\n",
		flow.Timing.MaxArrival, flow.Timing.WNS, flow.Timing.TNS, flow.Timing.Endpoints)
	fmt.Printf("Critical path: %d cells\n", len(flow.Timing.CriticalPath))

	fmt.Printf("\nPerformance profile at %d vCPUs:\n", *vcpus)
	m := perf.Xeon14(*vcpus)
	for _, k := range core.JobKinds() {
		rep := flow.Reports[k]
		c := rep.Total()
		fmt.Printf("  %-10s %12d instr, %6.2f%% br-miss, %5.1f%% cache-miss, %5.1f%% AVX, %.4fs\n",
			k, c.Instrs, c.BranchMissPct(), c.CacheMissPct(), c.FPVectorPct(), m.Seconds(rep))
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "edaflow:", err)
	os.Exit(1)
}
