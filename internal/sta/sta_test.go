package sta

import (
	"math"
	"testing"

	"edacloud/internal/designs"
	"edacloud/internal/netlist"
	"edacloud/internal/par"
	"edacloud/internal/perf"
	"edacloud/internal/place"
	"edacloud/internal/synth"
	"edacloud/internal/techlib"
)

var lib = techlib.Default14nm()

func mapped(t *testing.T, name string, scale float64, reg bool) *netlist.Netlist {
	t.Helper()
	g := designs.MustBenchmark(name, scale)
	res, err := synth.Synthesize(g, lib, synth.Options{RegisterOutputs: reg})
	if err != nil {
		t.Fatalf("synth: %v", err)
	}
	return res.Netlist
}

func TestAnalyzeBasic(t *testing.T) {
	nl := mapped(t, "int2float", 0.25, false)
	res, report, err := Analyze(nl, nil, Options{})
	if err != nil {
		t.Fatalf("sta: %v", err)
	}
	if res.Endpoints != len(nl.POs) {
		t.Fatalf("endpoints = %d, want %d POs", res.Endpoints, len(nl.POs))
	}
	if res.MaxArrival <= 0 {
		t.Fatal("no arrival time propagated")
	}
	if len(res.CriticalPath) == 0 {
		t.Fatal("no critical path")
	}
	if report == nil || len(report.Phases) != 2 {
		t.Fatalf("report = %+v", report)
	}
	// Slack + arrival must agree at the worst endpoint.
	if res.WNS > (Options{}).withDefaults().ClockPeriodNs {
		t.Fatalf("WNS %g exceeds clock period", res.WNS)
	}
}

func TestCriticalPathArrivalsMonotone(t *testing.T) {
	nl := mapped(t, "adder", 0.125, false)
	res, _, err := Analyze(nl, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.CriticalPath); i++ {
		if res.CriticalPath[i].Arrival < res.CriticalPath[i-1].Arrival {
			t.Fatalf("critical path arrivals not monotone at step %d", i)
		}
	}
	last := res.CriticalPath[len(res.CriticalPath)-1].Arrival
	if last > res.MaxArrival+1e-12 {
		t.Fatalf("critical path ends later (%g) than max arrival (%g)", last, res.MaxArrival)
	}
}

func TestDeeperLogicHasLaterArrival(t *testing.T) {
	shallow := mapped(t, "priority", 0.0625, false)
	deep := mapped(t, "adder", 0.25, false) // a 32-bit ripple carry is deep
	rs, _, err := Analyze(shallow, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rd, _, err := Analyze(deep, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rd.MaxArrival <= rs.MaxArrival {
		t.Fatalf("ripple adder (%g) not slower than small priority encoder (%g)",
			rd.MaxArrival, rs.MaxArrival)
	}
}

func TestTightClockViolates(t *testing.T) {
	nl := mapped(t, "adder", 0.25, false)
	relaxed, _, err := Analyze(nl, nil, Options{ClockPeriodNs: 100})
	if err != nil {
		t.Fatal(err)
	}
	if relaxed.WNS < 0 || relaxed.TNS != 0 {
		t.Fatalf("100ns clock should meet timing: WNS=%g TNS=%g", relaxed.WNS, relaxed.TNS)
	}
	tight, _, err := Analyze(nl, nil, Options{ClockPeriodNs: 0.001})
	if err != nil {
		t.Fatal(err)
	}
	if tight.WNS >= 0 || tight.TNS >= 0 {
		t.Fatalf("1ps clock should violate: WNS=%g TNS=%g", tight.WNS, tight.TNS)
	}
}

func TestRegisteredDesignEndpoints(t *testing.T) {
	nl := mapped(t, "priority", 0.0625, true)
	res, _, err := Analyze(nl, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Endpoints: each PO plus each DFF D input.
	want := len(nl.POs) + nl.NumSeq()
	if res.Endpoints != want {
		t.Fatalf("endpoints = %d, want %d", res.Endpoints, want)
	}
}

func TestWireLoadsSlowTiming(t *testing.T) {
	nl := mapped(t, "cavlc", 0.3, false)
	pl, _, err := place.Place(nl, place.Options{})
	if err != nil {
		t.Fatal(err)
	}
	noWire, _, err := Analyze(nl, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	wire, _, err := Analyze(nl, pl, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if wire.MaxArrival <= noWire.MaxArrival {
		t.Fatalf("wire loads did not slow timing: %g vs %g", wire.MaxArrival, noWire.MaxArrival)
	}
}

func TestAnalyzeRejectsCyclicNetlist(t *testing.T) {
	nl := netlist.New("cyc", lib)
	a := nl.AddPI("a")
	n1 := nl.AddNet("n1")
	n2 := nl.AddNet("n2")
	nl.MustAddCell("g1", lib.MustCell("NAND2_X1"), []netlist.NetID{a, n2}, n1)
	nl.MustAddCell("g2", lib.MustCell("NAND2_X1"), []netlist.NetID{n1, a}, n2)
	nl.AddPO("f", n2)
	if _, _, err := Analyze(nl, nil, Options{}); err == nil {
		t.Fatal("cyclic netlist accepted")
	}
}

func TestProfileShapeFPHeavy(t *testing.T) {
	nl := mapped(t, "cavlc", 0.4, false)
	probe := perf.NewProbe(perf.DefaultProbeConfig())
	_, report, err := Analyze(nl, nil, Options{StageConfig: par.StageConfig{Probe: probe}})
	if err != nil {
		t.Fatal(err)
	}
	total := report.Total()
	if total.FPVector == 0 {
		t.Fatal("STA recorded no vector FP (table interpolation)")
	}
	// STA scaling is modest (paper: ~2.2x at 8 vCPUs).
	s1 := perf.Xeon14(1).Seconds(report)
	s8 := perf.Xeon14(8).Seconds(report)
	sp := s1 / s8
	if sp < 1.1 || sp > 4.5 {
		t.Fatalf("8-vCPU STA speedup %.2f outside plausible band", sp)
	}
}

func TestLevelWidthsSumToCells(t *testing.T) {
	nl := mapped(t, "int2float", 0.25, false)
	res, _, err := Analyze(nl, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sum := 0
	for _, w := range res.LevelWidths {
		sum += w
	}
	if sum != nl.NumCells() {
		t.Fatalf("level widths sum %d != cells %d", sum, nl.NumCells())
	}
}

func TestEmptyNetlistTiming(t *testing.T) {
	nl := netlist.New("empty", lib)
	nl.AddPI("a")
	res, _, err := Analyze(nl, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Endpoints != 0 || res.MaxArrival != 0 {
		t.Fatalf("empty design timing: %+v", res)
	}
}

func TestHoldAnalysis(t *testing.T) {
	// Registered design: DFF endpoints get hold checks. The adder has
	// at least one gate on every output, so min-delay paths clear the
	// sub-gate-delay default hold time.
	nl := mapped(t, "adder", 0.0625, true)
	res, _, err := Analyze(nl, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.IsInf(res.WHS, 1) {
		t.Fatal("registered design reported no hold slack")
	}
	if res.HoldViolations != 0 {
		t.Fatalf("unexpected hold violations: %d (WHS %g)", res.HoldViolations, res.WHS)
	}
	// An absurd hold requirement must violate.
	strict, _, err := Analyze(nl, nil, Options{HoldTimeNs: 10})
	if err != nil {
		t.Fatal(err)
	}
	if strict.HoldViolations == 0 || strict.WHS >= 0 {
		t.Fatalf("10ns hold not violated: %+v", strict)
	}
}

func TestHoldSkippedForCombinational(t *testing.T) {
	nl := mapped(t, "priority", 0.0625, false)
	res, _, err := Analyze(nl, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(res.WHS, 1) || res.HoldViolations != 0 {
		t.Fatalf("combinational design got hold checks: %+v", res)
	}
}

func TestMinDelayNeverExceedsMaxDelay(t *testing.T) {
	nl := mapped(t, "adder", 0.125, true)
	res, _, err := Analyze(nl, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// WHS + hold time is the earliest register-input arrival; it can
	// never exceed the latest arrival anywhere.
	earliest := res.WHS + (Options{}).withDefaults().HoldTimeNs
	if earliest > res.MaxArrival+1e-12 {
		t.Fatalf("min-delay arrival %g exceeds max arrival %g", earliest, res.MaxArrival)
	}
}
