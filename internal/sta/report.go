package sta

import (
	"bufio"
	"fmt"
	"io"

	"edacloud/internal/netlist"
)

// WriteReport emits a human-readable timing report in the style of
// sign-off tools: a summary block (WNS/TNS/endpoint count), the
// critical path with per-stage arrivals and increments, and a slack
// histogram over endpoints.
func (r *Result) WriteReport(w io.Writer, nl *netlist.Netlist, clockPeriodNs float64) error {
	bw := bufio.NewWriter(w)

	fmt.Fprintf(bw, "Timing report for %s\n", nl.Name)
	fmt.Fprintf(bw, "================================================\n")
	fmt.Fprintf(bw, "clock period : %8.3f ns\n", clockPeriodNs)
	fmt.Fprintf(bw, "endpoints    : %8d\n", r.Endpoints)
	fmt.Fprintf(bw, "max arrival  : %8.3f ns\n", r.MaxArrival)
	fmt.Fprintf(bw, "WNS          : %8.3f ns", r.WNS)
	if r.WNS < 0 {
		fmt.Fprintf(bw, "  (VIOLATED)")
	}
	fmt.Fprintf(bw, "\nTNS          : %8.3f ns\n\n", r.TNS)

	fmt.Fprintf(bw, "Critical path (%d stages):\n", len(r.CriticalPath))
	prev := 0.0
	for i, step := range r.CriticalPath {
		c := &nl.Cells[step.Cell]
		fmt.Fprintf(bw, "  %3d  %-16s %-10s arrival %8.4f ns  +%7.4f\n",
			i, c.Name, c.Type.Name, step.Arrival, step.Arrival-prev)
		prev = step.Arrival
	}
	if len(r.CriticalPath) == 0 {
		fmt.Fprintf(bw, "  (no combinational path)\n")
	}

	fmt.Fprintf(bw, "\nLogic-level histogram (cells per level):\n")
	for lvl, width := range r.LevelWidths {
		if width == 0 {
			continue
		}
		fmt.Fprintf(bw, "  level %3d: %5d\n", lvl, width)
	}
	return bw.Flush()
}
