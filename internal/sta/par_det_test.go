package sta

import (
	"reflect"
	"testing"

	"edacloud/internal/designs"
	"edacloud/internal/par"
	"edacloud/internal/perf"
	"edacloud/internal/place"
	"edacloud/internal/synth"
	"edacloud/internal/techlib"
)

// TestAnalyzeDeterministicAcrossWorkers: the level-parallel arrival
// sweep must reproduce the 1-worker timing report exactly — arrival
// times, slacks, critical path and simulated counters — at 1, 2 and 8
// workers, instrumented and not.
func TestAnalyzeDeterministicAcrossWorkers(t *testing.T) {
	lib := techlib.Default14nm()
	g := designs.MustBenchmark("cavlc", 0.5)
	sres, err := synth.Synthesize(g, lib, synth.Options{RegisterOutputs: true})
	if err != nil {
		t.Fatal(err)
	}
	pl, _, err := place.Place(sres.Netlist, place.Options{})
	if err != nil {
		t.Fatal(err)
	}

	for _, instrumented := range []bool{false, true} {
		run := func(workers int) (*Result, perf.Counters) {
			var probe *perf.Probe
			if instrumented {
				probe = perf.NewProbe(perf.DefaultProbeConfig())
			}
			res, _, err := Analyze(sres.Netlist, pl, Options{StageConfig: par.StageConfig{Probe: probe, Workers: workers}})
			if err != nil {
				t.Fatalf("workers=%d: %v", workers, err)
			}
			return res, probe.Counters()
		}
		wantRes, wantCounters := run(1)
		for _, w := range []int{2, 8} {
			res, counters := run(w)
			if !reflect.DeepEqual(res, wantRes) {
				t.Fatalf("instrumented=%v workers=%d: result differs from serial:\n%+v\nwant\n%+v",
					instrumented, w, res, wantRes)
			}
			if counters != wantCounters {
				t.Fatalf("instrumented=%v workers=%d: counters %+v, want %+v",
					instrumented, w, counters, wantCounters)
			}
		}
	}
}
