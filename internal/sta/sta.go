// Package sta is the static timing analysis engine: a forward
// levelized propagation of arrival times and slews through NLDM table
// lookups, a backward pass for required times, and slack/critical-path
// extraction.
//
// STA's characterization signature in the paper is moderate
// floating-point (AVX) usage from the library-table interpolations
// (Fig. 2c, second to placement), friendly cache behaviour from its
// topologically ordered sweeps, and mediocre multi-core scaling —
// parallelism exists only within a level of the timing graph.
package sta

import (
	"fmt"
	"math"
	"strings"

	"edacloud/internal/ints"
	"edacloud/internal/netlist"
	"edacloud/internal/par"
	"edacloud/internal/perf"
	"edacloud/internal/place"
)

// Options configures Analyze.
type Options struct {
	// ClockPeriodNs is the timing constraint; 0 means 1.0 ns.
	ClockPeriodNs float64
	// InputSlewNs is the slew at primary inputs; 0 means 0.01.
	InputSlewNs float64
	// WireCapPerUm adds placement-aware net capacitance; used only when
	// a placement is supplied. 0 means 0.0002 pF/um.
	WireCapPerUm float64
	// HoldTimeNs is the register hold requirement checked against
	// minimum-delay paths; 0 means 0.005 ns (comfortably under one
	// gate delay, as 14nm-class hold times are).
	HoldTimeNs float64
	// StageConfig supplies the shared execution knobs: Workers bounds
	// the worker pool for the level-parallel forward sweep and the
	// endpoint slack pass (0 means GOMAXPROCS; results are identical
	// for every value), and Probe receives performance events (nil
	// runs uninstrumented).
	par.StageConfig
}

func (o Options) withDefaults() Options {
	if o.ClockPeriodNs == 0 {
		o.ClockPeriodNs = 1.0
	}
	if o.InputSlewNs == 0 {
		o.InputSlewNs = 0.01
	}
	if o.WireCapPerUm == 0 {
		o.WireCapPerUm = 0.0002
	}
	if o.HoldTimeNs == 0 {
		o.HoldTimeNs = 0.005
	}
	return o
}

// PathStep is one cell hop on a timing path.
type PathStep struct {
	Cell    netlist.CellID
	Arrival float64
}

// Result holds the timing report.
type Result struct {
	// WNS is the worst negative slack (positive when timing is met).
	WNS float64
	// TNS is the total negative slack over violating endpoints.
	TNS float64
	// MaxArrival is the latest arrival time at any endpoint.
	MaxArrival float64
	// WHS is the worst hold slack over register endpoints (positive
	// when hold is met); +Inf when the design has no registers.
	WHS float64
	// HoldViolations counts register endpoints failing hold.
	HoldViolations int
	// CriticalPath lists the cells on the worst path, launch to capture.
	CriticalPath []PathStep
	// Endpoints is the number of timing endpoints (POs and DFF D pins).
	Endpoints int
	// LevelWidths histograms cells per level (drives the parallelism
	// profile: wider levels parallelize better).
	LevelWidths []int
}

// Hot-window probe regions: STA sweeps the timing graph in level
// order and repeatedly consults a small set of library tables — a
// bounded working set, hence the low cache-miss rates of Fig. 2b.
const (
	rgArrival = 0 // per-net arrival/slew records
	rgNetLoad = 1 // per-net electrical loads
	rgTable   = 2 // NLDM table pages
)

// Branch sites.
const (
	brMaxUpdate = uint64(0x31)
	brViolation = uint64(0x32)
)

// Analyze runs static timing on the netlist. pl may be nil for
// pre-placement (zero-wire-load) timing. The report carries two phases:
// the forward arrival propagation and the backward required/slack pass.
func Analyze(nl *netlist.Netlist, pl *place.Placement, opts Options) (*Result, *perf.Report, error) {
	opts = opts.withDefaults()
	probe := opts.Probe
	report := &perf.Report{Job: "sta"}

	levels, err := nl.Levels()
	if err != nil {
		return nil, nil, fmt.Errorf("sta: %w", err)
	}
	pool := par.Fixed(opts.Workers)

	// Per-net electrical load: pin caps plus optional wire estimate.
	load := make([]float64, nl.NumNets())
	for id := range nl.Nets {
		net := &nl.Nets[id]
		var c float64
		for _, s := range net.Sinks {
			c += nl.Cells[s.Cell].Type.InputCap(int(s.Pin))
			probe.LoadHot(rgNetLoad, uint64(s.Cell))
			probe.LoopBranches(2)
		}
		c += float64(len(net.POs)) * 0.002 // output pad load
		load[id] = c
	}
	if pl != nil {
		addWireLoads(nl, pl, load, opts.WireCapPerUm, probe)
	}

	// Forward pass: arrival (max-delay) and earliest arrival
	// (min-delay, for hold) plus slew per net.
	arrival := make([]float64, nl.NumNets())
	minArrival := make([]float64, nl.NumNets())
	slew := make([]float64, nl.NumNets())
	for i := range slew {
		slew[i] = opts.InputSlewNs
	}
	// fromCell[net] = driving cell on the critical (max-arrival) fanin.
	fromPin := make([]int32, nl.NumNets())
	for i := range fromPin {
		fromPin[i] = -1
	}

	// Per-shard NLDM table caches: table ids only synthesize probe
	// addresses, and each shard's id assignment is deterministic
	// because its cells arrive in a fixed order.
	tablesByShard := make([]*tableCache, par.ProbeShards)
	for i := range tablesByShard {
		tablesByShard[i] = newTableCache()
	}
	lookup := func(shard int, probe *perf.Probe, t nldmTable, s, l float64) float64 {
		if probe != nil {
			probe.LoadHot(rgTable, uint64(tablesByShard[shard].get(t))*16)
			probe.FPVector(8) // bilinear interpolation: vectorizable FMA work
		}
		return t.Lookup(s, l)
	}

	// processCell computes the arrival/slew records of one cell. Cells
	// of one level never feed each other (sequential outputs are
	// level-0 sources processed in the seq bucket before any
	// combinational level), so a level's cells run concurrently; each
	// writes only its own output net's records.
	processCell := func(id int, shard int, probe *perf.Probe) {
		c := &nl.Cells[id]
		if c.Out == netlist.NoNet {
			return
		}
		probe.LoadHot(rgArrival, uint64(id))
		// Graph traversal, pin iteration and max-reduction bookkeeping.
		probe.Ops(45)
		probe.LoopBranches(20)
		outLoad := load[c.Out]
		var bestArr, bestSlew float64
		bestPin := int32(-1)
		minArr := math.Inf(1)
		if c.Type.Seq {
			// Launch from the clock edge through the CK->Q arc.
			arc := c.Type.Arcs[0]
			bestArr = lookup(shard, probe, &arc.Delay, opts.InputSlewNs, outLoad)
			bestSlew = lookup(shard, probe, &arc.Slew, opts.InputSlewNs, outLoad)
			bestPin = 1
			minArr = bestArr
		} else {
			for pin, netID := range c.Ins {
				if netID == netlist.NoNet {
					continue
				}
				arc := c.Type.ArcFrom(c.Type.Inputs[pin].Name)
				if arc == nil {
					continue
				}
				inArr := arrival[netID]
				inSlew := slew[netID]
				d := lookup(shard, probe, &arc.Delay, inSlew, outLoad)
				cand := inArr + d
				better := cand > bestArr || bestPin < 0
				probe.Branch(brMaxUpdate, better)
				if better {
					bestArr = cand
					bestSlew = lookup(shard, probe, &arc.Slew, inSlew, outLoad)
					bestPin = int32(pin)
				}
				if early := minArrival[netID] + d; early < minArr {
					minArr = early
				}
			}
		}
		if math.IsInf(minArr, 1) {
			minArr = 0
		}
		minArrival[c.Out] = minArr
		arrival[c.Out] = bestArr
		slew[c.Out] = bestSlew
		fromPin[c.Out] = bestPin
		probe.StoreHot(rgArrival, uint64(c.Out))
	}

	// Levelized sweep: bucket 0 holds sequential cells (launch-edge
	// sources), bucket l+1 the combinational cells at level l; within
	// a bucket, ascending cell id. This is exactly the parallelism the
	// paper ascribes to STA — concurrency bounded by each level's
	// width.
	for _, bucket := range levelBuckets(nl, levels) {
		if len(bucket) == 0 {
			continue
		}
		pool.ForProbe(probe, len(bucket), staGrain, func(lo, hi, shard int, probe *perf.Probe) {
			for _, id := range bucket[lo:hi] {
				processCell(int(id), shard, probe)
			}
		})
	}
	report.AddPhase(probe.TakePhase("arrival", staParallelFraction(levels), maxLevelWidth(levels)))

	// Backward pass: endpoint slacks. Endpoints are POs and DFF D pins.
	res := &Result{WNS: math.Inf(1)}
	type endpoint struct {
		net  netlist.NetID
		name string
	}
	var endpoints []endpoint
	for _, po := range nl.POs {
		endpoints = append(endpoints, endpoint{po.Net, "po:" + po.Name})
	}
	for id := range nl.Cells {
		c := &nl.Cells[id]
		if c.Type.Seq && len(c.Ins) > 0 && c.Ins[0] != netlist.NoNet {
			endpoints = append(endpoints, endpoint{c.Ins[0], "dff:" + c.Name})
		}
	}
	res.Endpoints = len(endpoints)

	// The endpoint sweep is embarrassingly parallel: each endpoint reads
	// its own arrival record and folds into a handful of scalars. Chunks
	// of the fixed epGrain accumulate into per-chunk partials which are
	// merged in ascending chunk order afterwards — the ordered-reduction
	// discipline of par.Reduce. The chunk layout, the TNS summation
	// order (within-chunk left-to-right, then chunk-ordered fold), the
	// first-minimum WNS/worst-net tie-breaking and the probe's shard
	// assignment all depend only on the endpoint count, so the result —
	// floating point included — is identical for every worker count.
	res.WHS = math.Inf(1)
	worstNet := netlist.NoNet
	type epPartial struct {
		tns, wns, maxArr, whs float64
		worstNet              netlist.NetID
		holdViolations        int
	}
	partials := make([]epPartial, chunksOf(len(endpoints), epGrain))
	pool.ForProbe(probe, len(endpoints), epGrain, func(lo, hi, _ int, probe *perf.Probe) {
		part := epPartial{wns: math.Inf(1), whs: math.Inf(1), worstNet: netlist.NoNet}
		for _, ep := range endpoints[lo:hi] {
			probe.LoadHot(rgArrival, uint64(ep.net))
			probe.LoopBranches(4)
			arr := arrival[ep.net]
			slack := opts.ClockPeriodNs - arr
			violated := slack < 0
			probe.Branch(brViolation, violated)
			if violated {
				part.tns += slack
			}
			if slack < part.wns {
				part.wns = slack
				part.worstNet = ep.net
			}
			if arr > part.maxArr {
				part.maxArr = arr
			}
			// Hold: only register endpoints race the same clock edge.
			if strings.HasPrefix(ep.name, "dff:") {
				hold := minArrival[ep.net] - opts.HoldTimeNs
				if hold < part.whs {
					part.whs = hold
				}
				if hold < 0 {
					part.holdViolations++
				}
				probe.FPScalar(2)
			}
			probe.FPScalar(2)
		}
		partials[lo/epGrain] = part
	})
	for _, part := range partials {
		res.TNS += part.tns
		if part.wns < res.WNS {
			res.WNS = part.wns
			worstNet = part.worstNet
		}
		if part.maxArr > res.MaxArrival {
			res.MaxArrival = part.maxArr
		}
		if part.whs < res.WHS {
			res.WHS = part.whs
		}
		res.HoldViolations += part.holdViolations
	}
	if len(endpoints) == 0 {
		res.WNS = opts.ClockPeriodNs
	}

	// Critical path: walk the max-arrival fanins backward.
	for net := worstNet; net != netlist.NoNet; {
		d := nl.Nets[net].Driver
		if d == netlist.NoCell {
			break
		}
		res.CriticalPath = append(res.CriticalPath, PathStep{Cell: d, Arrival: arrival[net]})
		probe.LoadHot(rgArrival, uint64(net))
		c := &nl.Cells[d]
		if c.Type.Seq {
			break // launched from a register
		}
		pin := fromPin[net]
		if pin < 0 || int(pin) >= len(c.Ins) {
			break
		}
		net = c.Ins[pin]
	}
	reverse(res.CriticalPath)

	res.LevelWidths = levelWidths(levels)
	report.AddPhase(probe.TakePhase("required-slack", 0.5, ints.Max(len(endpoints)/16, 1)))
	return res, report, nil
}

// addWireLoads adds HPWL-proportional wire capacitance per net.
func addWireLoads(nl *netlist.Netlist, pl *place.Placement, load []float64, capPerUm float64, probe *perf.Probe) {
	for id := range nl.Nets {
		net := &nl.Nets[id]
		minX, maxX := math.Inf(1), math.Inf(-1)
		minY, maxY := math.Inf(1), math.Inf(-1)
		touch := func(x, y float64) {
			minX = math.Min(minX, x)
			maxX = math.Max(maxX, x)
			minY = math.Min(minY, y)
			maxY = math.Max(maxY, y)
		}
		switch {
		case net.Driver != netlist.NoCell:
			touch(pl.X[net.Driver], pl.Y[net.Driver])
		case net.DriverPI >= 0:
			touch(pl.PIx[net.DriverPI], pl.PIy[net.DriverPI])
		default:
			continue
		}
		n := 0
		for _, s := range net.Sinks {
			touch(pl.X[s.Cell], pl.Y[s.Cell])
			probe.LoadHot(rgNetLoad, uint64(s.Cell))
			probe.LoopBranches(2)
			n++
		}
		for _, po := range net.POs {
			touch(pl.POx[po], pl.POy[po])
			n++
		}
		if n > 0 {
			load[id] += ((maxX - minX) + (maxY - minY)) * capPerUm
			probe.FPVector(4)
		}
	}
}

// nldmTable is a library timing table.
type nldmTable interface{ Lookup(s, l float64) float64 }

// staGrain is the per-chunk cell count of the level-parallel sweep; a
// fixed constant keeps the probe-shard layout machine-independent.
const staGrain = 16

// epGrain is the per-chunk endpoint count of the parallel slack pass.
const epGrain = 32

// chunksOf mirrors par's chunk layout for sizing per-chunk partials.
func chunksOf(n, grain int) int { return ints.CeilDiv(n, grain) }

// levelBuckets groups cells for the levelized sweep: bucket 0 holds
// sequential cells, bucket l+1 the combinational cells at level l.
func levelBuckets(nl *netlist.Netlist, levels []int32) [][]int32 {
	var maxLv int32 = -1
	for _, l := range levels {
		if l > maxLv {
			maxLv = l
		}
	}
	buckets := make([][]int32, maxLv+2)
	for id := range nl.Cells {
		if nl.Cells[id].Type.Seq {
			buckets[0] = append(buckets[0], int32(id))
		} else {
			buckets[levels[id]+1] = append(buckets[levels[id]+1], int32(id))
		}
	}
	return buckets
}

// tableCache assigns stable ids to timing tables for cache-address
// synthesis.
type tableCache struct {
	ids map[nldmTable]int
}

func newTableCache() *tableCache { return &tableCache{ids: map[nldmTable]int{}} }

func (tc *tableCache) get(t nldmTable) int {
	id, ok := tc.ids[t]
	if !ok {
		id = len(tc.ids)
		tc.ids[t] = id
	}
	return id
}

// staParallelFraction estimates the level-parallel share of the
// forward pass: wide timing graphs parallelize, deep narrow ones do
// not.
func staParallelFraction(levels []int32) float64 {
	widths := levelWidths(levels)
	if len(widths) == 0 {
		return 0.3
	}
	total := 0
	for _, w := range widths {
		total += w
	}
	avg := float64(total) / float64(len(widths))
	// Map average width to a fraction in [0.35, 0.7].
	f := 0.35 + 0.35*(avg/(avg+32))
	return f
}

func levelWidths(levels []int32) []int {
	var max int32 = -1
	for _, l := range levels {
		if l > max {
			max = l
		}
	}
	if max < 0 {
		return nil
	}
	widths := make([]int, max+1)
	for _, l := range levels {
		widths[l]++
	}
	return widths
}

func maxLevelWidth(levels []int32) int {
	best := 1
	for _, w := range levelWidths(levels) {
		if w > best {
			best = w
		}
	}
	return best
}

func reverse(p []PathStep) {
	for i, j := 0, len(p)-1; i < j; i, j = i+1, j-1 {
		p[i], p[j] = p[j], p[i]
	}
}
