package sta

import (
	"bytes"
	"strings"
	"testing"
)

func TestWriteReport(t *testing.T) {
	nl := mapped(t, "adder", 0.125, false)
	res, _, err := Analyze(nl, nil, Options{ClockPeriodNs: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.WriteReport(&buf, nl, 1.0); err != nil {
		t.Fatalf("report: %v", err)
	}
	out := buf.String()
	for _, want := range []string{
		"Timing report for adder",
		"clock period",
		"WNS",
		"Critical path",
		"Logic-level histogram",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
	// Each critical-path stage appears with its cell type.
	if len(res.CriticalPath) > 0 {
		cell := nl.Cells[res.CriticalPath[0].Cell]
		if !strings.Contains(out, cell.Type.Name) {
			t.Errorf("report missing critical-path cell type %s", cell.Type.Name)
		}
	}
}

func TestWriteReportViolated(t *testing.T) {
	nl := mapped(t, "adder", 0.25, false)
	res, _, err := Analyze(nl, nil, Options{ClockPeriodNs: 0.001})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.WriteReport(&buf, nl, 0.001); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "VIOLATED") {
		t.Fatal("violated timing not flagged in report")
	}
}

func TestWriteReportEmptyDesign(t *testing.T) {
	nl := mapped(t, "priority", 0.0625, false)
	res, _, err := Analyze(nl, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	res.CriticalPath = nil // simulate a pathless result
	var buf bytes.Buffer
	if err := res.WriteReport(&buf, nl, 1.0); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "no combinational path") {
		t.Fatal("empty path not reported")
	}
}
