package serve

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"sync"
)

// Server wraps an Engine behind an HTTP/JSON API. The engine runs in
// simulated time: submissions carry their arrival times and the
// /v1/advance endpoint moves the clock, so a driver (or the replay
// CLI) fully controls when completions and re-plans happen. One mutex
// serializes every request — the engine itself is single-threaded by
// design, which is what makes its decisions reproducible.
type Server struct {
	mu     sync.Mutex
	eng    *Engine
	events map[int][]Event
}

// NewServer builds a server over the config. The config's OnEvent (if
// any) still fires; the server additionally records every event for
// the per-job events endpoint.
func NewServer(cfg Config) (*Server, error) {
	s := &Server{events: map[int][]Event{}}
	inner := cfg.OnEvent
	cfg.OnEvent = func(ev Event) {
		s.events[ev.JobID] = append(s.events[ev.JobID], ev)
		if inner != nil {
			inner(ev)
		}
	}
	eng, err := New(cfg)
	if err != nil {
		return nil, err
	}
	s.eng = eng
	return s, nil
}

// Engine exposes the wrapped engine for in-process drivers.
func (s *Server) Engine() *Engine { return s.eng }

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeErr(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func (s *Server) jobID(r *http.Request) (int, error) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		return 0, fmt.Errorf("serve: bad job id %q", r.PathValue("id"))
	}
	return id, nil
}

// Handler returns the API mux:
//
//	POST /v1/jobs               submit a job (SubmitRequest JSON)
//	GET  /v1/jobs               all job statuses
//	GET  /v1/jobs/{id}          one job's status
//	POST /v1/jobs/{id}/cancel   cancel ({"at_sec": t}; default now)
//	GET  /v1/jobs/{id}/events   the job's progress events so far
//	POST /v1/advance            move the clock ({"to_sec": t} or {"drain": true})
//	GET  /v1/tenants            per-tenant ledgers
//	GET  /v1/report             full summary report
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()

	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Tenant      string  `json:"tenant"`
			Template    string  `json:"template"`
			Name        string  `json:"name"`
			ArrivalSec  float64 `json:"arrival_sec"`
			DeadlineSec float64 `json:"deadline_sec"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		s.mu.Lock()
		defer s.mu.Unlock()
		st, err := s.eng.Submit(SubmitRequest{
			Tenant: req.Tenant, Template: req.Template, Name: req.Name,
			ArrivalSec: req.ArrivalSec, DeadlineSec: req.DeadlineSec,
		})
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		code := http.StatusCreated
		if st.Status == StatusRejected {
			code = http.StatusConflict
		}
		writeJSON(w, code, st)
	})

	mux.HandleFunc("GET /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		s.mu.Lock()
		defer s.mu.Unlock()
		writeJSON(w, http.StatusOK, s.eng.Jobs())
	})

	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		id, err := s.jobID(r)
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		s.mu.Lock()
		defer s.mu.Unlock()
		st, err := s.eng.Status(id)
		if err != nil {
			writeErr(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, http.StatusOK, st)
	})

	mux.HandleFunc("POST /v1/jobs/{id}/cancel", func(w http.ResponseWriter, r *http.Request) {
		id, err := s.jobID(r)
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		var req struct {
			AtSec float64 `json:"at_sec"`
		}
		if r.ContentLength != 0 {
			if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
				writeErr(w, http.StatusBadRequest, err)
				return
			}
		}
		s.mu.Lock()
		defer s.mu.Unlock()
		at := req.AtSec
		if at < s.eng.Now() {
			at = s.eng.Now()
		}
		if err := s.eng.Cancel(id, at); err != nil {
			writeErr(w, http.StatusConflict, err)
			return
		}
		st, _ := s.eng.Status(id)
		writeJSON(w, http.StatusOK, st)
	})

	mux.HandleFunc("GET /v1/jobs/{id}/events", func(w http.ResponseWriter, r *http.Request) {
		id, err := s.jobID(r)
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		s.mu.Lock()
		defer s.mu.Unlock()
		if _, err := s.eng.Status(id); err != nil {
			writeErr(w, http.StatusNotFound, err)
			return
		}
		evs := s.events[id]
		if evs == nil {
			evs = []Event{}
		}
		writeJSON(w, http.StatusOK, evs)
	})

	mux.HandleFunc("POST /v1/advance", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			ToSec float64 `json:"to_sec"`
			Drain bool    `json:"drain"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		s.mu.Lock()
		defer s.mu.Unlock()
		to := req.ToSec
		if req.Drain {
			to = math.Inf(1)
		}
		if to < s.eng.Now() {
			writeErr(w, http.StatusBadRequest,
				fmt.Errorf("serve: cannot advance to %g, clock is at %g", to, s.eng.Now()))
			return
		}
		s.eng.AdvanceTo(to)
		writeJSON(w, http.StatusOK, map[string]float64{"now_sec": s.eng.Now()})
	})

	mux.HandleFunc("GET /v1/tenants", func(w http.ResponseWriter, r *http.Request) {
		s.mu.Lock()
		defer s.mu.Unlock()
		writeJSON(w, http.StatusOK, s.eng.TenantStats())
	})

	mux.HandleFunc("GET /v1/report", func(w http.ResponseWriter, r *http.Request) {
		s.mu.Lock()
		defer s.mu.Unlock()
		writeJSON(w, http.StatusOK, s.eng.Report())
	})

	return mux
}
