package serve

import (
	"edacloud/internal/cloud"
	"edacloud/internal/flow"
)

// This file is the fairness half of admission control: a flow.Gate
// that meters each tenant's concurrent fleet spend against its
// weighted quota while every re-plan's forecast books leases. The gate
// sees each stage booking before it lands (flow.ForecastGated), so a
// tenant flooding the queue defers its own stages past its quota
// instead of crowding out the others — and the deferral is part of the
// deterministic placement simulation, not a runtime race.

// quotaInterval is one counted lease: tenant spend of rateUSDSec over
// [startSec, endSec).
type quotaInterval struct {
	startSec, endSec, rateUSDSec float64
}

// quotaGate enforces weighted per-tenant caps on concurrent fleet
// spend inside a forecast replay. The invariant it maintains: at any
// instant covered by two or more of a tenant's leases, their combined
// $/s is at most the tenant's cap. A single lease is always admitted
// when the tenant has nothing else overlapping it — the no-starvation
// floor that keeps a low-weight tenant schedulable on a fleet whose
// every machine out-prices its cap.
type quotaGate struct {
	// caps is each tenant's concurrent spend cap in USD per second.
	caps map[string]float64
	// tenantOf resolves a forecast job name to its tenant.
	tenantOf func(jobName string) string
	// intervals accumulates counted leases per tenant: the committed
	// leases it was seeded with plus every booking admitted since.
	intervals map[string][]quotaInterval
}

// quotaCaps derives the per-tenant concurrent spend caps: the fleet's
// aggregate on-demand rate split by tenant weight.
func quotaCaps(fleet *cloud.Fleet, tenants []Tenant) map[string]float64 {
	var fleetRate, weightSum float64
	for _, inst := range fleet.Instances {
		fleetRate += inst.Type.PricePerHour / 3600
	}
	for _, t := range tenants {
		weightSum += t.Weight
	}
	caps := make(map[string]float64, len(tenants))
	for _, t := range tenants {
		caps[t.Name] = fleetRate * t.Weight / weightSum
	}
	return caps
}

// newQuotaGate builds a gate seeded with the fleet's existing leases —
// the committed work that already counts against each tenant's quota
// when a re-plan's forecast starts booking.
func newQuotaGate(fleet *cloud.Fleet, caps map[string]float64, tenantOf func(string) string) *quotaGate {
	g := &quotaGate{caps: caps, tenantOf: tenantOf, intervals: map[string][]quotaInterval{}}
	for _, inst := range fleet.Instances {
		for _, l := range inst.Leases {
			tn := tenantOf(l.Job)
			if tn == "" {
				continue
			}
			g.intervals[tn] = append(g.intervals[tn], quotaInterval{
				startSec: l.StartSec, endSec: l.EndSec, rateUSDSec: inst.Type.PricePerHour / 3600,
			})
		}
	}
	return g
}

// Admit implements flow.Gate. A booking with no overlapping lease of
// its own tenant is always admitted (no starvation); otherwise it must
// fit under the tenant's cap at every instant of its interval, or it
// defers to the earliest end of an overlapping own lease — strictly
// after the stage's ready time, so the gated simulation always makes
// progress.
func (g *quotaGate) Admit(job *flow.Job, k flow.JobKind, it cloud.InstanceType, startSec, durSec float64) (float64, bool) {
	tn := g.tenantOf(job.Name)
	if tn == "" {
		return 0, true
	}
	endSec := startSec + durSec
	rate := it.PricePerHour / 3600
	var overlapping []quotaInterval
	for _, iv := range g.intervals[tn] {
		if iv.startSec < endSec && iv.endSec > startSec {
			overlapping = append(overlapping, iv)
		}
	}
	if len(overlapping) == 0 {
		g.intervals[tn] = append(g.intervals[tn], quotaInterval{startSec, endSec, rate})
		return 0, true
	}
	// The tenant's concurrent spend is piecewise constant; its maximum
	// over [startSec, endSec) is attained at the candidate's start or at
	// an overlapping lease's start.
	peak := 0.0
	at := func(t float64) {
		sum := 0.0
		for _, iv := range overlapping {
			if iv.startSec <= t && t < iv.endSec {
				sum += iv.rateUSDSec
			}
		}
		if sum > peak {
			peak = sum
		}
	}
	at(startSec)
	for _, iv := range overlapping {
		if iv.startSec > startSec && iv.startSec < endSec {
			at(iv.startSec)
		}
	}
	if peak+rate > g.caps[tn]+1e-12 {
		deferUntil := overlapping[0].endSec
		for _, iv := range overlapping[1:] {
			if iv.endSec < deferUntil {
				deferUntil = iv.endSec
			}
		}
		return deferUntil, false
	}
	g.intervals[tn] = append(g.intervals[tn], quotaInterval{startSec, endSec, rate})
	return 0, true
}
