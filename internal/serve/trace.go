package serve

import (
	"fmt"
	"math"
	"math/rand"
)

// TraceJob is one arrival of a synthetic workload trace.
type TraceJob struct {
	Name        string  `json:"name"`
	Tenant      string  `json:"tenant"`
	Template    string  `json:"template"`
	ArrivalSec  float64 `json:"arrival_sec"`
	DeadlineSec float64 `json:"deadline_sec,omitempty"`
}

// TraceConfig parameterizes the load generator.
type TraceConfig struct {
	// Seed fixes the generator: the same seed and parameters always
	// yield the same trace.
	Seed int64
	// Jobs is the trace length.
	Jobs int
	// RatePerSec is the mean arrival rate of the Poisson process.
	RatePerSec float64
	// Burstiness in [0,1) clusters arrivals: with probability b an
	// inter-arrival gap shrinks to a tenth, and the remaining gaps
	// stretch to keep the mean rate roughly honest. 0 is pure Poisson.
	Burstiness float64
	// SlackSec, when positive, stamps each job with a deadline between
	// 0.5x and 1.5x this much after its arrival. 0 leaves jobs
	// deadline-free.
	SlackSec float64
	// Tenants and Templates are drawn uniformly per job.
	Tenants   []string
	Templates []string
}

// TraceGen generates a seeded Poisson (or bursty) arrival trace over
// the given tenants and templates. Arrivals are rounded to the
// millisecond and strictly ordered.
func TraceGen(cfg TraceConfig) ([]TraceJob, error) {
	if cfg.Jobs <= 0 {
		return nil, fmt.Errorf("serve: trace needs a positive job count, got %d", cfg.Jobs)
	}
	if cfg.RatePerSec <= 0 {
		return nil, fmt.Errorf("serve: trace needs a positive arrival rate, got %g", cfg.RatePerSec)
	}
	if cfg.Burstiness < 0 || cfg.Burstiness >= 1 {
		return nil, fmt.Errorf("serve: burstiness %g outside [0,1)", cfg.Burstiness)
	}
	if len(cfg.Tenants) == 0 || len(cfg.Templates) == 0 {
		return nil, fmt.Errorf("serve: trace needs tenants and templates to draw from")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	jobs := make([]TraceJob, cfg.Jobs)
	t := 0.0
	for i := range jobs {
		dt := rng.ExpFloat64() / cfg.RatePerSec
		if cfg.Burstiness > 0 {
			if rng.Float64() < cfg.Burstiness {
				dt *= 0.1
			} else {
				dt *= 1 + cfg.Burstiness
			}
		}
		t += dt
		arrival := math.Round(t*1000) / 1000
		// Keep arrivals strictly increasing after the rounding.
		if i > 0 && arrival <= jobs[i-1].ArrivalSec {
			arrival = jobs[i-1].ArrivalSec + 0.001
		}
		j := TraceJob{
			Name:       fmt.Sprintf("job-%04d", i),
			Tenant:     cfg.Tenants[rng.Intn(len(cfg.Tenants))],
			Template:   cfg.Templates[rng.Intn(len(cfg.Templates))],
			ArrivalSec: arrival,
		}
		if cfg.SlackSec > 0 {
			j.DeadlineSec = arrival + math.Ceil(cfg.SlackSec*(0.5+rng.Float64()))
		}
		jobs[i] = j
	}
	return jobs, nil
}
