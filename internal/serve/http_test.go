package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
)

func doJSON(t *testing.T, srv *httptest.Server, method, path string, body any, status int, out any) {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	req, err := http.NewRequest(method, srv.URL+path, &buf)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != status {
		var e map[string]string
		_ = json.NewDecoder(resp.Body).Decode(&e)
		t.Fatalf("%s %s: status %d, want %d (%v)", method, path, resp.StatusCode, status, e)
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
}

// TestServerLifecycle drives the full API over httptest: submit,
// reject, advance the virtual clock, stream progress, cancel, and read
// the ledgers.
func TestServerLifecycle(t *testing.T) {
	s, err := NewServer(testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	var st JobStatus
	doJSON(t, srv, "POST", "/v1/jobs", map[string]any{
		"tenant": "alpha", "template": "small", "name": "one", "arrival_sec": 0, "deadline_sec": 2000,
	}, http.StatusCreated, &st)
	if st.Status != StatusAdmitted || st.ID != 0 || st.PromisedSec <= 0 {
		t.Fatalf("submit: %+v", st)
	}

	// An impossible deadline comes back 409 with the rejection reason.
	var rej JobStatus
	doJSON(t, srv, "POST", "/v1/jobs", map[string]any{
		"tenant": "beta", "template": "big", "name": "nope", "arrival_sec": 1, "deadline_sec": 5,
	}, http.StatusConflict, &rej)
	if rej.Status != StatusRejected || rej.Reason == "" {
		t.Fatalf("reject: %+v", rej)
	}

	// Bad requests refuse cleanly.
	doJSON(t, srv, "POST", "/v1/jobs", map[string]any{"tenant": "nobody", "template": "small"}, http.StatusBadRequest, nil)
	doJSON(t, srv, "GET", "/v1/jobs/99", nil, http.StatusNotFound, nil)
	doJSON(t, srv, "GET", "/v1/jobs/xx", nil, http.StatusBadRequest, nil)

	// Advance past the first stage: progress events appear.
	var clock map[string]float64
	doJSON(t, srv, "POST", "/v1/advance", map[string]any{"to_sec": st.Stages[0].EndSec + 1}, http.StatusOK, &clock)
	if clock["now_sec"] != st.Stages[0].EndSec+1 {
		t.Fatalf("clock: %v", clock)
	}
	var evs []Event
	doJSON(t, srv, "GET", "/v1/jobs/0/events", nil, http.StatusOK, &evs)
	if len(evs) < 2 {
		t.Fatalf("no progress after first stage: %+v", evs)
	}
	// The clock refuses to run backwards.
	doJSON(t, srv, "POST", "/v1/advance", map[string]any{"to_sec": 1}, http.StatusBadRequest, nil)

	// Submit and cancel a second job.
	var st2 JobStatus
	doJSON(t, srv, "POST", "/v1/jobs", map[string]any{
		"tenant": "beta", "template": "big", "name": "two", "arrival_sec": clock["now_sec"] + 1,
	}, http.StatusCreated, &st2)
	var canceled JobStatus
	doJSON(t, srv, "POST", fmt.Sprintf("/v1/jobs/%d/cancel", st2.ID), nil, http.StatusOK, &canceled)
	if canceled.Status != StatusCanceled {
		t.Fatalf("cancel: %+v", canceled)
	}
	doJSON(t, srv, "POST", fmt.Sprintf("/v1/jobs/%d/cancel", st2.ID), nil, http.StatusConflict, nil)

	// Drain and read the ledgers.
	doJSON(t, srv, "POST", "/v1/advance", map[string]any{"drain": true}, http.StatusOK, &clock)
	var all []JobStatus
	doJSON(t, srv, "GET", "/v1/jobs", nil, http.StatusOK, &all)
	if len(all) != 3 {
		t.Fatalf("want 3 jobs, got %d", len(all))
	}
	var got JobStatus
	doJSON(t, srv, "GET", "/v1/jobs/0", nil, http.StatusOK, &got)
	if got.Status != StatusDone || got.FinishSec > got.PromisedSec+1e-9 {
		t.Fatalf("job 0 after drain: %+v", got)
	}
	var stats []TenantStat
	doJSON(t, srv, "GET", "/v1/tenants", nil, http.StatusOK, &stats)
	if len(stats) != 2 || stats[0].Name != "alpha" || stats[0].Done != 1 {
		t.Fatalf("tenants: %+v", stats)
	}
	var rep Report
	doJSON(t, srv, "GET", "/v1/report", nil, http.StatusOK, &rep)
	if rep.Jobs != 3 || rep.Completed != 1 || rep.Rejected != 1 || rep.Canceled != 1 || rep.MissedPromises != 0 {
		t.Fatalf("report: %s", &rep)
	}
}
