package serve

import (
	"fmt"
	"strings"

	"edacloud/internal/cloud"
)

// Report summarizes a replayed trace. Every field is a pure function
// of the trace and config, so String() is byte-identical across runs
// and worker counts.
type Report struct {
	Jobs      int `json:"jobs"`
	Admitted  int `json:"admitted"`
	Rejected  int `json:"rejected"`
	Completed int `json:"completed"`
	Canceled  int `json:"canceled"`
	// TotalCostUSD is the fleet ledger's bill for the whole trace.
	TotalCostUSD float64 `json:"total_cost_usd"`
	MakespanSec  float64 `json:"makespan_sec"`
	// MissedDeadlines counts completed jobs finishing past their
	// deadline; MissedPromises counts those finishing past the finish
	// promised at admission. Both must be zero: admission rejects what
	// it cannot promise, and re-plans are only adopted when no promise
	// breaks.
	MissedDeadlines int `json:"missed_deadlines"`
	MissedPromises  int `json:"missed_promises"`
	// CacheHits counts planned stages served from the shared artifact
	// cache across the whole trace — fleet-wide dedup over tenants
	// submitting templates with a common chain prefix.
	CacheHits int `json:"cache_hits,omitempty"`
	// Replans/Adopted/ReleasedLeases expose the rolling-horizon
	// machinery: re-optimizations run, plans adopted over the
	// incumbent, and future leases released for re-booking.
	Replans        int          `json:"replans"`
	Adopted        int          `json:"adopted"`
	ReleasedLeases int          `json:"released_leases"`
	Tenants        []TenantStat `json:"tenants"`
	Statuses       []JobStatus  `json:"statuses,omitempty"`
}

// Replay builds an engine over cfg, submits every trace job in arrival
// order, drains the engine, and reports. The caller's cfg.Fleet is
// consumed; the returned engine exposes the final fleet and job states.
func Replay(cfg Config, trace []TraceJob) (*Engine, *Report, error) {
	eng, err := New(cfg)
	if err != nil {
		return nil, nil, err
	}
	for _, tj := range trace {
		if _, err := eng.Submit(SubmitRequest{
			Tenant:      tj.Tenant,
			Template:    tj.Template,
			Name:        tj.Name,
			ArrivalSec:  tj.ArrivalSec,
			DeadlineSec: tj.DeadlineSec,
		}); err != nil {
			return nil, nil, fmt.Errorf("serve: replaying %q: %w", tj.Name, err)
		}
	}
	eng.Drain()
	return eng, eng.Report(), nil
}

// Report assembles the engine's current summary.
func (e *Engine) Report() *Report {
	r := &Report{
		Jobs:           len(e.jobs),
		TotalCostUSD:   e.fleet.TotalCostUSD(),
		Replans:        e.Replans,
		Adopted:        e.Adopted,
		ReleasedLeases: e.Released,
		Tenants:        e.TenantStats(),
		Statuses:       e.Jobs(),
	}
	for _, s := range r.Statuses {
		for _, st := range s.Stages {
			if st.Cached {
				r.CacheHits++
			}
		}
		switch s.Status {
		case StatusRejected:
			r.Rejected++
			continue
		case StatusCanceled:
			r.Canceled++
		case StatusDone:
			r.Completed++
			if s.FinishSec > r.MakespanSec {
				r.MakespanSec = s.FinishSec
			}
			if s.DeadlineSec > 0 && s.FinishSec > s.DeadlineSec+1e-9 {
				r.MissedDeadlines++
			}
			if s.PromisedSec > 0 && s.FinishSec > s.PromisedSec+1e-9 {
				r.MissedPromises++
			}
		}
		r.Admitted++
	}
	return r
}

// Fleet exposes the engine's live fleet ledger.
func (e *Engine) Fleet() *cloud.Fleet { return e.fleet }

// String renders the report in a stable, diffable form: aggregates
// first, then one ledger line per tenant in config order. Job-level
// statuses are omitted — they are for the API, not the summary.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "jobs %d: admitted %d, rejected %d, completed %d, canceled %d\n",
		r.Jobs, r.Admitted, r.Rejected, r.Completed, r.Canceled)
	fmt.Fprintf(&b, "cost $%.4f  makespan %.3fs  missed-deadlines %d  missed-promises %d\n",
		r.TotalCostUSD, r.MakespanSec, r.MissedDeadlines, r.MissedPromises)
	fmt.Fprintf(&b, "replans %d (adopted %d, leases released %d)\n",
		r.Replans, r.Adopted, r.ReleasedLeases)
	if r.CacheHits > 0 {
		fmt.Fprintf(&b, "cache hits %d\n", r.CacheHits)
	}
	for _, t := range r.Tenants {
		fmt.Fprintf(&b, "tenant %s w=%.1f quota=$%.4f/h: submitted %d admitted %d rejected %d done %d canceled %d cost $%.4f\n",
			t.Name, t.Weight, t.QuotaUSDH, t.Submitted, t.Admitted, t.Rejected, t.Done, t.Canceled, t.CostUSD)
	}
	return b.String()
}
