package serve

import (
	"encoding/json"
	"math"
	"testing"

	"edacloud/internal/cloud"
	"edacloud/internal/flow"
	"edacloud/internal/mckp"
)

// testFleet builds the shared serving fleet: two general-purpose and
// two memory-optimized machines.
func testFleet(t *testing.T) *cloud.Fleet {
	t.Helper()
	catalog := cloud.DefaultCatalog()
	gp, err := catalog.ByName("gp.2x")
	if err != nil {
		t.Fatal(err)
	}
	mem, err := catalog.ByName("mem.2x")
	if err != nil {
		t.Fatal(err)
	}
	return cloud.NewFleet(
		cloud.FleetEntry{Type: gp, Count: 2},
		cloud.FleetEntry{Type: mem, Count: 2},
	)
}

// item builds a choice-table entry priced at the type's own lease
// bill, so knapsack costs match what the fleet ledger will charge.
func item(t *testing.T, fleet *cloud.Fleet, label string, secs int) mckp.Item {
	t.Helper()
	typ, ok := fleet.TypeByName(label)
	if !ok {
		t.Fatalf("no type %q in fleet", label)
	}
	return mckp.Item{Label: label, TimeSec: secs, Cost: typ.Cost(float64(secs))}
}

// testTemplates builds two job shapes over the test fleet: "small"
// (synthesis+routing) and "big" (synthesis+placement+routing), each
// stage with a cheap-slow and a dear-fast option.
func testTemplates(t *testing.T, fleet *cloud.Fleet) []Template {
	t.Helper()
	return []Template{
		{
			Name:  "small",
			Kinds: []flow.JobKind{flow.JobSynthesis, flow.JobRouting},
			Classes: []mckp.Class{
				{Name: "synthesis", Items: []mckp.Item{
					item(t, fleet, "gp.2x", 100), item(t, fleet, "mem.2x", 60),
				}},
				{Name: "routing", Items: []mckp.Item{
					item(t, fleet, "mem.2x", 80), item(t, fleet, "gp.2x", 140),
				}},
			},
		},
		{
			Name:  "big",
			Kinds: []flow.JobKind{flow.JobSynthesis, flow.JobPlacement, flow.JobRouting},
			Classes: []mckp.Class{
				{Name: "synthesis", Items: []mckp.Item{
					item(t, fleet, "gp.2x", 200), item(t, fleet, "mem.2x", 120),
				}},
				{Name: "placement", Items: []mckp.Item{
					item(t, fleet, "mem.2x", 150), item(t, fleet, "gp.2x", 260),
				}},
				{Name: "routing", Items: []mckp.Item{
					item(t, fleet, "mem.2x", 100), item(t, fleet, "gp.2x", 170),
				}},
			},
		},
	}
}

func testConfig(t *testing.T) Config {
	t.Helper()
	fleet := testFleet(t)
	return Config{
		Fleet: fleet,
		Tenants: []Tenant{
			{Name: "alpha", Weight: 3},
			{Name: "beta", Weight: 1},
		},
		Templates: testTemplates(t, fleet),
	}
}

// TestEngineAdmitsAndDrains: two generously-deadlined jobs are
// admitted with promises, run to completion, keep their promises, and
// the per-job bills reconcile with the fleet ledger.
func TestEngineAdmitsAndDrains(t *testing.T) {
	eng, err := New(testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	st1, err := eng.Submit(SubmitRequest{Tenant: "alpha", Template: "small", Name: "one", ArrivalSec: 0, DeadlineSec: 2000})
	if err != nil {
		t.Fatal(err)
	}
	st2, err := eng.Submit(SubmitRequest{Tenant: "beta", Template: "big", Name: "two", ArrivalSec: 5, DeadlineSec: 4000})
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range []JobStatus{st1, st2} {
		if st.Status != StatusAdmitted {
			t.Fatalf("job %s: %s (%s)", st.Name, st.Status, st.Reason)
		}
		if st.PromisedSec <= 0 || st.PromisedSec > st.DeadlineSec {
			t.Fatalf("job %s promised %g against deadline %g", st.Name, st.PromisedSec, st.DeadlineSec)
		}
		if len(st.Stages) == 0 {
			t.Fatalf("job %s admitted without a plan", st.Name)
		}
	}
	eng.Drain()
	var sum float64
	for _, st := range eng.Jobs() {
		if st.Status != StatusDone {
			t.Fatalf("job %s: %s", st.Name, st.Status)
		}
		if st.FinishSec > st.PromisedSec+1e-9 {
			t.Fatalf("job %s finished %g past its promise %g", st.Name, st.FinishSec, st.PromisedSec)
		}
		sum += st.CostUSD
	}
	if total := eng.Fleet().TotalCostUSD(); math.Abs(sum-total) > 1e-9 {
		t.Fatalf("job bills sum to %g, fleet ledger says %g", sum, total)
	}
	rep := eng.Report()
	if rep.Completed != 2 || rep.MissedDeadlines != 0 || rep.MissedPromises != 0 {
		t.Fatalf("report: %+v", rep)
	}
}

// TestAdmissionRejectsImpossibleDeadline: a deadline tighter than the
// template's fastest path is rejected without touching the fleet, and
// rejection under load leaves admitted plans intact.
func TestAdmissionRejectsImpossibleDeadline(t *testing.T) {
	eng, err := New(testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	st, err := eng.Submit(SubmitRequest{Tenant: "alpha", Template: "small", Name: "hopeless", ArrivalSec: 0, DeadlineSec: 10})
	if err != nil {
		t.Fatal(err)
	}
	if st.Status != StatusRejected {
		t.Fatalf("impossible deadline admitted: %+v", st)
	}
	if cost := eng.Fleet().TotalCostUSD(); cost != 0 {
		t.Fatalf("rejected job left $%g on the ledger", cost)
	}

	// Fill the fleet, then ask for a deadline only an empty fleet could
	// meet: the tight job must be rejected and the incumbents' plans
	// must not move.
	for i := 0; i < 4; i++ {
		st, err := eng.Submit(SubmitRequest{Tenant: "alpha", Template: "big", Name: "filler", ArrivalSec: 1, DeadlineSec: 5000})
		if err != nil {
			t.Fatal(err)
		}
		if st.Status != StatusAdmitted {
			t.Fatalf("filler %d: %s (%s)", i, st.Status, st.Reason)
		}
	}
	before := eng.Fleet().TotalCostUSD()
	st, err = eng.Submit(SubmitRequest{Tenant: "beta", Template: "big", Name: "tight", ArrivalSec: 2, DeadlineSec: 380})
	if err != nil {
		t.Fatal(err)
	}
	if st.Status != StatusRejected {
		t.Fatalf("overloaded fleet admitted a 380 s big job: %+v", st)
	}
	if after := eng.Fleet().TotalCostUSD(); math.Abs(after-before) > 1e-9 {
		t.Fatalf("rejection changed the booked plan: $%g -> $%g", before, after)
	}
	eng.Drain()
	for _, s := range eng.Jobs() {
		if s.Status == StatusDone && s.FinishSec > s.PromisedSec+1e-9 {
			t.Fatalf("job %s finished %g past its promise %g", s.Name, s.FinishSec, s.PromisedSec)
		}
	}
}

// TestCancelFreesCapacity: canceling an admitted job keeps only its
// committed stages on the bill and releases its future leases for the
// remaining jobs to re-plan over.
func TestCancelFreesCapacity(t *testing.T) {
	eng, err := New(testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	st, err := eng.Submit(SubmitRequest{Tenant: "alpha", Template: "big", Name: "doomed", ArrivalSec: 0})
	if err != nil {
		t.Fatal(err)
	}
	if st.Status != StatusAdmitted {
		t.Fatalf("doomed: %s (%s)", st.Status, st.Reason)
	}
	if _, err := eng.Submit(SubmitRequest{Tenant: "beta", Template: "small", Name: "beneficiary", ArrivalSec: 1}); err != nil {
		t.Fatal(err)
	}
	// Cancel mid-first-stage: the running stage stays billed, later
	// stages vanish.
	if err := eng.Cancel(0, 10); err != nil {
		t.Fatal(err)
	}
	got, _ := eng.Status(0)
	if got.Status != StatusCanceled {
		t.Fatalf("canceled job reports %s", got.Status)
	}
	if len(got.Stages) != 1 {
		t.Fatalf("canceled job keeps %d stages, want the 1 committed", len(got.Stages))
	}
	// Canceling again, or canceling a finished job, refuses.
	if err := eng.Cancel(0, 20); err == nil {
		t.Fatal("double cancel accepted")
	}
	eng.Drain()
	b, _ := eng.Status(1)
	if b.Status != StatusDone {
		t.Fatalf("beneficiary: %s", b.Status)
	}
	if err := eng.Cancel(1, eng.Now()); err == nil {
		t.Fatal("canceling a done job accepted")
	}
	// No lease of the canceled job starts after the cancel instant.
	for _, inst := range eng.Fleet().Instances {
		for _, l := range inst.Leases {
			if l.Job == "j0" && l.StartSec >= 10 {
				t.Fatalf("canceled job still holds a lease at %g", l.StartSec)
			}
		}
	}
	var sum float64
	for _, s := range eng.Jobs() {
		sum += s.CostUSD
	}
	if total := eng.Fleet().TotalCostUSD(); math.Abs(sum-total) > 1e-9 {
		t.Fatalf("job bills sum to %g, fleet ledger says %g", sum, total)
	}
}

// TestEventStream: the progress stream is ordered by simulated time,
// every done job emits exactly one start and one finish per stage, and
// payloads carry the flow.Event shape.
func TestEventStream(t *testing.T) {
	cfg := testConfig(t)
	var evs []Event
	cfg.OnEvent = func(ev Event) { evs = append(evs, ev) }
	eng, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Submit(SubmitRequest{Tenant: "alpha", Template: "small", Name: "one", ArrivalSec: 0}); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Submit(SubmitRequest{Tenant: "beta", Template: "big", Name: "two", ArrivalSec: 3}); err != nil {
		t.Fatal(err)
	}
	eng.Drain()
	if len(evs) != 2*(2+3) {
		t.Fatalf("got %d events, want one start+finish per stage: %+v", len(evs), evs)
	}
	last := math.Inf(-1)
	perJob := map[int][]Event{}
	for _, ev := range evs {
		if ev.AtSec < last {
			t.Fatalf("event stream went backwards: %g after %g", ev.AtSec, last)
		}
		last = ev.AtSec
		perJob[ev.JobID] = append(perJob[ev.JobID], ev)
	}
	for id, seq := range perJob {
		st, _ := eng.Status(id)
		wantIdx := 0
		for i := 0; i < len(seq); i += 2 {
			start, finish := seq[i], seq[i+1]
			if start.Flow.Type != flow.StageStarted || finish.Flow.Type != flow.StageFinished {
				t.Fatalf("job %d stage %d events out of order: %+v %+v", id, wantIdx, start, finish)
			}
			if start.Flow.Index != wantIdx || finish.Flow.Index != wantIdx {
				t.Fatalf("job %d expected stage index %d, got %d/%d", id, wantIdx, start.Flow.Index, finish.Flow.Index)
			}
			if start.Flow.Kind != st.Stages[wantIdx].Kind {
				t.Fatalf("job %d stage %d kind %v, plan says %v", id, wantIdx, start.Flow.Kind, st.Stages[wantIdx].Kind)
			}
			wantIdx++
		}
	}
}

// TestReplayByteIdentical: the same trace and seed yield byte-identical
// reports and job statuses at worker counts 1, 2 and 8.
func TestReplayByteIdentical(t *testing.T) {
	trace, err := TraceGen(TraceConfig{
		Seed: 7, Jobs: 40, RatePerSec: 0.02, Burstiness: 0.3, SlackSec: 2500,
		Tenants: []string{"alpha", "beta"}, Templates: []string{"small", "big"},
	})
	if err != nil {
		t.Fatal(err)
	}
	var wantStr string
	var wantJSON []byte
	for _, workers := range []int{1, 2, 8} {
		cfg := testConfig(t)
		cfg.Workers = workers
		_, rep, err := Replay(cfg, trace)
		if err != nil {
			t.Fatal(err)
		}
		js, err := json.Marshal(rep.Statuses)
		if err != nil {
			t.Fatal(err)
		}
		if wantStr == "" {
			wantStr, wantJSON = rep.String(), js
			if rep.Admitted == 0 || rep.Completed == 0 {
				t.Fatalf("degenerate trace: %s", rep)
			}
			continue
		}
		if rep.String() != wantStr {
			t.Fatalf("workers=%d report diverged:\n%s\nvs\n%s", workers, rep, wantStr)
		}
		if string(js) != string(wantJSON) {
			t.Fatalf("workers=%d job statuses diverged", workers)
		}
	}
}

// leaseOverlapRespectsQuota sweeps one tenant's final leases and
// asserts the gate's invariant: wherever two or more of its leases
// overlap, their combined spend rate stays under the tenant's cap.
func leaseOverlapRespectsQuota(t *testing.T, eng *Engine, rep *Report) {
	t.Helper()
	caps := quotaCaps(eng.cfg.Fleet, eng.cfg.Tenants)
	type span struct{ start, end, rate float64 }
	byTenant := map[string][]span{}
	for _, inst := range eng.Fleet().Instances {
		for _, l := range inst.Leases {
			tn := eng.tenantOf(l.Job)
			if tn == "" {
				continue
			}
			byTenant[tn] = append(byTenant[tn], span{l.StartSec, l.EndSec, inst.Type.PricePerHour / 3600})
		}
	}
	for tn, spans := range byTenant {
		for _, s := range spans {
			// Sample at this span's start: sum every span covering it.
			var sum float64
			var n int
			for _, o := range spans {
				if o.start <= s.start && s.start < o.end {
					sum += o.rate
					n++
				}
			}
			if n >= 2 && sum > caps[tn]+1e-9 {
				t.Fatalf("tenant %s spends %.6f $/s across %d concurrent leases at t=%g, cap %.6f",
					tn, sum, n, s.start, caps[tn])
			}
		}
	}
}

// TestReplayPropertySeeds: fifty seeded traces; on every one, no
// admitted job misses its deadline or its promise, per-tenant
// concurrent spend respects the quota, and bills reconcile.
func TestReplayPropertySeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("fifty replays")
	}
	for seed := int64(0); seed < 50; seed++ {
		trace, err := TraceGen(TraceConfig{
			Seed: seed, Jobs: 12, RatePerSec: 0.02, Burstiness: 0.4, SlackSec: 2200,
			Tenants: []string{"alpha", "beta"}, Templates: []string{"small", "big"},
		})
		if err != nil {
			t.Fatal(err)
		}
		eng, rep, err := Replay(testConfig(t), trace)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if rep.MissedDeadlines != 0 || rep.MissedPromises != 0 {
			t.Fatalf("seed %d broke promises:\n%s", seed, rep)
		}
		if rep.Admitted != rep.Completed+rep.Canceled {
			t.Fatalf("seed %d lost jobs:\n%s", seed, rep)
		}
		var sum float64
		for _, s := range rep.Statuses {
			sum += s.CostUSD
		}
		if total := rep.TotalCostUSD; math.Abs(sum-total) > 1e-9 {
			t.Fatalf("seed %d: job bills %g vs ledger %g", seed, sum, total)
		}
		leaseOverlapRespectsQuota(t, eng, rep)
	}
}

// TestRollingBeatsIndependent: on deadline-free traces the
// rolling-horizon plan never costs more than the independent
// per-arrival baseline over the same trace and fleet.
func TestRollingBeatsIndependent(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		trace, err := TraceGen(TraceConfig{
			Seed: seed, Jobs: 15, RatePerSec: 0.05, Burstiness: 0.3,
			Tenants: []string{"alpha", "beta"}, Templates: []string{"small", "big"},
		})
		if err != nil {
			t.Fatal(err)
		}
		_, rolling, err := Replay(testConfig(t), trace)
		if err != nil {
			t.Fatal(err)
		}
		indCfg := testConfig(t)
		indCfg.Independent = true
		_, indep, err := Replay(indCfg, trace)
		if err != nil {
			t.Fatal(err)
		}
		if rolling.Completed == 0 {
			t.Fatalf("seed %d: nothing completed", seed)
		}
		if rolling.TotalCostUSD > indep.TotalCostUSD+1e-9 {
			t.Fatalf("seed %d: rolling $%.4f exceeds independent $%.4f",
				seed, rolling.TotalCostUSD, indep.TotalCostUSD)
		}
	}
}

// TestNoStarvation: a tenant whose quota is below the price of every
// machine still gets its single job through — the gate's one-lease
// floor.
func TestNoStarvation(t *testing.T) {
	fleet := testFleet(t)
	cfg := Config{
		Fleet: fleet,
		Tenants: []Tenant{
			{Name: "whale", Weight: 1000},
			{Name: "minnow", Weight: 1},
		},
		Templates: testTemplates(t, fleet),
	}
	eng, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	caps := quotaCaps(fleet, cfg.Tenants)
	if cheapest, _ := fleet.TypeByName("gp.2x"); caps["minnow"] >= cheapest.PricePerHour/3600 {
		t.Fatalf("test premise broken: minnow cap %.6f buys a machine", caps["minnow"])
	}
	st, err := eng.Submit(SubmitRequest{Tenant: "minnow", Template: "small", Name: "little", ArrivalSec: 0})
	if err != nil {
		t.Fatal(err)
	}
	if st.Status != StatusAdmitted {
		t.Fatalf("minnow starved at admission: %s (%s)", st.Status, st.Reason)
	}
	eng.Drain()
	got, _ := eng.Status(0)
	if got.Status != StatusDone {
		t.Fatalf("minnow job: %s", got.Status)
	}
}

// TestTraceGen: determinism, strict ordering, and parameter
// validation.
func TestTraceGen(t *testing.T) {
	cfg := TraceConfig{
		Seed: 3, Jobs: 200, RatePerSec: 0.5, Burstiness: 0.2, SlackSec: 600,
		Tenants: []string{"a", "b"}, Templates: []string{"x"},
	}
	one, err := TraceGen(cfg)
	if err != nil {
		t.Fatal(err)
	}
	two, err := TraceGen(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range one {
		if one[i] != two[i] {
			t.Fatalf("same seed diverged at job %d: %+v vs %+v", i, one[i], two[i])
		}
		if i > 0 && one[i].ArrivalSec <= one[i-1].ArrivalSec {
			t.Fatalf("arrivals not strictly increasing at %d", i)
		}
		if one[i].DeadlineSec <= one[i].ArrivalSec {
			t.Fatalf("job %d deadline %g before arrival %g", i, one[i].DeadlineSec, one[i].ArrivalSec)
		}
	}
	for _, bad := range []TraceConfig{
		{Jobs: 0, RatePerSec: 1, Tenants: []string{"a"}, Templates: []string{"x"}},
		{Jobs: 1, RatePerSec: 0, Tenants: []string{"a"}, Templates: []string{"x"}},
		{Jobs: 1, RatePerSec: 1, Burstiness: 1, Tenants: []string{"a"}, Templates: []string{"x"}},
		{Jobs: 1, RatePerSec: 1},
	} {
		if _, err := TraceGen(bad); err == nil {
			t.Fatalf("bad trace config accepted: %+v", bad)
		}
	}
}
