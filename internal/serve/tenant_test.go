package serve

import (
	"math"
	"testing"

	"edacloud/internal/cloud"
	"edacloud/internal/flow"
)

// TestQuotaCaps: the fleet's aggregate $/s splits by tenant weight.
func TestQuotaCaps(t *testing.T) {
	fleet := testFleet(t)
	var fleetRate float64
	for _, inst := range fleet.Instances {
		fleetRate += inst.Type.PricePerHour / 3600
	}
	caps := quotaCaps(fleet, []Tenant{{Name: "a", Weight: 3}, {Name: "b", Weight: 1}})
	if math.Abs(caps["a"]-fleetRate*0.75) > 1e-12 || math.Abs(caps["b"]-fleetRate*0.25) > 1e-12 {
		t.Fatalf("caps %v, fleet rate %g", caps, fleetRate)
	}
}

// TestQuotaGateAdmit drives the gate directly: the first lease always
// lands (no starvation), a second concurrent lease over the cap defers
// to the first one's end, a cheap one under the cap fits, and a
// distinct tenant is metered independently.
func TestQuotaGateAdmit(t *testing.T) {
	fleet := testFleet(t)
	gp, _ := fleet.TypeByName("gp.2x")
	rate := gp.PricePerHour / 3600
	tenants := map[string]string{"j0": "a", "j1": "a", "j2": "b"}
	lookup := func(name string) string { return tenants[name] }

	// Cap affords one and a half gp.2x machines concurrently.
	caps := map[string]float64{"a": 1.5 * rate, "b": 1.5 * rate}
	g := newQuotaGate(fleet, caps, lookup)
	job := func(name string) *flow.Job { return &flow.Job{Name: name} }

	// First lease: over half the cap, admitted on the floor.
	if until, ok := g.Admit(job("j0"), flow.JobSynthesis, gp, 0, 100); !ok {
		t.Fatalf("first lease deferred until %g", until)
	}
	// Second concurrent lease of the same tenant: 2.0x > 1.5x cap,
	// deferred exactly to the first one's end.
	if until, ok := g.Admit(job("j1"), flow.JobSynthesis, gp, 10, 100); ok || until != 100 {
		t.Fatalf("over-cap lease: ok=%v until=%g, want deferral to 100", ok, until)
	}
	// After the first lease ends it fits.
	if _, ok := g.Admit(job("j1"), flow.JobSynthesis, gp, 100, 100); !ok {
		t.Fatal("post-deferral lease still blocked")
	}
	// The other tenant is not charged for tenant a's spend.
	if _, ok := g.Admit(job("j2"), flow.JobSynthesis, gp, 10, 100); !ok {
		t.Fatal("tenant b blocked by tenant a's leases")
	}
	// Unknown jobs (no tenant) pass through unmetered.
	if _, ok := g.Admit(job("outsider"), flow.JobSynthesis, gp, 0, 1e6); !ok {
		t.Fatal("tenantless job metered")
	}
}

// TestQuotaGateSeededFromFleet: committed leases already on the fleet
// count against their tenant from the first ask.
func TestQuotaGateSeededFromFleet(t *testing.T) {
	fleet := testFleet(t)
	gp, _ := fleet.TypeByName("gp.2x")
	rate := gp.PricePerHour / 3600
	// Commit a lease for tenant a on instance 0.
	fleet.Instances[0].Leases = append(fleet.Instances[0].Leases, cloud.Lease{
		Job: "j0", Stage: "synthesis", StartSec: 0, EndSec: 200, CostUSD: gp.Cost(200),
	})
	lookup := func(name string) string {
		if name == "j0" || name == "j1" {
			return "a"
		}
		return ""
	}
	g := newQuotaGate(fleet, map[string]float64{"a": 1.5 * rate}, lookup)
	// A concurrent second lease busts the cap because of the seed.
	if until, ok := g.Admit(&flow.Job{Name: "j1"}, flow.JobSynthesis, gp, 50, 100); ok || until != 200 {
		t.Fatalf("seeded lease ignored: ok=%v until=%g", ok, until)
	}
}
