package serve

import (
	"strings"
	"testing"

	"edacloud/internal/cache"
	"edacloud/internal/mckp"
)

func cacheTestConfig(t *testing.T) Config {
	t.Helper()
	fleet := testFleet(t)
	tpls := testTemplates(t, fleet)
	// "small" and "big" share a synthesis prefix: same chain key for
	// stage 0, diverging after. Key values are arbitrary non-zero
	// constants — the engine only compares them for identity.
	tpls[0].Chain = []cache.Key{101, 201}
	tpls[1].Chain = []cache.Key{101, 301, 302}
	return Config{
		Fleet:     fleet,
		Tenants:   []Tenant{{Name: "acme", Weight: 2}, {Name: "zeta", Weight: 1}},
		Templates: tpls,
	}
}

// TestServeSharedPrefixDedup: two tenants submitting templates that
// share a synthesis chain prefix — the second job's synthesis is
// predicted cached, books no machine, bills nothing, and the report
// counts the hit.
func TestServeSharedPrefixDedup(t *testing.T) {
	eng, err := New(cacheTestConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	first, err := eng.Submit(SubmitRequest{Tenant: "acme", Template: "small", Name: "a", ArrivalSec: 0})
	if err != nil {
		t.Fatal(err)
	}
	if first.Status != StatusAdmitted {
		t.Fatalf("first job %s: %s", first.Status, first.Reason)
	}
	for _, st := range first.Stages {
		if st.Cached {
			t.Fatalf("first job predicted a hit with an empty fleet cache: %+v", st)
		}
	}
	second, err := eng.Submit(SubmitRequest{Tenant: "zeta", Template: "big", Name: "b", ArrivalSec: 1})
	if err != nil {
		t.Fatal(err)
	}
	if second.Status != StatusAdmitted {
		t.Fatalf("second job %s: %s", second.Status, second.Reason)
	}
	if !second.Stages[0].Cached {
		t.Fatalf("second job's shared synthesis not predicted cached: %+v", second.Stages[0])
	}
	if second.Stages[0].CostUSD != 0 {
		t.Fatalf("cached stage billed $%g", second.Stages[0].CostUSD)
	}
	if d := second.Stages[0].EndSec - second.Stages[0].StartSec; d != cache.ProbeSeconds {
		t.Fatalf("cached stage runs %gs, want the probe constant %g", d, cache.ProbeSeconds)
	}
	for _, st := range second.Stages[1:] {
		if st.Cached {
			t.Fatalf("diverging stage predicted cached: %+v", st)
		}
	}
	eng.Drain()
	rep := eng.Report()
	if rep.CacheHits != 1 {
		t.Fatalf("report counts %d cache hits, want 1", rep.CacheHits)
	}
	if !strings.Contains(rep.String(), "cache hits 1") {
		t.Fatalf("report omits the cache line:\n%s", rep)
	}
	if rep.MissedPromises != 0 || rep.MissedDeadlines != 0 {
		t.Fatalf("promises broken: %+v", rep)
	}
}

// TestServeCacheAdmitsTighterDeadline: a deadline attainable only with
// the shared prefix cached must be rejected cold and admitted warm —
// the serving-layer expression of cache-aware planning.
func TestServeCacheAdmitsTighterDeadline(t *testing.T) {
	cfg := cacheTestConfig(t)
	minCold := mckp.MinTotalTime(cfg.Templates[1].Classes)

	// Cold: nobody computed the prefix; the deadline is unattainable.
	eng, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tight := float64(minCold) - 10
	st, err := eng.Submit(SubmitRequest{Tenant: "acme", Template: "big", Name: "cold", ArrivalSec: 0, DeadlineSec: tight})
	if err != nil {
		t.Fatal(err)
	}
	if st.Status != StatusRejected {
		t.Fatalf("cold submission met an unattainable deadline: %+v", st)
	}

	// Warm: an earlier job owns the synthesis prefix; the same deadline
	// now clears because synthesis shrinks to the probe constant.
	eng2, err := New(cacheTestConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	if st, err = eng2.Submit(SubmitRequest{Tenant: "zeta", Template: "small", Name: "warm-up", ArrivalSec: 0}); err != nil {
		t.Fatal(err)
	}
	if st.Status != StatusAdmitted {
		t.Fatalf("warm-up rejected: %s", st.Reason)
	}
	st, err = eng2.Submit(SubmitRequest{Tenant: "acme", Template: "big", Name: "warm", ArrivalSec: 1, DeadlineSec: 1 + tight})
	if err != nil {
		t.Fatal(err)
	}
	if st.Status != StatusAdmitted {
		t.Fatalf("warm submission rejected: %s", st.Reason)
	}
	eng2.Drain()
	rep := eng2.Report()
	if rep.MissedPromises != 0 || rep.MissedDeadlines != 0 {
		t.Fatalf("warm admission broke a promise: %+v", rep)
	}
}

// TestServeChainlessTemplatesUnchanged: with no Chain on any template
// the engine must behave bit-identically to the pre-cache engine —
// the report carries no hits and renders without the cache line.
func TestServeChainlessTemplatesUnchanged(t *testing.T) {
	cfg := cacheTestConfig(t)
	for i := range cfg.Templates {
		cfg.Templates[i].Chain = nil
	}
	eng, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, tplName := range []string{"small", "big", "small"} {
		st, err := eng.Submit(SubmitRequest{
			Tenant: "acme", Template: tplName, Name: jobKey(i), ArrivalSec: float64(i),
		})
		if err != nil {
			t.Fatal(err)
		}
		if st.Status != StatusAdmitted {
			t.Fatalf("job %d rejected: %s", i, st.Reason)
		}
		for _, ps := range st.Stages {
			if ps.Cached {
				t.Fatalf("chain-less template predicted a hit: %+v", ps)
			}
		}
	}
	eng.Drain()
	rep := eng.Report()
	if rep.CacheHits != 0 {
		t.Fatalf("chain-less trace reports %d hits", rep.CacheHits)
	}
	if strings.Contains(rep.String(), "cache hits") {
		t.Fatalf("chain-less report renders the cache line:\n%s", rep)
	}
}

// TestServeTemplateChainValidation: a chain misaligned with the stage
// list must be rejected at config time.
func TestServeTemplateChainValidation(t *testing.T) {
	cfg := cacheTestConfig(t)
	cfg.Templates[0].Chain = []cache.Key{1}
	if _, err := New(cfg); err == nil {
		t.Fatal("misaligned template chain accepted")
	}
}
