package serve

import (
	"fmt"
	"math"
	"sort"
	"strconv"

	"edacloud/internal/cache"
	"edacloud/internal/cloud"
	"edacloud/internal/flow"
	"edacloud/internal/mckp"
)

// This file is the serving engine: a single-goroutine simulated-time
// event loop over (arrival, completion, cancel) events. The engine's
// authoritative state is one cloud.Fleet carrying the full lease
// timeline — committed stages (already started) plus the planned
// future bookings of every in-flight job. At each event the
// uncommitted tail is released (Fleet.Snapshot + ReleaseFrom), all
// remaining stages are re-solved jointly (mckp.BatchOptimizeState,
// warm-started), replayed through the placement engine under the
// tenant quota gate (flow.ForecastGated), and the re-plan is adopted
// only if it is strictly better than the incumbent — so the promise
// made at admission (the forecast finish of every admitted job) only
// ever improves. Everything is a pure function of the submission
// sequence, so replays are byte-identical at any worker count.

// record is one submitted job's full state.
type record struct {
	status JobStatus
	// tpl is the job's (risk-adjusted) template.
	tpl Template
	// emittedStarts/emittedEnds count the progress events already
	// streamed for this job's stages, in stage order.
	emittedStarts, emittedEnds int
}

// Engine is the multi-tenant serving engine. Not safe for concurrent
// use — the HTTP layer serializes access.
type Engine struct {
	cfg       Config
	templates map[string]Template
	tenants   map[string]Tenant
	caps      map[string]float64

	fleet  *cloud.Fleet
	now    float64
	jobs   []*record
	prices map[string]float64

	// seen maps each artifact chain key an admitted job will compute to
	// the job that introduced it — the serving layer's fleet-wide dedup
	// index across tenants. A stage whose key another job introduced is
	// predicted a cache hit and priced at the probe constant. The set
	// never shrinks (not even on cancel: a hit once promised must stay a
	// hit, or a re-plan could break an admission promise).
	seen map[cache.Key]int

	// Replans counts re-optimizations run; Adopted counts those whose
	// plan replaced the incumbent; Released totals leases released.
	Replans, Adopted, Released int
}

// New builds an engine over the config's fleet, tenants and templates.
// Templates are risk-adjusted here when hazards are configured.
func New(cfg Config) (*Engine, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	e := &Engine{
		cfg:       cfg,
		templates: map[string]Template{},
		tenants:   map[string]Tenant{},
		caps:      quotaCaps(cfg.Fleet, cfg.Tenants),
		fleet:     cfg.Fleet,
		prices:    map[string]float64{},
		seen:      map[cache.Key]int{},
	}
	for _, t := range cfg.Tenants {
		e.tenants[t.Name] = t
	}
	for _, tpl := range cfg.Templates {
		if len(cfg.Hazards) > 0 {
			tpl.Classes = mckp.RiskAdjust(tpl.Classes, cfg.Hazards, cfg.BackoffSec)
		}
		e.templates[tpl.Name] = tpl
	}
	return e, nil
}

// Now returns the engine's simulated time.
func (e *Engine) Now() float64 { return e.now }

// jobKey is the lease/forecast name of job id; tenantOf inverts it.
func jobKey(id int) string { return "j" + strconv.Itoa(id) }

func (e *Engine) tenantOf(jobName string) string {
	if len(jobName) < 2 || jobName[0] != 'j' {
		return ""
	}
	id, err := strconv.Atoi(jobName[1:])
	if err != nil || id < 0 || id >= len(e.jobs) {
		return ""
	}
	return e.jobs[id].status.Tenant
}

// chainHits renders one job's predicted cache hits over its template's
// full key chain: a stage hits iff its key is non-zero and a different
// admitted job introduced it first (the introducer computes, everyone
// later probes). Nil when the template carries no chain or nothing
// hits — the cache-blind shape, bit-identical to earlier behavior.
func (e *Engine) chainHits(r *record) []bool {
	if len(r.tpl.Chain) == 0 {
		return nil
	}
	hits := make([]bool, len(r.tpl.Chain))
	any := false
	for l, k := range r.tpl.Chain {
		owner, ok := e.seen[k]
		if k != 0 && ok && owner != r.status.ID {
			hits[l] = true
			any = true
		}
	}
	if !any {
		return nil
	}
	return hits
}

// registerChain records an admitted job as the introducer of every
// chain key no earlier job owns — from here on, later submissions
// sharing the prefix are predicted hits.
func (e *Engine) registerChain(r *record) {
	for _, k := range r.tpl.Chain {
		if k == 0 {
			continue
		}
		if _, ok := e.seen[k]; !ok {
			e.seen[k] = r.status.ID
		}
	}
}

// SubmitRequest describes one arriving job.
type SubmitRequest struct {
	Tenant   string
	Template string
	Name     string
	// ArrivalSec is the simulated arrival time; the engine advances to
	// it (processing completions on the way) before deciding admission.
	// It must not precede the engine's current time.
	ArrivalSec float64
	// DeadlineSec is the job's absolute completion deadline; 0 means
	// none. Admission promises the deadline or rejects the job.
	DeadlineSec float64
}

// Submit advances to the job's arrival and decides admission: the job
// is admitted iff a re-plan of every in-flight job plus this one meets
// every promised deadline under the tenant quotas. Rejection leaves
// the engine's state untouched. The returned status is a snapshot.
func (e *Engine) Submit(req SubmitRequest) (JobStatus, error) {
	if _, ok := e.tenants[req.Tenant]; !ok {
		return JobStatus{}, fmt.Errorf("serve: unknown tenant %q", req.Tenant)
	}
	tpl, ok := e.templates[req.Template]
	if !ok {
		return JobStatus{}, fmt.Errorf("serve: unknown template %q", req.Template)
	}
	if req.ArrivalSec < e.now {
		return JobStatus{}, fmt.Errorf("serve: job %q arrives at %g, before the engine clock %g",
			req.Name, req.ArrivalSec, e.now)
	}
	if req.DeadlineSec != 0 && req.DeadlineSec <= req.ArrivalSec {
		return JobStatus{}, fmt.Errorf("serve: job %q deadline %g precedes its arrival %g",
			req.Name, req.DeadlineSec, req.ArrivalSec)
	}
	e.AdvanceTo(req.ArrivalSec)

	r := &record{
		status: JobStatus{
			ID: len(e.jobs), Name: req.Name, Tenant: req.Tenant, Template: req.Template,
			ArrivalSec: req.ArrivalSec, DeadlineSec: req.DeadlineSec,
		},
		tpl: tpl,
	}
	e.jobs = append(e.jobs, r)

	// The quick-reject bound must see the same prices the joint solve
	// will: a job whose shared prefix is already cached can attain a
	// deadline its cold runtimes could not.
	quickClasses := mckp.CacheAdjust(tpl.Classes, e.chainHits(r), cache.ProbeTimeSec)
	if deadline := deadlineInt(req.DeadlineSec); deadline > 0 &&
		readyInt(req.ArrivalSec)+mckp.MinTotalTime(quickClasses) > deadline {
		r.status.Status = StatusRejected
		r.status.Reason = "deadline unattainable even uncontended"
		return r.status, nil
	}

	if e.cfg.Independent {
		e.admitIndependent(r)
		return r.status, nil
	}

	cand, err := e.replan(r)
	if err != nil || cand == nil || cand.miss > 0 {
		r.status.Status = StatusRejected
		switch {
		case err != nil:
			r.status.Reason = err.Error()
		case cand == nil:
			r.status.Reason = "no feasible joint plan"
		default:
			r.status.Reason = "admission would break a promised deadline"
		}
		return r.status, nil
	}
	e.adopt(cand)
	r.status.Status = StatusAdmitted
	e.registerChain(r)
	// Only deadlined jobs get a binding promise: a deadline-free job
	// asked for best effort, and pinning its first forecast would make
	// every later arrival rejectable for delaying it.
	if r.status.DeadlineSec > 0 {
		r.status.PromisedSec = r.status.Stages[len(r.status.Stages)-1].EndSec
	}
	return r.status, nil
}

// Status returns a snapshot of one job.
func (e *Engine) Status(id int) (JobStatus, error) {
	if id < 0 || id >= len(e.jobs) {
		return JobStatus{}, fmt.Errorf("serve: no job %d", id)
	}
	return e.jobs[id].status, nil
}

// Jobs returns a snapshot of every job, in submission order.
func (e *Engine) Jobs() []JobStatus {
	out := make([]JobStatus, len(e.jobs))
	for i, r := range e.jobs {
		out[i] = r.status
	}
	return out
}

// Cancel advances to atSec and cancels the job: its future stages are
// released back to the fleet (work already started runs to its stage
// boundary and stays billed) and the remaining jobs re-plan over the
// freed capacity.
func (e *Engine) Cancel(id int, atSec float64) error {
	if id < 0 || id >= len(e.jobs) {
		return fmt.Errorf("serve: no job %d", id)
	}
	if atSec < e.now {
		return fmt.Errorf("serve: cancel at %g precedes the engine clock %g", atSec, e.now)
	}
	e.AdvanceTo(atSec)
	r := e.jobs[id]
	switch r.status.Status {
	case StatusAdmitted:
	case StatusDone:
		return fmt.Errorf("serve: job %d already finished", id)
	default:
		return fmt.Errorf("serve: job %d is %s", id, r.status.Status)
	}
	// Truncate the plan to the committed prefix and settle the bill.
	kept := committedStages(r.status.Stages, e.now)
	r.status.Stages = append([]PlannedStage(nil), r.status.Stages[:kept]...)
	r.status.Status = StatusCanceled
	r.status.CostUSD = stageCost(r.status.Stages)
	if kept > 0 {
		r.status.FinishSec = r.status.Stages[kept-1].EndSec
	} else {
		r.status.FinishSec = e.now
	}
	e.reoptimize(true)
	return nil
}

// AdvanceTo moves simulated time forward to tSec, finalizing every job
// whose plan completes on the way and re-optimizing after each
// completion. Advancing to +Inf drains the engine (the clock stops at
// the last completion).
func (e *Engine) AdvanceTo(tSec float64) {
	for {
		next, id := math.Inf(1), -1
		for i, r := range e.jobs {
			if r.status.Status != StatusAdmitted {
				continue
			}
			if f := r.status.Stages[len(r.status.Stages)-1].EndSec; f < next {
				next, id = f, i
			}
		}
		if id < 0 || next > tSec {
			break
		}
		e.now = next
		r := e.jobs[id]
		r.status.Status = StatusDone
		r.status.FinishSec = next
		r.status.CostUSD = stageCost(r.status.Stages)
		e.emitUpTo(e.now)
		e.reoptimize(false)
	}
	if !math.IsInf(tSec, 1) && tSec > e.now {
		e.now = tSec
	}
	e.emitUpTo(e.now)
}

// Drain runs the engine to quiescence: every admitted job completes.
func (e *Engine) Drain() { e.AdvanceTo(math.Inf(1)) }

// plan is one candidate engine state produced by replan: the trial
// fleet with the re-booked tail, the per-job re-planned stage tails,
// and the score the adoption rule compares.
type plan struct {
	fleet     *cloud.Fleet
	miss      int
	cost      float64
	sumFinish float64
	// tails maps job id to its re-planned remaining stages; kept counts
	// the committed prefix the tail appends to.
	tails  map[int][]PlannedStage
	kept   map[int]int
	prices map[string]float64
}

// committedStages counts the prefix of stages already started by now —
// the immutable part of a job's plan.
func committedStages(stages []PlannedStage, now float64) int {
	kept := 0
	for _, st := range stages {
		if st.StartSec >= now {
			break
		}
		kept++
	}
	return kept
}

func stageCost(stages []PlannedStage) float64 {
	var c float64
	for _, st := range stages {
		c += st.CostUSD
	}
	return c
}

// readyInt and deadlineInt move the serving layer's continuous clock
// into the knapsack's integral seconds: a job can start no earlier
// than the next whole second, and must finish within its deadline's
// whole second.
func readyInt(t float64) int           { return int(math.Ceil(t - 1e-9)) }
func deadlineInt(deadline float64) int { return int(math.Floor(deadline + 1e-9)) }

// replan builds the candidate state for the current event: release the
// uncommitted tail, re-solve every remaining stage jointly (the extra
// job, when non-nil, rides along as the arrival under admission test),
// and replay the picks through the gated placement engine. A nil plan
// with nil error means the joint solve was infeasible.
func (e *Engine) replan(extra *record) (*plan, error) {
	e.Replans++
	snap := e.fleet.Snapshot()
	e.Released += snap.ReleaseFrom(e.now)

	type entry struct {
		id    int
		r     *record
		kept  int
		ready int
		eff   float64 // binding deadline: the admission promise, or the user deadline
	}
	var active []entry
	p := &plan{fleet: snap, tails: map[int][]PlannedStage{}, kept: map[int]int{}}
	consider := e.jobs
	for i, r := range consider {
		if r.status.Status != StatusAdmitted && !(extra != nil && r == extra) {
			continue
		}
		kept := committedStages(r.status.Stages, e.now)
		if r != extra && kept == len(r.status.Stages) {
			// Fully committed: its finish is fixed; it only contributes to
			// the score.
			p.sumFinish += r.status.Stages[kept-1].EndSec
			continue
		}
		ready := e.now
		if kept > 0 {
			if end := r.status.Stages[kept-1].EndSec; end > ready {
				ready = end
			}
		}
		if r.status.ArrivalSec > ready {
			ready = r.status.ArrivalSec
		}
		// The binding deadline in a re-plan is the promise made at
		// admission, not the (possibly looser or absent) user deadline:
		// re-plans may move an admitted job earlier but never past what
		// it was promised. The arriving job under admission test has no
		// promise yet, so its own deadline binds.
		eff := r.status.DeadlineSec
		if r.status.Status == StatusAdmitted && r.status.PromisedSec > 0 {
			eff = r.status.PromisedSec
		}
		active = append(active, entry{id: i, r: r, kept: kept, ready: readyInt(ready), eff: eff})
	}
	if len(active) == 0 {
		p.cost = snap.TotalCostUSD()
		p.prices = e.prices
		return p, nil
	}

	capacity := mckp.Capacity{}
	freeAt := map[string][]int{}
	for _, inst := range snap.Instances {
		label := inst.Type.Name
		capacity[label]++
		freeAt[label] = append(freeAt[label], readyInt(inst.FreeAtSec))
	}
	bjobs := make([]mckp.BatchJob, len(active))
	tailHits := make([][]bool, len(active))
	for n, a := range active {
		deadline := deadlineInt(a.eff)
		classes := a.r.tpl.Classes[a.kept:]
		if hits := e.chainHits(a.r); hits != nil {
			tailHits[n] = hits[a.kept:]
			classes = mckp.CacheAdjust(classes, tailHits[n], cache.ProbeTimeSec)
		}
		if deadline > 0 && a.ready+mckp.MinTotalTime(classes) > deadline {
			// Doomed under any picks: solve it deadline-free so the batch
			// stays feasible; the forecast below will count the miss and the
			// adoption rule (or admission) will refuse the plan.
			deadline = 0
		}
		bjobs[n] = mckp.BatchJob{
			Name:        jobKey(a.id),
			Classes:     classes,
			DeadlineSec: deadline,
			ReadySec:    a.ready,
		}
	}
	rounds := e.cfg.Rounds
	if rounds <= 0 {
		rounds = 2
	}
	if len(e.prices) == 0 {
		rounds = 0 // first solve is cold: use the optimizer's full budget
	}
	sel, err := mckp.BatchOptimizeState(bjobs, capacity, mckp.BatchState{
		FreeAtSec: freeAt,
		Prices:    e.prices,
		Rounds:    rounds,
		Workers:   e.cfg.Workers,
	})
	if err != nil {
		return nil, err
	}
	if !sel.Feasible {
		return nil, nil
	}

	fjobs := make([]flow.ForecastJob, len(active))
	for n, a := range active {
		fj := flow.ForecastJob{
			Name:        jobKey(a.id),
			DeadlineSec: a.eff,
			ReadySec:    float64(a.ready),
		}
		for l, pick := range sel.Jobs[n].Pick {
			it := bjobs[n].Classes[l].Items[pick]
			typ, ok := snap.TypeByName(it.Label)
			if !ok {
				return nil, fmt.Errorf("serve: plan names instance type %q absent from the fleet", it.Label)
			}
			fj.Stages = append(fj.Stages, flow.ForecastStage{
				Kind:    a.r.tpl.Kinds[a.kept+l],
				Type:    typ,
				Seconds: float64(it.TimeSec),
				Cached:  l < len(tailHits[n]) && tailHits[n][l],
			})
		}
		fjobs[n] = fj
	}
	gate := newQuotaGate(snap, e.caps, e.tenantOf)
	sched, err := flow.ForecastGated(snap, fjobs, gate)
	if err != nil {
		return nil, err
	}
	for n, a := range active {
		res := sched.Jobs[n]
		if a.eff > 0 && res.FinishSec > a.eff+1e-9 {
			p.miss++
		}
		p.sumFinish += res.FinishSec
		tail := make([]PlannedStage, len(res.Stages))
		for s, st := range res.Stages {
			tail[s] = PlannedStage{
				Kind: st.Kind, Type: st.Type.Name,
				StartSec: st.StartSec, EndSec: st.StartSec + st.Seconds,
				CostUSD: st.CostUSD, Cached: st.Cached,
			}
		}
		p.tails[a.id] = tail
		p.kept[a.id] = a.kept
	}
	p.cost = snap.TotalCostUSD()
	p.prices = sel.FinalPrices
	return p, nil
}

// adopt installs a candidate plan as the engine state.
func (e *Engine) adopt(p *plan) {
	e.Adopted++
	e.fleet = p.fleet
	if p.prices != nil {
		e.prices = p.prices
	}
	for id, tail := range p.tails {
		r := e.jobs[id]
		r.status.Stages = append(r.status.Stages[:p.kept[id]:p.kept[id]], tail...)
		r.status.CostUSD = stageCost(r.status.Stages)
	}
}

// reoptimize runs the completion/cancel-event re-plan. On a cancel the
// incumbent fleet still carries the canceled job's future leases, so
// some new state must be adopted: the candidate when it keeps every
// promise, else the incumbent with the canceled jobs' future leases
// surgically dropped. On a completion the candidate is adopted only
// when strictly better than the incumbent — fewer misses never arise
// (the incumbent has none), so better means cheaper, then
// earlier-finishing at equal cost.
func (e *Engine) reoptimize(cancel bool) {
	if e.cfg.Independent {
		// The baseline never re-plans; a cancel still frees the canceled
		// job's future leases.
		if cancel {
			e.dropCanceledLeases()
		}
		return
	}
	cand, err := e.replan(nil)
	ok := err == nil && cand != nil && cand.miss == 0
	if !ok {
		if cancel {
			e.dropCanceledLeases()
		}
		return
	}
	if cancel {
		e.adopt(cand)
		return
	}
	curCost := e.fleet.TotalCostUSD()
	curSum := 0.0
	for _, r := range e.jobs {
		if r.status.Status == StatusAdmitted {
			curSum += r.status.Stages[len(r.status.Stages)-1].EndSec
		}
	}
	if cand.cost < curCost-1e-9 || (cand.cost < curCost+1e-9 && cand.sumFinish < curSum-1e-9) {
		e.adopt(cand)
	}
}

// dropCanceledLeases removes canceled jobs' not-yet-started leases
// from the live fleet in place, leaving every other booking untouched
// — the fallback when a post-cancel re-plan would break a promise.
func (e *Engine) dropCanceledLeases() {
	canceled := map[string]bool{}
	for i, r := range e.jobs {
		if r.status.Status == StatusCanceled {
			canceled[jobKey(i)] = true
		}
	}
	for _, inst := range e.fleet.Instances {
		kept := inst.Leases[:0]
		for _, l := range inst.Leases {
			if canceled[l.Job] && l.StartSec >= e.now {
				e.Released++
				continue
			}
			kept = append(kept, l)
		}
		inst.Leases = kept
		inst.FreeAtSec, inst.BusySec, inst.CostUSD = 0, 0, 0
		for _, l := range inst.Leases {
			if l.EndSec > inst.FreeAtSec {
				inst.FreeAtSec = l.EndSec
			}
			inst.BusySec += l.EndSec - l.StartSec
			inst.CostUSD += l.CostUSD
		}
	}
}

// admitIndependent is the per-arrival baseline: the job's own min-cost
// DP (congestion ignored), booked through the gated placement engine
// after every existing reservation, admitted iff the resulting finish
// keeps the deadline. Nothing is ever re-planned afterwards.
func (e *Engine) admitIndependent(r *record) {
	ready := readyInt(r.status.ArrivalSec)
	deadline := deadlineInt(r.status.DeadlineSec)
	budget := 0
	if deadline > 0 {
		budget = deadline - ready
	} else {
		for _, cl := range r.tpl.Classes {
			worst := 0
			for _, it := range cl.Items {
				if it.TimeSec > worst {
					worst = it.TimeSec
				}
			}
			budget += worst
		}
	}
	sel, err := mckp.SolveMinCost(r.tpl.Classes, budget)
	if err != nil || !sel.Feasible {
		r.status.Status = StatusRejected
		r.status.Reason = "no feasible solo plan"
		return
	}
	fj := flow.ForecastJob{
		Name:        jobKey(r.status.ID),
		DeadlineSec: r.status.DeadlineSec,
		ReadySec:    float64(ready),
	}
	for l, pick := range sel.Pick {
		it := r.tpl.Classes[l].Items[pick]
		typ, _ := e.fleet.TypeByName(it.Label)
		fj.Stages = append(fj.Stages, flow.ForecastStage{
			Kind: r.tpl.Kinds[l], Type: typ, Seconds: float64(it.TimeSec),
		})
	}
	snap := e.fleet.Snapshot()
	gate := newQuotaGate(snap, e.caps, e.tenantOf)
	sched, err := flow.ForecastGated(snap, []flow.ForecastJob{fj}, gate)
	if err != nil {
		r.status.Status = StatusRejected
		r.status.Reason = err.Error()
		return
	}
	res := sched.Jobs[0]
	if d := r.status.DeadlineSec; d > 0 && res.FinishSec > d+1e-9 {
		r.status.Status = StatusRejected
		r.status.Reason = "deadline unattainable behind existing reservations"
		return
	}
	e.fleet = snap
	r.status.Status = StatusAdmitted
	for _, st := range res.Stages {
		r.status.Stages = append(r.status.Stages, PlannedStage{
			Kind: st.Kind, Type: st.Type.Name,
			StartSec: st.StartSec, EndSec: st.StartSec + st.Seconds,
			CostUSD: st.CostUSD,
		})
	}
	r.status.CostUSD = stageCost(r.status.Stages)
	if r.status.DeadlineSec > 0 {
		r.status.PromisedSec = res.FinishSec
	}
}

// emitUpTo streams the progress events that became fact by simulated
// time t: a StageStarted for every stage begun strictly before t, a
// StageFinished for every stage ended at or before t, in (time, kind
// of boundary, job id) order. Stages that have not started yet remain
// re-plannable, so nothing is emitted for them.
func (e *Engine) emitUpTo(t float64) {
	if e.cfg.OnEvent == nil {
		return
	}
	type pending struct {
		at    float64
		end   bool
		jobID int
		idx   int
	}
	var evs []pending
	for i, r := range e.jobs {
		switch r.status.Status {
		case StatusAdmitted, StatusDone, StatusCanceled:
		default:
			continue
		}
		stages := r.status.Stages
		for idx := r.emittedStarts; idx < len(stages) && stages[idx].StartSec < t; idx++ {
			evs = append(evs, pending{at: stages[idx].StartSec, jobID: i, idx: idx})
		}
		for idx := r.emittedEnds; idx < len(stages) && stages[idx].EndSec <= t; idx++ {
			evs = append(evs, pending{at: stages[idx].EndSec, end: true, jobID: i, idx: idx})
		}
	}
	sort.SliceStable(evs, func(a, b int) bool {
		if evs[a].at != evs[b].at {
			return evs[a].at < evs[b].at
		}
		if evs[a].end != evs[b].end {
			return evs[a].end // finishes before starts at the same instant
		}
		return evs[a].jobID < evs[b].jobID
	})
	for _, ev := range evs {
		r := e.jobs[ev.jobID]
		st := r.status.Stages[ev.idx]
		fev := flow.Event{
			Type:  flow.StageStarted,
			Stage: st.Kind.String(),
			Kind:  st.Kind,
			Index: ev.idx,
			Total: len(r.tpl.Kinds),
		}
		if ev.end {
			fev.Type = flow.StageFinished
			r.emittedEnds = ev.idx + 1
		} else {
			r.emittedStarts = ev.idx + 1
		}
		e.cfg.OnEvent(Event{
			AtSec: ev.at, JobID: ev.jobID, Job: r.status.Name, Tenant: r.status.Tenant, Flow: fev,
		})
	}
}

// TenantStats summarizes every tenant's ledger, in config order.
func (e *Engine) TenantStats() []TenantStat {
	out := make([]TenantStat, len(e.cfg.Tenants))
	idx := map[string]int{}
	var weightSum float64
	for _, t := range e.cfg.Tenants {
		weightSum += t.Weight
	}
	for i, t := range e.cfg.Tenants {
		idx[t.Name] = i
		out[i] = TenantStat{Name: t.Name, Weight: t.Weight, QuotaUSDH: e.caps[t.Name] * 3600}
	}
	for _, r := range e.jobs {
		s := &out[idx[r.status.Tenant]]
		s.Submitted++
		switch r.status.Status {
		case StatusRejected:
			s.Rejected++
			continue
		case StatusDone:
			s.Done++
		case StatusCanceled:
			s.Canceled++
		}
		s.Admitted++
		s.CostUSD += r.status.CostUSD
	}
	return out
}
