// Package serve is the multi-tenant serving layer over the repo's
// deterministic simulation core: a persistent admission-controlled job
// queue in which tenants submit flow jobs online (Poisson/bursty
// arrivals rather than a one-shot batch) and a rolling-horizon
// re-optimizer re-plans the uncommitted tail of the schedule at every
// arrival and completion event.
//
// The moving parts are the seams the lower layers already expose:
//
//   - cloud.Fleet.Snapshot + ReleaseFrom give the commit/release
//     discipline — leases that have started stand (a booked stage runs
//     to its checkpoint), everything later is released and re-booked.
//   - mckp.BatchOptimizeState re-solves all in-flight plans jointly
//     against the remaining capacity, warm-started from the previous
//     event's shadow prices so consecutive events converge in a round
//     or two.
//   - flow.ForecastGated replays the picks through the scheduler's own
//     placement engine under a per-tenant quota Gate, producing the
//     exact lease timeline the fleet will carry.
//
// Everything runs in simulated time on a single goroutine, so a trace
// replayed at any worker count yields byte-identical admission
// decisions and schedules — the serving layer inherits the simulator's
// determinism instead of fighting it.
package serve

import (
	"fmt"

	"edacloud/internal/cache"
	"edacloud/internal/cloud"
	"edacloud/internal/flow"
	"edacloud/internal/mckp"
)

// Template is one submittable job shape: an ordered list of flow
// stages with the per-stage instance choice table a deployment
// characterization produced (core.DeploymentProblem.Classes). Item
// labels name instance types of the serving fleet; item times are the
// predicted stage runtimes the engine books and simulates.
type Template struct {
	Name string
	// Kinds is the stage order; Classes is aligned with it.
	Kinds   []flow.JobKind
	Classes []mckp.Class
	// Chain, when non-empty, is the template's artifact cache key chain
	// (core.CacheChain), aligned with Kinds; key 0 marks an uncacheable
	// stage. Two templates sharing a chain prefix — the same design
	// synthesized under the same recipe, submitted by any tenant — share
	// the artifacts: the engine predicts every stage whose key an
	// earlier admitted job introduced as a cache hit and prices it at
	// the probe constant. Empty disables cache awareness for the
	// template.
	Chain []cache.Key
}

// Tenant is one customer of the serving fleet with its fair-share
// weight. Weights partition the fleet's total spend rate: tenant t may
// hold concurrent leases worth at most Weight_t/sum(Weights) of the
// fleet's aggregate $/s — except that a tenant with nothing running is
// always allowed one stage (no starvation).
type Tenant struct {
	Name   string
	Weight float64
}

// Config assembles a serving engine.
type Config struct {
	// Fleet is the bounded machine pool every tenant contends for. The
	// engine owns it from New on.
	Fleet *cloud.Fleet
	// Tenants declares the customers and their fair-share weights.
	Tenants []Tenant
	// Templates declares the submittable job shapes.
	Templates []Template
	// Hazards, when non-empty, risk-adjusts every template's choice
	// table at registration (mckp.RiskAdjust with BackoffSec), so
	// admission forecasts price spot capacity at its revocation-adjusted
	// expectation.
	Hazards    mckp.Hazards
	BackoffSec float64
	// Rounds bounds the warm re-solve's price-adjustment iterations at
	// each event; 0 means 2 (warm starts converge fast). The initial
	// cold solve always uses the optimizer's default budget.
	Rounds int
	// Workers bounds the per-job DP fan-out inside each re-solve; 0
	// means all cores. Results are identical for every value.
	Workers int
	// Independent switches the engine to the per-arrival baseline: each
	// job is planned solo (its own min-cost DP, congestion ignored) and
	// booked after the existing reservations, with no re-planning at
	// later events — the foil the rolling-horizon mode is measured
	// against.
	Independent bool
	// OnEvent, when non-nil, receives the simulated progress stream:
	// every committed stage start/finish as flow.WithEvents-style
	// events, in simulated-time order.
	OnEvent func(Event)
}

// Event is one simulated progress event of one job: the existing
// pipeline hook's payload (flow.Event) stamped with the serving
// context. Flow.Type distinguishes stage starts from finishes; Flow
// carries the stage kind, index and total exactly as flow.WithEvents
// would during a real pipeline run.
type Event struct {
	AtSec  float64
	JobID  int
	Job    string
	Tenant string
	Flow   flow.Event
}

// Job states reported by Status.
const (
	StatusAdmitted = "admitted"
	StatusRejected = "rejected"
	StatusDone     = "done"
	StatusCanceled = "canceled"
)

// PlannedStage is one stage of a job's current plan: where and when it
// runs (or ran) and what the lease bills. Stages with StartSec before
// the engine's current time are committed and never move again;
// later ones are re-planned at every event.
type PlannedStage struct {
	Kind     flow.JobKind `json:"kind"`
	Type     string       `json:"type"`
	StartSec float64      `json:"start_sec"`
	EndSec   float64      `json:"end_sec"`
	CostUSD  float64      `json:"cost_usd"`
	// Cached marks a predicted artifact-cache hit: the stage is served
	// from the shared store at the probe constant, books no lease and
	// bills nothing.
	Cached bool `json:"cached,omitempty"`
}

// JobStatus is the queryable state of one submitted job.
type JobStatus struct {
	ID          int     `json:"id"`
	Name        string  `json:"name"`
	Tenant      string  `json:"tenant"`
	Template    string  `json:"template"`
	ArrivalSec  float64 `json:"arrival_sec"`
	DeadlineSec float64 `json:"deadline_sec,omitempty"`
	Status      string  `json:"status"`
	// Reason explains a rejection.
	Reason string `json:"reason,omitempty"`
	// PromisedSec is the finish time promised at admission — the
	// engine's contract: later re-plans may finish the job earlier but
	// never later than this. Zero for deadline-free jobs, which asked
	// for best effort and may be re-planned freely.
	PromisedSec float64        `json:"promised_sec,omitempty"`
	FinishSec   float64        `json:"finish_sec,omitempty"`
	CostUSD     float64        `json:"cost_usd"`
	Stages      []PlannedStage `json:"stages,omitempty"`
}

// TenantStat is one tenant's ledger line.
type TenantStat struct {
	Name      string  `json:"name"`
	Weight    float64 `json:"weight"`
	QuotaUSDH float64 `json:"quota_usd_per_hour"`
	Submitted int     `json:"submitted"`
	Admitted  int     `json:"admitted"`
	Rejected  int     `json:"rejected"`
	Done      int     `json:"done"`
	Canceled  int     `json:"canceled"`
	CostUSD   float64 `json:"cost_usd"`
}

// validate checks a config's fleet, tenants and templates against each
// other: every tenant named once with positive weight, every template
// stage shaped consistently, every choice-table label resolvable to a
// fleet instance type.
func (cfg *Config) validate() error {
	if cfg.Fleet == nil || len(cfg.Fleet.Instances) == 0 {
		return fmt.Errorf("serve: config needs a non-empty fleet")
	}
	if len(cfg.Tenants) == 0 {
		return fmt.Errorf("serve: config needs at least one tenant")
	}
	seen := map[string]bool{}
	for _, t := range cfg.Tenants {
		if t.Name == "" || t.Weight <= 0 {
			return fmt.Errorf("serve: tenant %+v needs a name and a positive weight", t)
		}
		if seen[t.Name] {
			return fmt.Errorf("serve: tenant %q declared twice", t.Name)
		}
		seen[t.Name] = true
	}
	if len(cfg.Templates) == 0 {
		return fmt.Errorf("serve: config needs at least one template")
	}
	names := map[string]bool{}
	for _, tpl := range cfg.Templates {
		if tpl.Name == "" {
			return fmt.Errorf("serve: template needs a name")
		}
		if names[tpl.Name] {
			return fmt.Errorf("serve: template %q declared twice", tpl.Name)
		}
		names[tpl.Name] = true
		if len(tpl.Kinds) == 0 || len(tpl.Kinds) != len(tpl.Classes) {
			return fmt.Errorf("serve: template %q needs aligned stages and classes", tpl.Name)
		}
		if len(tpl.Chain) != 0 && len(tpl.Chain) != len(tpl.Kinds) {
			return fmt.Errorf("serve: template %q chain has %d keys for %d stages", tpl.Name, len(tpl.Chain), len(tpl.Kinds))
		}
		for l, cl := range tpl.Classes {
			if len(cl.Items) == 0 {
				return fmt.Errorf("serve: template %q stage %s has no items", tpl.Name, tpl.Kinds[l])
			}
			for _, it := range cl.Items {
				if _, ok := cfg.Fleet.TypeByName(it.Label); !ok {
					return fmt.Errorf("serve: template %q stage %s names instance type %q absent from the fleet",
						tpl.Name, tpl.Kinds[l], it.Label)
				}
				if it.TimeSec < 0 || it.Cost < 0 {
					return fmt.Errorf("serve: template %q stage %s has negative item %+v", tpl.Name, tpl.Kinds[l], it)
				}
			}
		}
	}
	return nil
}
