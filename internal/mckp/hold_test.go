package mckp

import (
	"strings"
	"testing"
)

func holdJob(name string, deadline int, hold bool) BatchJob {
	// Two labels in every class: "cheap" is slow, "fast" costs more.
	return BatchJob{
		Name: name, DeadlineSec: deadline, Hold: hold,
		Classes: []Class{
			{Name: "synth", Items: []Item{
				{Label: "cheap", TimeSec: 100, Cost: 1.0},
				{Label: "fast", TimeSec: 40, Cost: 3.0},
			}},
			{Name: "route", Items: []Item{
				{Label: "cheap", TimeSec: 200, Cost: 2.0},
				{Label: "fast", TimeSec: 80, Cost: 6.0},
			}},
		},
	}
}

// TestHoldSolveSingleLabel: a holding-policy job's selection uses one
// label for every stage — the cheapest whose total busy time fits the
// deadline — even when a mixed pick would be cheaper.
func TestHoldSolveSingleLabel(t *testing.T) {
	capacity := Capacity{"cheap": 1, "fast": 1}

	// No deadline: the cheap machine wins whole.
	batch, err := BatchOptimize([]BatchJob{holdJob("a", 0, true)}, capacity)
	if err != nil || !batch.Feasible {
		t.Fatalf("%+v, %v", batch, err)
	}
	if got := batch.Jobs[0].Pick; got[0] != 0 || got[1] != 0 {
		t.Fatalf("picks %v, want all-cheap", got)
	}

	// 200 s deadline: cheap totals 300 s and cannot hold it; the whole
	// job moves to the fast machine (120 s), never a mixed split — a
	// mixed pick (fast synth + cheap route = 240 s busy) is cheaper than
	// all-fast but would break the single held lease.
	batch, err = BatchOptimize([]BatchJob{holdJob("a", 200, true)}, capacity)
	if err != nil || !batch.Feasible {
		t.Fatalf("%+v, %v", batch, err)
	}
	if got := batch.Jobs[0].Pick; got[0] != 1 || got[1] != 1 {
		t.Fatalf("picks %v, want all-fast", got)
	}
	if batch.MissedDeadlines != 0 {
		t.Fatalf("missed %d", batch.MissedDeadlines)
	}

	// The same table without Hold is free to mix.
	batch, err = BatchOptimize([]BatchJob{holdJob("a", 250, false)}, capacity)
	if err != nil || !batch.Feasible {
		t.Fatalf("%+v, %v", batch, err)
	}
	if got := batch.Jobs[0].Pick; got[0] != 1 || got[1] != 0 {
		t.Fatalf("picks %v, want fast synth + cheap route", got)
	}
}

// TestHoldEstimateBackToBack: the estimator places a hold job on one
// machine with no inter-stage re-queueing — a competing job on the same
// label cannot interleave between its stages.
func TestHoldEstimateBackToBack(t *testing.T) {
	jobs := []BatchJob{holdJob("held", 0, true), holdJob("rival", 0, false)}
	capacity := Capacity{"cheap": 1, "fast": 1}
	picks := [][]int{{0, 0}, {0, 0}} // both jobs want the one cheap machine
	ests, span, busy, _ := batchEstimate(jobs, picks, capacity, nil)

	// The held job runs 0..300 uninterrupted; the rival queues behind
	// the whole job, not behind its first stage.
	if ests[0].StartSec != 0 || ests[0].FinishSec != 300 || ests[0].WaitSec != 0 {
		t.Fatalf("held estimate %+v", ests[0])
	}
	if ests[1].StartSec != 300 || ests[1].FinishSec != 600 {
		t.Fatalf("rival estimate %+v", ests[1])
	}
	if span != 600 || busy["cheap"] != 600 {
		t.Fatalf("span %d, busy %v", span, busy)
	}

	// Without Hold the rival interleaves after the first stage.
	jobs[0].Hold = false
	ests, _, _, _ = batchEstimate(jobs, picks, capacity, nil)
	if ests[0].WaitSec == 0 && ests[1].StartSec == 300 {
		t.Fatalf("re-queueing estimate identical to held: %+v", ests)
	}
}

// TestHoldRepairMovesWholeLabel: when a deadline miss forces the
// repair loop to act on a hold job, the move is a whole-label switch.
func TestHoldRepairMovesWholeLabel(t *testing.T) {
	// Two held jobs contending for one cheap machine; the second misses
	// its deadline queueing behind the first and must move wholesale to
	// the fast machine.
	jobs := []BatchJob{holdJob("a", 0, true), holdJob("b", 400, true)}
	capacity := Capacity{"cheap": 1, "fast": 1}
	batch, err := BatchOptimize(jobs, capacity)
	if err != nil || !batch.Feasible {
		t.Fatalf("%+v, %v", batch, err)
	}
	if batch.MissedDeadlines != 0 {
		t.Fatalf("missed %d: %+v", batch.MissedDeadlines, batch.Estimates)
	}
	for i, sel := range batch.Jobs {
		l0 := jobs[i].Classes[0].Items[sel.Pick[0]].Label
		l1 := jobs[i].Classes[1].Items[sel.Pick[1]].Label
		if l0 != l1 {
			t.Fatalf("job %d split its held lease across %s and %s", i, l0, l1)
		}
	}
}

// TestHoldValidation: ambiguous or unsatisfiable hold tables are
// rejected up front.
func TestHoldValidation(t *testing.T) {
	capacity := Capacity{"cheap": 1, "fast": 1}

	dup := holdJob("a", 0, true)
	dup.Classes[0].Items = append(dup.Classes[0].Items, Item{Label: "cheap", TimeSec: 50, Cost: 9})
	if _, err := BatchOptimize([]BatchJob{dup}, capacity); err == nil || !strings.Contains(err.Error(), "repeats label") {
		t.Fatalf("duplicate label accepted: %v", err)
	}

	disjoint := holdJob("a", 0, true)
	disjoint.Classes[1].Items = []Item{{Label: "fast", TimeSec: 80, Cost: 6.0}}
	disjoint.Classes[0].Items = []Item{{Label: "cheap", TimeSec: 100, Cost: 1.0}}
	if _, err := BatchOptimize([]BatchJob{disjoint}, capacity); err == nil || !strings.Contains(err.Error(), "no label common") {
		t.Fatalf("disjoint labels accepted: %v", err)
	}
}
