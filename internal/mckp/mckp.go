// Package mckp solves the multi-choice knapsack problem at the heart
// of the paper's deployment optimizer (its Sec. III.C): pick exactly
// one VM configuration per flow stage so the total runtime meets a
// deadline and the deployment cost is optimal.
//
// Two exact pseudo-polynomial dynamic programs are provided — the
// paper's literal objective (maximize the sum of reciprocal prices via
// the Dudzinski–Walukiewicz recurrence) and the operationally intended
// objective (minimize total dollars) — plus a greedy upgrade heuristic
// used as an ablation baseline. Runtimes are integral seconds, an
// assumption the paper justifies by per-second cloud billing.
package mckp

import (
	"fmt"
	"math"
)

// Item is one configuration choice within a class (stage).
type Item struct {
	Label   string
	TimeSec int     // runtime in whole seconds
	Cost    float64 // deployment cost in USD
}

// Class is one flow stage with its alternative configurations.
type Class struct {
	Name  string
	Items []Item
}

// Selection is a solution: one item index per class.
type Selection struct {
	Feasible  bool
	Pick      []int // item index per class, aligned with input order
	TotalTime int
	TotalCost float64
	// Objective is the maximized paper objective (sum of 1/cost) when
	// produced by SolvePaper; zero otherwise.
	Objective float64
}

// ExportedPick is one class's solved choice in self-describing form:
// the class and item labels plus the item's time/cost, so downstream
// layers (deployment execution, reports) can consume a plan without
// knowing item indices.
type ExportedPick struct {
	Class   string
	Label   string
	TimeSec int
	Cost    float64
}

// Export renders a feasible selection against the classes it solved as
// labeled picks, in class order.
func (s Selection) Export(classes []Class) ([]ExportedPick, error) {
	if !s.Feasible {
		return nil, fmt.Errorf("mckp: infeasible selection exports no plan")
	}
	// An empty choice table must not silently export a zero-stage plan:
	// downstream layers would schedule nothing and bill nothing, hiding
	// the configuration error that emptied the table.
	if len(classes) == 0 {
		return nil, fmt.Errorf("mckp: empty choice table exports no plan")
	}
	for _, cl := range classes {
		if len(cl.Items) == 0 {
			return nil, fmt.Errorf("mckp: class %q has no items to export", cl.Name)
		}
	}
	if len(s.Pick) != len(classes) {
		return nil, fmt.Errorf("mckp: selection picks %d classes, classes are %d", len(s.Pick), len(classes))
	}
	out := make([]ExportedPick, len(classes))
	for l, j := range s.Pick {
		if j < 0 || j >= len(classes[l].Items) {
			return nil, fmt.Errorf("mckp: pick %d out of range for class %q", j, classes[l].Name)
		}
		it := classes[l].Items[j]
		out[l] = ExportedPick{Class: classes[l].Name, Label: it.Label, TimeSec: it.TimeSec, Cost: it.Cost}
	}
	return out, nil
}

func validate(classes []Class, deadline int) error {
	if len(classes) == 0 {
		return fmt.Errorf("mckp: no classes")
	}
	if deadline < 0 {
		return fmt.Errorf("mckp: negative deadline %d", deadline)
	}
	for _, cl := range classes {
		if len(cl.Items) == 0 {
			return fmt.Errorf("mckp: class %q has no items", cl.Name)
		}
		for _, it := range cl.Items {
			if it.TimeSec < 0 || it.Cost < 0 {
				return fmt.Errorf("mckp: class %q has negative item %+v", cl.Name, it)
			}
		}
	}
	return nil
}

// SolvePaper maximizes the paper's objective sum(1/p_ij) subject to
// sum(t_ij) <= deadline, exactly one pick per class, using the
// Dudzinski–Walukiewicz dynamic program over integral time.
func SolvePaper(classes []Class, deadline int) (Selection, error) {
	if err := validate(classes, deadline); err != nil {
		return Selection{}, err
	}
	score := func(it Item) float64 {
		if it.Cost <= 0 {
			return math.Inf(1)
		}
		return 1 / it.Cost
	}
	return solveDP(classes, deadline, score, false)
}

// SolveMinCost minimizes total cost subject to the deadline, the
// operational variant the paper's Table I reports (its "Min Cost($)"
// column).
func SolveMinCost(classes []Class, deadline int) (Selection, error) {
	if err := validate(classes, deadline); err != nil {
		return Selection{}, err
	}
	return solveDP(classes, deadline, func(it Item) float64 { return -it.Cost }, true)
}

// solveDP runs the layered DP: z_l(c) = best over j of
// z_{l-1}(c - t_lj) + value(item_lj). Larger is better for the value
// function; minCost repurposes it with negated cost.
func solveDP(classes []Class, deadline int, value func(Item) float64, minCost bool) (Selection, error) {
	n := len(classes)
	width := deadline + 1
	negInf := math.Inf(-1)

	cur := make([]float64, width)
	prev := make([]float64, width)
	// choice[l*width+c] is the item picked for class l at budget c.
	choice := make([]int16, n*width)
	for c := 0; c < width; c++ {
		prev[c] = 0 // zero classes: value 0 at any budget
	}
	for l := 0; l < n; l++ {
		for c := 0; c < width; c++ {
			cur[c] = negInf
			choice[l*width+c] = -1
		}
		for j, it := range classes[l].Items {
			v := value(it)
			for c := it.TimeSec; c < width; c++ {
				base := prev[c-it.TimeSec]
				if math.IsInf(base, -1) {
					continue
				}
				if cand := base + v; cand > cur[c] {
					cur[c] = cand
					choice[l*width+c] = int16(j)
				}
			}
		}
		prev, cur = cur, prev
	}
	// prev now holds z_n. Optimal value is at the full budget: the DP
	// is monotone in c because every z_{l}(c) allows slack.
	best := prev[deadline]
	if math.IsInf(best, -1) {
		return Selection{Feasible: false}, nil
	}
	sel := Selection{Feasible: true, Pick: make([]int, n)}
	// Reconstruct: walk budgets backward. We must recompute layer
	// values because only two rows were kept; rebuild the full table
	// cheaply by re-running the DP with stored choices... choices were
	// stored per layer, so walk directly.
	c := deadline
	for l := n - 1; l >= 0; l-- {
		j := choice[l*width+c]
		if j < 0 {
			return Selection{Feasible: false}, nil
		}
		sel.Pick[l] = int(j)
		it := classes[l].Items[j]
		sel.TotalTime += it.TimeSec
		sel.TotalCost += it.Cost
		c -= it.TimeSec
	}
	if !minCost {
		sel.Objective = best
	}
	return sel, nil
}

// SolveGreedy is the upgrade heuristic baseline: start from the
// cheapest item per class, then while the deadline is violated, apply
// the upgrade with the best time-saved-per-extra-dollar ratio. It is
// not optimal — bench_test.go's ablation quantifies the gap.
func SolveGreedy(classes []Class, deadline int) (Selection, error) {
	if err := validate(classes, deadline); err != nil {
		return Selection{}, err
	}
	n := len(classes)
	pick := make([]int, n)
	for l, cl := range classes {
		for j, it := range cl.Items {
			if it.Cost < cl.Items[pick[l]].Cost {
				pick[l] = j
			}
		}
	}
	total := func() (int, float64) {
		t, p := 0, 0.0
		for l, j := range pick {
			t += classes[l].Items[j].TimeSec
			p += classes[l].Items[j].Cost
		}
		return t, p
	}
	for {
		t, _ := total()
		if t <= deadline {
			break
		}
		bestL, bestJ := -1, -1
		bestRatio := math.Inf(-1)
		for l := 0; l < n; l++ {
			curIt := classes[l].Items[pick[l]]
			for j, it := range classes[l].Items {
				saved := curIt.TimeSec - it.TimeSec
				if saved <= 0 {
					continue
				}
				extra := it.Cost - curIt.Cost
				var ratio float64
				if extra <= 0 {
					ratio = math.Inf(1) // free speedup
				} else {
					ratio = float64(saved) / extra
				}
				if ratio > bestRatio {
					bestRatio = ratio
					bestL, bestJ = l, j
				}
			}
		}
		if bestL < 0 {
			return Selection{Feasible: false}, nil // no upgrades left
		}
		pick[bestL] = bestJ
	}
	t, p := total()
	return Selection{Feasible: true, Pick: pick, TotalTime: t, TotalCost: p}, nil
}

// FixedProvision returns the selection that uses item index j in every
// class (the paper's over-provisioning j=fastest and under-provisioning
// j=cheapest baselines in Fig. 6), ignoring any deadline.
func FixedProvision(classes []Class, j func(Class) int) (Selection, error) {
	if err := validate(classes, 0); err != nil {
		return Selection{}, err
	}
	sel := Selection{Feasible: true, Pick: make([]int, len(classes))}
	for l, cl := range classes {
		idx := j(cl)
		if idx < 0 || idx >= len(cl.Items) {
			return Selection{}, fmt.Errorf("mckp: provision index %d out of range for class %q", idx, cl.Name)
		}
		sel.Pick[l] = idx
		sel.TotalTime += cl.Items[idx].TimeSec
		sel.TotalCost += cl.Items[idx].Cost
	}
	return sel, nil
}

// Fastest returns the index of the minimum-time item of a class.
func Fastest(cl Class) int {
	best := 0
	for j, it := range cl.Items {
		if it.TimeSec < cl.Items[best].TimeSec {
			best = j
		}
	}
	return best
}

// Cheapest returns the index of the minimum-cost item of a class.
func Cheapest(cl Class) int {
	best := 0
	for j, it := range cl.Items {
		if it.Cost < cl.Items[best].Cost {
			best = j
		}
	}
	return best
}

// MinTotalTime returns the smallest achievable total runtime, the
// feasibility threshold below which every solver reports NA.
func MinTotalTime(classes []Class) int {
	t := 0
	for _, cl := range classes {
		t += cl.Items[Fastest(cl)].TimeSec
	}
	return t
}
