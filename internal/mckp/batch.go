package mckp

import (
	"fmt"
	"math"
	"sort"

	"edacloud/internal/par"
)

// This file is the batch-level formulation of the deployment problem:
// N flows' per-stage choice tables co-optimized against a shared
// fleet's capacity instead of each flow's knapsack solved in
// isolation. Independently-optimized plans all gravitate to the same
// cheap instance types, queue behind each other on a bounded fleet,
// and blow the very deadlines the per-job DP certified; BatchOptimize
// closes that gap with a Lagrangian price-adjustment loop — fleet
// congestion enters each job's DP as shadow prices on instance-type
// labels — plus a greedy round-robin re-planner as a fallback bound.
// Everything here is integral-seconds arithmetic over the same FIFO
// earliest-free placement discipline the flow scheduler simulates, so
// the batch estimate and the event simulation agree on ordering.

// BatchJob is one flow in a batch: its per-stage choice table (item
// labels name instance types, the currency shared with Capacity) and
// its completion deadline.
type BatchJob struct {
	Name    string
	Classes []Class
	// DeadlineSec is the job's completion deadline in whole seconds,
	// measured against its predicted finish time under contention
	// (queueing included); 0 means none.
	DeadlineSec int
	// ReadySec is the earliest second the job may start — the arrival
	// (or checkpoint) time of a job entering a rolling-horizon re-solve.
	// The zero value reproduces the one-shot batch exactly: every job
	// ready at time zero, the DP budget the full deadline.
	ReadySec int
	// Hold marks a job executed under the holding policy (flow's
	// SingleInstance): one machine leased once and kept across every
	// stage. Its selection is then constrained to a single label — the
	// solver enumerates the labels common to all classes — and the
	// estimator places the whole job back-to-back on one machine with no
	// inter-stage re-queueing.
	Hold bool
}

// Capacity is the shared fleet's capacity profile: instance-type label
// to machine count (cloud.Fleet.Profile in mckp currency).
type Capacity map[string]int

// JobEstimate is one job's predicted placement in the batch schedule,
// in whole seconds: when it starts, how long it queues across stages,
// when it finishes, and whether that meets its deadline.
type JobEstimate struct {
	StartSec, WaitSec, FinishSec int
	DeadlineMet                  bool
}

// BatchSelection is a joint solution: one Selection per job (aligned
// with the input jobs, each against its own Classes) plus the
// contention-aware schedule estimate the picks imply on the shared
// fleet.
type BatchSelection struct {
	Feasible bool
	Jobs     []Selection
	// TotalCost sums the jobs' selected item costs — queueing never
	// changes a bill under per-second lease pricing, so this is exact.
	TotalCost float64
	// MakespanSec is the predicted batch completion time under the
	// capacity constraints; Estimates holds the per-job placements.
	MakespanSec int
	Estimates   []JobEstimate
	// MissedDeadlines counts jobs whose predicted finish exceeds their
	// deadline even after co-optimization.
	MissedDeadlines int
	// Prices holds the final per-label shadow prices (USD per busy
	// second) the winning candidate was solved under; all zero when the
	// independent solution already won.
	Prices map[string]float64
	// Rounds counts price-adjustment iterations run; Method names the
	// winning candidate ("independent", "warm", "priced", "round-robin").
	Rounds int
	Method string
	// FinalPrices is the price vector after the last adjustment round,
	// whichever candidate won — the warm-start carrier a rolling-horizon
	// caller feeds back through BatchState.Prices at the next event.
	FinalPrices map[string]float64
}

// BatchState carries warm-start state into BatchOptimizeState — the
// incremental re-solve a rolling-horizon serving layer runs at every
// arrival/completion event. The zero value reproduces BatchOptimize
// exactly.
type BatchState struct {
	// FreeAtSec seeds the schedule estimator's per-label machine pools
	// with initial free times (absolute seconds, in the fleet's
	// within-label instance order) — capacity already committed to
	// in-flight work. Missing labels (or entries beyond a label's
	// capacity) default to 0 (free now); extra entries are ignored.
	FreeAtSec map[string][]int
	// Prices warm-starts the Lagrangian shadow prices from a previous
	// solve: consecutive events see nearly the same congestion, so the
	// loop converges in a round or two instead of starting cold.
	Prices map[string]float64
	// Rounds bounds the price-adjustment iterations; 0 means the
	// default 8. Warm-started re-solves typically pass 1 or 2.
	Rounds int
	// Workers bounds how many per-job DP solves run concurrently per
	// round; 0 means GOMAXPROCS. Results are identical for every value.
	Workers int
}

// batchValidate checks the batch inputs: non-empty jobs and capacity,
// every class valid, and every item placeable on the shared fleet.
func batchValidate(jobs []BatchJob, capacity Capacity) error {
	if len(jobs) == 0 {
		return fmt.Errorf("mckp: batch has no jobs")
	}
	if len(capacity) == 0 {
		return fmt.Errorf("mckp: batch has no fleet capacity")
	}
	for label, n := range capacity {
		if n < 1 {
			return fmt.Errorf("mckp: capacity %d for label %q", n, label)
		}
	}
	for _, job := range jobs {
		if job.DeadlineSec < 0 {
			return fmt.Errorf("mckp: job %q has negative deadline", job.Name)
		}
		if job.ReadySec < 0 {
			return fmt.Errorf("mckp: job %q has negative ready time", job.Name)
		}
		if err := validate(job.Classes, 0); err != nil {
			return fmt.Errorf("mckp: job %q: %w", job.Name, err)
		}
		for _, cl := range job.Classes {
			for _, it := range cl.Items {
				if _, ok := capacity[it.Label]; !ok {
					return fmt.Errorf("mckp: job %q stage %q item %q names no fleet capacity",
						job.Name, cl.Name, it.Label)
				}
			}
		}
		if job.Hold {
			if err := validateHold(job); err != nil {
				return err
			}
		}
	}
	return nil
}

// validateHold checks a holding-policy job's choice table: a label may
// appear at most once per class (a label must determine the pick), and
// at least one label must appear in every class (otherwise no single
// machine can run the whole job).
func validateHold(job BatchJob) error {
	for _, cl := range job.Classes {
		seen := map[string]bool{}
		for _, it := range cl.Items {
			if seen[it.Label] {
				return fmt.Errorf("mckp: hold job %q stage %q repeats label %q", job.Name, cl.Name, it.Label)
			}
			seen[it.Label] = true
		}
	}
	if len(holdLabels(job)) == 0 {
		return fmt.Errorf("mckp: hold job %q has no label common to all stages", job.Name)
	}
	return nil
}

// holdLabels returns the labels available to a hold job — those present
// in every class — sorted for determinism.
func holdLabels(job BatchJob) []string {
	if len(job.Classes) == 0 {
		return nil
	}
	count := map[string]int{}
	for _, cl := range job.Classes {
		for _, it := range cl.Items {
			count[it.Label]++
		}
	}
	var labels []string
	for label, n := range count {
		if n == len(job.Classes) {
			labels = append(labels, label)
		}
	}
	sort.Strings(labels)
	return labels
}

// holdPicks resolves a hold job's per-class item indices for one label.
func holdPicks(job BatchJob, label string) []int {
	picks := make([]int, len(job.Classes))
	for l, cl := range job.Classes {
		picks[l] = -1
		for j, it := range cl.Items {
			if it.Label == label {
				picks[l] = j
				break
			}
		}
		if picks[l] < 0 {
			return nil
		}
	}
	return picks
}

// SolveHold solves one holding-policy job in isolation: the cheapest
// single label whose total busy time across every class fits the
// deadline (0 means none) — the per-job counterpart of SolveMinCost
// for flows that keep one machine leased across all stages.
func SolveHold(classes []Class, deadlineSec int) (Selection, error) {
	job := BatchJob{Name: "hold", Classes: classes, DeadlineSec: deadlineSec, Hold: true}
	if err := validate(classes, 0); err != nil {
		return Selection{}, err
	}
	if deadlineSec < 0 {
		return Selection{}, fmt.Errorf("mckp: negative deadline %d", deadlineSec)
	}
	if err := validateHold(job); err != nil {
		return Selection{}, err
	}
	return holdSolve(job, nil)
}

// holdSolve is the holding-policy counterpart of pricedSolve: the
// selection is one label for every stage, so the solve enumerates the
// common labels, keeps those whose total busy time fits the deadline,
// and returns the cheapest under the priced costs (ties toward the
// lexicographically earlier label), re-totaled against true costs.
func holdSolve(job BatchJob, prices map[string]float64) (Selection, error) {
	best := Selection{Feasible: false}
	bestPriced := math.Inf(1)
	for _, label := range holdLabels(job) {
		picks := holdPicks(job, label)
		sel := retotal(job, picks)
		if sel.TotalTime > effectiveDeadline(job) {
			continue
		}
		priced := sel.TotalCost + prices[label]*float64(sel.TotalTime)
		if priced < bestPriced {
			bestPriced = priced
			best = sel
		}
	}
	return best, nil
}

// effectiveDeadline is the DP budget for one job: the busy time its
// deadline leaves after its ready time (a job cannot start earlier, so
// at most deadline-ready seconds of work fit), or — deadline-free jobs
// — the slowest possible plan, which every selection fits under.
func effectiveDeadline(job BatchJob) int {
	if job.DeadlineSec > 0 {
		budget := job.DeadlineSec - job.ReadySec
		if budget < 0 {
			budget = 0
		}
		return budget
	}
	slowest := 0
	for _, cl := range job.Classes {
		worst := 0
		for _, it := range cl.Items {
			if it.TimeSec > worst {
				worst = it.TimeSec
			}
		}
		slowest += worst
	}
	return slowest
}

// pricedSolve runs one job's min-cost DP with each item's cost raised
// by the shadow price of its label times its runtime — congestion
// rendered as money — and returns picks plus true (unpriced) totals.
func pricedSolve(job BatchJob, prices map[string]float64) (Selection, error) {
	if job.Hold {
		return holdSolve(job, prices)
	}
	classes := job.Classes
	if len(prices) > 0 {
		classes = make([]Class, len(job.Classes))
		for l, cl := range job.Classes {
			classes[l] = Class{Name: cl.Name, Items: make([]Item, len(cl.Items))}
			for j, it := range cl.Items {
				it.Cost += prices[it.Label] * float64(it.TimeSec)
				classes[l].Items[j] = it
			}
		}
	}
	sel, err := SolveMinCost(classes, effectiveDeadline(job))
	if err != nil || !sel.Feasible {
		return sel, err
	}
	// Re-total against the true costs: the priced DP only steers picks.
	sel.TotalTime, sel.TotalCost = 0, 0
	for l, j := range sel.Pick {
		it := job.Classes[l].Items[j]
		sel.TotalTime += it.TimeSec
		sel.TotalCost += it.Cost
	}
	return sel, nil
}

// capacityPools seeds the estimator's per-label machine free-time
// pools from the capacity profile, pre-loaded with any committed
// free-at times (nil freeAt means every machine free at 0).
func capacityPools(capacity Capacity, freeAt map[string][]int) map[string][]int {
	pools := map[string][]int{}
	for label, n := range capacity {
		pool := make([]int, n)
		for i, t := range freeAt[label] {
			if i >= n {
				break
			}
			if t > 0 {
				pool[i] = t
			}
		}
		pools[label] = pool
	}
	return pools
}

// candidate is one joint plan under evaluation.
type candidate struct {
	method string
	picks  [][]int
	sels   []Selection
	ests   []JobEstimate
	cost   float64
	span   int
	missed int
	prices map[string]float64
	round  int
}

// score orders candidates: fewest missed deadlines, then cheapest,
// then shortest makespan. Lower is better.
func (c *candidate) better(o *candidate) bool {
	if c.missed != o.missed {
		return c.missed < o.missed
	}
	if math.Abs(c.cost-o.cost) > 1e-9 {
		return c.cost < o.cost
	}
	return c.span < o.span
}

// evaluate fills a candidate's schedule estimate and score fields.
func (c *candidate) evaluate(jobs []BatchJob, capacity Capacity, freeAt map[string][]int) (busy, wait map[string]int) {
	ests, span, busy, wait := batchEstimate(jobs, c.picks, capacity, freeAt)
	c.ests, c.span = ests, span
	c.cost, c.missed = 0, 0
	for i, sel := range c.sels {
		c.cost += sel.TotalCost
		met := jobs[i].DeadlineSec <= 0 || ests[i].FinishSec <= jobs[i].DeadlineSec
		c.ests[i].DeadlineMet = met
		if !met {
			c.missed++
		}
	}
	return busy, wait
}

// batchEstimate predicts the schedule the picks imply on the shared
// fleet with the flow scheduler's own discipline in whole seconds:
// stages are the placement unit, jobs queue FIFO by ready time (ties
// toward the earlier job), and each stage takes the earliest-free
// machine of its label (ties toward the lower machine index). It
// returns the per-job estimates, the makespan, and per-label busy and
// wait totals — the congestion signal the price loop feeds on.
func batchEstimate(jobs []BatchJob, picks [][]int, capacity Capacity, freeAt map[string][]int) (ests []JobEstimate, makespan int, busy, wait map[string]int) {
	type runner struct {
		job   int
		stage int
		ready int
	}
	free := capacityPools(capacity, freeAt)
	busy = map[string]int{}
	wait = map[string]int{}
	ests = make([]JobEstimate, len(jobs))
	var queue []*runner
	for i := range jobs {
		if len(jobs[i].Classes) > 0 {
			queue = append(queue, &runner{job: i, ready: jobs[i].ReadySec})
		}
	}
	started := make([]bool, len(jobs))
	for len(queue) > 0 {
		best := 0
		for i := 1; i < len(queue); i++ {
			if queue[i].ready < queue[best].ready {
				best = i
			}
		}
		r := queue[best]
		job := jobs[r.job]
		if job.Hold {
			// The holding policy leases one machine for the whole job: all
			// stages run back-to-back on it with no inter-stage re-queueing,
			// exactly as the flow scheduler's SingleInstance placement does.
			label := job.Classes[0].Items[picks[r.job][0]].Label
			total := 0
			for l := range job.Classes {
				total += job.Classes[l].Items[picks[r.job][l]].TimeSec
			}
			machines := free[label]
			m := 0
			for i := 1; i < len(machines); i++ {
				if machines[i] < machines[m] {
					m = i
				}
			}
			start := r.ready
			if machines[m] > start {
				start = machines[m]
			}
			free[label][m] = start + total
			busy[label] += total
			wait[label] += start - r.ready
			started[r.job] = true
			ests[r.job].StartSec = start
			ests[r.job].WaitSec = start - r.ready
			ests[r.job].FinishSec = start + total
			if start+total > makespan {
				makespan = start + total
			}
			queue = append(queue[:best], queue[best+1:]...)
			continue
		}
		it := job.Classes[r.stage].Items[picks[r.job][r.stage]]
		machines := free[it.Label]
		m := 0
		for i := 1; i < len(machines); i++ {
			if machines[i] < machines[m] {
				m = i
			}
		}
		start := r.ready
		if machines[m] > start {
			start = machines[m]
		}
		free[it.Label][m] = start + it.TimeSec
		busy[it.Label] += it.TimeSec
		wait[it.Label] += start - r.ready
		if !started[r.job] {
			started[r.job] = true
			ests[r.job].StartSec = start
		}
		ests[r.job].WaitSec += start - r.ready
		r.ready = start + it.TimeSec
		r.stage++
		if r.stage == len(job.Classes) {
			ests[r.job].FinishSec = r.ready
			if r.ready > makespan {
				makespan = r.ready
			}
			queue = append(queue[:best], queue[best+1:]...)
		}
	}
	return ests, makespan, busy, wait
}

// BatchOptimize co-optimizes N jobs' plans against a shared fleet. It
// seeds with each job's independent min-cost DP, then runs a
// Lagrangian price-adjustment loop: congested instance labels (those
// whose queue waits dominate the estimate) accrue a shadow price per
// busy second, each job's DP re-solves under the priced costs — jobs
// whose slack is cheap to move migrate off the contended types — and
// the best candidate under (missed deadlines, cost, makespan) wins.
// A greedy round-robin re-planner then repairs any remaining misses
// stage by stage as a fallback bound. The independent solution is
// always a candidate and fewer missed deadlines rank above cost, so
// the batch never costs more than the sum of independently-optimized
// plans on the same fleet unless paying more recovers a deadline the
// independent plans miss — deadline-free, the bound is unconditional
// (the tested property).
func BatchOptimize(jobs []BatchJob, capacity Capacity) (BatchSelection, error) {
	return BatchOptimizeState(jobs, capacity, BatchState{})
}

// BatchOptimizeState is BatchOptimize with explicit warm-start state —
// the incremental form a rolling-horizon re-optimizer calls at every
// arrival/completion event: committed capacity seeds the estimator's
// machine pools, the previous event's shadow prices seed the Lagrangian
// loop, and the round budget shrinks because consecutive events see
// nearly the same congestion. The zero state reproduces BatchOptimize
// exactly; per-job DP solves within a round fan out across
// st.Workers with results identical for any worker count.
func BatchOptimizeState(jobs []BatchJob, capacity Capacity, st BatchState) (BatchSelection, error) {
	if err := batchValidate(jobs, capacity); err != nil {
		return BatchSelection{}, err
	}

	pool := par.Fixed(st.Workers)
	type solved struct {
		sel Selection
		err error
	}
	solve := func(method string, prices map[string]float64, round int) (*candidate, error) {
		c := &candidate{method: method, prices: prices, round: round,
			picks: make([][]int, len(jobs)), sels: make([]Selection, len(jobs))}
		results := par.Map(pool, len(jobs), func(i int) solved {
			sel, err := pricedSolve(jobs[i], prices)
			return solved{sel, err}
		})
		for i, r := range results {
			if r.err != nil {
				return nil, r.err
			}
			if !r.sel.Feasible {
				return nil, nil // this pricing starves a job; skip the candidate
			}
			c.sels[i] = r.sel
			c.picks[i] = r.sel.Pick
		}
		return c, nil
	}

	// Candidate zero: every job independently optimal, prices all zero.
	// If any job cannot meet its own deadline even alone and uncontended
	// the batch is infeasible.
	base, err := solve("independent", nil, 0)
	if err != nil {
		return BatchSelection{}, err
	}
	if base == nil {
		return BatchSelection{Feasible: false, Jobs: make([]Selection, len(jobs))}, nil
	}
	baseBusy, baseWait := base.evaluate(jobs, capacity, st.FreeAtSec)
	bestCand := base

	// Price loop: shadow prices start at zero (or the caller's warm
	// vector) and chase congestion. The unit price is the batch's
	// average dollar-per-busy-second, so a label whose queue wait equals
	// its busy time roughly doubles in apparent cost — enough to push
	// marginal jobs to their next-best type without drowning the true
	// prices.
	labels := make([]string, 0, len(capacity))
	for label := range capacity {
		labels = append(labels, label)
	}
	sort.Strings(labels)
	var busyTotal int
	for _, label := range labels {
		busyTotal += baseBusy[label]
	}
	unit := 0.0
	if busyTotal > 0 {
		unit = base.cost / float64(busyTotal)
	}
	rounds := st.Rounds
	if rounds <= 0 {
		rounds = 8
	}
	prices := map[string]float64{}
	busy, wait := baseBusy, baseWait
	if len(st.Prices) > 0 && unit > 0 {
		// Warm start: re-solve under the previous event's prices before
		// adjusting, so one round suffices when congestion is unchanged.
		for label, p := range st.Prices {
			prices[label] = p
		}
		warm, err := solve("warm", prices, 0)
		if err != nil {
			return BatchSelection{}, err
		}
		if warm != nil {
			busy, wait = warm.evaluate(jobs, capacity, st.FreeAtSec)
			if warm.better(bestCand) {
				bestCand = warm
			}
		}
	}
	roundsRun := 0
	for round := 1; round <= rounds && unit > 0; round++ {
		congested := false
		next := map[string]float64{}
		for _, label := range labels {
			congestion := 0.0
			if busy[label] > 0 {
				congestion = float64(wait[label]) / float64(busy[label])
			}
			// Damped update: half the old price plus the fresh congestion
			// signal, so prices both rise under sustained queueing and
			// decay once jobs have moved away.
			next[label] = 0.5*prices[label] + unit*congestion
			if next[label] > 1e-12 {
				congested = true
			}
		}
		prices = next
		roundsRun = round
		if !congested {
			break
		}
		cand, err := solve("priced", prices, round)
		if err != nil {
			return BatchSelection{}, err
		}
		if cand == nil {
			break // pricing made some job infeasible; stop escalating
		}
		busy, wait = cand.evaluate(jobs, capacity, st.FreeAtSec)
		if cand.better(bestCand) {
			bestCand = cand
		}
	}

	// Fallback bound: greedy round-robin repair of the best candidate.
	// While predicted misses remain, take the worst-missing job and try
	// every single-stage re-pick, keeping the move that most improves
	// (missed, job finish, cost). Bounded by the total item count so it
	// always terminates.
	repaired := repairMisses(jobs, capacity, st.FreeAtSec, bestCand)
	if repaired != nil && repaired.better(bestCand) {
		bestCand = repaired
	}

	out := BatchSelection{
		Feasible:    true,
		Jobs:        bestCand.sels,
		TotalCost:   bestCand.cost,
		MakespanSec: bestCand.span,
		Estimates:   bestCand.ests,
		Prices:      bestCand.prices,
		Rounds:      roundsRun,
		Method:      bestCand.method,
		FinalPrices: prices,
	}
	if out.Prices == nil {
		out.Prices = map[string]float64{}
	}
	for _, est := range out.Estimates {
		if !est.DeadlineMet {
			out.MissedDeadlines++
		}
	}
	return out, nil
}

// repairMisses is the greedy round-robin re-planner: starting from a
// candidate, repeatedly re-pick one stage of the worst deadline-missing
// job until no move improves the estimate. Returns nil when the start
// already meets every deadline.
func repairMisses(jobs []BatchJob, capacity Capacity, freeAt map[string][]int, start *candidate) *candidate {
	if start.missed == 0 {
		return nil
	}
	cur := &candidate{method: "round-robin", prices: start.prices, round: start.round,
		picks: make([][]int, len(jobs)), sels: make([]Selection, len(jobs))}
	for i := range jobs {
		cur.picks[i] = append([]int(nil), start.picks[i]...)
		cur.sels[i] = start.sels[i]
	}
	cur.evaluate(jobs, capacity, freeAt)

	budget := 0
	for _, job := range jobs {
		for _, cl := range job.Classes {
			budget += len(cl.Items)
		}
	}
	for step := 0; step < budget && cur.missed > 0; step++ {
		// The worst offender: largest finish-past-deadline overrun, ties
		// toward the earlier job.
		worst, overrun := -1, 0
		for i, est := range cur.ests {
			if jobs[i].DeadlineSec <= 0 || est.DeadlineMet {
				continue
			}
			if over := est.FinishSec - jobs[i].DeadlineSec; worst < 0 || over > overrun {
				worst, overrun = i, over
			}
		}
		if worst < 0 {
			break
		}
		var bestMove *candidate
		try := func(picks []int) {
			trial := &candidate{method: "round-robin", prices: cur.prices, round: cur.round,
				picks: make([][]int, len(jobs)), sels: make([]Selection, len(jobs))}
			for i := range jobs {
				trial.picks[i] = append([]int(nil), cur.picks[i]...)
				trial.sels[i] = cur.sels[i]
			}
			trial.picks[worst] = append([]int(nil), picks...)
			trial.sels[worst] = retotal(jobs[worst], trial.picks[worst])
			if trial.sels[worst].TotalTime > effectiveDeadline(jobs[worst]) {
				return // busy time alone already blows the budget
			}
			trial.evaluate(jobs, capacity, freeAt)
			if trial.missed < cur.missed ||
				(trial.missed == cur.missed && trial.ests[worst].FinishSec < cur.ests[worst].FinishSec) {
				if bestMove == nil || trial.better(bestMove) {
					bestMove = trial
				}
			}
		}
		if jobs[worst].Hold {
			// A hold job moves as a unit: re-pick its single label, never a
			// lone stage (a per-stage move would split the held lease).
			curLabel := jobs[worst].Classes[0].Items[cur.picks[worst][0]].Label
			for _, label := range holdLabels(jobs[worst]) {
				if label == curLabel {
					continue
				}
				try(holdPicks(jobs[worst], label))
			}
		} else {
			for l := range jobs[worst].Classes {
				for j := range jobs[worst].Classes[l].Items {
					if j == cur.picks[worst][l] {
						continue
					}
					picks := append([]int(nil), cur.picks[worst]...)
					picks[l] = j
					try(picks)
				}
			}
		}
		if bestMove == nil {
			break
		}
		cur = bestMove
	}
	return cur
}

// retotal rebuilds a job's Selection from explicit picks.
func retotal(job BatchJob, picks []int) Selection {
	sel := Selection{Feasible: true, Pick: append([]int(nil), picks...)}
	for l, j := range picks {
		it := job.Classes[l].Items[j]
		sel.TotalTime += it.TimeSec
		sel.TotalCost += it.Cost
	}
	return sel
}

// Export renders every job's selection as labeled picks, in job order.
// Like Selection.Export it refuses infeasible selections and empty
// choice tables.
func (b BatchSelection) Export(jobs []BatchJob) ([][]ExportedPick, error) {
	if !b.Feasible {
		return nil, fmt.Errorf("mckp: infeasible batch selection exports no plans")
	}
	if len(b.Jobs) != len(jobs) {
		return nil, fmt.Errorf("mckp: batch selection holds %d jobs, batch has %d", len(b.Jobs), len(jobs))
	}
	out := make([][]ExportedPick, len(jobs))
	for i, job := range jobs {
		picks, err := b.Jobs[i].Export(job.Classes)
		if err != nil {
			return nil, fmt.Errorf("mckp: job %q: %w", job.Name, err)
		}
		out[i] = picks
	}
	return out, nil
}
