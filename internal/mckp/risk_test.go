package mckp

import (
	"math"
	"reflect"
	"testing"
)

func TestExpectedAttemptsAndBusy(t *testing.T) {
	// Rate 0 and zero-length stages are exactly the nominal run.
	if a := ExpectedAttempts(600, 0); a != 1 {
		t.Fatalf("attempts at rate 0 = %g", a)
	}
	if b := ExpectedBusySec(600, 0); b != 600 {
		t.Fatalf("busy at rate 0 = %g", b)
	}
	if a := ExpectedAttempts(0, 10); a != 1 {
		t.Fatalf("attempts for 0 s stage = %g", a)
	}

	// lambda*t = 1: e attempts, (e-1)/lambda busy seconds.
	lambda := 6.0 / 3600 // 6/hour
	tSec := 1 / lambda   // 600 s
	if a := ExpectedAttempts(tSec, 6); math.Abs(a-math.E) > 1e-12 {
		t.Fatalf("attempts at lambda*t=1 = %g, want e", a)
	}
	wantBusy := (math.E - 1) / lambda
	if b := ExpectedBusySec(tSec, 6); math.Abs(b-wantBusy) > 1e-9 {
		t.Fatalf("busy at lambda*t=1 = %g, want %g", b, wantBusy)
	}

	// Busy time tends to the nominal runtime as the rate tends to 0.
	if b := ExpectedBusySec(600, 1e-9); math.Abs(b-600) > 1e-3 {
		t.Fatalf("busy at vanishing rate = %g", b)
	}

	// The expectation caps rather than blowing up for hopeless items.
	if a := ExpectedAttempts(3600*10, 100); a != maxExpectedAttempts {
		t.Fatalf("uncapped attempts %g", a)
	}
	// Monotone in both arguments below the cap.
	if ExpectedAttempts(700, 6) <= ExpectedAttempts(600, 6) {
		t.Fatal("attempts not monotone in runtime")
	}
	if ExpectedBusySec(600, 12) <= ExpectedBusySec(600, 6) {
		t.Fatal("busy not monotone in rate")
	}
}

func TestRiskAdjustIdentityAndInflation(t *testing.T) {
	classes := []Class{
		{Name: "synth", Items: []Item{
			{Label: "gp.4x", TimeSec: 600, Cost: 0.10},
			{Label: "gp.4x.spot", TimeSec: 600, Cost: 0.03},
		}},
		{Name: "route", Items: []Item{
			{Label: "gp.4x", TimeSec: 1200, Cost: 0.20},
			{Label: "gp.4x.spot", TimeSec: 1200, Cost: 0.06},
		}},
	}

	// Empty or zero hazards: bit-identical output, input untouched.
	for _, hz := range []Hazards{nil, {}, {"gp.4x.spot": 0}} {
		if got := RiskAdjust(classes, hz, 30); !reflect.DeepEqual(got, classes) {
			t.Fatalf("zero-hazard adjustment changed the table: %+v", got)
		}
	}

	hz := Hazards{"gp.4x.spot": 6}
	adj := RiskAdjust(classes, hz, 30)
	if !reflect.DeepEqual(classes[0].Items[0], adj[0].Items[0]) {
		t.Fatal("on-demand item adjusted")
	}
	for l := range classes {
		spot, adjSpot := classes[l].Items[1], adj[l].Items[1]
		if adjSpot.TimeSec <= spot.TimeSec {
			t.Fatalf("stage %d: adjusted time %d not above nominal %d", l, adjSpot.TimeSec, spot.TimeSec)
		}
		if adjSpot.Cost <= spot.Cost {
			t.Fatalf("stage %d: adjusted cost %g not above nominal %g", l, adjSpot.Cost, spot.Cost)
		}
		// The adjusted wall clock covers busy time plus backoffs exactly.
		tt := float64(spot.TimeSec)
		attempts := ExpectedAttempts(tt, 6)
		busy := ExpectedBusySec(tt, 6)
		wantTime := int(math.Ceil(busy + (attempts-1)*30))
		if adjSpot.TimeSec != wantTime {
			t.Fatalf("stage %d: adjusted time %d, want %d", l, adjSpot.TimeSec, wantTime)
		}
		wantCost := spot.Cost / tt * busy
		if math.Abs(adjSpot.Cost-wantCost) > 1e-12 {
			t.Fatalf("stage %d: adjusted cost %g, want %g", l, adjSpot.Cost, wantCost)
		}
	}
	// The input was not mutated.
	if classes[0].Items[1].TimeSec != 600 || classes[1].Items[1].Cost != 0.06 {
		t.Fatal("RiskAdjust mutated its input")
	}
}

// TestRiskAdjustFlipsDeadlineCriticalStage: the intended planning
// effect — under a tight deadline the risk-adjusted DP buys on-demand
// where the naive spot table would gamble, and under ample slack it
// keeps the discount.
func TestRiskAdjustFlipsDeadlineCriticalStage(t *testing.T) {
	classes := []Class{{Name: "synth", Items: []Item{
		{Label: "od", TimeSec: 600, Cost: 0.10},
		{Label: "spot", TimeSec: 600, Cost: 0.03},
	}}}
	hz := Hazards{"spot": 18} // lambda*t = 3: ~20 expected attempts
	adj := RiskAdjust(classes, hz, 30)

	// Naive table happily picks spot under a 700 s deadline...
	naive, err := SolveMinCost(classes, 700)
	if err != nil || !naive.Feasible || classes[0].Items[naive.Pick[0]].Label != "spot" {
		t.Fatalf("naive pick: %+v, %v", naive, err)
	}
	// ...the adjusted table knows spot cannot make 700 s in expectation.
	tight, err := SolveMinCost(adj, 700)
	if err != nil || !tight.Feasible {
		t.Fatalf("adjusted solve: %+v, %v", tight, err)
	}
	if adj[0].Items[tight.Pick[0]].Label != "od" {
		t.Fatal("risk-adjusted DP still gambles on spot against a tight deadline")
	}
	// With enough slack for the expected retries, spot is worth it again
	// whenever its expected bill stays below on-demand.
	if adj[0].Items[1].Cost < adj[0].Items[0].Cost {
		slack, err := SolveMinCost(adj, adj[0].Items[1].TimeSec+100)
		if err != nil || !slack.Feasible {
			t.Fatalf("slack solve: %+v, %v", slack, err)
		}
		if adj[0].Items[slack.Pick[0]].Label != "spot" {
			t.Fatal("slack-rich stage stopped riding spot")
		}
	}
}
