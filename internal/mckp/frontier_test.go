package mckp

import (
	"math"
	"math/rand"
	"testing"
)

// TestFrontierMatchesPerDeadlineSolves cross-checks the one-DP
// frontier against brute force: at every budget from the fastest
// achievable time to the slowest, the frontier's best selection at
// that budget must cost exactly what SolveMinCost reports, and the
// points themselves must be mutually non-dominated.
func TestFrontierMatchesPerDeadlineSolves(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(3)
		classes := make([]Class, n)
		maxTotal := 0
		for l := range classes {
			k := 2 + rng.Intn(4)
			slowest := 0
			for j := 0; j < k; j++ {
				it := Item{TimeSec: 1 + rng.Intn(30), Cost: float64(1+rng.Intn(400)) / 100}
				classes[l].Items = append(classes[l].Items, it)
				if it.TimeSec > slowest {
					slowest = it.TimeSec
				}
			}
			maxTotal += slowest
		}

		front, err := Frontier(classes)
		if err != nil {
			t.Fatal(err)
		}
		if len(front) == 0 {
			t.Fatalf("seed %d: empty frontier", seed)
		}
		for i := range front {
			if i == 0 {
				continue
			}
			if front[i].TotalTime <= front[i-1].TotalTime || front[i].TotalCost >= front[i-1].TotalCost {
				t.Fatalf("seed %d: frontier not strictly ordered at %d: %+v then %+v",
					seed, i, front[i-1], front[i])
			}
		}
		// No point may dominate another (weakly better on both axes).
		for i := range front {
			for j := range front {
				if i == j {
					continue
				}
				if front[i].TotalTime <= front[j].TotalTime && front[i].TotalCost <= front[j].TotalCost-1e-12 {
					t.Fatalf("seed %d: frontier point %+v dominates %+v", seed, front[i], front[j])
				}
			}
		}
		bestAt := func(deadline int) float64 {
			best := math.Inf(1)
			for _, s := range front {
				if s.TotalTime <= deadline && s.TotalCost < best {
					best = s.TotalCost
				}
			}
			return best
		}
		for d := MinTotalTime(classes); d <= maxTotal; d++ {
			sel, err := SolveMinCost(classes, d)
			if err != nil {
				t.Fatal(err)
			}
			if !sel.Feasible {
				t.Fatalf("seed %d: deadline %d infeasible above MinTotalTime", seed, d)
			}
			if got := bestAt(d); math.Abs(got-sel.TotalCost) > 1e-9 {
				t.Fatalf("seed %d deadline %d: frontier prices $%.6f, SolveMinCost $%.6f",
					seed, d, got, sel.TotalCost)
			}
		}
	}
}
