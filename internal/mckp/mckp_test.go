package mckp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// paperClasses reproduces the runtime/cost table of the paper's
// Table I (sparc_core: synthesis, placement, routing, STA at 1/2/4/8
// vCPUs).
func paperClasses() []Class {
	mk := func(name string, times [4]int, costs [4]float64) Class {
		cl := Class{Name: name}
		labels := [4]string{"1vCPU", "2vCPU", "4vCPU", "8vCPU"}
		for i := 0; i < 4; i++ {
			cl.Items = append(cl.Items, Item{Label: labels[i], TimeSec: times[i], Cost: costs[i]})
		}
		return cl
	}
	return []Class{
		mk("synthesis", [4]int{6100, 4342, 3449, 3352}, [4]float64{0.16, 0.15, 0.19, 0.37}),
		mk("placement", [4]int{1206, 905, 644, 519}, [4]float64{0.04, 0.04, 0.05, 0.08}),
		mk("routing", [4]int{10461, 5514, 2894, 1692}, [4]float64{0.32, 0.25, 0.21, 0.25}),
		mk("sta", [4]int{183, 119, 90, 82}, [4]float64{0.02, 0.01, 0.02, 0.05}),
	}
}

func TestPaperTableIConstraints(t *testing.T) {
	classes := paperClasses()
	// The paper's Table I rows: 10000s and 6000s feasible, 5645s
	// exactly achievable, 5000s NA.
	cases := []struct {
		deadline int
		feasible bool
	}{
		{10000, true},
		{6000, true},
		{5645, true},
		{5000, false},
	}
	var prevCost float64
	for _, c := range cases {
		sel, err := SolveMinCost(classes, c.deadline)
		if err != nil {
			t.Fatal(err)
		}
		if sel.Feasible != c.feasible {
			t.Fatalf("deadline %d: feasible=%v, want %v", c.deadline, sel.Feasible, c.feasible)
		}
		if !sel.Feasible {
			continue
		}
		if sel.TotalTime > c.deadline {
			t.Fatalf("deadline %d: total time %d exceeds it", c.deadline, sel.TotalTime)
		}
		// Tighter deadlines can only cost more (paper's rising Min Cost column).
		if prevCost > 0 && sel.TotalCost < prevCost-1e-9 {
			t.Fatalf("deadline %d: cost %f dropped below looser deadline's %f",
				c.deadline, sel.TotalCost, prevCost)
		}
		prevCost = sel.TotalCost
	}
	// The minimum achievable time is 5645s in the paper's data.
	if got := MinTotalTime(classes); got != 3352+519+1692+82 {
		t.Fatalf("MinTotalTime = %d", got)
	}
}

func TestPaperObjectiveSolver(t *testing.T) {
	classes := paperClasses()
	sel, err := SolvePaper(classes, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if !sel.Feasible || sel.TotalTime > 10000 {
		t.Fatalf("paper solver: %+v", sel)
	}
	if sel.Objective <= 0 {
		t.Fatal("objective not reported")
	}
	// Objective must equal sum of reciprocal picked costs.
	var want float64
	for l, j := range sel.Pick {
		want += 1 / classes[l].Items[j].Cost
	}
	if math.Abs(want-sel.Objective) > 1e-9 {
		t.Fatalf("objective %f != recomputed %f", sel.Objective, want)
	}
}

func TestValidation(t *testing.T) {
	if _, err := SolveMinCost(nil, 10); err == nil {
		t.Fatal("empty classes accepted")
	}
	if _, err := SolveMinCost([]Class{{Name: "x"}}, 10); err == nil {
		t.Fatal("empty class accepted")
	}
	bad := []Class{{Name: "x", Items: []Item{{TimeSec: -1, Cost: 1}}}}
	if _, err := SolveMinCost(bad, 10); err == nil {
		t.Fatal("negative time accepted")
	}
	ok := []Class{{Name: "x", Items: []Item{{TimeSec: 1, Cost: 1}}}}
	if _, err := SolveMinCost(ok, -1); err == nil {
		t.Fatal("negative deadline accepted")
	}
	if _, err := SolvePaper(nil, 10); err == nil {
		t.Fatal("paper solver skipped validation")
	}
	if _, err := SolveGreedy(nil, 10); err == nil {
		t.Fatal("greedy skipped validation")
	}
}

// bruteForce enumerates all selections to find the true min cost.
func bruteForce(classes []Class, deadline int) Selection {
	best := Selection{Feasible: false}
	var rec func(l, t int, cost float64, pick []int)
	rec = func(l, t int, cost float64, pick []int) {
		if t > deadline {
			return
		}
		if l == len(classes) {
			if !best.Feasible || cost < best.TotalCost {
				best = Selection{
					Feasible: true, Pick: append([]int(nil), pick...),
					TotalTime: t, TotalCost: cost,
				}
			}
			return
		}
		for j, it := range classes[l].Items {
			rec(l+1, t+it.TimeSec, cost+it.Cost, append(pick, j))
		}
	}
	rec(0, 0, 0, nil)
	return best
}

// Property: the DP matches brute force on random instances.
func TestQuickDPOptimal(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nClasses := rng.Intn(3) + 2
		classes := make([]Class, nClasses)
		for l := range classes {
			n := rng.Intn(3) + 1
			for j := 0; j < n; j++ {
				classes[l].Items = append(classes[l].Items, Item{
					TimeSec: rng.Intn(40),
					Cost:    float64(rng.Intn(100)) / 10,
				})
			}
		}
		deadline := rng.Intn(120)
		got, err := SolveMinCost(classes, deadline)
		if err != nil {
			return false
		}
		want := bruteForce(classes, deadline)
		if got.Feasible != want.Feasible {
			return false
		}
		if !got.Feasible {
			return true
		}
		return math.Abs(got.TotalCost-want.TotalCost) < 1e-9 && got.TotalTime <= deadline
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// Property: greedy is never cheaper than the optimal DP.
func TestQuickGreedyNeverBeatsDP(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		classes := make([]Class, 3)
		for l := range classes {
			for j := 0; j < 4; j++ {
				classes[l].Items = append(classes[l].Items, Item{
					TimeSec: 10 + rng.Intn(100),
					Cost:    0.5 + float64(rng.Intn(50))/10,
				})
			}
		}
		deadline := 60 + rng.Intn(250)
		dp, err1 := SolveMinCost(classes, deadline)
		gr, err2 := SolveGreedy(classes, deadline)
		if err1 != nil || err2 != nil {
			return false
		}
		if !dp.Feasible {
			// If the optimal DP finds nothing, greedy must not either.
			return !gr.Feasible
		}
		if !gr.Feasible {
			return true // greedy may fail where DP succeeds
		}
		return gr.TotalCost >= dp.TotalCost-1e-9 && gr.TotalTime <= deadline
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: the DP's min cost lower-bounds every feasible plan — the
// greedy heuristic's and any randomly sampled selection's.
func TestQuickDPLowerBoundsSampledPlans(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nClasses := rng.Intn(4) + 2
		classes := make([]Class, nClasses)
		for l := range classes {
			n := rng.Intn(4) + 1
			for j := 0; j < n; j++ {
				classes[l].Items = append(classes[l].Items, Item{
					TimeSec: rng.Intn(60),
					Cost:    float64(rng.Intn(200)) / 10,
				})
			}
		}
		deadline := rng.Intn(200)
		dp, err := SolveMinCost(classes, deadline)
		if err != nil {
			return false
		}
		gr, err := SolveGreedy(classes, deadline)
		if err != nil {
			return false
		}
		if gr.Feasible && dp.Feasible && gr.TotalCost < dp.TotalCost-1e-9 {
			return false // greedy beat the "optimal" DP
		}
		// Sample random selections; every feasible one must cost at
		// least the DP optimum, and if any is feasible the DP must be.
		for s := 0; s < 50; s++ {
			t, c := 0, 0.0
			for l := range classes {
				it := classes[l].Items[rng.Intn(len(classes[l].Items))]
				t += it.TimeSec
				c += it.Cost
			}
			if t > deadline {
				continue
			}
			if !dp.Feasible {
				return false // a feasible plan exists but the DP found none
			}
			if c < dp.TotalCost-1e-9 {
				return false // a sampled plan beat the DP
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestZeroDeadlineNonzeroTimes(t *testing.T) {
	classes := []Class{
		{Name: "a", Items: []Item{{TimeSec: 1, Cost: 1}}},
		{Name: "b", Items: []Item{{TimeSec: 0, Cost: 1}}},
	}
	for name, solve := range map[string]func([]Class, int) (Selection, error){
		"dp": SolveMinCost, "paper": SolvePaper, "greedy": SolveGreedy,
	} {
		sel, err := solve(classes, 0)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if sel.Feasible {
			t.Fatalf("%s: zero deadline with a mandatory 1s item reported feasible", name)
		}
	}
}

func TestEmptyClassAmongNonEmpty(t *testing.T) {
	classes := []Class{
		{Name: "full", Items: []Item{{TimeSec: 1, Cost: 1}}},
		{Name: "empty"},
	}
	for name, solve := range map[string]func([]Class, int) (Selection, error){
		"dp": SolveMinCost, "paper": SolvePaper, "greedy": SolveGreedy,
	} {
		if _, err := solve(classes, 10); err == nil {
			t.Fatalf("%s: empty class among non-empty ones accepted", name)
		}
	}
}

// TestSelectionExport: solved plans export as labeled picks in class
// order; infeasible and mismatched selections refuse to.
func TestSelectionExport(t *testing.T) {
	classes := paperClasses()
	sel, err := SolveMinCost(classes, 10000)
	if err != nil {
		t.Fatal(err)
	}
	picks, err := sel.Export(classes)
	if err != nil {
		t.Fatal(err)
	}
	if len(picks) != len(classes) {
		t.Fatalf("%d picks for %d classes", len(picks), len(classes))
	}
	var time int
	var cost float64
	for l, p := range picks {
		if p.Class != classes[l].Name {
			t.Fatalf("pick %d class %q, want %q", l, p.Class, classes[l].Name)
		}
		it := classes[l].Items[sel.Pick[l]]
		if p.Label != it.Label || p.TimeSec != it.TimeSec || p.Cost != it.Cost {
			t.Fatalf("pick %d = %+v, item %+v", l, p, it)
		}
		time += p.TimeSec
		cost += p.Cost
	}
	if time != sel.TotalTime || math.Abs(cost-sel.TotalCost) > 1e-9 {
		t.Fatalf("export totals %d/%f vs selection %d/%f", time, cost, sel.TotalTime, sel.TotalCost)
	}
	if _, err := (Selection{Feasible: false}).Export(classes); err == nil {
		t.Fatal("infeasible selection exported")
	}
	if _, err := (Selection{Feasible: true, Pick: []int{0}}).Export(classes); err == nil {
		t.Fatal("mismatched pick length exported")
	}
	if _, err := (Selection{Feasible: true, Pick: []int{9, 0, 0, 0}}).Export(classes); err == nil {
		t.Fatal("out-of-range pick exported")
	}
}

func TestFixedProvisionBaselines(t *testing.T) {
	classes := paperClasses()
	over, err := FixedProvision(classes, Fastest)
	if err != nil {
		t.Fatal(err)
	}
	under, err := FixedProvision(classes, Cheapest)
	if err != nil {
		t.Fatal(err)
	}
	// Over-provisioning is the fastest and most expensive extreme in
	// the paper's data; under-provisioning the slowest.
	if over.TotalTime >= under.TotalTime {
		t.Fatalf("over-provision time %d not below under-provision %d", over.TotalTime, under.TotalTime)
	}
	opt, err := SolveMinCost(classes, over.TotalTime+2000)
	if err != nil {
		t.Fatal(err)
	}
	if !opt.Feasible || opt.TotalCost > over.TotalCost {
		t.Fatalf("optimizer (%f) not cheaper than over-provisioning (%f)", opt.TotalCost, over.TotalCost)
	}
	bad := func(Class) int { return 99 }
	if _, err := FixedProvision(classes, bad); err == nil {
		t.Fatal("out-of-range provision accepted")
	}
}

func TestTightestFeasibleDeadlinePicksFastest(t *testing.T) {
	classes := paperClasses()
	minTime := MinTotalTime(classes)
	sel, err := SolveMinCost(classes, minTime)
	if err != nil {
		t.Fatal(err)
	}
	if !sel.Feasible || sel.TotalTime != minTime {
		t.Fatalf("tightest deadline: %+v", sel)
	}
	for l, j := range sel.Pick {
		if j != Fastest(classes[l]) {
			t.Fatalf("class %d: picked %d, not fastest", l, j)
		}
	}
	// One second tighter must be NA.
	na, err := SolveMinCost(classes, minTime-1)
	if err != nil {
		t.Fatal(err)
	}
	if na.Feasible {
		t.Fatal("sub-minimum deadline reported feasible")
	}
}

func TestZeroDeadlineZeroTimes(t *testing.T) {
	classes := []Class{
		{Name: "a", Items: []Item{{TimeSec: 0, Cost: 2}, {TimeSec: 0, Cost: 1}}},
	}
	sel, err := SolveMinCost(classes, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !sel.Feasible || sel.TotalCost != 1 {
		t.Fatalf("zero-time selection: %+v", sel)
	}
}
