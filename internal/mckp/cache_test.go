package mckp

import "testing"

func TestCacheAdjust(t *testing.T) {
	classes := []Class{
		{Name: "synthesis", Items: []Item{{Label: "gp.1x", TimeSec: 40, Cost: 2}, {Label: "gp.8x", TimeSec: 10, Cost: 5}}},
		{Name: "placement", Items: []Item{{Label: "mem.2x", TimeSec: 30, Cost: 3}}},
	}
	adj := CacheAdjust(classes, []bool{true, false}, 1)
	for j, it := range adj[0].Items {
		if it.TimeSec != 1 || it.Cost != 0 {
			t.Fatalf("hit item %d not collapsed: %+v", j, it)
		}
		if it.Label != classes[0].Items[j].Label {
			t.Fatalf("hit item %d lost its label", j)
		}
	}
	if adj[1].Items[0] != classes[1].Items[0] {
		t.Fatal("miss class was rewritten")
	}
	// The input must never be mutated.
	if classes[0].Items[0].TimeSec != 40 {
		t.Fatal("CacheAdjust mutated its input")
	}
	// No hits (nil or all-false) must return the identical slice, so
	// the cache-blind path stays bit-identical.
	if got := CacheAdjust(classes, nil, 1); &got[0] != &classes[0] {
		t.Fatal("nil hits did not return the input unchanged")
	}
	if got := CacheAdjust(classes, []bool{false, false}, 1); &got[0] != &classes[0] {
		t.Fatal("all-miss hits did not return the input unchanged")
	}
	// A short hits vector treats the missing tail as misses.
	short := CacheAdjust(classes, []bool{true}, 1)
	if short[1].Items[0] != classes[1].Items[0] {
		t.Fatal("short hits vector rewrote the tail class")
	}
	// MinTotalTime must see the collapsed runtimes.
	if mt := MinTotalTime(adj); mt != 1+30 {
		t.Fatalf("MinTotalTime over adjusted classes = %d, want 31", mt)
	}
}
