package mckp

import "math"

// Frontier enumerates the time/cost Pareto frontier of a choice table
// from one dynamic program: every selection such that no other
// selection is both no slower and no more expensive. Points come back
// fastest-first with strictly increasing time and strictly decreasing
// cost, so a design-space explorer can price every deadline (every
// slack factor over the same recipe) from a single solve instead of
// one SolveMinCost per deadline.
func Frontier(classes []Class) ([]Selection, error) {
	if err := validate(classes, 0); err != nil {
		return nil, err
	}
	// The widest budget any undominated selection can need: the slowest
	// item per class. Beyond it cost cannot drop further.
	maxTotal := 0
	for _, cl := range classes {
		slowest := 0
		for _, it := range cl.Items {
			if it.TimeSec > slowest {
				slowest = it.TimeSec
			}
		}
		maxTotal += slowest
	}
	n := len(classes)
	width := maxTotal + 1
	negInf := math.Inf(-1)

	// One min-cost DP over the full budget axis, keeping every layer's
	// choice row for reconstruction (as in solveDP).
	cur := make([]float64, width)
	prev := make([]float64, width)
	choice := make([]int16, n*width)
	for l := 0; l < n; l++ {
		for c := 0; c < width; c++ {
			cur[c] = negInf
			choice[l*width+c] = -1
		}
		for j, it := range classes[l].Items {
			v := -it.Cost
			for c := it.TimeSec; c < width; c++ {
				base := prev[c-it.TimeSec]
				if math.IsInf(base, -1) {
					continue
				}
				if cand := base + v; cand > cur[c] {
					cur[c] = cand
					choice[l*width+c] = int16(j)
				}
			}
		}
		prev, cur = cur, prev
	}

	reconstruct := func(budget int) Selection {
		sel := Selection{Feasible: true, Pick: make([]int, n)}
		c := budget
		for l := n - 1; l >= 0; l-- {
			j := choice[l*width+c]
			if j < 0 {
				return Selection{Feasible: false}
			}
			sel.Pick[l] = int(j)
			it := classes[l].Items[j]
			sel.TotalTime += it.TimeSec
			sel.TotalCost += it.Cost
			c -= it.TimeSec
		}
		return sel
	}

	// Walk budgets fastest-first; every budget where the minimal cost
	// strictly improves contributes one knee of the frontier.
	var out []Selection
	bestCost := math.Inf(1)
	for c := 0; c < width; c++ {
		if math.IsInf(prev[c], -1) {
			continue
		}
		cost := -prev[c]
		if cost >= bestCost-1e-12 {
			continue
		}
		sel := reconstruct(c)
		if !sel.Feasible {
			continue
		}
		bestCost = cost
		out = append(out, sel)
	}
	return out, nil
}
