package mckp

import "math"

// This file folds preemption risk into the knapsack's currency. A spot
// item's nominal (TimeSec, Cost) describes one uninterrupted attempt;
// under a revocation hazard the stage actually pays for every truncated
// attempt and waits out every backoff before the attempt that survives.
// RiskAdjust rewrites each item to its expectation under a memoryless
// (exponential) revocation process — the same process the cloud
// package's RevocationModel draws from — so the per-job DP and the
// batch shadow-price loop price spot capacity at what it really costs:
// deadline-critical stages find on-demand cheaper in expectation, while
// slack-rich stages keep the discount.

// Hazards maps instance-type labels to revocation rates in events per
// hour of busy time — the mckp rendering of a RevocationModel's
// per-type hazards. Absent labels (and on-demand types) carry rate 0.
type Hazards map[string]float64

// maxExpectedAttempts caps the expectation blow-up for items whose
// runtime dwarfs the mean time between revocations (lambda*t large):
// past ~100 expected attempts the item is effectively unrunnable on
// spot and the exact magnitude no longer changes any decision.
const maxExpectedAttempts = 100

// ExpectedAttempts is the expected number of runs of a tSec stage until
// one finishes without a revocation, under an exponential hazard of
// ratePerHour: e^(lambda*t), capped at maxExpectedAttempts. Rate 0 (or
// a zero-length stage) is exactly 1.
func ExpectedAttempts(tSec, ratePerHour float64) float64 {
	if ratePerHour <= 0 || tSec <= 0 {
		return 1
	}
	a := math.Exp(ratePerHour / 3600 * tSec)
	if a > maxExpectedAttempts {
		return maxExpectedAttempts
	}
	return a
}

// ExpectedBusySec is the expected total machine-busy seconds to push a
// tSec stage through under the hazard — truncated attempts included:
// (e^(lambda*t) - 1) / lambda, which tends to t as the rate tends to 0.
func ExpectedBusySec(tSec, ratePerHour float64) float64 {
	a := ExpectedAttempts(tSec, ratePerHour)
	if a == 1 {
		return tSec
	}
	return (a - 1) / (ratePerHour / 3600)
}

// RiskAdjust rewrites a choice table to its revocation-adjusted
// expectation: each item whose label carries a hazard gets
//
//	TimeSec = ceil(E[busy] + (E[attempts]-1) * backoffSec)
//	Cost    = (Cost / TimeSec) * E[busy]
//
// i.e. the wall-clock the scheduler should budget (lost attempts plus
// retry backoffs) and the bill the truncated-lease ledger will actually
// charge. Items with rate 0 are returned bit-identical — a zero-hazard
// adjustment is a no-op, so on-demand-only problems solve exactly as
// before. The input is never mutated.
func RiskAdjust(classes []Class, hz Hazards, backoffSec float64) []Class {
	out := make([]Class, len(classes))
	for l, cl := range classes {
		out[l] = Class{Name: cl.Name, Items: make([]Item, len(cl.Items))}
		for j, it := range cl.Items {
			rate := hz[it.Label]
			if rate <= 0 || it.TimeSec <= 0 {
				out[l].Items[j] = it
				continue
			}
			t := float64(it.TimeSec)
			attempts := ExpectedAttempts(t, rate)
			busy := ExpectedBusySec(t, rate)
			adj := it
			adj.TimeSec = int(math.Ceil(busy + (attempts-1)*backoffSec))
			adj.Cost = it.Cost / t * busy
			out[l].Items[j] = adj
		}
	}
	return out
}
