package mckp

import (
	"math"
	"math/rand"
	"testing"
)

// randomBatch builds a seeded random batch: jobs with 1-3 stages of
// 1-4 items each, labels drawn from a random capacity profile. Jobs
// carry no deadlines so the cost ordering against the independent
// baseline is exact (with deadlines the batch may rightly pay more to
// meet one the baseline misses).
func randomBatch(rng *rand.Rand) ([]BatchJob, Capacity) {
	labels := []string{"gp.2x", "mem.4x", "cpu.8x"}[:rng.Intn(3)+1]
	capacity := Capacity{}
	for _, l := range labels {
		capacity[l] = rng.Intn(2) + 1
	}
	jobs := make([]BatchJob, rng.Intn(4)+2)
	for i := range jobs {
		job := BatchJob{Name: string(rune('a' + i))}
		for l := 0; l < rng.Intn(3)+1; l++ {
			cl := Class{Name: string(rune('A' + l))}
			for j := 0; j < rng.Intn(4)+1; j++ {
				cl.Items = append(cl.Items, Item{
					Label:   labels[rng.Intn(len(labels))],
					TimeSec: rng.Intn(50) + 1,
					Cost:    float64(rng.Intn(200)+1) / 10,
				})
			}
			job.Classes = append(job.Classes, cl)
		}
		jobs[i] = job
	}
	return jobs, capacity
}

// TestQuickBatchCostNeverExceedsIndependent is the batch optimizer's
// bounding property: over 50 seeded random job sets, the joint plan's
// predicted total cost never exceeds the sum of independently
// optimized plans executed on the same shared fleet — the independent
// solution is always a candidate, so co-optimization can only trade
// cost away when a deadline demands it (and these sets carry none).
func TestQuickBatchCostNeverExceedsIndependent(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		rng := rand.New(rand.NewSource(seed))
		jobs, capacity := randomBatch(rng)
		batch, err := BatchOptimize(jobs, capacity)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !batch.Feasible {
			t.Fatalf("seed %d: deadline-free batch infeasible", seed)
		}
		var independent float64
		picks := make([][]int, len(jobs))
		for i, job := range jobs {
			sel, err := SolveMinCost(job.Classes, effectiveDeadline(job))
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			if !sel.Feasible {
				t.Fatalf("seed %d: independent job %q infeasible", seed, job.Name)
			}
			independent += sel.TotalCost
			picks[i] = sel.Pick
		}
		if batch.TotalCost > independent+1e-9 {
			t.Fatalf("seed %d: batch cost %g exceeds independent sum %g",
				seed, batch.TotalCost, independent)
		}
		// The batch estimate must be internally consistent: re-running
		// the estimator over the batch's own picks reproduces it.
		batchPicks := make([][]int, len(jobs))
		for i := range batch.Jobs {
			batchPicks[i] = batch.Jobs[i].Pick
		}
		ests, span, _, _ := batchEstimate(jobs, batchPicks, capacity, nil)
		if span != batch.MakespanSec {
			t.Fatalf("seed %d: re-estimated makespan %d vs %d", seed, span, batch.MakespanSec)
		}
		for i, est := range ests {
			got := batch.Estimates[i]
			if est.StartSec != got.StartSec || est.FinishSec != got.FinishSec || est.WaitSec != got.WaitSec {
				t.Fatalf("seed %d job %d: estimate %+v vs %+v", seed, i, est, got)
			}
		}
	}
}

// TestBatchSpreadsContendedDeadlines: two identical jobs whose
// independent optima both pick the lone cheap machine must be pulled
// apart by the co-optimizer — one pays for the second label and both
// meet deadlines the independent plans blow.
func TestBatchSpreadsContendedDeadlines(t *testing.T) {
	mk := func(name string) BatchJob {
		return BatchJob{
			Name:        name,
			DeadlineSec: 15,
			Classes: []Class{{Name: "stage", Items: []Item{
				{Label: "a", TimeSec: 10, Cost: 1.0},
				{Label: "b", TimeSec: 10, Cost: 1.2},
			}}},
		}
	}
	jobs := []BatchJob{mk("j0"), mk("j1")}
	capacity := Capacity{"a": 1, "b": 1}
	batch, err := BatchOptimize(jobs, capacity)
	if err != nil {
		t.Fatal(err)
	}
	if !batch.Feasible {
		t.Fatal("infeasible")
	}
	if batch.MissedDeadlines != 0 {
		t.Fatalf("co-optimized batch still misses %d deadlines: %+v",
			batch.MissedDeadlines, batch.Estimates)
	}
	if batch.MakespanSec != 10 {
		t.Fatalf("makespan %d, want 10 (jobs in parallel on a and b)", batch.MakespanSec)
	}
	if math.Abs(batch.TotalCost-2.2) > 1e-9 {
		t.Fatalf("batch cost %g, want 2.2 (one job pays for label b)", batch.TotalCost)
	}
	// The independent plans both pick "a": serialized, job 1 finishes at
	// 20 and misses its 15 s deadline — the gap the batch closes.
	indep := [][]int{{0}, {0}}
	ests, span, _, _ := batchEstimate(jobs, indep, capacity, nil)
	if span != 20 || ests[1].FinishSec != 20 || ests[1].WaitSec != 10 {
		t.Fatalf("independent estimate: span=%d ests=%+v", span, ests)
	}
}

// TestBatchRoundRobinRepair: when uniform shadow prices cannot
// separate identical jobs, the greedy round-robin re-planner must —
// three identical jobs, two machines, deadlines that force exactly
// one job onto the expensive fast item.
func TestBatchRoundRobinRepair(t *testing.T) {
	mk := func(name string) BatchJob {
		return BatchJob{
			Name:        name,
			DeadlineSec: 25,
			Classes: []Class{{Name: "stage", Items: []Item{
				{Label: "slow", TimeSec: 10, Cost: 1.0},
				{Label: "fast", TimeSec: 5, Cost: 5.0},
			}}},
		}
	}
	jobs := []BatchJob{mk("j0"), mk("j1"), mk("j2")}
	capacity := Capacity{"slow": 1, "fast": 1}
	batch, err := BatchOptimize(jobs, capacity)
	if err != nil {
		t.Fatal(err)
	}
	if batch.MissedDeadlines != 0 {
		t.Fatalf("batch misses %d deadlines (method %s): %+v",
			batch.MissedDeadlines, batch.Method, batch.Estimates)
	}
	// All three on "slow" would finish at 30 > 25; at least one job must
	// have moved to "fast".
	fast := 0
	for _, sel := range batch.Jobs {
		if jobs[0].Classes[0].Items[sel.Pick[0]].Label == "fast" {
			fast++
		}
	}
	if fast == 0 {
		t.Fatalf("no job moved to the fast label: %+v", batch.Jobs)
	}
}

// TestBatchValidation: bad inputs error, a job infeasible alone makes
// the batch infeasible, and per-job deadlines are honored in the DP.
func TestBatchValidation(t *testing.T) {
	good := BatchJob{Name: "g", Classes: []Class{{Name: "s", Items: []Item{{Label: "a", TimeSec: 5, Cost: 1}}}}}
	if _, err := BatchOptimize(nil, Capacity{"a": 1}); err == nil {
		t.Fatal("empty batch accepted")
	}
	if _, err := BatchOptimize([]BatchJob{good}, nil); err == nil {
		t.Fatal("empty capacity accepted")
	}
	if _, err := BatchOptimize([]BatchJob{good}, Capacity{"a": 0}); err == nil {
		t.Fatal("zero capacity accepted")
	}
	if _, err := BatchOptimize([]BatchJob{good}, Capacity{"b": 1}); err == nil {
		t.Fatal("item label outside capacity accepted")
	}
	empty := BatchJob{Name: "e", Classes: []Class{{Name: "s"}}}
	if _, err := BatchOptimize([]BatchJob{empty}, Capacity{"a": 1}); err == nil {
		t.Fatal("empty class accepted")
	}
	negative := good
	negative.DeadlineSec = -1
	if _, err := BatchOptimize([]BatchJob{negative}, Capacity{"a": 1}); err == nil {
		t.Fatal("negative deadline accepted")
	}
	// A job that cannot meet its own deadline even alone: infeasible.
	tight := good
	tight.DeadlineSec = 3
	batch, err := BatchOptimize([]BatchJob{tight}, Capacity{"a": 1})
	if err != nil {
		t.Fatal(err)
	}
	if batch.Feasible {
		t.Fatal("unmeetable per-job deadline reported feasible")
	}
}

// TestBatchExport: the batch export mirrors Selection.Export,
// including the empty-choice-table refusal.
func TestBatchExport(t *testing.T) {
	jobs := []BatchJob{
		{Name: "j0", Classes: []Class{{Name: "s", Items: []Item{
			{Label: "a", TimeSec: 5, Cost: 1},
			{Label: "b", TimeSec: 3, Cost: 2},
		}}}},
		{Name: "j1", Classes: []Class{{Name: "s", Items: []Item{
			{Label: "b", TimeSec: 4, Cost: 1.5},
		}}}},
	}
	capacity := Capacity{"a": 1, "b": 1}
	batch, err := BatchOptimize(jobs, capacity)
	if err != nil {
		t.Fatal(err)
	}
	picks, err := batch.Export(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if len(picks) != 2 || len(picks[0]) != 1 || picks[1][0].Label != "b" {
		t.Fatalf("export = %+v", picks)
	}
	if _, err := (BatchSelection{Feasible: false}).Export(jobs); err == nil {
		t.Fatal("infeasible batch exported")
	}
	if _, err := batch.Export(jobs[:1]); err == nil {
		t.Fatal("job-count mismatch exported")
	}
	// The empty-table refusal (the Selection.Export fix) surfaces
	// through the batch export too.
	hollow := batch
	hollow.Jobs = []Selection{{Feasible: true}, {Feasible: true}}
	bare := []BatchJob{{Name: "j0"}, {Name: "j1"}}
	if _, err := hollow.Export(bare); err == nil {
		t.Fatal("empty choice tables exported a zero-stage plan")
	}
}

// TestSelectionExportEmptyClasses pins the Export fix: a selection
// over an empty class list (or a class with no items) must refuse to
// export rather than emit a zero-stage plan.
func TestSelectionExportEmptyClasses(t *testing.T) {
	if _, err := (Selection{Feasible: true}).Export(nil); err == nil {
		t.Fatal("empty choice table exported a zero-stage plan")
	}
	classes := []Class{{Name: "hollow"}}
	if _, err := (Selection{Feasible: true, Pick: []int{0}}).Export(classes); err == nil {
		t.Fatal("itemless class exported")
	}
}

// TestBatchStateZeroValueMatchesBatchOptimize pins the warm-start
// API's compatibility contract: BatchOptimizeState with a zero state
// reproduces BatchOptimize exactly — same picks, totals, estimates,
// method, rounds — over 25 seeded random batches, at several worker
// counts.
func TestBatchStateZeroValueMatchesBatchOptimize(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		jobs, capacity := randomBatch(rng)
		want, err := BatchOptimize(jobs, capacity)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, workers := range []int{1, 2, 8} {
			got, err := BatchOptimizeState(jobs, capacity, BatchState{Workers: workers})
			if err != nil {
				t.Fatalf("seed %d workers %d: %v", seed, workers, err)
			}
			if got.TotalCost != want.TotalCost || got.MakespanSec != want.MakespanSec ||
				got.Method != want.Method || got.Rounds != want.Rounds ||
				got.MissedDeadlines != want.MissedDeadlines {
				t.Fatalf("seed %d workers %d: got %+v, want %+v", seed, workers, got, want)
			}
			for i := range want.Jobs {
				for l, j := range want.Jobs[i].Pick {
					if got.Jobs[i].Pick[l] != j {
						t.Fatalf("seed %d workers %d: job %d pick diverges", seed, workers, i)
					}
				}
			}
		}
	}
}

// TestBatchReadySecShiftsSchedule pins the ReadySec semantics: a job
// ready at T starts no earlier than T, its estimate reports absolute
// times, and its DP budget is the residue deadline-ready (a deadline
// leaving less busy time than the fastest plan is infeasible).
func TestBatchReadySecShiftsSchedule(t *testing.T) {
	classes := []Class{{Name: "syn", Items: []Item{
		{Label: "gp", TimeSec: 100, Cost: 1},
		{Label: "gp", TimeSec: 50, Cost: 5},
	}}}
	capacity := Capacity{"gp": 1}

	sel, err := BatchOptimize([]BatchJob{
		{Name: "late", Classes: classes, ReadySec: 200, DeadlineSec: 320},
	}, capacity)
	if err != nil {
		t.Fatal(err)
	}
	if !sel.Feasible || sel.MissedDeadlines != 0 {
		t.Fatalf("selection = %+v", sel)
	}
	est := sel.Estimates[0]
	if est.StartSec != 200 || est.FinishSec != 300 {
		t.Fatalf("estimate = %+v, want start 200 finish 300", est)
	}
	// Budget 320-200=120 admits the 100s item; 140 would admit only it
	// too, but 130-... shrink the deadline so only the 50s item fits.
	sel, err = BatchOptimize([]BatchJob{
		{Name: "tight", Classes: classes, ReadySec: 200, DeadlineSec: 260},
	}, capacity)
	if err != nil {
		t.Fatal(err)
	}
	if !sel.Feasible {
		t.Fatal("tight job should remain feasible via the faster item")
	}
	if got := sel.Jobs[0].Pick[0]; got != 1 {
		t.Fatalf("tight job picked item %d, want the 50s upgrade (1)", got)
	}
	// A deadline already blown by the ready time is infeasible.
	sel, err = BatchOptimize([]BatchJob{
		{Name: "doomed", Classes: classes, ReadySec: 200, DeadlineSec: 210},
	}, capacity)
	if err != nil {
		t.Fatal(err)
	}
	if sel.Feasible {
		t.Fatal("doomed job should be infeasible")
	}
}

// TestBatchFreeAtSeedsCommittedCapacity pins the FreeAtSec seeding: a
// machine committed until T delays work queued on it, exactly like a
// lease the estimator cannot see otherwise.
func TestBatchFreeAtSeedsCommittedCapacity(t *testing.T) {
	classes := []Class{{Name: "syn", Items: []Item{{Label: "gp", TimeSec: 60, Cost: 1}}}}
	jobs := []BatchJob{{Name: "a", Classes: classes}}
	sel, err := BatchOptimizeState(jobs, Capacity{"gp": 2},
		BatchState{FreeAtSec: map[string][]int{"gp": {500, 90}}})
	if err != nil {
		t.Fatal(err)
	}
	// Earliest-free: machine 1 frees at 90, machine 0 at 500.
	if est := sel.Estimates[0]; est.StartSec != 90 || est.FinishSec != 150 {
		t.Fatalf("estimate = %+v, want start 90 finish 150", est)
	}
	// Extra seed entries beyond capacity are ignored; missing mean free.
	sel, err = BatchOptimizeState(jobs, Capacity{"gp": 2},
		BatchState{FreeAtSec: map[string][]int{"gp": {500, 90, 1}}})
	if err != nil {
		t.Fatal(err)
	}
	if est := sel.Estimates[0]; est.StartSec != 90 {
		t.Fatalf("estimate = %+v, want start 90", est)
	}
}

// TestBatchWarmPricesCarry pins the warm-start loop: FinalPrices is
// always populated, and feeding it back with a one-round budget keeps
// the solution at least as good as the cold independent baseline (the
// independent candidate stays in the running).
func TestBatchWarmPricesCarry(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed + 100))
		jobs, capacity := randomBatch(rng)
		cold, err := BatchOptimize(jobs, capacity)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if cold.FinalPrices == nil {
			t.Fatalf("seed %d: FinalPrices nil", seed)
		}
		warm, err := BatchOptimizeState(jobs, capacity,
			BatchState{Prices: cold.FinalPrices, Rounds: 1})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !warm.Feasible {
			t.Fatalf("seed %d: warm re-solve infeasible", seed)
		}
		// Deadline-free: the independent candidate bounds both.
		if warm.TotalCost > cold.TotalCost+1e-9 {
			t.Fatalf("seed %d: warm cost %g exceeds cold %g", seed, warm.TotalCost, cold.TotalCost)
		}
	}
}
