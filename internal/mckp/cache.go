package mckp

// CacheAdjust rewrites a choice table for predicted artifact-cache
// hits: every item of a hit class collapses to the cache-probe cost —
// probeSec runtime, zero dollars — because a cached stage is served
// from the store no matter which machine the plan would have bought
// for it. Collapsing all items (rather than dropping the class) keeps
// the table's shape, so selections solved against the adjusted table
// index directly into the original classes. The input is never
// mutated; hits may be shorter than classes (missing tail = miss), and
// a nil hits slice returns the input unchanged (no-hit tables must
// stay bit-identical to the cache-blind path).
func CacheAdjust(classes []Class, hits []bool, probeSec int) []Class {
	if probeSec < 0 {
		probeSec = 0
	}
	any := false
	for l := range classes {
		if l < len(hits) && hits[l] {
			any = true
			break
		}
	}
	if !any {
		return classes
	}
	out := make([]Class, len(classes))
	for l, cl := range classes {
		if l >= len(hits) || !hits[l] {
			out[l] = cl
			continue
		}
		adj := Class{Name: cl.Name, Items: make([]Item, len(cl.Items))}
		for j, it := range cl.Items {
			adj.Items[j] = Item{Label: it.Label, TimeSec: probeSec, Cost: 0}
		}
		out[l] = adj
	}
	return out
}
