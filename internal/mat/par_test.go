package mat

import (
	"math/rand"
	"testing"

	"edacloud/internal/par"
)

func randSparseDense(rng *rand.Rand, rows, cols int) *Dense {
	m := New(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
		if rng.Intn(16) == 0 {
			m.Data[i] = 0 // exercise the zero-skip paths
		}
	}
	return m
}

func sameDense(t *testing.T, name string, got, want *Dense) {
	t.Helper()
	if got.Rows != want.Rows || got.Cols != want.Cols {
		t.Fatalf("%s: shape %dx%d, want %dx%d", name, got.Rows, got.Cols, want.Rows, want.Cols)
	}
	for i, v := range want.Data {
		if got.Data[i] != v {
			t.Fatalf("%s: element %d = %x, want %x (not bit-identical)", name, i, got.Data[i], v)
		}
	}
}

// TestPooledKernelsBitIdentical: the parallel matmul kernels must be
// bit-identical to the single-worker path — large enough shapes to
// cross the parallel threshold — at 1, 2 and 8 workers.
func TestPooledKernelsBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := randSparseDense(rng, 257, 96)
	b := randSparseDense(rng, 96, 131)
	c := randSparseDense(rng, 257, 96) // same shape as a for ATB
	d := randSparseDense(rng, 513, 96) // tall operand for ABT
	serial := par.Fixed(1)

	wantMul := MulPool(serial, a, b, nil)
	wantATB := MulATBPool(serial, a, c, nil)
	wantABT := MulABTPool(serial, a, d, nil)

	for _, w := range []int{2, 8} {
		p := par.Fixed(w)
		sameDense(t, "Mul", MulPool(p, a, b, nil), wantMul)
		sameDense(t, "MulATB", MulATBPool(p, a, c, nil), wantATB)
		sameDense(t, "MulABT", MulABTPool(p, a, d, nil), wantABT)
	}
}

// TestPooledKernelsMatchNaive: the kernels must agree with a direct
// triple-loop reference within floating-point reassociation error —
// and Mul/ABT exactly, since they never reassociate.
func TestPooledKernelsMatchNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := randSparseDense(rng, 64, 48)
	b := randSparseDense(rng, 48, 33)
	naive := New(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Cols; j++ {
			var s float64
			for k := 0; k < a.Cols; k++ {
				s += a.At(i, k) * b.At(k, j)
			}
			naive.Set(i, j, s)
		}
	}
	got := MulPool(par.Fixed(8), a, b, nil)
	for i := range naive.Data {
		diff := got.Data[i] - naive.Data[i]
		if diff < -1e-9 || diff > 1e-9 {
			t.Fatalf("element %d: %g vs naive %g", i, got.Data[i], naive.Data[i])
		}
	}
}
