package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewAndAccessors(t *testing.T) {
	m := New(2, 3)
	m.Set(1, 2, 5)
	if m.At(1, 2) != 5 || m.At(0, 0) != 0 {
		t.Fatal("Set/At broken")
	}
	if len(m.Row(1)) != 3 || m.Row(1)[2] != 5 {
		t.Fatal("Row broken")
	}
	c := m.Clone()
	c.Set(0, 0, 9)
	if m.At(0, 0) != 0 {
		t.Fatal("Clone shares storage")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("negative dims accepted")
		}
	}()
	New(-1, 2)
}

func TestFromRowsValidation(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	if m.At(1, 0) != 3 {
		t.Fatal("FromRows wrong")
	}
	if FromRows(nil).Rows != 0 {
		t.Fatal("empty FromRows wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("ragged rows accepted")
		}
	}()
	FromRows([][]float64{{1}, {2, 3}})
}

func TestMulKnownProduct(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	c := Mul(a, b, nil)
	want := [][]float64{{19, 22}, {43, 50}}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if c.At(i, j) != want[i][j] {
				t.Fatalf("c[%d][%d] = %g", i, j, c.At(i, j))
			}
		}
	}
}

func TestMulShapePanics(t *testing.T) {
	a := New(2, 3)
	b := New(2, 3)
	for _, fn := range []func(){
		func() { Mul(a, b, nil) },               // 3 != 2
		func() { Mul(a, New(3, 2), New(1, 1)) }, // bad out shape
		func() { AddInPlace(a, New(3, 2)) },
		func() { MulElem(a, New(3, 2)) },
		func() { MulATB(a, New(3, 3), nil) },
		func() { MulABT(a, New(3, 4), nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("shape mismatch not caught")
				}
			}()
			fn()
		}()
	}
}

func randDense(rng *rand.Rand, r, c int) *Dense {
	m := New(r, c)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

func transposeNaive(a *Dense) *Dense {
	out := New(a.Cols, a.Rows)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < a.Cols; j++ {
			out.Set(j, i, a.At(i, j))
		}
	}
	return out
}

// Property: MulATB(a,b) == Mul(aᵀ, b) and MulABT(a,b) == Mul(a, bᵀ).
func TestQuickTransposedProducts(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, k, n := rng.Intn(6)+1, rng.Intn(6)+1, rng.Intn(6)+1
		a := randDense(rng, m, k)
		b := randDense(rng, m, n)
		atb := MulATB(a, b, nil)
		ref := Mul(transposeNaive(a), b, nil)
		for i := range atb.Data {
			if math.Abs(atb.Data[i]-ref.Data[i]) > 1e-9 {
				return false
			}
		}
		c := randDense(rng, k, n)
		d := randDense(rng, m, n)
		abt := MulABT(d, c, nil) // d: m x n, c: k x n -> m x k
		ref2 := Mul(d, transposeNaive(c), nil)
		for i := range abt.Data {
			if math.Abs(abt.Data[i]-ref2.Data[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestReLUAndMask(t *testing.T) {
	m := FromRows([][]float64{{-1, 2}, {0, -3}})
	mask := ReLU(m)
	if m.At(0, 0) != 0 || m.At(0, 1) != 2 || m.At(1, 1) != 0 {
		t.Fatalf("ReLU result: %+v", m.Data)
	}
	if mask.At(0, 1) != 1 || mask.At(0, 0) != 0 {
		t.Fatalf("mask: %+v", mask.Data)
	}
}

func TestSumRowsAndScale(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	s := SumRows(m)
	if s.At(0, 0) != 9 || s.At(0, 1) != 12 {
		t.Fatalf("SumRows: %+v", s.Data)
	}
	s.Scale(0.5)
	if s.At(0, 0) != 4.5 {
		t.Fatal("Scale broken")
	}
	if math.Abs(m.Frob()-math.Sqrt(1+4+9+16+25+36)) > 1e-12 {
		t.Fatal("Frob broken")
	}
}

func TestGlorotBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := New(10, 20)
	m.Glorot(rng)
	limit := math.Sqrt(6.0 / 30.0)
	nonZero := 0
	for _, v := range m.Data {
		if math.Abs(v) > limit {
			t.Fatalf("weight %g outside Glorot bound %g", v, limit)
		}
		if v != 0 {
			nonZero++
		}
	}
	if nonZero < len(m.Data)/2 {
		t.Fatal("Glorot left most weights zero")
	}
}

func TestZero(t *testing.T) {
	m := FromRows([][]float64{{1, 2}})
	m.Zero()
	if m.At(0, 0) != 0 || m.At(0, 1) != 0 {
		t.Fatal("Zero broken")
	}
}
