// Package mat provides the dense float64 matrix kernels underlying the
// GCN runtime predictor: row-major storage, cache-blocked
// multiplication, transposed-operand products for backpropagation, and
// elementwise helpers.
package mat

import (
	"fmt"
	"math"
	"math/rand"

	"edacloud/internal/par"
)

// Dense is a row-major matrix. The zero value is not usable; construct
// with New or FromRows.
type Dense struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols
}

// New returns a zeroed Rows x Cols matrix.
func New(rows, cols int) *Dense {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("mat: negative dimensions %dx%d", rows, cols))
	}
	return &Dense{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromRows copies a slice of equal-length rows into a Dense.
func FromRows(rows [][]float64) *Dense {
	if len(rows) == 0 {
		return New(0, 0)
	}
	m := New(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.Cols {
			panic(fmt.Sprintf("mat: ragged row %d (%d vs %d)", i, len(r), m.Cols))
		}
		copy(m.Row(i), r)
	}
	return m
}

// At returns element (i, j).
func (m *Dense) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Dense) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns row i as a shared slice.
func (m *Dense) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy.
func (m *Dense) Clone() *Dense {
	c := New(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// Zero clears the matrix in place.
func (m *Dense) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Glorot fills the matrix with Xavier/Glorot-uniform random weights.
func (m *Dense) Glorot(rng *rand.Rand) {
	limit := math.Sqrt(6 / float64(m.Rows+m.Cols))
	for i := range m.Data {
		m.Data[i] = (rng.Float64()*2 - 1) * limit
	}
}

// parFlops is the kernel work (multiply-add count) below which the
// parallel paths are not worth their scheduling overhead.
const parFlops = 1 << 15

// rowGrain sizes row chunks so each holds roughly parFlops work.
func rowGrain(rows, flopsPerRow int) int {
	if flopsPerRow < 1 {
		flopsPerRow = 1
	}
	g := parFlops / flopsPerRow
	if g < 1 {
		g = 1
	}
	if g > rows {
		g = rows
	}
	return g
}

// Mul computes out = a * b, allocating out when nil is passed.
func Mul(a, b, out *Dense) *Dense { return MulPool(par.Default(), a, b, out) }

// MulPool is Mul on an explicit worker pool. Rows of out are
// partitioned across workers; each row's accumulation order matches
// the serial kernel exactly, so the result is bit-identical for any
// pool size.
func MulPool(p *par.Pool, a, b, out *Dense) *Dense {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("mat: Mul shape mismatch %dx%d * %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out = prep(out, a.Rows, b.Cols)
	flopsPerRow := a.Cols * b.Cols
	if p.Workers() > 1 && a.Rows*flopsPerRow >= parFlops {
		p.For(a.Rows, rowGrain(a.Rows, flopsPerRow), func(lo, hi int) {
			mulRows(a, b, out, lo, hi)
		})
	} else {
		mulRows(a, b, out, 0, a.Rows)
	}
	return out
}

// mulRows computes rows [lo, hi) of out = a * b in ikj order: streams
// b rows, accumulates into out rows.
func mulRows(a, b, out *Dense, lo, hi int) {
	for i := lo; i < hi; i++ {
		oRow := out.Row(i)
		aRow := a.Row(i)
		for k := 0; k < a.Cols; k++ {
			aik := aRow[k]
			if aik == 0 {
				continue
			}
			bRow := b.Row(k)
			for j := range oRow {
				oRow[j] += aik * bRow[j]
			}
		}
	}
}

// MulATB computes out = aᵀ * b (for weight gradients).
func MulATB(a, b, out *Dense) *Dense { return MulATBPool(par.Default(), a, b, out) }

// MulATBPool is MulATB on an explicit worker pool, partitioned over
// rows of out (columns of a). Each (i, j) accumulates over a's rows
// in ascending order exactly as the serial kernel does, so results
// are bit-identical for any pool size.
func MulATBPool(p *par.Pool, a, b, out *Dense) *Dense {
	if a.Rows != b.Rows {
		panic(fmt.Sprintf("mat: MulATB shape mismatch %dx%d, %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out = prep(out, a.Cols, b.Cols)
	flopsPerRow := a.Rows * b.Cols
	if p.Workers() > 1 && a.Cols*flopsPerRow >= parFlops {
		p.For(a.Cols, rowGrain(a.Cols, flopsPerRow), func(lo, hi int) {
			mulATBRows(a, b, out, lo, hi)
		})
	} else {
		mulATBRows(a, b, out, 0, a.Cols)
	}
	return out
}

// mulATBRows computes rows [lo, hi) of out = aᵀ * b: out row i gathers
// column i of a against the rows of b, ascending over a's rows.
func mulATBRows(a, b, out *Dense, lo, hi int) {
	for i := lo; i < hi; i++ {
		oRow := out.Row(i)
		for r := 0; r < a.Rows; r++ {
			av := a.Data[r*a.Cols+i]
			if av == 0 {
				continue
			}
			bRow := b.Row(r)
			for j, bv := range bRow {
				oRow[j] += av * bv
			}
		}
	}
}

// MulABT computes out = a * bᵀ (for input gradients).
func MulABT(a, b, out *Dense) *Dense { return MulABTPool(par.Default(), a, b, out) }

// MulABTPool is MulABT on an explicit worker pool, partitioned over
// rows of out (rows of a); dot products keep their serial order, so
// results are bit-identical for any pool size.
func MulABTPool(p *par.Pool, a, b, out *Dense) *Dense {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("mat: MulABT shape mismatch %dx%d, %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out = prep(out, a.Rows, b.Rows)
	flopsPerRow := a.Cols * b.Rows
	if p.Workers() > 1 && a.Rows*flopsPerRow >= parFlops {
		p.For(a.Rows, rowGrain(a.Rows, flopsPerRow), func(lo, hi int) {
			mulABTRows(a, b, out, lo, hi)
		})
	} else {
		mulABTRows(a, b, out, 0, a.Rows)
	}
	return out
}

// mulABTRows computes rows [lo, hi) of out = a * bᵀ.
func mulABTRows(a, b, out *Dense, lo, hi int) {
	for i := lo; i < hi; i++ {
		aRow := a.Row(i)
		oRow := out.Row(i)
		for j := 0; j < b.Rows; j++ {
			bRow := b.Row(j)
			var acc float64
			for k, av := range aRow {
				acc += av * bRow[k]
			}
			oRow[j] = acc
		}
	}
}

func prep(out *Dense, rows, cols int) *Dense {
	if out == nil {
		return New(rows, cols)
	}
	if out.Rows != rows || out.Cols != cols {
		panic(fmt.Sprintf("mat: output shape %dx%d, want %dx%d", out.Rows, out.Cols, rows, cols))
	}
	out.Zero()
	return out
}

// AddInPlace computes a += b.
func AddInPlace(a, b *Dense) {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic("mat: AddInPlace shape mismatch")
	}
	for i, v := range b.Data {
		a.Data[i] += v
	}
}

// Scale multiplies every element by s in place.
func (m *Dense) Scale(s float64) {
	for i := range m.Data {
		m.Data[i] *= s
	}
}

// ReLU applies max(0, x) in place and returns a mask matrix with 1
// where the activation passed through (for backprop).
func ReLU(m *Dense) *Dense {
	mask := New(m.Rows, m.Cols)
	for i, v := range m.Data {
		if v > 0 {
			mask.Data[i] = 1
		} else {
			m.Data[i] = 0
		}
	}
	return mask
}

// MulElem computes a *= b elementwise (used with ReLU masks).
func MulElem(a, b *Dense) {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic("mat: MulElem shape mismatch")
	}
	for i, v := range b.Data {
		a.Data[i] *= v
	}
}

// SumRows returns the column-wise sum as a 1 x Cols matrix
// (sum-pooling over graph nodes).
func SumRows(m *Dense) *Dense {
	out := New(1, m.Cols)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			out.Data[j] += v
		}
	}
	return out
}

// Frob returns the Frobenius norm.
func (m *Dense) Frob() float64 {
	var s float64
	for _, v := range m.Data {
		s += v * v
	}
	return math.Sqrt(s)
}
