package perf

// Cache is a set-associative cache with true-LRU replacement, simulated
// at line granularity. It is deliberately simple — no prefetching, no
// write-allocate distinction — because the paper's characterization
// relies on miss-rate differences between algorithms, which first-order
// capacity and conflict behaviour already exposes.
type Cache struct {
	lineShift uint
	setMask   uint64
	ways      int
	// tags[set*ways+way]; lru[set*ways+way] holds recency ranks where
	// 0 is most recent.
	tags  []uint64
	valid []bool
	lru   []uint8

	accesses uint64
	misses   uint64
}

// NewCache builds a cache of (at most) sizeBytes with the given
// associativity and line size. The set count is rounded down to the
// nearest power of two so that indexing stays a mask; VM LLC slices
// (2 MiB x vCPUs for 1..8 vCPUs) therefore map to the closest
// realizable geometry. NewCache panics on non-positive geometry, a
// non-power-of-two line size, or fewer than ways*lineBytes bytes.
func NewCache(sizeBytes, ways, lineBytes int) *Cache {
	if sizeBytes <= 0 || ways <= 0 || lineBytes <= 0 {
		panic("perf: non-positive cache geometry")
	}
	if ways > 255 {
		panic("perf: associativity too large")
	}
	sets := sizeBytes / lineBytes / ways
	if sets == 0 {
		panic("perf: cache smaller than one set")
	}
	for sets&(sets-1) != 0 {
		sets &= sets - 1 // drop lowest set bit until a power of two remains
	}
	lines := sets * ways
	var shift uint
	for 1<<shift < lineBytes {
		shift++
	}
	if 1<<shift != lineBytes {
		panic("perf: line size must be a power of two")
	}
	c := &Cache{
		lineShift: shift,
		setMask:   uint64(sets - 1),
		ways:      ways,
		tags:      make([]uint64, lines),
		valid:     make([]bool, lines),
		lru:       make([]uint8, lines),
	}
	return c
}

// Access simulates a reference to addr and reports whether it hit.
func (c *Cache) Access(addr uint64) bool {
	c.accesses++
	line := addr >> c.lineShift
	set := int(line & c.setMask)
	base := set * c.ways

	hitWay := -1
	for w := 0; w < c.ways; w++ {
		if c.valid[base+w] && c.tags[base+w] == line {
			hitWay = w
			break
		}
	}
	if hitWay >= 0 {
		c.touchHit(base, hitWay)
		return true
	}
	c.misses++
	// Choose the LRU victim (highest rank) or an invalid way.
	victim := 0
	var worst uint8
	for w := 0; w < c.ways; w++ {
		if !c.valid[base+w] {
			victim = w
			break
		}
		if c.lru[base+w] >= worst {
			worst = c.lru[base+w]
			victim = w
		}
	}
	c.tags[base+victim] = line
	c.valid[base+victim] = true
	c.touchInsert(base, victim)
	return false
}

// touchHit promotes a resident way to most-recently-used: every way
// that was more recent slides back one rank.
func (c *Cache) touchHit(base, way int) {
	old := c.lru[base+way]
	for w := 0; w < c.ways; w++ {
		if c.lru[base+w] < old {
			c.lru[base+w]++
		}
	}
	c.lru[base+way] = 0
}

// touchInsert installs a new line as most-recently-used: all other ways
// age by one rank (saturating), which keeps ranks a permutation once
// the set fills.
func (c *Cache) touchInsert(base, way int) {
	maxRank := uint8(c.ways - 1)
	for w := 0; w < c.ways; w++ {
		if w != way && c.lru[base+w] < maxRank {
			c.lru[base+w]++
		}
	}
	c.lru[base+way] = 0
}

// Stats returns accesses and misses since construction.
func (c *Cache) Stats() (accesses, misses uint64) { return c.accesses, c.misses }

// MissRate returns the miss ratio in [0,1], or 0 before any access.
func (c *Cache) MissRate() float64 {
	if c.accesses == 0 {
		return 0
	}
	return float64(c.misses) / float64(c.accesses)
}

// Reset clears contents and statistics.
func (c *Cache) Reset() {
	for i := range c.valid {
		c.valid[i] = false
		c.lru[i] = 0
		c.tags[i] = 0
	}
	c.accesses = 0
	c.misses = 0
}
