package perf

import "math"

// Machine is a cycle-level model of one VM configuration. It converts
// the event counts of a profiled Phase into virtual runtime, applying:
//
//   - a base IPC for retired instructions,
//   - AVX lane compression for vectorizable FP work (when the VM's
//     underlying processor exposes AVX),
//   - stall penalties for branch mispredictions, L1 misses (serviced by
//     the LLC) and LLC misses (serviced by DRAM),
//   - Amdahl scaling of the parallel fraction over min(vCPUs, chunks)
//     with a per-core synchronization tax,
//   - memory-bandwidth contention that inflates DRAM latency as more
//     vCPUs issue misses concurrently, and
//   - a multi-tenancy interference factor from the cgroup scheduler.
type Machine struct {
	ClockGHz float64
	BaseIPC  float64

	BranchPenalty  float64 // cycles per mispredicted branch
	L1MissPenalty  float64 // cycles to reach the LLC
	LLCMissPenalty float64 // cycles to reach DRAM

	VCPUs    int
	AVX      bool
	AVXLanes int // FP lanes when AVX is available (4 for 256-bit doubles)

	// SyncTax is the fractional overhead added per extra active core in
	// parallel sections (thread wakeup, work stealing, barriers).
	SyncTax float64
	// BWContention inflates the DRAM penalty per extra active vCPU.
	BWContention float64
	// PrefetchEff is the fraction of sequential-sweep (LLCPrefetched)
	// miss latency hidden by hardware stride prefetchers.
	PrefetchEff float64
	// Interference is the fractional slowdown from co-tenants sharing
	// the host (0 = idle host), produced by the cloud scheduler model.
	Interference float64
	// WorkScale linearly scales the resulting runtime; characterization
	// uses it to extrapolate a reduced-size simulation to full design
	// size. 0 means 1.
	WorkScale float64
}

// Xeon14 returns the machine model of the paper's characterization
// host — a 3.3 GHz Xeon E5-2680-class core — restricted to the given
// vCPU count, with AVX available.
func Xeon14(vcpus int) Machine {
	return Machine{
		ClockGHz:       3.3,
		BaseIPC:        2.0,
		BranchPenalty:  14,
		L1MissPenalty:  12,
		LLCMissPenalty: 180,
		VCPUs:          vcpus,
		AVX:            true,
		AVXLanes:       4,
		SyncTax:        0.04,
		BWContention:   0.06,
		PrefetchEff:    0.75,
	}
}

// WithoutAVX returns the model with AVX disabled (general-purpose
// instances backed by older processors in the instance catalog).
func (m Machine) WithoutAVX() Machine {
	m.AVX = false
	return m
}

// WithInterference returns the model with the given co-tenant slowdown.
func (m Machine) WithInterference(f float64) Machine {
	m.Interference = f
	return m
}

// PhaseCycles returns the virtual cycle cost of one phase on this
// machine, after parallel scaling.
func (m Machine) PhaseCycles(p Phase) float64 {
	c := &p.C

	instrs := float64(c.Instrs)
	if m.AVX && m.AVXLanes > 1 {
		// Vector FP retires in packed groups of AVXLanes.
		instrs -= float64(c.FPVector) * (1 - 1/float64(m.AVXLanes))
	}
	compute := instrs / m.BaseIPC

	vcpus := m.VCPUs
	if vcpus < 1 {
		vcpus = 1
	}
	active := vcpus
	if p.Chunks < active {
		active = p.Chunks
	}
	if active < 1 {
		active = 1
	}

	effectiveLLCMisses := float64(c.LLCMisses) - m.PrefetchEff*float64(c.LLCPrefetched)
	if effectiveLLCMisses < 0 {
		effectiveLLCMisses = 0
	}
	stalls := float64(c.BranchMisses)*m.BranchPenalty +
		float64(c.L1Misses)*m.L1MissPenalty +
		effectiveLLCMisses*m.LLCMissPenalty

	total := compute + stalls
	serial := total * (1 - p.ParallelFraction)
	parallel := total * p.ParallelFraction
	if active > 1 {
		// Concurrent execution pays a synchronization tax and shares
		// memory bandwidth; both grow with active cores but stay well
		// below the 1/active gain for realistic core counts.
		parallel = parallel / float64(active) *
			(1 + m.SyncTax*float64(active-1)) *
			(1 + m.BWContention*float64(active-1))
	}
	return serial + parallel
}

// PhaseSeconds converts PhaseCycles to wall-clock seconds including
// tenancy interference and work scaling.
func (m Machine) PhaseSeconds(p Phase) float64 {
	scale := m.WorkScale
	if scale == 0 {
		scale = 1
	}
	secs := m.PhaseCycles(p) / (m.ClockGHz * 1e9)
	return secs * (1 + m.Interference) * scale
}

// Seconds returns the virtual runtime of a full report on this machine.
func (m Machine) Seconds(r *Report) float64 {
	var t float64
	for _, p := range r.Phases {
		t += m.PhaseSeconds(p)
	}
	return t
}

// Speedup returns the runtime ratio between this machine at 1 vCPU and
// at its configured vCPU count for the given report.
func (m Machine) Speedup(r *Report) float64 {
	one := m
	one.VCPUs = 1
	base := one.Seconds(r)
	now := m.Seconds(r)
	if now <= 0 {
		return math.Inf(1)
	}
	return base / now
}
