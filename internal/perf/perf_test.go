package perf

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCacheGeometryValidation(t *testing.T) {
	bad := [][3]int{
		{0, 8, 64},         // zero size
		{1024, 0, 64},      // zero ways
		{1024, 8, 0},       // zero line
		{64, 8, 64},        // smaller than one set
		{1024, 8, 48},      // line not power of two
		{1 << 20, 300, 64}, // too associative
	}
	// Non-power-of-two set counts are legal and round down:
	// 96 lines / 2 ways = 48 sets -> 32 sets -> 64 lines.
	c := NewCache(96*64, 2, 64)
	if len(c.tags) != 64 {
		t.Fatalf("rounded geometry has %d lines, want 64", len(c.tags))
	}
	for i, g := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: NewCache(%v) did not panic", i, g)
				}
			}()
			NewCache(g[0], g[1], g[2])
		}()
	}
}

func TestCacheHitsAfterFill(t *testing.T) {
	c := NewCache(1024, 2, 64) // 16 lines, 8 sets
	if c.Access(0) {
		t.Fatal("cold access hit")
	}
	if !c.Access(0) {
		t.Fatal("warm access missed")
	}
	if !c.Access(32) { // same line
		t.Fatal("same-line access missed")
	}
	acc, miss := c.Stats()
	if acc != 3 || miss != 1 {
		t.Fatalf("stats = %d/%d", acc, miss)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := NewCache(2*64*4, 2, 64) // 2 ways, 4 sets
	// Three lines mapping to set 0: line numbers 0, 4, 8 (addr 0, 256, 512).
	c.Access(0)
	c.Access(256)
	c.Access(0)   // 0 is now MRU, 256 LRU
	c.Access(512) // evicts 256
	if !c.Access(0) {
		t.Fatal("MRU line evicted")
	}
	if c.Access(256) {
		t.Fatal("LRU line not evicted")
	}
}

func TestCacheCapacityMissRate(t *testing.T) {
	// Working set double the cache: repeated sweeps must keep missing
	// with LRU (thrash). Working set within the cache: second sweep hits.
	small := NewCache(4096, 4, 64) // 64 lines
	for pass := 0; pass < 4; pass++ {
		for a := uint64(0); a < 4096; a += 64 {
			small.Access(a)
		}
	}
	if r := small.MissRate(); r > 0.3 {
		t.Fatalf("fitting working set missed %.0f%%", r*100)
	}
	thrash := NewCache(4096, 4, 64)
	for pass := 0; pass < 4; pass++ {
		for a := uint64(0); a < 8192; a += 64 {
			thrash.Access(a)
		}
	}
	if r := thrash.MissRate(); r < 0.9 {
		t.Fatalf("thrashing working set only missed %.0f%%", r*100)
	}
}

func TestCacheReset(t *testing.T) {
	c := NewCache(1024, 2, 64)
	c.Access(0)
	c.Reset()
	if acc, miss := c.Stats(); acc != 0 || miss != 0 {
		t.Fatal("stats not cleared")
	}
	if c.Access(0) {
		t.Fatal("contents survived reset")
	}
	if c.MissRate() != 1 {
		t.Fatalf("miss rate after one miss = %g", c.MissRate())
	}
}

func TestBranchPredictorLearnsLoop(t *testing.T) {
	bp := NewBranchPredictor(10)
	// A loop back-edge: always taken. Must converge to ~0 misses.
	for i := 0; i < 1000; i++ {
		bp.Record(0x40, true)
	}
	if r := bp.MissRate(); r > 0.01 {
		t.Fatalf("always-taken branch missed %.1f%%", r*100)
	}
}

func TestBranchPredictorRandomBranch(t *testing.T) {
	bp := NewBranchPredictor(10)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 20000; i++ {
		bp.Record(0x80, rng.Intn(2) == 0)
	}
	r := bp.MissRate()
	if r < 0.35 || r > 0.65 {
		t.Fatalf("random branch miss rate %.2f, want ~0.5", r)
	}
}

func TestBranchPredictorPattern(t *testing.T) {
	// Alternating T/N is captured by global history.
	bp := NewBranchPredictor(12)
	for i := 0; i < 4000; i++ {
		bp.Record(0x99, i%2 == 0)
	}
	if r := bp.MissRate(); r > 0.05 {
		t.Fatalf("alternating pattern missed %.1f%%", r*100)
	}
	bp.Reset()
	if b, m := bp.Stats(); b != 0 || m != 0 {
		t.Fatal("reset did not clear stats")
	}
}

func TestBranchPredictorSizeValidation(t *testing.T) {
	for _, bits := range []uint{0, 25} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("bits=%d did not panic", bits)
				}
			}()
			NewBranchPredictor(bits)
		}()
	}
}

func TestNilProbeIsNoop(t *testing.T) {
	var p *Probe
	p.Load(0)
	p.Store(0)
	p.LoadRange(0, 10, 8)
	p.Branch(0, true)
	p.FPScalar(5)
	p.FPVector(5)
	p.Ops(5)
	if c := p.Counters(); c.Instrs != 0 {
		t.Fatal("nil probe counted events")
	}
	ph := p.TakePhase("x", 0.5, 4)
	if ph.Name != "x" || ph.C.Instrs != 0 {
		t.Fatal("nil probe TakePhase wrong")
	}
}

func TestProbeCounting(t *testing.T) {
	p := NewProbe(DefaultProbeConfig())
	p.Load(0)
	p.Load(0)
	p.Store(64)
	p.Branch(1, true)
	p.FPScalar(3)
	p.FPVector(8)
	p.Ops(2)
	c := p.Counters()
	if c.Loads != 2 || c.Stores != 1 || c.Branches != 1 {
		t.Fatalf("counts: %+v", c)
	}
	if c.Instrs != 2+1+1+3+8+2 {
		t.Fatalf("instrs = %d", c.Instrs)
	}
	if c.FPScalar != 3 || c.FPVector != 8 {
		t.Fatalf("fp = %d/%d", c.FPScalar, c.FPVector)
	}
	if c.L1Hits+c.L1Misses != c.Loads+c.Stores {
		t.Fatalf("L1 accounting broken: %+v", c)
	}
}

func TestProbeNegativeArgsIgnored(t *testing.T) {
	p := NewProbe(DefaultProbeConfig())
	p.FPScalar(-1)
	p.FPVector(0)
	p.Ops(-5)
	p.LoadRange(0, -3, 8)
	if c := p.Counters(); c.Instrs != 0 {
		t.Fatalf("negative args counted: %+v", c)
	}
}

func TestLoadRangeMatchesScalarLoads(t *testing.T) {
	a := NewProbe(DefaultProbeConfig())
	b := NewProbe(DefaultProbeConfig())
	const n = 1000
	a.LoadRange(1<<20, n, 8)
	for i := 0; i < n; i++ {
		b.Load(1<<20 + uint64(i*8))
	}
	ca, cb := a.Counters(), b.Counters()
	if ca.Loads != cb.Loads || ca.L1Misses != cb.L1Misses || ca.LLCMisses != cb.LLCMisses {
		t.Fatalf("range %+v vs scalar %+v", ca, cb)
	}
}

func TestTakePhaseDeltas(t *testing.T) {
	p := NewProbe(DefaultProbeConfig())
	p.Ops(100)
	ph1 := p.TakePhase("a", 0.5, 8)
	p.Ops(50)
	ph2 := p.TakePhase("b", 2.0, 0) // clamped
	if ph1.C.Instrs != 100 || ph2.C.Instrs != 50 {
		t.Fatalf("deltas: %d, %d", ph1.C.Instrs, ph2.C.Instrs)
	}
	if ph2.ParallelFraction != 1 || ph2.Chunks != 1 {
		t.Fatalf("clamping failed: %+v", ph2)
	}
	var r Report
	r.AddPhase(ph1)
	r.AddPhase(ph2)
	if tot := r.Total(); tot.Instrs != 150 {
		t.Fatalf("report total = %d", tot.Instrs)
	}
}

func TestTakePhaseMeasured(t *testing.T) {
	p := NewProbe(DefaultProbeConfig())
	p.Ops(100)
	ph := p.TakePhaseMeasured("a", 75, 6)
	if ph.C.Instrs != 100 || ph.ParallelFraction != 0.75 || ph.Chunks != 6 {
		t.Fatalf("measured phase: %+v", ph)
	}
	// Claimed parallel work beyond the recorded delta is clamped.
	p.Ops(10)
	if ph := p.TakePhaseMeasured("b", 1e6, 2); ph.ParallelFraction != 1 {
		t.Fatalf("overclaim not clamped: %+v", ph)
	}
	// An empty phase has fraction 0, not NaN.
	if ph := p.TakePhaseMeasured("c", 0, 1); ph.ParallelFraction != 0 {
		t.Fatalf("empty phase fraction: %+v", ph)
	}
	// Nil probes stay no-ops.
	var nilp *Probe
	if ph := nilp.TakePhaseMeasured("d", 5, 3); ph.C.Instrs != 0 || ph.Chunks != 3 {
		t.Fatalf("nil probe phase: %+v", ph)
	}
}

func TestCounterRates(t *testing.T) {
	c := Counters{Branches: 200, BranchMisses: 3, L1Misses: 100, LLCMisses: 40, Instrs: 1000, FPVector: 250}
	if got := c.BranchMissPct(); math.Abs(got-1.5) > 1e-9 {
		t.Fatalf("branch miss %% = %g", got)
	}
	if got := c.CacheMissPct(); math.Abs(got-40) > 1e-9 {
		t.Fatalf("cache miss %% = %g", got)
	}
	if got := c.FPVectorPct(); math.Abs(got-25) > 1e-9 {
		t.Fatalf("fp %% = %g", got)
	}
	var zero Counters
	if zero.BranchMissPct() != 0 || zero.CacheMissPct() != 0 || zero.FPVectorPct() != 0 {
		t.Fatal("zero counters should give zero rates")
	}
	if zero.String() == "" || c.String() == "" {
		t.Fatal("empty String()")
	}
}

func TestMachineMoreVCPUsNeverSlower(t *testing.T) {
	ph := Phase{
		C:                Counters{Instrs: 1e9, Branches: 1e8, BranchMisses: 2e6, L1Misses: 5e7, LLCMisses: 1e7},
		ParallelFraction: 0.9,
		Chunks:           64,
	}
	prev := math.Inf(1)
	for _, v := range []int{1, 2, 4, 8} {
		m := Xeon14(v)
		s := m.PhaseSeconds(ph)
		if s <= 0 {
			t.Fatalf("non-positive runtime at %d vCPU", v)
		}
		if s > prev {
			t.Fatalf("runtime increased from %g to %g at %d vCPUs", prev, s, v)
		}
		prev = s
	}
}

func TestMachineSerialJobDoesNotScale(t *testing.T) {
	ph := Phase{C: Counters{Instrs: 1e9}, ParallelFraction: 0, Chunks: 1}
	s1 := Xeon14(1).PhaseSeconds(ph)
	s8 := Xeon14(8).PhaseSeconds(ph)
	if math.Abs(s1-s8)/s1 > 1e-9 {
		t.Fatalf("serial phase scaled: %g vs %g", s1, s8)
	}
}

func TestMachineChunkLimitCapsSpeedup(t *testing.T) {
	ph := Phase{C: Counters{Instrs: 1e9}, ParallelFraction: 1, Chunks: 2}
	s2 := Xeon14(2).PhaseSeconds(ph)
	s8 := Xeon14(8).PhaseSeconds(ph)
	if math.Abs(s2-s8)/s2 > 1e-9 {
		t.Fatalf("speedup beyond chunk count: %g vs %g", s2, s8)
	}
}

func TestMachineAVXHelpsFPWork(t *testing.T) {
	ph := Phase{C: Counters{Instrs: 1e9, FPVector: 8e8}, ParallelFraction: 0, Chunks: 1}
	withAVX := Xeon14(1).PhaseSeconds(ph)
	without := Xeon14(1).WithoutAVX().PhaseSeconds(ph)
	if withAVX >= without {
		t.Fatalf("AVX did not help: %g vs %g", withAVX, without)
	}
	// An integer-only phase must not care.
	intPh := Phase{C: Counters{Instrs: 1e9}, ParallelFraction: 0, Chunks: 1}
	if a, b := Xeon14(1).PhaseSeconds(intPh), Xeon14(1).WithoutAVX().PhaseSeconds(intPh); a != b {
		t.Fatalf("AVX changed integer phase: %g vs %g", a, b)
	}
}

func TestMachineInterferenceAndWorkScale(t *testing.T) {
	ph := Phase{C: Counters{Instrs: 1e9}, ParallelFraction: 0, Chunks: 1}
	base := Xeon14(1).PhaseSeconds(ph)
	slow := Xeon14(1).WithInterference(0.5).PhaseSeconds(ph)
	if math.Abs(slow-1.5*base)/base > 1e-9 {
		t.Fatalf("interference: %g vs %g", slow, 1.5*base)
	}
	m := Xeon14(1)
	m.WorkScale = 10
	if got := m.PhaseSeconds(ph); math.Abs(got-10*base)/base > 1e-9 {
		t.Fatalf("work scale: %g vs %g", got, 10*base)
	}
}

func TestMachineSpeedupAndSeconds(t *testing.T) {
	r := &Report{Job: "test"}
	r.AddPhase(Phase{C: Counters{Instrs: 1e9}, ParallelFraction: 0.95, Chunks: 1024})
	m := Xeon14(8)
	sp := m.Speedup(r)
	if sp < 3 || sp > 8 {
		t.Fatalf("8-vCPU speedup of 95%%-parallel job = %.2f, want 3..8 (Amdahl)", sp)
	}
	if Xeon14(1).Speedup(r) != 1 {
		t.Fatal("1-vCPU speedup != 1")
	}
}

// Property: machine runtime is monotone in every stall counter.
func TestQuickMachineMonotoneInStalls(t *testing.T) {
	m := Xeon14(4)
	f := func(brMiss, l1Miss, llcMiss uint32) bool {
		base := Phase{C: Counters{Instrs: 1e8}, ParallelFraction: 0.5, Chunks: 8}
		more := base
		more.C.BranchMisses = uint64(brMiss)
		more.C.L1Misses = uint64(l1Miss)
		more.C.LLCMisses = uint64(llcMiss)
		return m.PhaseSeconds(more) >= m.PhaseSeconds(base)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: larger LLC never increases the LLC miss count for the same
// access stream (inclusive capacity behaviour under LRU with identical
// set geometry scaling).
func TestLargerLLCFewerMisses(t *testing.T) {
	run := func(llcKB int) uint64 {
		cfg := DefaultProbeConfig()
		cfg.LLCBytes = llcKB << 10
		p := NewProbe(cfg)
		rng := rand.New(rand.NewSource(7))
		for i := 0; i < 200000; i++ {
			p.Load(uint64(rng.Intn(8 << 20)))
		}
		return p.Counters().LLCMisses
	}
	small := run(512)
	big := run(4096)
	if big >= small {
		t.Fatalf("bigger LLC missed more: %d vs %d", big, small)
	}
}

func TestWithLLCSlices(t *testing.T) {
	base := DefaultProbeConfig()
	if got := base.WithLLCSlices(4).LLCBytes; got != 4*base.LLCBytes {
		t.Fatalf("4 slices -> %d bytes", got)
	}
	if got := base.WithLLCSlices(0).LLCBytes; got != base.LLCBytes {
		t.Fatalf("0 slices should clamp to 1: %d", got)
	}
}

func TestLoadHotBoundedWindow(t *testing.T) {
	cfg := DefaultProbeConfig()
	cfg.LLCBytes = 64 << 10
	p := NewProbe(cfg)
	p.HotBytes = 4 << 10 // window far below L1
	// A huge index range must wrap into the window: after warmup,
	// everything hits.
	for i := uint64(0); i < 100000; i++ {
		p.LoadHot(0, i*7919)
	}
	c := p.Counters()
	missRate := float64(c.L1Misses) / float64(c.Loads)
	if missRate > 0.05 {
		t.Fatalf("hot window missed %.1f%% of loads", missRate*100)
	}
	// Distinct regions must not alias.
	q := NewProbe(cfg)
	q.HotBytes = 4 << 10
	q.LoadHot(0, 1)
	q.LoadHot(1, 1)
	q.LoadHot(2, 1)
	if q.Counters().L1Misses != 3 {
		t.Fatalf("distinct regions aliased: %+v", q.Counters())
	}
}

func TestLoadColdAlwaysMisses(t *testing.T) {
	p := NewProbe(DefaultProbeConfig())
	p.LoadCold(1000)
	c := p.Counters()
	if c.L1Misses != 1000 || c.LLCMisses != 1000 || c.Loads != 1000 {
		t.Fatalf("cold accounting wrong: %+v", c)
	}
	// Cold loads must not pollute the caches: a hot load after a cold
	// burst still behaves normally.
	p.Load(64)
	p.Load(64)
	c2 := p.Counters()
	if c2.L1Hits != 1 {
		t.Fatalf("cache polluted by cold stream: %+v", c2)
	}
}

func TestLoopBranchesPerfectlyPredicted(t *testing.T) {
	p := NewProbe(DefaultProbeConfig())
	p.LoopBranches(5000)
	c := p.Counters()
	if c.Branches != 5000 || c.BranchMisses != 0 {
		t.Fatalf("loop branches mispredicted: %+v", c)
	}
	if c.Instrs != 5000 {
		t.Fatalf("loop branches not counted as instructions: %d", c.Instrs)
	}
}

func TestPrefetchedMissesDiscounted(t *testing.T) {
	// Two phases with equal miss counts: one streaming (prefetchable),
	// one random (not). The streaming phase must cost fewer cycles.
	stream := Phase{C: Counters{Instrs: 1000, L1Misses: 1000, LLCMisses: 1000, LLCPrefetched: 1000}, Chunks: 1}
	random := Phase{C: Counters{Instrs: 1000, L1Misses: 1000, LLCMisses: 1000}, Chunks: 1}
	m := Xeon14(1)
	if cs, cr := m.PhaseCycles(stream), m.PhaseCycles(random); cs >= cr {
		t.Fatalf("prefetch discount missing: stream %g >= random %g", cs, cr)
	}
	// With prefetching disabled both cost the same.
	m.PrefetchEff = 0
	if cs, cr := m.PhaseCycles(stream), m.PhaseCycles(random); cs != cr {
		t.Fatalf("PrefetchEff=0 still discounted: %g vs %g", cs, cr)
	}
}
