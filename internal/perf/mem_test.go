package perf

import (
	"testing"
	"time"
)

// TestMemWatermarkSeesAllocation: a large allocation inside the watched
// region must raise the peak delta by roughly its size.
func TestMemWatermarkSeesAllocation(t *testing.T) {
	const size = 64 << 20
	wm := NewMemWatermark()
	buf := make([]byte, size)
	for i := 0; i < len(buf); i += 4096 {
		buf[i] = 1
	}
	wm.Sample()
	if buf[4096] != 1 {
		t.Fatal("unexpected buffer contents") // keep buf live past Sample
	}
	if d := wm.PeakDeltaBytes(); d < size/2 {
		t.Fatalf("peak delta %d after allocating %d bytes", d, size)
	}
	if wm.PeakBytes() < wm.PeakDeltaBytes() {
		t.Fatal("peak below delta")
	}
}

// TestMemWatermarkWatchStops: the sampler goroutine honors stop, stop
// is idempotent, and a final sample lands even for short regions.
func TestMemWatermarkWatchStops(t *testing.T) {
	wm := NewMemWatermark()
	stop := wm.Watch(time.Millisecond)
	buf := make([]byte, 32<<20)
	for i := 0; i < len(buf); i += 4096 {
		buf[i] = 1
	}
	stop()
	stop() // idempotent
	if buf[4096] != 1 {
		t.Fatal("unexpected buffer contents")
	}
	if wm.PeakDeltaBytes() < 16<<20 {
		t.Fatalf("watch missed the allocation: delta %d", wm.PeakDeltaBytes())
	}
}
