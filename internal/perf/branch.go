package perf

// BranchPredictor is a gshare predictor: a global history register XORed
// with the branch site hashes into a table of 2-bit saturating
// counters. Data-dependent branches (routing's design-rule checks,
// search-frontier comparisons) defeat it in proportion to their
// irregularity, which is exactly the effect behind the paper's Fig. 2a.
type BranchPredictor struct {
	table   []uint8 // 2-bit counters, 0..3; >=2 predicts taken
	mask    uint64
	history uint64

	branches uint64
	misses   uint64
}

// NewBranchPredictor builds a gshare predictor with 2^bits counters.
func NewBranchPredictor(bits uint) *BranchPredictor {
	if bits == 0 || bits > 24 {
		panic("perf: predictor size out of range")
	}
	size := 1 << bits
	bp := &BranchPredictor{
		table: make([]uint8, size),
		mask:  uint64(size - 1),
	}
	// Weakly taken initial state, the usual convention.
	for i := range bp.table {
		bp.table[i] = 2
	}
	return bp
}

// Record simulates one conditional branch at the given site identifier
// with the actual outcome, updating predictor state, and reports
// whether the prediction was correct.
func (bp *BranchPredictor) Record(site uint64, taken bool) bool {
	bp.branches++
	idx := (site ^ bp.history) & bp.mask
	predTaken := bp.table[idx] >= 2
	correct := predTaken == taken
	if !correct {
		bp.misses++
	}
	if taken {
		if bp.table[idx] < 3 {
			bp.table[idx]++
		}
	} else if bp.table[idx] > 0 {
		bp.table[idx]--
	}
	bp.history = (bp.history << 1) & bp.mask
	if taken {
		bp.history |= 1
	}
	return correct
}

// Stats returns branches and mispredictions since construction.
func (bp *BranchPredictor) Stats() (branches, misses uint64) { return bp.branches, bp.misses }

// MissRate returns the misprediction ratio in [0,1].
func (bp *BranchPredictor) MissRate() float64 {
	if bp.branches == 0 {
		return 0
	}
	return float64(bp.misses) / float64(bp.branches)
}

// Reset clears history, counters and statistics.
func (bp *BranchPredictor) Reset() {
	for i := range bp.table {
		bp.table[i] = 2
	}
	bp.history = 0
	bp.branches = 0
	bp.misses = 0
}
