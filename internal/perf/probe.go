package perf

// ProbeConfig sets the simulated memory hierarchy and predictor
// geometry for one profiled run. LLC capacity is the knob that varies
// with the VM configuration: cloud vCPUs carry a per-core slice of the
// last-level cache, which is how the paper explains placement's miss
// rate dropping from 45% at 1 vCPU to 34% at 8 vCPUs.
type ProbeConfig struct {
	L1Bytes       int
	L1Ways        int
	LLCBytes      int
	LLCWays       int
	LineBytes     int
	PredictorBits uint
}

// DefaultProbeConfig mirrors one Xeon-class core: 32 KiB 8-way L1,
// 2.5 MiB 16-way LLC slice, 64-byte lines, 12-bit gshare.
func DefaultProbeConfig() ProbeConfig {
	return ProbeConfig{
		L1Bytes:       32 << 10,
		L1Ways:        8,
		LLCBytes:      2560 << 10,
		LLCWays:       16,
		LineBytes:     64,
		PredictorBits: 12,
	}
}

// WithLLCSlices returns the config with the LLC scaled to n per-core
// slices, modelling the larger aggregate cache of a bigger VM.
func (pc ProbeConfig) WithLLCSlices(n int) ProbeConfig {
	if n < 1 {
		n = 1
	}
	pc.LLCBytes = pc.LLCBytes * n
	return pc
}

// Probe is the instrumentation sink the EDA engines report events to.
// A nil *Probe is valid and makes every method a no-op, so engines can
// run uninstrumented at full speed.
//
// Beyond raw addressed accesses (Load/Store/LoadRange), the probe
// offers two access idioms that model the architectural distinction
// the paper's Fig. 2b rests on:
//
//   - LoadHot/StoreHot reference a bounded per-region working window
//     (HotBytes), the pattern of synthesis's active-cone traffic and
//     STA's levelized sweeps — these are capacity-friendly and mostly
//     hit once warm;
//   - LoadCold references never-seen addresses (compulsory misses),
//     the pattern of the router's freshly allocated per-search state —
//     these miss every cache no matter its size, which is why routing's
//     miss rate does not improve with bigger VMs in the paper.
type Probe struct {
	l1  *Cache
	llc *Cache
	bp  *BranchPredictor

	// HotBytes bounds each hot region's footprint. Zero means 32 KiB.
	HotBytes uint64

	cfg      ProbeConfig
	coldNext uint64
	c        Counters
	mark     Counters // snapshot at the last phase boundary

	// shards are the per-worker child probes handed out to parallel
	// regions (see Shards). Each keeps its own cache and predictor
	// state, persisting across regions so per-worker working windows
	// stay warm the way real per-core caches do.
	shards  []*Probe
	drained Counters // portion of c already absorbed by a parent
}

// NewProbe builds a probe with the given geometry.
func NewProbe(cfg ProbeConfig) *Probe {
	return &Probe{
		l1:       NewCache(cfg.L1Bytes, cfg.L1Ways, cfg.LineBytes),
		llc:      NewCache(cfg.LLCBytes, cfg.LLCWays, cfg.LineBytes),
		bp:       NewBranchPredictor(cfg.PredictorBits),
		cfg:      cfg,
		coldNext: 1 << 40, // cold stream lives far from every region
	}
}

// Shards returns n per-worker child probes with the parent's geometry.
// Shards are created once and reused across parallel regions, so their
// cache and predictor state accumulates like a real worker's core
// state. The parent must not record events while its shards are in
// use; after the region, call MergeShards to fold the shard deltas
// back in. A nil probe returns nil shards (all nil-safe).
func (p *Probe) Shards(n int) []*Probe {
	if p == nil {
		return make([]*Probe, n)
	}
	for len(p.shards) < n {
		s := NewProbe(p.cfg)
		s.HotBytes = p.HotBytes
		p.shards = append(p.shards, s)
	}
	return p.shards[:n]
}

// MergeShards absorbs the events each shard recorded since its last
// merge into p's counters, in shard order — a deterministic reduction
// independent of which OS thread ran which shard.
func (p *Probe) MergeShards(shards []*Probe) {
	if p == nil {
		return
	}
	for _, s := range shards {
		if s == nil {
			continue
		}
		delta := sub(s.c, s.drained)
		p.c.Add(&delta)
		s.drained = s.c
	}
}

func (p *Probe) hotAddr(region int, idx uint64) uint64 {
	hot := p.HotBytes
	if hot == 0 {
		hot = 32 << 10
	}
	const regionStride = uint64(1) << 34
	return uint64(region+1)*regionStride + (idx*16)%hot
}

// LoadHot records a load within the bounded hot window of a region.
func (p *Probe) LoadHot(region int, idx uint64) {
	if p == nil {
		return
	}
	p.Load(p.hotAddr(region, idx))
}

// StoreHot records a store within the bounded hot window of a region.
func (p *Probe) StoreHot(region int, idx uint64) {
	if p == nil {
		return
	}
	p.Store(p.hotAddr(region, idx))
}

// LoadCold records n loads of never-before-seen lines: compulsory
// misses in both cache levels. The cache contents are not disturbed
// (streaming loads bypass with non-temporal semantics).
func (p *Probe) LoadCold(n int) {
	if p == nil || n <= 0 {
		return
	}
	p.c.Instrs += uint64(n)
	p.c.Loads += uint64(n)
	p.c.L1Misses += uint64(n)
	p.c.LLCMisses += uint64(n)
	p.coldNext += uint64(n) * 64
}

// LoopBranches records n perfectly predicted branches — the loop
// back-edges that dominate branch counts in numeric kernels. They
// update the counters but skip the predictor simulation.
func (p *Probe) LoopBranches(n int) {
	if p == nil || n <= 0 {
		return
	}
	p.c.Instrs += uint64(n)
	p.c.Branches += uint64(n)
}

func (p *Probe) access(addr uint64) {
	if p.l1.Access(addr) {
		return
	}
	p.c.L1Misses++
	if p.llc.Access(addr) {
		p.c.LLCHits++
	} else {
		p.c.LLCMisses++
	}
}

// Load records a data load from the synthetic address addr.
func (p *Probe) Load(addr uint64) {
	if p == nil {
		return
	}
	p.c.Instrs++
	p.c.Loads++
	if p.l1.Access(addr) {
		p.c.L1Hits++
		return
	}
	p.c.L1Misses++
	if p.llc.Access(addr) {
		p.c.LLCHits++
	} else {
		p.c.LLCMisses++
	}
}

// Store records a data store to the synthetic address addr.
func (p *Probe) Store(addr uint64) {
	if p == nil {
		return
	}
	p.c.Instrs++
	p.c.Stores++
	if p.l1.Access(addr) {
		p.c.L1Hits++
		return
	}
	p.c.L1Misses++
	if p.llc.Access(addr) {
		p.c.LLCHits++
	} else {
		p.c.LLCMisses++
	}
}

// LoadRange records a sequential sweep of n elements of elemSize bytes
// starting at addr, the access pattern of vector arithmetic. It is
// equivalent to n Load calls but simulates the cache once per touched
// line: consecutive elements on an already-referenced line are L1 hits
// by construction.
func (p *Probe) LoadRange(addr uint64, n, elemSize int) {
	if p == nil || n <= 0 {
		return
	}
	p.c.Instrs += uint64(n)
	p.c.Loads += uint64(n)
	lastLine := ^uint64(0)
	for i := 0; i < n; i++ {
		a := addr + uint64(i*elemSize)
		ln := a >> 6
		if ln == lastLine {
			p.c.L1Hits++
			continue
		}
		lastLine = ln
		if p.l1.Access(a) {
			p.c.L1Hits++
			continue
		}
		p.c.L1Misses++
		if p.llc.Access(a) {
			p.c.LLCHits++
		} else {
			p.c.LLCMisses++
			p.c.LLCPrefetched++
		}
	}
}

// Branch records a conditional branch at the given site with the actual
// outcome.
func (p *Probe) Branch(site uint64, taken bool) {
	if p == nil {
		return
	}
	p.c.Instrs++
	p.c.Branches++
	if !p.bp.Record(site, taken) {
		p.c.BranchMisses++
	}
}

// FPScalar records n scalar floating-point operations.
func (p *Probe) FPScalar(n int) {
	if p == nil || n <= 0 {
		return
	}
	p.c.Instrs += uint64(n)
	p.c.FPScalar += uint64(n)
}

// FPVector records n vectorizable (AVX-eligible) floating-point
// operations.
func (p *Probe) FPVector(n int) {
	if p == nil || n <= 0 {
		return
	}
	p.c.Instrs += uint64(n)
	p.c.FPVector += uint64(n)
}

// Ops records n generic integer/ALU instructions.
func (p *Probe) Ops(n int) {
	if p == nil || n <= 0 {
		return
	}
	p.c.Instrs += uint64(n)
}

// Counters returns the accumulated counts since construction.
func (p *Probe) Counters() Counters {
	if p == nil {
		return Counters{}
	}
	return p.c
}

// TakePhase returns a Phase holding the events recorded since the last
// TakePhase (or since construction) and advances the phase boundary.
func (p *Probe) TakePhase(name string, parallelFraction float64, chunks int) Phase {
	if p == nil {
		return Phase{Name: name, ParallelFraction: parallelFraction, Chunks: chunks}
	}
	delta := sub(p.c, p.mark)
	p.mark = p.c
	if chunks < 1 {
		chunks = 1
	}
	if parallelFraction < 0 {
		parallelFraction = 0
	}
	if parallelFraction > 1 {
		parallelFraction = 1
	}
	return Phase{Name: name, C: delta, ParallelFraction: parallelFraction, Chunks: chunks}
}

// TakePhaseMeasured is TakePhase with the parallel fraction *measured*
// instead of modeled: parallelInstrs is the number of instructions the
// caller recorded inside parallel regions (typically the delta of
// Counters().Instrs across a par.ForProbe region, whose shard counters
// are merged back before the region returns), and the fraction is its
// share of everything retired since the last phase boundary. Callers
// with genuinely parallel kernels use this so the machine model's
// Amdahl scaling rests on the code's real serial/parallel split —
// partition rebuilds and cut sweeps scale, merges and sweeps do not —
// rather than on a hand-tuned constant. parallelInstrs is clamped to
// the recorded delta, so a nil probe yields a zero-counter phase with
// fraction 0.
func (p *Probe) TakePhaseMeasured(name string, parallelInstrs uint64, chunks int) Phase {
	if p == nil {
		return p.TakePhase(name, 0, chunks)
	}
	total := p.c.Instrs - p.mark.Instrs
	if parallelInstrs > total {
		parallelInstrs = total
	}
	frac := 0.0
	if total > 0 {
		frac = float64(parallelInstrs) / float64(total)
	}
	return p.TakePhase(name, frac, chunks)
}

func sub(a, b Counters) Counters {
	return Counters{
		Instrs:        a.Instrs - b.Instrs,
		Branches:      a.Branches - b.Branches,
		BranchMisses:  a.BranchMisses - b.BranchMisses,
		Loads:         a.Loads - b.Loads,
		Stores:        a.Stores - b.Stores,
		L1Hits:        a.L1Hits - b.L1Hits,
		L1Misses:      a.L1Misses - b.L1Misses,
		LLCHits:       a.LLCHits - b.LLCHits,
		LLCMisses:     a.LLCMisses - b.LLCMisses,
		LLCPrefetched: a.LLCPrefetched - b.LLCPrefetched,
		FPScalar:      a.FPScalar - b.FPScalar,
		FPVector:      a.FPVector - b.FPVector,
	}
}
