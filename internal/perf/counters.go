// Package perf simulates hardware performance counters for the EDA
// engines. The paper characterized synthesis, placement, routing and
// STA with Linux perf on a 14-core Xeon E5-2680; this package replaces
// the physical counters with architectural simulators fed by the
// engines' actual memory-access and branch streams:
//
//   - a two-level set-associative LRU cache hierarchy (L1 + LLC),
//   - a gshare branch predictor with 2-bit saturating counters,
//   - scalar/vector (AVX) floating-point operation accounting,
//   - a cycle-level machine model that converts event counts plus a
//     parallelism profile into virtual runtime under a given vCPU count.
//
// Engines call the nil-safe Probe methods at the points where a real
// implementation would touch memory, branch on data, or issue FP math;
// the resulting rates (branch-miss %, cache-miss %, FP-op share) are
// the quantities plotted in the paper's Fig. 2.
package perf

import "fmt"

// Counters accumulates simulated hardware events.
type Counters struct {
	Instrs       uint64 // retired instruction estimate
	Branches     uint64
	BranchMisses uint64
	Loads        uint64
	Stores       uint64
	L1Hits       uint64
	L1Misses     uint64
	LLCHits      uint64
	LLCMisses    uint64
	// LLCPrefetched counts the subset of LLCMisses issued by sequential
	// sweeps (LoadRange), whose DRAM latency hardware stride prefetchers
	// largely hide.
	LLCPrefetched uint64
	FPScalar      uint64 // scalar floating-point operations
	FPVector      uint64 // vectorizable (AVX) floating-point operations
}

// Add accumulates other into c.
func (c *Counters) Add(other *Counters) {
	c.Instrs += other.Instrs
	c.Branches += other.Branches
	c.BranchMisses += other.BranchMisses
	c.Loads += other.Loads
	c.Stores += other.Stores
	c.L1Hits += other.L1Hits
	c.L1Misses += other.L1Misses
	c.LLCHits += other.LLCHits
	c.LLCMisses += other.LLCMisses
	c.LLCPrefetched += other.LLCPrefetched
	c.FPScalar += other.FPScalar
	c.FPVector += other.FPVector
}

// BranchMissPct returns branch misses as a percentage of branches, the
// metric of the paper's Fig. 2a.
func (c *Counters) BranchMissPct() float64 {
	if c.Branches == 0 {
		return 0
	}
	return 100 * float64(c.BranchMisses) / float64(c.Branches)
}

// CacheMissPct returns LLC misses as a percentage of cache references
// (accesses that missed L1), matching perf's cache-misses /
// cache-references ratio plotted in the paper's Fig. 2b.
func (c *Counters) CacheMissPct() float64 {
	refs := c.L1Misses
	if refs == 0 {
		return 0
	}
	return 100 * float64(c.LLCMisses) / float64(refs)
}

// FPVectorPct returns AVX floating-point operations as a percentage of
// total instructions, the metric of the paper's Fig. 2c.
func (c *Counters) FPVectorPct() float64 {
	if c.Instrs == 0 {
		return 0
	}
	return 100 * float64(c.FPVector) / float64(c.Instrs)
}

// MemAccesses returns the total number of loads and stores.
func (c *Counters) MemAccesses() uint64 { return c.Loads + c.Stores }

func (c *Counters) String() string {
	return fmt.Sprintf("instr=%d br=%d (%.2f%% miss) mem=%d (%.1f%% LLC miss) fpvec=%.1f%%",
		c.Instrs, c.Branches, c.BranchMissPct(), c.MemAccesses(), c.CacheMissPct(), c.FPVectorPct())
}

// Phase is one profiled region of an EDA job: its event counts plus the
// parallelism structure the scheduler can exploit.
type Phase struct {
	Name string
	C    Counters
	// ParallelFraction is the fraction of the phase's work that can
	// proceed concurrently (Amdahl). Routing's independent grid regions
	// give it a high fraction; synthesis's iterative netlist rewriting
	// keeps it low.
	ParallelFraction float64
	// Chunks is the number of independent work units in the parallel
	// part; effective concurrency is min(vCPUs, Chunks).
	Chunks int
}

// Report is the profile of a complete EDA job run.
type Report struct {
	Job    string
	Phases []Phase
}

// Total returns the event counts summed over all phases.
func (r *Report) Total() Counters {
	var t Counters
	for i := range r.Phases {
		t.Add(&r.Phases[i].C)
	}
	return t
}

// AddPhase appends a phase to the report.
func (r *Report) AddPhase(p Phase) { r.Phases = append(r.Phases, p) }
