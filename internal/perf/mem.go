package perf

import (
	"runtime"
	"sync"
	"time"
)

// MemWatermark tracks the process heap high-water mark across a
// measured region, from runtime.ReadMemStats snapshots. Unlike the
// Probe — which simulates a machine — this measures the real host, so
// benchmark output can report peak memory alongside runtime and a
// regression in shard-scratch footprint shows up like a runtime
// regression would. Sampling only observes the runtime's allocator
// statistics; it never influences the simulated results.
type MemWatermark struct {
	mu       sync.Mutex
	baseline uint64
	peak     uint64
}

// NewMemWatermark garbage-collects and records the current live heap
// as the baseline, so PeakDeltaBytes isolates the measured region's
// own footprint from whatever the process already held.
func NewMemWatermark() *MemWatermark {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return &MemWatermark{baseline: ms.HeapAlloc, peak: ms.HeapAlloc}
}

// Sample reads the current heap size and folds it into the peak. Call
// it at phase boundaries, or let Watch call it on a timer.
func (m *MemWatermark) Sample() {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	m.mu.Lock()
	if ms.HeapAlloc > m.peak {
		m.peak = ms.HeapAlloc
	}
	m.mu.Unlock()
}

// Watch samples on the given interval in a background goroutine until
// the returned stop function is called. Stop takes a final sample, so
// short regions are never observed zero times.
func (m *MemWatermark) Watch(interval time.Duration) (stop func()) {
	done := make(chan struct{})
	var once sync.Once
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				m.Sample()
			}
		}
	}()
	return func() {
		once.Do(func() {
			close(done)
			m.Sample()
		})
	}
}

// PeakBytes returns the highest heap size observed by any sample,
// including the baseline.
func (m *MemWatermark) PeakBytes() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.peak
}

// PeakDeltaBytes returns the peak growth over the baseline — the
// measured region's own high-water mark.
func (m *MemWatermark) PeakDeltaBytes() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.peak < m.baseline {
		return 0
	}
	return m.peak - m.baseline
}
