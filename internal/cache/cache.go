// Package cache is the fleet-wide content-addressed artifact store:
// design-space exploration re-runs the same designs under many recipes,
// and each stage's input is the previous stage's output, so shared flow
// prefixes across jobs — and across tenants — need computing only once.
//
// Keys chain along a flow: the first cacheable stage's key folds the
// content hash of its actual input artifacts (the design AIG and
// library identity), the stage name, its options fingerprint and the
// engine version; every later stage folds its predecessor's key in
// place of the input hash. Chaining is what makes hits *predictable*
// before any artifact exists — the optimizer can compute the whole key
// chain of a planned flow from the design alone, which is how a
// predicted hit collapses a stage's planned runtime and cost to the
// cache-probe constant. Each stored entry still records the content
// hash of the direct inputs it was computed from, and adoption
// verifies it against the live run, so a chain collision can never
// smuggle in wrong artifacts (it falls back to recomputing).
//
// The store has two disciplines, mirroring the scheduler's two phases:
// during the parallel pipeline phase it is frozen — pipelines call
// Peek, which touches no statistics and no recency state, so reads are
// race-free and timing-independent — and afterwards the scheduler
// replays each job's lookups serially in job order (Access/Put), which
// is where hits are billed, recency is updated and new entries land.
// Eviction (EvictOver) runs only between batches, never inside one, so
// a batch's hit/miss pattern is a pure function of the store's state
// at batch start plus the job order — the property that lets a
// forecast under predicted hits match the execution exactly.
package cache

import "sort"

// ProbeSeconds is the simulated wall-clock cost of serving one stage
// from the cache — the "near-zero cache-probe constant" a predicted
// hit collapses a stage's runtime to. It is deliberately nonzero so
// cached stages still order deterministically in the event simulation.
const ProbeSeconds = 1.0

// ProbeTimeSec is ProbeSeconds in the knapsack's integral currency.
const ProbeTimeSec = 1

// Key is a chained content signature identifying one (input, stage,
// options, engine version) computation. The zero Key means
// "uncacheable" and is never stored.
type Key uint64

// fnv1a64 constants; the chain hash is FNV-1a over fixed-width words
// so it covers structure, not formatting.
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

func mixWord(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= (v >> (8 * i)) & 0xff
		h *= fnvPrime
	}
	return h
}

func mixStr(h uint64, s string) uint64 {
	h = mixWord(h, uint64(len(s)))
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime
	}
	return h
}

// Chain derives the key of one stage computation from its input
// identity (the previous stage's key, or the content hash of the
// actual input artifacts at a chain root), the stage name, the
// stage's canonical options fingerprint and its engine version.
func Chain(input uint64, stage string, optionsFP uint64, version string) Key {
	h := uint64(fnvOffset)
	h = mixWord(h, input)
	h = mixStr(h, stage)
	h = mixWord(h, optionsFP)
	h = mixStr(h, version)
	if h == 0 {
		h = 1 // reserve 0 for "uncacheable"
	}
	return Key(h)
}

// Entry is one cached stage computation.
type Entry struct {
	Key   Key
	Stage string
	// InputHash is the content hash of the direct input artifacts the
	// entry was computed from; adoption verifies it against the live
	// run's artifacts before installing anything.
	InputHash uint64
	// OutputHash is the content hash of the produced artifacts — the
	// identity downstream stages chain from and tests pin.
	OutputHash uint64
	// Bytes is the entry's approximate artifact footprint, the unit the
	// byte-budget eviction accounts in.
	Bytes int64
	// Payload holds the producing layer's typed artifact references
	// (flow owns the concrete type); the store never inspects it.
	Payload any

	lastUse uint64
}

// Stats counts the store's serial accounting: billed hits and misses
// (Access), insertions (Put) and budget evictions.
type Stats struct {
	Hits, Misses, Puts, Evictions int64
	// BytesLive is the current footprint; BytesEvicted totals what the
	// byte budget pushed out.
	BytesLive, BytesEvicted int64
}

// HitRate is the billed hit fraction of all billed lookups, 0 when
// nothing has been billed — the headline dedup metric exploration
// reports and the bench suite tracks.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Store is the content-addressed artifact store. It is not internally
// locked: concurrent use is safe only through Peek while no writer
// runs (the scheduler's frozen phase); Access, Put and EvictOver are
// serial-phase operations.
type Store struct {
	// BudgetBytes bounds the live footprint; EvictOver evicts least-
	// recently-used entries past it. 0 means unlimited.
	BudgetBytes int64

	entries map[Key]*Entry
	seq     uint64
	stats   Stats
}

// New builds a store with the given byte budget (0 = unlimited).
func New(budgetBytes int64) *Store {
	return &Store{BudgetBytes: budgetBytes, entries: map[Key]*Entry{}}
}

// Peek returns the entry under k without touching statistics or
// recency — the frozen-phase read concurrent pipeline runs use.
func (s *Store) Peek(k Key) (*Entry, bool) {
	e, ok := s.entries[k]
	return e, ok
}

// Contains reports whether k is present, without accounting — the
// prediction read plan optimizers use.
func (s *Store) Contains(k Key) bool {
	_, ok := s.entries[k]
	return ok
}

// Access is the serial accounting lookup: a present key counts a hit
// and refreshes its recency; an absent one counts a miss.
func (s *Store) Access(k Key) (*Entry, bool) {
	e, ok := s.entries[k]
	if !ok {
		s.stats.Misses++
		return nil, false
	}
	s.stats.Hits++
	s.seq++
	e.lastUse = s.seq
	return e, true
}

// Put inserts (or replaces) an entry. It never evicts — the byte
// budget is enforced between batches by EvictOver, so a batch's hit
// pattern depends only on the store's state at batch start.
func (s *Store) Put(e *Entry) {
	if e == nil || e.Key == 0 {
		return
	}
	if old, ok := s.entries[e.Key]; ok {
		s.stats.BytesLive -= old.Bytes
	}
	s.seq++
	e.lastUse = s.seq
	s.entries[e.Key] = e
	s.stats.Puts++
	s.stats.BytesLive += e.Bytes
}

// EvictOver evicts least-recently-used entries until the live
// footprint fits the byte budget, and returns how many were evicted.
// Ties in recency cannot occur (every Access/Put draws a fresh
// sequence number), so eviction order is deterministic.
func (s *Store) EvictOver() int {
	if s.BudgetBytes <= 0 || s.stats.BytesLive <= s.BudgetBytes {
		return 0
	}
	victims := make([]*Entry, 0, len(s.entries))
	for _, e := range s.entries {
		victims = append(victims, e)
	}
	sort.Slice(victims, func(i, j int) bool { return victims[i].lastUse < victims[j].lastUse })
	n := 0
	for _, e := range victims {
		if s.stats.BytesLive <= s.BudgetBytes {
			break
		}
		delete(s.entries, e.Key)
		s.stats.BytesLive -= e.Bytes
		s.stats.BytesEvicted += e.Bytes
		s.stats.Evictions++
		n++
	}
	return n
}

// Len returns the number of live entries.
func (s *Store) Len() int { return len(s.entries) }

// Bytes returns the live footprint.
func (s *Store) Bytes() int64 { return s.stats.BytesLive }

// Stats returns a snapshot of the accounting counters.
func (s *Store) Stats() Stats { return s.stats }

// PredictChains walks job key chains in batch order and marks which
// stages the serial accounting replay will bill as hits: a key already
// in the store, or one an earlier chain of the same batch computes
// (the replay puts it before the later job's lookup). Zero keys are
// uncacheable stages and never hit. The store is not touched, so the
// prediction is exactly the replay's decision procedure run read-only
// — the contract that makes cache-aware forecasts match execution.
func (s *Store) PredictChains(chains [][]Key) [][]bool {
	pending := map[Key]bool{}
	out := make([][]bool, len(chains))
	for i, chain := range chains {
		hits := make([]bool, len(chain))
		for l, k := range chain {
			if k == 0 {
				continue
			}
			hits[l] = s.Contains(k) || pending[k]
		}
		for _, k := range chain {
			if k != 0 {
				pending[k] = true
			}
		}
		out[i] = hits
	}
	return out
}
