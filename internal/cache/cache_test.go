package cache

import "testing"

func entry(k Key, bytes int64) *Entry {
	return &Entry{Key: k, Stage: "s", Bytes: bytes}
}

func TestChainDeterministicAndSensitive(t *testing.T) {
	base := Chain(42, "synthesis", 7, "synth/1")
	if base == 0 {
		t.Fatal("chain key collapsed to the uncacheable sentinel")
	}
	if again := Chain(42, "synthesis", 7, "synth/1"); again != base {
		t.Fatalf("chain not deterministic: %d vs %d", base, again)
	}
	variants := []Key{
		Chain(43, "synthesis", 7, "synth/1"),
		Chain(42, "placement", 7, "synth/1"),
		Chain(42, "synthesis", 8, "synth/1"),
		Chain(42, "synthesis", 7, "synth/2"),
	}
	for i, v := range variants {
		if v == base {
			t.Errorf("variant %d did not change the key", i)
		}
	}
}

func TestAccessBillsHitsAndMisses(t *testing.T) {
	s := New(0)
	if _, ok := s.Access(1); ok {
		t.Fatal("hit on empty store")
	}
	s.Put(entry(1, 10))
	if _, ok := s.Access(1); !ok {
		t.Fatal("miss after put")
	}
	if _, ok := s.Peek(2); ok {
		t.Fatal("peek invented an entry")
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Puts != 1 {
		t.Fatalf("stats = %+v, want 1 hit, 1 miss, 1 put", st)
	}
	if st.BytesLive != 10 {
		t.Fatalf("BytesLive = %d, want 10", st.BytesLive)
	}
	// Peek must not bill.
	s.Peek(1)
	if got := s.Stats().Hits; got != 1 {
		t.Fatalf("peek billed a hit: %d", got)
	}
}

func TestHitRate(t *testing.T) {
	if got := (Stats{}).HitRate(); got != 0 {
		t.Fatalf("empty stats hit rate = %g, want 0", got)
	}
	if got := (Stats{Hits: 3, Misses: 1}).HitRate(); got != 0.75 {
		t.Fatalf("3/4 hit rate = %g, want 0.75", got)
	}
	if got := (Stats{Misses: 5}).HitRate(); got != 0 {
		t.Fatalf("all-miss hit rate = %g, want 0", got)
	}
}

func TestEvictOverIsLRU(t *testing.T) {
	s := New(30)
	s.Put(entry(1, 10))
	s.Put(entry(2, 10))
	s.Put(entry(3, 10))
	s.Access(1) // 1 is now most recently used
	s.Put(entry(4, 10))
	if n := s.EvictOver(); n != 1 {
		t.Fatalf("evicted %d entries, want 1", n)
	}
	// 2 was least recently used.
	if _, ok := s.Peek(2); ok {
		t.Fatal("LRU entry 2 survived eviction")
	}
	for _, k := range []Key{1, 3, 4} {
		if _, ok := s.Peek(k); !ok {
			t.Fatalf("entry %d evicted out of LRU order", k)
		}
	}
	st := s.Stats()
	if st.Evictions != 1 || st.BytesEvicted != 10 || st.BytesLive != 30 {
		t.Fatalf("stats after eviction = %+v", st)
	}
}

func TestZeroBudgetNeverEvicts(t *testing.T) {
	s := New(0)
	for k := Key(1); k <= 100; k++ {
		s.Put(entry(k, 1<<20))
	}
	if n := s.EvictOver(); n != 0 {
		t.Fatalf("unlimited store evicted %d entries", n)
	}
	if s.Len() != 100 {
		t.Fatalf("Len = %d, want 100", s.Len())
	}
}

func TestPutReplacesAndAdjustsBytes(t *testing.T) {
	s := New(0)
	s.Put(entry(1, 10))
	s.Put(entry(1, 25))
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1", s.Len())
	}
	if b := s.Bytes(); b != 25 {
		t.Fatalf("Bytes = %d, want 25", b)
	}
}

func TestPredictChainsSeesStoreAndPendingPrefixes(t *testing.T) {
	s := New(0)
	s.Put(entry(7, 1))
	chains := [][]Key{
		{7, 8, 9},  // 7 in store; 8, 9 cold
		{7, 8, 10}, // 7 in store; 8 pending from chain 0; 10 cold
		{0, 8},     // key 0 is uncacheable, never a hit; 8 still pending
	}
	hits := s.PredictChains(chains)
	want := [][]bool{
		{true, false, false},
		{true, true, false},
		{false, true},
	}
	for i := range want {
		for l := range want[i] {
			if hits[i][l] != want[i][l] {
				t.Errorf("chain %d stage %d: hit=%v, want %v", i, l, hits[i][l], want[i][l])
			}
		}
	}
	// Prediction is read-only.
	if st := s.Stats(); st.Hits != 0 || st.Misses != 0 {
		t.Fatalf("PredictChains billed the store: %+v", st)
	}
	if s.Len() != 1 {
		t.Fatalf("PredictChains mutated the store: %d entries", s.Len())
	}
}
