// Package clitest is the golden end-to-end harness for the repo's
// command binaries: build the command, run it with fixed flags,
// normalize stdout, and compare against a checked-in golden file so
// CLI output regressions — a changed schedule, a broken table, a
// renamed column — fail loudly. Every simulated quantity the commands
// print is deterministic (worker-count- and machine-independent by
// the repo's core invariants), which is what makes byte-exact goldens
// tenable.
package clitest

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// Build compiles the command package in dir (default ".") into a
// temporary binary and returns its path.
func Build(t *testing.T, dir string) string {
	t.Helper()
	if dir == "" {
		dir = "."
	}
	bin := filepath.Join(t.TempDir(), "cmd.bin")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	cmd.Dir = dir
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// Run executes the binary with the given arguments and returns its
// normalized stdout. A non-zero exit or any stderr output fails the
// test.
func Run(t *testing.T, bin string, args ...string) string {
	t.Helper()
	var stdout, stderr bytes.Buffer
	cmd := exec.Command(bin, args...)
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		t.Fatalf("%s %s: %v\nstderr: %s", filepath.Base(bin), strings.Join(args, " "), err, stderr.String())
	}
	if stderr.Len() > 0 {
		t.Fatalf("%s wrote to stderr: %s", filepath.Base(bin), stderr.String())
	}
	return Normalize(stdout.String())
}

// Normalize strips trailing whitespace per line and trailing blank
// lines, and canonicalizes line endings — the only variance a golden
// comparison should forgive.
func Normalize(s string) string {
	s = strings.ReplaceAll(s, "\r\n", "\n")
	lines := strings.Split(s, "\n")
	for i := range lines {
		lines[i] = strings.TrimRight(lines[i], " \t")
	}
	out := strings.Join(lines, "\n")
	return strings.TrimRight(out, "\n") + "\n"
}

// Golden compares got against the golden file, rewriting it instead
// when update is true. The diff report shows the first divergent line
// so a regression is readable without external tooling.
func Golden(t *testing.T, goldenPath string, got string, update bool) {
	t.Helper()
	if update {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("updated %s", goldenPath)
		return
	}
	wantBytes, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden file (rerun with -update): %v", err)
	}
	want := Normalize(string(wantBytes))
	if got == want {
		return
	}
	gotLines, wantLines := strings.Split(got, "\n"), strings.Split(want, "\n")
	for i := 0; i < len(gotLines) || i < len(wantLines); i++ {
		g, w := "", ""
		if i < len(gotLines) {
			g = gotLines[i]
		}
		if i < len(wantLines) {
			w = wantLines[i]
		}
		if g != w {
			t.Fatalf("output diverges from %s at line %d:\n got: %q\nwant: %q\n(rerun with -update to accept)",
				goldenPath, i+1, g, w)
		}
	}
	t.Fatalf("output differs from %s in line count only: got %d, want %d",
		goldenPath, len(gotLines), len(wantLines))
}
