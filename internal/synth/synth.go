package synth

import (
	"fmt"

	"edacloud/internal/aig"
	"edacloud/internal/netlist"
	"edacloud/internal/par"
	"edacloud/internal/perf"
	"edacloud/internal/techlib"
)

// PassKind identifies one AIG optimization pass.
type PassKind int

// The optimization passes.
const (
	PassBalance PassKind = iota
	PassRewrite
	PassRefactor
)

func (p PassKind) String() string {
	switch p {
	case PassBalance:
		return "balance"
	case PassRewrite:
		return "rewrite"
	case PassRefactor:
		return "refactor"
	}
	return fmt.Sprintf("pass(%d)", int(p))
}

// Recipe is a named sequence of optimization passes. Different recipes
// produce structurally different netlists of the same function, which
// is how the paper's dataset pairs one design with many physical
// structures (its Sec. IV: 18 benchmarks -> 330 unique netlists).
type Recipe struct {
	Name   string
	Passes []PassKind
}

// StandardRecipes mirrors the usual ABC script families: from no
// optimization through light and heavy effort.
var StandardRecipes = []Recipe{
	{"raw", nil},
	{"b", []PassKind{PassBalance}},
	{"rw", []PassKind{PassRewrite}},
	{"rf", []PassKind{PassRefactor}},
	{"resyn", []PassKind{PassBalance, PassRewrite, PassRewrite, PassBalance}},
	{"resyn2", []PassKind{
		PassBalance, PassRewrite, PassRefactor, PassBalance,
		PassRewrite, PassRewrite, PassBalance,
	}},
	{"compress", []PassKind{PassBalance, PassRewrite, PassBalance, PassRefactor, PassBalance}},
	{"deep", []PassKind{
		PassBalance, PassRefactor, PassRewrite, PassBalance,
		PassRefactor, PassRewrite, PassBalance,
	}},
}

// RecipeByName returns the named standard recipe.
func RecipeByName(name string) (Recipe, error) {
	for _, r := range StandardRecipes {
		if r.Name == name {
			return r, nil
		}
	}
	return Recipe{}, fmt.Errorf("synth: unknown recipe %q", name)
}

// runPass dispatches one optimization pass, reporting its measured
// parallel structure.
func runPass(g *aig.Graph, p PassKind, probe *perf.Probe, pool *par.Pool) (*aig.Graph, passStats, error) {
	var ng *aig.Graph
	var stats passStats
	switch p {
	case PassBalance:
		ng, stats = balancePool(g, probe, pool)
	case PassRewrite:
		ng, stats = rewritePool(g, probe, pool)
	case PassRefactor:
		ng, stats = refactorPool(g, probe, pool)
	default:
		return nil, stats, fmt.Errorf("synth: unknown pass %v", p)
	}
	return ng, stats, nil
}

// RunPass applies a single optimization pass with an explicit worker
// bound (0 means GOMAXPROCS). The result is bit-identical for every
// worker count; benchmarks and conformance tests use this to pin the
// serial baseline against the full pool.
func RunPass(g *aig.Graph, p PassKind, probe *perf.Probe, workers int) (*aig.Graph, error) {
	ng, _, err := runPass(g, p, probe, par.Fixed(workers))
	return ng, err
}

// Optimize applies a recipe to the AIG, recording one perf phase per
// pass into report when probe and report are non-nil.
func Optimize(g *aig.Graph, recipe Recipe, probe *perf.Probe, report *perf.Report) (*aig.Graph, error) {
	return optimize(g, recipe, probe, report, par.Default())
}

// optimize is Optimize with an explicit worker pool for the passes'
// cut enumeration and cone-parallel rebuilds.
func optimize(g *aig.Graph, recipe Recipe, probe *perf.Probe, report *perf.Report, pool *par.Pool) (*aig.Graph, error) {
	cur := g
	for _, p := range recipe.Passes {
		next, stats, err := runPass(cur, p, probe, pool)
		if err != nil {
			return nil, err
		}
		cur = next
		if report != nil {
			// The phase's Amdahl profile is measured, not modeled: the
			// cut sweeps and per-partition cone rebuilds scale across
			// the partition count, while partitioning, shard merging
			// and the final sweep serialize.
			report.AddPhase(probe.TakePhaseMeasured(p.String(), stats.parallelInstrs, stats.chunks))
		}
	}
	return cur, nil
}

// Options configures Synthesize.
type Options struct {
	// Recipe is the optimization script; zero value means "raw".
	Recipe Recipe
	// RegisterOutputs inserts a DFF behind every primary output.
	RegisterOutputs bool
	// Objective selects delay- (default) or area-oriented mapping.
	Objective MapObjective
	// StageConfig supplies the shared execution knobs: Workers bounds
	// the worker pool for the recipe passes' and the mapper's
	// intra-level cut enumeration (0 means GOMAXPROCS; results are
	// identical for every value), and Probe receives performance
	// events (nil runs uninstrumented).
	par.StageConfig
}

// Result bundles the outputs of a synthesis run.
type Result struct {
	Netlist *netlist.Netlist
	// Optimized is the post-recipe AIG that was mapped.
	Optimized *aig.Graph
	// Report profiles the run, one phase per pass plus mapping.
	Report *perf.Report
}

// Synthesize optimizes the AIG with the given recipe and maps it to
// the library, producing the netlist consumed by placement, routing
// and STA.
func Synthesize(g *aig.Graph, lib *techlib.Library, opts Options) (*Result, error) {
	report := &perf.Report{Job: "synthesis"}
	probe := opts.Probe

	pool := par.Fixed(opts.Workers)
	opt, err := optimize(g, opts.Recipe, probe, report, pool)
	if err != nil {
		return nil, err
	}
	nl, err := mapToCells(opt, lib, opts.RegisterOutputs, opts.Objective, probe, pool)
	if err != nil {
		return nil, err
	}
	// Matching is per-node parallel, but the covering extraction and
	// netlist construction serialize on shared structures.
	report.AddPhase(probe.TakePhase("map", 0.60, opt.NumAnds()/64+1))
	return &Result{Netlist: nl, Optimized: opt, Report: report}, nil
}
