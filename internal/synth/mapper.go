package synth

import (
	"fmt"

	"edacloud/internal/aig"
	"edacloud/internal/netlist"
	"edacloud/internal/par"
	"edacloud/internal/perf"
	"edacloud/internal/techlib"
)

// The technology mapper covers the optimized AIG with standard cells
// using 3-feasible cuts and exact Boolean matching (with input
// permutations and per-leaf polarity adjustment). Both output
// polarities of every node are costed — inverting cells absorb edge
// complementations — and the final cover is extracted from the primary
// outputs, inserting explicit inverters only where no inverting match
// exists.

// nominal conditions for pre-placement delay estimation.
const (
	nominalSlew   = 0.02   // ns
	nominalPinCap = 0.0012 // pF per fanout pin
)

// MapObjective selects the technology mapper's cost function.
type MapObjective int

// Mapping objectives: delay-oriented covering minimizes worst arrival
// (the default, matching timing-driven flows); area-oriented covering
// minimizes area flow with arrival as tie-break.
const (
	MapDelay MapObjective = iota
	MapArea
)

// nodeImpl is the chosen realization of one (node, polarity) pair.
type nodeImpl struct {
	valid   bool
	fromInv bool // realized as inverter of the opposite polarity
	match   techlib.Match
	cut     Cut
	polMask uint8 // bit i set: leaf i is consumed complemented
	arrival float64
	// areaFlow estimates the per-use area of this realization
	// (cell area plus fanout-shared leaf area flows).
	areaFlow float64
}

// Mapper holds mapping state for one run.
type mapper struct {
	g         *aig.Graph
	lib       *techlib.Library
	probe     *perf.Probe
	objective MapObjective

	inv    *techlib.Cell
	impls  [2][]nodeImpl // [polarity][var]; polarity 0 = positive
	cuts   *cutEnum
	fanout []int32
	tts    ttScratch
}

// MapToCells covers the AIG with standard cells from lib and returns
// the mapped netlist. When registerOutputs is set, every primary
// output is registered behind a DFF clocked by an added "clk" input.
func MapToCells(g *aig.Graph, lib *techlib.Library, registerOutputs bool, probe *perf.Probe) (*netlist.Netlist, error) {
	return MapToCellsObjective(g, lib, registerOutputs, MapDelay, probe)
}

// MapToCellsObjective is MapToCells with an explicit covering
// objective.
func MapToCellsObjective(g *aig.Graph, lib *techlib.Library, registerOutputs bool, obj MapObjective, probe *perf.Probe) (*netlist.Netlist, error) {
	return mapToCells(g, lib, registerOutputs, obj, probe, par.Default())
}

// mapToCells is the shared mapping path with an explicit worker pool
// (used by cut enumeration; covering itself is sequential).
func mapToCells(g *aig.Graph, lib *techlib.Library, registerOutputs bool, obj MapObjective, probe *perf.Probe, pool *par.Pool) (*netlist.Netlist, error) {
	inv := lib.Cell("INV_X1")
	if inv == nil {
		return nil, fmt.Errorf("synth: library %s lacks an INV_X1 cell", lib.Name)
	}
	m := &mapper{g: g, lib: lib, probe: probe, inv: inv, objective: obj}
	m.cuts = newCutEnum(g, 3, 8, probe, pool)
	m.fanout = g.FanoutCounts()
	nv := g.NumVars()
	m.impls[0] = make([]nodeImpl, nv)
	m.impls[1] = make([]nodeImpl, nv)
	m.computeImpls()
	return m.extract(registerOutputs)
}

// invDelay returns the inverter arc delay under nominal conditions.
func (m *mapper) invDelay() float64 {
	return m.inv.Arcs[0].Delay.Lookup(nominalSlew, nominalPinCap)
}

// arrivalOf returns the arrival time of (var, polarity), deriving the
// missing polarity through an inverter when needed.
func (m *mapper) arrivalOf(v int, neg bool) float64 {
	pol := 0
	if neg {
		pol = 1
	}
	if m.impls[pol][v].valid {
		return m.impls[pol][v].arrival
	}
	other := m.impls[1-pol][v]
	if !other.valid {
		return 0
	}
	return other.arrival + m.invDelay()
}

// areaFlowOf returns the area flow of (var, polarity), adding an
// inverter when the polarity must be derived.
func (m *mapper) areaFlowOf(v int, neg bool) float64 {
	pol := 0
	if neg {
		pol = 1
	}
	if m.impls[pol][v].valid {
		return m.impls[pol][v].areaFlow
	}
	other := m.impls[1-pol][v]
	if !other.valid {
		return 0
	}
	return other.areaFlow + m.inv.Area
}

// computeImpls fills impls in topological order.
func (m *mapper) computeImpls() {
	g := m.g
	// Constant node: both polarities free at time zero.
	m.impls[0][0] = nodeImpl{valid: true}
	m.impls[1][0] = nodeImpl{valid: true}
	for _, v := range g.InputVars() {
		m.impls[0][v] = nodeImpl{valid: true}
		// Negative polarity of an input is an inverter.
		m.impls[1][v] = nodeImpl{valid: true, fromInv: true, arrival: m.invDelay()}
	}
	g.TopoAnds(func(v int, f0, f1 aig.Lit) {
		m.probe.LoadHot(rgNode, uint64(v))
		m.probe.LoadHot(rgCut, uint64(v))
		m.probe.LoopBranches(6)
		m.mapNode(v)
	})
}

// mapNode computes the best positive and negative implementations of v.
func (m *mapper) mapNode(v int) {
	bestCost := [2]float64{1e30, 1e30}
	var best [2]nodeImpl

	load := nominalPinCap * float64(m.fanout[v])
	if load <= 0 {
		load = nominalPinCap
	}

	for _, cut := range m.cuts.Cuts(v) {
		n := len(cut.Leaves)
		if n < 1 || n > 3 {
			continue
		}
		if n == 1 && int(cut.Leaves[0]) == v {
			continue // trivial cut
		}
		tt := cutTT(m.g, v, cut.Leaves, m.probe, &m.tts)
		// Try every leaf-polarity adjustment: complementing leaf i
		// swaps its cofactors in the table.
		for pm := uint8(0); pm < 1<<uint(n); pm++ {
			adj := tt
			for i := 0; i < n; i++ {
				if pm>>uint(i)&1 == 1 {
					adj = flipVar(adj, i)
				}
			}
			tt16 := uint16(adj & ttMask(n))
			for pol := 0; pol < 2; pol++ {
				want := tt16
				if pol == 1 {
					want = ^tt16 & uint16(ttMask(n))
				}
				for _, match := range m.lib.MatchTT(want, n) {
					m.probe.Ops(20)
					m.probe.FPScalar(8) // table interpolation
					arr := m.matchArrival(match, cut, pm, load)
					af := match.Cell.Area
					for i, leaf := range cut.Leaves {
						leafShare := float64(m.fanout[leaf])
						if leafShare < 1 {
							leafShare = 1
						}
						af += m.areaFlowOf(int(leaf), pm>>uint(i)&1 == 1) / leafShare
					}
					cost := arr
					if m.objective == MapArea {
						// Area flow first, arrival as a mild tie-break.
						cost = af + arr*1e-3
					}
					better := cost < bestCost[pol]
					m.probe.Branch(brMapChoice, better)
					if better {
						bestCost[pol] = cost
						best[pol] = nodeImpl{
							valid:    true,
							match:    match,
							cut:      cut,
							polMask:  pm,
							arrival:  arr,
							areaFlow: af,
						}
					}
				}
			}
		}
	}
	// Backstop: any missing polarity is an inverter off the other one;
	// if both are missing the graph has an unmappable node, which the
	// NAND/NOR-complete library precludes for 2-leaf cuts.
	for pol := 0; pol < 2; pol++ {
		if best[pol].valid {
			continue
		}
		if !best[1-pol].valid {
			continue
		}
		best[pol] = nodeImpl{
			valid:    true,
			fromInv:  true,
			arrival:  best[1-pol].arrival + m.invDelay(),
			areaFlow: best[1-pol].areaFlow + m.inv.Area,
		}
	}
	m.impls[0][v] = best[0]
	m.impls[1][v] = best[1]
}

// matchArrival returns the output arrival time of realizing a match:
// the worst leaf arrival (in its required polarity) plus the matched
// arc delay at the estimated load.
func (m *mapper) matchArrival(match techlib.Match, cut Cut, pm uint8, load float64) float64 {
	worst := 0.0
	for i, leaf := range cut.Leaves {
		neg := pm>>uint(i)&1 == 1
		arr := m.arrivalOf(int(leaf), neg)
		pin := match.Cell.Inputs[match.Perm[i]].Name
		arc := match.Cell.ArcFrom(pin)
		d := 0.0
		if arc != nil {
			d = arc.Delay.Lookup(nominalSlew, load)
		}
		if arr+d > worst {
			worst = arr + d
		}
	}
	return worst
}

// flipVar complements variable i of a truth table by swapping its
// cofactor halves.
func flipVar(tt uint64, i int) uint64 {
	m := ttVarMasks[i]
	s := uint(1) << uint(i)
	return (tt&m)>>s | (tt&^m)<<s
}

// extract instantiates the chosen cover from the primary outputs.
func (m *mapper) extract(registerOutputs bool) (*netlist.Netlist, error) {
	g := m.g
	nl := netlist.New(g.Name, m.lib)

	piNet := make(map[int]netlist.NetID)
	for i, v := range g.InputVars() {
		name := g.InputName(i)
		if name == "" {
			name = fmt.Sprintf("pi%d", i)
		}
		piNet[v] = nl.AddPI(name)
	}

	type key struct {
		v   int
		neg bool
	}
	memo := make(map[key]netlist.NetID)
	cellCount := 0
	newCell := func(typ *techlib.Cell, ins []netlist.NetID) netlist.NetID {
		out := nl.AddNet(fmt.Sprintf("n%d", nl.NumNets()))
		nl.MustAddCell(fmt.Sprintf("u%d", cellCount), typ, ins, out)
		cellCount++
		return out
	}

	// constNet lazily builds constant-0/1 nets from the first PI:
	// AND2(a, !a) = 0, OR2(a, !a) = 1.
	var constNets [2]netlist.NetID
	constNets[0], constNets[1] = netlist.NoNet, netlist.NoNet
	makeConst := func(one bool) (netlist.NetID, error) {
		idx := 0
		if one {
			idx = 1
		}
		if constNets[idx] != netlist.NoNet {
			return constNets[idx], nil
		}
		if len(g.InputVars()) == 0 {
			return netlist.NoNet, fmt.Errorf("synth: cannot tie constants in a design with no inputs")
		}
		a := piNet[g.InputVars()[0]]
		an := newCell(m.inv, []netlist.NetID{a})
		typ := m.lib.Cell("AND2_X1")
		if one {
			typ = m.lib.Cell("OR2_X1")
		}
		if typ == nil {
			return netlist.NoNet, fmt.Errorf("synth: library lacks AND2/OR2 tie cells")
		}
		constNets[idx] = newCell(typ, []netlist.NetID{a, an})
		return constNets[idx], nil
	}

	var emit func(v int, neg bool) (netlist.NetID, error)
	emit = func(v int, neg bool) (netlist.NetID, error) {
		if v == 0 {
			return makeConst(neg) // constant node: False, so neg means 1
		}
		k := key{v, neg}
		if net, ok := memo[k]; ok {
			return net, nil
		}
		m.probe.LoadHot(rgNode, uint64(v))
		m.probe.LoopBranches(4)
		var net netlist.NetID
		if g.IsInput(v) {
			if !neg {
				net = piNet[v]
			} else {
				net = newCell(m.inv, []netlist.NetID{piNet[v]})
			}
			memo[k] = net
			return net, nil
		}
		pol := 0
		if neg {
			pol = 1
		}
		impl := m.impls[pol][v]
		if !impl.valid {
			return netlist.NoNet, fmt.Errorf("synth: node %d has no %v implementation", v, neg)
		}
		if impl.fromInv {
			src, err := emit(v, !neg)
			if err != nil {
				return netlist.NoNet, err
			}
			net = newCell(m.inv, []netlist.NetID{src})
			memo[k] = net
			return net, nil
		}
		ins := make([]netlist.NetID, impl.match.Cell.NumInputs())
		for i, leaf := range impl.cut.Leaves {
			leafNeg := impl.polMask>>uint(i)&1 == 1
			src, err := emit(int(leaf), leafNeg)
			if err != nil {
				return netlist.NoNet, err
			}
			ins[impl.match.Perm[i]] = src
		}
		net = newCell(impl.match.Cell, ins)
		memo[k] = net
		return net, nil
	}

	var clkNet netlist.NetID = netlist.NoNet
	dff := m.lib.Cell("DFF_X1")
	if registerOutputs {
		if dff == nil {
			return nil, fmt.Errorf("synth: library lacks DFF_X1 for registered outputs")
		}
		clkNet = nl.AddPI("clk")
	}

	for i, o := range g.Outputs() {
		net, err := emit(o.Var(), o.IsNeg())
		if err != nil {
			return nil, err
		}
		name := g.OutputName(i)
		if name == "" {
			name = fmt.Sprintf("po%d", i)
		}
		if registerOutputs {
			q := newCell(dff, []netlist.NetID{net, clkNet})
			nl.AddPO(name, q)
		} else {
			nl.AddPO(name, net)
		}
	}
	return nl, nil
}
