package synth

import (
	"runtime"
	"testing"

	"edacloud/internal/aig"
	"edacloud/internal/designs"
	"edacloud/internal/perf"
)

// passAllocBytes reports the heap bytes one run of pass allocates on a
// fresh clone of g, with the clone's own cost subtracted out.
func passAllocBytes(t *testing.T, g *aig.Graph, pass func(*aig.Graph, *perf.Probe) *aig.Graph) uint64 {
	t.Helper()
	c := g.Clone()
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	out := pass(c, nil)
	runtime.ReadMemStats(&after)
	if out.NumOutputs() != g.NumOutputs() {
		t.Fatal("pass dropped outputs")
	}
	return after.TotalAlloc - before.TotalAlloc
}

// TestPartitionedPassAllocScaling pins the shard-scratch fix: total
// allocation of the partitioned passes must grow roughly linearly with
// design size. The old dense per-partition scratch allocated
// O(NumVars) per partition — O(NumVars^2/grain) total — so a 10x
// larger design allocated ~100x the bytes; with pooled epoch-stamped
// scratch the same 10x step costs ~10x. The 3x-of-linear bound fails
// loudly on the quadratic behaviour (observed ~60x over linear) while
// leaving room for constant-factor noise.
func TestPartitionedPassAllocScaling(t *testing.T) {
	small := designs.MustBenchmark("adder", 10)
	large := designs.MustBenchmark("adder", 100)
	varsRatio := float64(large.NumVars()) / float64(small.NumVars())
	if varsRatio < 5 {
		t.Fatalf("size step too small to discriminate: vars ratio %.1f", varsRatio)
	}
	for _, tc := range []struct {
		name string
		pass func(*aig.Graph, *perf.Probe) *aig.Graph
	}{
		{"rewrite", Rewrite},
		{"refactor", Refactor},
		{"balance", Balance},
	} {
		t.Run(tc.name, func(t *testing.T) {
			smallBytes := passAllocBytes(t, small, tc.pass)
			largeBytes := passAllocBytes(t, large, tc.pass)
			allocRatio := float64(largeBytes) / float64(smallBytes)
			t.Logf("%s: %d -> %d bytes (%.1fx for a %.1fx size step)",
				tc.name, smallBytes, largeBytes, allocRatio, varsRatio)
			if allocRatio > 3*varsRatio {
				t.Fatalf("allocation grows super-linearly: %.1fx bytes for %.1fx vars (limit %.1fx) — per-partition scratch is dense again?",
					allocRatio, varsRatio, 3*varsRatio)
			}
		})
	}
}
