package synth

import (
	"sort"

	"edacloud/internal/aig"
	"edacloud/internal/perf"
)

// Cut is a k-feasible cut of an AIG node: a set of leaf variables such
// that every path from the node to the inputs crosses a leaf.
type Cut struct {
	Leaves []int32 // sorted variable indices
}

// cutEnum enumerates priority cuts: every node keeps at most maxCuts
// cuts of at most k leaves, built by merging fanin cuts, preferring
// fewer leaves. The trivial cut {v} is always included (last).
type cutEnum struct {
	g       *aig.Graph
	k       int
	maxCuts int
	probe   *perf.Probe
	cuts    [][]Cut
}

func newCutEnum(g *aig.Graph, k, maxCuts int, probe *perf.Probe) *cutEnum {
	ce := &cutEnum{g: g, k: k, maxCuts: maxCuts, probe: probe, cuts: make([][]Cut, g.NumVars())}
	ce.run()
	return ce
}

// Cuts returns the cut list of variable v.
func (ce *cutEnum) Cuts(v int) []Cut { return ce.cuts[v] }

func (ce *cutEnum) run() {
	g := ce.g
	// Constant node and inputs have only the trivial cut.
	ce.cuts[0] = []Cut{{Leaves: []int32{0}}}
	for _, v := range g.InputVars() {
		ce.cuts[v] = []Cut{{Leaves: []int32{int32(v)}}}
	}
	g.TopoAnds(func(v int, f0, f1 aig.Lit) {
		ce.probe.LoadHot(rgCut, uint64(v))
		c0 := ce.cuts[f0.Var()]
		c1 := ce.cuts[f1.Var()]
		var merged []Cut
		for _, a := range c0 {
			for _, b := range c1 {
				leaves, ok := mergeLeaves(a.Leaves, b.Leaves, ce.k)
				ce.probe.Branch(brCutMerge, ok)
				// Leaf-set union, dedup hashing and cut-list bookkeeping
				// dominate enumeration cost.
				ce.probe.Ops(240)
				ce.probe.LoopBranches(6)
				ce.probe.LoadHot(rgCut, uint64(f0.Var()))
				if !ok {
					continue
				}
				merged = append(merged, Cut{Leaves: leaves})
			}
		}
		merged = dedupCuts(merged)
		sort.SliceStable(merged, func(i, j int) bool {
			return len(merged[i].Leaves) < len(merged[j].Leaves)
		})
		if len(merged) > ce.maxCuts {
			merged = merged[:ce.maxCuts]
		}
		// Trivial cut last so matching prefers structural cuts.
		merged = append(merged, Cut{Leaves: []int32{int32(v)}})
		ce.cuts[v] = merged
		ce.probe.Ops(len(c0)*len(c1) + 4)
	})
}

// mergeLeaves unions two sorted leaf sets, failing when the union
// exceeds k.
func mergeLeaves(a, b []int32, k int) ([]int32, bool) {
	out := make([]int32, 0, k)
	i, j := 0, 0
	for i < len(a) || j < len(b) {
		var next int32
		switch {
		case i >= len(a):
			next = b[j]
			j++
		case j >= len(b):
			next = a[i]
			i++
		case a[i] < b[j]:
			next = a[i]
			i++
		case a[i] > b[j]:
			next = b[j]
			j++
		default:
			next = a[i]
			i++
			j++
		}
		if len(out) == k {
			return nil, false
		}
		out = append(out, next)
	}
	return out, true
}

func dedupCuts(cuts []Cut) []Cut {
	seen := make(map[string]bool, len(cuts))
	out := cuts[:0]
	for _, c := range cuts {
		key := leafKey(c.Leaves)
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, c)
	}
	return out
}

func leafKey(leaves []int32) string {
	b := make([]byte, 0, len(leaves)*4)
	for _, l := range leaves {
		b = append(b, byte(l), byte(l>>8), byte(l>>16), byte(l>>24))
	}
	return string(b)
}

// cutTT computes the truth table of variable root over the cut leaves
// (leaf i is truth-table variable i). The cut must be valid: every
// cone path from root terminates at a leaf.
func cutTT(g *aig.Graph, root int, leaves []int32, probe *perf.Probe) uint64 {
	n := len(leaves)
	memo := map[int]uint64{0: 0} // constant-false node
	for i, l := range leaves {
		memo[int(l)] = ttVar(i, n)
	}
	var eval func(v int) uint64
	eval = func(v int) uint64 {
		if tt, ok := memo[v]; ok {
			return tt
		}
		probe.LoadHot(rgNode, uint64(v))
		probe.LoopBranches(2)
		f0, f1 := g.Fanins(v)
		t0 := eval(f0.Var())
		if f0.IsNeg() {
			t0 = ttNot(t0, n)
		}
		t1 := eval(f1.Var())
		if f1.IsNeg() {
			t1 = ttNot(t1, n)
		}
		tt := t0 & t1
		memo[v] = tt
		return tt
	}
	return eval(root)
}
