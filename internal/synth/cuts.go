package synth

import (
	"sort"

	"edacloud/internal/aig"
	"edacloud/internal/ints"
	"edacloud/internal/par"
	"edacloud/internal/perf"
)

// Cut is a k-feasible cut of an AIG node: a set of leaf variables such
// that every path from the node to the inputs crosses a leaf.
type Cut struct {
	Leaves []int32 // sorted variable indices
}

// cutEnum enumerates priority cuts: every node keeps at most maxCuts
// cuts of at most k leaves, built by merging fanin cuts, preferring
// fewer leaves. The trivial cut {v} is always included (last).
//
// Enumeration proceeds level by level: a node's cuts depend only on
// its fanins' cuts, which live at strictly lower levels, so all nodes
// of one level are independent and run in parallel on the pool.
type cutEnum struct {
	g       *aig.Graph
	k       int
	maxCuts int
	probe   *perf.Probe
	pool    *par.Pool
	cuts    [][]Cut
	// parInstrs counts the instructions recorded in levels wide enough
	// to split into multiple chunks — the genuinely parallel share of
	// the enumeration. Narrow levels run single-chunk and serialize at
	// the per-level barrier, so their work is excluded. parChunks is
	// the widest such level's chunk count, the enumeration's own
	// concurrency bound.
	parInstrs uint64
	parChunks int
}

// cutGrain is the per-chunk node count of the intra-level parallel
// sweep. A fixed constant keeps the probe-shard layout — and with it
// the simulated counters — machine-independent.
const cutGrain = 32

func newCutEnum(g *aig.Graph, k, maxCuts int, probe *perf.Probe, pool *par.Pool) *cutEnum {
	ce := &cutEnum{g: g, k: k, maxCuts: maxCuts, probe: probe, pool: pool, cuts: make([][]Cut, g.NumVars())}
	ce.run()
	return ce
}

// Cuts returns the cut list of variable v.
func (ce *cutEnum) Cuts(v int) []Cut { return ce.cuts[v] }

func (ce *cutEnum) run() {
	g := ce.g
	// Constant node and inputs have only the trivial cut.
	ce.cuts[0] = []Cut{{Leaves: []int32{0}}}
	for _, v := range g.InputVars() {
		ce.cuts[v] = []Cut{{Leaves: []int32{int32(v)}}}
	}
	// Bucket AND nodes by logic level, each bucket in topological
	// (ascending-variable) order.
	levels := g.Levels()
	var maxLv int32
	for _, l := range levels {
		if l > maxLv {
			maxLv = l
		}
	}
	buckets := make([][]int32, maxLv+1)
	g.TopoAnds(func(v int, f0, f1 aig.Lit) {
		buckets[levels[v]] = append(buckets[levels[v]], int32(v))
	})
	for _, nodes := range buckets {
		if len(nodes) == 0 {
			continue
		}
		before := ce.probe.Counters().Instrs
		ce.pool.ForProbe(ce.probe, len(nodes), cutGrain, func(lo, hi, _ int, probe *perf.Probe) {
			for _, v := range nodes[lo:hi] {
				ce.enumNode(int(v), probe)
			}
		})
		if chunks := ints.CeilDiv(len(nodes), cutGrain); chunks > 1 {
			ce.parInstrs += ce.probe.Counters().Instrs - before
			ce.parChunks = ints.Max(ce.parChunks, chunks)
		}
	}
}

// enumNode builds the cut list of AND node v from its fanins' cuts.
// It writes only ce.cuts[v], so nodes of one level can run
// concurrently.
func (ce *cutEnum) enumNode(v int, probe *perf.Probe) {
	f0, f1 := ce.g.Fanins(v)
	probe.LoadHot(rgCut, uint64(v))
	c0 := ce.cuts[f0.Var()]
	c1 := ce.cuts[f1.Var()]
	var merged []Cut
	for _, a := range c0 {
		for _, b := range c1 {
			leaves, ok := mergeLeaves(a.Leaves, b.Leaves, ce.k)
			probe.Branch(brCutMerge, ok)
			// Leaf-set union, dedup hashing and cut-list bookkeeping
			// dominate enumeration cost.
			probe.Ops(240)
			probe.LoopBranches(6)
			probe.LoadHot(rgCut, uint64(f0.Var()))
			if !ok {
				continue
			}
			merged = append(merged, Cut{Leaves: leaves})
		}
	}
	merged = dedupCuts(merged)
	sort.SliceStable(merged, func(i, j int) bool {
		return len(merged[i].Leaves) < len(merged[j].Leaves)
	})
	if len(merged) > ce.maxCuts {
		merged = merged[:ce.maxCuts]
	}
	// Trivial cut last so matching prefers structural cuts.
	merged = append(merged, Cut{Leaves: []int32{int32(v)}})
	ce.cuts[v] = merged
	probe.Ops(len(c0)*len(c1) + 4)
}

// mergeLeaves unions two sorted leaf sets, failing when the union
// exceeds k.
func mergeLeaves(a, b []int32, k int) ([]int32, bool) {
	out := make([]int32, 0, k)
	i, j := 0, 0
	for i < len(a) || j < len(b) {
		var next int32
		switch {
		case i >= len(a):
			next = b[j]
			j++
		case j >= len(b):
			next = a[i]
			i++
		case a[i] < b[j]:
			next = a[i]
			i++
		case a[i] > b[j]:
			next = b[j]
			j++
		default:
			next = a[i]
			i++
			j++
		}
		if len(out) == k {
			return nil, false
		}
		out = append(out, next)
	}
	return out, true
}

// FNV-1a parameters for leaf-set hashing.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// leafHash folds a sorted leaf set into a 64-bit FNV-1a hash,
// replacing the per-cut []byte -> string key the dedup map used to
// allocate in the innermost enumeration loop.
func leafHash(leaves []int32) uint64 {
	h := uint64(fnvOffset64)
	for _, l := range leaves {
		u := uint32(l)
		h = (h ^ uint64(u&0xff)) * fnvPrime64
		h = (h ^ uint64(u>>8&0xff)) * fnvPrime64
		h = (h ^ uint64(u>>16&0xff)) * fnvPrime64
		h = (h ^ uint64(u>>24&0xff)) * fnvPrime64
	}
	return h
}

func dedupCuts(cuts []Cut) []Cut {
	// seen maps leaf-set hash to the index (in out) of the first cut
	// with that hash. On a hash match the leaves are compared exactly,
	// so a collision can never drop a distinct cut — at worst a
	// colliding triple keeps a redundant duplicate, which only wastes
	// a cut slot.
	seen := make(map[uint64]int32, len(cuts))
	out := cuts[:0]
	for _, c := range cuts {
		key := leafHash(c.Leaves)
		if idx, ok := seen[key]; ok && sameLeaves(out[idx].Leaves, c.Leaves) {
			continue
		} else if !ok {
			seen[key] = int32(len(out))
		}
		out = append(out, c)
	}
	return out
}

func sameLeaves(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i, v := range a {
		if b[i] != v {
			return false
		}
	}
	return true
}

// ttScratch is a reusable truth-table memo keyed by node id, built on
// the shared epoch-stamping core (scratch.go): reset is O(1), so the
// innermost mapping loop neither allocates a map per cut nor clears an
// array per call.
type ttScratch struct {
	tt []uint64
	st epochStamps
}

func (s *ttScratch) reset(nvars int) {
	if s.st.reset(nvars) {
		s.tt = make([]uint64, nvars)
	}
}

func (s *ttScratch) get(v int) (uint64, bool) {
	if s.st.has(v) {
		return s.tt[v], true
	}
	return 0, false
}

func (s *ttScratch) set(v int, tt uint64) {
	s.tt[v] = tt
	s.st.stamp(v)
}

// cutTT computes the truth table of variable root over the cut leaves
// (leaf i is truth-table variable i). The cut must be valid: every
// cone path from root terminates at a leaf. sc is the caller's
// reusable memo scratch.
func cutTT(g *aig.Graph, root int, leaves []int32, probe *perf.Probe, sc *ttScratch) uint64 {
	n := len(leaves)
	sc.reset(g.NumVars())
	sc.set(0, 0) // constant-false node
	for i, l := range leaves {
		sc.set(int(l), ttVar(i, n))
	}
	var eval func(v int) uint64
	eval = func(v int) uint64 {
		if tt, ok := sc.get(v); ok {
			return tt
		}
		probe.LoadHot(rgNode, uint64(v))
		probe.LoopBranches(2)
		f0, f1 := g.Fanins(v)
		t0 := eval(f0.Var())
		if f0.IsNeg() {
			t0 = ttNot(t0, n)
		}
		t1 := eval(f1.Var())
		if f1.IsNeg() {
			t1 = ttNot(t1, n)
		}
		tt := t0 & t1
		sc.set(v, tt)
		return tt
	}
	return eval(root)
}
