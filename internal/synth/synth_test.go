package synth

import (
	"math/rand"
	"testing"
	"testing/quick"

	"edacloud/internal/aig"
	"edacloud/internal/designs"
	"edacloud/internal/netlist"
	"edacloud/internal/par"
	"edacloud/internal/perf"
	"edacloud/internal/techlib"
)

var lib = techlib.Default14nm()

// --- truth table machinery ---

func TestTTVarAndCofactors(t *testing.T) {
	for n := 1; n <= 6; n++ {
		for i := 0; i < n; i++ {
			tt := ttVar(i, n)
			for b := 0; b < 1<<uint(n); b++ {
				want := uint64(b >> uint(i) & 1)
				if tt>>uint(b)&1 != want {
					t.Fatalf("ttVar(%d,%d) wrong at row %d", i, n, b)
				}
			}
			if cofactor1(tt, i)&ttMask(n) != ttMask(n) {
				t.Fatalf("cofactor1 of var %d not tautology", i)
			}
			if cofactor0(tt, i)&ttMask(n) != 0 {
				t.Fatalf("cofactor0 of var %d not empty", i)
			}
		}
	}
}

func TestTTDependsAndSupport(t *testing.T) {
	n := 3
	xor01 := ttVar(0, n) ^ ttVar(1, n)
	if !ttDependsOn(xor01, 0, n) || !ttDependsOn(xor01, 1, n) || ttDependsOn(xor01, 2, n) {
		t.Fatal("dependence detection wrong")
	}
	if ttSupportSize(xor01, n) != 2 {
		t.Fatal("support size wrong")
	}
	if ttSupportSize(ttConst(true, n), n) != 0 {
		t.Fatal("constant support not empty")
	}
}

func TestFlipVar(t *testing.T) {
	n := 3
	tt := ttVar(0, n) & ttVar(1, n) // a & b
	flipped := flipVar(tt, 0) & ttMask(n)
	want := ttNot(ttVar(0, n), n) & ttVar(1, n) // !a & b
	if flipped != want {
		t.Fatalf("flipVar: %x want %x", flipped, want)
	}
	if flipVar(flipVar(tt, 1), 1) != tt {
		t.Fatal("flipVar not involutive")
	}
}

// Property: isop covers exactly the onset when no don't-cares exist.
func TestQuickIsopExact(t *testing.T) {
	f := func(raw uint64, nRaw uint8) bool {
		n := int(nRaw%5) + 1
		tt := raw & ttMask(n)
		cubes := isop(tt, 0, n)
		return coverTT(cubes, n) == tt
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: with don't-cares, the cover stays within [onset, onset|dc].
func TestQuickIsopRespectsDontCares(t *testing.T) {
	f := func(rawOn, rawDC uint64, nRaw uint8) bool {
		n := int(nRaw%5) + 1
		on := rawOn & ttMask(n)
		dc := rawDC & ttMask(n) &^ on
		cov := coverTT(isop(on, dc, n), n)
		return cov&on == on && cov&^(on|dc) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestIsopSimpleFunctions(t *testing.T) {
	n := 2
	and := ttVar(0, n) & ttVar(1, n)
	cubes := isop(and, 0, n)
	if len(cubes) != 1 || cubes[0].literals() != 2 {
		t.Fatalf("isop(AND) = %+v", cubes)
	}
	or := ttVar(0, n) | ttVar(1, n)
	cubes = isop(or, 0, n)
	if len(cubes) != 2 {
		t.Fatalf("isop(OR) = %+v", cubes)
	}
	if got := isop(0, 0, n); len(got) != 0 {
		t.Fatalf("isop(0) = %+v", got)
	}
	if coverLiterals(isop(ttMask(n), 0, n)) != 0 {
		t.Fatal("isop(1) should be the empty cube")
	}
}

// --- cut enumeration ---

func TestCutEnumLeafBounds(t *testing.T) {
	g := designs.MustBenchmark("adder", 0.0625)
	ce := newCutEnum(g, 4, 8, nil, nil)
	count := 0
	g.TopoAnds(func(v int, _, _ aig.Lit) {
		for _, c := range ce.Cuts(v) {
			if len(c.Leaves) > 4 {
				t.Fatalf("cut with %d leaves", len(c.Leaves))
			}
			for i := 1; i < len(c.Leaves); i++ {
				if c.Leaves[i] <= c.Leaves[i-1] {
					t.Fatal("cut leaves not sorted")
				}
			}
		}
		count++
	})
	if count == 0 {
		t.Fatal("no AND nodes visited")
	}
}

func TestCutTTMatchesSimulation(t *testing.T) {
	g := aig.New("t")
	a := g.AddInput("a")
	b := g.AddInput("b")
	c := g.AddInput("c")
	x := g.And(a, b.Not())
	y := g.And(x, c)
	_ = y
	tt := cutTT(g, y.Var(), []int32{int32(a.Var()), int32(b.Var()), int32(c.Var())}, nil, new(ttScratch))
	// y = a & !b & c
	want := ttVar(0, 3) & ttNot(ttVar(1, 3), 3) & ttVar(2, 3)
	if tt != want {
		t.Fatalf("cutTT = %x, want %x", tt, want)
	}
}

// --- optimization passes ---

func passPreserves(t *testing.T, name string, pass func(*aig.Graph, *perf.Probe) *aig.Graph) {
	t.Helper()
	for _, bench := range []string{"adder", "bar", "cavlc", "int2float", "priority"} {
		g := designs.MustBenchmark(bench, 0.12)
		opt := pass(g, nil)
		if !aig.Equivalent(g, opt, 1234, 16) {
			t.Fatalf("%s changed function of %s", name, bench)
		}
		if opt.NumInputs() != g.NumInputs() || opt.NumOutputs() != g.NumOutputs() {
			t.Fatalf("%s changed I/O of %s", name, bench)
		}
	}
}

func TestBalancePreservesFunction(t *testing.T) { passPreserves(t, "balance", Balance) }
func TestRewritePreservesFunction(t *testing.T) { passPreserves(t, "rewrite", Rewrite) }
func TestRefactorPreservesFunction(t *testing.T) {
	passPreserves(t, "refactor", Refactor)
}

func TestBalanceReducesRippleDepth(t *testing.T) {
	// A long AND chain must become a balanced tree.
	g := aig.New("chain")
	acc := g.AddInput("x0")
	for i := 1; i < 64; i++ {
		acc = g.And(acc, g.AddInput(""))
	}
	g.AddOutput(acc, "f")
	if d := g.Depth(); d != 63 {
		t.Fatalf("precondition: chain depth %d", d)
	}
	b := Balance(g, nil)
	if d := b.Depth(); d != 6 {
		t.Fatalf("balanced depth = %d, want 6", d)
	}
	if !aig.Equivalent(g, b, 5, 8) {
		t.Fatal("balance broke the chain function")
	}
}

func TestRewriteShrinksRedundantLogic(t *testing.T) {
	// Build f = (a&b) | (a&!b) which simplifies to a.
	g := aig.New("red")
	a := g.AddInput("a")
	b := g.AddInput("b")
	g.AddOutput(g.Or(g.And(a, b), g.And(a, b.Not())), "f")
	rw := Rewrite(g, nil)
	if rw.NumAnds() >= g.NumAnds() {
		t.Fatalf("rewrite did not shrink: %d -> %d ands", g.NumAnds(), rw.NumAnds())
	}
	if !aig.Equivalent(g, rw, 9, 8) {
		t.Fatal("rewrite changed function")
	}
}

func TestQuickPassesPreserveRandomGraphs(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := aig.New("rand")
		lits := []aig.Lit{}
		for i := 0; i < 5; i++ {
			lits = append(lits, g.AddInput(""))
		}
		for i := 0; i < 60; i++ {
			a := lits[rng.Intn(len(lits))].NotIf(rng.Intn(2) == 0)
			b := lits[rng.Intn(len(lits))].NotIf(rng.Intn(2) == 0)
			lits = append(lits, g.And(a, b))
		}
		for i := 0; i < 4; i++ {
			g.AddOutput(lits[len(lits)-1-i], "")
		}
		for _, pass := range []func(*aig.Graph, *perf.Probe) *aig.Graph{Balance, Rewrite, Refactor} {
			if !aig.Equivalent(g, pass(g, nil), seed, 8) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// randAIG builds a seeded random multi-output AIG shaped like a real
// design: each output grows its own random sub-cone over the shared
// inputs with a few cross-links into earlier cones. The block
// structure keeps per-output incremental cone sizes comparable, so
// the graph spans several partitions and the cone-parallel pass paths
// are what the property tests exercise.
func randAIG(seed int64, inputs, andsPerOutput, outputs int) *aig.Graph {
	rng := rand.New(rand.NewSource(seed))
	g := aig.New("rand")
	var ins []aig.Lit
	for i := 0; i < inputs; i++ {
		ins = append(ins, g.AddInput(""))
	}
	var prev []aig.Lit // roots of earlier cones, for cross-links
	for o := 0; o < outputs; o++ {
		lits := append([]aig.Lit(nil), ins...)
		for i := 0; i < 2 && len(prev) > 0; i++ {
			lits = append(lits, prev[rng.Intn(len(prev))])
		}
		// Chain the block so the root's cone spans it; mixing AND, OR
		// and XOR keeps the function balanced instead of collapsing
		// toward a constant.
		acc := lits[rng.Intn(len(lits))]
		for i := 0; i < andsPerOutput; i++ {
			b := lits[rng.Intn(len(lits))].NotIf(rng.Intn(2) == 0)
			switch rng.Intn(3) {
			case 0:
				acc = g.And(acc, b)
			case 1:
				acc = g.Or(acc, b)
			default:
				acc = g.Xor(acc, b)
			}
			lits = append(lits, acc)
		}
		prev = append(prev, acc)
		g.AddOutput(acc.NotIf(rng.Intn(2) == 0), "")
	}
	return g
}

// TestRecipePassesSimEquivOnRandomAIGs is the functional-equivalence
// property behind the parallel rewrite: for seeded random AIGs and
// every standard recipe, each pass's output is SimEquiv to its input.
// This catches miscompiles the bit-identity determinism tests cannot —
// the partitioned path is allowed to differ *structurally* from the
// single-strash serial path, but never *functionally*.
func TestRecipePassesSimEquivOnRandomAIGs(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		g := randAIG(seed, 12, 70, 8)
		if parts := g.PartitionCones(PartitionGrain).NumParts(); parts < 3 {
			t.Fatalf("precondition: random AIG spans %d partitions, want >= 3", parts)
		}
		for _, r := range StandardRecipes {
			cur := g
			for pi, p := range r.Passes {
				next, err := RunPass(cur, p, nil, 0)
				if err != nil {
					t.Fatalf("seed %d recipe %s pass %d: %v", seed, r.Name, pi, err)
				}
				if !aig.SimEquiv(cur, next, seed<<8|int64(pi), 12) {
					t.Fatalf("seed %d recipe %s: pass %d (%v) changed function", seed, r.Name, pi, p)
				}
				cur = next
			}
			if !aig.SimEquiv(g, cur, seed, 12) {
				t.Fatalf("seed %d recipe %s: end-to-end function changed", seed, r.Name)
			}
		}
	}
}

// --- trivial-cut guards ---

// TestUsableCutGuard pins the cut-candidate filter: the old guard's
// `n == 1 && leaves[0] == v` clause was dead behind `n < 2`; the self
// test now covers it, 1-leaf cuts over other variables are legal, and
// any cut containing v itself is rejected whatever its size.
func TestUsableCutGuard(t *testing.T) {
	const v, k = 5, 4
	cases := []struct {
		leaves []int32
		want   bool
		name   string
	}{
		{nil, false, "empty"},
		{[]int32{5}, false, "1-leaf self (the formerly dead clause)"},
		{[]int32{3}, true, "1-leaf non-self"},
		{[]int32{2, 3}, true, "2-leaf"},
		{[]int32{2, 5}, false, "self inside 2-leaf"},
		{[]int32{2, 5, 7}, false, "self inside 3-leaf"},
		{[]int32{1, 2, 3, 4, 6}, false, "oversize"},
	}
	for _, c := range cases {
		if got := usableCut(c.leaves, v, k); got != c.want {
			t.Errorf("%s: usableCut(%v) = %v, want %v", c.name, c.leaves, got, c.want)
		}
	}
}

// TestRebuildSkipsSelfCuts injects cut lists containing only each
// node's trivial self cut — the case the dead guard was meant for. The
// rebuild must skip them all (a self cut would read old2new[v] before
// it is written) and fall back to the structural copy.
func TestRebuildSkipsSelfCuts(t *testing.T) {
	g := designs.MustBenchmark("int2float", 0.12)
	ce := &cutEnum{g: g, k: 4, maxCuts: 1, cuts: make([][]Cut, g.NumVars())}
	g.TopoAnds(func(v int, _, _ aig.Lit) {
		ce.cuts[v] = []Cut{{Leaves: []int32{int32(v)}}}
	})
	ng := rebuildSerial(g, nil, ce, 4, 2, brRewriteGain)
	if !aig.SimEquiv(g, ng, 7, 12) {
		t.Fatal("self-cut-only rebuild changed function")
	}
	if ng.NumAnds() > g.NumAnds() {
		t.Fatalf("self-cut-only rebuild grew the graph: %d > %d", ng.NumAnds(), g.NumAnds())
	}
}

// TestBuildCoverOneLeaf pins the 1-leaf realization the widened guard
// admits: identity collapses to the leaf wire, complement to its
// negation, at zero added nodes.
func TestBuildCoverOneLeaf(t *testing.T) {
	ng := aig.New("t")
	a := ng.AddInput("a")
	id := ttVar(0, 1)
	if lit := buildCover(ng, isop(id, 0, 1), []aig.Lit{a}, id, 1, nil); lit != a {
		t.Fatalf("identity cover = %v, want %v", lit, a)
	}
	neg := ttNot(id, 1) & ttMask(1)
	if lit := buildCover(ng, isop(neg, 0, 1), []aig.Lit{a}, neg, 1, nil); lit != a.Not() {
		t.Fatalf("complement cover = %v, want %v", lit, a.Not())
	}
	if ng.NumAnds() != 0 {
		t.Fatalf("1-leaf covers added %d nodes", ng.NumAnds())
	}
}

// --- recipes ---

func TestRecipeByName(t *testing.T) {
	r, err := RecipeByName("resyn2")
	if err != nil || len(r.Passes) == 0 {
		t.Fatalf("resyn2: %v", err)
	}
	if _, err := RecipeByName("nope"); err == nil {
		t.Fatal("unknown recipe accepted")
	}
	if PassBalance.String() != "balance" || PassKind(99).String() == "" {
		t.Fatal("pass names wrong")
	}
}

func TestRecipesProduceDistinctStructures(t *testing.T) {
	g := designs.MustBenchmark("int2float", 0.25)
	sizes := map[int]bool{}
	for _, r := range StandardRecipes {
		opt, err := Optimize(g, r, nil, nil)
		if err != nil {
			t.Fatalf("%s: %v", r.Name, err)
		}
		if !aig.Equivalent(g, opt, 77, 8) {
			t.Fatalf("recipe %s changed function", r.Name)
		}
		sizes[opt.NumAnds()] = true
	}
	if len(sizes) < 3 {
		t.Errorf("recipes produced only %d distinct sizes; dataset diversity needs more", len(sizes))
	}
}

// --- mapping ---

// netlistEval evaluates a combinational netlist on one input vector.
func netlistEval(t *testing.T, nl *netlist.Netlist, inputs map[string]bool) map[string]bool {
	t.Helper()
	order, err := nl.TopoCells()
	if err != nil {
		t.Fatalf("topo: %v", err)
	}
	val := make([]bool, nl.NumNets())
	for _, pi := range nl.PIs {
		val[pi.Net] = inputs[pi.Name]
	}
	for _, id := range order {
		c := &nl.Cells[id]
		var ins uint16
		for pin, net := range c.Ins {
			if val[net] {
				ins |= 1 << uint(pin)
			}
		}
		if c.Out != netlist.NoNet {
			val[c.Out] = c.Type.Eval(ins)
		}
	}
	out := map[string]bool{}
	for _, po := range nl.POs {
		out[po.Name] = val[po.Net]
	}
	return out
}

func TestMapPreservesFunction(t *testing.T) {
	g := designs.MustBenchmark("adder", 0.0625) // 8-bit adder
	nl, err := MapToCells(g, lib, false, nil)
	if err != nil {
		t.Fatalf("map: %v", err)
	}
	if err := nl.Check(); err != nil {
		t.Fatalf("mapped netlist invalid: %v", err)
	}
	w := g.NumInputs() / 2
	rng := rand.New(rand.NewSource(3))
	sim := aig.NewSimulator(g)
	for trial := 0; trial < 40; trial++ {
		a := uint64(rng.Intn(1 << uint(w)))
		b := uint64(rng.Intn(1 << uint(w)))
		inWords := make([]uint64, g.NumInputs())
		inNames := map[string]bool{}
		for i := 0; i < w; i++ {
			if a>>uint(i)&1 == 1 {
				inWords[i] = ^uint64(0)
				inNames[g.InputName(i)] = true
			}
			if b>>uint(i)&1 == 1 {
				inWords[w+i] = ^uint64(0)
				inNames[g.InputName(w+i)] = true
			}
		}
		want := sim.Run(inWords)
		got := netlistEval(t, nl, inNames)
		for i := 0; i < g.NumOutputs(); i++ {
			name := g.OutputName(i)
			if got[name] != (want[i]&1 == 1) {
				t.Fatalf("trial %d: output %s mismatch", trial, name)
			}
		}
	}
}

func TestMapAfterOptimizationPreservesFunction(t *testing.T) {
	g := designs.MustBenchmark("int2float", 0.25)
	recipe, _ := RecipeByName("resyn2")
	res, err := Synthesize(g, lib, Options{Recipe: recipe})
	if err != nil {
		t.Fatalf("synthesize: %v", err)
	}
	if err := res.Netlist.Check(); err != nil {
		t.Fatalf("netlist invalid: %v", err)
	}
	// Compare mapped netlist against the original AIG on random vectors.
	rng := rand.New(rand.NewSource(8))
	sim := aig.NewSimulator(g)
	for trial := 0; trial < 25; trial++ {
		inWords := make([]uint64, g.NumInputs())
		inNames := map[string]bool{}
		for i := range inWords {
			if rng.Intn(2) == 0 {
				inWords[i] = ^uint64(0)
				inNames[g.InputName(i)] = true
			}
		}
		want := sim.Run(inWords)
		got := netlistEval(t, res.Netlist, inNames)
		for i := 0; i < g.NumOutputs(); i++ {
			if got[g.OutputName(i)] != (want[i]&1 == 1) {
				t.Fatalf("trial %d output %d mismatch", trial, i)
			}
		}
	}
}

func TestMapRegisteredOutputs(t *testing.T) {
	g := designs.MustBenchmark("priority", 0.0625)
	res, err := Synthesize(g, lib, Options{RegisterOutputs: true})
	if err != nil {
		t.Fatal(err)
	}
	nl := res.Netlist
	if err := nl.Check(); err != nil {
		t.Fatalf("netlist invalid: %v", err)
	}
	if nl.NumSeq() != g.NumOutputs() {
		t.Fatalf("DFF count %d, want %d", nl.NumSeq(), g.NumOutputs())
	}
	// A clk PI must exist.
	found := false
	for _, pi := range nl.PIs {
		if pi.Name == "clk" {
			found = true
		}
	}
	if !found {
		t.Fatal("no clk input")
	}
}

func TestMapConstantOutput(t *testing.T) {
	g := aig.New("const")
	a := g.AddInput("a")
	g.AddOutput(aig.False, "zero")
	g.AddOutput(aig.True, "one")
	g.AddOutput(a, "thru")
	nl, err := MapToCells(g, lib, false, nil)
	if err != nil {
		t.Fatalf("map: %v", err)
	}
	if err := nl.Check(); err != nil {
		t.Fatalf("invalid: %v", err)
	}
	got := netlistEval(t, nl, map[string]bool{"a": true})
	if got["zero"] != false || got["one"] != true || got["thru"] != true {
		t.Fatalf("constant outputs wrong: %v", got)
	}
}

func TestSynthesizeReportPhases(t *testing.T) {
	g := designs.MustBenchmark("cavlc", 0.2)
	probe := perf.NewProbe(perf.DefaultProbeConfig())
	recipe, _ := RecipeByName("resyn")
	res, err := Synthesize(g, lib, Options{Recipe: recipe, StageConfig: par.StageConfig{Probe: probe}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Report.Phases) != len(recipe.Passes)+1 {
		t.Fatalf("phases = %d, want %d", len(res.Report.Phases), len(recipe.Passes)+1)
	}
	total := res.Report.Total()
	if total.Instrs == 0 || total.Branches == 0 || total.Loads == 0 {
		t.Fatalf("report empty: %+v", total)
	}
	// Synthesis runtime must shrink with more vCPUs but far from
	// linearly (the paper's Fig. 2d shape).
	s1 := perf.Xeon14(1).Seconds(res.Report)
	s8 := perf.Xeon14(8).Seconds(res.Report)
	if s8 >= s1 {
		t.Fatalf("no scaling: %g vs %g", s1, s8)
	}
	if s1/s8 > 3 {
		t.Fatalf("synthesis scales too well: %.2fx", s1/s8)
	}
}

func TestMapperRejectsBadLibrary(t *testing.T) {
	empty := techlib.NewLibrary("empty", nil)
	g := designs.MustBenchmark("adder", 0.05)
	if _, err := MapToCells(g, empty, false, nil); err == nil {
		t.Fatal("mapping against empty library should fail")
	}
}

func TestAreaMappingSavesArea(t *testing.T) {
	for _, bench := range []string{"int2float", "cavlc", "adder"} {
		g := designs.MustBenchmark(bench, 0.2)
		delayNL, err := MapToCellsObjective(g, lib, false, MapDelay, nil)
		if err != nil {
			t.Fatalf("%s delay map: %v", bench, err)
		}
		areaNL, err := MapToCellsObjective(g, lib, false, MapArea, nil)
		if err != nil {
			t.Fatalf("%s area map: %v", bench, err)
		}
		if err := areaNL.Check(); err != nil {
			t.Fatalf("%s: area-mapped netlist invalid: %v", bench, err)
		}
		if areaNL.Area() > delayNL.Area()*1.001 {
			t.Errorf("%s: area mapping (%.1f) larger than delay mapping (%.1f)",
				bench, areaNL.Area(), delayNL.Area())
		}
	}
}

func TestAreaMappingPreservesFunction(t *testing.T) {
	g := designs.MustBenchmark("adder", 0.0625)
	nl, err := MapToCellsObjective(g, lib, false, MapArea, nil)
	if err != nil {
		t.Fatal(err)
	}
	sim := aig.NewSimulator(g)
	rng := rand.New(rand.NewSource(17))
	w := g.NumInputs() / 2
	for trial := 0; trial < 20; trial++ {
		a := uint64(rng.Intn(1 << uint(w)))
		b := uint64(rng.Intn(1 << uint(w)))
		inWords := make([]uint64, g.NumInputs())
		inNames := map[string]bool{}
		for i := 0; i < w; i++ {
			if a>>uint(i)&1 == 1 {
				inWords[i] = ^uint64(0)
				inNames[g.InputName(i)] = true
			}
			if b>>uint(i)&1 == 1 {
				inWords[w+i] = ^uint64(0)
				inNames[g.InputName(w+i)] = true
			}
		}
		want := sim.Run(inWords)
		got := netlistEval(t, nl, inNames)
		for i := 0; i < g.NumOutputs(); i++ {
			if got[g.OutputName(i)] != (want[i]&1 == 1) {
				t.Fatalf("area-mapped function differs at output %d", i)
			}
		}
	}
}
