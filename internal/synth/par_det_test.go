package synth

import (
	"bytes"
	"reflect"
	"testing"

	"edacloud/internal/aig"
	"edacloud/internal/designs"
	"edacloud/internal/netlist"
	"edacloud/internal/par"
	"edacloud/internal/perf"
	"edacloud/internal/techlib"
)

// TestCutEnumDeterministicAcrossWorkers: the level-parallel cut
// enumeration must produce exactly the cut lists of a 1-worker run —
// and, because probe shards are statically assigned, exactly the same
// simulated counters — at 1, 2 and 8 workers.
func TestCutEnumDeterministicAcrossWorkers(t *testing.T) {
	g := designs.MustBenchmark("cavlc", 0.25)
	run := func(workers int) ([][]Cut, perf.Counters) {
		probe := perf.NewProbe(perf.DefaultProbeConfig())
		ce := newCutEnum(g, 3, 8, probe, par.Fixed(workers))
		return ce.cuts, probe.Counters()
	}
	wantCuts, wantCounters := run(1)
	for _, w := range []int{2, 8} {
		cuts, counters := run(w)
		if !reflect.DeepEqual(cuts, wantCuts) {
			t.Fatalf("workers=%d: cut lists differ from serial", w)
		}
		if counters != wantCounters {
			t.Fatalf("workers=%d: counters %+v, want %+v", w, counters, wantCounters)
		}
	}
}

// TestSynthesizeDeterministicAcrossWorkers: the full synthesis flow
// (recipe passes + mapping over parallel cut enumeration) must emit an
// identical netlist for every worker count.
func TestSynthesizeDeterministicAcrossWorkers(t *testing.T) {
	lib := techlib.Default14nm()
	g := designs.MustBenchmark("int2float", 0.5)
	recipe, err := RecipeByName("resyn")
	if err != nil {
		t.Fatal(err)
	}
	run := func(workers int) *netlist.Netlist {
		res, err := Synthesize(g.Clone(), lib, Options{Recipe: recipe, StageConfig: par.StageConfig{Workers: workers}})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return res.Netlist
	}
	want := run(1)
	for _, w := range []int{2, 8} {
		if got := run(w); !reflect.DeepEqual(got, want) {
			gs, ws := got.Stats(), want.Stats()
			t.Fatalf("workers=%d: netlist differs from serial (%+v vs %+v)", w, gs, ws)
		}
	}
}

// TestPassesDeterministicAcrossWorkers: the cone-parallel
// rewrite/refactor/balance must emit bit-identical graphs — and,
// because partitions are statically assigned to probe shards,
// identical simulated counters — at 1, 2 and 8 workers. The design is
// large enough to split into many partitions, so the partitioned path
// (private shard strash tables + ordered merge) is what's under test.
func TestPassesDeterministicAcrossWorkers(t *testing.T) {
	g := designs.MustEvalDesign("ibex", 0.03)
	if parts := g.PartitionCones(PartitionGrain).NumParts(); parts < 2 {
		t.Fatalf("precondition: design should span multiple partitions, got %d", parts)
	}
	for _, pass := range []PassKind{PassBalance, PassRewrite, PassRefactor} {
		run := func(workers int) ([]byte, perf.Counters) {
			probe := perf.NewProbe(perf.DefaultProbeConfig())
			ng, err := RunPass(g, pass, probe, workers)
			if err != nil {
				t.Fatalf("%v workers=%d: %v", pass, workers, err)
			}
			if !aig.SimEquiv(g, ng, 321, 12) {
				t.Fatalf("%v workers=%d: changed function", pass, workers)
			}
			var buf bytes.Buffer
			if err := ng.WriteASCII(&buf); err != nil {
				t.Fatal(err)
			}
			return buf.Bytes(), probe.Counters()
		}
		wantGraph, wantCounters := run(1)
		for _, w := range []int{2, 8} {
			gotGraph, gotCounters := run(w)
			if !bytes.Equal(gotGraph, wantGraph) {
				t.Fatalf("%v: workers=%d graph differs from serial", pass, w)
			}
			if gotCounters != wantCounters {
				t.Fatalf("%v: workers=%d counters %+v, want %+v", pass, w, gotCounters, wantCounters)
			}
		}
	}
}

// TestLeafHashDistinguishesCuts guards the FNV dedup key against the
// obvious aliasing mistakes (permuted and shifted leaf sets).
func TestLeafHashDistinguishesCuts(t *testing.T) {
	cases := [][]int32{
		{1, 2, 3},
		{1, 2, 4},
		{2, 3},
		{3, 2, 1},
		{1, 2},
		{258, 3}, // byte-boundary alias of {2, 3} under naive folding
	}
	seen := map[uint64][]int32{}
	for _, c := range cases {
		h := leafHash(c)
		if prev, ok := seen[h]; ok {
			t.Fatalf("hash collision: %v and %v", prev, c)
		}
		seen[h] = c
	}
	if leafHash([]int32{1, 2, 3}) != leafHash([]int32{1, 2, 3}) {
		t.Fatal("hash not stable")
	}
}
