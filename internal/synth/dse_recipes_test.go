package synth_test

// Extends the PR 5 recipe property suite from the hand-written
// StandardRecipes to the recipes the DSE autopilot samples: any pass
// sequence up to the sampler's length bound, over random seeds. The
// external test package breaks the synth -> dse import cycle; the
// random-AIG generator is the synth_test one, reproduced here because
// it is unexported there.

import (
	"math/rand"
	"testing"

	"edacloud/internal/aig"
	"edacloud/internal/dse"
	"edacloud/internal/par"
	"edacloud/internal/synth"
	"edacloud/internal/techlib"
)

func randAIG(seed int64, inputs, andsPerOutput, outputs int) *aig.Graph {
	rng := rand.New(rand.NewSource(seed))
	g := aig.New("rand")
	var ins []aig.Lit
	for i := 0; i < inputs; i++ {
		ins = append(ins, g.AddInput(""))
	}
	var prev []aig.Lit
	for o := 0; o < outputs; o++ {
		lits := append([]aig.Lit(nil), ins...)
		for i := 0; i < 2 && len(prev) > 0; i++ {
			lits = append(lits, prev[rng.Intn(len(prev))])
		}
		acc := lits[rng.Intn(len(lits))]
		for i := 0; i < andsPerOutput; i++ {
			b := lits[rng.Intn(len(lits))].NotIf(rng.Intn(2) == 0)
			switch rng.Intn(3) {
			case 0:
				acc = g.And(acc, b)
			case 1:
				acc = g.Or(acc, b)
			default:
				acc = g.Xor(acc, b)
			}
			lits = append(lits, acc)
		}
		prev = append(prev, acc)
		g.AddOutput(acc.NotIf(rng.Intn(2) == 0), "")
	}
	return g
}

// TestDSESampledRecipesSimEquivAndWorkerInvariant: every recipe the
// DSE sampler emits — arbitrary balance/rewrite/refactor sequences,
// not just the curated StandardRecipes — must uphold the synthesis
// contracts the rest of the stack assumes: each pass preserves the
// function (SimEquiv against its input), and the mapped QoR is
// identical at workers 1, 2 and 8.
func TestDSESampledRecipesSimEquivAndWorkerInvariant(t *testing.T) {
	lib := techlib.Default14nm()
	params := dse.SampleParams(dse.Config{MaxPasses: 6}, 42, 12)
	seen := map[string]bool{}
	for seed := int64(1); seed <= 3; seed++ {
		g := randAIG(seed, 12, 70, 8)
		for _, p := range params {
			r := p.Recipe()
			if seed == 1 {
				seen[r.Name] = true
			}
			cur := g
			for pi, pass := range r.Passes {
				next, err := synth.RunPass(cur, pass, nil, 0)
				if err != nil {
					t.Fatalf("seed %d recipe %s pass %d: %v", seed, r.Name, pi, err)
				}
				if !aig.SimEquiv(cur, next, seed<<8|int64(pi), 12) {
					t.Fatalf("seed %d recipe %s: pass %d (%v) changed function", seed, r.Name, pi, pass)
				}
				cur = next
			}
			if !aig.SimEquiv(g, cur, seed, 12) {
				t.Fatalf("seed %d recipe %s: end-to-end function changed", seed, r.Name)
			}

			cells, fp := -1, uint64(0)
			for _, w := range []int{1, 2, 8} {
				res, err := synth.Synthesize(g, lib, synth.Options{
					Recipe:      r,
					StageConfig: par.StageConfig{Workers: w},
				})
				if err != nil {
					t.Fatalf("seed %d recipe %s workers %d: %v", seed, r.Name, w, err)
				}
				if cells < 0 {
					cells, fp = res.Netlist.NumCells(), res.Netlist.Fingerprint()
					continue
				}
				if res.Netlist.NumCells() != cells || res.Netlist.Fingerprint() != fp {
					t.Fatalf("seed %d recipe %s: QoR diverged at workers %d: %d cells/fp %x vs %d/%x",
						seed, r.Name, w, res.Netlist.NumCells(), res.Netlist.Fingerprint(), cells, fp)
				}
			}
		}
	}
	if len(seen) < 6 {
		t.Fatalf("sampler emitted only %d distinct recipes of 12 draws; prior too narrow", len(seen))
	}
}
