// Package synth is the logic-synthesis engine: AIG optimization passes
// (tree balancing, cut-based rewriting, cone refactoring) and a
// polarity-aware, cut-based technology mapper targeting a standard-cell
// library. Together with the optimization recipes in recipes.go it
// substitutes for the commercial synthesis tool in the paper's flow,
// and its pass structure (iterative, globally serialized netlist
// transformations) is what gives synthesis the poor multi-core scaling
// the paper reports.
package synth

import (
	"sort"

	"edacloud/internal/aig"
	"edacloud/internal/perf"
)

// Balance rebuilds every maximal AND-tree as a depth-balanced tree,
// pairing the shallowest operands first (Huffman order). It preserves
// function and typically reduces depth at equal or smaller size.
func Balance(g *aig.Graph, probe *perf.Probe) *aig.Graph {
	ng := aig.New(g.Name)
	old2new := make([]aig.Lit, g.NumVars())
	old2new[0] = aig.False
	// Incrementally tracked levels of the new graph's variables.
	lvl := make([]int32, 1, g.NumVars())
	for i, v := range g.InputVars() {
		old2new[v] = ng.AddInput(g.InputName(i))
		lvl = append(lvl, 0)
	}
	// andL creates an AND keeping lvl in sync (strash hits reuse the
	// recorded level of the existing node).
	andL := func(a, b aig.Lit) aig.Lit {
		l := ng.And(a, b)
		if v := l.Var(); v == len(lvl) {
			la, lb := lvl[a.Var()], lvl[b.Var()]
			if lb > la {
				la = lb
			}
			lvl = append(lvl, la+1)
		}
		return l
	}
	fanout := g.FanoutCounts()

	// gather collects the leaves of the maximal AND-tree rooted at var
	// v: the tree descends through uncomplemented, single-fanout AND
	// children (the classical balancing scope).
	var gather func(l aig.Lit, root bool, leaves *[]aig.Lit)
	gather = func(l aig.Lit, root bool, leaves *[]aig.Lit) {
		v := l.Var()
		probe.LoadHot(rgNode, uint64(v))
		probe.LoopBranches(3)
		expand := g.IsAnd(v) && !l.IsNeg() && (root || fanout[v] == 1)
		probe.Branch(brBalanceExpand, expand)
		if !expand {
			*leaves = append(*leaves, old2new[v].NotIf(l.IsNeg()))
			return
		}
		f0, f1 := g.Fanins(v)
		gather(f0, false, leaves)
		gather(f1, false, leaves)
	}

	levelOf := func(l aig.Lit) int32 { return lvl[l.Var()] }

	g.TopoAnds(func(v int, f0, f1 aig.Lit) {
		var leaves []aig.Lit
		gather(aig.MakeLit(v, false), true, &leaves)
		old2new[v] = balancedAnd(andL, levelOf, leaves, probe)
		probe.Ops(2)
	})
	for i, o := range g.Outputs() {
		ng.AddOutput(old2new[o.Var()].NotIf(o.IsNeg()), g.OutputName(i))
	}
	swept, _ := ng.Sweep()
	swept.Name = g.Name
	return swept
}

// balancedAnd conjoins leaves pairing minimum-level operands first. The
// and function must keep level bookkeeping in sync so levelOf is valid
// for freshly created nodes.
func balancedAnd(and func(a, b aig.Lit) aig.Lit, levelOf func(aig.Lit) int32, leaves []aig.Lit, probe *perf.Probe) aig.Lit {
	switch len(leaves) {
	case 0:
		return aig.True
	case 1:
		return leaves[0]
	}
	sort.Slice(leaves, func(i, j int) bool { return levelOf(leaves[i]) < levelOf(leaves[j]) })
	work := append([]aig.Lit(nil), leaves...)
	for len(work) > 1 {
		probe.Ops(4)
		n := and(work[0], work[1])
		work = work[1:]
		work[0] = n
		// Restore order by sinking the new node to its level position.
		for i := 0; i+1 < len(work); i++ {
			worse := levelOf(work[i]) > levelOf(work[i+1])
			probe.Branch(brBalanceSink, worse)
			if !worse {
				break
			}
			work[i], work[i+1] = work[i+1], work[i]
		}
	}
	return work[0]
}

// Hot-window probe regions. Synthesis works on a bounded active set —
// the cone under transformation plus the hot end of the hash table —
// which is what keeps its cache-miss rate low in the paper's Fig. 2b.
const (
	rgNode   = 0 // node records of the active window
	rgStrash = 1 // structural-hash buckets
	rgCut    = 2 // priority-cut storage
)

// Branch-site identifiers.
const (
	brBalanceExpand = uint64(0x01)
	brBalanceSink   = uint64(0x02)
	brRewriteGain   = uint64(0x03)
	brRefactorGain  = uint64(0x04)
	brMapChoice     = uint64(0x05)
	brCutMerge      = uint64(0x06)
)

// strashIdx spreads a fanin-pair key over hash buckets.
func strashIdx(key uint64) uint64 { return key * 0x9E3779B97F4A7C15 >> 20 }
