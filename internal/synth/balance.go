// Package synth is the logic-synthesis engine: AIG optimization passes
// (tree balancing, cut-based rewriting, cone refactoring) and a
// polarity-aware, cut-based technology mapper targeting a standard-cell
// library. Together with the optimization recipes in recipes.go it
// substitutes for the commercial synthesis tool in the paper's flow.
// The passes rebuild the netlist cone-parallel over a partitioned
// structural hash table (see rewrite.go), so synthesis scales with
// cores up to its serial merge/sweep fraction — the measured version
// of the poor-but-nonzero multi-core scaling the paper reports.
package synth

import (
	"sort"

	"edacloud/internal/aig"
	"edacloud/internal/par"
	"edacloud/internal/perf"
)

// Balance rebuilds every maximal AND-tree as a depth-balanced tree,
// pairing the shallowest operands first (Huffman order). It preserves
// function and typically reduces depth at equal or smaller size.
//
// Multi-cone graphs balance cone-parallel over a partitioned strash:
// each partition rebuilds its owned trees into a private shard graph,
// estimating foreign-leaf depths from the source graph's levels, and
// the shards merge in deterministic partition order (see rewrite.go).
func Balance(g *aig.Graph, probe *perf.Probe) *aig.Graph {
	ng, _ := balancePool(g, probe, par.Default())
	return ng
}

// balancePool is Balance with an explicit worker pool, also reporting
// the pass's parallel structure.
func balancePool(g *aig.Graph, probe *perf.Probe, pool *par.Pool) (*aig.Graph, passStats) {
	cp := partitionAccounted(g, probe)
	if cp.NumParts() <= 1 {
		return balanceSerial(g, probe), passStats{chunks: 1}
	}
	// Freeze the lazily memoized fanout counts and levels before the
	// parallel region; workers read them concurrently.
	fanout := g.FanoutCounts()
	srcLv := g.Levels()

	shards, parInstrs := forPartitions(probe, pool, cp.NumParts(), func(pi int, sc *shardScratch, probe *perf.Probe) shardBuild {
		return balancePartition(g, cp, pi, fanout, srcLv, sc, probe)
	})

	ng := mergeShards(g, cp, shards, probe)
	return ng, passStats{chunks: cp.NumParts(), parallelInstrs: parInstrs}
}

// balanceSerial is the single-cone path: one output graph, one strash
// table, exact incremental levels for every operand.
func balanceSerial(g *aig.Graph, probe *perf.Probe) *aig.Graph {
	ng := aig.New(g.Name)
	var o2n litMap
	o2n.reset(g.NumVars())
	o2n.set(0, aig.False)
	// Incrementally tracked levels of the new graph's variables. Seed
	// with the inputs only and let append grow it: balancing shrinks or
	// preserves size, so reserving g.NumVars() up front over-commits.
	lvl := make([]int32, 1, g.NumInputs()+1)
	for i, v := range g.InputVars() {
		o2n.set(v, ng.AddInput(g.InputName(i)))
		lvl = append(lvl, 0)
	}
	bb := &balancer{g: g, ng: ng, old2new: &o2n, lvl: lvl, fanout: g.FanoutCounts()}
	g.TopoAnds(func(v int, f0, f1 aig.Lit) {
		bb.balanceNode(v, probe)
	})
	for i, o := range g.Outputs() {
		ng.AddOutput(o2n.get(o.Var()).NotIf(o.IsNeg()), g.OutputName(i))
	}
	return sweepAccounted(ng, g.Name, probe)
}

// balancePartition rebalances the AND-trees owned by partition pi into
// a fresh shard graph. Foreign leaves (only ever direct fanins of
// owned nodes: a single-fanout child of an owned node is reachable
// solely through it and is therefore owned too) become placeholder
// inputs whose level is taken from the source graph — the best
// available estimate of their merged depth.
func balancePartition(g *aig.Graph, cp *aig.ConePartitioning, pi int, fanout, srcLv []int32, sc *shardScratch, probe *perf.Probe) shardBuild {
	part := cp.Parts[pi]
	sg, leafVars := beginShard(g, cp, pi, nil, 0, 0, sc)
	lvl := make([]int32, 1, len(part.Nodes)+len(leafVars)+1)
	for _, lv := range leafVars {
		lvl = append(lvl, srcLv[lv])
	}
	bb := &balancer{g: g, ng: sg, old2new: &sc.o2n, lvl: lvl, fanout: fanout}
	for _, v := range part.Nodes {
		bb.balanceNode(int(v), probe)
	}
	return shardBuild{sg: sg, leafVars: leafVars, owned: ownedLits(cp, pi, &sc.o2n)}
}

// balancer carries the shared state of one balance target (the whole
// graph on the serial path, one shard on the partitioned path).
type balancer struct {
	g, ng   *aig.Graph
	old2new *litMap
	lvl     []int32 // levels of ng's variables, tracked incrementally
	fanout  []int32 // fanout counts of the *source* graph
}

// andL creates an AND keeping lvl in sync (strash hits reuse the
// recorded level of the existing node).
func (bb *balancer) andL(a, b aig.Lit) aig.Lit {
	l := bb.ng.And(a, b)
	if v := l.Var(); v == len(bb.lvl) {
		la, lb := bb.lvl[a.Var()], bb.lvl[b.Var()]
		if lb > la {
			la = lb
		}
		bb.lvl = append(bb.lvl, la+1)
	}
	return l
}

// gather collects the leaves of the maximal AND-tree rooted at l: the
// tree descends through uncomplemented, single-fanout AND children
// (the classical balancing scope).
func (bb *balancer) gather(l aig.Lit, root bool, leaves *[]aig.Lit, probe *perf.Probe) {
	v := l.Var()
	probe.LoadHot(rgNode, uint64(v))
	probe.LoopBranches(3)
	expand := bb.g.IsAnd(v) && !l.IsNeg() && (root || bb.fanout[v] == 1)
	probe.Branch(brBalanceExpand, expand)
	if !expand {
		*leaves = append(*leaves, bb.old2new.get(v).NotIf(l.IsNeg()))
		return
	}
	f0, f1 := bb.g.Fanins(v)
	bb.gather(f0, false, leaves, probe)
	bb.gather(f1, false, leaves, probe)
}

// balanceNode rebuilds the maximal AND-tree rooted at v as a
// depth-balanced tree in bb.ng.
func (bb *balancer) balanceNode(v int, probe *perf.Probe) {
	var leaves []aig.Lit
	bb.gather(aig.MakeLit(v, false), true, &leaves, probe)
	bb.old2new.set(v, balancedAnd(bb.andL, func(l aig.Lit) int32 { return bb.lvl[l.Var()] }, leaves, probe))
	probe.Ops(2)
}

// balancedAnd conjoins leaves pairing minimum-level operands first. The
// and function must keep level bookkeeping in sync so levelOf is valid
// for freshly created nodes.
func balancedAnd(and func(a, b aig.Lit) aig.Lit, levelOf func(aig.Lit) int32, leaves []aig.Lit, probe *perf.Probe) aig.Lit {
	switch len(leaves) {
	case 0:
		return aig.True
	case 1:
		return leaves[0]
	}
	sort.Slice(leaves, func(i, j int) bool { return levelOf(leaves[i]) < levelOf(leaves[j]) })
	work := append([]aig.Lit(nil), leaves...)
	for len(work) > 1 {
		probe.Ops(4)
		n := and(work[0], work[1])
		work = work[1:]
		work[0] = n
		// Restore order by sinking the new node to its level position.
		for i := 0; i+1 < len(work); i++ {
			worse := levelOf(work[i]) > levelOf(work[i+1])
			probe.Branch(brBalanceSink, worse)
			if !worse {
				break
			}
			work[i], work[i+1] = work[i+1], work[i]
		}
	}
	return work[0]
}

// Hot-window probe regions. Synthesis works on a bounded active set —
// the cone under transformation plus the hot end of the hash table —
// which is what keeps its cache-miss rate low in the paper's Fig. 2b.
const (
	rgNode   = 0 // node records of the active window
	rgStrash = 1 // structural-hash buckets
	rgCut    = 2 // priority-cut storage
)

// Branch-site identifiers.
const (
	brBalanceExpand = uint64(0x01)
	brBalanceSink   = uint64(0x02)
	brRewriteGain   = uint64(0x03)
	brRefactorGain  = uint64(0x04)
	brMapChoice     = uint64(0x05)
	brCutMerge      = uint64(0x06)
)

// strashIdx spreads a fanin-pair key over hash buckets.
func strashIdx(key uint64) uint64 { return key * 0x9E3779B97F4A7C15 >> 20 }
