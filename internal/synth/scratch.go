package synth

import (
	"edacloud/internal/aig"
	"edacloud/internal/ints"
	"edacloud/internal/par"
	"edacloud/internal/perf"
)

// This file holds the pooled per-worker scratch of the cone-parallel
// rebuild paths. Every partition needs three var-indexed maps — the
// original-variable -> shard-literal map, the foreign-leaf mark set and
// the truth-table memo — and allocating them dense per partition made
// total shard memory O(NumVars^2 / PartitionGrain): a latent quadratic
// that only bites at million-gate scale. All three now share one
// epoch-stamped backing per probe shard, reset in O(1) between
// partitions, so a pass allocates O(ProbeShards * NumVars) scratch
// total and each partition retains only its own compact result.

// epochStamps is the shared epoch-stamping core: a var-indexed
// membership set whose reset is O(1) (bump the epoch) instead of O(n)
// (clear the array). ttScratch, litMap and the leaf-mark set all build
// on it.
type epochStamps struct {
	epoch []uint32
	cur   uint32
}

// reset prepares the set for n variables and empties it, reporting
// whether the backing array was (re)allocated so sibling value arrays
// can grow in lockstep.
func (s *epochStamps) reset(n int) (grown bool) {
	if len(s.epoch) < n {
		s.epoch = make([]uint32, n)
		s.cur = 0
		grown = true
	}
	s.cur++
	if s.cur == 0 { // epoch counter wrapped: invalidate everything
		for i := range s.epoch {
			s.epoch[i] = 0
		}
		s.cur = 1
	}
	return grown
}

func (s *epochStamps) has(v int) bool { return s.epoch[v] == s.cur }
func (s *epochStamps) stamp(v int)    { s.epoch[v] = s.cur }

// litMap is an epoch-stamped variable -> literal map with the same
// semantics as the dense zero-initialized arrays it replaces: absent
// entries read as 0 (aig.False), which callers treat as "unmapped" for
// any variable other than the constant.
type litMap struct {
	val []aig.Lit
	st  epochStamps
}

func (m *litMap) reset(nvars int) {
	if m.st.reset(nvars) {
		m.val = make([]aig.Lit, nvars)
	}
}

func (m *litMap) get(v int) aig.Lit {
	if m.st.has(v) {
		return m.val[v]
	}
	return 0
}

func (m *litMap) set(v int, l aig.Lit) {
	m.val[v] = l
	m.st.stamp(v)
}

// shardScratch is one worker's pooled rebuild scratch: the literal map,
// the foreign-leaf mark set and the truth-table memo. forPartitions
// hands each probe shard its own instance, and since a shard's
// partitions run on a single goroutine in ascending order, reuse is
// race-free and deterministic.
type shardScratch struct {
	o2n  litMap
	mark epochStamps
	tts  ttScratch
}

// forPartitions runs build over every cone partition inside an
// instrumented parallel region, handing each invocation the pooled
// scratch of its probe shard, and reports the instructions retired in
// the region. It is the one shared driver of the rewrite and balance
// partitioned paths.
func forPartitions(probe *perf.Probe, pool *par.Pool, n int, build func(pi int, sc *shardScratch, probe *perf.Probe) shardBuild) ([]shardBuild, uint64) {
	instrsBefore := probe.Counters().Instrs
	shards := make([]shardBuild, n)
	scratch := make([]shardScratch, ints.Min(par.ProbeShards, n))
	pool.ForProbe(probe, n, 1, func(lo, hi, shard int, probe *perf.Probe) {
		sc := &scratch[shard]
		for pi := lo; pi < hi; pi++ {
			shards[pi] = build(pi, sc, probe)
		}
	})
	return shards, probe.Counters().Instrs - instrsBefore
}

// beginShard starts partition pi's private shard graph: it collects the
// foreign-leaf set, resets the pooled literal map and maps the constant
// and the placeholder inputs (ascending original-variable order). The
// caller rebuilds the partition's owned nodes through sc.o2n and then
// compacts the result with ownedLits.
func beginShard(g *aig.Graph, cp *aig.ConePartitioning, pi int, cuts *cutEnum, k, tryCuts int, sc *shardScratch) (*aig.Graph, []int32) {
	leafVars := partitionLeaves(g, cp, pi, cuts, k, tryCuts, &sc.mark)
	sg := aig.New(g.Name)
	sc.o2n.reset(g.NumVars())
	sc.o2n.set(0, aig.False)
	for _, lv := range leafVars {
		sc.o2n.set(int(lv), sg.AddInput(""))
	}
	return sg, leafVars
}

// ownedLits compacts the pooled literal map into the only per-partition
// state retained until the merge: the shard literal of each owned node,
// parallel to cp.Parts[pi].Nodes. Its size is the partition's, not the
// graph's.
func ownedLits(cp *aig.ConePartitioning, pi int, o2n *litMap) []aig.Lit {
	part := cp.Parts[pi]
	out := make([]aig.Lit, len(part.Nodes))
	for i, v := range part.Nodes {
		out[i] = o2n.get(int(v))
	}
	return out
}
