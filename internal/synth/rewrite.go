package synth

import (
	"edacloud/internal/aig"
	"edacloud/internal/par"
	"edacloud/internal/perf"
)

// Rewrite performs cut-based resubstitution: every node's 4-feasible
// cuts are evaluated as truth tables, an irredundant sum-of-products
// implementation is rebuilt over the cut leaves in the output graph,
// and the cheapest realization (measured in actually-added nodes,
// strashing included) wins. Dead logic left behind by replaced
// realizations is swept at the end.
func Rewrite(g *aig.Graph, probe *perf.Probe) *aig.Graph {
	return rewritePool(g, probe, par.Default())
}

// rewritePool is Rewrite with an explicit worker pool for its cut
// enumeration.
func rewritePool(g *aig.Graph, probe *perf.Probe, pool *par.Pool) *aig.Graph {
	return rebuildWithCuts(g, probe, pool, 4, 6, 2, brRewriteGain)
}

// Refactor is Rewrite with one large cut per node (up to 6 leaves),
// the classical coarse-grained companion pass: it collapses bigger
// cones and resynthesizes them from their ISOP factorization.
func Refactor(g *aig.Graph, probe *perf.Probe) *aig.Graph {
	return refactorPool(g, probe, par.Default())
}

// refactorPool is Refactor with an explicit worker pool for its cut
// enumeration.
func refactorPool(g *aig.Graph, probe *perf.Probe, pool *par.Pool) *aig.Graph {
	return rebuildWithCuts(g, probe, pool, 6, 4, 1, brRefactorGain)
}

// rebuildWithCuts reconstructs g node by node, trying up to tryCuts
// non-trivial cuts of size <= k per node and keeping the cheapest
// realization.
func rebuildWithCuts(g *aig.Graph, probe *perf.Probe, pool *par.Pool, k, maxCuts, tryCuts int, brSite uint64) *aig.Graph {
	ng := aig.New(g.Name)
	old2new := make([]aig.Lit, g.NumVars())
	old2new[0] = aig.False
	for i, v := range g.InputVars() {
		old2new[v] = ng.AddInput(g.InputName(i))
	}
	cuts := newCutEnum(g, k, maxCuts, probe, pool)
	var tts ttScratch
	// Fresh node records are compulsory misses, one cache line per four
	// 16-byte records.
	coldCredit := 0
	coldNodes := func(n int) {
		coldCredit += n
		if coldCredit >= 4 {
			probe.LoadCold(coldCredit / 4)
			coldCredit %= 4
		}
	}

	g.TopoAnds(func(v int, f0, f1 aig.Lit) {
		probe.LoadHot(rgNode, uint64(v))
		probe.LoadHot(rgStrash, strashIdx(uint64(f0)<<32|uint64(f1)))
		probe.LoopBranches(8)

		// Baseline: direct structural copy.
		a := old2new[f0.Var()].NotIf(f0.IsNeg())
		b := old2new[f1.Var()].NotIf(f1.IsNeg())
		before := ng.NumVars()
		best := ng.And(a, b)
		bestCost := ng.NumVars() - before
		coldNodes(bestCost)
		if bestCost == 0 {
			// Strash hit: nothing can beat a free node.
			probe.Branch(brSite, false)
			old2new[v] = best
			return
		}

		tried := 0
		for _, cut := range cuts.Cuts(v) {
			if tried >= tryCuts {
				break
			}
			n := len(cut.Leaves)
			if n < 2 || n > k || (n == 1 && int(cut.Leaves[0]) == v) {
				continue
			}
			// Skip cuts whose leaves include v itself (trivial cut).
			self := false
			for _, l := range cut.Leaves {
				if int(l) == v {
					self = true
					break
				}
			}
			if self {
				continue
			}
			tried++
			tt := cutTT(g, v, cut.Leaves, probe, &tts)
			// ISOP extraction recurses over cofactors; its cost is the
			// bulk of a resynthesis attempt.
			probe.Ops(280)
			cubes := isop(tt, 0, n)
			// Realize over the new-graph leaf literals.
			leafLits := make([]aig.Lit, n)
			ok := true
			for i, l := range cut.Leaves {
				if old2new[l] == 0 && l != 0 {
					// A leaf that was itself swept away (shouldn't
					// happen in topo order, but stay safe).
					ok = false
					break
				}
				leafLits[i] = old2new[l]
			}
			if !ok {
				continue
			}
			mark := ng.NumVars()
			lit := buildCover(ng, cubes, leafLits, tt, n, probe)
			cost := ng.NumVars() - mark
			better := cost < bestCost
			probe.Branch(brSite, better)
			if better {
				best = lit
				bestCost = cost
			}
		}
		old2new[v] = best
	})
	for i, o := range g.Outputs() {
		ng.AddOutput(old2new[o.Var()].NotIf(o.IsNeg()), g.OutputName(i))
	}
	swept, _ := ng.Sweep()
	swept.Name = g.Name
	return swept
}

// buildCover realizes a cube cover over the given leaf literals,
// returning the output literal. Constants and single-cube covers take
// fast paths; multi-cube covers build balanced AND/OR trees.
func buildCover(ng *aig.Graph, cubes []cube, leaves []aig.Lit, tt uint64, n int, probe *perf.Probe) aig.Lit {
	if tt == 0 {
		return aig.False
	}
	if tt == ttMask(n) {
		return aig.True
	}
	terms := make([]aig.Lit, 0, len(cubes))
	for _, c := range cubes {
		lits := make([]aig.Lit, 0, n)
		for i := 0; i < n; i++ {
			if c.pos>>uint(i)&1 == 1 {
				lits = append(lits, leaves[i])
			}
			if c.neg>>uint(i)&1 == 1 {
				lits = append(lits, leaves[i].Not())
			}
		}
		probe.Ops(len(lits))
		terms = append(terms, ng.AndN(lits))
	}
	return ng.OrN(terms)
}
