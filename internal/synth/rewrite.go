package synth

import (
	"slices"

	"edacloud/internal/aig"
	"edacloud/internal/ints"
	"edacloud/internal/par"
	"edacloud/internal/perf"
)

// PartitionGrain is the per-partition AND-node target of cone-parallel
// rebuilds (rewrite, refactor, balance). It is a fixed constant — not a
// function of the worker count — so the partitioning, the results and
// the probe-shard layout are identical on every machine and for every
// pool size.
const PartitionGrain = 96

// Rewrite performs cut-based resubstitution: every node's 4-feasible
// cuts are evaluated as truth tables, an irredundant sum-of-products
// implementation is rebuilt over the cut leaves in the output graph,
// and the cheapest realization (measured in actually-added nodes,
// strashing included) wins. Dead logic left behind by replaced
// realizations is swept at the end.
//
// Multi-cone graphs are rebuilt cone-parallel over a partitioned
// strash: see rebuildWithCuts.
func Rewrite(g *aig.Graph, probe *perf.Probe) *aig.Graph {
	ng, _ := rewritePool(g, probe, par.Default())
	return ng
}

// rewritePool is Rewrite with an explicit worker pool, also reporting
// the pass's parallel structure.
func rewritePool(g *aig.Graph, probe *perf.Probe, pool *par.Pool) (*aig.Graph, passStats) {
	return rebuildWithCuts(g, probe, pool, 4, 6, 2, brRewriteGain)
}

// Refactor is Rewrite with one large cut per node (up to 6 leaves),
// the classical coarse-grained companion pass: it collapses bigger
// cones and resynthesizes them from their ISOP factorization.
func Refactor(g *aig.Graph, probe *perf.Probe) *aig.Graph {
	ng, _ := refactorPool(g, probe, par.Default())
	return ng
}

// refactorPool is Refactor with an explicit worker pool, also
// reporting the pass's parallel structure.
func refactorPool(g *aig.Graph, probe *perf.Probe, pool *par.Pool) (*aig.Graph, passStats) {
	return rebuildWithCuts(g, probe, pool, 6, 4, 1, brRefactorGain)
}

// passStats describes the parallel structure of one executed pass: the
// number of independent work units its widest parallel region offered
// (cone partitions or cut-sweep chunks, whichever is larger) and how
// many instructions it retired inside parallel regions. Optimize feeds
// both into the phase record so the machine model's Amdahl scaling
// reflects the measured split.
type passStats struct {
	chunks         int
	parallelInstrs uint64
}

// rebuildWithCuts reconstructs g node by node, trying up to tryCuts
// non-trivial cuts of size <= k per node and keeping the cheapest
// realization.
//
// Graphs whose outputs partition into more than one cone group are
// rebuilt cone-parallel: each partition resynthesizes its owned nodes
// into a private shard graph with its own structural hash table,
// referencing foreign nodes (owned by lower partitions) through
// placeholder inputs; the shards then merge into the output graph in
// ascending partition order, so the result is bit-identical for every
// worker count. The partitioned path may differ structurally from the
// single-strash serial path (each shard measures realization cost
// against its own table), but never functionally.
func rebuildWithCuts(g *aig.Graph, probe *perf.Probe, pool *par.Pool, k, maxCuts, tryCuts int, brSite uint64) (*aig.Graph, passStats) {
	cuts := newCutEnum(g, k, maxCuts, probe, pool)
	parInstrs := cuts.parInstrs

	// The phase's chunk bound covers both parallel regions: the cut
	// sweep's widest level and the partition rebuilds. On the serial
	// (single-partition) path the cut sweep is the only parallel work,
	// so its chunk count keeps the measured fraction scalable instead
	// of being zeroed by chunks=1.
	cp := partitionAccounted(g, probe)
	chunks := ints.Max(cp.NumParts(), cuts.parChunks)
	if cp.NumParts() <= 1 {
		return rebuildSerial(g, probe, cuts, k, tryCuts, brSite), passStats{chunks: chunks, parallelInstrs: parInstrs}
	}

	shards, rebuildInstrs := forPartitions(probe, pool, cp.NumParts(), func(pi int, sc *shardScratch, probe *perf.Probe) shardBuild {
		return rebuildPartition(g, cp, pi, cuts, k, tryCuts, brSite, sc, probe)
	})
	parInstrs += rebuildInstrs

	ng := mergeShards(g, cp, shards, probe)
	return ng, passStats{chunks: chunks, parallelInstrs: parInstrs}
}

// rebuildSerial is the single-cone path: one output graph, one strash
// table, nodes visited in global topological order.
func rebuildSerial(g *aig.Graph, probe *perf.Probe, cuts *cutEnum, k, tryCuts int, brSite uint64) *aig.Graph {
	ng := aig.New(g.Name)
	var sc shardScratch
	sc.o2n.reset(g.NumVars())
	sc.o2n.set(0, aig.False)
	for i, v := range g.InputVars() {
		sc.o2n.set(v, ng.AddInput(g.InputName(i)))
	}
	rb := &rebuilder{g: g, ng: ng, old2new: &sc.o2n, cuts: cuts, k: k, tryCuts: tryCuts, brSite: brSite, tts: &sc.tts}
	g.TopoAnds(func(v int, f0, f1 aig.Lit) {
		rb.rebuildNode(v, f0, f1, probe)
	})
	for i, o := range g.Outputs() {
		ng.AddOutput(sc.o2n.get(o.Var()).NotIf(o.IsNeg()), g.OutputName(i))
	}
	return sweepAccounted(ng, g.Name, probe)
}

// partitionAccounted partitions the cones, charging the serial DFS
// marking sweep to the probe.
func partitionAccounted(g *aig.Graph, probe *perf.Probe) *aig.ConePartitioning {
	probe.Ops(6 * g.NumVars())
	return g.PartitionCones(PartitionGrain)
}

// shardBuild is one partition's resynthesis product: the private shard
// graph, the original variables backing its placeholder inputs (in
// input order), and the shard literal of each owned node, parallel to
// the partition's Nodes list. All three are proportional to the
// partition, not the graph — the pooled var-indexed scratch is handed
// back to the worker as soon as the partition finishes.
type shardBuild struct {
	sg       *aig.Graph
	leafVars []int32
	owned    []aig.Lit
}

// rebuildPartition resynthesizes the nodes owned by partition pi into
// a fresh shard graph against a private strash table. Foreign
// references — primary inputs and AND nodes owned by lower partitions,
// whether direct fanins or cut leaves — become placeholder inputs, in
// ascending original-variable order. The function reads g and the cut
// lists only (both frozen before the parallel region), so partitions
// are safe to run concurrently.
func rebuildPartition(g *aig.Graph, cp *aig.ConePartitioning, pi int, cuts *cutEnum, k, tryCuts int, brSite uint64, sc *shardScratch, probe *perf.Probe) shardBuild {
	sg, leafVars := beginShard(g, cp, pi, cuts, k, tryCuts, sc)
	rb := &rebuilder{g: g, ng: sg, old2new: &sc.o2n, cuts: cuts, k: k, tryCuts: tryCuts, brSite: brSite, tts: &sc.tts}
	for _, v := range cp.Parts[pi].Nodes {
		f0, f1 := g.Fanins(int(v))
		rb.rebuildNode(int(v), f0, f1, probe)
	}
	return shardBuild{sg: sg, leafVars: leafVars, owned: ownedLits(cp, pi, &sc.o2n)}
}

// partitionLeaves collects, in ascending order, every variable that
// partition pi references without owning: primary inputs and AND nodes
// of lower partitions, reachable either as direct fanins or as cut
// leaves (cuts is nil for balancing, which only references fanins).
// Only the cuts rebuildNode can actually try matter — the first
// tryCuts usable ones per node, a deterministic prefix independent of
// build state — so the reference sets stay small. The constant node is
// excluded — shards map it directly. Marked vars are gathered during
// marking and sorted, so the cost scales with the partition's
// reference set, not the whole graph; mark is the caller's pooled
// epoch-stamped set, reset here in O(1).
func partitionLeaves(g *aig.Graph, cp *aig.ConePartitioning, pi int, cuts *cutEnum, k, tryCuts int, mark *epochStamps) []int32 {
	mark.reset(g.NumVars())
	var out []int32
	foreign := func(u int) {
		if u != 0 && cp.Owner[u] != int32(pi) && !mark.has(u) {
			mark.stamp(u)
			out = append(out, int32(u))
		}
	}
	for _, v := range cp.Parts[pi].Nodes {
		f0, f1 := g.Fanins(int(v))
		foreign(f0.Var())
		foreign(f1.Var())
		if cuts == nil {
			continue
		}
		tried := 0
		for _, c := range cuts.Cuts(int(v)) {
			if tried >= tryCuts {
				break
			}
			if !usableCut(c.Leaves, int(v), k) {
				continue
			}
			tried++
			for _, l := range c.Leaves {
				foreign(int(l))
			}
		}
	}
	slices.Sort(out)
	return out
}

// mergeShards folds the partition shards into one output graph in
// ascending partition order: each shard's placeholder inputs map to
// the final literals of already-merged partitions (or primary inputs),
// and its nodes re-strash against the accumulated table, deduplicating
// logic that distinct shards realized identically. The merge order is
// fixed, so the merged graph is independent of which worker built
// which shard. The serial merge cost is recorded on the parent probe —
// it is the non-scaling portion of a cone-parallel pass.
func mergeShards(g *aig.Graph, cp *aig.ConePartitioning, shards []shardBuild, probe *perf.Probe) *aig.Graph {
	ng := aig.New(g.Name)
	final := make([]aig.Lit, g.NumVars())
	final[0] = aig.False
	for i, v := range g.InputVars() {
		final[v] = ng.AddInput(g.InputName(i))
	}
	for pi := range shards {
		sb := &shards[pi]
		inMap := make([]aig.Lit, len(sb.leafVars))
		for i, lv := range sb.leafVars {
			inMap[i] = final[lv]
		}
		before := ng.NumVars()
		m := ng.Append(sb.sg, inMap)
		// Replay the merge's strash traffic: every shard node probes the
		// accumulated hash table with its mapped fanin pair, and the
		// records the append actually created are compulsory misses.
		sb.sg.TopoAnds(func(v int, f0, f1 aig.Lit) {
			f0m := m[f0.Var()].NotIf(f0.IsNeg())
			f1m := m[f1.Var()].NotIf(f1.IsNeg())
			probe.LoadHot(rgNode, uint64(v))
			probe.LoadHot(rgStrash, strashIdx(uint64(f0m)<<32|uint64(f1m)))
			probe.Ops(10)
			probe.LoopBranches(2)
		})
		probe.LoadCold((ng.NumVars() - before) / 4)
		for i, v := range cp.Parts[pi].Nodes {
			sl := sb.owned[i]
			final[v] = m[sl.Var()].NotIf(sl.IsNeg())
		}
	}
	for i, o := range g.Outputs() {
		ng.AddOutput(final[o.Var()].NotIf(o.IsNeg()), g.OutputName(i))
	}
	return sweepAccounted(ng, g.Name, probe)
}

// sweepAccounted runs the final dead-node sweep, charging its serial
// full-graph copy to the probe: one node record touch and a handful of
// bookkeeping instructions per variable.
func sweepAccounted(ng *aig.Graph, name string, probe *perf.Probe) *aig.Graph {
	probe.Ops(4 * ng.NumVars())
	probe.LoadCold(ng.NumVars() / 8)
	swept, _ := ng.Sweep()
	swept.Name = name
	return swept
}

// rebuilder carries the shared state of one rebuild target (the whole
// graph on the serial path, one shard on the partitioned path).
type rebuilder struct {
	g, ng   *aig.Graph
	old2new *litMap
	cuts    *cutEnum
	k       int
	tryCuts int
	brSite  uint64
	tts     *ttScratch
	// coldCredit batches compulsory-miss accounting: fresh node records
	// are one cache line per four 16-byte records.
	coldCredit int
}

func (rb *rebuilder) coldNodes(n int, probe *perf.Probe) {
	rb.coldCredit += n
	if rb.coldCredit >= 4 {
		probe.LoadCold(rb.coldCredit / 4)
		rb.coldCredit %= 4
	}
}

// usableCut reports whether a cut is a legal resynthesis candidate for
// node v: non-empty, at most k leaves, and not containing v itself.
// The self test subsumes the old `n == 1 && leaves[0] == v` clause,
// which was unreachable behind an `n < 2` bound; dropping that bound
// also admits 1-leaf cuts over a *different* variable, which collapse
// v to a wire when a cone degenerates to a single leaf.
func usableCut(leaves []int32, v, k int) bool {
	if len(leaves) < 1 || len(leaves) > k {
		return false
	}
	for _, l := range leaves {
		if int(l) == v {
			return false
		}
	}
	return true
}

// rebuildNode re-realizes one AND node into rb.ng, keeping the
// cheapest of the direct structural copy and up to tryCuts cut-based
// resyntheses.
func (rb *rebuilder) rebuildNode(v int, f0, f1 aig.Lit, probe *perf.Probe) {
	probe.LoadHot(rgNode, uint64(v))
	probe.LoadHot(rgStrash, strashIdx(uint64(f0)<<32|uint64(f1)))
	probe.LoopBranches(8)

	// Baseline: direct structural copy.
	a := rb.old2new.get(f0.Var()).NotIf(f0.IsNeg())
	b := rb.old2new.get(f1.Var()).NotIf(f1.IsNeg())
	before := rb.ng.NumVars()
	best := rb.ng.And(a, b)
	bestCost := rb.ng.NumVars() - before
	rb.coldNodes(bestCost, probe)
	if bestCost == 0 {
		// Strash hit: nothing can beat a free node.
		probe.Branch(rb.brSite, false)
		rb.old2new.set(v, best)
		return
	}

	tried := 0
	for _, cut := range rb.cuts.Cuts(v) {
		if tried >= rb.tryCuts {
			break
		}
		if !usableCut(cut.Leaves, v, rb.k) {
			continue
		}
		tried++
		n := len(cut.Leaves)
		tt := cutTT(rb.g, v, cut.Leaves, probe, rb.tts)
		// ISOP extraction recurses over cofactors; its cost is the
		// bulk of a resynthesis attempt.
		probe.Ops(280)
		cubes := isop(tt, 0, n)
		// Realize over the new-graph leaf literals.
		leafLits := make([]aig.Lit, n)
		ok := true
		for i, l := range cut.Leaves {
			if rb.old2new.get(int(l)) == 0 && l != 0 {
				// A leaf that was itself swept away (shouldn't
				// happen in topo order, but stay safe).
				ok = false
				break
			}
			leafLits[i] = rb.old2new.get(int(l))
		}
		if !ok {
			continue
		}
		mark := rb.ng.NumVars()
		lit := buildCover(rb.ng, cubes, leafLits, tt, n, probe)
		cost := rb.ng.NumVars() - mark
		better := cost < bestCost
		probe.Branch(rb.brSite, better)
		if better {
			best = lit
			bestCost = cost
		}
	}
	rb.old2new.set(v, best)
}

// buildCover realizes a cube cover over the given leaf literals,
// returning the output literal. Constants and single-cube covers take
// fast paths; multi-cube covers build balanced AND/OR trees.
func buildCover(ng *aig.Graph, cubes []cube, leaves []aig.Lit, tt uint64, n int, probe *perf.Probe) aig.Lit {
	if tt == 0 {
		return aig.False
	}
	if tt == ttMask(n) {
		return aig.True
	}
	terms := make([]aig.Lit, 0, len(cubes))
	for _, c := range cubes {
		lits := make([]aig.Lit, 0, n)
		for i := 0; i < n; i++ {
			if c.pos>>uint(i)&1 == 1 {
				lits = append(lits, leaves[i])
			}
			if c.neg>>uint(i)&1 == 1 {
				lits = append(lits, leaves[i].Not())
			}
		}
		probe.Ops(len(lits))
		terms = append(terms, ng.AndN(lits))
	}
	return ng.OrN(terms)
}
