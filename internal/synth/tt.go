package synth

// Truth-table machinery for functions of up to six variables, packed
// into a single uint64 (bit b holds the output for input assignment b).
// Used by cut rewriting, refactoring and technology mapping.

// ttVarMasks[i] is the truth table of variable i over six variables.
var ttVarMasks = [6]uint64{
	0xAAAAAAAAAAAAAAAA,
	0xCCCCCCCCCCCCCCCC,
	0xF0F0F0F0F0F0F0F0,
	0xFF00FF00FF00FF00,
	0xFFFF0000FFFF0000,
	0xFFFFFFFF00000000,
}

// ttMask returns the mask of valid rows for n variables.
func ttMask(n int) uint64 {
	if n >= 6 {
		return ^uint64(0)
	}
	return uint64(1)<<(1<<uint(n)) - 1
}

// ttVar returns the truth table of variable i restricted to n vars.
func ttVar(i, n int) uint64 { return ttVarMasks[i] & ttMask(n) }

// ttConst returns the constant-v table over n vars.
func ttConst(v bool, n int) uint64 {
	if v {
		return ttMask(n)
	}
	return 0
}

// ttNot complements a table over n vars.
func ttNot(tt uint64, n int) uint64 { return ^tt & ttMask(n) }

// cofactor0 returns the negative cofactor of tt with respect to var i,
// replicated so the result is still a full table.
func cofactor0(tt uint64, i int) uint64 {
	m := ttVarMasks[i]
	low := tt &^ m
	return low | low<<(1<<uint(i))
}

// cofactor1 returns the positive cofactor of tt w.r.t. var i.
func cofactor1(tt uint64, i int) uint64 {
	m := ttVarMasks[i]
	high := tt & m
	return high | high>>(1<<uint(i))
}

// ttDependsOn reports whether tt depends on variable i.
func ttDependsOn(tt uint64, i, n int) bool {
	return cofactor0(tt, i)&ttMask(n) != cofactor1(tt, i)&ttMask(n)
}

// ttSupportSize counts the variables tt actually depends on.
func ttSupportSize(tt uint64, n int) int {
	k := 0
	for i := 0; i < n; i++ {
		if ttDependsOn(tt, i, n) {
			k++
		}
	}
	return k
}

// cube is a product term: var i appears positively when pos bit i is
// set, negatively when neg bit i is set, and is absent otherwise.
type cube struct {
	pos, neg uint8
}

// literals returns the number of literals in the cube.
func (c cube) literals() int {
	return popcount8(c.pos) + popcount8(c.neg)
}

func popcount8(x uint8) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

// cubeTT returns the truth table of the cube over n vars.
func cubeTT(c cube, n int) uint64 {
	tt := ttMask(n)
	for i := 0; i < n; i++ {
		if c.pos>>uint(i)&1 == 1 {
			tt &= ttVar(i, n)
		}
		if c.neg>>uint(i)&1 == 1 {
			tt &= ttNot(ttVar(i, n), n)
		}
	}
	return tt
}

// isop computes an irredundant sum-of-products cover of the incompletely
// specified function [onset, onset|dc] over n variables using the
// Minato-Morreale recursion. The returned cubes cover at least onset
// and never intersect the offset.
func isop(onset, dc uint64, n int) []cube {
	onset &= ttMask(n)
	dc &= ttMask(n)
	cubes, _ := isopRec(onset, onset|dc, n, n)
	return cubes
}

// isopRec returns (cover, coveredTT) for lower bound L and upper bound
// U (L subset U), recursing on the top variable.
func isopRec(L, U uint64, topVar, n int) ([]cube, uint64) {
	if L == 0 {
		return nil, 0
	}
	if U == ttMask(n) {
		return []cube{{}}, ttMask(n)
	}
	// Find the top variable both bounds depend on.
	v := -1
	for i := topVar - 1; i >= 0; i-- {
		if ttDependsOn(L, i, n) || ttDependsOn(U, i, n) {
			v = i
			break
		}
	}
	if v < 0 {
		// L constant non-zero means U must be all ones, handled above;
		// reaching here means L == 0 on the care set.
		return []cube{{}}, ttMask(n)
	}
	L0, L1 := cofactor0(L, v), cofactor1(L, v)
	U0, U1 := cofactor0(U, v), cofactor1(U, v)

	// Cubes needed only in the negative (v=0) branch.
	c0, f0 := isopRec(L0&^U1, U0, v, n)
	// Cubes needed only in the positive branch.
	c1, f1 := isopRec(L1&^U0, U1, v, n)
	// Remaining onset must be covered by cubes free of v.
	Lnew := (L0 &^ f0) | (L1 &^ f1)
	cs, fs := isopRec(Lnew, U0&U1, v, n)

	var cover []cube
	var result uint64
	nv := ttNot(ttVar(v, n), n)
	pv := ttVar(v, n)
	for _, c := range c0 {
		c.neg |= 1 << uint(v)
		cover = append(cover, c)
	}
	result |= f0 & nv
	for _, c := range c1 {
		c.pos |= 1 << uint(v)
		cover = append(cover, c)
	}
	result |= f1 & pv
	cover = append(cover, cs...)
	result |= fs
	return cover, result
}

// coverTT returns the truth table of a cube cover.
func coverTT(cubes []cube, n int) uint64 {
	var tt uint64
	for _, c := range cubes {
		tt |= cubeTT(c, n)
	}
	return tt
}

// coverLiterals counts total literals, the cost measure for rebuilds.
func coverLiterals(cubes []cube) int {
	total := 0
	for _, c := range cubes {
		total += c.literals()
	}
	return total
}
