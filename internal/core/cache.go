package core

import (
	"fmt"

	"edacloud/internal/cache"
	"edacloud/internal/designs"
	"edacloud/internal/flow"
	"edacloud/internal/mckp"
	"edacloud/internal/perf"
	"edacloud/internal/synth"
	"edacloud/internal/techlib"
)

// This file makes the deployment optimizer cache-aware. A predicted
// artifact-cache hit collapses a stage's planned runtime and cost to
// the cache-probe constant, which changes the per-job DP's picks, the
// batch co-optimizer's shadow prices, and the forecast the plan is
// validated against. Prediction and execution share one decision
// procedure — the chain keys a planning pipeline computes are the keys
// the executing pipelines look up, and cache.Store.PredictChains is
// the scheduler's serial accounting replay run read-only — so a
// forecast under predicted hits matches the cached execution exactly.

// planningPipeline builds the pipeline whose stage key chain matches
// what ExecuteBatchPlan's scheduler jobs will run: the default
// four-stage flow under the given recipe and clock period,
// instrumented (the scheduler always probes, and instrumented routing
// keys are worker-independent).
func planningPipeline(recipe synth.Recipe, clockPeriodNs float64) *flow.Pipeline {
	return flow.NewPipeline(
		flow.WithRecipe(recipe),
		flow.WithClockPeriodNs(clockPeriodNs),
		// Planning never runs a stage, so the factory body is dead code —
		// but its presence marks the pipeline instrumented, which is what
		// keys routing the same way the scheduler's probed jobs do.
		flow.WithNewProbe(func(flow.JobKind) *perf.Probe { return nil }),
	)
}

// CacheChain computes the stage key chain of one design's planned flow
// — the identity the artifact cache stores its artifacts under. opts
// must carry the same Scale/Recipe the execution will run with.
func CacheChain(lib *techlib.Library, design string, opts CharacterizeOptions) ([]flow.StageKey, error) {
	opts = opts.withDefaults()
	g, err := designs.EvalDesign(design, opts.Scale)
	if err != nil {
		return nil, err
	}
	return planningPipeline(opts.Recipe, 0).CacheKeys(g, lib), nil
}

// PredictCacheHits fills each spec's CacheHits with the stages the
// store will serve as hits when the batch executes: entries already in
// the store, plus within-batch dedup — a stage an earlier job of the
// same batch computes is a billed hit for every later job sharing the
// chain prefix. The store is not touched. opts must carry the same
// Scale/Recipe the execution (ExecuteBatchPlan) will run with.
func PredictCacheHits(store *cache.Store, lib *techlib.Library, specs []BatchJobSpec, opts CharacterizeOptions) error {
	if store == nil {
		return nil
	}
	opts = opts.withDefaults()
	chains := make([][]cache.Key, len(specs))
	keyed := make([][]flow.StageKey, len(specs))
	// Specs carrying their own Recipe/ClockPeriodNs (a DSE trial batch
	// mixes recipes) key their own flow; the memo must therefore be
	// keyed by the full flow identity, not the design alone.
	type flowID struct {
		design, recipe string
		clockNs        float64
	}
	memo := map[flowID][]flow.StageKey{}
	for i, spec := range specs {
		recipe := spec.effectiveRecipe(opts)
		id := flowID{design: spec.Char.Design, recipe: fmt.Sprintf("%s|%v", recipe.Name, recipe.Passes), clockNs: spec.ClockPeriodNs}
		sk, ok := memo[id]
		if !ok {
			g, err := designs.EvalDesign(spec.Char.Design, opts.Scale)
			if err != nil {
				return err
			}
			sk = planningPipeline(recipe, spec.ClockPeriodNs).CacheKeys(g, lib)
			memo[id] = sk
		}
		keyed[i] = sk
		chain := make([]cache.Key, len(sk))
		for l, s := range sk {
			chain[l] = s.Key
		}
		chains[i] = chain
	}
	hits := store.PredictChains(chains)
	for i := range specs {
		m := map[flow.JobKind]bool{}
		for l, s := range keyed[i] {
			if hits[i][l] {
				m[s.Kind] = true
			}
		}
		specs[i].CacheHits = m
	}
	return nil
}

// hitVector renders a spec's predicted hits in class order (JobKinds
// order — the order BuildDeploymentProblem emits classes in).
func hitVector(hits map[flow.JobKind]bool) []bool {
	if len(hits) == 0 {
		return nil
	}
	kinds := JobKinds()
	out := make([]bool, len(kinds))
	for l, k := range kinds {
		out[l] = hits[k]
	}
	return out
}

// CacheAdjusted returns a copy of the problem whose hit stages are
// collapsed to the cache-probe constant: every choice of a hit class
// runs for cache.ProbeSeconds at zero cost and is marked Cached, in
// both the knapsack classes and the executable stage table (so plans,
// forecasts and adaptive choice tables all price the hit identically).
// A nil/empty hit vector returns the problem unchanged.
func (prob *DeploymentProblem) CacheAdjusted(hits []bool) *DeploymentProblem {
	any := false
	for l := range prob.Stages {
		if l < len(hits) && hits[l] {
			any = true
			break
		}
	}
	if !any {
		return prob
	}
	out := &DeploymentProblem{
		Design:  prob.Design,
		Classes: mckp.CacheAdjust(prob.Classes, hits, cache.ProbeTimeSec),
	}
	out.Stages = make([][]StageChoice, len(prob.Stages))
	for l, stage := range prob.Stages {
		if l >= len(hits) || !hits[l] {
			out.Stages[l] = stage
			continue
		}
		adj := make([]StageChoice, len(stage))
		for j, c := range stage {
			adj[j] = StageChoice{Job: c.Job, Instance: c.Instance,
				Seconds: cache.ProbeSeconds, Cost: 0, Cached: true}
		}
		out.Stages[l] = adj
	}
	return out
}
