package core

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"edacloud/internal/aig"
	"edacloud/internal/designs"
	"edacloud/internal/flow"
	"edacloud/internal/gcn"
	"edacloud/internal/netlist"
	"edacloud/internal/par"
	"edacloud/internal/perf"
	"edacloud/internal/synth"
	"edacloud/internal/techlib"
)

// DatasetOptions configures dataset generation for the runtime
// predictor. The paper's dataset is 18 benchmarks x logic-optimization
// recipes = 330 netlists with 2640 runtime labels; the same procedure
// here is parameterized so tests and benches can use smaller slices.
type DatasetOptions struct {
	// Benchmarks to include; nil means all 18.
	Benchmarks []string
	// Recipes are the logic-optimization scripts producing structural
	// variants; nil means synth.StandardRecipes.
	Recipes []synth.Recipe
	// Scale sizes the generated benchmarks; 0 means 0.08.
	Scale float64
	// VCPUs lists the labeled machine configurations; nil = {1,2,4,8}.
	VCPUs []int
	// Workers bounds the fan-out of per-(benchmark, recipe) flow runs
	// across real cores and the worker pools inside each flow's
	// kernels; 0 means GOMAXPROCS. The dataset is identical for every
	// value.
	Workers int
}

// datasetWorkScale extrapolates benchmark-scale runtimes to full-flow
// magnitudes (see workScaleFor; benchmarks have no declared full-size
// target, so a representative constant is used).
const datasetWorkScale = 2e4

func (o DatasetOptions) withDefaults() DatasetOptions {
	if o.Benchmarks == nil {
		o.Benchmarks = designs.BenchmarkNames()
	}
	if o.Recipes == nil {
		o.Recipes = synth.StandardRecipes
	}
	if o.Scale == 0 {
		o.Scale = 0.08
	}
	if o.VCPUs == nil {
		o.VCPUs = []int{1, 2, 4, 8}
	}
	return o
}

// LabeledGraph is one dataset sample: a graph representation of a
// netlist (or AIG) plus measured per-configuration runtimes.
type LabeledGraph struct {
	Design   string // base benchmark (unseen-design splits key on this)
	Variant  string // recipe name
	Graph    *gcn.Graph
	Runtimes []float64 // seconds, aligned with Dataset.VCPUs
}

// Dataset carries per-job samples.
type Dataset struct {
	Jobs    map[JobKind][]LabeledGraph
	VCPUs   []int
	Designs []string
}

// NumNetlists returns the number of distinct netlist variants.
func (d *Dataset) NumNetlists() int { return len(d.Jobs[JobPlacement]) }

// NumLabels returns the total number of runtime labels.
func (d *Dataset) NumLabels() int {
	n := 0
	for _, samples := range d.Jobs {
		for _, s := range samples {
			n += len(s.Runtimes)
		}
	}
	return n
}

// BuildDataset synthesizes every benchmark under every recipe, runs
// the full flow under every vCPU configuration, and collects graphs
// plus runtime labels. Synthesis samples use the AIG graph (the paper
// runs the synthesis predictor on the AIG); placement, routing and STA
// samples use the mapped netlist's star graph.
//
// The per-(benchmark, recipe) flow runs fan out across real cores with
// the same shape as CharacterizeEval's per-VM-config sweep: the units
// share nothing (each regenerates its benchmark and runs its own
// pipelines with its own probes) and the dataset is assembled after
// the barrier in benchmark-then-recipe order, so it is identical for
// any worker count.
func BuildDataset(lib *techlib.Library, opts DatasetOptions) (*Dataset, error) {
	opts = opts.withDefaults()
	ds := &Dataset{
		Jobs:    map[JobKind][]LabeledGraph{},
		VCPUs:   opts.VCPUs,
		Designs: opts.Benchmarks,
	}
	nRecipes := len(opts.Recipes)
	type unitOut struct {
		// The synthesis predictor consumes the *input* AIG (the paper:
		// RTL is elaborated to an AIG before synthesis), so its graph
		// is fixed per benchmark; recipes only produce the netlist
		// variants the placement/routing/STA predictors train on. One
		// synthesis sample per (benchmark, recipe pair) would pair one
		// graph with conflicting labels, so synthesis is sampled once
		// per benchmark under the first recipe, and only that unit
		// builds inputAIG.
		inputAIG *gcn.Graph
		nlGraph  *gcn.Graph
		runtimes map[JobKind][]float64
		err      error
	}
	benchGraphs := make([]*aig.Graph, len(opts.Benchmarks))
	for i, bench := range opts.Benchmarks {
		g, err := designs.Benchmark(bench, opts.Scale)
		if err != nil {
			return nil, err
		}
		benchGraphs[i] = g
	}
	pool := par.Fixed(opts.Workers)
	units := par.Map(pool, len(opts.Benchmarks)*nRecipes, func(u int) unitOut {
		bench := opts.Benchmarks[u/nRecipes]
		ri := u % nRecipes
		recipe := opts.Recipes[ri]
		// Clone per unit: the AIG memoizes levels/fanouts lazily, so
		// concurrent units must not share one graph.
		g := benchGraphs[u/nRecipes].Clone()
		out := unitOut{runtimes: map[JobKind][]float64{}}
		if ri == 0 {
			out.inputAIG = gcn.FromStarGraph(netlist.AIGGraph(g))
		}
		estCells := EstimateCells(g.NumAnds())
		for _, v := range opts.VCPUs {
			p := flow.NewPipeline(
				flow.WithRecipe(recipe),
				flow.WithWorkers(opts.Workers),
				flow.WithNewProbe(func(JobKind) *perf.Probe {
					return NewJobProbe(v, estCells)
				}),
			)
			rc, err := p.Run(g, lib)
			if err != nil {
				return unitOut{err: fmt.Errorf("core: dataset %s/%s: %w", bench, recipe.Name, err)}
			}
			if out.nlGraph == nil {
				out.nlGraph = gcn.FromStarGraph(rc.Netlist.StarGraph())
			}
			// Labels are extrapolated to full-flow magnitudes with a
			// fixed factor; relative (percentage) prediction errors
			// are invariant to it, but log-space training and the
			// Fig. 5 histogram operate on paper-like seconds.
			m := machineFor(v, true, 0, datasetWorkScale)
			for _, k := range JobKinds() {
				out.runtimes[k] = append(out.runtimes[k], m.Seconds(rc.Reports[k]))
			}
		}
		return out
	})
	for bi, bench := range opts.Benchmarks {
		for ri, recipe := range opts.Recipes {
			unit := units[bi*nRecipes+ri]
			if unit.err != nil {
				return nil, unit.err
			}
			for _, k := range JobKinds() {
				if k == JobSynthesis {
					if ri == 0 {
						ds.Jobs[k] = append(ds.Jobs[k], LabeledGraph{
							Design:   bench,
							Variant:  recipe.Name,
							Graph:    unit.inputAIG,
							Runtimes: unit.runtimes[k],
						})
					}
					continue
				}
				ds.Jobs[k] = append(ds.Jobs[k], LabeledGraph{
					Design:   bench,
					Variant:  recipe.Name,
					Graph:    unit.nlGraph,
					Runtimes: unit.runtimes[k],
				})
			}
		}
	}
	return ds, nil
}

// SplitByDesign partitions sample indices so that test samples come
// from designs never seen in training (the paper's split discipline).
func (d *Dataset) SplitByDesign(k JobKind, testFrac float64, seed int64) (train, test []LabeledGraph) {
	names := append([]string(nil), d.Designs...)
	sort.Strings(names)
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(names), func(i, j int) { names[i], names[j] = names[j], names[i] })
	nTest := int(float64(len(names)) * testFrac)
	if nTest < 1 && len(names) > 1 {
		nTest = 1
	}
	testSet := map[string]bool{}
	for _, n := range names[:nTest] {
		testSet[n] = true
	}
	for _, s := range d.Jobs[k] {
		if testSet[s.Design] {
			test = append(test, s)
		} else {
			train = append(train, s)
		}
	}
	return train, test
}

// Predictor bundles one trained GCN per application, as the paper
// trains each application's model separately.
type Predictor struct {
	Models  map[JobKind]*gcn.Model
	Scalers map[JobKind]*gcn.TargetScaler
	VCPUs   []int
}

// ErrRecord is one test-set prediction outcome.
type ErrRecord struct {
	Design, Variant string
	Pred, Actual    []float64 // seconds
}

// JobEval aggregates test error for one application.
type JobEval struct {
	Records []ErrRecord
	// AvgAbsPctErr is mean |pred-actual|/actual over all records and
	// configurations — the paper's headline accuracy metric.
	AvgAbsPctErr float64
}

// ErrorsSeconds flattens signed errors (pred - actual, seconds), the
// quantity the paper histograms in Fig. 5.
func (e *JobEval) ErrorsSeconds() []float64 {
	var out []float64
	for _, r := range e.Records {
		for j := range r.Pred {
			out = append(out, r.Pred[j]-r.Actual[j])
		}
	}
	return out
}

// Histogram buckets the signed errors into n bins over [min, max].
func (e *JobEval) Histogram(bins int) (edges []float64, counts []int) {
	errs := e.ErrorsSeconds()
	if len(errs) == 0 || bins < 1 {
		return nil, nil
	}
	lo, hi := errs[0], errs[0]
	for _, v := range errs {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	if hi == lo {
		hi = lo + 1
	}
	edges = make([]float64, bins+1)
	for i := range edges {
		edges[i] = lo + (hi-lo)*float64(i)/float64(bins)
	}
	counts = make([]int, bins)
	for _, v := range errs {
		b := int((v - lo) / (hi - lo) * float64(bins))
		if b >= bins {
			b = bins - 1
		}
		counts[b]++
	}
	return edges, counts
}

// PredictionEval is the Fig. 5 result set.
type PredictionEval struct {
	PerJob map[JobKind]*JobEval
}

// TrainPredictor trains per-application models on a design-disjoint
// split and evaluates them on the held-out designs.
func TrainPredictor(ds *Dataset, cfg gcn.Config, testFrac float64, seed int64) (*Predictor, *PredictionEval, error) {
	pred := &Predictor{
		Models:  map[JobKind]*gcn.Model{},
		Scalers: map[JobKind]*gcn.TargetScaler{},
		VCPUs:   ds.VCPUs,
	}
	eval := &PredictionEval{PerJob: map[JobKind]*JobEval{}}
	for _, k := range JobKinds() {
		train, test := ds.SplitByDesign(k, testFrac, seed)
		if len(train) == 0 {
			return nil, nil, fmt.Errorf("core: no training samples for %v", k)
		}
		var targets [][]float64
		for _, s := range train {
			targets = append(targets, s.Runtimes)
		}
		scaler := gcn.FitScaler(targets)
		samples := make([]gcn.Sample, len(train))
		for i, s := range train {
			samples[i] = gcn.Sample{
				Name:    s.Design + "/" + s.Variant,
				G:       s.Graph,
				Targets: scaler.Transform(s.Runtimes),
			}
		}
		jobCfg := cfg
		jobCfg.Outputs = len(ds.VCPUs)
		jobCfg.Seed = seed + int64(k)
		model := gcn.NewModel(jobCfg, netlist.FeatureDim)
		if _, err := model.Train(samples); err != nil {
			return nil, nil, err
		}
		pred.Models[k] = model
		pred.Scalers[k] = scaler

		je := &JobEval{}
		var pctSum float64
		var pctN int
		for _, s := range test {
			p := scaler.Invert(model.Predict(s.Graph))
			je.Records = append(je.Records, ErrRecord{
				Design: s.Design, Variant: s.Variant,
				Pred: p, Actual: s.Runtimes,
			})
			for j := range p {
				if s.Runtimes[j] > 0 {
					pctSum += math.Abs(p[j]-s.Runtimes[j]) / s.Runtimes[j]
					pctN++
				}
			}
		}
		if pctN > 0 {
			je.AvgAbsPctErr = 100 * pctSum / float64(pctN)
		}
		eval.PerJob[k] = je
	}
	return pred, eval, nil
}

// PredictRuntimes returns predicted per-configuration runtimes in
// seconds for a graph under the given application's model.
func (p *Predictor) PredictRuntimes(k JobKind, g *gcn.Graph) ([]float64, error) {
	model := p.Models[k]
	if model == nil {
		return nil, fmt.Errorf("core: no model for %v", k)
	}
	return p.Scalers[k].Invert(model.Predict(g)), nil
}

// PredictRuntimesBatch predicts per-configuration runtimes for many
// graphs at once, fanning the forward passes out across the model's
// worker pool (gcn.Model.PredictBatch). Results are in input order and
// bit-identical to per-graph PredictRuntimes calls at any worker
// count.
func (p *Predictor) PredictRuntimesBatch(k JobKind, graphs []*gcn.Graph) ([][]float64, error) {
	model := p.Models[k]
	if model == nil {
		return nil, fmt.Errorf("core: no model for %v", k)
	}
	raw := model.PredictBatch(graphs)
	out := make([][]float64, len(raw))
	for i, r := range raw {
		out[i] = p.Scalers[k].Invert(r)
	}
	return out, nil
}
