package core

import (
	"testing"

	"edacloud/internal/aig"
	"edacloud/internal/cloud"
	"edacloud/internal/designs"
	"edacloud/internal/flow"
	"edacloud/internal/synth"
	"edacloud/internal/techlib"
)

// TestRunHierarchicalBatch: the workflow-level wrapper splits a design,
// schedules its partitions on a bounded fleet and hands back a stitched
// graph equivalent to the original, with the schedule's job list
// matching the split.
func TestRunHierarchicalBatch(t *testing.T) {
	g := designs.MustEvalDesign("aes", 0.02)
	catalog := cloud.DefaultCatalog()
	fleet, err := cloud.ParseFleetSpec(catalog, "gp.4x=2")
	if err != nil {
		t.Fatal(err)
	}
	base := flow.Job{
		Design:  g,
		Lib:     techlib.Default14nm(),
		Options: []flow.Option{flow.WithStages(flow.Synthesis(synth.Options{}))},
	}
	sch := &flow.Scheduler{Fleet: fleet, Policy: flow.FirstFit{}}
	res, err := RunHierarchicalBatch(sch, base, 300)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Schedule.Jobs) != len(res.Batch.Jobs) || len(res.Batch.Jobs) < 2 {
		t.Fatalf("schedule has %d jobs for %d sub-designs", len(res.Schedule.Jobs), len(res.Batch.Jobs))
	}
	if res.Schedule.MakespanSec <= 0 {
		t.Fatal("hierarchical batch has no makespan")
	}
	if !aig.SimEquiv(g, res.Stitched, 9, 16) {
		t.Fatal("stitched graph not equivalent to the design")
	}
	if res.Stitched.Name != g.Name {
		t.Fatalf("stitched graph named %q, want %q", res.Stitched.Name, g.Name)
	}
}
