package core

import (
	"bytes"
	"strings"
	"testing"

	"edacloud/internal/cloud"
	"edacloud/internal/designs"
	"edacloud/internal/gcn"
	"edacloud/internal/synth"
)

func trainedPredictor(t *testing.T) (*Predictor, *Dataset) {
	t.Helper()
	ds, err := BuildDataset(lib, DatasetOptions{
		Benchmarks: []string{"adder", "dec", "priority"},
		Recipes:    synth.StandardRecipes[:2],
		Scale:      0.06,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := gcn.Config{Hidden1: 12, Hidden2: 6, FCHidden: 6, LR: 3e-3, Epochs: 20}
	pred, _, err := TrainPredictor(ds, cfg, 0.34, 2)
	if err != nil {
		t.Fatal(err)
	}
	return pred, ds
}

func TestPredictorPersistenceRoundTrip(t *testing.T) {
	pred, ds := trainedPredictor(t)
	var buf bytes.Buffer
	if err := pred.Save(&buf); err != nil {
		t.Fatalf("write: %v", err)
	}
	back, err := ReadPredictor(&buf)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if len(back.VCPUs) != len(pred.VCPUs) {
		t.Fatalf("vcpus changed: %v", back.VCPUs)
	}
	// Predictions must be bit-identical after the round trip.
	g := ds.Jobs[JobRouting][0].Graph
	for _, k := range JobKinds() {
		gg := g
		if k == JobSynthesis {
			gg = ds.Jobs[JobSynthesis][0].Graph
		}
		a, err := pred.PredictRuntimes(k, gg)
		if err != nil {
			t.Fatal(err)
		}
		b, err := back.PredictRuntimes(k, gg)
		if err != nil {
			t.Fatal(err)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%v: prediction changed: %v vs %v", k, a, b)
			}
		}
	}
	// The loaded predictor plugs straight into deployment planning.
	dg, err := GraphsForDesign(designs.MustBenchmark("cavlc", 0.06), lib)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := BuildPredictedDeploymentProblem(back, dg, catalogForTest()); err != nil {
		t.Fatal(err)
	}
}

func TestReadPredictorRejectsCorruption(t *testing.T) {
	pred, _ := trainedPredictor(t)
	var buf bytes.Buffer
	if err := pred.Save(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.String()
	cases := []string{
		"",
		"bogus\n",
		strings.Replace(good, predictorMagic, "wrong", 1),
		strings.Replace(good, "vcpus 1 2 4 8", "vcpus x", 1),
		strings.Replace(good, "job placement", "job bogus", 1),
		strings.Replace(good, "end-predictor\n", "", 1),
		good[:len(good)*2/3],
	}
	for i, src := range cases {
		if _, err := ReadPredictor(strings.NewReader(src)); err == nil {
			t.Errorf("corruption %d accepted", i)
		}
	}
	// Writing an incomplete predictor must fail rather than emit junk.
	incomplete := &Predictor{VCPUs: []int{1}}
	if err := incomplete.Save(&bytes.Buffer{}); err == nil {
		t.Fatal("incomplete predictor serialized")
	}
}

// catalogForTest avoids importing cloud twice in the test file header.
func catalogForTest() *cloud.Catalog { return cloud.DefaultCatalog() }
