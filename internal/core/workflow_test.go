package core

import (
	"testing"

	"edacloud/internal/cloud"
	"edacloud/internal/designs"
	"edacloud/internal/gcn"
	"edacloud/internal/synth"
)

// TestEndToEndWorkflow exercises the paper's entire Fig. 1 pipeline:
// build a dataset, train the predictor, predict runtimes for a design
// outside the training set, and optimize its cloud deployment from the
// predictions alone.
func TestEndToEndWorkflow(t *testing.T) {
	ds, err := BuildDataset(lib, DatasetOptions{
		Benchmarks: []string{"adder", "dec", "cavlc", "int2float", "priority", "bar"},
		Recipes:    synth.StandardRecipes[:2],
		Scale:      0.06,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := gcn.Config{Hidden1: 24, Hidden2: 12, FCHidden: 12, LR: 3e-3, Epochs: 60}
	pred, _, err := TrainPredictor(ds, cfg, 0.2, 11)
	if err != nil {
		t.Fatal(err)
	}

	// A design the predictor has never seen in any form.
	g := designs.MustBenchmark("i2c", 0.06)
	dg, err := GraphsForDesign(g, lib)
	if err != nil {
		t.Fatal(err)
	}
	runtimes, err := pred.PredictFlowRuntimes(dg)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range JobKinds() {
		if len(runtimes[k]) != 4 {
			t.Fatalf("%v: %d predictions", k, len(runtimes[k]))
		}
		for _, v := range runtimes[k] {
			if v < 0 {
				t.Fatalf("%v: negative predicted runtime %g", k, v)
			}
		}
	}

	prob, err := BuildPredictedDeploymentProblem(pred, dg, cloud.DefaultCatalog())
	if err != nil {
		t.Fatal(err)
	}
	if len(prob.Classes) != 4 {
		t.Fatalf("classes = %d", len(prob.Classes))
	}
	// The instance families must still follow the characterization
	// recommendations.
	if prob.Stages[int(JobSynthesis)][0].Instance.Family != cloud.GeneralPurpose ||
		prob.Stages[int(JobPlacement)][0].Instance.Family != cloud.MemoryOptimized {
		t.Fatal("family recommendations lost in prediction path")
	}

	minTime := prob.MinTime()
	plan, err := prob.Optimize(2 * minTime)
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Feasible {
		t.Fatal("relaxed deadline infeasible")
	}
	if plan.TotalTime > 2*minTime {
		t.Fatalf("plan %ds exceeds deadline %ds", plan.TotalTime, 2*minTime)
	}
	na, err := prob.Optimize(minTime / 2)
	if err != nil {
		t.Fatal(err)
	}
	_ = na // may or may not be feasible depending on per-second floors
	over := prob.OverProvision()
	under := prob.UnderProvision()
	if !over.Feasible || !under.Feasible {
		t.Fatal("fixed policies infeasible on predicted problem")
	}
}

func TestGraphsForDesignShape(t *testing.T) {
	g := designs.MustBenchmark("dec", 0.3)
	dg, err := GraphsForDesign(g, lib)
	if err != nil {
		t.Fatal(err)
	}
	if dg.AIG == nil || dg.Netlist == nil || dg.Name != "dec" {
		t.Fatalf("graphs incomplete: %+v", dg)
	}
	if dg.AIG.X.Rows == 0 || dg.Netlist.X.Rows == 0 {
		t.Fatal("empty graphs")
	}
	// The netlist graph includes cells plus I/O pseudo-nodes; the AIG
	// graph includes AND nodes plus outputs. Both should be larger than
	// the raw I/O count.
	if dg.Netlist.X.Rows < g.NumInputs()+g.NumOutputs() {
		t.Fatal("netlist graph suspiciously small")
	}
}

func TestPredictedProblemRejectsBadInputs(t *testing.T) {
	pred := &Predictor{VCPUs: []int{1, 2, 4, 8}}
	dg := &DesignGraphs{Name: "x"}
	if _, err := pred.PredictFlowRuntimes(dg); err == nil {
		t.Fatal("missing graphs accepted")
	}
	if _, err := BuildPredictedDeploymentProblem(pred, dg, cloud.DefaultCatalog()); err == nil {
		t.Fatal("missing models accepted")
	}
}
