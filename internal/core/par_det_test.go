package core

import (
	"runtime"
	"testing"
)

// TestCharacterizeDeterministicAcrossWorkers: fanning the per-VM-config
// profiling runs out across cores must reproduce the serial sweep
// exactly — runtimes, counters and derived percentages.
func TestCharacterizeDeterministicAcrossWorkers(t *testing.T) {
	run := func(workers int) *DesignCharacterization {
		opts := charOpts
		opts.Workers = workers
		char, err := CharacterizeEval(lib, "dyn_node", opts)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return char
	}
	want := run(1)
	workers := []int{4}
	if runtime.GOMAXPROCS(0) > 1 {
		workers = append(workers, 0) // the GOMAXPROCS pool
	}
	for _, w := range workers {
		got := run(w)
		if got.Cells != want.Cells || got.WorkScale != want.WorkScale {
			t.Fatalf("workers=%d: cells/scale %d/%g, want %d/%g", w, got.Cells, got.WorkScale, want.Cells, want.WorkScale)
		}
		for vi := range want.Profiles {
			for ji := range want.Profiles[vi] {
				g, s := got.Profiles[vi][ji], want.Profiles[vi][ji]
				if g.Seconds != s.Seconds || g.Counters != s.Counters || g.Speedup != s.Speedup {
					t.Fatalf("workers=%d: profile[%d][%d] differs: %+v vs %+v", w, vi, ji, g, s)
				}
			}
		}
	}
}
