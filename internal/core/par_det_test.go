package core

import (
	"reflect"
	"runtime"
	"testing"

	"edacloud/internal/synth"
)

// TestCharacterizeDeterministicAcrossWorkers: fanning the per-VM-config
// profiling runs out across cores must reproduce the serial sweep
// exactly — runtimes, counters and derived percentages.
func TestCharacterizeDeterministicAcrossWorkers(t *testing.T) {
	run := func(workers int) *DesignCharacterization {
		opts := charOpts
		opts.Workers = workers
		char, err := CharacterizeEval(lib, "dyn_node", opts)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return char
	}
	want := run(1)
	workers := []int{4}
	if runtime.GOMAXPROCS(0) > 1 {
		workers = append(workers, 0) // the GOMAXPROCS pool
	}
	for _, w := range workers {
		got := run(w)
		if got.Cells != want.Cells || got.WorkScale != want.WorkScale {
			t.Fatalf("workers=%d: cells/scale %d/%g, want %d/%g", w, got.Cells, got.WorkScale, want.Cells, want.WorkScale)
		}
		for vi := range want.Profiles {
			for ji := range want.Profiles[vi] {
				g, s := got.Profiles[vi][ji], want.Profiles[vi][ji]
				if g.Seconds != s.Seconds || g.Counters != s.Counters || g.Speedup != s.Speedup {
					t.Fatalf("workers=%d: profile[%d][%d] differs: %+v vs %+v", w, vi, ji, g, s)
				}
			}
		}
	}
}

// TestBuildDatasetDeterministicAcrossWorkers: fanning the per-
// (benchmark, recipe) flow runs out across cores must reproduce the
// serial dataset exactly — sample order, graphs and runtime labels.
func TestBuildDatasetDeterministicAcrossWorkers(t *testing.T) {
	run := func(workers int) *Dataset {
		ds, err := BuildDataset(lib, DatasetOptions{
			Benchmarks: []string{"adder", "dec"},
			Recipes:    synth.StandardRecipes[:2],
			Scale:      0.06,
			Workers:    workers,
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return ds
	}
	want := run(1)
	for _, w := range []int{2, 8} {
		got := run(w)
		for _, k := range JobKinds() {
			if len(got.Jobs[k]) != len(want.Jobs[k]) {
				t.Fatalf("workers=%d: %v has %d samples, want %d", w, k, len(got.Jobs[k]), len(want.Jobs[k]))
			}
			for i := range want.Jobs[k] {
				g, s := got.Jobs[k][i], want.Jobs[k][i]
				if g.Design != s.Design || g.Variant != s.Variant {
					t.Fatalf("workers=%d: %v sample %d is %s/%s, want %s/%s", w, k, i, g.Design, g.Variant, s.Design, s.Variant)
				}
				if !reflect.DeepEqual(g.Runtimes, s.Runtimes) {
					t.Fatalf("workers=%d: %v %s/%s labels differ: %v vs %v", w, k, g.Design, g.Variant, g.Runtimes, s.Runtimes)
				}
				if !reflect.DeepEqual(g.Graph.X, s.Graph.X) {
					t.Fatalf("workers=%d: %v %s/%s graphs differ", w, k, g.Design, g.Variant)
				}
			}
		}
	}
}
