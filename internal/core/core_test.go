package core

import (
	"math"
	"testing"

	"edacloud/internal/cloud"
	"edacloud/internal/gcn"
	"edacloud/internal/synth"
	"edacloud/internal/techlib"
)

var lib = techlib.Default14nm()

var charOpts = CharacterizeOptions{Scale: 0.03}

func characterized(t *testing.T, design string) *DesignCharacterization {
	t.Helper()
	char, err := CharacterizeEval(lib, design, charOpts)
	if err != nil {
		t.Fatalf("characterize %s: %v", design, err)
	}
	return char
}

func TestRunFlowProducesAllArtifacts(t *testing.T) {
	char := characterized(t, "ibex")
	if char.Cells == 0 || char.WorkScale <= 0 {
		t.Fatalf("characterization empty: %+v", char)
	}
	if len(char.Profiles) != 4 {
		t.Fatalf("expected 4 vCPU rows, got %d", len(char.Profiles))
	}
	for _, row := range char.Profiles {
		if len(row) != 4 {
			t.Fatalf("expected 4 jobs, got %d", len(row))
		}
		for _, p := range row {
			if p.Seconds <= 0 {
				t.Fatalf("%v at %d vCPUs: non-positive runtime", p.Kind, p.VCPUs)
			}
			if p.Counters.Instrs == 0 {
				t.Fatalf("%v: no instructions profiled", p.Kind)
			}
		}
	}
	if _, err := char.Profile(JobRouting, 4); err != nil {
		t.Fatal(err)
	}
	if _, err := char.Profile(JobRouting, 3); err == nil {
		t.Fatal("absent vCPU count accepted")
	}
}

// TestFigure2Shape asserts the orderings of the paper's Fig. 2a-c on a
// mid-size design: routing has the worst branch behaviour; placement
// and routing miss cache far more than synthesis and STA; placement
// leads vector-FP share with STA second.
func TestFigure2Shape(t *testing.T) {
	char := characterized(t, "jpeg")
	get := func(k JobKind, v int) JobProfile {
		p, err := char.Profile(k, v)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	// Fig. 2a: routing's branch-miss rate tops every other job at 1 vCPU.
	rb := get(JobRouting, 1).BranchMissPct
	for _, k := range []JobKind{JobSynthesis, JobPlacement, JobSTA} {
		if ob := get(k, 1).BranchMissPct; ob >= rb {
			t.Errorf("Fig2a: %v branch miss %.2f%% >= routing %.2f%%", k, ob, rb)
		}
	}
	// Fig. 2b: placement and routing miss more than synthesis and STA.
	for _, hot := range []JobKind{JobPlacement, JobRouting} {
		for _, cold := range []JobKind{JobSynthesis, JobSTA} {
			if get(hot, 1).CacheMissPct <= get(cold, 1).CacheMissPct {
				t.Errorf("Fig2b: %v cache miss %.1f%% <= %v %.1f%%",
					hot, get(hot, 1).CacheMissPct, cold, get(cold, 1).CacheMissPct)
			}
		}
	}
	// Fig. 2c: placement has the largest AVX share; STA beats synthesis
	// and routing.
	pf := get(JobPlacement, 1).FPVectorPct
	sf := get(JobSTA, 1).FPVectorPct
	for _, k := range []JobKind{JobSynthesis, JobRouting, JobSTA} {
		if of := get(k, 1).FPVectorPct; of >= pf {
			t.Errorf("Fig2c: %v FP share %.1f%% >= placement %.1f%%", k, of, pf)
		}
	}
	for _, k := range []JobKind{JobSynthesis, JobRouting} {
		if of := get(k, 1).FPVectorPct; of >= sf {
			t.Errorf("Fig2c: %v FP share %.1f%% >= STA %.1f%%", k, of, sf)
		}
	}
	// Fig. 2d: routing is the longest job serially and scales best.
	rt1 := get(JobRouting, 1).Seconds
	for _, k := range []JobKind{JobSynthesis, JobPlacement, JobSTA} {
		if get(k, 1).Seconds >= rt1 {
			t.Errorf("Fig2d: %v serial runtime >= routing", k)
		}
	}
	rSpeed := rt1 / get(JobRouting, 8).Seconds
	for _, k := range []JobKind{JobSynthesis, JobPlacement, JobSTA} {
		sp := get(k, 1).Seconds / get(k, 8).Seconds
		if sp >= rSpeed {
			t.Errorf("Fig2d: %v speedup %.2f >= routing %.2f", k, sp, rSpeed)
		}
	}
}

// TestFigure3Shape: large designs keep scaling to 8 vCPUs, small
// designs saturate near 4.
func TestFigure3Shape(t *testing.T) {
	small, err := RoutingSpeedupCurve(lib, "dyn_node", 8, charOpts)
	if err != nil {
		t.Fatal(err)
	}
	big, err := RoutingSpeedupCurve(lib, "swerv", 8, charOpts)
	if err != nil {
		t.Fatal(err)
	}
	if big[7] <= small[7] {
		t.Errorf("Fig3: big design speedup %.2f <= small %.2f at 8 vCPUs", big[7], small[7])
	}
	// Small design saturation: 8 vCPUs barely beats 4.
	smallGain := small[7] / small[3]
	bigGain := big[7] / big[3]
	if smallGain >= bigGain {
		t.Errorf("Fig3: small design 4->8 gain %.2f >= big %.2f (no saturation)", smallGain, bigGain)
	}
	for i := 1; i < 8; i++ {
		if big[i] < big[i-1]*0.9 {
			t.Errorf("Fig3: big design speedup collapsed at %d vCPUs: %v", i+1, big)
		}
	}
}

func TestMultiTenancySlowsJobs(t *testing.T) {
	busy := charOpts
	busy.Background = []cloud.CGroup{
		{Name: "t1", DemandCores: 14},
		{Name: "t2", DemandCores: 14},
	}
	idle := characterized(t, "dyn_node")
	loaded, err := CharacterizeEval(lib, "dyn_node", busy)
	if err != nil {
		t.Fatal(err)
	}
	pi, _ := idle.Profile(JobRouting, 8)
	pl, _ := loaded.Profile(JobRouting, 8)
	if pl.Seconds <= pi.Seconds {
		t.Fatalf("co-tenants did not slow the job: %g vs %g", pl.Seconds, pi.Seconds)
	}
}

func TestDeploymentProblemAndTableI(t *testing.T) {
	char := characterized(t, "ibex")
	catalog := cloud.DefaultCatalog()
	prob, err := BuildDeploymentProblem(char, catalog)
	if err != nil {
		t.Fatal(err)
	}
	if len(prob.Classes) != 4 {
		t.Fatalf("classes = %d", len(prob.Classes))
	}
	// Family recommendations must hold.
	if prob.Stages[int(JobSynthesis)][0].Instance.Family != cloud.GeneralPurpose {
		t.Error("synthesis not on general-purpose")
	}
	if prob.Stages[int(JobRouting)][0].Instance.Family != cloud.MemoryOptimized {
		t.Error("routing not on memory-optimized")
	}

	minTime := prob.MinTime()
	over := prob.OverProvision()
	under := prob.UnderProvision()
	if !over.Feasible || !under.Feasible {
		t.Fatal("fixed provisioning infeasible")
	}
	if over.TotalTime > under.TotalTime {
		t.Fatalf("over-provision slower than under-provision: %d vs %d", over.TotalTime, under.TotalTime)
	}

	rows, err := prob.TableI([]int{under.TotalTime * 2, under.TotalTime, (minTime + under.TotalTime) / 2, minTime, minTime - 1})
	if err != nil {
		t.Fatal(err)
	}
	// Loosest deadline must be feasible, sub-minimum must be NA, and
	// cost must not decrease as deadlines tighten.
	if !rows[0].Plan.Feasible {
		t.Fatal("loose deadline infeasible")
	}
	if rows[len(rows)-1].Plan.Feasible {
		t.Fatal("sub-minimum deadline feasible")
	}
	prevCost := 0.0
	for _, r := range rows {
		if !r.Plan.Feasible {
			continue
		}
		if r.Plan.TotalTime > r.DeadlineSec {
			t.Fatalf("plan exceeds deadline: %+v", r)
		}
		if prevCost > 0 && r.Plan.TotalCost < prevCost-1e-9 {
			t.Fatalf("cost decreased under tighter deadline")
		}
		prevCost = r.Plan.TotalCost
	}
	if rows[0].Plan.String() == "" || (&Plan{}).String() != "NA" {
		t.Fatal("plan formatting broken")
	}
}

// TestFigure6Shape: the optimizer sandwiches between the two fixed
// policies — cheaper than over-provisioning, and meeting a deadline
// under-provisioning cannot.
func TestFigure6Shape(t *testing.T) {
	catalog := cloud.DefaultCatalog()
	for _, design := range []string{"ibex", "jpeg"} {
		char := characterized(t, design)
		prob, err := BuildDeploymentProblem(char, catalog)
		if err != nil {
			t.Fatal(err)
		}
		cmp, err := CompareProvisioning(prob, 1.1)
		if err != nil {
			t.Fatal(err)
		}
		if !cmp.Opt.Feasible {
			t.Fatalf("%s: optimizer infeasible at 1.1x slack", design)
		}
		if cmp.Opt.TotalCost > cmp.Over.TotalCost {
			t.Errorf("%s: optimized cost $%.3f above over-provisioning $%.3f",
				design, cmp.Opt.TotalCost, cmp.Over.TotalCost)
		}
		if cmp.SavingVsOverPct <= 0 {
			t.Errorf("%s: no saving vs over-provisioning", design)
		}
		if cmp.Opt.TotalTime >= cmp.Under.TotalTime {
			t.Errorf("%s: optimized schedule as slow as under-provisioning", design)
		}
		if _, err := CompareProvisioning(prob, 0.5); err == nil {
			t.Error("sub-1 slack accepted")
		}
	}
}

func TestDatasetAndPredictor(t *testing.T) {
	ds, err := BuildDataset(lib, DatasetOptions{
		Benchmarks: []string{"adder", "dec", "priority", "cavlc", "int2float"},
		Recipes:    synth.StandardRecipes[:3],
		Scale:      0.06,
	})
	if err != nil {
		t.Fatal(err)
	}
	if ds.NumNetlists() != 15 {
		t.Fatalf("netlists = %d, want 15", ds.NumNetlists())
	}
	// 3 netlist jobs x 15 variants + 1 synthesis sample per benchmark.
	if ds.NumLabels() != (15*3+5)*4 {
		t.Fatalf("labels = %d", ds.NumLabels())
	}
	// Runtimes must decrease (weakly) with vCPUs for every sample.
	for _, k := range JobKinds() {
		for _, s := range ds.Jobs[k] {
			for i := 1; i < len(s.Runtimes); i++ {
				if s.Runtimes[i] > s.Runtimes[i-1]*1.001 {
					t.Fatalf("%v %s/%s: runtime rises with vCPUs: %v", k, s.Design, s.Variant, s.Runtimes)
				}
			}
		}
	}

	train, test := ds.SplitByDesign(JobPlacement, 0.2, 3)
	if len(train) == 0 || len(test) == 0 {
		t.Fatal("empty split")
	}
	trainDesigns := map[string]bool{}
	for _, s := range train {
		trainDesigns[s.Design] = true
	}
	for _, s := range test {
		if trainDesigns[s.Design] {
			t.Fatalf("design %s leaked into both splits", s.Design)
		}
	}

	cfg := gcn.Config{Hidden1: 16, Hidden2: 8, FCHidden: 8, LR: 3e-3, Epochs: 40}
	pred, eval, err := TrainPredictor(ds, cfg, 0.2, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range JobKinds() {
		je := eval.PerJob[k]
		if je == nil || len(je.Records) == 0 {
			t.Fatalf("%v: no eval records", k)
		}
		if je.AvgAbsPctErr <= 0 || math.IsNaN(je.AvgAbsPctErr) {
			t.Fatalf("%v: bad error metric %g", k, je.AvgAbsPctErr)
		}
		edges, counts := je.Histogram(8)
		if len(edges) != 9 || len(counts) != 8 {
			t.Fatalf("%v: histogram shape wrong", k)
		}
		sum := 0
		for _, c := range counts {
			sum += c
		}
		if sum != len(je.ErrorsSeconds()) {
			t.Fatalf("%v: histogram loses mass", k)
		}
	}
	// Prediction plumbing.
	g := ds.Jobs[JobRouting][0].Graph
	rt, err := pred.PredictRuntimes(JobRouting, g)
	if err != nil || len(rt) != 4 {
		t.Fatalf("PredictRuntimes: %v %v", rt, err)
	}
	for _, v := range rt {
		if v < 0 || math.IsNaN(v) {
			t.Fatalf("negative/NaN predicted runtime %v", rt)
		}
	}
	if _, err := pred.PredictRuntimes(JobKind(99), g); err == nil {
		t.Fatal("unknown job accepted")
	}
}

func TestJobKindStringsAndFamilies(t *testing.T) {
	if JobSynthesis.String() != "synthesis" || JobSTA.String() != "sta" || JobKind(9).String() == "" {
		t.Fatal("job names wrong")
	}
	if RecommendedFamily(JobSynthesis) != cloud.GeneralPurpose ||
		RecommendedFamily(JobPlacement) != cloud.MemoryOptimized ||
		RecommendedFamily(JobRouting) != cloud.MemoryOptimized ||
		RecommendedFamily(JobSTA) != cloud.GeneralPurpose {
		t.Fatal("family recommendations do not match the paper")
	}
}
