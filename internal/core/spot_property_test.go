package core

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"edacloud/internal/cloud"
	"edacloud/internal/flow"
	"edacloud/internal/mckp"
)

// TestFiftySeedRiskAdjustedBeatsNaiveSpot is the tentpole's property
// pinned across 50 seeded scenarios: plan a batch twice — naively
// (nominal spot prices, no hazard knowledge) and risk-adjusted — then
// replay both under the same seeded revocation timelines. The
// risk-adjusted batch must never pay a larger realized bill and never
// miss more deadlines. Everything is deterministic (seeded stage
// runtimes, seeded revocations), so this is a regression pin, not a
// flaky statistical claim.
func TestFiftySeedRiskAdjustedBeatsNaiveSpot(t *testing.T) {
	catalog := spotCatalog(t)
	od, err := catalog.ByName("gp.4x")
	if err != nil {
		t.Fatal(err)
	}
	spot, err := catalog.ByName("gp.4x.spot")
	if err != nil {
		t.Fatal(err)
	}
	const ratePerHour = 27.0 // lambda*t in [3.4,4.5] for 450-600 s stages
	const backoffSec = 30.0
	hz := mckp.Hazards{spot.Name: ratePerHour}
	retry := flow.RetryPolicy{MaxAttempts: 5000, BackoffSec: backoffSec}

	totalNaiveRevs := 0
	for seed := int64(0); seed < 50; seed++ {
		rng := rand.New(rand.NewSource(seed))
		var naiveJobs, riskJobs []flow.ForecastJob
		for ji := 0; ji < 3; ji++ {
			times := make([]int, 4)
			odTotal := 0
			for s := range times {
				times[s] = rng.Intn(151) + 450
				odTotal += times[s]
			}
			classes := make([]mckp.Class, len(times))
			for s, tt := range times {
				classes[s] = mckp.Class{Name: fmt.Sprintf("stage%d", s), Items: []mckp.Item{
					{Label: od.Name, TimeSec: tt, Cost: od.Cost(float64(tt))},
					{Label: spot.Name, TimeSec: tt, Cost: spot.Cost(float64(tt))},
				}}
			}
			deadline := int(1.2 * float64(odTotal))

			naiveSel, err := mckp.SolveMinCost(classes, deadline)
			if err != nil || !naiveSel.Feasible {
				t.Fatalf("seed %d: naive solve: %+v, %v", seed, naiveSel, err)
			}
			riskSel, err := mckp.SolveMinCost(mckp.RiskAdjust(classes, hz, backoffSec), deadline)
			if err != nil || !riskSel.Feasible {
				t.Fatalf("seed %d: risk solve: %+v, %v", seed, riskSel, err)
			}

			toJob := func(name string, sel mckp.Selection) flow.ForecastJob {
				fj := flow.ForecastJob{Name: name, DeadlineSec: float64(deadline), Retry: retry}
				for s, pick := range sel.Pick {
					it := od
					if classes[s].Items[pick].Label == spot.Name {
						it = spot
					}
					fj.Stages = append(fj.Stages, flow.ForecastStage{
						Kind: flow.JobKinds()[s], Type: it, Seconds: float64(times[s]),
					})
				}
				return fj
			}
			name := fmt.Sprintf("job%d", ji)
			naiveJobs = append(naiveJobs, toJob(name, naiveSel))
			riskJobs = append(riskJobs, toJob(name, riskSel))
		}

		run := func(jobs []flow.ForecastJob) *flow.Schedule {
			t.Helper()
			fleet, err := cloud.ParseFleetSpec(catalog, "gp.4x=3,gp.4x.spot=3")
			if err != nil {
				t.Fatal(err)
			}
			fleet.Revocation = cloud.NewRevocationModel(seed, map[string]float64{spot.Name: ratePerHour})
			sched, err := flow.Forecast(fleet, jobs)
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			return sched
		}
		naive, risk := run(naiveJobs), run(riskJobs)
		totalNaiveRevs += naive.Revocations

		if risk.TotalCostUSD > naive.TotalCostUSD+1e-9 {
			t.Errorf("seed %d: risk-adjusted bill %g exceeds naive-spot bill %g (naive revs %d)",
				seed, risk.TotalCostUSD, naive.TotalCostUSD, naive.Revocations)
		}
		if risk.DeadlinesMissed > naive.DeadlinesMissed {
			t.Errorf("seed %d: risk-adjusted missed %d deadlines, naive %d",
				seed, risk.DeadlinesMissed, naive.DeadlinesMissed)
		}

		// Zero-hazard control: the same naive plan replayed under a
		// zero-hazard model is byte-identical to a model-free replay.
		fleetPlain, err := cloud.ParseFleetSpec(catalog, "gp.4x=3,gp.4x.spot=3")
		if err != nil {
			t.Fatal(err)
		}
		plain, err := flow.Forecast(fleetPlain, naiveJobs)
		if err != nil {
			t.Fatal(err)
		}
		fleetZero, err := cloud.ParseFleetSpec(catalog, "gp.4x=3,gp.4x.spot=3")
		if err != nil {
			t.Fatal(err)
		}
		fleetZero.Revocation = cloud.NewRevocationModel(seed, nil)
		zero, err := flow.Forecast(fleetZero, naiveJobs)
		if err != nil {
			t.Fatal(err)
		}
		if zero.Revocations != 0 || zero.TotalCostUSD != plain.TotalCostUSD ||
			zero.MakespanSec != plain.MakespanSec ||
			math.Abs(zero.TotalWaitSec-plain.TotalWaitSec) > 0 {
			t.Fatalf("seed %d: zero-hazard replay diverged from model-free replay", seed)
		}
	}
	// The property must have had teeth: naive plans actually suffered.
	if totalNaiveRevs < 100 {
		t.Fatalf("only %d naive revocations across 50 seeds; hazard too weak to test anything", totalNaiveRevs)
	}
}
