package core

import (
	"fmt"

	"edacloud/internal/aig"
	"edacloud/internal/flow"
)

// HierarchicalResult bundles one hierarchical batch run: the split, the
// contended schedule of its sub-design jobs and the stitched
// design-level graph.
type HierarchicalResult struct {
	Batch    *flow.HierarchicalBatch
	Schedule *flow.Schedule
	Stitched *aig.Graph
}

// RunHierarchicalBatch splits base.Design into cone partitions of
// roughly grain AND nodes, schedules one flow job per partition on
// sch's fleet, and stitches the optimized sub-designs back into one
// graph. It is the workflow-level entry for million-gate designs: one
// design too large for a single machine becomes a batch of
// partition-sized jobs that the same placement simulation, policies
// and forecasts handle like any other batch.
func RunHierarchicalBatch(sch *flow.Scheduler, base flow.Job, grain int) (*HierarchicalResult, error) {
	hb, err := flow.Hierarchical(base, grain)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	schedule, err := sch.Run(nil, hb.Jobs)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	stitched, err := hb.Stitch(schedule.Jobs)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	return &HierarchicalResult{Batch: hb, Schedule: schedule, Stitched: stitched}, nil
}
