package core

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"edacloud/internal/gcn"
)

// Predictor persistence: one container stream holding the vCPU axis
// plus the per-application model and scaler, so a trained predictor
// ships with the planning tool instead of retraining per run.

const predictorMagic = "edacloud-predictor-v1"

// Save serializes the predictor bundle.
func (p *Predictor) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, predictorMagic)
	vcpus := make([]string, len(p.VCPUs))
	for i, v := range p.VCPUs {
		vcpus[i] = strconv.Itoa(v)
	}
	fmt.Fprintf(bw, "vcpus %s\n", strings.Join(vcpus, " "))
	for _, k := range JobKinds() {
		model := p.Models[k]
		scaler := p.Scalers[k]
		if model == nil || scaler == nil {
			return fmt.Errorf("core: predictor missing %v model", k)
		}
		fmt.Fprintf(bw, "job %s\n", k)
		if err := model.Save(bw); err != nil {
			return err
		}
		if err := scaler.Save(bw); err != nil {
			return err
		}
	}
	fmt.Fprintln(bw, "end-predictor")
	return bw.Flush()
}

// ReadPredictor parses a bundle written by Save.
func ReadPredictor(r io.Reader) (*Predictor, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 64*1024*1024)
	if !sc.Scan() || sc.Text() != predictorMagic {
		return nil, fmt.Errorf("core: not a %s stream", predictorMagic)
	}
	if !sc.Scan() {
		return nil, fmt.Errorf("core: truncated predictor stream")
	}
	f := strings.Fields(sc.Text())
	if len(f) < 2 || f[0] != "vcpus" {
		return nil, fmt.Errorf("core: bad vcpus line %q", sc.Text())
	}
	p := &Predictor{Models: map[JobKind]*gcn.Model{}, Scalers: map[JobKind]*gcn.TargetScaler{}}
	for _, s := range f[1:] {
		v, err := strconv.Atoi(s)
		if err != nil {
			return nil, fmt.Errorf("core: bad vcpu %q", s)
		}
		p.VCPUs = append(p.VCPUs, v)
	}
	for _, k := range JobKinds() {
		if !sc.Scan() || sc.Text() != "job "+k.String() {
			return nil, fmt.Errorf("core: expected job %v header", k)
		}
		model, err := gcn.ReadModelFrom(sc)
		if err != nil {
			return nil, fmt.Errorf("core: %v model: %w", k, err)
		}
		scaler, err := gcn.ReadScalerFrom(sc)
		if err != nil {
			return nil, fmt.Errorf("core: %v scaler: %w", k, err)
		}
		p.Models[k] = model
		p.Scalers[k] = scaler
	}
	if !sc.Scan() || sc.Text() != "end-predictor" {
		return nil, fmt.Errorf("core: missing end marker")
	}
	return p, nil
}
