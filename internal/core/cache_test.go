package core

import (
	"fmt"
	"math/rand"
	"testing"

	"edacloud/internal/cache"
	"edacloud/internal/cloud"
	"edacloud/internal/designs"
	"edacloud/internal/flow"
	"edacloud/internal/mckp"
	"edacloud/internal/synth"
)

// TestPredictCacheHitsWithinBatchDedup: against an empty store, the
// first job of a design predicts all misses and every later job of the
// same design predicts all hits — the pending-prefix half of the
// prediction contract.
func TestPredictCacheHitsWithinBatchDedup(t *testing.T) {
	specs := contendedBatchSpecs(t, []string{"aes", "aes", "dyn_node"}, nil)
	store := cache.New(0)
	if err := PredictCacheHits(store, lib, specs, charOpts); err != nil {
		t.Fatal(err)
	}
	for k, hit := range specs[0].CacheHits {
		if hit {
			t.Fatalf("first aes predicted a hit on %s against an empty store", k)
		}
	}
	for _, k := range JobKinds() {
		if !specs[1].CacheHits[k] {
			t.Fatalf("second aes did not predict a hit on %s", k)
		}
		if specs[2].CacheHits[k] {
			t.Fatalf("dyn_node predicted a hit on %s with no shared prefix", k)
		}
	}
}

// TestCacheAwareForecastMatchesExecution is the acceptance contract:
// a batch planned under predicted hits and executed with the same
// store must match its forecast exactly — per-job starts, finishes,
// waits, busy time, bills and per-stage cached flags — and the
// predicted hits must be the hits the scheduler actually bills.
func TestCacheAwareForecastMatchesExecution(t *testing.T) {
	specs := contendedBatchSpecs(t, []string{"aes", "aes", "dyn_node"}, nil)
	fleet, err := cloud.ParseFleetSpec(cloud.DefaultCatalog(), "gp.2x=1,mem.2x=1")
	if err != nil {
		t.Fatal(err)
	}
	store := cache.New(0)
	if err := PredictCacheHits(store, lib, specs, charOpts); err != nil {
		t.Fatal(err)
	}
	bp, err := OptimizeBatchOpts(specs, fleet, BatchOptions{Cache: store})
	if err != nil {
		t.Fatal(err)
	}
	if !bp.Feasible {
		t.Fatal("deadline-free batch infeasible")
	}

	sched, err := ExecuteBatchPlan(lib, specs, bp, charOpts, fleet.Clone(), false)
	if err != nil {
		t.Fatal(err)
	}
	if sched.CacheHits == 0 {
		t.Fatal("execution billed no cache hits on a duplicated design")
	}
	if sched.CacheHits != bp.Forecast.CacheHits {
		t.Fatalf("execution billed %d hits, forecast predicted %d", sched.CacheHits, bp.Forecast.CacheHits)
	}
	for i, j := range sched.Jobs {
		if j.Err != nil {
			t.Fatalf("job %s: %v", j.Name, j.Err)
		}
		f := bp.Forecast.Jobs[i]
		if j.StartSec != f.StartSec || j.FinishSec != f.FinishSec ||
			j.WaitSec != f.WaitSec || j.Seconds != f.Seconds || j.CostUSD != f.CostUSD {
			t.Fatalf("job %s simulated %g/%g/%g/%g/%g, forecast %g/%g/%g/%g/%g",
				j.Name, j.StartSec, j.FinishSec, j.WaitSec, j.Seconds, j.CostUSD,
				f.StartSec, f.FinishSec, f.WaitSec, f.Seconds, f.CostUSD)
		}
		if len(j.Stages) != len(f.Stages) {
			t.Fatalf("job %s: %d stages executed, %d forecast", j.Name, len(j.Stages), len(f.Stages))
		}
		for s := range j.Stages {
			if j.Stages[s].Cached != f.Stages[s].Cached ||
				j.Stages[s].StartSec != f.Stages[s].StartSec ||
				j.Stages[s].Seconds != f.Stages[s].Seconds {
				t.Fatalf("job %s stage %d: executed %+v, forecast %+v",
					j.Name, s, j.Stages[s], f.Stages[s])
			}
			if hit := specs[i].CacheHits[j.Stages[s].Kind]; hit != j.Stages[s].Cached {
				t.Fatalf("job %s stage %s: predicted hit=%v, billed hit=%v",
					j.Name, j.Stages[s].Kind, hit, j.Stages[s].Cached)
			}
		}
	}
}

// planCostUnderHits prices a plan's bill given the predicted hits: a
// hit stage is served from the store for free, everything else bills
// its pick. This is the common yardstick for comparing a cache-aware
// plan against a cache-blind one — both executed over the same store.
func planCostUnderHits(bp *BatchPlan, specs []BatchJobSpec) float64 {
	var total float64
	for i, plan := range bp.Plans {
		for _, pick := range plan.Picks {
			if specs[i].CacheHits[pick.Job] {
				continue
			}
			total += pick.Cost
		}
	}
	return total
}

// TestCacheAwarePlansNeverCostMore sweeps 50 seeded shared-prefix
// workloads: on each, the batch solved under predicted hits must cost
// no more (under the shared store both would execute against) than
// the cache-blind batch, and must be strictly cheaper somewhere.
func TestCacheAwarePlansNeverCostMore(t *testing.T) {
	mix := []string{"aes", "dyn_node", "ibex"}
	chars := map[string]*DesignCharacterization{}
	catalog := cloud.DefaultCatalog()
	for _, d := range mix {
		chars[d] = characterized(t, d)
	}
	recipe := charOpts.withDefaults().Recipe
	// Capacity-ample on purpose: with no contention the joint solve
	// reduces to per-job DPs, where cache adjustment dominates itemwise
	// (a hit class only ever gets cheaper and faster), so aware <= blind
	// is a theorem rather than a heuristic outcome.
	fleet, err := cloud.ParseFleetSpec(catalog,
		"gp.1x=6,gp.2x=6,gp.4x=6,gp.8x=6,mem.1x=6,mem.2x=6,mem.4x=6,mem.8x=6,cpu.1x=6,cpu.2x=6,cpu.4x=6,cpu.8x=6")
	if err != nil {
		t.Fatal(err)
	}

	feasible, strictly := 0, 0
	for seed := int64(0); seed < 50; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(3)
		specs := make([]BatchJobSpec, n)
		for i := range specs {
			d := mix[rng.Intn(len(mix))]
			char := chars[d]
			prob, err := BuildDeploymentProblem(char, catalog)
			if err != nil {
				t.Fatal(err)
			}
			specs[i] = BatchJobSpec{Name: fmt.Sprintf("s%d-j%d-%s", seed, i, d), Char: char, Prob: prob}
			if rng.Intn(2) == 0 {
				// A loose-but-binding deadline, calibrated to the job's own
				// fastest cold time: tight enough that the blind plan must
				// buy speed, loose enough to stay feasible solo.
				minT := mckp.MinTotalTime(prob.Classes)
				specs[i].DeadlineSec = minT + minT/2 + rng.Intn(minT+1)
			}
		}
		// Pre-warm the store with a synthesis-only run per design — the
		// shared-prefix workload: an earlier exploration synthesized these
		// designs, so every batch job hits on synthesis but must still
		// place, route and analyze. This is what makes hits partial and
		// the aware-vs-blind comparison non-trivial.
		store := cache.New(0)
		for _, d := range mix {
			p := flow.NewPipeline(
				flow.WithStages(flow.Synthesis(synth.Options{Recipe: recipe})),
				flow.WithCache(store),
			)
			if _, err := p.Run(designs.MustEvalDesign(d, charOpts.withDefaults().Scale), lib); err != nil {
				t.Fatal(err)
			}
		}
		if err := PredictCacheHits(store, lib, specs, charOpts); err != nil {
			t.Fatal(err)
		}
		blindSpecs := make([]BatchJobSpec, n)
		copy(blindSpecs, specs)
		for i := range blindSpecs {
			blindSpecs[i].CacheHits = nil
		}

		aware, err := OptimizeBatchOpts(specs, fleet, BatchOptions{Cache: store})
		if err != nil {
			t.Fatal(err)
		}
		blind, err := OptimizeBatchOpts(blindSpecs, fleet, BatchOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if !blind.Feasible {
			// The blind plan cannot meet the deadlines the aware plan can
			// (cached stages shrink to the probe constant); the aware solve
			// must not be worse.
			if !aware.Feasible {
				continue
			}
			feasible++
			strictly++
			continue
		}
		if !aware.Feasible {
			t.Fatalf("seed %d: cache-blind batch feasible but cache-aware not", seed)
		}
		feasible++
		ca := planCostUnderHits(aware, specs)
		cb := planCostUnderHits(blind, specs)
		if ca > cb+1e-9 {
			t.Fatalf("seed %d: cache-aware plan costs $%.6f, cache-blind $%.6f", seed, ca, cb)
		}
		if ca < cb-1e-9 {
			strictly++
		}
	}
	if feasible < 40 {
		t.Fatalf("only %d of 50 seeds produced a feasible batch", feasible)
	}
	if strictly == 0 {
		t.Fatal("cache-aware planning never beat cache-blind across 50 shared-prefix seeds")
	}
}
