// Package core implements the paper's end-to-end workflow (its
// Fig. 1): characterize the four EDA applications under different VM
// configurations, predict per-configuration runtimes for unseen
// designs with the GCN model, and optimize cloud deployments with the
// multi-choice knapsack solver so deadlines are met at minimum cost.
package core

import (
	"fmt"

	"edacloud/internal/aig"
	"edacloud/internal/cloud"
	"edacloud/internal/netlist"
	"edacloud/internal/perf"
	"edacloud/internal/place"
	"edacloud/internal/route"
	"edacloud/internal/sta"
	"edacloud/internal/synth"
	"edacloud/internal/techlib"
)

// JobKind identifies one of the four characterized EDA applications.
type JobKind int

// The four applications of the paper's characterization.
const (
	JobSynthesis JobKind = iota
	JobPlacement
	JobRouting
	JobSTA
)

// JobKinds lists all four in flow order.
func JobKinds() []JobKind {
	return []JobKind{JobSynthesis, JobPlacement, JobRouting, JobSTA}
}

func (k JobKind) String() string {
	switch k {
	case JobSynthesis:
		return "synthesis"
	case JobPlacement:
		return "placement"
	case JobRouting:
		return "routing"
	case JobSTA:
		return "sta"
	}
	return fmt.Sprintf("job(%d)", int(k))
}

// RecommendedFamily returns the paper's instance-family recommendation
// (Sec. III.A takeaways): synthesis and STA on general-purpose VMs,
// placement and routing on memory-optimized VMs.
func RecommendedFamily(k JobKind) cloud.Family {
	switch k {
	case JobPlacement, JobRouting:
		return cloud.MemoryOptimized
	default:
		return cloud.GeneralPurpose
	}
}

// FlowOptions configures a full 4-stage flow run.
type FlowOptions struct {
	Recipe          synth.Recipe
	RegisterOutputs bool
	ClockPeriodNs   float64
	// NewProbe creates the per-job instrumentation; nil runs the flow
	// uninstrumented. A fresh probe per job mirrors the paper's setup,
	// where each application runs as its own profiled process.
	NewProbe func(JobKind) *perf.Probe
	// RouteWorkers enables real goroutine parallelism in uninstrumented
	// routing.
	RouteWorkers int
	// Workers bounds the worker pools of the synthesis, placement and
	// STA kernels; 0 means GOMAXPROCS. Results are identical for every
	// value.
	Workers int
}

// FlowResult bundles the artifacts and profiles of one flow run.
type FlowResult struct {
	Optimized *aig.Graph
	Netlist   *netlist.Netlist
	Placement *place.Placement
	Routing   *route.Result
	Timing    *sta.Result
	Reports   map[JobKind]*perf.Report
}

// RunFlow executes synthesis, placement, routing and STA on the design
// and returns all artifacts plus one performance report per job.
func RunFlow(g *aig.Graph, lib *techlib.Library, opts FlowOptions) (*FlowResult, error) {
	probeFor := opts.NewProbe
	if probeFor == nil {
		probeFor = func(JobKind) *perf.Probe { return nil }
	}
	out := &FlowResult{Reports: map[JobKind]*perf.Report{}}

	sres, err := synth.Synthesize(g, lib, synth.Options{
		Recipe:          opts.Recipe,
		RegisterOutputs: opts.RegisterOutputs,
		Probe:           probeFor(JobSynthesis),
		Workers:         opts.Workers,
	})
	if err != nil {
		return nil, fmt.Errorf("core: synthesis: %w", err)
	}
	out.Optimized = sres.Optimized
	out.Netlist = sres.Netlist
	out.Reports[JobSynthesis] = sres.Report

	pl, preport, err := place.Place(out.Netlist, place.Options{Probe: probeFor(JobPlacement), Workers: opts.Workers})
	if err != nil {
		return nil, fmt.Errorf("core: placement: %w", err)
	}
	out.Placement = pl
	out.Reports[JobPlacement] = preport

	rres, rreport, err := route.Route(out.Netlist, pl, route.Options{
		Probe:   probeFor(JobRouting),
		Workers: opts.RouteWorkers,
	})
	if err != nil {
		return nil, fmt.Errorf("core: routing: %w", err)
	}
	out.Routing = rres
	out.Reports[JobRouting] = rreport

	tres, treport, err := sta.Analyze(out.Netlist, pl, sta.Options{
		ClockPeriodNs: opts.ClockPeriodNs,
		Probe:         probeFor(JobSTA),
		Workers:       opts.Workers,
	})
	if err != nil {
		return nil, fmt.Errorf("core: sta: %w", err)
	}
	out.Timing = tres
	out.Reports[JobSTA] = treport
	return out, nil
}
