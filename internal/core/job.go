// Package core implements the paper's end-to-end workflow (its
// Fig. 1): characterize the four EDA applications under different VM
// configurations, predict per-configuration runtimes for unseen
// designs with the GCN model, and optimize cloud deployments with the
// multi-choice knapsack solver so deadlines are met at minimum cost.
//
// Flow execution itself lives in internal/flow (Stage/Pipeline/
// Scheduler); this package keeps thin compatibility wrappers —
// RunFlow, NewJobProbe, the JobKind aliases — and layers the
// characterization, prediction and optimization experiments on top.
package core

import (
	"fmt"

	"edacloud/internal/aig"
	"edacloud/internal/cloud"
	"edacloud/internal/flow"
	"edacloud/internal/netlist"
	"edacloud/internal/perf"
	"edacloud/internal/place"
	"edacloud/internal/route"
	"edacloud/internal/sta"
	"edacloud/internal/synth"
	"edacloud/internal/techlib"
)

// JobKind identifies one of the four characterized EDA applications.
// It is an alias of flow.JobKind so the two layers share one currency.
type JobKind = flow.JobKind

// The four applications of the paper's characterization.
const (
	JobSynthesis = flow.JobSynthesis
	JobPlacement = flow.JobPlacement
	JobRouting   = flow.JobRouting
	JobSTA       = flow.JobSTA
)

// JobKinds lists all four in flow order.
func JobKinds() []JobKind { return flow.JobKinds() }

// RecommendedFamily returns the paper's instance-family recommendation
// (Sec. III.A takeaways): synthesis and STA on general-purpose VMs,
// placement and routing on memory-optimized VMs.
func RecommendedFamily(k JobKind) cloud.Family {
	switch k {
	case JobPlacement, JobRouting:
		return cloud.MemoryOptimized
	default:
		return cloud.GeneralPurpose
	}
}

// FlowOptions configures a full 4-stage flow run.
type FlowOptions struct {
	Recipe          synth.Recipe
	RegisterOutputs bool
	ClockPeriodNs   float64
	// NewProbe creates the per-job instrumentation; nil runs the flow
	// uninstrumented. A fresh probe per job mirrors the paper's setup,
	// where each application runs as its own profiled process.
	NewProbe func(JobKind) *perf.Probe
	// RouteWorkers enables real goroutine parallelism in uninstrumented
	// routing.
	RouteWorkers int
	// Workers bounds the worker pools of the synthesis, placement and
	// STA kernels; 0 means GOMAXPROCS. Results are identical for every
	// value.
	Workers int
}

// FlowResult bundles the artifacts and profiles of one flow run.
type FlowResult struct {
	Optimized *aig.Graph
	Netlist   *netlist.Netlist
	Placement *place.Placement
	Routing   *route.Result
	Timing    *sta.Result
	Reports   map[JobKind]*perf.Report
}

// pipelineFor translates FlowOptions to the flow.Pipeline options of
// the equivalent full flow.
func pipelineFor(opts FlowOptions) *flow.Pipeline {
	return flow.NewPipeline(
		flow.WithRecipe(opts.Recipe),
		flow.WithRegisterOutputs(opts.RegisterOutputs),
		flow.WithClockPeriodNs(opts.ClockPeriodNs),
		flow.WithWorkers(opts.Workers),
		flow.WithStageWorkers(flow.JobRouting, opts.RouteWorkers),
		flow.WithNewProbe(opts.NewProbe),
	)
}

// RunFlow executes synthesis, placement, routing and STA on the design
// and returns all artifacts plus one performance report per job. It is
// a compatibility wrapper over the flow package's default pipeline;
// new code should build a flow.Pipeline directly.
func RunFlow(g *aig.Graph, lib *techlib.Library, opts FlowOptions) (*FlowResult, error) {
	rc, err := pipelineFor(opts).Run(g, lib)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	return &FlowResult{
		Optimized: rc.Optimized,
		Netlist:   rc.Netlist,
		Placement: rc.Placement,
		Routing:   rc.Routing,
		Timing:    rc.Timing,
		Reports:   rc.Reports,
	}, nil
}
