package core

import (
	"math"
	"testing"

	"edacloud/internal/cloud"
)

// contendedBatchSpecs characterizes the named designs and wraps them
// as batch jobs with the given per-job deadlines (0 = none), against
// the default catalog.
func contendedBatchSpecs(t *testing.T, names []string, deadlines []int) []BatchJobSpec {
	t.Helper()
	catalog := cloud.DefaultCatalog()
	specs := make([]BatchJobSpec, len(names))
	chars := map[string]*DesignCharacterization{}
	for i, name := range names {
		char, ok := chars[name]
		if !ok {
			char = characterized(t, name)
			chars[name] = char
		}
		prob, err := BuildDeploymentProblem(char, catalog)
		if err != nil {
			t.Fatal(err)
		}
		specs[i] = BatchJobSpec{
			Name: name + "#" + string(rune('0'+i)),
			Char: char,
			Prob: prob,
		}
		if deadlines != nil {
			specs[i].DeadlineSec = deadlines[i]
		}
	}
	return specs
}

// TestBatchPlanExecutionMatchesPrediction is the batch analogue of
// TestPlanExecutionMatchesPrediction and the contract the co-optimizer
// rests on: the contention-aware forecast (the scheduler's placement
// engine replayed over predicted stage runtimes) must match the real
// fleet simulation of the co-optimized plans exactly — per-job starts,
// waits, finishes, busy times and bills — and the batch plan must not
// cost more than N independently optimized plans run on the same
// fleet.
func TestBatchPlanExecutionMatchesPrediction(t *testing.T) {
	specs := contendedBatchSpecs(t, []string{"dyn_node", "aes", "ibex"}, nil)
	// Two machines for three 4-stage flows: synthesis and STA contend
	// for the lone general-purpose instance, placement and routing for
	// the lone memory-optimized one.
	fleet, err := cloud.ParseFleetSpec(cloud.DefaultCatalog(), "gp.2x=1,mem.2x=1")
	if err != nil {
		t.Fatal(err)
	}

	bp, err := OptimizeBatch(specs, fleet)
	if err != nil {
		t.Fatal(err)
	}
	if !bp.Feasible {
		t.Fatal("deadline-free batch infeasible")
	}
	if bp.Forecast == nil || len(bp.Forecast.Jobs) != len(specs) {
		t.Fatalf("forecast missing or short: %+v", bp.Forecast)
	}
	if bp.Forecast.TotalWaitSec <= 0 {
		t.Fatal("three flows on two machines predicted no queueing")
	}

	sched, err := ExecuteBatchPlan(lib, specs, bp, charOpts, fleet.Clone(), false)
	if err != nil {
		t.Fatal(err)
	}
	for i, j := range sched.Jobs {
		if j.Err != nil {
			t.Fatalf("job %s: %v", j.Name, j.Err)
		}
		f := bp.Forecast.Jobs[i]
		if j.Name != f.Name {
			t.Fatalf("job %d is %q, forecast %q", i, j.Name, f.Name)
		}
		if j.StartSec != f.StartSec || j.FinishSec != f.FinishSec ||
			j.WaitSec != f.WaitSec || j.Seconds != f.Seconds || j.CostUSD != f.CostUSD {
			t.Fatalf("job %s simulated start/finish/wait/busy/cost %g/%g/%g/%g/%g, forecast %g/%g/%g/%g/%g",
				j.Name, j.StartSec, j.FinishSec, j.WaitSec, j.Seconds, j.CostUSD,
				f.StartSec, f.FinishSec, f.WaitSec, f.Seconds, f.CostUSD)
		}
		if len(j.Stages) != len(f.Stages) {
			t.Fatalf("job %s placed %d stages, forecast %d", j.Name, len(j.Stages), len(f.Stages))
		}
		for s, st := range j.Stages {
			fs := f.Stages[s]
			if st.Kind != fs.Kind || st.Instance != fs.Instance || st.Type.Name != fs.Type.Name ||
				st.StartSec != fs.StartSec || st.WaitSec != fs.WaitSec ||
				st.Seconds != fs.Seconds || st.CostUSD != fs.CostUSD {
				t.Fatalf("job %s stage %s: simulated %+v, forecast %+v", j.Name, st.Kind, st, fs)
			}
		}
	}
	if sched.TotalCostUSD != bp.Forecast.TotalCostUSD ||
		sched.MakespanSec != bp.Forecast.MakespanSec ||
		sched.TotalWaitSec != bp.Forecast.TotalWaitSec {
		t.Fatalf("aggregates: simulated %g/%g/%g, forecast %g/%g/%g",
			sched.TotalCostUSD, sched.MakespanSec, sched.TotalWaitSec,
			bp.Forecast.TotalCostUSD, bp.Forecast.MakespanSec, bp.Forecast.TotalWaitSec)
	}

	// The co-optimized batch never costs more than N independently
	// optimized plans executed on the same contended fleet.
	ibp, err := IndependentBatchPlan(specs, fleet)
	if err != nil {
		t.Fatal(err)
	}
	if !ibp.Feasible {
		t.Fatal("independent baseline infeasible")
	}
	isched, err := ExecuteBatchPlan(lib, specs, ibp, charOpts, fleet.Clone(), false)
	if err != nil {
		t.Fatal(err)
	}
	if sched.TotalCostUSD > isched.TotalCostUSD+1e-9 {
		t.Fatalf("batch bill %g exceeds independent bill %g", sched.TotalCostUSD, isched.TotalCostUSD)
	}
}

// TestAdaptivePolicyRecoversSlack: identical flows contending for a
// small fleet under deadlines the static plans blow — the adaptive
// policy must upgrade queue-starved stages off-plan and miss no more
// deadlines than the static execution.
func TestAdaptivePolicyRecoversSlack(t *testing.T) {
	specs := contendedBatchSpecs(t, []string{"ibex", "ibex", "ibex"}, nil)
	fleet, err := cloud.ParseFleetSpec(cloud.DefaultCatalog(), "gp.1x=1,gp.8x=1,mem.1x=1,mem.8x=1")
	if err != nil {
		t.Fatal(err)
	}
	// Derive deadlines from an uncontended forecast: each job gets 1.3x
	// its own independent serial runtime — met alone, blown in a queue.
	ibp, err := IndependentBatchPlan(specs, fleet)
	if err != nil {
		t.Fatal(err)
	}
	for i := range specs {
		specs[i].DeadlineSec = int(1.3 * float64(ibp.Plans[i].TotalTime))
	}
	ibp, err = IndependentBatchPlan(specs, fleet)
	if err != nil {
		t.Fatal(err)
	}
	if !ibp.Feasible {
		t.Fatal("independent plans infeasible under their own deadlines")
	}

	static, err := ExecuteBatchPlan(lib, specs, ibp, charOpts, fleet.Clone(), false)
	if err != nil {
		t.Fatal(err)
	}
	adaptive, err := ExecuteBatchPlan(lib, specs, ibp, charOpts, fleet.Clone(), true)
	if err != nil {
		t.Fatal(err)
	}
	if static.Failed != 0 || adaptive.Failed != 0 {
		t.Fatalf("failures: static %d adaptive %d", static.Failed, adaptive.Failed)
	}
	if adaptive.DeadlinesMissed > static.DeadlinesMissed {
		t.Fatalf("adaptive misses %d deadlines, static %d", adaptive.DeadlinesMissed, static.DeadlinesMissed)
	}
	// The identical plans serialize on the cheap machines: the static
	// run must actually miss deadlines for the comparison to bite, and
	// the adaptive run must have moved at least one stage off-plan.
	if static.DeadlinesMissed == 0 {
		t.Fatal("static execution missed no deadlines; contention scenario too loose")
	}
	upgrades := 0
	for i, j := range adaptive.Jobs {
		sp, err := ibp.Plans[i].StagePlan()
		if err != nil {
			t.Fatal(err)
		}
		for _, st := range j.Stages {
			if st.Type.Name != sp[st.Kind].Name {
				upgrades++
			}
		}
	}
	if upgrades == 0 {
		t.Fatal("adaptive policy never left the plan despite eaten slack")
	}
	if adaptive.DeadlinesMissed >= static.DeadlinesMissed {
		t.Fatalf("adaptive recovered nothing: %d vs %d missed", adaptive.DeadlinesMissed, static.DeadlinesMissed)
	}
	// Upgrades buy time with money: the adaptive bill may exceed the
	// static one but must stay within the fleet's ledger accounting.
	if math.Abs(adaptive.TotalCostUSD-adaptive.Fleet.TotalCostUSD()) > 1e-9 {
		t.Fatalf("adaptive bill %g vs fleet ledger %g", adaptive.TotalCostUSD, adaptive.Fleet.TotalCostUSD())
	}
	// And the co-optimizer, given the same deadlines, should produce a
	// batch whose predicted misses do not exceed the static execution's.
	bp, err := OptimizeBatch(specs, fleet)
	if err != nil {
		t.Fatal(err)
	}
	if bp.Feasible && bp.Selection.MissedDeadlines > static.DeadlinesMissed {
		t.Fatalf("co-optimizer predicts %d misses, static execution %d",
			bp.Selection.MissedDeadlines, static.DeadlinesMissed)
	}
}
