package core

import (
	"fmt"
	"math"

	"edacloud/internal/cloud"
	"edacloud/internal/designs"
	"edacloud/internal/flow"
	"edacloud/internal/ints"
	"edacloud/internal/par"
	"edacloud/internal/perf"
	"edacloud/internal/place"
	"edacloud/internal/route"
	"edacloud/internal/synth"
	"edacloud/internal/techlib"
)

// CharacterizeOptions configures the Fig. 2 / Fig. 3 experiments.
type CharacterizeOptions struct {
	// Scale shrinks the generated designs so characterization completes
	// in seconds; 0 means 0.05. The cache hierarchy is sized to the
	// design (see newProbe) so that working-set-to-cache ratios
	// — the quantity behind the paper's Fig. 2b — are preserved, and
	// runtimes are extrapolated back through Machine.WorkScale.
	Scale float64
	// VCPUs lists the machine configurations; nil means {1,2,4,8}.
	VCPUs []int
	// Recipe is the synthesis script; zero value means raw mapping.
	Recipe synth.Recipe
	// Background simulates co-tenants on the characterization host (the
	// paper's multi-tenancy environment); nil means an idle host.
	Background []cloud.CGroup
	// Host is the physical machine; zero means the paper's 14-core Xeon.
	Host cloud.Host
	// Workers bounds both the fan-out of per-VM-config profiling runs
	// across real cores — the paper's cloud-instance fan-out — and the
	// worker pools inside each flow's kernels, so Workers: 1 is a true
	// serial baseline; 0 means GOMAXPROCS. Results are identical for
	// every value.
	Workers int
}

func (o CharacterizeOptions) withDefaults() CharacterizeOptions {
	if o.Scale == 0 {
		o.Scale = 0.05
	}
	if o.Recipe.Name == "" {
		// Production flows run a full optimization script; its iterative
		// passes are what make synthesis the second-longest job in the
		// paper's Fig. 2d.
		o.Recipe, _ = synth.RecipeByName("resyn2")
	}
	if o.VCPUs == nil {
		o.VCPUs = []int{1, 2, 4, 8}
	}
	if o.Host.Cores == 0 {
		o.Host = cloud.DefaultHost()
	}
	return o
}

// NewJobProbe builds the per-job instrumentation for a VM of the given
// vCPU count profiling a design of roughly estCells instances; see
// flow.NewJobProbe for the sizing rationale.
func NewJobProbe(vcpus, estCells int) *perf.Probe {
	return flow.NewJobProbe(vcpus, estCells)
}

// EstimateCells predicts mapped instance count from AIG size (the
// mapper covers roughly two AND nodes per cell).
func EstimateCells(ands int) int { return flow.EstimateCells(ands) }

// workScaleFor extrapolates simulated runtime to the full-size design.
// EDA runtimes grow superlinearly in instance count (longer routes,
// more solver iterations), hence the 1.15 exponent, and a reduced-
// scale simulation omits constant per-flow effort (detailed routing,
// timing-closure iterations, multi-corner analysis), hence the fixed
// effort factor. Both only rescale absolute seconds; per-configuration
// ratios, which every experiment's shape rests on, are untouched.
func workScaleFor(targetInstances, cells int) float64 {
	ratio := float64(targetInstances) / float64(ints.Max(cells, 1))
	if ratio < 1 {
		ratio = 1
	}
	return math.Pow(ratio, 1.15) * 400
}

// JobProfile is the characterization of one job under one VM config.
type JobProfile struct {
	Kind          JobKind
	VCPUs         int
	Report        *perf.Report
	Counters      perf.Counters
	Seconds       float64
	Speedup       float64 // versus the 1-vCPU run of the same job
	BranchMissPct float64
	CacheMissPct  float64
	FPVectorPct   float64
}

// DesignCharacterization is the full Fig. 2 dataset for one design.
type DesignCharacterization struct {
	Design string
	Cells  int
	// WorkScale extrapolates profiled runtimes from the simulated
	// design size to the full-scale target instance count.
	WorkScale float64
	// Profiles[vcpuIndex][job].
	Profiles [][]JobProfile
	VCPUs    []int
}

// Profile returns the profile of a job at a vCPU count.
func (d *DesignCharacterization) Profile(k JobKind, vcpus int) (JobProfile, error) {
	for vi, v := range d.VCPUs {
		if v == vcpus {
			return d.Profiles[vi][int(k)], nil
		}
	}
	return JobProfile{}, fmt.Errorf("core: no profile at %d vCPUs", vcpus)
}

// machineFor builds the cycle model of a VM with the given vCPUs and
// AVX availability, embedding the multi-tenant interference and the
// design-size extrapolation factor.
func machineFor(vcpus int, avx bool, interference, workScale float64) perf.Machine {
	m := perf.Xeon14(vcpus)
	if !avx {
		m = m.WithoutAVX()
	}
	m.Interference = interference
	m.WorkScale = workScale
	return m
}

// CharacterizeEval profiles all four jobs of a named evaluation design
// under every configured vCPU count — the experiment behind the
// paper's Fig. 2a-d.
func CharacterizeEval(lib *techlib.Library, designName string, opts CharacterizeOptions) (*DesignCharacterization, error) {
	opts = opts.withDefaults()
	g, err := designs.EvalDesign(designName, opts.Scale)
	if err != nil {
		return nil, err
	}
	spec, err := designs.EvalInfo(designName)
	if err != nil {
		return nil, err
	}

	out := &DesignCharacterization{Design: designName, VCPUs: opts.VCPUs}
	baseSeconds := make([]float64, len(JobKinds()))
	estCells := EstimateCells(g.NumAnds())

	// Fan the per-VM-config profiling runs out across real cores — the
	// paper ran each configuration as its own cloud instance, and the
	// runs share nothing: each profiles its own clone of the design
	// (the AIG memoizes levels/fanouts lazily) through its own pipeline
	// with its own probes. All cross-config arithmetic (speedups vs the
	// 1-vCPU base) happens after the barrier, in configuration order,
	// so results are identical for any worker count.
	type cfgRun struct {
		rc           *flow.RunContext
		interference float64
		err          error
	}
	pool := par.Fixed(opts.Workers)
	runs := par.Map(pool, len(opts.VCPUs), func(vi int) cfgRun {
		vcpus := opts.VCPUs[vi]
		p := flow.NewPipeline(
			flow.WithRecipe(opts.Recipe),
			flow.WithWorkers(opts.Workers),
			flow.WithNewProbe(func(JobKind) *perf.Probe {
				return NewJobProbe(vcpus, estCells)
			}),
		)
		rc, err := p.Run(g.Clone(), lib)
		if err != nil {
			return cfgRun{err: err}
		}
		interference, err := opts.Host.Interference(float64(vcpus), opts.Background)
		return cfgRun{rc: rc, interference: interference, err: err}
	})

	for vi, vcpus := range opts.VCPUs {
		run := runs[vi]
		if run.err != nil {
			return nil, run.err
		}
		if out.Cells == 0 {
			out.Cells = run.rc.Netlist.NumCells()
			out.WorkScale = workScaleFor(spec.TargetInstances, out.Cells)
		}
		workScale := out.WorkScale

		var row []JobProfile
		for _, k := range JobKinds() {
			report := run.rc.Reports[k]
			c := report.Total()
			m := machineFor(vcpus, true, run.interference, workScale)
			secs := m.Seconds(report)
			p := JobProfile{
				Kind:          k,
				VCPUs:         vcpus,
				Report:        report,
				Counters:      c,
				Seconds:       secs,
				BranchMissPct: c.BranchMissPct(),
				CacheMissPct:  c.CacheMissPct(),
				FPVectorPct:   c.FPVectorPct(),
			}
			if vcpus == opts.VCPUs[0] && opts.VCPUs[0] == 1 {
				baseSeconds[int(k)] = secs
			}
			if baseSeconds[int(k)] > 0 {
				p.Speedup = baseSeconds[int(k)] / secs
			}
			row = append(row, p)
		}
		out.Profiles = append(out.Profiles, row)
	}
	return out, nil
}

// RoutingSpeedupCurve measures routing speedup across 1..maxVCPUs for
// one design — one line of the paper's Fig. 3. Synthesis and placement
// run once; only routing is re-profiled per configuration.
func RoutingSpeedupCurve(lib *techlib.Library, designName string, maxVCPUs int, opts CharacterizeOptions) ([]float64, error) {
	opts = opts.withDefaults()
	g, err := designs.EvalDesign(designName, opts.Scale)
	if err != nil {
		return nil, err
	}
	sres, err := synth.Synthesize(g, lib, synth.Options{Recipe: opts.Recipe})
	if err != nil {
		return nil, err
	}
	pl, _, err := place.Place(sres.Netlist, place.Options{})
	if err != nil {
		return nil, err
	}
	// Each vCPU configuration re-profiles routing independently against
	// the shared (read-only) netlist and placement, so the sweep fans
	// out across real cores like the characterization runs do.
	type curvePoint struct {
		secs float64
		err  error
	}
	estCells := sres.Netlist.NumCells()
	pool := par.Fixed(opts.Workers)
	points := par.Map(pool, maxVCPUs, func(vi int) curvePoint {
		v := vi + 1
		probe := NewJobProbe(v, estCells)
		_, report, err := route.Route(sres.Netlist, pl, route.Options{StageConfig: par.StageConfig{Probe: probe}})
		if err != nil {
			return curvePoint{err: err}
		}
		interference, err := opts.Host.Interference(float64(v), opts.Background)
		if err != nil {
			return curvePoint{err: err}
		}
		m := machineFor(v, true, interference, 1)
		return curvePoint{secs: m.Seconds(report)}
	})
	curve := make([]float64, maxVCPUs)
	var base float64
	for vi, pt := range points {
		if pt.err != nil {
			return nil, pt.err
		}
		if vi == 0 {
			base = pt.secs
		}
		curve[vi] = base / pt.secs
	}
	return curve, nil
}
