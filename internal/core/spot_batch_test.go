package core

import (
	"reflect"
	"testing"

	"edacloud/internal/cloud"
	"edacloud/internal/flow"
	"edacloud/internal/mckp"
)

func spotCatalog(t *testing.T) *cloud.Catalog {
	t.Helper()
	c, err := cloud.DefaultCatalog().WithSpot(0.7)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// spotBatchSpecs characterizes designs against the spot-extended
// catalog, so every choice table carries the discounted revocable twin
// of each on-demand candidate.
func spotBatchSpecs(t *testing.T, names []string, deadlines []int) []BatchJobSpec {
	t.Helper()
	catalog := spotCatalog(t)
	specs := make([]BatchJobSpec, len(names))
	chars := map[string]*DesignCharacterization{}
	for i, name := range names {
		char, ok := chars[name]
		if !ok {
			char = characterized(t, name)
			chars[name] = char
		}
		prob, err := BuildDeploymentProblem(char, catalog)
		if err != nil {
			t.Fatal(err)
		}
		specs[i] = BatchJobSpec{Name: name + "#" + string(rune('0'+i)), Char: char, Prob: prob}
		if deadlines != nil {
			specs[i].DeadlineSec = deadlines[i]
		}
	}
	return specs
}

// TestSpotProblemShape: a spot-extended catalog doubles each stage's
// candidates; the plain catalog builds the problem exactly as before.
func TestSpotProblemShape(t *testing.T) {
	char := characterized(t, "dyn_node")
	plain, err := BuildDeploymentProblem(char, cloud.DefaultCatalog())
	if err != nil {
		t.Fatal(err)
	}
	spot, err := BuildDeploymentProblem(char, spotCatalog(t))
	if err != nil {
		t.Fatal(err)
	}
	for l := range plain.Stages {
		if len(spot.Stages[l]) != 2*len(plain.Stages[l]) {
			t.Fatalf("stage %d: %d spot candidates, %d plain", l, len(spot.Stages[l]), len(plain.Stages[l]))
		}
		for j, c := range plain.Stages[l] {
			sc := spot.Stages[l][2*j]
			sp := spot.Stages[l][2*j+1]
			if !reflect.DeepEqual(sc, c) {
				t.Fatalf("stage %d item %d changed: %+v vs %+v", l, j, sc, c)
			}
			if !sp.Instance.Revocable || sp.Instance.OnDemand != c.Instance.Name {
				t.Fatalf("stage %d item %d spot twin malformed: %+v", l, j, sp.Instance)
			}
			if sp.Seconds != c.Seconds || sp.Cost >= c.Cost {
				t.Fatalf("stage %d item %d: spot %gs/$%g vs on-demand %gs/$%g",
					l, j, sp.Seconds, sp.Cost, c.Seconds, c.Cost)
			}
		}
	}
}

// TestZeroOptionsBatchIdentical: OptimizeBatchOpts with the zero
// BatchOptions is OptimizeBatch, bit for bit — the whole spot layer is
// inert until asked for.
func TestZeroOptionsBatchIdentical(t *testing.T) {
	specs := contendedBatchSpecs(t, []string{"dyn_node", "aes"}, nil)
	fleet, err := cloud.ParseFleetSpec(cloud.DefaultCatalog(), "gp.2x=1,mem.2x=1")
	if err != nil {
		t.Fatal(err)
	}
	want, err := OptimizeBatch(specs, fleet)
	if err != nil {
		t.Fatal(err)
	}
	got, err := OptimizeBatchOpts(specs, fleet, BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatal("zero options changed the batch plan")
	}
}

// TestSpotBatchForecastMatchesExecutionUnderRevocation is the
// tentpole's parity contract extended to faults: on a spot fleet with
// a seeded revocation model, the co-optimizer's forecast — replaying
// the same placement engine over the same revocation timelines — must
// match the real execution bit for bit, revocations, retries and
// truncated bills included.
func TestSpotBatchForecastMatchesExecutionUnderRevocation(t *testing.T) {
	specs := spotBatchSpecs(t, []string{"dyn_node", "aes", "ibex"}, nil)
	catalog := spotCatalog(t)
	fleet, err := cloud.ParseFleetSpec(catalog, "gp.2x.spot=1,mem.2x.spot=1")
	if err != nil {
		t.Fatal(err)
	}
	fleet.Revocation = cloud.NewRevocationModel(9, cloud.UniformSpotHazards(catalog, 60))

	opts := BatchOptions{
		Hazards: mckp.Hazards(cloud.UniformSpotHazards(catalog, 60)),
		Retry:   flow.RetryPolicy{MaxAttempts: 50, BackoffSec: 15},
	}
	bp, err := OptimizeBatchOpts(specs, fleet, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !bp.Feasible {
		t.Fatal("deadline-free spot batch infeasible")
	}
	if bp.Forecast.Revocations == 0 {
		t.Fatal("60/h hazard forecast no revocations; scenario needs retuning")
	}

	sched, err := ExecuteBatchPlan(lib, specs, bp, charOpts, fleet.Clone(), false)
	if err != nil {
		t.Fatal(err)
	}
	if sched.Revocations != bp.Forecast.Revocations || sched.RetriedSec != bp.Forecast.RetriedSec {
		t.Fatalf("execution saw %d revocations/%g retried sec, forecast %d/%g",
			sched.Revocations, sched.RetriedSec, bp.Forecast.Revocations, bp.Forecast.RetriedSec)
	}
	for i, j := range sched.Jobs {
		if j.Err != nil {
			t.Fatalf("job %s: %v", j.Name, j.Err)
		}
		f := bp.Forecast.Jobs[i]
		if j.StartSec != f.StartSec || j.FinishSec != f.FinishSec ||
			j.WaitSec != f.WaitSec || j.Seconds != f.Seconds || j.CostUSD != f.CostUSD ||
			j.Revocations != f.Revocations || j.RetriedSec != f.RetriedSec ||
			j.RecoveredFromCheckpoint != f.RecoveredFromCheckpoint {
			t.Fatalf("job %s diverged from forecast:\nexec     %+v\nforecast %+v", j.Name, j, f)
		}
		if len(j.Stages) != len(f.Stages) {
			t.Fatalf("job %s placed %d stage attempts, forecast %d", j.Name, len(j.Stages), len(f.Stages))
		}
		for s, st := range j.Stages {
			fs := f.Stages[s]
			if st.Kind != fs.Kind || st.Instance != fs.Instance || st.StartSec != fs.StartSec ||
				st.Seconds != fs.Seconds || st.CostUSD != fs.CostUSD ||
				st.Revoked != fs.Revoked || st.RevokedAt != fs.RevokedAt || st.Attempt != fs.Attempt {
				t.Fatalf("job %s stage %s attempt %d: exec %+v, forecast %+v", j.Name, st.Kind, st.Attempt, st, fs)
			}
		}
	}
	if sched.TotalCostUSD != bp.Forecast.TotalCostUSD || sched.MakespanSec != bp.Forecast.MakespanSec {
		t.Fatalf("aggregates: exec %g/%g, forecast %g/%g",
			sched.TotalCostUSD, sched.MakespanSec, bp.Forecast.TotalCostUSD, bp.Forecast.MakespanSec)
	}
}

// TestRiskAdjustedBatchBeatsNaiveSpot: under deadlines sized to the
// on-demand serial runtimes, the naive planner gambles everything on
// the spot discount and revocations blow its deadlines; the
// risk-adjusted batch buys on-demand where it matters and meets them —
// the ISSUE's three-way golden scenario, pinned as a property.
func TestRiskAdjustedBatchBeatsNaiveSpot(t *testing.T) {
	catalog := spotCatalog(t)
	names := []string{"aes", "jpeg"}
	specs := spotBatchSpecs(t, names, nil)
	fleet, err := cloud.ParseFleetSpec(catalog, "gp.2x=1,mem.2x=1,gp.2x.spot=1,mem.2x.spot=1")
	if err != nil {
		t.Fatal(err)
	}
	// Deadlines: a hair over each job's cheapest on-demand serial plan.
	plain := contendedBatchSpecs(t, names, nil)
	for i := range specs {
		ondemand, err := plain[i].Prob.Optimize(plain[i].Prob.UnderProvision().TotalTime)
		if err != nil || !ondemand.Feasible {
			t.Fatalf("%+v, %v", ondemand, err)
		}
		specs[i].DeadlineSec = int(1.15 * float64(ondemand.TotalTime))
	}

	const seed, rate = 2, 240
	hazards := cloud.UniformSpotHazards(catalog, rate)
	retry := flow.RetryPolicy{MaxAttempts: 200, BackoffSec: 15}
	execute := func(bp *BatchPlan) *flow.Schedule {
		t.Helper()
		f := fleet.Clone()
		f.Revocation = cloud.NewRevocationModel(seed, hazards)
		sched, err := ExecuteBatchPlan(lib, specs, bp, charOpts, f, false)
		if err != nil {
			t.Fatal(err)
		}
		return sched
	}

	// The naive planner sees nominal spot prices and no hazards.
	naive, err := OptimizeBatchOpts(specs, fleet, BatchOptions{Retry: retry})
	if err != nil {
		t.Fatal(err)
	}
	if !naive.Feasible {
		t.Fatal("naive batch infeasible")
	}
	naiveSpot := 0
	for _, plan := range naive.Plans {
		for _, pick := range plan.Picks {
			if pick.Instance.Revocable {
				naiveSpot++
			}
		}
	}
	if naiveSpot == 0 {
		t.Fatal("naive planner bought no spot capacity; discount scenario broken")
	}

	risk, err := OptimizeBatchOpts(specs, fleet, BatchOptions{
		Hazards: mckp.Hazards(hazards), Retry: retry,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !risk.Feasible {
		t.Fatal("risk-adjusted batch infeasible")
	}

	naiveSched := execute(naive)
	riskSched := execute(risk)
	if naiveSched.Revocations == 0 {
		t.Fatal("naive all-spot execution saw no revocations; hazard needs retuning")
	}
	if naiveSched.DeadlinesMissed == 0 {
		t.Fatal("naive spot gamble met every deadline; scenario too loose to bite")
	}
	if riskSched.DeadlinesMissed >= naiveSched.DeadlinesMissed {
		t.Fatalf("risk-adjusted batch missed %d deadlines, naive %d",
			riskSched.DeadlinesMissed, naiveSched.DeadlinesMissed)
	}
	if riskSched.DeadlinesMissed != 0 {
		t.Fatalf("risk-adjusted batch still missed %d deadlines", riskSched.DeadlinesMissed)
	}
	// And the realized bill: the naive plan pays for every truncated
	// spot attempt under the ledger, the risk-adjusted plan does not.
	if riskSched.TotalCostUSD > naiveSched.TotalCostUSD+1e-9 {
		t.Fatalf("risk-adjusted bill %g exceeds naive-spot bill %g",
			riskSched.TotalCostUSD, naiveSched.TotalCostUSD)
	}
}

// TestHoldBatchForecastMatchesExecution closes the ROADMAP estimator
// gap: a batch planned and executed under the holding policy (one
// machine leased across all stages, flow.SingleInstance) must forecast
// exactly, and its single-label plans must survive the shadow-price
// loop.
func TestHoldBatchForecastMatchesExecution(t *testing.T) {
	catalog := cloud.DefaultCatalog()
	names := []string{"dyn_node", "aes", "ibex"}
	specs := make([]BatchJobSpec, len(names))
	for i, name := range names {
		char := characterized(t, name)
		prob, err := BuildHoldDeploymentProblem(char, catalog)
		if err != nil {
			t.Fatal(err)
		}
		specs[i] = BatchJobSpec{Name: name, Char: char, Prob: prob}
	}
	fleet, err := cloud.ParseFleetSpec(catalog, "gp.2x=1,mem.2x=1")
	if err != nil {
		t.Fatal(err)
	}

	bp, err := OptimizeBatchOpts(specs, fleet, BatchOptions{Hold: true})
	if err != nil {
		t.Fatal(err)
	}
	if !bp.Feasible {
		t.Fatal("hold batch infeasible")
	}
	for i, plan := range bp.Plans {
		for _, pick := range plan.Picks {
			if pick.Instance.Name != plan.Picks[0].Instance.Name {
				t.Fatalf("job %d split its held lease: %s vs %s", i, pick.Instance.Name, plan.Picks[0].Instance.Name)
			}
		}
	}

	sched, err := ExecuteBatchPlan(lib, specs, bp, charOpts, fleet.Clone(), false)
	if err != nil {
		t.Fatal(err)
	}
	for i, j := range sched.Jobs {
		if j.Err != nil {
			t.Fatalf("job %s: %v", j.Name, j.Err)
		}
		f := bp.Forecast.Jobs[i]
		if j.StartSec != f.StartSec || j.FinishSec != f.FinishSec ||
			j.WaitSec != f.WaitSec || j.Seconds != f.Seconds || j.CostUSD != f.CostUSD {
			t.Fatalf("job %s diverged from hold forecast:\nexec     %+v\nforecast %+v", j.Name, j, f)
		}
		// One machine held: every stage on the same instance, and only
		// the first stage can wait.
		for s, st := range j.Stages {
			if st.Instance != j.Stages[0].Instance {
				t.Fatalf("job %s stage %s moved machines mid-hold", j.Name, st.Kind)
			}
			if s > 0 && st.WaitSec != 0 {
				t.Fatalf("job %s stage %s re-queued despite the held lease: %+v", j.Name, st.Kind, st)
			}
		}
	}
	if sched.TotalCostUSD != bp.Forecast.TotalCostUSD || sched.MakespanSec != bp.Forecast.MakespanSec {
		t.Fatalf("aggregates: exec %g/%g, forecast %g/%g",
			sched.TotalCostUSD, sched.MakespanSec, bp.Forecast.TotalCostUSD, bp.Forecast.MakespanSec)
	}
}
