package core

import (
	"math"
	"testing"

	"edacloud/internal/cloud"
	"edacloud/internal/mckp"
)

// TestPlanExecutionMatchesPrediction is the contract between the MCKP
// layer and the execution layer: running a deployment plan through the
// fleet scheduler (each stage on its knapsack-chosen instance type)
// must reproduce the optimizer's per-stage runtime and cost
// predictions. The probes, machine models and work scale are shared
// between characterization and execution, so the match is exact up to
// integral-seconds rounding in the knapsack items.
func TestPlanExecutionMatchesPrediction(t *testing.T) {
	catalog := cloud.DefaultCatalog()
	char := characterized(t, "dyn_node")
	prob, err := BuildDeploymentProblem(char, catalog)
	if err != nil {
		t.Fatal(err)
	}
	// A mid-tightness deadline so the plan mixes instance sizes.
	minTime := prob.MinTime()
	under := prob.UnderProvision()
	plan, err := prob.Optimize((minTime + under.TotalTime) / 2)
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Feasible {
		t.Fatal("mid deadline infeasible")
	}

	sched, err := ExecutePlan(lib, char, plan, charOpts, nil)
	if err != nil {
		t.Fatal(err)
	}
	j := sched.Jobs[0]
	if j.Err != nil {
		t.Fatal(j.Err)
	}
	if len(j.Stages) != len(plan.Picks) {
		t.Fatalf("%d simulated stages for %d picks", len(j.Stages), len(plan.Picks))
	}
	var simCost float64
	for _, st := range j.Stages {
		pick, err := plan.Pick(st.Kind)
		if err != nil {
			t.Fatal(err)
		}
		if st.Type.Name != pick.Instance.Name {
			t.Fatalf("stage %s ran on %s, plan chose %s", st.Kind, st.Type.Name, pick.Instance.Name)
		}
		// The simulated stage runtime replays the same profiled report
		// through the same machine model the optimizer predicted with.
		if math.Abs(st.Seconds-pick.Seconds) > 1e-6*(1+pick.Seconds) {
			t.Fatalf("stage %s simulated %gs, predicted %gs", st.Kind, st.Seconds, pick.Seconds)
		}
		if math.Abs(st.CostUSD-pick.Cost) > 1e-9 {
			t.Fatalf("stage %s billed %g, predicted %g", st.Kind, st.CostUSD, pick.Cost)
		}
		simCost += st.CostUSD
	}
	if math.Abs(simCost-plan.TotalCost) > 1e-9 {
		t.Fatalf("simulated bill %g, plan cost %g", simCost, plan.TotalCost)
	}
	// The knapsack's integral stage times bound the simulated flow:
	// busy time within the (ceil-rounded) predicted total.
	if j.Seconds > float64(plan.TotalTime) || j.Seconds < float64(plan.TotalTime)-float64(len(plan.Picks)) {
		t.Fatalf("simulated busy time %gs vs plan total %ds", j.Seconds, plan.TotalTime)
	}
	// A lone job on the plan's minimal fleet never queues.
	if j.WaitSec != 0 {
		t.Fatalf("lone plan job waited %gs", j.WaitSec)
	}
}

// TestPlanExportAndFleet: plans export to the executable StagePlan /
// fleet forms and agree with the mckp-level labeled export.
func TestPlanExportAndFleet(t *testing.T) {
	char := characterized(t, "dyn_node")
	prob, err := BuildDeploymentProblem(char, cloud.DefaultCatalog())
	if err != nil {
		t.Fatal(err)
	}
	plan := prob.OverProvision()
	sp, err := plan.StagePlan()
	if err != nil {
		t.Fatal(err)
	}
	if len(sp) != len(JobKinds()) {
		t.Fatalf("stage plan covers %d kinds", len(sp))
	}
	sel, err := mckp.SolveMinCost(prob.Classes, prob.UnderProvision().TotalTime)
	if err != nil {
		t.Fatal(err)
	}
	picks, err := sel.Export(prob.Classes)
	if err != nil {
		t.Fatal(err)
	}
	cheap, err := prob.Optimize(prob.UnderProvision().TotalTime)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range picks {
		if p.Class != JobKinds()[i].String() {
			t.Fatalf("export class %q out of order", p.Class)
		}
		if p.Label != cheap.Picks[i].Instance.Name {
			t.Fatalf("export label %q, plan instance %q", p.Label, cheap.Picks[i].Instance.Name)
		}
	}
	fleet, err := plan.Fleet()
	if err != nil {
		t.Fatal(err)
	}
	if len(fleet.Instances) == 0 || len(fleet.Instances) > len(plan.Picks) {
		t.Fatalf("plan fleet has %d instances", len(fleet.Instances))
	}
	bad := &Plan{Feasible: false}
	if _, err := bad.StagePlan(); err == nil {
		t.Fatal("infeasible plan exported a stage plan")
	}
	if _, err := bad.Fleet(); err == nil {
		t.Fatal("infeasible plan exported a fleet")
	}
}
