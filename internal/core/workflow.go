package core

import (
	"fmt"
	"math"

	"edacloud/internal/aig"
	"edacloud/internal/cloud"
	"edacloud/internal/flow"
	"edacloud/internal/gcn"
	"edacloud/internal/mckp"
	"edacloud/internal/netlist"
	"edacloud/internal/synth"
	"edacloud/internal/techlib"
)

// This file closes the loop of the paper's Fig. 1: the GCN predictions
// (Sec. III.B) feed the deployment optimizer (Sec. III.C) directly, so
// a new design can be planned without profiling it first — the entire
// point of training the predictor.

// DesignGraphs carries the two model inputs for one design: the AIG
// for the synthesis model and the mapped netlist's star graph for the
// physical-design models.
type DesignGraphs struct {
	Name    string
	AIG     *gcn.Graph
	Netlist *gcn.Graph
}

// GraphsForDesign prepares predictor inputs for a raw design: it runs
// a synthesis-only partial flow (uninstrumented, raw mapping) to
// obtain the netlist graph.
func GraphsForDesign(g *aig.Graph, lib *techlib.Library) (*DesignGraphs, error) {
	p := flow.NewPipeline(flow.WithStages(flow.Synthesis(synth.Options{})))
	rc, err := p.Run(g, lib)
	if err != nil {
		return nil, err
	}
	return &DesignGraphs{
		Name:    g.Name,
		AIG:     gcn.FromStarGraph(netlist.AIGGraph(g)),
		Netlist: gcn.FromStarGraph(rc.Netlist.StarGraph()),
	}, nil
}

// PredictFlowRuntimes returns the predicted per-vCPU runtimes of all
// four jobs for a design, in seconds.
func (p *Predictor) PredictFlowRuntimes(dg *DesignGraphs) (map[JobKind][]float64, error) {
	out := map[JobKind][]float64{}
	for _, k := range JobKinds() {
		g := dg.Netlist
		if k == JobSynthesis {
			g = dg.AIG
		}
		if g == nil {
			return nil, fmt.Errorf("core: design %s lacks a graph for %v", dg.Name, k)
		}
		rt, err := p.PredictRuntimes(k, g)
		if err != nil {
			return nil, err
		}
		out[k] = rt
	}
	return out, nil
}

// BuildPredictedDeploymentProblem assembles the MCKP instance from
// predicted runtimes instead of measured profiles — the paper's
// production path (Fig. 1: prediction -> $ cost calculator ->
// optimization). Predictions already carry full-flow magnitudes; each
// stage prices its recommended family's instances with per-second
// billing.
func BuildPredictedDeploymentProblem(pred *Predictor, dg *DesignGraphs, catalog *cloud.Catalog) (*DeploymentProblem, error) {
	runtimes, err := pred.PredictFlowRuntimes(dg)
	if err != nil {
		return nil, err
	}
	prob := &DeploymentProblem{Design: dg.Name}
	for _, k := range JobKinds() {
		fam := RecommendedFamily(k)
		rts := runtimes[k]
		if len(rts) != len(pred.VCPUs) {
			return nil, fmt.Errorf("core: %v prediction width %d, want %d", k, len(rts), len(pred.VCPUs))
		}
		var choices []StageChoice
		cl := mckp.Class{Name: k.String()}
		for vi, v := range pred.VCPUs {
			it, err := catalog.Size(fam, v)
			if err != nil {
				return nil, err
			}
			secs := rts[vi]
			if secs < 1 {
				secs = 1 // per-second billing floor
			}
			cost := it.Cost(secs)
			choices = append(choices, StageChoice{Job: k, Instance: it, Seconds: secs, Cost: cost})
			cl.Items = append(cl.Items, mckp.Item{
				Label:   it.Name,
				TimeSec: int(math.Ceil(secs)),
				Cost:    cost,
			})
		}
		prob.Stages = append(prob.Stages, choices)
		prob.Classes = append(prob.Classes, cl)
	}
	return prob, nil
}
