package core

import (
	"fmt"
	"math/rand"
	"testing"

	"edacloud/internal/cache"
	"edacloud/internal/cloud"
	"edacloud/internal/designs"
	"edacloud/internal/flow"
	"edacloud/internal/mckp"
	"edacloud/internal/synth"
)

// prewarmStore builds a fresh artifact store holding each design's
// synthesis artifact — the shared-prefix state an earlier exploration
// leaves behind. Rebuilt identically per execution so every worker
// count starts from the same store bytes.
func prewarmStore(t *testing.T, designNames []string) *cache.Store {
	t.Helper()
	store := cache.New(0)
	recipe := charOpts.withDefaults().Recipe
	for _, d := range designNames {
		p := flow.NewPipeline(
			flow.WithStages(flow.Synthesis(synth.Options{Recipe: recipe})),
			flow.WithCache(store),
		)
		if _, err := p.Run(designs.MustEvalDesign(d, charOpts.withDefaults().Scale), lib); err != nil {
			t.Fatal(err)
		}
	}
	return store
}

// sameSpotSchedule compares two executions of the same plan the way
// the flow package's bit-identity checks do: aggregates, every per-job
// accounting field, every stage attempt, and the artifact content
// hashes. (The raw RunContext also carries probe instrumentation whose
// internals legitimately reflect the host worker pool, so a bare
// DeepEqual over schedules is not the contract.)
func sameSpotSchedule(t *testing.T, seed int64, workers int, got, want *flow.Schedule) {
	t.Helper()
	if got.TotalCostUSD != want.TotalCostUSD || got.MakespanSec != want.MakespanSec ||
		got.CacheHits != want.CacheHits || got.Revocations != want.Revocations ||
		got.RetriedSec != want.RetriedSec || got.DeadlinesMissed != want.DeadlinesMissed {
		t.Fatalf("seed %d workers=%d: aggregates diverged from workers=1:\ngot  %+v\nwant %+v",
			seed, workers, got, want)
	}
	for i := range want.Jobs {
		g, w := got.Jobs[i], want.Jobs[i]
		if g.Name != w.Name || g.StartSec != w.StartSec || g.FinishSec != w.FinishSec ||
			g.WaitSec != w.WaitSec || g.Seconds != w.Seconds || g.CostUSD != w.CostUSD ||
			g.Revocations != w.Revocations || g.RetriedSec != w.RetriedSec {
			t.Fatalf("seed %d workers=%d: job %s diverged:\ngot  %+v\nwant %+v",
				seed, workers, w.Name, g, w)
		}
		if len(g.Stages) != len(w.Stages) {
			t.Fatalf("seed %d workers=%d: job %s placed %d stage attempts, want %d",
				seed, workers, w.Name, len(g.Stages), len(w.Stages))
		}
		for s := range w.Stages {
			if g.Stages[s] != w.Stages[s] {
				t.Fatalf("seed %d workers=%d: job %s stage %d diverged:\ngot  %+v\nwant %+v",
					seed, workers, w.Name, s, g.Stages[s], w.Stages[s])
			}
		}
		if g.Run.NetlistHash() != w.Run.NetlistHash() || g.Run.TimingHash() != w.Run.TimingHash() {
			t.Fatalf("seed %d workers=%d: job %s artifacts diverged", seed, workers, w.Name)
		}
	}
}

// TestCacheSpotProperty closes the untested cache x spot interaction
// with a 50-seed sweep. Per seed: a warm store, a spot fleet with a
// seeded revocation model, and a risk-adjusted cache-aware batch.
// Three invariants:
//
//  1. The executed schedule is bit-identical at workers 1, 2 and 8 —
//     revocations, retries and cache hits included.
//  2. No stage is ever both Cached and Revoked: a stage served from
//     the store books no lease, so there is nothing to revoke.
//  3. The risk-adjusted cache-aware plan never bills more than the
//     risk-adjusted cache-blind plan over the same store (the
//     capacity-ample itemwise argument, now with hazard-inflated
//     costs: cache adjustment runs after risk adjustment, so a hit
//     class is cheaper on both axes either way).
func TestCacheSpotProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("property sweep")
	}
	catalog := spotCatalog(t)
	mix := []string{"dyn_node", "aes"}
	chars := map[string]*DesignCharacterization{}
	for _, d := range mix {
		chars[d] = characterized(t, d)
	}
	hazards := cloud.UniformSpotHazards(catalog, 240)
	retry := flow.RetryPolicy{MaxAttempts: 50, BackoffSec: 15}
	// Capacity-ample on-demand + spot pool for the plan comparison
	// (invariant 3): no contention means the joint solve decomposes and
	// aware <= blind holds itemwise.
	ample, err := cloud.ParseFleetSpec(catalog,
		"gp.1x=6,gp.2x=6,gp.4x=6,gp.8x=6,mem.1x=6,mem.2x=6,mem.4x=6,mem.8x=6,"+
			"gp.1x.spot=6,gp.2x.spot=6,gp.4x.spot=6,gp.8x.spot=6,"+
			"mem.1x.spot=6,mem.2x.spot=6,mem.4x.spot=6,mem.8x.spot=6")
	if err != nil {
		t.Fatal(err)
	}

	totalRevocations, totalHits, strictly := 0, 0, 0
	for seed := int64(0); seed < 50; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(2)
		specs := make([]BatchJobSpec, n)
		for i := range specs {
			d := mix[rng.Intn(len(mix))]
			prob, err := BuildDeploymentProblem(chars[d], catalog)
			if err != nil {
				t.Fatal(err)
			}
			specs[i] = BatchJobSpec{Name: fmt.Sprintf("s%d-j%d-%s", seed, i, d), Char: chars[d], Prob: prob}
		}
		store := prewarmStore(t, mix)
		if err := PredictCacheHits(store, lib, specs, charOpts); err != nil {
			t.Fatal(err)
		}

		// Invariant 3: risk-adjusted aware vs blind plans on the ample
		// fleet, priced over the same predicted hits. Deadlines are
		// loose-but-binding (the TestCacheAwarePlansNeverCostMore
		// calibration): tight enough that the blind plan must buy speed
		// for stages the store actually serves.
		planSpecs := make([]BatchJobSpec, n)
		copy(planSpecs, specs)
		for i := range planSpecs {
			if rng.Intn(2) == 0 {
				minT := mckp.MinTotalTime(planSpecs[i].Prob.Classes)
				planSpecs[i].DeadlineSec = minT + minT/2 + rng.Intn(minT+1)
			}
		}
		blindSpecs := make([]BatchJobSpec, n)
		copy(blindSpecs, planSpecs)
		for i := range blindSpecs {
			blindSpecs[i].CacheHits = nil
		}
		riskOpts := BatchOptions{Hazards: mckp.Hazards(hazards), Retry: retry}
		awareOpts := riskOpts
		awareOpts.Cache = store
		aware, err := OptimizeBatchOpts(planSpecs, ample, awareOpts)
		if err != nil {
			t.Fatal(err)
		}
		blind, err := OptimizeBatchOpts(blindSpecs, ample, riskOpts)
		if err != nil {
			t.Fatal(err)
		}
		if blind.Feasible {
			if !aware.Feasible {
				t.Fatalf("seed %d: cache-blind batch feasible but cache-aware not", seed)
			}
			ca, cb := planCostUnderHits(aware, planSpecs), planCostUnderHits(blind, planSpecs)
			if ca > cb+1e-9 {
				t.Fatalf("seed %d: risk-adjusted warm plan bills $%.6f, cold plan $%.6f", seed, ca, cb)
			}
			if ca < cb-1e-9 {
				strictly++
			}
		} else if aware.Feasible {
			// The warm plan meets deadlines the cold plan cannot — a
			// strict cache dividend too.
			strictly++
		}

		// Invariants 1 and 2: execute the warm risk-adjusted plan on a
		// contended spot fleet under seeded revocations, at three worker
		// counts, each from identical store bytes and the same timelines.
		spotFleet, err := cloud.ParseFleetSpec(catalog, "gp.2x.spot=1,mem.2x.spot=1")
		if err != nil {
			t.Fatal(err)
		}
		execOpts := awareOpts
		bp, err := OptimizeBatchOpts(specs, spotFleet, execOpts)
		if err != nil {
			t.Fatal(err)
		}
		if !bp.Feasible {
			t.Fatalf("seed %d: deadline-free spot batch infeasible", seed)
		}
		var base *flow.Schedule
		for _, workers := range []int{1, 2, 8} {
			bp.Options.Cache = prewarmStore(t, mix)
			f := spotFleet.Clone()
			f.Revocation = cloud.NewRevocationModel(seed, hazards)
			sched, err := ExecuteBatchPlan(lib, specs, bp,
				CharacterizeOptions{Scale: charOpts.Scale, Workers: workers}, f, false)
			if err != nil {
				t.Fatal(err)
			}
			for _, j := range sched.Jobs {
				if j.Err != nil {
					t.Fatalf("seed %d: job %s: %v", seed, j.Name, j.Err)
				}
				for _, st := range j.Stages {
					if st.Cached && st.Revoked {
						t.Fatalf("seed %d: job %s stage %s both cached and revoked: %+v",
							seed, j.Name, st.Kind, st)
					}
				}
			}
			if base == nil {
				base = sched
				totalRevocations += sched.Revocations
				totalHits += sched.CacheHits
				continue
			}
			sameSpotSchedule(t, seed, workers, sched, base)
		}
		if base.CacheHits == 0 {
			t.Fatalf("seed %d: warm store served no hits", seed)
		}
	}
	if totalRevocations == 0 {
		t.Fatal("no revocations across 50 seeds; hazard rate needs retuning")
	}
	if strictly == 0 {
		t.Fatal("risk-adjusted warm plans never strictly beat cold plans across 50 seeds")
	}
	t.Logf("50 seeds: %d revocations, %d cache hits, warm strictly cheaper on %d", totalRevocations, totalHits, strictly)
}
