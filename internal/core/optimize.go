package core

import (
	"fmt"
	"math"

	"edacloud/internal/cloud"
	"edacloud/internal/designs"
	"edacloud/internal/flow"
	"edacloud/internal/mckp"
	"edacloud/internal/techlib"
)

// StageChoice is one (stage, instance) runtime/cost point — one cell
// of the paper's Table I.
type StageChoice struct {
	Job      JobKind
	Instance cloud.InstanceType
	Seconds  float64
	Cost     float64
	// Cached marks a predicted artifact-cache hit: the stage is expected
	// to be served from the store at the probe constant instead of run,
	// so Seconds/Cost are the probe's, not the instance's. Plans carry
	// the flag into forecasts and executions (see CacheAdjusted).
	Cached bool
}

// DeploymentProblem is the optimizer input: for each flow stage, the
// runtime and cost of every candidate instance size from the stage's
// recommended family.
type DeploymentProblem struct {
	Design  string
	Stages  [][]StageChoice // [job][size]
	Classes []mckp.Class
}

// BuildDeploymentProblem converts a characterization into the MCKP
// instance of the paper's Sec. III.C: each job's candidates come from
// its recommended family (general-purpose lacks AVX in the catalog, so
// synthesis/STA runtimes are re-derived on non-AVX machines), costs
// follow per-second billing of the family's price.
func BuildDeploymentProblem(char *DesignCharacterization, catalog *cloud.Catalog) (*DeploymentProblem, error) {
	prob := &DeploymentProblem{Design: char.Design}
	for _, k := range JobKinds() {
		fam := RecommendedFamily(k)
		var choices []StageChoice
		cl := mckp.Class{Name: k.String()}
		for vi, v := range char.VCPUs {
			it, err := catalog.Size(fam, v)
			if err != nil {
				return nil, err
			}
			prof := char.Profiles[vi][int(k)]
			// Re-derive runtime on the family's silicon (AVX presence)
			// from the profiled event counts.
			m := machineFor(v, it.AVX, 0, char.WorkScale)
			secs := m.Seconds(prof.Report)
			cost := it.Cost(secs)
			choices = append(choices, StageChoice{Job: k, Instance: it, Seconds: secs, Cost: cost})
			cl.Items = append(cl.Items, mckp.Item{
				Label:   it.Name,
				TimeSec: int(math.Ceil(secs)),
				Cost:    cost,
			})
			// Catalogs extended with spot pricing (Catalog.WithSpot) expose
			// a discounted revocable twin per type; it shares the hardware,
			// so the stage's runtime carries over and only the bill drops.
			// Plain catalogs have no ".spot" names and are unaffected.
			if spot, err := catalog.ByName(it.Name + ".spot"); err == nil {
				spotCost := spot.Cost(secs)
				choices = append(choices, StageChoice{Job: k, Instance: spot, Seconds: secs, Cost: spotCost})
				cl.Items = append(cl.Items, mckp.Item{
					Label:   spot.Name,
					TimeSec: int(math.Ceil(secs)),
					Cost:    spotCost,
				})
			}
		}
		prob.Stages = append(prob.Stages, choices)
		prob.Classes = append(prob.Classes, cl)
	}
	return prob, nil
}

// BuildHoldDeploymentProblem builds the single-machine variant of the
// deployment problem: every stage's candidates are every catalog type
// whose size the characterization profiled — not just the stage's
// recommended family — so every label appears in every class and the
// holding policy (one lease across all stages) has machines to choose
// from. Runtimes are re-derived per type from the profiled counts, as
// in BuildDeploymentProblem.
func BuildHoldDeploymentProblem(char *DesignCharacterization, catalog *cloud.Catalog) (*DeploymentProblem, error) {
	prob := &DeploymentProblem{Design: char.Design}
	for _, k := range JobKinds() {
		var choices []StageChoice
		cl := mckp.Class{Name: k.String()}
		for _, it := range catalog.Types {
			vi := -1
			for i, v := range char.VCPUs {
				if v == it.VCPUs {
					vi = i
					break
				}
			}
			if vi < 0 {
				continue // size not characterized
			}
			prof := char.Profiles[vi][int(k)]
			m := machineFor(it.VCPUs, it.AVX, 0, char.WorkScale)
			secs := m.Seconds(prof.Report)
			cost := it.Cost(secs)
			choices = append(choices, StageChoice{Job: k, Instance: it, Seconds: secs, Cost: cost})
			cl.Items = append(cl.Items, mckp.Item{
				Label:   it.Name,
				TimeSec: int(math.Ceil(secs)),
				Cost:    cost,
			})
		}
		if len(choices) == 0 {
			return nil, fmt.Errorf("core: catalog has no type at a characterized size for stage %s of %s",
				k, char.Design)
		}
		prob.Stages = append(prob.Stages, choices)
		prob.Classes = append(prob.Classes, cl)
	}
	return prob, nil
}

// RiskAdjusted returns a copy of the problem whose knapsack classes are
// rewritten to their revocation-adjusted expectation (mckp.RiskAdjust):
// spot items price in their expected truncated attempts and retry
// backoffs. Stages keep the nominal per-attempt runtimes — those are
// what one uninterrupted execution attempt takes, and what forecasts
// and executions replay — so only the selection arithmetic changes.
// Zero hazards return classes bit-identical to the input's.
func (prob *DeploymentProblem) RiskAdjusted(hz mckp.Hazards, backoffSec float64) *DeploymentProblem {
	return &DeploymentProblem{
		Design:  prob.Design,
		Stages:  prob.Stages,
		Classes: mckp.RiskAdjust(prob.Classes, hz, backoffSec),
	}
}

// OptimizeHold picks the cost-minimal single machine able to run every
// stage back-to-back under the deadline — the holding-policy
// counterpart of Optimize.
func (prob *DeploymentProblem) OptimizeHold(deadlineSec int) (*Plan, error) {
	sel, err := mckp.SolveHold(prob.Classes, deadlineSec)
	if err != nil {
		return nil, err
	}
	return planFromSelection(prob, sel), nil
}

// Plan is an optimized deployment: one instance per stage.
type Plan struct {
	Feasible  bool
	Picks     []StageChoice // aligned with JobKinds()
	TotalTime int
	TotalCost float64
}

func (p *Plan) String() string {
	if !p.Feasible {
		return "NA"
	}
	s := ""
	for i, pick := range p.Picks {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("%s=%s", pick.Job, pick.Instance.Name)
	}
	return fmt.Sprintf("%s time=%ds cost=$%.2f", s, p.TotalTime, p.TotalCost)
}

// Pick returns the plan's choice for one stage.
func (p *Plan) Pick(k JobKind) (StageChoice, error) {
	for _, pick := range p.Picks {
		if pick.Job == k {
			return pick, nil
		}
	}
	return StageChoice{}, fmt.Errorf("core: plan has no pick for stage %s", k)
}

// StagePlan converts the plan into the executable form the flow
// scheduler's PlanPolicy consumes: one instance type per stage.
func (p *Plan) StagePlan() (flow.StagePlan, error) {
	if !p.Feasible {
		return nil, fmt.Errorf("core: infeasible plan has no stage assignment")
	}
	sp := flow.StagePlan{}
	for _, pick := range p.Picks {
		sp[pick.Job] = pick.Instance
	}
	return sp, nil
}

// Fleet returns the minimal fleet able to execute the plan: one
// instance of each distinct chosen type.
func (p *Plan) Fleet() (*cloud.Fleet, error) {
	if !p.Feasible {
		return nil, fmt.Errorf("core: infeasible plan has no fleet")
	}
	var entries []cloud.FleetEntry
	seen := map[string]bool{}
	for _, pick := range p.Picks {
		if seen[pick.Instance.Name] {
			continue
		}
		seen[pick.Instance.Name] = true
		entries = append(entries, cloud.FleetEntry{Type: pick.Instance, Count: 1})
	}
	return cloud.NewFleet(entries...), nil
}

// ExecutePlan runs the characterized design's flow with each stage
// placed on its plan-chosen instance type over the given fleet (nil
// means the plan's own minimal fleet) — the in-repo validation that
// the MCKP optimizer's per-stage runtime and cost predictions match
// what the fleet scheduler actually simulates. opts must carry the
// same Scale/Recipe the characterization ran with so the regenerated
// design and flow match the profiled one.
func ExecutePlan(lib *techlib.Library, char *DesignCharacterization, plan *Plan, opts CharacterizeOptions, fleet *cloud.Fleet) (*flow.Schedule, error) {
	opts = opts.withDefaults()
	sp, err := plan.StagePlan()
	if err != nil {
		return nil, err
	}
	if fleet == nil {
		if fleet, err = plan.Fleet(); err != nil {
			return nil, err
		}
	}
	g, err := designs.EvalDesign(char.Design, opts.Scale)
	if err != nil {
		return nil, err
	}
	sched := &flow.Scheduler{Workers: opts.Workers, Fleet: fleet, Policy: flow.PlanPolicy{}}
	return sched.Run(nil, []flow.Job{{
		Name:      char.Design,
		Design:    g,
		Lib:       lib,
		Options:   []flow.Option{flow.WithRecipe(opts.Recipe)},
		Plan:      sp,
		WorkScale: char.WorkScale,
	}})
}

func planFromSelection(prob *DeploymentProblem, sel mckp.Selection) *Plan {
	if !sel.Feasible {
		return &Plan{Feasible: false}
	}
	p := &Plan{Feasible: true, TotalTime: sel.TotalTime, TotalCost: sel.TotalCost}
	for l, j := range sel.Pick {
		p.Picks = append(p.Picks, prob.Stages[l][j])
	}
	return p
}

// Optimize picks the cost-minimal feasible deployment under the
// deadline (seconds), the paper's Table I computation.
func (prob *DeploymentProblem) Optimize(deadlineSec int) (*Plan, error) {
	sel, err := mckp.SolveMinCost(prob.Classes, deadlineSec)
	if err != nil {
		return nil, err
	}
	return planFromSelection(prob, sel), nil
}

// OptimizePaperObjective runs the paper's literal formulation
// (maximize sum of reciprocal prices).
func (prob *DeploymentProblem) OptimizePaperObjective(deadlineSec int) (*Plan, error) {
	sel, err := mckp.SolvePaper(prob.Classes, deadlineSec)
	if err != nil {
		return nil, err
	}
	return planFromSelection(prob, sel), nil
}

// OptimizeGreedy runs the heuristic baseline (ablation).
func (prob *DeploymentProblem) OptimizeGreedy(deadlineSec int) (*Plan, error) {
	sel, err := mckp.SolveGreedy(prob.Classes, deadlineSec)
	if err != nil {
		return nil, err
	}
	return planFromSelection(prob, sel), nil
}

// OverProvision runs every stage at the largest configuration (the
// paper's Fig. 6 "over-provision" bar: all stages on 8 vCPUs).
func (prob *DeploymentProblem) OverProvision() *Plan {
	sel, _ := mckp.FixedProvision(prob.Classes, func(cl mckp.Class) int { return len(cl.Items) - 1 })
	return planFromSelection(prob, sel)
}

// UnderProvision runs every stage at the smallest configuration (the
// Fig. 6 "under-provision" bar: all stages on 1 vCPU).
func (prob *DeploymentProblem) UnderProvision() *Plan {
	sel, _ := mckp.FixedProvision(prob.Classes, func(mckp.Class) int { return 0 })
	return planFromSelection(prob, sel)
}

// MinTime returns the fastest achievable total runtime (feasibility
// limit).
func (prob *DeploymentProblem) MinTime() int { return mckp.MinTotalTime(prob.Classes) }

// TableIRow is one deadline row of the paper's Table I.
type TableIRow struct {
	DeadlineSec int
	Plan        *Plan
}

// TableI evaluates the optimizer at the given deadlines.
func (prob *DeploymentProblem) TableI(deadlines []int) ([]TableIRow, error) {
	var rows []TableIRow
	for _, d := range deadlines {
		plan, err := prob.Optimize(d)
		if err != nil {
			return nil, err
		}
		rows = append(rows, TableIRow{DeadlineSec: d, Plan: plan})
	}
	return rows, nil
}

// ProvisioningComparison is one group of the paper's Fig. 6.
type ProvisioningComparison struct {
	Design            string
	Over, Under, Opt  *Plan
	SavingVsOverPct   float64 // cost saved by the optimizer vs over-provisioning
	OverheadVsBestPct float64 // runtime overhead vs the fastest (over-provisioned) schedule
}

// CompareProvisioning reproduces one Fig. 6 group: the optimizer is
// given slackFactor x the over-provisioned (fastest) runtime as its
// deadline — "minimal overhead to the best runtime" in the paper —
// and its cost is compared against both fixed policies.
func CompareProvisioning(prob *DeploymentProblem, slackFactor float64) (*ProvisioningComparison, error) {
	if slackFactor < 1 {
		return nil, fmt.Errorf("core: slack factor %g below 1 makes every plan infeasible", slackFactor)
	}
	over := prob.OverProvision()
	under := prob.UnderProvision()
	deadline := int(float64(over.TotalTime) * slackFactor)
	opt, err := prob.Optimize(deadline)
	if err != nil {
		return nil, err
	}
	cmp := &ProvisioningComparison{Design: prob.Design, Over: over, Under: under, Opt: opt}
	if opt.Feasible && over.TotalCost > 0 {
		cmp.SavingVsOverPct = 100 * (over.TotalCost - opt.TotalCost) / over.TotalCost
	}
	if opt.Feasible && over.TotalTime > 0 {
		cmp.OverheadVsBestPct = 100 * float64(opt.TotalTime-over.TotalTime) / float64(over.TotalTime)
	}
	return cmp, nil
}
