package core

import (
	"fmt"

	"edacloud/internal/cache"
	"edacloud/internal/cloud"
	"edacloud/internal/designs"
	"edacloud/internal/flow"
	"edacloud/internal/mckp"
	"edacloud/internal/synth"
	"edacloud/internal/techlib"
)

// This file drives the batch-level deployment optimizer: N
// characterized flows co-optimized against one bounded cloud.Fleet
// instead of each flow's knapsack solved as if its machines appear on
// demand. mckp.BatchOptimize does the joint selection (shadow prices
// on contended instance types over the per-job DP); this layer
// restricts each job's choice table to the fleet's actual types,
// converts the joint selection back into executable Plans, and — the
// contract the test suite pins — predicts the contended schedule
// exactly by replaying the flow scheduler's placement engine over the
// optimizer's own per-stage runtime predictions (flow.Forecast).

// BatchJobSpec is one job of a batch deployment: a characterized
// design with its deployment problem and completion deadline.
type BatchJobSpec struct {
	// Name labels the job in plans and schedules; it must be unique
	// within the batch (several jobs may share one design).
	Name string
	Char *DesignCharacterization
	Prob *DeploymentProblem
	// DeadlineSec is the job's completion deadline in whole simulated
	// seconds, queueing included; 0 means none.
	DeadlineSec int
	// CacheHits marks the stages PredictCacheHits expects the artifact
	// cache to serve when the batch executes (store contents plus
	// within-batch dedup). OptimizeBatchOpts collapses these stages to
	// the cache-probe constant before solving. Nil means no prediction —
	// the cache-blind path, bit-identical to earlier behavior.
	CacheHits map[JobKind]bool
	// Recipe, when non-zero, overrides the batch-level characterization
	// recipe for this job alone — a DSE trial batch mixes recipes within
	// one co-optimized execution. The job's Char must have been profiled
	// under the same recipe for the plan's runtimes to be meaningful.
	Recipe synth.Recipe
	// ClockPeriodNs, when non-zero, sets this job's STA timing
	// constraint (flow.WithClockPeriodNs); 0 keeps the engine default.
	// It participates in the job's cache identity: trials differing only
	// in clock share every stage artifact except timing.
	ClockPeriodNs float64
}

// effectiveRecipe resolves the recipe this spec's flow runs under: the
// spec's own when set, else the batch-level characterization recipe.
// opts must already carry its defaults.
func (s BatchJobSpec) effectiveRecipe(opts CharacterizeOptions) synth.Recipe {
	if s.Recipe.Name != "" || len(s.Recipe.Passes) > 0 {
		return s.Recipe
	}
	return opts.Recipe
}

// BatchOptions shapes a batch optimization for preemptible capacity
// and placement policy. The zero value reproduces the fault-oblivious
// behavior exactly.
type BatchOptions struct {
	// Hazards carries per-instance-type revocation rates (events/hour)
	// into the selection: choice tables are risk-adjusted
	// (mckp.RiskAdjust) before the DP and shadow-price loop run, so
	// deadline-critical stages buy on-demand capacity while slack-rich
	// stages ride the spot discount. Empty means no adjustment.
	Hazards mckp.Hazards
	// Retry is the revocation retry policy jobs execute (and forecast)
	// under; its BackoffSec also feeds the risk adjustment.
	Retry flow.RetryPolicy
	// Hold plans and executes every job under the holding policy: one
	// machine leased across all stages (flow.SingleInstance). Choice
	// tables must then share labels across stages — build them with
	// BuildHoldDeploymentProblem.
	Hold bool
	// Cache attaches a content-addressed artifact store to the
	// execution: ExecuteBatchPlan hands it to the flow scheduler, so
	// stages whose chain key is present are adopted instead of run and
	// shared prefixes within the batch settle as one compute plus billed
	// probes. Nil runs cache-less.
	Cache *cache.Store
}

// BatchPlan is a co-optimized batch deployment: one executable Plan
// per job plus the contention-aware schedule forecast the plans imply
// on the shared fleet.
type BatchPlan struct {
	Feasible bool
	// Options echoes the BatchOptions the plan was solved under;
	// ExecuteBatchPlan replays them (retry policy, holding policy) so
	// the forecast and the execution see the same discipline.
	Options BatchOptions
	// Plans holds each job's stage-to-instance selection, aligned with
	// the input specs. Problems holds the fleet-restricted deployment
	// problems the selection was solved over (the choice tables the
	// adaptive policy executes against).
	Plans    []*Plan
	Problems []*DeploymentProblem
	// Selection is the mckp-level joint solution, including the integral
	// schedule estimate, shadow prices and winning method.
	Selection mckp.BatchSelection
	// Forecast is the exact contention-aware prediction: the flow
	// scheduler's placement engine replayed over the plans' predicted
	// stage runtimes on a clone of the fleet. Its per-job start, wait
	// and finish times and bills are what a real PlanPolicy execution
	// reproduces.
	Forecast *flow.Schedule
	// TotalCost sums the plans' predicted bills (queueing never changes
	// a per-second bill).
	TotalCost float64
}

// restrictProblem drops choice-table entries whose instance type the
// fleet cannot supply, keeping Stages and Classes aligned. A stage
// left with no candidate is a configuration error: the fleet cannot
// run the flow at all.
func restrictProblem(prob *DeploymentProblem, capacity mckp.Capacity) (*DeploymentProblem, error) {
	out := &DeploymentProblem{Design: prob.Design}
	for l, stage := range prob.Stages {
		var choices []StageChoice
		cl := mckp.Class{Name: prob.Classes[l].Name}
		for j, c := range stage {
			if _, ok := capacity[c.Instance.Name]; !ok {
				continue
			}
			choices = append(choices, c)
			cl.Items = append(cl.Items, prob.Classes[l].Items[j])
		}
		if len(choices) == 0 {
			return nil, fmt.Errorf("core: fleet has no instance able to run stage %s of %s",
				prob.Classes[l].Name, prob.Design)
		}
		out.Stages = append(out.Stages, choices)
		out.Classes = append(out.Classes, cl)
	}
	return out, nil
}

// Restrict drops choice-table entries whose instance type the fleet
// cannot supply — the exported form of the batch optimizer's own
// restriction step, so callers pricing plans against a bounded fleet
// (the DSE full-evaluation rung) solve over exactly the choices the
// fleet can execute.
func (prob *DeploymentProblem) Restrict(fleet *cloud.Fleet) (*DeploymentProblem, error) {
	return restrictProblem(prob, batchCapacity(fleet))
}

// StageChoices exports the problem's choice tables in the flow
// scheduler's executable form — the table AdaptivePolicy consults.
func (prob *DeploymentProblem) StageChoices() flow.StageChoices {
	out := flow.StageChoices{}
	for _, stage := range prob.Stages {
		for _, c := range stage {
			out[c.Job] = append(out[c.Job], flow.StageOption{
				Type:    c.Instance,
				Seconds: c.Seconds,
				CostUSD: c.Cost,
			})
		}
	}
	return out
}

// batchCapacity renders the fleet's capacity profile in mckp currency.
func batchCapacity(fleet *cloud.Fleet) mckp.Capacity {
	capacity := mckp.Capacity{}
	for _, e := range fleet.Profile() {
		capacity[e.Type.Name] = e.Count
	}
	return capacity
}

// forecastFor replays the plans on a clone of the fleet and returns
// the predicted schedule. The clone shares the fleet's revocation
// model (timelines are pure functions of seed and instance ID), and
// the options' retry/holding policy ride along, so the prediction
// reacts to revocations exactly as the execution will.
func forecastFor(specs []BatchJobSpec, plans []*Plan, fleet *cloud.Fleet, opts BatchOptions) (*flow.Schedule, error) {
	fjobs := make([]flow.ForecastJob, len(specs))
	for i, spec := range specs {
		fj := flow.ForecastJob{Name: spec.Name, DeadlineSec: float64(spec.DeadlineSec),
			Retry: opts.Retry, Hold: opts.Hold}
		for _, pick := range plans[i].Picks {
			fj.Stages = append(fj.Stages, flow.ForecastStage{
				Kind:    pick.Job,
				Type:    pick.Instance,
				Seconds: pick.Seconds,
				Cached:  pick.Cached,
			})
		}
		fjobs[i] = fj
	}
	return flow.Forecast(fleet.Clone(), fjobs)
}

// validateBatchSpecs checks the batch input shape shared by the
// optimizers.
func validateBatchSpecs(specs []BatchJobSpec, fleet *cloud.Fleet) error {
	if len(specs) == 0 {
		return fmt.Errorf("core: batch has no jobs")
	}
	if fleet == nil || len(fleet.Instances) == 0 {
		return fmt.Errorf("core: batch needs a non-empty fleet")
	}
	seen := map[string]bool{}
	for i, spec := range specs {
		if spec.Char == nil || spec.Prob == nil {
			return fmt.Errorf("core: batch job %d needs a characterization and a deployment problem", i)
		}
		if spec.Name == "" {
			return fmt.Errorf("core: batch job %d has no name", i)
		}
		if seen[spec.Name] {
			return fmt.Errorf("core: batch job name %q repeats", spec.Name)
		}
		seen[spec.Name] = true
	}
	return nil
}

// OptimizeBatch co-optimizes the batch against the shared fleet: each
// job's choice table restricted to the fleet's types, the joint
// selection solved by mckp.BatchOptimize (shadow prices on contended
// types over the per-job DP, round-robin repair as the fallback
// bound), and the resulting plans forecast exactly on a clone of the
// fleet. The fleet itself is not mutated.
func OptimizeBatch(specs []BatchJobSpec, fleet *cloud.Fleet) (*BatchPlan, error) {
	return OptimizeBatchOpts(specs, fleet, BatchOptions{})
}

// OptimizeBatchOpts is OptimizeBatch with explicit BatchOptions: the
// joint selection solves over risk-adjusted choice tables when hazards
// are given (spot items priced at their expected truncated-attempt
// cost and wall clock), under the holding policy's one-label-per-job
// constraint when Hold is set, and the forecast replays the options'
// retry/holding discipline on the fleet clone. TotalCost is then the
// expected bill under revocations, not the nominal one.
func OptimizeBatchOpts(specs []BatchJobSpec, fleet *cloud.Fleet, opts BatchOptions) (*BatchPlan, error) {
	if err := validateBatchSpecs(specs, fleet); err != nil {
		return nil, err
	}
	capacity := batchCapacity(fleet)
	probs := make([]*DeploymentProblem, len(specs))
	jobs := make([]mckp.BatchJob, len(specs))
	for i, spec := range specs {
		restricted, err := restrictProblem(spec.Prob, capacity)
		if err != nil {
			return nil, err
		}
		hits := hitVector(spec.CacheHits)
		probs[i] = restricted.CacheAdjusted(hits)
		classes := restricted.Classes
		if len(opts.Hazards) > 0 {
			classes = mckp.RiskAdjust(classes, opts.Hazards, opts.Retry.BackoffSec)
		}
		// Cache adjustment comes after risk adjustment: a cached stage
		// books no lease, so it carries no revocation exposure to price.
		classes = mckp.CacheAdjust(classes, hits, cache.ProbeTimeSec)
		jobs[i] = mckp.BatchJob{Name: spec.Name, Classes: classes, DeadlineSec: spec.DeadlineSec, Hold: opts.Hold}
	}
	sel, err := mckp.BatchOptimize(jobs, capacity)
	if err != nil {
		return nil, err
	}
	if !sel.Feasible {
		return &BatchPlan{Feasible: false, Options: opts, Problems: probs, Selection: sel}, nil
	}
	bp := &BatchPlan{Feasible: true, Options: opts, Problems: probs, Selection: sel}
	for i := range specs {
		plan := planFromSelection(probs[i], sel.Jobs[i])
		bp.Plans = append(bp.Plans, plan)
		bp.TotalCost += sel.Jobs[i].TotalCost
	}
	if bp.Forecast, err = forecastFor(specs, bp.Plans, fleet, opts); err != nil {
		return nil, err
	}
	return bp, nil
}

// IndependentBatchPlan is the baseline OptimizeBatch is measured
// against: every job's plan solved in isolation (the paper's
// per-flow knapsack, restricted to the fleet's types but blind to
// contention), then forecast together on the same shared fleet. Its
// predicted waits and deadline misses are what co-optimization
// removes; its cost lower-bounds any per-job-deadline-feasible batch.
func IndependentBatchPlan(specs []BatchJobSpec, fleet *cloud.Fleet) (*BatchPlan, error) {
	return IndependentBatchPlanOpts(specs, fleet, BatchOptions{})
}

// IndependentBatchPlanOpts is IndependentBatchPlan with explicit
// BatchOptions. Note the independent baseline solves each job over the
// NOMINAL choice tables even when hazards are given — it is exactly
// the naive planner that believes spot discounts are free — so pairing
// it against OptimizeBatchOpts with the same hazards isolates what the
// risk adjustment buys.
func IndependentBatchPlanOpts(specs []BatchJobSpec, fleet *cloud.Fleet, opts BatchOptions) (*BatchPlan, error) {
	if err := validateBatchSpecs(specs, fleet); err != nil {
		return nil, err
	}
	capacity := batchCapacity(fleet)
	bp := &BatchPlan{Feasible: true, Options: opts}
	for _, spec := range specs {
		restricted, err := restrictProblem(spec.Prob, capacity)
		if err != nil {
			return nil, err
		}
		bp.Problems = append(bp.Problems, restricted)
		deadline := spec.DeadlineSec
		var plan *Plan
		if opts.Hold {
			// SolveHold treats 0 as deadline-free; the under-provision sum
			// (smallest item per stage, labels mixed) can undercut every
			// single-label total and would wrongly starve hold jobs.
			plan, err = restricted.OptimizeHold(deadline)
		} else {
			if deadline <= 0 {
				deadline = restricted.UnderProvision().TotalTime
			}
			plan, err = restricted.Optimize(deadline)
		}
		if err != nil {
			return nil, err
		}
		if !plan.Feasible {
			bp.Feasible = false
			bp.Plans = append(bp.Plans, plan)
			continue
		}
		bp.Plans = append(bp.Plans, plan)
		bp.TotalCost += plan.TotalCost
	}
	if !bp.Feasible {
		return bp, nil
	}
	var err error
	if bp.Forecast, err = forecastFor(specs, bp.Plans, fleet, opts); err != nil {
		return nil, err
	}
	return bp, nil
}

// ExecuteBatchPlan replays a batch plan on the fleet scheduler: every
// job's flow regenerated at the characterization's scale, each stage
// placed on its plan-chosen instance type. With adaptive true the
// jobs run under flow.AdaptivePolicy — carrying their choice tables
// so a stage can upgrade when queueing eats its slack — otherwise
// under the static flow.PlanPolicy, whose schedule must match the
// plan's Forecast exactly. opts must carry the same Scale/Recipe the
// characterizations ran with. The given fleet is mutated with the
// run's leases; Reset or Clone it between runs.
func ExecuteBatchPlan(lib *techlib.Library, specs []BatchJobSpec, bp *BatchPlan, opts CharacterizeOptions, fleet *cloud.Fleet, adaptive bool) (*flow.Schedule, error) {
	if err := validateBatchSpecs(specs, fleet); err != nil {
		return nil, err
	}
	if bp == nil || !bp.Feasible {
		return nil, fmt.Errorf("core: infeasible batch plan cannot execute")
	}
	if len(bp.Plans) != len(specs) {
		return nil, fmt.Errorf("core: batch plan holds %d jobs, specs are %d", len(bp.Plans), len(specs))
	}
	if bp.Options.Hold && adaptive {
		return nil, fmt.Errorf("core: holding-policy batch plan cannot execute adaptively")
	}
	opts = opts.withDefaults()
	jobs := make([]flow.Job, len(specs))
	for i, spec := range specs {
		sp, err := bp.Plans[i].StagePlan()
		if err != nil {
			return nil, fmt.Errorf("core: job %q: %w", spec.Name, err)
		}
		g, err := designs.EvalDesign(spec.Char.Design, opts.Scale)
		if err != nil {
			return nil, err
		}
		jobs[i] = flow.Job{
			Name:   spec.Name,
			Design: g,
			Lib:    lib,
			Options: []flow.Option{
				flow.WithRecipe(spec.effectiveRecipe(opts)),
				flow.WithClockPeriodNs(spec.ClockPeriodNs),
			},
			Plan:        sp,
			DeadlineSec: float64(spec.DeadlineSec),
			WorkScale:   spec.Char.WorkScale,
			Retry:       bp.Options.Retry,
		}
		if bp.Options.Hold {
			// The holding policy runs every stage on the job's one machine
			// — the plan's label-uniform pick.
			jobs[i].Instance = bp.Plans[i].Picks[0].Instance
		}
		if adaptive {
			jobs[i].Choices = bp.Problems[i].StageChoices()
		}
	}
	policy := flow.Policy(flow.PlanPolicy{})
	switch {
	case bp.Options.Hold:
		policy = flow.SingleInstance{}
	case adaptive:
		policy = flow.AdaptivePolicy{}
	}
	sched := &flow.Scheduler{Workers: opts.Workers, Fleet: fleet, Policy: policy, Cache: bp.Options.Cache}
	return sched.Run(nil, jobs)
}
