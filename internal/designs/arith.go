package designs

import "edacloud/internal/aig"

// The ten arithmetic benchmarks. Base widths are chosen so that the
// scale=1 gate counts land in the EPFL suite's range; generators clamp
// widths to small but functional minima so reduced-scale dataset
// generation stays meaningful.

func scaledWidth(base int, scale float64, min int) int {
	w := int(float64(base) * scale)
	if w < min {
		w = min
	}
	return w
}

// genAdder builds a width-bit ripple-carry adder (EPFL "adder").
func genAdder(scale float64) *aig.Graph {
	w := scaledWidth(128, scale, 4)
	g := aig.New("adder")
	a := inputWord(g, "a", w)
	b := inputWord(g, "b", w)
	sum, cout := rippleAdd(g, a, b, aig.False)
	outputWord(g, "s", sum)
	g.AddOutput(cout, "cout")
	return g
}

// genBar builds a logarithmic barrel shifter (EPFL "bar").
func genBar(scale float64) *aig.Graph {
	w := scaledWidth(128, scale, 8)
	shBits := 1
	for 1<<uint(shBits) < w {
		shBits++
	}
	g := aig.New("bar")
	data := inputWord(g, "d", w)
	sh := inputWord(g, "sh", shBits)
	dir := g.AddInput("left")
	l := barrelShift(g, data, sh, true)
	r := barrelShift(g, data, sh, false)
	outputWord(g, "q", muxWord(g, dir, l, r))
	return g
}

// genDiv builds a restoring array divider (EPFL "div"): quotient and
// remainder of a 2w-bit dividend by a w-bit divisor.
func genDiv(scale float64) *aig.Graph {
	w := scaledWidth(32, scale, 4)
	g := aig.New("div")
	dividend := inputWord(g, "n", 2*w)
	divisor := inputWord(g, "d", w)

	// Non-performing restoring division: shift the remainder left one
	// bit at a time, trial-subtract the divisor, keep on success.
	rem := constWord(g, 0, w+1)
	div := append(append(word{}, divisor...), aig.False)
	quot := make(word, 2*w)
	for i := 2*w - 1; i >= 0; i-- {
		// rem = rem<<1 | dividend[i]
		shifted := shiftLeftConst(rem, 1)
		shifted[0] = dividend[i]
		diff, ok := rippleSub(g, shifted, div)
		quot[i] = ok
		rem = muxWord(g, ok, diff, shifted)
	}
	outputWord(g, "q", quot)
	outputWord(g, "r", rem[:w])
	return g
}

// genHyp builds sqrt(a^2+b^2) (EPFL "hyp"), the largest arithmetic
// benchmark: two squarers, an adder and a root extractor.
func genHyp(scale float64) *aig.Graph {
	w := scaledWidth(32, scale, 4)
	g := aig.New("hyp")
	a := inputWord(g, "a", w)
	b := inputWord(g, "b", w)
	a2 := mulArray(g, a, a)
	b2 := mulArray(g, b, b)
	sum, cout := rippleAdd(g, a2, b2, aig.False)
	sum = append(sum, cout)
	outputWord(g, "h", isqrtArray(g, sum))
	return g
}

// genLog2 builds an integer log2 with fractional refinement (EPFL
// "log2"): a leading-one detector, a normalizing barrel shift and a
// small polynomial on the fraction.
func genLog2(scale float64) *aig.Graph {
	w := scaledWidth(32, scale, 8)
	g := aig.New("log2")
	x := inputWord(g, "x", w)
	pos, valid := leadingOnePos(g, x)
	norm := barrelShift(g, x, pos, false) // fraction bits below the leading one
	fracW := w / 2
	frac := norm[:fracW]
	// One Newton-ish refinement term: frac - frac^2/2 approximates
	// ln(1+f)/ln2 to first order; build frac^2 with the array multiplier.
	sq := mulArray(g, frac, frac)
	half := shiftRightConst(sq[:fracW], 1)
	corr, _ := rippleSub(g, frac, half)
	outputWord(g, "ipart", andWord(g, pos, valid))
	outputWord(g, "fpart", corr)
	return g
}

// genMax builds a k-way tournament maximum of unsigned words (EPFL
// "max").
func genMax(scale float64) *aig.Graph {
	w := scaledWidth(128, scale, 8)
	const k = 4
	g := aig.New("max")
	words := make([]word, k)
	for i := range words {
		words[i] = inputWord(g, "x"+itoa(i), w)
	}
	for len(words) > 1 {
		var next []word
		for i := 0; i+1 < len(words); i += 2 {
			a, b := words[i], words[i+1]
			next = append(next, muxWord(g, geU(g, a, b), a, b))
		}
		if len(words)%2 == 1 {
			next = append(next, words[len(words)-1])
		}
		words = next
	}
	outputWord(g, "max", words[0])
	return g
}

// genMultiplier builds a w x w array multiplier (EPFL "multiplier").
func genMultiplier(scale float64) *aig.Graph {
	w := scaledWidth(64, scale, 4)
	g := aig.New("multiplier")
	a := inputWord(g, "a", w)
	b := inputWord(g, "b", w)
	outputWord(g, "p", mulArray(g, a, b))
	return g
}

// genSin builds a fixed-point sine approximation (EPFL "sin") as a
// degree-5 odd polynomial evaluated with Horner's scheme:
// sin(x) ~ x*(c1 + x2*(c3 + x2*c5)).
func genSin(scale float64) *aig.Graph {
	w := scaledWidth(24, scale, 6)
	g := aig.New("sin")
	x := inputWord(g, "x", w)
	x2full := mulArray(g, x, x)
	x2 := x2full[w:] // keep the top w bits as the fixed-point square

	c1 := constWord(g, 0xFFFFFF>>(24-min(w, 24)), w)
	c3 := constWord(g, 0x2AAAAA>>(24-min(w, 24)), w)
	c5 := constWord(g, 0x022222>>(24-min(w, 24)), w)

	t := mulArray(g, x2, c5)[w:]
	t, _ = rippleAdd(g, t, c3, aig.False)
	t = mulArray(g, x2, t)[w:]
	t, _ = rippleSub(g, c1, t)
	outputWord(g, "sin", mulArray(g, x, t)[w:])
	return g
}

// genSqrt builds a restoring square root array (EPFL "sqrt").
func genSqrt(scale float64) *aig.Graph {
	w := scaledWidth(64, scale, 6)
	g := aig.New("sqrt")
	x := inputWord(g, "x", w)
	outputWord(g, "r", isqrtArray(g, x))
	return g
}

// genSquare builds x*x (EPFL "square").
func genSquare(scale float64) *aig.Graph {
	w := scaledWidth(64, scale, 4)
	g := aig.New("square")
	x := inputWord(g, "x", w)
	outputWord(g, "p", mulArray(g, x, x))
	return g
}

// isqrtArray builds a bit-serial restoring integer square root: for an
// n-bit radicand it produces ceil(n/2) result bits, developing the
// classical digit recurrence with a trial subtraction per bit.
func isqrtArray(g *aig.Graph, x word) word {
	n := len(x)
	if n%2 == 1 {
		x = append(append(word{}, x...), aig.False)
		n++
	}
	resBits := n / 2
	// Remainder register: the restoring recurrence holds rem <= 2*root,
	// so rem*4 + 3 needs at most resBits+3 bits before the subtraction.
	rem := constWord(g, 0, resBits+3)
	root := constWord(g, 0, resBits)
	for i := resBits - 1; i >= 0; i-- {
		// Bring down the next two radicand bits.
		rem = shiftLeftConst(rem, 2)
		rem[0] = x[2*i]
		rem[1] = x[2*i+1]
		// Trial value: (root << 2) | 1 at the right alignment =
		// 4*root + 1, which must fit resBits+2 bits.
		trial := make(word, len(rem))
		for j := range trial {
			trial[j] = aig.False
		}
		trial[0] = aig.True
		for j := 0; j < resBits && j+2 < len(trial); j++ {
			trial[j+2] = root[j]
		}
		diff, ok := rippleSub(g, rem, trial)
		rem = muxWord(g, ok, diff, rem)
		root = shiftLeftConst(root, 1)
		root[0] = ok
	}
	return root
}
