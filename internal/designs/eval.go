package designs

import (
	"fmt"
	"math/rand"
	"sort"

	"edacloud/internal/aig"
)

// EvalSpec describes one of the eight evaluation designs of the
// paper's Fig. 3. Blocks lists the benchmark sub-blocks composing the
// design and their relative sizing; Glue adds FSM-style random logic
// between blocks, as SoC toplevels have.
type EvalSpec struct {
	Name string
	// TargetInstances is the approximate full-scale (scale=1) mapped
	// instance count; the paper's designs span a few hundred to 200k.
	TargetInstances int
	blocks          []blockSpec
	glueGates       int
	seed            int64
}

type blockSpec struct {
	bench string
	scale float64 // relative to the design's overall scale
	count int
}

// evalSpecs orders the paper's designs from smallest to largest, with
// block mixes sketching their real microarchitectures: NoC routers are
// arbitration+mux logic, aes is wide XOR-heavy datapath, the RISC-V
// cores combine ALUs with control, jpeg is multiplier-rich DCT
// datapath, and the big cores add wide arithmetic and large control.
var evalSpecs = []EvalSpec{
	{
		Name: "dyn_node", TargetInstances: 600, seed: 101,
		blocks: []blockSpec{
			{"arbiter", 0.12, 2}, {"priority", 0.2, 1}, {"dec", 0.5, 1},
		},
		glueGates: 120,
	},
	{
		Name: "aes", TargetInstances: 12000, seed: 102,
		blocks: []blockSpec{
			{"cavlc", 2.0, 4}, {"dec", 0.9, 2}, {"bar", 0.4, 2}, {"i2c", 1.2, 2},
		},
		glueGates: 2500,
	},
	{
		Name: "ibex", TargetInstances: 20000, seed: 103,
		blocks: []blockSpec{
			{"adder", 0.25, 2}, {"bar", 0.25, 1}, {"priority", 0.3, 1},
			{"dec", 0.8, 1}, {"i2c", 1.5, 2}, {"multiplier", 0.3, 1},
		},
		glueGates: 3000,
	},
	{
		Name: "jpeg", TargetInstances: 40000, seed: 104,
		blocks: []blockSpec{
			{"multiplier", 0.45, 4}, {"adder", 0.4, 4}, {"bar", 0.3, 2}, {"cavlc", 2.5, 2},
		},
		glueGates: 5000,
	},
	{
		Name: "swerv", TargetInstances: 60000, seed: 105,
		blocks: []blockSpec{
			{"adder", 0.5, 3}, {"multiplier", 0.45, 2}, {"bar", 0.5, 2},
			{"priority", 0.5, 2}, {"mem_ctrl", 0.35, 1}, {"i2c", 2.0, 2},
		},
		glueGates: 8000,
	},
	{
		Name: "ariane", TargetInstances: 100000, seed: 106,
		blocks: []blockSpec{
			{"adder", 1.0, 3}, {"multiplier", 0.6, 2}, {"div", 0.5, 1},
			{"bar", 0.8, 2}, {"mem_ctrl", 0.5, 1}, {"dec", 1.0, 2}, {"i2c", 2.5, 2},
		},
		glueGates: 12000,
	},
	{
		Name: "coyote", TargetInstances: 150000, seed: 107,
		blocks: []blockSpec{
			{"adder", 1.2, 4}, {"multiplier", 0.7, 3}, {"sqrt", 0.5, 1},
			{"bar", 1.0, 2}, {"mem_ctrl", 0.6, 1}, {"voter", 0.4, 1}, {"i2c", 3.0, 2},
		},
		glueGates: 16000,
	},
	{
		Name: "sparc_core", TargetInstances: 200000, seed: 108,
		blocks: []blockSpec{
			{"adder", 1.5, 4}, {"multiplier", 0.8, 3}, {"div", 0.8, 1},
			{"sqrt", 0.6, 1}, {"bar", 1.2, 2}, {"mem_ctrl", 0.8, 1},
			{"dec", 1.2, 2}, {"priority", 1.5, 2}, {"i2c", 4.0, 2},
		},
		glueGates: 20000,
	},
}

// EvalDesignNames returns the eight evaluation design names, smallest
// first (the order of the paper's Fig. 3 legend).
func EvalDesignNames() []string {
	names := make([]string, len(evalSpecs))
	for i, s := range evalSpecs {
		names[i] = s.Name
	}
	return names
}

// EvalInfo returns the spec of a named evaluation design.
func EvalInfo(name string) (EvalSpec, error) {
	for _, s := range evalSpecs {
		if s.Name == name {
			return s, nil
		}
	}
	return EvalSpec{}, fmt.Errorf("designs: unknown evaluation design %q", name)
}

// EvalDesign composes the named evaluation design at the given scale.
// Sub-block inputs are shared through a common input bus (as SoC
// operand/result buses are), and glue logic stitches block outputs
// together, producing a single connected graph.
func EvalDesign(name string, scale float64) (*aig.Graph, error) {
	spec, err := EvalInfo(name)
	if err != nil {
		return nil, err
	}
	if scale <= 0 {
		return nil, fmt.Errorf("designs: non-positive scale %g", scale)
	}
	rng := rand.New(rand.NewSource(spec.seed))
	g := aig.New(name)

	// A shared operand bus feeds all blocks; its width follows the
	// widest block demand.
	bus := inputWord(g, "bus", 160)

	var blockOuts []aig.Lit
	for _, b := range spec.blocks {
		sub := MustBenchmark(b.bench, b.scale*scale)
		for inst := 0; inst < b.count; inst++ {
			// Each instance taps the bus at a rotating offset, with a
			// few instance-unique inputs mixed in for asymmetry.
			offset := rng.Intn(len(bus))
			inMap := make([]aig.Lit, sub.NumInputs())
			for i := range inMap {
				if rng.Intn(8) == 0 {
					inMap[i] = g.AddInput(fmt.Sprintf("%s%d_i%d", b.bench, inst, i))
				} else {
					inMap[i] = bus[(offset+i)%len(bus)]
				}
			}
			outs := appendGraph(g, sub, inMap)
			blockOuts = append(blockOuts, outs...)
		}
	}

	// Glue logic mixes block outputs, as toplevel interconnect and
	// control would.
	glue := int(float64(spec.glueGates) * scale)
	if glue < 16 {
		glue = 16
	}
	glueOuts := randomLogic(g, rng, blockOuts, glue, 6, min(64, len(blockOuts)))
	for i, o := range glueOuts {
		g.AddOutput(o, fmt.Sprintf("glue_o%d", i))
	}
	// Export a sample of direct block outputs too.
	stride := len(blockOuts)/200 + 1
	for i := 0; i < len(blockOuts); i += stride {
		g.AddOutput(blockOuts[i], fmt.Sprintf("blk_o%d", i))
	}

	swept, _ := g.Sweep()
	swept.Name = name
	return swept, nil
}

// MustEvalDesign is EvalDesign that panics on error.
func MustEvalDesign(name string, scale float64) *aig.Graph {
	g, err := EvalDesign(name, scale)
	if err != nil {
		panic(err)
	}
	return g
}

// appendGraph copies sub into g, substituting inMap for sub's primary
// inputs, and returns the literals corresponding to sub's outputs.
func appendGraph(g *aig.Graph, sub *aig.Graph, inMap []aig.Lit) []aig.Lit {
	old2new := make([]aig.Lit, sub.NumVars())
	old2new[0] = aig.False
	for i, v := range sub.InputVars() {
		old2new[v] = inMap[i]
	}
	sub.TopoAnds(func(v int, f0, f1 aig.Lit) {
		a := old2new[f0.Var()].NotIf(f0.IsNeg())
		b := old2new[f1.Var()].NotIf(f1.IsNeg())
		old2new[v] = g.And(a, b)
	})
	outs := make([]aig.Lit, sub.NumOutputs())
	for i, o := range sub.Outputs() {
		outs[i] = old2new[o.Var()].NotIf(o.IsNeg())
	}
	return outs
}

// SortedEvalTargets returns design names ordered by target instance
// count ascending (already the storage order; exported for callers
// that need the guarantee).
func SortedEvalTargets() []EvalSpec {
	specs := append([]EvalSpec(nil), evalSpecs...)
	sort.Slice(specs, func(i, j int) bool { return specs[i].TargetInstances < specs[j].TargetInstances })
	return specs
}
