// Package designs generates the benchmark circuits of the paper's
// evaluation as And-Inverter Graphs. Two families are provided:
//
//   - Benchmark(name, scale): 18 EPFL/OpenCores-style combinational
//     benchmarks (ten arithmetic, eight control), built as genuine
//     arithmetic and control structures (ripple/array arithmetic,
//     barrel shifters, priority encoders, arbiters, popcount voters),
//     not random graphs — their logic depth, fanout profile and
//     reconvergence mirror the real suites'.
//
//   - EvalDesign(name, scale): the eight designs of the paper's Fig. 3
//     (dyn_node, aes, ibex, jpeg, swerv, ariane, coyote, sparc_core),
//     composed from the benchmark blocks in SoC-like mixes and sized so
//     their relative instance counts match the paper's few-hundred to
//     200k-instance range.
//
// Every generator is deterministic: the same name and scale always
// yields a structurally identical graph.
package designs

import "edacloud/internal/aig"

// word is a little-endian bus of AIG literals.
type word []aig.Lit

// inputWord appends width named primary inputs.
func inputWord(g *aig.Graph, name string, width int) word {
	w := make(word, width)
	for i := range w {
		w[i] = g.AddInput(busBit(name, i))
	}
	return w
}

func busBit(name string, i int) string {
	return name + "[" + itoa(i) + "]"
}

// itoa is a tiny strconv.Itoa to keep the hot path allocation-free.
func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// outputWord registers all bits of w as primary outputs.
func outputWord(g *aig.Graph, name string, w word) {
	for i, l := range w {
		g.AddOutput(l, busBit(name, i))
	}
}

// constWord returns a width-bit constant.
func constWord(g *aig.Graph, value uint64, width int) word {
	w := make(word, width)
	for i := range w {
		if value>>uint(i)&1 == 1 {
			w[i] = aig.True
		} else {
			w[i] = aig.False
		}
	}
	return w
}

// fullAdd returns (sum, carry) of three bits.
func fullAdd(g *aig.Graph, a, b, c aig.Lit) (aig.Lit, aig.Lit) {
	return g.Xor(g.Xor(a, b), c), g.Maj(a, b, c)
}

// rippleAdd returns a+b+cin as a len(a)-bit sum plus carry out.
// a and b must have equal width.
func rippleAdd(g *aig.Graph, a, b word, cin aig.Lit) (word, aig.Lit) {
	sum := make(word, len(a))
	c := cin
	for i := range a {
		sum[i], c = fullAdd(g, a[i], b[i], c)
	}
	return sum, c
}

// rippleSub returns a-b as a len(a)-bit difference plus a "no borrow"
// flag (1 when a >= b), using two's-complement addition.
func rippleSub(g *aig.Graph, a, b word) (word, aig.Lit) {
	nb := make(word, len(b))
	for i := range b {
		nb[i] = b[i].Not()
	}
	return rippleAddCarry(g, a, nb, aig.True)
}

// rippleAddCarry is rippleAdd that returns the carry as the second
// value; split out for readability at call sites that treat the carry
// as a comparison flag.
func rippleAddCarry(g *aig.Graph, a, b word, cin aig.Lit) (word, aig.Lit) {
	return rippleAdd(g, a, b, cin)
}

// muxWord returns sel ? t : e, bitwise.
func muxWord(g *aig.Graph, sel aig.Lit, t, e word) word {
	out := make(word, len(t))
	for i := range t {
		out[i] = g.Mux(sel, t[i], e[i])
	}
	return out
}

// andWord ands every bit of w with the literal m.
func andWord(g *aig.Graph, w word, m aig.Lit) word {
	out := make(word, len(w))
	for i := range w {
		out[i] = g.And(w[i], m)
	}
	return out
}

// xorWords returns the bitwise XOR of equal-width a and b.
func xorWords(g *aig.Graph, a, b word) word {
	out := make(word, len(a))
	for i := range a {
		out[i] = g.Xor(a[i], b[i])
	}
	return out
}

// shiftLeftConst returns w << k with zero fill, same width.
func shiftLeftConst(w word, k int) word {
	out := make(word, len(w))
	for i := range out {
		if i >= k {
			out[i] = w[i-k]
		} else {
			out[i] = aig.False
		}
	}
	return out
}

// shiftRightConst returns w >> k with zero fill, same width.
func shiftRightConst(w word, k int) word {
	out := make(word, len(w))
	for i := range out {
		if i+k < len(w) {
			out[i] = w[i+k]
		} else {
			out[i] = aig.False
		}
	}
	return out
}

// barrelShift builds a logarithmic shifter: shift w by the unsigned
// amount in sh (left when left is true), zero filling.
func barrelShift(g *aig.Graph, w word, sh word, left bool) word {
	cur := append(word(nil), w...)
	for s, bit := range sh {
		k := 1 << uint(s)
		if k >= 2*len(w) {
			break
		}
		var shifted word
		if left {
			shifted = shiftLeftConst(cur, k)
		} else {
			shifted = shiftRightConst(cur, k)
		}
		cur = muxWord(g, bit, shifted, cur)
	}
	return cur
}

// geU returns the literal a >= b (unsigned).
func geU(g *aig.Graph, a, b word) aig.Lit {
	_, noBorrow := rippleSub(g, a, b)
	return noBorrow
}

// mulArray builds an array multiplier: len(a)+len(b) output bits.
func mulArray(g *aig.Graph, a, b word) word {
	width := len(a) + len(b)
	acc := constWord(g, 0, width)
	for j, bj := range b {
		pp := make(word, width)
		for i := range pp {
			pp[i] = aig.False
		}
		for i, ai := range a {
			if i+j < width {
				pp[i+j] = g.And(ai, bj)
			}
		}
		acc, _ = rippleAdd(g, acc, pp, aig.False)
	}
	return acc
}

// popcount returns the population count of w as a compact sum word.
func popcount(g *aig.Graph, w word) word {
	// Pairwise adder tree over equal-width partial counts.
	counts := make([]word, len(w))
	for i, b := range w {
		counts[i] = word{b}
	}
	for len(counts) > 1 {
		var next []word
		for i := 0; i+1 < len(counts); i += 2 {
			a, b := counts[i], counts[i+1]
			// Pad to equal width.
			for len(a) < len(b) {
				a = append(a, aig.False)
			}
			for len(b) < len(a) {
				b = append(b, aig.False)
			}
			sum, carry := rippleAdd(g, a, b, aig.False)
			next = append(next, append(sum, carry))
		}
		if len(counts)%2 == 1 {
			next = append(next, counts[len(counts)-1])
		}
		counts = next
	}
	return counts[0]
}

// priorityEncode returns a one-hot grant vector (highest index wins is
// false — lowest index wins) plus a "none" flag.
func priorityEncode(g *aig.Graph, req word) (word, aig.Lit) {
	grant := make(word, len(req))
	blocked := aig.False // any earlier request seen
	for i, r := range req {
		grant[i] = g.And(r, blocked.Not())
		blocked = g.Or(blocked, r)
	}
	return grant, blocked.Not()
}

// leadingOnePos returns the bit position (as a log2width-wide word) of
// the most significant set bit and a valid flag.
func leadingOnePos(g *aig.Graph, w word) (word, aig.Lit) {
	bits := 0
	for 1<<uint(bits) < len(w) {
		bits++
	}
	pos := constWord(g, 0, bits)
	found := aig.False
	// Scan from MSB down, latching the first hit.
	for i := len(w) - 1; i >= 0; i-- {
		isFirst := g.And(w[i], found.Not())
		idx := constWord(g, uint64(i), bits)
		pos = muxWord(g, isFirst, idx, pos)
		found = g.Or(found, w[i])
	}
	return pos, found
}
