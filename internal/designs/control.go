package designs

import (
	"math/rand"

	"edacloud/internal/aig"
)

// The eight control benchmarks. Arbiters, decoders and priority logic
// are built exactly; the irregular coding/FSM blocks (cavlc, i2c,
// mem_ctrl's glue) use seeded layered random logic, which reproduces
// the shallow, branchy, reconvergent shape of real control netlists
// while staying deterministic.

// genArbiter builds a rotating-priority (round-robin) arbiter (EPFL
// "arbiter"): n request lines plus a log2(n)-bit pointer select one
// grant using the classical double-priority-encoder scheme.
func genArbiter(scale float64) *aig.Graph {
	n := scaledWidth(256, scale, 8)
	ptrBits := 1
	for 1<<uint(ptrBits) < n {
		ptrBits++
	}
	g := aig.New("arbiter")
	req := inputWord(g, "req", n)
	ptr := inputWord(g, "ptr", ptrBits)

	// thermo[i] = (i >= ptr): a thermometer mask from the pointer.
	thermo := make(word, n)
	for i := 0; i < n; i++ {
		iw := constWord(g, uint64(i), ptrBits)
		thermo[i] = geU(g, iw, ptr)
	}
	masked := make(word, n)
	for i := range req {
		masked[i] = g.And(req[i], thermo[i])
	}
	grantHi, noneHi := priorityEncode(g, masked)
	grantLo, _ := priorityEncode(g, req)
	grant := make(word, n)
	for i := range grant {
		grant[i] = g.Or(grantHi[i], g.And(noneHi, grantLo[i]))
	}
	outputWord(g, "grant", grant)
	g.AddOutput(noneHi.Not(), "any_hi")
	return g
}

// genDec builds an n-to-2^n decoder with enable (EPFL "dec").
func genDec(scale float64) *aig.Graph {
	bits := scaledWidth(8, scale, 3)
	if bits > 10 {
		bits = 10 // 2^10 outputs is plenty; beyond that the AIG explodes
	}
	g := aig.New("dec")
	sel := inputWord(g, "a", bits)
	en := g.AddInput("en")
	outs := make(word, 1<<uint(bits))
	for v := range outs {
		terms := make([]aig.Lit, bits+1)
		for b := 0; b < bits; b++ {
			if v>>uint(b)&1 == 1 {
				terms[b] = sel[b]
			} else {
				terms[b] = sel[b].Not()
			}
		}
		terms[bits] = en
		outs[v] = g.AndN(terms)
	}
	outputWord(g, "y", outs)
	return g
}

// genPriority builds a priority encoder with valid flag (EPFL
// "priority").
func genPriority(scale float64) *aig.Graph {
	n := scaledWidth(128, scale, 8)
	g := aig.New("priority")
	req := inputWord(g, "req", n)
	grant, none := priorityEncode(g, req)
	outputWord(g, "grant", grant)
	// Also produce the encoded index, the expensive part of the EPFL
	// version.
	bits := 1
	for 1<<uint(bits) < n {
		bits++
	}
	idx := constWord(g, 0, bits)
	for i, gr := range grant {
		iw := constWord(g, uint64(i), bits)
		idx = muxWord(g, gr, iw, idx)
	}
	outputWord(g, "idx", idx)
	g.AddOutput(none.Not(), "valid")
	return g
}

// genVoter builds an n-input majority voter (EPFL "voter"): a popcount
// adder tree compared against n/2.
func genVoter(scale float64) *aig.Graph {
	n := scaledWidth(1001, scale, 9)
	if n%2 == 0 {
		n++ // odd input count gives a strict majority
	}
	g := aig.New("voter")
	in := inputWord(g, "v", n)
	count := popcount(g, in)
	threshold := constWord(g, uint64(n/2+1), len(count))
	g.AddOutput(geU(g, count, threshold), "maj")
	return g
}

// genInt2Float builds an integer-to-floating-point converter (EPFL
// "int2float"): leading-one detection, normalization shift, exponent
// arithmetic and truncation rounding.
func genInt2Float(scale float64) *aig.Graph {
	w := scaledWidth(32, scale, 8)
	manW := w / 2
	g := aig.New("int2float")
	x := inputWord(g, "x", w)
	pos, valid := leadingOnePos(g, x)
	// Normalize: shift left so the leading one reaches the top bit.
	maxSh := constWord(g, uint64(len(x)-1), len(pos))
	shAmt, _ := rippleSub(g, maxSh, pos)
	norm := barrelShift(g, x, shAmt, true)
	mant := norm[len(norm)-manW:]
	// Exponent = pos + bias.
	bias := constWord(g, uint64(1<<(len(pos)-1)-1), len(pos)+1)
	posExt := append(append(word{}, pos...), aig.False)
	exp, _ := rippleAdd(g, posExt, bias, aig.False)
	outputWord(g, "mant", andWord(g, mant, valid))
	outputWord(g, "exp", andWord(g, exp, valid))
	g.AddOutput(valid.Not(), "zero")
	return g
}

// randomLogic builds layered pseudo-random control logic: `layers`
// ranks of two-input gates drawing operands from the previous ranks
// with a locality bias, mimicking the reconvergent shallow structure
// of synthesized FSM next-state functions. Deterministic in seed.
func randomLogic(g *aig.Graph, rng *rand.Rand, inputs []aig.Lit, gates, layers int, outs int) word {
	if layers < 1 {
		layers = 1
	}
	pool := append([]aig.Lit(nil), inputs...)
	perLayer := gates / layers
	if perLayer < 1 {
		perLayer = 1
	}
	layerStart := 0
	for l := 0; l < layers; l++ {
		layerEnd := len(pool)
		for k := 0; k < perLayer; k++ {
			// Bias operand choice toward the most recent layer to
			// control depth growth.
			pick := func() aig.Lit {
				var idx int
				if rng.Intn(100) < 70 && layerEnd > layerStart {
					idx = layerStart + rng.Intn(layerEnd-layerStart)
				} else {
					idx = rng.Intn(layerEnd)
				}
				lit := pool[idx]
				if rng.Intn(2) == 0 {
					lit = lit.Not()
				}
				return lit
			}
			a, b := pick(), pick()
			var v aig.Lit
			switch rng.Intn(4) {
			case 0:
				v = g.And(a, b)
			case 1:
				v = g.Or(a, b)
			case 2:
				v = g.Xor(a, b)
			default:
				v = g.Mux(pick(), a, b)
			}
			pool = append(pool, v)
		}
		layerStart = layerEnd
	}
	// Outputs come from the last layers.
	res := make(word, outs)
	lo := len(pool) - perLayer*2
	if lo < 0 {
		lo = 0
	}
	for i := range res {
		res[i] = pool[lo+rng.Intn(len(pool)-lo)]
	}
	return res
}

// genCavlc builds CAVLC-style coding-table logic (EPFL "cavlc"):
// shallow layered random logic over a small input set.
func genCavlc(scale float64) *aig.Graph {
	g := aig.New("cavlc")
	rng := rand.New(rand.NewSource(0xCA71C))
	in := inputWord(g, "i", scaledWidth(38, scale, 10))
	outs := randomLogic(g, rng, in, scaledWidth(700, scale, 60), 6, 11)
	outputWord(g, "o", outs)
	return g
}

// genI2C builds I2C-controller next-state logic (EPFL "i2c").
func genI2C(scale float64) *aig.Graph {
	g := aig.New("i2c")
	rng := rand.New(rand.NewSource(0x12C))
	in := inputWord(g, "i", scaledWidth(147, scale, 16))
	outs := randomLogic(g, rng, in, scaledWidth(1300, scale, 100), 5, 16)
	outputWord(g, "o", outs)
	return g
}

// genMemCtrl builds a memory-controller block (EPFL "mem_ctrl"), the
// largest control benchmark: bank decoders, a request arbiter and a
// body of FSM glue logic.
func genMemCtrl(scale float64) *aig.Graph {
	g := aig.New("mem_ctrl")
	rng := rand.New(rand.NewSource(0x3E3C))

	addr := inputWord(g, "addr", scaledWidth(16, scale, 6))
	req := inputWord(g, "req", scaledWidth(16, scale, 4))
	ctl := inputWord(g, "ctl", scaledWidth(64, scale, 12))

	// Bank decoder over the low address bits.
	bankBits := 4
	if bankBits > len(addr) {
		bankBits = len(addr)
	}
	banks := make(word, 1<<uint(bankBits))
	for v := range banks {
		terms := make([]aig.Lit, bankBits)
		for b := 0; b < bankBits; b++ {
			if v>>uint(b)&1 == 1 {
				terms[b] = addr[b]
			} else {
				terms[b] = addr[b].Not()
			}
		}
		banks[v] = g.AndN(terms)
	}
	grant, _ := priorityEncode(g, req)
	// FSM glue over everything.
	all := append(append(append(word{}, banks...), grant...), ctl...)
	outs := randomLogic(g, rng, all, scaledWidth(9000, scale, 400), 8, scaledWidth(120, scale, 20))
	outputWord(g, "o", outs)
	outputWord(g, "bank", banks[:min(8, len(banks))])
	outputWord(g, "gnt", grant)
	return g
}
