package designs

import (
	"fmt"
	"sort"

	"edacloud/internal/aig"
)

// generator builds one benchmark at the given scale.
type generator func(scale float64) *aig.Graph

var benchmarks = map[string]generator{
	// Arithmetic (EPFL arithmetic suite).
	"adder":      genAdder,
	"bar":        genBar,
	"div":        genDiv,
	"hyp":        genHyp,
	"log2":       genLog2,
	"max":        genMax,
	"multiplier": genMultiplier,
	"sin":        genSin,
	"sqrt":       genSqrt,
	"square":     genSquare,
	// Control (EPFL random/control suite + OpenCores-style blocks).
	"arbiter":   genArbiter,
	"cavlc":     genCavlc,
	"dec":       genDec,
	"i2c":       genI2C,
	"int2float": genInt2Float,
	"mem_ctrl":  genMemCtrl,
	"priority":  genPriority,
	"voter":     genVoter,
}

// BenchmarkNames returns the 18 benchmark names in sorted order.
func BenchmarkNames() []string {
	names := make([]string, 0, len(benchmarks))
	for n := range benchmarks {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ArithmeticNames returns the arithmetic benchmark subset.
func ArithmeticNames() []string {
	return []string{"adder", "bar", "div", "hyp", "log2", "max", "multiplier", "sin", "sqrt", "square"}
}

// Benchmark generates the named benchmark at the given scale (1 =
// EPFL-suite-like size). The graph is swept of dead logic before
// return, so its size statistics are meaningful.
func Benchmark(name string, scale float64) (*aig.Graph, error) {
	gen, ok := benchmarks[name]
	if !ok {
		return nil, fmt.Errorf("designs: unknown benchmark %q", name)
	}
	if scale <= 0 {
		return nil, fmt.Errorf("designs: non-positive scale %g", scale)
	}
	g := gen(scale)
	swept, _ := g.Sweep()
	swept.Name = name
	return swept, nil
}

// MustBenchmark is Benchmark that panics on error.
func MustBenchmark(name string, scale float64) *aig.Graph {
	g, err := Benchmark(name, scale)
	if err != nil {
		panic(err)
	}
	return g
}

// MillionSpec names one member of the million-gate benchmark family: an
// existing generator pushed 100-1000x past its EPFL-like size.
type MillionSpec struct {
	Name  string
	Scale float64
	// ApproxAnds is the rough AND count realized at this scale, for
	// sizing reports and budget decisions; the exact count is
	// deterministic but generator-specific.
	ApproxAnds int
}

// ID returns the family member's stable identifier, e.g. "adder.x100".
func (s MillionSpec) ID() string { return fmt.Sprintf("%s.x%g", s.Name, s.Scale) }

// Build generates the member's graph.
func (s MillionSpec) Build() *aig.Graph { return MustBenchmark(s.Name, s.Scale) }

// MillionFamily returns the million-gate benchmark family in ascending
// size order, from ~141k to ~1.4M AND nodes. The members are chosen
// from generators whose size scales linearly with width and whose
// output counts stay high enough for cone partitioning to produce
// real design-level parallelism (which rules out single-output voter
// and the logarithmically scaling decoder).
func MillionFamily() []MillionSpec {
	return []MillionSpec{
		{Name: "adder", Scale: 100, ApproxAnds: 141_000},
		{Name: "priority", Scale: 100, ApproxAnds: 274_000},
		{Name: "max", Scale: 100, ApproxAnds: 307_000},
		{Name: "bar", Scale: 50, ApproxAnds: 473_000},
		{Name: "adder", Scale: 1000, ApproxAnds: 1_408_000},
	}
}
