package designs

import (
	"fmt"
	"sort"

	"edacloud/internal/aig"
)

// generator builds one benchmark at the given scale.
type generator func(scale float64) *aig.Graph

var benchmarks = map[string]generator{
	// Arithmetic (EPFL arithmetic suite).
	"adder":      genAdder,
	"bar":        genBar,
	"div":        genDiv,
	"hyp":        genHyp,
	"log2":       genLog2,
	"max":        genMax,
	"multiplier": genMultiplier,
	"sin":        genSin,
	"sqrt":       genSqrt,
	"square":     genSquare,
	// Control (EPFL random/control suite + OpenCores-style blocks).
	"arbiter":   genArbiter,
	"cavlc":     genCavlc,
	"dec":       genDec,
	"i2c":       genI2C,
	"int2float": genInt2Float,
	"mem_ctrl":  genMemCtrl,
	"priority":  genPriority,
	"voter":     genVoter,
}

// BenchmarkNames returns the 18 benchmark names in sorted order.
func BenchmarkNames() []string {
	names := make([]string, 0, len(benchmarks))
	for n := range benchmarks {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ArithmeticNames returns the arithmetic benchmark subset.
func ArithmeticNames() []string {
	return []string{"adder", "bar", "div", "hyp", "log2", "max", "multiplier", "sin", "sqrt", "square"}
}

// Benchmark generates the named benchmark at the given scale (1 =
// EPFL-suite-like size). The graph is swept of dead logic before
// return, so its size statistics are meaningful.
func Benchmark(name string, scale float64) (*aig.Graph, error) {
	gen, ok := benchmarks[name]
	if !ok {
		return nil, fmt.Errorf("designs: unknown benchmark %q", name)
	}
	if scale <= 0 {
		return nil, fmt.Errorf("designs: non-positive scale %g", scale)
	}
	g := gen(scale)
	swept, _ := g.Sweep()
	swept.Name = name
	return swept, nil
}

// MustBenchmark is Benchmark that panics on error.
func MustBenchmark(name string, scale float64) *aig.Graph {
	g, err := Benchmark(name, scale)
	if err != nil {
		panic(err)
	}
	return g
}
