package designs

import (
	"testing"

	"edacloud/internal/aig"
)

// simWords packs integer operands into 64-bit simulation words where
// every pattern lane carries the same value.
func broadcast(value uint64, width int) []uint64 {
	in := make([]uint64, width)
	for i := 0; i < width; i++ {
		if value>>uint(i)&1 == 1 {
			in[i] = ^uint64(0)
		}
	}
	return in
}

func wordValue(out []uint64, lo, n int) uint64 {
	var v uint64
	for i := 0; i < n; i++ {
		if out[lo+i]&1 == 1 {
			v |= 1 << uint(i)
		}
	}
	return v
}

func TestBenchmarkNamesCount(t *testing.T) {
	names := BenchmarkNames()
	if len(names) != 18 {
		t.Fatalf("got %d benchmarks, want 18 (paper dataset)", len(names))
	}
	if len(ArithmeticNames()) != 10 {
		t.Fatalf("want 10 arithmetic benchmarks")
	}
	for _, n := range ArithmeticNames() {
		if _, err := Benchmark(n, 0.2); err != nil {
			t.Errorf("arithmetic name %q not generatable: %v", n, err)
		}
	}
}

func TestBenchmarkErrors(t *testing.T) {
	if _, err := Benchmark("nope", 1); err == nil {
		t.Fatal("unknown name accepted")
	}
	if _, err := Benchmark("adder", 0); err == nil {
		t.Fatal("zero scale accepted")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustBenchmark did not panic")
		}
	}()
	MustBenchmark("nope", 1)
}

func TestAllBenchmarksGenerate(t *testing.T) {
	for _, name := range BenchmarkNames() {
		g, err := Benchmark(name, 0.15)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		st := g.Stats()
		if st.Ands == 0 {
			t.Errorf("%s: empty graph", name)
		}
		if st.Outputs == 0 || st.Inputs == 0 {
			t.Errorf("%s: missing I/O: %v", name, st)
		}
		if g.Name != name {
			t.Errorf("%s: graph named %q", name, g.Name)
		}
	}
}

func TestBenchmarksDeterministic(t *testing.T) {
	for _, name := range []string{"adder", "cavlc", "mem_ctrl", "voter"} {
		a := MustBenchmark(name, 0.3)
		b := MustBenchmark(name, 0.3)
		if a.NumAnds() != b.NumAnds() || a.NumInputs() != b.NumInputs() {
			t.Errorf("%s: non-deterministic generation", name)
		}
		if !aig.Equivalent(a, b, 5, 8) {
			t.Errorf("%s: regenerated graph differs functionally", name)
		}
	}
}

func TestScaleGrowsBenchmarks(t *testing.T) {
	for _, name := range []string{"adder", "multiplier", "arbiter", "voter", "mem_ctrl"} {
		small := MustBenchmark(name, 0.1)
		large := MustBenchmark(name, 0.6)
		if large.NumAnds() <= small.NumAnds() {
			t.Errorf("%s: scale 0.6 (%d ands) not larger than 0.1 (%d ands)",
				name, large.NumAnds(), small.NumAnds())
		}
	}
}

func TestAdderComputesSum(t *testing.T) {
	g := MustBenchmark("adder", 0.0625) // 8-bit
	w := g.NumInputs() / 2
	sim := aig.NewSimulator(g)
	for _, c := range [][2]uint64{{3, 5}, {255, 1}, {100, 155}, {0, 0}, {170, 85}} {
		in := append(broadcast(c[0], w), broadcast(c[1], w)...)
		out := sim.Run(in)
		got := wordValue(out, 0, w+1)
		want := (c[0] + c[1]) & (1<<uint(w+1) - 1)
		if got != want {
			t.Fatalf("adder(%d,%d) = %d, want %d", c[0], c[1], got, want)
		}
	}
}

func TestMultiplierComputesProduct(t *testing.T) {
	g := MustBenchmark("multiplier", 0.0625) // 4-bit
	w := g.NumInputs() / 2
	sim := aig.NewSimulator(g)
	for a := uint64(0); a < 1<<uint(w); a += 3 {
		for b := uint64(0); b < 1<<uint(w); b += 5 {
			in := append(broadcast(a, w), broadcast(b, w)...)
			out := sim.Run(in)
			if got := wordValue(out, 0, 2*w); got != a*b {
				t.Fatalf("mul(%d,%d) = %d, want %d", a, b, got, a*b)
			}
		}
	}
}

func TestSquareMatchesMultiplier(t *testing.T) {
	g := MustBenchmark("square", 0.0625)
	w := g.NumInputs()
	sim := aig.NewSimulator(g)
	for x := uint64(0); x < 1<<uint(w); x++ {
		out := sim.Run(broadcast(x, w))
		if got := wordValue(out, 0, 2*w); got != x*x {
			t.Fatalf("square(%d) = %d, want %d", x, got, x*x)
		}
	}
}

func TestDivComputesQuotientRemainder(t *testing.T) {
	g := MustBenchmark("div", 0.125) // w=4: 8-bit dividend, 4-bit divisor
	// inputs: n (2w bits) then d (w bits)
	w := g.NumInputs() / 3
	sim := aig.NewSimulator(g)
	for _, c := range [][2]uint64{{200, 7}, {255, 16 - 1}, {13, 3}, {9, 1}, {5, 9}} {
		n, d := c[0]&(1<<uint(2*w)-1), c[1]&(1<<uint(w)-1)
		if d == 0 {
			continue
		}
		in := append(broadcast(n, 2*w), broadcast(d, w)...)
		out := sim.Run(in)
		q := wordValue(out, 0, 2*w)
		r := wordValue(out, 2*w, w)
		if q != n/d || r != n%d {
			t.Fatalf("div(%d,%d) = q%d r%d, want q%d r%d", n, d, q, r, n/d, n%d)
		}
	}
}

func TestSqrtComputesRoot(t *testing.T) {
	g := MustBenchmark("sqrt", 0.094) // w=6
	w := g.NumInputs()
	sim := aig.NewSimulator(g)
	for x := uint64(0); x < 1<<uint(w); x++ {
		out := sim.Run(broadcast(x, w))
		got := wordValue(out, 0, (w+1)/2)
		want := isqrt(x)
		if got != want {
			t.Fatalf("sqrt(%d) = %d, want %d", x, got, want)
		}
	}
}

func isqrt(x uint64) uint64 {
	var r uint64
	for r*r <= x {
		r++
	}
	return r - 1
}

func TestMaxPicksMaximum(t *testing.T) {
	g := MustBenchmark("max", 0.0625) // 8-bit, 4 ways
	w := g.NumInputs() / 4
	sim := aig.NewSimulator(g)
	vals := []uint64{17, 250, 3, 99}
	var in []uint64
	for _, v := range vals {
		in = append(in, broadcast(v, w)...)
	}
	out := sim.Run(in)
	if got := wordValue(out, 0, w); got != 250 {
		t.Fatalf("max = %d, want 250", got)
	}
}

func TestBarShifts(t *testing.T) {
	g := MustBenchmark("bar", 0.0625) // 8-bit
	// inputs: d (w), sh (log w), left
	w := 8
	shBits := 3
	sim := aig.NewSimulator(g)
	run := func(d, sh uint64, left bool) uint64 {
		in := append(broadcast(d, w), broadcast(sh, shBits)...)
		if left {
			in = append(in, ^uint64(0))
		} else {
			in = append(in, 0)
		}
		out := sim.Run(in)
		return wordValue(out, 0, w)
	}
	if got := run(0b0000_0101, 2, true); got != 0b0001_0100 {
		t.Fatalf("left shift got %08b", got)
	}
	if got := run(0b1010_0000, 3, false); got != 0b0001_0100 {
		t.Fatalf("right shift got %08b", got)
	}
	if got := run(0xAB, 0, true); got != 0xAB {
		t.Fatalf("zero shift got %x", got)
	}
}

func TestDecoderOneHot(t *testing.T) {
	g := MustBenchmark("dec", 0.375) // 3-bit
	bits := 3
	sim := aig.NewSimulator(g)
	for v := uint64(0); v < 8; v++ {
		in := append(broadcast(v, bits), ^uint64(0)) // en=1
		out := sim.Run(in)
		for i := 0; i < 8; i++ {
			want := uint64(0)
			if uint64(i) == v {
				want = 1
			}
			if out[i]&1 != want {
				t.Fatalf("dec(%d): output %d = %d", v, i, out[i]&1)
			}
		}
		// Disabled: all zero.
		in[bits] = 0
		out = sim.Run(in)
		for i := 0; i < 8; i++ {
			if out[i]&1 != 0 {
				t.Fatalf("dec disabled: output %d set", i)
			}
		}
	}
}

func TestPriorityGrantsLowest(t *testing.T) {
	g := MustBenchmark("priority", 0.0625) // 8 requests
	n := 8
	sim := aig.NewSimulator(g)
	in := broadcast(0b0010_0100, n) // requests at 2 and 5
	out := sim.Run(in)
	for i := 0; i < n; i++ {
		want := uint64(0)
		if i == 2 {
			want = 1
		}
		if out[i]&1 != want {
			t.Fatalf("grant[%d] = %d", i, out[i]&1)
		}
	}
	// idx output should encode 2; valid should be 1.
	bits := 3
	if got := wordValue(out, n, bits); got != 2 {
		t.Fatalf("idx = %d", got)
	}
	if out[n+bits]&1 != 1 {
		t.Fatal("valid flag clear")
	}
}

func TestVoterMajority(t *testing.T) {
	g := MustBenchmark("voter", 0.009) // 9 inputs
	n := g.NumInputs()
	sim := aig.NewSimulator(g)
	// 5 of 9 set -> majority.
	out := sim.Run(broadcast(0b1_1111_0000>>0, n))
	if out[0]&1 != 1 {
		t.Fatal("majority not detected")
	}
	out = sim.Run(broadcast(0b0_0011_0001, n))
	if out[0]&1 != 0 {
		t.Fatal("minority reported as majority")
	}
	out = sim.Run(broadcast(0, n))
	if out[0]&1 != 0 {
		t.Fatal("empty vote reported as majority")
	}
}

func TestArbiterGrantsOne(t *testing.T) {
	g := MustBenchmark("arbiter", 0.03125) // 8 requests
	n := 8
	ptrBits := 3
	sim := aig.NewSimulator(g)
	run := func(req, ptr uint64) uint64 {
		in := append(broadcast(req, n), broadcast(ptr, ptrBits)...)
		out := sim.Run(in)
		return wordValue(out, 0, n)
	}
	// Requests at 1 and 6, pointer at 4: round-robin grants 6.
	if got := run(0b0100_0010, 4); got != 0b0100_0000 {
		t.Fatalf("rr grant = %08b, want request 6", got)
	}
	// Pointer at 0 grants the lowest requester.
	if got := run(0b0100_0010, 0); got != 0b0000_0010 {
		t.Fatalf("grant = %08b, want request 1", got)
	}
	// Wrap: pointer past all requests falls back to lowest.
	if got := run(0b0000_0010, 7); got != 0b0000_0010 {
		t.Fatalf("wrap grant = %08b", got)
	}
	if got := run(0, 3); got != 0 {
		t.Fatalf("no-request grant = %08b", got)
	}
}

func TestInt2FloatNormalizes(t *testing.T) {
	g := MustBenchmark("int2float", 0.25) // 8-bit
	w := 8
	sim := aig.NewSimulator(g)
	out := sim.Run(broadcast(0, w))
	zeroFlagIdx := g.NumOutputs() - 1
	if out[zeroFlagIdx]&1 != 1 {
		t.Fatal("zero input not flagged")
	}
	out = sim.Run(broadcast(1<<7, w))
	if out[zeroFlagIdx]&1 != 0 {
		t.Fatal("non-zero flagged as zero")
	}
}

func TestEvalDesignNamesAndOrdering(t *testing.T) {
	names := EvalDesignNames()
	want := []string{"dyn_node", "aes", "ibex", "jpeg", "swerv", "ariane", "coyote", "sparc_core"}
	if len(names) != len(want) {
		t.Fatalf("names = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("names[%d] = %s, want %s", i, names[i], want[i])
		}
	}
	specs := SortedEvalTargets()
	for i := 1; i < len(specs); i++ {
		if specs[i].TargetInstances <= specs[i-1].TargetInstances {
			t.Fatal("eval specs not size-ordered")
		}
	}
	if _, err := EvalInfo("nope"); err == nil {
		t.Fatal("unknown eval design accepted")
	}
	if _, err := EvalDesign("dyn_node", -1); err == nil {
		t.Fatal("negative scale accepted")
	}
}

func TestEvalDesignSizesOrdered(t *testing.T) {
	const scale = 0.02
	var prev int
	for _, name := range EvalDesignNames() {
		g := MustEvalDesign(name, scale)
		ands := g.NumAnds()
		if ands <= 0 {
			t.Fatalf("%s: empty design", name)
		}
		if ands <= prev/2 {
			t.Errorf("%s (%d ands) much smaller than predecessor (%d)", name, ands, prev)
		}
		prev = ands
	}
	// The largest must dwarf the smallest (paper: few hundred vs 200k).
	small := MustEvalDesign("dyn_node", scale).NumAnds()
	big := MustEvalDesign("sparc_core", scale).NumAnds()
	if big < 10*small {
		t.Errorf("sparc_core (%d) not >= 10x dyn_node (%d)", big, small)
	}
}

func TestEvalDesignDeterministic(t *testing.T) {
	a := MustEvalDesign("aes", 0.05)
	b := MustEvalDesign("aes", 0.05)
	if a.NumAnds() != b.NumAnds() {
		t.Fatal("eval design generation not deterministic")
	}
	if !aig.Equivalent(a, b, 11, 4) {
		t.Fatal("regenerated eval design differs functionally")
	}
}

func TestMustEvalDesignPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustEvalDesign did not panic")
		}
	}()
	MustEvalDesign("nope", 1)
}

// TestMillionFamilySpecs: the family is ordered by size, member IDs are
// unique, and the smallest member realizes its approximate AND count
// and enough output cones for design-level parallelism. The larger
// members are generator rescalings of already-tested designs, so only
// the cheapest one is built here.
func TestMillionFamilySpecs(t *testing.T) {
	fam := MillionFamily()
	if len(fam) < 4 {
		t.Fatalf("family has %d members", len(fam))
	}
	ids := map[string]bool{}
	for i, s := range fam {
		if ids[s.ID()] {
			t.Fatalf("duplicate family ID %s", s.ID())
		}
		ids[s.ID()] = true
		if i > 0 && fam[i-1].ApproxAnds >= s.ApproxAnds {
			t.Fatalf("family not ascending at %s", s.ID())
		}
	}
	g := fam[0].Build()
	ratio := float64(g.NumAnds()) / float64(fam[0].ApproxAnds)
	if ratio < 0.7 || ratio > 1.3 {
		t.Fatalf("%s realized %d ands, spec says ~%d", fam[0].ID(), g.NumAnds(), fam[0].ApproxAnds)
	}
	if cp := g.PartitionCones(96); cp.NumParts() < 100 {
		t.Fatalf("%s yields only %d partitions", fam[0].ID(), cp.NumParts())
	}
}
