package gcn

import (
	"bytes"
	"strings"
	"testing"

	"edacloud/internal/netlist"
)

func TestModelPersistenceRoundTrip(t *testing.T) {
	g := benchGraph(t, "int2float", 0.1)
	m := NewModel(tinyConfig(), netlist.FeatureDim)
	// Train briefly so weights are non-initial.
	samples := []Sample{{Name: "s", G: g, Targets: []float64{0.1, 0.2, 0.3, 0.4}}}
	if _, err := m.Train(samples); err != nil {
		t.Fatal(err)
	}
	before := m.Predict(g)

	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatalf("write: %v", err)
	}
	back, err := ReadModel(&buf)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	after := back.Predict(g)
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("prediction changed: %v vs %v", before, after)
		}
	}
	if back.Cfg != m.Cfg || back.InDim != m.InDim {
		t.Fatalf("config changed: %+v vs %+v", back.Cfg, m.Cfg)
	}
	// The loaded model must remain trainable.
	if _, err := back.Train(samples); err != nil {
		t.Fatalf("loaded model cannot train: %v", err)
	}
}

func TestModelPersistenceRejectsCorruption(t *testing.T) {
	m := NewModel(tinyConfig(), netlist.FeatureDim)
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.String()
	cases := []string{
		"",
		"not-a-model\n",
		strings.Replace(good, modelMagic, "wrong-magic", 1),
		strings.Replace(good, "config", "confg", 1),
		strings.Replace(good, "matrix W1", "matrix W9 9 9\nmatrix W1", 1),
		strings.Replace(good, "end\n", "", 1),
		good[:len(good)/2],
	}
	for i, src := range cases {
		if _, err := ReadModel(strings.NewReader(src)); err == nil {
			t.Errorf("corruption %d accepted", i)
		}
	}
}

func TestScalerPersistenceRoundTrip(t *testing.T) {
	sc := FitScaler([][]float64{{100, 50, 25, 12}, {1000, 600, 300, 150}, {10, 8, 6, 4}})
	var buf bytes.Buffer
	if err := sc.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadScaler(&buf)
	if err != nil {
		t.Fatal(err)
	}
	in := []float64{123, 60, 31, 14}
	a := sc.Transform(in)
	b := back.Transform(in)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("transform changed: %v vs %v", a, b)
		}
	}
	if _, err := ReadScaler(strings.NewReader("bogus")); err == nil {
		t.Fatal("bad scaler accepted")
	}
	if _, err := ReadScaler(strings.NewReader("scaler 4\n1 2 3")); err == nil {
		t.Fatal("truncated scaler accepted")
	}
}
