package gcn

import (
	"testing"
)

// TestPredictBatchMatchesSerialAtAnyWorkerCount: the batched forward
// fan-out must return exactly what one-at-a-time Predict calls return,
// in input order, for worker pools of 1, 2 and 8 — the determinism
// contract the DSE pruning rung depends on.
func TestPredictBatchMatchesSerialAtAnyWorkerCount(t *testing.T) {
	graphs := []*Graph{
		benchGraph(t, "adder", 0.1),
		benchGraph(t, "bar", 0.1),
		benchGraph(t, "adder", 0.2),
	}
	cfg := tinyConfig()
	cfg.Epochs = 1
	var want [][]float64
	{
		cfg.Workers = 1
		m := NewModel(cfg, graphs[0].X.Cols)
		for _, g := range graphs {
			want = append(want, m.Predict(g))
		}
	}
	for _, workers := range []int{1, 2, 8} {
		cfg.Workers = workers
		m := NewModel(cfg, graphs[0].X.Cols)
		got := m.PredictBatch(graphs)
		if len(got) != len(graphs) {
			t.Fatalf("workers=%d: %d results for %d graphs", workers, len(got), len(graphs))
		}
		for i := range got {
			if len(got[i]) != len(want[i]) {
				t.Fatalf("workers=%d graph %d: %d outputs, want %d", workers, i, len(got[i]), len(want[i]))
			}
			for j := range got[i] {
				if got[i][j] != want[i][j] {
					t.Fatalf("workers=%d graph %d output %d: %g != serial %g",
						workers, i, j, got[i][j], want[i][j])
				}
			}
		}
	}
}
