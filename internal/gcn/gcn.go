// Package gcn implements the paper's runtime prediction model (its
// Fig. 4): a Graph Convolutional Network over the star-model graph of
// a netlist (or the DAG of an AIG) that outputs the predicted runtime
// of an EDA job under 1, 2, 4 and 8 vCPUs.
//
// The architecture follows the paper exactly: K graph-convolution
// layers computing
//
//	h_v^k = ReLU( W_k * mean_{u in N(v)} h_u^{k-1} + B_k * h_v^{k-1} )
//
// (two layers, 256 and 128 hidden units by default), sum-pooling into
// a graph embedding, one fully-connected hidden layer (128 units) and
// a 4-wide linear output. Training minimizes MSE with Adam (lr=1e-4),
// 200 epochs. All of it — forward, backprop, Adam — is implemented
// here on the dense kernels of internal/mat.
package gcn

import (
	"fmt"
	"math"
	"math/rand"
	"sync"

	"edacloud/internal/ints"
	"edacloud/internal/mat"
	"edacloud/internal/netlist"
	"edacloud/internal/par"
)

// Config holds model hyperparameters. Zero values take the paper's
// settings.
type Config struct {
	Hidden1  int     // first graph-conv width; 0 = 256
	Hidden2  int     // second graph-conv width; 0 = 128
	FCHidden int     // fully-connected width; 0 = 128
	Outputs  int     // prediction width; 0 = 4 (one per vCPU config)
	LR       float64 // Adam learning rate; 0 = 1e-4
	Epochs   int     // training epochs; 0 = 200
	Seed     int64   // weight-init and shuffle seed
	// Workers bounds the worker pool for the matrix and aggregation
	// kernels; 0 = GOMAXPROCS. Results are identical for every value.
	Workers int
}

func (c Config) withDefaults() Config {
	if c.Hidden1 == 0 {
		c.Hidden1 = 256
	}
	if c.Hidden2 == 0 {
		c.Hidden2 = 128
	}
	if c.FCHidden == 0 {
		c.FCHidden = 128
	}
	if c.Outputs == 0 {
		c.Outputs = 4
	}
	if c.LR == 0 {
		c.LR = 1e-4
	}
	if c.Epochs == 0 {
		c.Epochs = 200
	}
	return c
}

// Graph is the preprocessed model input: node features plus the
// mean-aggregation structure over in-neighbors (edge directions are
// preserved, as the paper requires for DAG inputs).
type Graph struct {
	X *mat.Dense // NumNodes x FeatureDim
	// Reverse adjacency in CSR: predecessors of node v are
	// Pred[PredStart[v]:PredStart[v+1]].
	PredStart []int32
	Pred      []int32

	// Forward (successor) CSR mirror of Pred, built lazily: successors
	// of node u are succ[succStart[u]:succStart[u+1]] in ascending
	// order. It turns the backward scatter into a row-parallel gather
	// (see aggregateBack).
	succOnce  sync.Once
	succStart []int32
	succ      []int32
}

// forwardCSR returns the successor layout, building it on first use.
// Successors of each node come out in ascending order — the same order
// the edge scatter visited them — so gathers over this layout
// accumulate bit-identically to the original serial sweep.
func (g *Graph) forwardCSR() ([]int32, []int32) {
	g.succOnce.Do(func() {
		n := len(g.PredStart) - 1
		count := make([]int32, n+1)
		for v := 0; v < n; v++ {
			for _, u := range g.Pred[g.PredStart[v]:g.PredStart[v+1]] {
				count[u+1]++
			}
		}
		for i := 0; i < n; i++ {
			count[i+1] += count[i]
		}
		succ := make([]int32, len(g.Pred))
		cursor := make([]int32, n)
		for v := 0; v < n; v++ {
			for _, u := range g.Pred[g.PredStart[v]:g.PredStart[v+1]] {
				succ[count[u]+cursor[u]] = int32(v)
				cursor[u]++
			}
		}
		g.succStart, g.succ = count, succ
	})
	return g.succStart, g.succ
}

// FromStarGraph converts a netlist/AIG star-model export into model
// input form.
func FromStarGraph(g *netlist.Graph) *Graph {
	x := mat.FromRows(g.Features)
	// Reverse the successor CSR.
	n := g.NumNodes
	count := make([]int32, n+1)
	for u := 0; u < n; u++ {
		for _, v := range g.Successors(u) {
			count[v+1]++
		}
	}
	for i := 0; i < n; i++ {
		count[i+1] += count[i]
	}
	pred := make([]int32, g.NumEdges())
	cursor := make([]int32, n)
	for u := 0; u < n; u++ {
		for _, v := range g.Successors(u) {
			pred[count[v]+cursor[v]] = int32(u)
			cursor[v]++
		}
	}
	return &Graph{X: x, PredStart: count, Pred: pred}
}

// aggregate computes out[v] = mean over predecessors u of h[u]
// (zero for source nodes). Output rows are independent — each reads
// only h — so the node loop runs on the pool with results identical
// to a serial sweep.
func (g *Graph) aggregate(p *par.Pool, h, out *mat.Dense) {
	out.Zero()
	n := h.Rows
	p.For(n, aggGrain(h.Cols), func(vlo, vhi int) {
		for v := vlo; v < vhi; v++ {
			lo, hi := g.PredStart[v], g.PredStart[v+1]
			if lo == hi {
				continue
			}
			oRow := out.Row(v)
			inv := 1 / float64(hi-lo)
			for _, u := range g.Pred[lo:hi] {
				uRow := h.Row(int(u))
				for j, uv := range uRow {
					oRow[j] += uv * inv
				}
			}
		}
	})
}

// aggGrain chunks the aggregation sweep to roughly 32k element-ops.
func aggGrain(cols int) int {
	return ints.Max(1, (32<<10)/ints.Max(cols, 1))
}

// aggregateBack propagates gradients through the aggregation: for each
// edge u->v, dH[u] += dAgg[v]/indeg(v). The edge-wise scatter writes
// through shared dH rows, so instead of scattering it gathers over the
// forward (successor) CSR: each dH row reads only its successors'
// dAgg rows, making the node loop row-parallel. Successors come out in
// the same ascending order the serial scatter visited them, so the
// accumulation is bit-identical at any worker count.
func (g *Graph) aggregateBack(p *par.Pool, dAgg, dH *mat.Dense) {
	succStart, succ := g.forwardCSR()
	p.For(dH.Rows, aggGrain(dAgg.Cols), func(ulo, uhi int) {
		for u := ulo; u < uhi; u++ {
			lo, hi := succStart[u], succStart[u+1]
			if lo == hi {
				continue
			}
			uRow := dH.Row(u)
			for _, v := range succ[lo:hi] {
				inv := 1 / float64(g.PredStart[v+1]-g.PredStart[v])
				aRow := dAgg.Row(int(v))
				for j, av := range aRow {
					uRow[j] += av * inv
				}
			}
		}
	})
}

// Model is the trained predictor.
type Model struct {
	Cfg   Config
	InDim int

	// Graph-conv layer k: W aggregated term, B self term.
	W1, B1 *mat.Dense
	W2, B2 *mat.Dense
	// Fully connected head.
	FW, FBias *mat.Dense
	OW, OBias *mat.Dense

	adam *adamState
	pool *par.Pool
}

// NewModel initializes a model for the given input feature width.
func NewModel(cfg Config, inDim int) *Model {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	m := &Model{
		Cfg:   cfg,
		InDim: inDim,
		W1:    mat.New(inDim, cfg.Hidden1),
		B1:    mat.New(inDim, cfg.Hidden1),
		W2:    mat.New(cfg.Hidden1, cfg.Hidden2),
		B2:    mat.New(cfg.Hidden1, cfg.Hidden2),
		// The fully-connected head consumes the pooled embedding plus
		// one explicit log-size feature (see forward).
		FW:    mat.New(cfg.Hidden2+1, cfg.FCHidden),
		FBias: mat.New(1, cfg.FCHidden),
		OW:    mat.New(cfg.FCHidden, cfg.Outputs),
		OBias: mat.New(1, cfg.Outputs),
	}
	for _, w := range []*mat.Dense{m.W1, m.B1, m.W2, m.B2, m.FW, m.OW} {
		w.Glorot(rng)
	}
	m.adam = newAdamState(m.params())
	m.pool = par.Fixed(cfg.Workers)
	return m
}

func (m *Model) params() []*mat.Dense {
	return []*mat.Dense{m.W1, m.B1, m.W2, m.B2, m.FW, m.FBias, m.OW, m.OBias}
}

// forwardState caches activations for backprop.
type forwardState struct {
	g        *Graph
	agg1, h1 *mat.Dense
	mask1    *mat.Dense
	agg2, h2 *mat.Dense
	mask2    *mat.Dense
	pooled   *mat.Dense
	fc       *mat.Dense
	fcMask   *mat.Dense
	out      *mat.Dense
}

// forward runs the network on one graph.
func (m *Model) forward(g *Graph) *forwardState {
	st := &forwardState{g: g}
	n := g.X.Rows

	st.agg1 = mat.New(n, m.InDim)
	g.aggregate(m.pool, g.X, st.agg1)
	st.h1 = mat.MulPool(m.pool, st.agg1, m.W1, nil)
	selfTerm := mat.MulPool(m.pool, g.X, m.B1, nil)
	mat.AddInPlace(st.h1, selfTerm)
	st.mask1 = mat.ReLU(st.h1)

	st.agg2 = mat.New(n, m.Cfg.Hidden1)
	g.aggregate(m.pool, st.h1, st.agg2)
	st.h2 = mat.MulPool(m.pool, st.agg2, m.W2, nil)
	selfTerm2 := mat.MulPool(m.pool, st.h1, m.B2, nil)
	mat.AddInPlace(st.h2, selfTerm2)
	st.mask2 = mat.ReLU(st.h2)

	// Pooling over nodes builds the graph embedding. The embedding is
	// normalized by node count (mean pooling keeps activations in a
	// stable range across designs whose sizes span decades) and
	// augmented with an explicit log-node-count feature, which is what
	// lets the head extrapolate runtime to unseen design sizes.
	pooledSum := mat.SumRows(st.h2)
	pooledSum.Scale(1 / float64(ints.Max(n, 1)))
	st.pooled = mat.New(1, m.Cfg.Hidden2+1)
	copy(st.pooled.Data, pooledSum.Data)
	st.pooled.Data[m.Cfg.Hidden2] = math.Log1p(float64(n))

	st.fc = mat.MulPool(m.pool, st.pooled, m.FW, nil)
	mat.AddInPlace(st.fc, m.FBias)
	st.fcMask = mat.ReLU(st.fc)

	st.out = mat.MulPool(m.pool, st.fc, m.OW, nil)
	mat.AddInPlace(st.out, m.OBias)
	return st
}

// Predict returns the raw (normalized-space) model outputs for a graph.
func (m *Model) Predict(g *Graph) []float64 {
	st := m.forward(g)
	out := make([]float64, m.Cfg.Outputs)
	copy(out, st.out.Data)
	return out
}

// grads mirrors params().
type grads struct {
	dW1, dB1, dW2, dB2, dFW, dFBias, dOW, dOBias *mat.Dense
}

func (m *Model) newGrads() *grads {
	return &grads{
		dW1: mat.New(m.W1.Rows, m.W1.Cols), dB1: mat.New(m.B1.Rows, m.B1.Cols),
		dW2: mat.New(m.W2.Rows, m.W2.Cols), dB2: mat.New(m.B2.Rows, m.B2.Cols),
		dFW: mat.New(m.FW.Rows, m.FW.Cols), dFBias: mat.New(1, m.FBias.Cols),
		dOW: mat.New(m.OW.Rows, m.OW.Cols), dOBias: mat.New(1, m.OBias.Cols),
	}
}

func (g *grads) list() []*mat.Dense {
	return []*mat.Dense{g.dW1, g.dB1, g.dW2, g.dB2, g.dFW, g.dFBias, g.dOW, g.dOBias}
}

// backward accumulates gradients of the squared-error loss for one
// sample into gr and returns the sample loss.
func (m *Model) backward(st *forwardState, target []float64, gr *grads) float64 {
	// dOut = 2*(pred - target)/outputs.
	k := float64(m.Cfg.Outputs)
	dOut := mat.New(1, m.Cfg.Outputs)
	var loss float64
	for j := 0; j < m.Cfg.Outputs; j++ {
		diff := st.out.Data[j] - target[j]
		loss += diff * diff / k
		dOut.Data[j] = 2 * diff / k
	}

	// Output layer.
	mat.AddInPlace(gr.dOBias, dOut)
	mat.AddInPlace(gr.dOW, mat.MulATBPool(m.pool, st.fc, dOut, nil))
	dFC := mat.MulABTPool(m.pool, dOut, m.OW, nil)
	mat.MulElem(dFC, st.fcMask)

	// FC layer.
	mat.AddInPlace(gr.dFBias, dFC)
	mat.AddInPlace(gr.dFW, mat.MulATBPool(m.pool, st.pooled, dFC, nil))
	dPooled := mat.MulABTPool(m.pool, dFC, m.FW, nil)

	// Pooling broadcast: every node row receives the embedding part of
	// dPooled scaled by 1/n (the size feature is an input, not
	// backpropagated).
	n := st.h2.Rows
	dH2 := mat.New(n, m.Cfg.Hidden2)
	inv := 1 / float64(ints.Max(n, 1))
	for i := 0; i < n; i++ {
		row := dH2.Row(i)
		for j := 0; j < m.Cfg.Hidden2; j++ {
			row[j] = dPooled.Data[j] * inv
		}
	}
	mat.MulElem(dH2, st.mask2)

	// Layer 2: h2 = agg2*W2 + h1*B2.
	mat.AddInPlace(gr.dW2, mat.MulATBPool(m.pool, st.agg2, dH2, nil))
	mat.AddInPlace(gr.dB2, mat.MulATBPool(m.pool, st.h1, dH2, nil))
	dAgg2 := mat.MulABTPool(m.pool, dH2, m.W2, nil)
	dH1 := mat.MulABTPool(m.pool, dH2, m.B2, nil)
	st.g.aggregateBack(m.pool, dAgg2, dH1)
	mat.MulElem(dH1, st.mask1)

	// Layer 1: h1 = agg1*W1 + X*B1.
	mat.AddInPlace(gr.dW1, mat.MulATBPool(m.pool, st.agg1, dH1, nil))
	mat.AddInPlace(gr.dB1, mat.MulATBPool(m.pool, st.g.X, dH1, nil))
	// No gradient past the input features.
	return loss
}

// Sample pairs a graph with its normalized target vector.
type Sample struct {
	Name    string
	G       *Graph
	Targets []float64
}

// TrainStats reports a training run.
type TrainStats struct {
	Epochs    int
	FinalLoss float64
	LossCurve []float64
}

// Train fits the model to the samples with per-sample (stochastic)
// Adam updates, shuffling each epoch.
func (m *Model) Train(samples []Sample) (TrainStats, error) {
	if len(samples) == 0 {
		return TrainStats{}, fmt.Errorf("gcn: no training samples")
	}
	for _, s := range samples {
		if len(s.Targets) != m.Cfg.Outputs {
			return TrainStats{}, fmt.Errorf("gcn: sample %q has %d targets, model wants %d",
				s.Name, len(s.Targets), m.Cfg.Outputs)
		}
		if s.G.X.Cols != m.InDim {
			return TrainStats{}, fmt.Errorf("gcn: sample %q feature width %d, model wants %d",
				s.Name, s.G.X.Cols, m.InDim)
		}
	}
	rng := rand.New(rand.NewSource(m.Cfg.Seed + 7))
	order := make([]int, len(samples))
	for i := range order {
		order[i] = i
	}
	stats := TrainStats{Epochs: m.Cfg.Epochs}
	for epoch := 0; epoch < m.Cfg.Epochs; epoch++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		var epochLoss float64
		for _, idx := range order {
			s := samples[idx]
			st := m.forward(s.G)
			gr := m.newGrads()
			epochLoss += m.backward(st, s.Targets, gr)
			m.adam.step(m.params(), gr.list(), m.Cfg.LR)
		}
		epochLoss /= float64(len(samples))
		stats.LossCurve = append(stats.LossCurve, epochLoss)
		stats.FinalLoss = epochLoss
	}
	return stats, nil
}

// Loss returns the mean squared error of the model on a sample set.
func (m *Model) Loss(samples []Sample) float64 {
	if len(samples) == 0 {
		return 0
	}
	var total float64
	for _, s := range samples {
		pred := m.Predict(s.G)
		for j, p := range pred {
			d := p - s.Targets[j]
			total += d * d / float64(len(pred))
		}
	}
	return total / float64(len(samples))
}

// adamState implements the Adam optimizer.
type adamState struct {
	t   int
	mom []*mat.Dense
	vel []*mat.Dense
}

func newAdamState(params []*mat.Dense) *adamState {
	st := &adamState{}
	for _, p := range params {
		st.mom = append(st.mom, mat.New(p.Rows, p.Cols))
		st.vel = append(st.vel, mat.New(p.Rows, p.Cols))
	}
	return st
}

const (
	adamBeta1 = 0.9
	adamBeta2 = 0.999
	adamEps   = 1e-8
)

func (a *adamState) step(params, grads []*mat.Dense, lr float64) {
	a.t++
	bc1 := 1 - math.Pow(adamBeta1, float64(a.t))
	bc2 := 1 - math.Pow(adamBeta2, float64(a.t))
	for i, p := range params {
		g := grads[i]
		mo := a.mom[i]
		ve := a.vel[i]
		for k := range p.Data {
			gv := g.Data[k]
			mo.Data[k] = adamBeta1*mo.Data[k] + (1-adamBeta1)*gv
			ve.Data[k] = adamBeta2*ve.Data[k] + (1-adamBeta2)*gv*gv
			mHat := mo.Data[k] / bc1
			vHat := ve.Data[k] / bc2
			p.Data[k] -= lr * mHat / (math.Sqrt(vHat) + adamEps)
		}
	}
}

// TargetScaler normalizes runtimes into log-space z-scores per output,
// the stabilization the predictor trains in; Invert maps predictions
// back to seconds.
type TargetScaler struct {
	Mean, Std []float64
}

// FitScaler computes per-output statistics over log1p(runtimes).
func FitScaler(targets [][]float64) *TargetScaler {
	if len(targets) == 0 {
		return &TargetScaler{}
	}
	k := len(targets[0])
	sc := &TargetScaler{Mean: make([]float64, k), Std: make([]float64, k)}
	for _, t := range targets {
		for j, v := range t {
			sc.Mean[j] += math.Log1p(v)
		}
	}
	for j := range sc.Mean {
		sc.Mean[j] /= float64(len(targets))
	}
	for _, t := range targets {
		for j, v := range t {
			d := math.Log1p(v) - sc.Mean[j]
			sc.Std[j] += d * d
		}
	}
	for j := range sc.Std {
		sc.Std[j] = math.Sqrt(sc.Std[j] / float64(len(targets)))
		if sc.Std[j] < 1e-9 {
			sc.Std[j] = 1
		}
	}
	return sc
}

// Transform maps runtimes (seconds) to normalized space.
func (sc *TargetScaler) Transform(t []float64) []float64 {
	out := make([]float64, len(t))
	for j, v := range t {
		out[j] = (math.Log1p(v) - sc.Mean[j]) / sc.Std[j]
	}
	return out
}

// Invert maps normalized predictions back to seconds, clamping at
// zero (a runtime cannot be negative however wrong the model is).
func (sc *TargetScaler) Invert(z []float64) []float64 {
	out := make([]float64, len(z))
	for j, v := range z {
		out[j] = math.Expm1(v*sc.Std[j] + sc.Mean[j])
		if out[j] < 0 {
			out[j] = 0
		}
	}
	return out
}
