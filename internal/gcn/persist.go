package gcn

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"edacloud/internal/mat"
)

// Model persistence: training the predictor costs minutes of flow runs
// and epochs, so deployments train once and ship the weights. The
// format is a line-oriented text container (exact float64 round-trip
// via strconv 'g' with full precision).

const modelMagic = "edacloud-gcn-v1"

// Save serializes the model's configuration, scaler-independent
// weights and Adam-free state.
func (m *Model) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, modelMagic)
	fmt.Fprintf(bw, "config %d %d %d %d %d %s %d %d\n",
		m.Cfg.Hidden1, m.Cfg.Hidden2, m.Cfg.FCHidden, m.Cfg.Outputs,
		m.Cfg.Epochs, strconv.FormatFloat(m.Cfg.LR, 'g', -1, 64), m.Cfg.Seed, m.InDim)
	names := []string{"W1", "B1", "W2", "B2", "FW", "FBias", "OW", "OBias"}
	for i, p := range m.params() {
		if err := writeMatrix(bw, names[i], p); err != nil {
			return err
		}
	}
	fmt.Fprintln(bw, "end")
	return bw.Flush()
}

func writeMatrix(w io.Writer, name string, d *mat.Dense) error {
	if _, err := fmt.Fprintf(w, "matrix %s %d %d\n", name, d.Rows, d.Cols); err != nil {
		return err
	}
	for i := 0; i < d.Rows; i++ {
		row := d.Row(i)
		parts := make([]string, len(row))
		for j, v := range row {
			parts[j] = strconv.FormatFloat(v, 'g', -1, 64)
		}
		if _, err := fmt.Fprintln(w, strings.Join(parts, " ")); err != nil {
			return err
		}
	}
	return nil
}

// ReadModel parses a model written by Save. The returned model is
// ready for Predict and for further Train calls (optimizer state
// restarts fresh).
func ReadModel(r io.Reader) (*Model, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 64*1024*1024)
	return ReadModelFrom(sc)
}

// ReadModelFrom parses a model section from an existing scanner,
// consuming exactly the lines Save produced — the container format
// used by core's predictor bundles.
func ReadModelFrom(sc *bufio.Scanner) (*Model, error) {
	if !sc.Scan() || sc.Text() != modelMagic {
		return nil, fmt.Errorf("gcn: not a %s stream", modelMagic)
	}
	if !sc.Scan() {
		return nil, fmt.Errorf("gcn: missing config line")
	}
	f := strings.Fields(sc.Text())
	if len(f) != 9 || f[0] != "config" {
		return nil, fmt.Errorf("gcn: bad config line %q", sc.Text())
	}
	ints := make([]int, 5)
	for i := 0; i < 5; i++ {
		v, err := strconv.Atoi(f[1+i])
		if err != nil {
			return nil, fmt.Errorf("gcn: bad config field %q", f[1+i])
		}
		ints[i] = v
	}
	lr, err := strconv.ParseFloat(f[6], 64)
	if err != nil {
		return nil, fmt.Errorf("gcn: bad learning rate %q", f[6])
	}
	seed, err := strconv.ParseInt(f[7], 10, 64)
	if err != nil {
		return nil, fmt.Errorf("gcn: bad seed %q", f[7])
	}
	inDim, err := strconv.Atoi(f[8])
	if err != nil {
		return nil, fmt.Errorf("gcn: bad input dim %q", f[8])
	}
	cfg := Config{
		Hidden1: ints[0], Hidden2: ints[1], FCHidden: ints[2],
		Outputs: ints[3], Epochs: ints[4], LR: lr, Seed: seed,
	}
	m := NewModel(cfg, inDim)

	for _, want := range m.params() {
		name, d, err := readMatrix(sc)
		if err != nil {
			return nil, err
		}
		if d.Rows != want.Rows || d.Cols != want.Cols {
			return nil, fmt.Errorf("gcn: matrix %s is %dx%d, want %dx%d",
				name, d.Rows, d.Cols, want.Rows, want.Cols)
		}
		copy(want.Data, d.Data)
	}
	if !sc.Scan() || sc.Text() != "end" {
		return nil, fmt.Errorf("gcn: missing end marker")
	}
	return m, nil
}

func readMatrix(sc *bufio.Scanner) (string, *mat.Dense, error) {
	if !sc.Scan() {
		return "", nil, fmt.Errorf("gcn: unexpected end of stream")
	}
	f := strings.Fields(sc.Text())
	if len(f) != 4 || f[0] != "matrix" {
		return "", nil, fmt.Errorf("gcn: bad matrix header %q", sc.Text())
	}
	rows, err1 := strconv.Atoi(f[2])
	cols, err2 := strconv.Atoi(f[3])
	if err1 != nil || err2 != nil || rows < 0 || cols < 0 {
		return "", nil, fmt.Errorf("gcn: bad matrix shape %q", sc.Text())
	}
	d := mat.New(rows, cols)
	for i := 0; i < rows; i++ {
		if !sc.Scan() {
			return "", nil, fmt.Errorf("gcn: matrix %s truncated", f[1])
		}
		vals := strings.Fields(sc.Text())
		if len(vals) != cols {
			return "", nil, fmt.Errorf("gcn: matrix %s row %d has %d values, want %d",
				f[1], i, len(vals), cols)
		}
		row := d.Row(i)
		for j, v := range vals {
			x, err := strconv.ParseFloat(v, 64)
			if err != nil {
				return "", nil, fmt.Errorf("gcn: matrix %s bad value %q", f[1], v)
			}
			row[j] = x
		}
	}
	return f[1], d, nil
}

// Save serializes a scaler (means then stds).
func (sc *TargetScaler) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "scaler %d\n", len(sc.Mean))
	for _, row := range [][]float64{sc.Mean, sc.Std} {
		parts := make([]string, len(row))
		for i, v := range row {
			parts[i] = strconv.FormatFloat(v, 'g', -1, 64)
		}
		fmt.Fprintln(bw, strings.Join(parts, " "))
	}
	return bw.Flush()
}

// ReadScaler parses a scaler written by TargetScaler.Save.
func ReadScaler(r io.Reader) (*TargetScaler, error) {
	sc := bufio.NewScanner(r)
	return ReadScalerFrom(sc)
}

// ReadScalerFrom parses a scaler section from an existing scanner.
func ReadScalerFrom(sc *bufio.Scanner) (*TargetScaler, error) {
	if !sc.Scan() {
		return nil, fmt.Errorf("gcn: empty scaler stream")
	}
	f := strings.Fields(sc.Text())
	if len(f) != 2 || f[0] != "scaler" {
		return nil, fmt.Errorf("gcn: bad scaler header %q", sc.Text())
	}
	n, err := strconv.Atoi(f[1])
	if err != nil || n < 0 {
		return nil, fmt.Errorf("gcn: bad scaler width %q", f[1])
	}
	out := &TargetScaler{}
	for _, dst := range []*[]float64{&out.Mean, &out.Std} {
		if !sc.Scan() {
			return nil, fmt.Errorf("gcn: scaler truncated")
		}
		vals := strings.Fields(sc.Text())
		if len(vals) != n {
			return nil, fmt.Errorf("gcn: scaler row has %d values, want %d", len(vals), n)
		}
		row := make([]float64, n)
		for i, v := range vals {
			x, err := strconv.ParseFloat(v, 64)
			if err != nil {
				return nil, fmt.Errorf("gcn: bad scaler value %q", v)
			}
			row[i] = x
		}
		*dst = row
	}
	return out, nil
}
