package gcn

import "edacloud/internal/par"

// PredictBatch runs Predict over many graphs, fanning the forward
// passes out across the model's worker pool. Each forward pass
// allocates its own activation state and only reads the (frozen)
// weights, so concurrent passes share nothing mutable; results come
// back in input order and are bit-identical to serial Predict calls
// for any worker count — the property the DSE cheap-pruning rung
// leans on.
func (m *Model) PredictBatch(graphs []*Graph) [][]float64 {
	return par.Map(m.pool, len(graphs), func(i int) []float64 {
		return m.Predict(graphs[i])
	})
}
