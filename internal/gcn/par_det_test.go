package gcn

import (
	"math/rand"
	"testing"

	"edacloud/internal/mat"
	"edacloud/internal/par"
)

// randomDAGGraph builds a synthetic layered DAG sample large enough to
// push the matrix kernels over their parallel thresholds.
func randomDAGGraph(rng *rand.Rand, nodes, inDim int) *Graph {
	x := mat.New(nodes, inDim)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	predStart := make([]int32, nodes+1)
	var pred []int32
	for v := 0; v < nodes; v++ {
		predStart[v] = int32(len(pred))
		deg := rng.Intn(3)
		for e := 0; e < deg && v > 0; e++ {
			pred = append(pred, int32(rng.Intn(v)))
		}
	}
	predStart[nodes] = int32(len(pred))
	return &Graph{X: x, PredStart: predStart, Pred: pred}
}

// TestAggregateBackForwardCSRDeterministic: the row-parallel gather
// over the forward (successor) CSR must be bit-identical to the
// original edge-wise serial scatter, at 1, 2 and 8 workers.
func TestAggregateBackForwardCSRDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	const nodes, cols = 700, 24
	g := randomDAGGraph(rng, nodes, 4)
	dAgg := mat.New(nodes, cols)
	for i := range dAgg.Data {
		dAgg.Data[i] = rng.NormFloat64()
	}
	seed := mat.New(nodes, cols)
	for i := range seed.Data {
		seed.Data[i] = rng.NormFloat64()
	}

	// Reference: the pre-refactor scatter — for each edge u->v,
	// dH[u] += dAgg[v]/indeg(v), nodes swept in v order.
	want := mat.New(nodes, cols)
	copy(want.Data, seed.Data)
	for v := 0; v < nodes; v++ {
		lo, hi := g.PredStart[v], g.PredStart[v+1]
		if lo == hi {
			continue
		}
		inv := 1 / float64(hi-lo)
		aRow := dAgg.Row(v)
		for _, u := range g.Pred[lo:hi] {
			uRow := want.Row(int(u))
			for j, av := range aRow {
				uRow[j] += av * inv
			}
		}
	}

	for _, w := range []int{1, 2, 8} {
		got := mat.New(nodes, cols)
		copy(got.Data, seed.Data)
		g.aggregateBack(par.Fixed(w), dAgg, got)
		for i := range want.Data {
			if got.Data[i] != want.Data[i] {
				t.Fatalf("workers=%d: element %d = %x, want %x", w, i, got.Data[i], want.Data[i])
			}
		}
	}
}

// TestTrainDeterministicAcrossWorkers: training loss and learned
// weights must be bit-identical at 1, 2 and 8 workers — the pooled
// matmuls and aggregation never reassociate a row's accumulation.
func TestTrainDeterministicAcrossWorkers(t *testing.T) {
	const inDim = 12
	run := func(workers int) (float64, []float64, []float64) {
		rng := rand.New(rand.NewSource(99))
		var samples []Sample
		for s := 0; s < 4; s++ {
			samples = append(samples, Sample{
				Name:    "g",
				G:       randomDAGGraph(rng, 400+100*s, inDim),
				Targets: []float64{rng.Float64(), rng.Float64(), rng.Float64(), rng.Float64()},
			})
		}
		m := NewModel(Config{Hidden1: 64, Hidden2: 32, FCHidden: 16, Epochs: 4, LR: 1e-3, Seed: 3, Workers: workers}, inDim)
		stats, err := m.Train(samples)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return stats.FinalLoss, append([]float64(nil), m.W1.Data...), append([]float64(nil), m.OW.Data...)
	}
	wantLoss, wantW1, wantOW := run(1)
	for _, w := range []int{2, 8} {
		loss, w1, ow := run(w)
		if loss != wantLoss {
			t.Fatalf("workers=%d: final loss %x, want %x", w, loss, wantLoss)
		}
		for i := range wantW1 {
			if w1[i] != wantW1[i] {
				t.Fatalf("workers=%d: W1[%d] differs", w, i)
			}
		}
		for i := range wantOW {
			if ow[i] != wantOW[i] {
				t.Fatalf("workers=%d: OW[%d] differs", w, i)
			}
		}
	}
}
