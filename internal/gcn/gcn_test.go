package gcn

import (
	"math"
	"testing"

	"edacloud/internal/designs"
	"edacloud/internal/mat"
	"edacloud/internal/netlist"
	"edacloud/internal/synth"
	"edacloud/internal/techlib"
)

var lib = techlib.Default14nm()

func tinyConfig() Config {
	return Config{Hidden1: 16, Hidden2: 8, FCHidden: 8, Outputs: 4, LR: 3e-3, Epochs: 60, Seed: 1}
}

func benchGraph(t *testing.T, name string, scale float64) *Graph {
	t.Helper()
	g := designs.MustBenchmark(name, scale)
	res, err := synth.Synthesize(g, lib, synth.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return FromStarGraph(res.Netlist.StarGraph())
}

func TestFromStarGraphReversesEdges(t *testing.T) {
	// Build a 3-node chain by hand: 0 -> 1 -> 2.
	sg := &netlist.Graph{
		NumNodes: 3,
		Start:    []int32{0, 1, 2, 2},
		Succ:     []int32{1, 2},
		Features: [][]float64{{1, 0}, {0, 1}, {1, 1}},
	}
	g := FromStarGraph(sg)
	if g.X.Rows != 3 || g.X.Cols != 2 {
		t.Fatalf("features %dx%d", g.X.Rows, g.X.Cols)
	}
	// Node 0 has no predecessors; node 1 has {0}; node 2 has {1}.
	if g.PredStart[1]-g.PredStart[0] != 0 {
		t.Fatal("node 0 should have no predecessors")
	}
	if g.Pred[g.PredStart[1]] != 0 || g.Pred[g.PredStart[2]] != 1 {
		t.Fatalf("predecessors wrong: %v / %v", g.Pred, g.PredStart)
	}
}

func TestAggregateMean(t *testing.T) {
	sg := &netlist.Graph{
		NumNodes: 3,
		Start:    []int32{0, 1, 2, 2},
		Succ:     []int32{2, 2}, // 0->2, 1->2
		Features: [][]float64{{2}, {4}, {0}},
	}
	g := FromStarGraph(sg)
	out := mat.New(3, 1)
	g.aggregate(nil, g.X, out)
	if out.At(2, 0) != 3 { // mean of 2 and 4
		t.Fatalf("aggregate = %g, want 3", out.At(2, 0))
	}
	if out.At(0, 0) != 0 || out.At(1, 0) != 0 {
		t.Fatal("source nodes should aggregate zero")
	}
}

func TestAggregateBackScattersEvenly(t *testing.T) {
	sg := &netlist.Graph{
		NumNodes: 3,
		Start:    []int32{0, 1, 2, 2},
		Succ:     []int32{2, 2},
		Features: [][]float64{{0}, {0}, {0}},
	}
	g := FromStarGraph(sg)
	dAgg := mat.FromRows([][]float64{{0}, {0}, {6}})
	dH := mat.New(3, 1)
	g.aggregateBack(nil, dAgg, dH)
	if dH.At(0, 0) != 3 || dH.At(1, 0) != 3 {
		t.Fatalf("backward scatter wrong: %v", dH.Data)
	}
}

// Numerical gradient check on a tiny model and graph.
func TestGradientsMatchNumerical(t *testing.T) {
	cfg := Config{Hidden1: 4, Hidden2: 3, FCHidden: 3, Outputs: 2, LR: 1e-3, Epochs: 1, Seed: 5}
	sg := &netlist.Graph{
		NumNodes: 4,
		Start:    []int32{0, 2, 3, 4, 4},
		Succ:     []int32{1, 2, 3, 3},
		Features: [][]float64{{1, 0.5}, {0.2, -1}, {-0.4, 0.8}, {0.9, 0.1}},
	}
	g := FromStarGraph(sg)
	m := NewModel(cfg, 2)
	target := []float64{0.3, -0.7}

	lossAt := func() float64 {
		st := m.forward(g)
		var l float64
		for j, v := range st.out.Data {
			d := v - target[j]
			l += d * d / float64(len(target))
		}
		return l
	}

	gr := m.newGrads()
	st := m.forward(g)
	m.backward(st, target, gr)

	check := func(name string, p, dp *mat.Dense) {
		const eps = 1e-6
		for _, idx := range []int{0, len(p.Data) / 2, len(p.Data) - 1} {
			orig := p.Data[idx]
			p.Data[idx] = orig + eps
			up := lossAt()
			p.Data[idx] = orig - eps
			down := lossAt()
			p.Data[idx] = orig
			num := (up - down) / (2 * eps)
			got := dp.Data[idx]
			if math.Abs(num-got) > 1e-4*(1+math.Abs(num)) {
				t.Errorf("%s[%d]: analytic %g vs numeric %g", name, idx, got, num)
			}
		}
	}
	check("W1", m.W1, gr.dW1)
	check("B1", m.B1, gr.dB1)
	check("W2", m.W2, gr.dW2)
	check("B2", m.B2, gr.dB2)
	check("FW", m.FW, gr.dFW)
	check("FBias", m.FBias, gr.dFBias)
	check("OW", m.OW, gr.dOW)
	check("OBias", m.OBias, gr.dOBias)
}

func TestTrainingReducesLoss(t *testing.T) {
	names := []string{"adder", "priority", "int2float", "cavlc", "dec"}
	var samples []Sample
	for i, n := range names {
		g := benchGraph(t, n, 0.1)
		// Synthetic but structured targets: a function of graph size.
		size := float64(g.X.Rows)
		samples = append(samples, Sample{
			Name: n,
			G:    g,
			Targets: []float64{
				size / 100, size / 150, size / 220, size / 300,
			},
		})
		_ = i
	}
	m := NewModel(tinyConfig(), netlist.FeatureDim)
	before := m.Loss(samples)
	stats, err := m.Train(samples)
	if err != nil {
		t.Fatal(err)
	}
	after := m.Loss(samples)
	if after >= before {
		t.Fatalf("training did not reduce loss: %g -> %g", before, after)
	}
	if stats.FinalLoss > stats.LossCurve[0] {
		t.Fatalf("loss curve rising: %v", stats.LossCurve[:3])
	}
	if len(stats.LossCurve) != tinyConfig().Epochs {
		t.Fatalf("epochs = %d", len(stats.LossCurve))
	}
}

func TestTrainValidation(t *testing.T) {
	m := NewModel(tinyConfig(), netlist.FeatureDim)
	if _, err := m.Train(nil); err == nil {
		t.Fatal("empty training set accepted")
	}
	g := benchGraph(t, "dec", 0.1)
	if _, err := m.Train([]Sample{{G: g, Targets: []float64{1}}}); err == nil {
		t.Fatal("wrong target width accepted")
	}
	bad := &Graph{X: mat.New(3, 2), PredStart: make([]int32, 4)}
	if _, err := m.Train([]Sample{{G: bad, Targets: []float64{1, 2, 3, 4}}}); err == nil {
		t.Fatal("wrong feature width accepted")
	}
}

func TestPredictDeterministic(t *testing.T) {
	g := benchGraph(t, "priority", 0.1)
	m := NewModel(tinyConfig(), netlist.FeatureDim)
	a := m.Predict(g)
	b := m.Predict(g)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("prediction not deterministic")
		}
	}
	if len(a) != 4 {
		t.Fatalf("got %d outputs", len(a))
	}
}

func TestTargetScalerRoundTrip(t *testing.T) {
	targets := [][]float64{
		{100, 80, 60, 50},
		{2000, 1500, 900, 700},
		{10, 9, 8, 7},
	}
	sc := FitScaler(targets)
	for _, tg := range targets {
		back := sc.Invert(sc.Transform(tg))
		for j := range tg {
			if math.Abs(back[j]-tg[j]) > 1e-6*tg[j] {
				t.Fatalf("round trip %v -> %v", tg, back)
			}
		}
	}
	// Normalized values must be z-scored: mean near 0 across samples.
	var mean float64
	for _, tg := range targets {
		mean += sc.Transform(tg)[0]
	}
	if math.Abs(mean/3) > 1e-9 {
		t.Fatalf("normalized mean %g", mean/3)
	}
	if FitScaler(nil).Mean != nil {
		t.Fatal("empty scaler should have no stats")
	}
}

func TestConfigDefaultsArePaperValues(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Hidden1 != 256 || c.Hidden2 != 128 || c.FCHidden != 128 {
		t.Fatalf("defaults %+v not the paper's architecture", c)
	}
	if c.Outputs != 4 || c.LR != 1e-4 || c.Epochs != 200 {
		t.Fatalf("defaults %+v not the paper's training recipe", c)
	}
}

func TestModelLearnsSizeSignal(t *testing.T) {
	// Train on graphs of different sizes with size-proportional
	// targets; the model must rank a large unseen graph above a small
	// one (the core premise of the paper's predictor).
	train := []string{"adder", "dec", "cavlc", "int2float", "bar", "sin"}
	var samples []Sample
	var targets [][]float64
	for _, n := range train {
		g := benchGraph(t, n, 0.12)
		size := float64(g.X.Rows)
		targets = append(targets, []float64{size, size / 2, size / 3.5, size / 5})
		samples = append(samples, Sample{Name: n, G: g})
	}
	sc := FitScaler(targets)
	for i := range samples {
		samples[i].Targets = sc.Transform(targets[i])
	}
	cfg := tinyConfig()
	cfg.Epochs = 150
	m := NewModel(cfg, netlist.FeatureDim)
	if _, err := m.Train(samples); err != nil {
		t.Fatal(err)
	}
	small := benchGraph(t, "priority", 0.08)
	big := benchGraph(t, "mem_ctrl", 0.15)
	ps := sc.Invert(m.Predict(small))
	pb := sc.Invert(m.Predict(big))
	if pb[0] <= ps[0] {
		t.Fatalf("model did not learn size: big=%g small=%g", pb[0], ps[0])
	}
}
