package route

import (
	"testing"

	"edacloud/internal/designs"
	"edacloud/internal/netlist"
	"edacloud/internal/par"
	"edacloud/internal/perf"
	"edacloud/internal/place"
	"edacloud/internal/synth"
	"edacloud/internal/techlib"
)

var lib = techlib.Default14nm()

func placedBench(t *testing.T, name string, scale float64) (*netlist.Netlist, *place.Placement) {
	t.Helper()
	g := designs.MustBenchmark(name, scale)
	res, err := synth.Synthesize(g, lib, synth.Options{})
	if err != nil {
		t.Fatalf("synth %s: %v", name, err)
	}
	pl, _, err := place.Place(res.Netlist, place.Options{})
	if err != nil {
		t.Fatalf("place %s: %v", name, err)
	}
	return res.Netlist, pl
}

func TestRouteBasic(t *testing.T) {
	nl, pl := placedBench(t, "int2float", 0.25)
	res, report, err := Route(nl, pl, Options{})
	if err != nil {
		t.Fatalf("route: %v", err)
	}
	if res.Connections == 0 {
		t.Fatal("no connections built")
	}
	if res.Wirelength <= 0 {
		t.Fatal("no wire routed")
	}
	if res.FailedConnections != 0 {
		t.Fatalf("%d connections failed", res.FailedConnections)
	}
	if report == nil || len(report.Phases) != 3 {
		t.Fatalf("report = %+v", report)
	}
	if res.TileLocalFraction < 0 || res.TileLocalFraction > 1 {
		t.Fatalf("tile-local fraction %g out of range", res.TileLocalFraction)
	}
}

func TestRouteRejectsBadInput(t *testing.T) {
	nl := netlist.New("empty", lib)
	if _, _, err := Route(nl, &place.Placement{}, Options{}); err == nil {
		t.Fatal("empty netlist accepted")
	}
	nl2, pl := placedBench(t, "priority", 0.1)
	bad := &place.Placement{X: pl.X[:1], Y: pl.Y[:1], DieW: pl.DieW, DieH: pl.DieH, RowHeight: pl.RowHeight}
	if _, _, err := Route(nl2, bad, Options{}); err == nil {
		t.Fatal("mismatched placement accepted")
	}
}

func TestRouteWirelengthLowerBound(t *testing.T) {
	// Routed length can never be below the Manhattan distance sum.
	nl, pl := placedBench(t, "priority", 0.2)
	opts := Options{}.withDefaults(pl.RowHeight)
	opts.TileSize = 4
	g := &grid{w: int(pl.DieW/opts.GCell) + 2, h: int(pl.DieH/opts.GCell) + 2, cap: 16}
	if g.w < 2 {
		g.w = 2
	}
	if g.h < 2 {
		g.h = 2
	}
	conns := buildConnections(nl, pl, g, opts)
	manhattan := 0
	for _, c := range conns {
		dx := int(c.sx) - int(c.tx)
		if dx < 0 {
			dx = -dx
		}
		dy := int(c.sy) - int(c.ty)
		if dy < 0 {
			dy = -dy
		}
		manhattan += dx + dy
	}
	res, _, err := Route(nl, pl, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Wirelength < manhattan {
		t.Fatalf("wirelength %d below Manhattan bound %d", res.Wirelength, manhattan)
	}
}

func TestRouteParallelMatchesConnectivity(t *testing.T) {
	nl, pl := placedBench(t, "cavlc", 0.3)
	serial, _, err := Route(nl, pl, Options{StageConfig: par.StageConfig{Workers: 1}})
	if err != nil {
		t.Fatal(err)
	}
	par, _, err := Route(nl, pl, Options{StageConfig: par.StageConfig{Workers: 8}})
	if err != nil {
		t.Fatal(err)
	}
	// Tile-clamped parallel routing may detour differently but must
	// route the same connections without failures.
	if par.Connections != serial.Connections {
		t.Fatalf("connection counts differ: %d vs %d", par.Connections, serial.Connections)
	}
	if par.FailedConnections != 0 {
		t.Fatalf("parallel run failed %d connections", par.FailedConnections)
	}
	if par.Wirelength <= 0 {
		t.Fatal("parallel run routed nothing")
	}
}

func TestRouteCongestionNegotiation(t *testing.T) {
	// A tiny capacity forces overflow and rip-up iterations.
	nl, pl := placedBench(t, "int2float", 0.25)
	res, _, err := Route(nl, pl, Options{Capacity: 1, MaxIters: 6})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations == 0 {
		t.Fatal("capacity-1 routing needed no negotiation; suspicious")
	}
	// A generous capacity should converge with zero overflow.
	res2, _, err := Route(nl, pl, Options{Capacity: 64})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Overflow != 0 {
		t.Fatalf("overflow %d with generous capacity", res2.Overflow)
	}
}

func TestRouteProfileShape(t *testing.T) {
	nl, pl := placedBench(t, "cavlc", 0.4)
	probe := perf.NewProbe(perf.DefaultProbeConfig())
	_, report, err := Route(nl, pl, Options{StageConfig: par.StageConfig{Probe: probe}})
	if err != nil {
		t.Fatal(err)
	}
	total := report.Total()
	if total.Branches == 0 {
		t.Fatal("router recorded no branches")
	}
	// Routing is integer work: no meaningful vector FP.
	if total.FPVector > total.Instrs/100 {
		t.Fatalf("router FP share too high: %d of %d", total.FPVector, total.Instrs)
	}
	// Branch misses must be present (data-dependent search).
	if total.BranchMisses == 0 {
		t.Fatal("no branch misses in maze search")
	}
}

func TestRouteDeterministicWhenSerial(t *testing.T) {
	nl, pl := placedBench(t, "priority", 0.2)
	a, _, err := Route(nl, pl, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := Route(nl, pl, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if a.Wirelength != b.Wirelength || a.Overflow != b.Overflow || a.Iterations != b.Iterations {
		t.Fatalf("serial routing not deterministic: %+v vs %+v", a, b)
	}
}

func TestGridEdgeIndexingDisjoint(t *testing.T) {
	g := &grid{w: 7, h: 5, cap: 1}
	seen := map[int32]bool{}
	for y := 0; y < g.h; y++ {
		for x := 0; x < g.w-1; x++ {
			e := g.hEdge(x, y)
			if seen[e] {
				t.Fatalf("duplicate h edge %d", e)
			}
			seen[e] = true
		}
	}
	for x := 0; x < g.w; x++ {
		for y := 0; y < g.h-1; y++ {
			e := g.vEdge(x, y)
			if seen[e] {
				t.Fatalf("v edge %d collides", e)
			}
			seen[e] = true
		}
	}
	if len(seen) != g.numEdges() {
		t.Fatalf("edge count %d != numEdges %d", len(seen), g.numEdges())
	}
}

func TestTileBoundsDisjointEdges(t *testing.T) {
	g := &grid{w: 33, h: 33, cap: 1}
	// Edges reachable inside a window never collide across tiles.
	edgeOwner := map[int32]int32{}
	tilesPerRow := int32(g.w/8 + 1)
	for ty := int32(0); ty < int32(g.h/8+1); ty++ {
		for tx := int32(0); tx < tilesPerRow; tx++ {
			id := ty*tilesPerRow + tx
			b := tileBounds(g, id, 8)
			for y := b[1]; y < b[3]; y++ {
				for x := b[0]; x < b[2]-1; x++ {
					e := g.hEdge(x, y)
					if owner, ok := edgeOwner[e]; ok && owner != id {
						t.Fatalf("h edge %d owned by tiles %d and %d", e, owner, id)
					}
					edgeOwner[e] = id
				}
			}
			for x := b[0]; x < b[2]; x++ {
				for y := b[1]; y < b[3]-1; y++ {
					e := g.vEdge(x, y)
					if owner, ok := edgeOwner[e]; ok && owner != id {
						t.Fatalf("v edge %d owned by tiles %d and %d", e, owner, id)
					}
					edgeOwner[e] = id
				}
			}
		}
	}
}

func TestLargerDesignHasMoreBusyTiles(t *testing.T) {
	nlSmall, plSmall := placedBench(t, "priority", 0.15)
	small, _, err := Route(nlSmall, plSmall, Options{})
	if err != nil {
		t.Fatal(err)
	}
	nlBig, plBig := placedBench(t, "mem_ctrl", 0.25)
	big, _, err := Route(nlBig, plBig, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if big.BusyTiles <= small.BusyTiles {
		t.Fatalf("bigger design has %d busy tiles vs %d — Fig. 3 scaling premise broken",
			big.BusyTiles, small.BusyTiles)
	}
}

// Property: after routing, per-edge usage equals the number of
// connection paths crossing the edge (flow conservation of the
// negotiated-congestion bookkeeping).
func TestUsageConservation(t *testing.T) {
	nl, pl := placedBench(t, "cavlc", 0.3)
	opts := Options{}.withDefaults(pl.RowHeight)
	opts.TileSize = 4
	g := &grid{w: int(pl.DieW/opts.GCell) + 2, h: int(pl.DieH/opts.GCell) + 2, cap: 1 << 20}
	if g.w < 2 {
		g.w = 2
	}
	if g.h < 2 {
		g.h = 2
	}
	g.usage = make([]int32, g.numEdges())
	g.history = make([]float64, g.numEdges())
	conns := buildConnections(nl, pl, g, opts)
	for i := range conns {
		routeConnection(g, &conns[i], nil)
	}
	counted := make([]int32, g.numEdges())
	total := 0
	for i := range conns {
		for _, e := range conns[i].path {
			counted[e]++
			total++
		}
	}
	for e := range counted {
		if counted[e] != g.usage[e] {
			t.Fatalf("edge %d: counted %d, usage %d", e, counted[e], g.usage[e])
		}
	}
	// Unrouting everything must restore a clean grid.
	for i := range conns {
		g.unroute(&conns[i])
	}
	for e, u := range g.usage {
		if u != 0 {
			t.Fatalf("edge %d usage %d after full unroute", e, u)
		}
	}
	if total == 0 {
		t.Fatal("no paths routed")
	}
}
