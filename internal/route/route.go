// Package route is the global routing engine: a grid-graph router
// using A* maze search under a negotiated-congestion cost scheme
// (PathFinder-style history costs with rip-up-and-reroute iterations).
//
// Routing is the paper's best-scaling EDA job (Fig. 2d, Fig. 3): nets
// confined to disjoint grid tiles route concurrently with no shared
// state. The engine reproduces that structure — connections are
// scheduled by tile, tile-local work runs on parallel workers (when
// uninstrumented) and the tile statistics feed the machine model's
// parallelism profile, which is what caps small-design speedup in
// Fig. 3. Its data-dependent search branches (frontier comparisons,
// design-rule/capacity checks, rip-up decisions) are also the source of
// routing's elevated branch-miss rate in Fig. 2a.
package route

import (
	"container/heap"
	"fmt"
	"math"
	"sort"

	"edacloud/internal/ints"
	"edacloud/internal/netlist"
	"edacloud/internal/par"
	"edacloud/internal/perf"
	"edacloud/internal/place"
)

// Options configures Route.
type Options struct {
	// GCell is the routing grid cell edge in um; 0 means one row height.
	GCell float64
	// Capacity is the routing track capacity per grid edge; 0 derives it
	// from the gcell width at a 90nm wire pitch.
	Capacity int
	// MaxIters bounds rip-up-and-reroute rounds; 0 means 8.
	MaxIters int
	// TileSize is the parallel-scheduling tile edge in gcells; 0 means 8.
	TileSize int
	// HistoryCost scales the congestion history increment; 0 means 1.5.
	HistoryCost float64
	// StageConfig supplies the shared execution knobs. Unlike the other
	// engines, Workers here sets real goroutine parallelism for
	// tile-local routing and is only honored when Probe is nil (the
	// performance simulation is single-threaded); 0 means 1. Probe
	// receives performance events; nil runs uninstrumented.
	par.StageConfig
}

func (o Options) withDefaults(rowHeight float64) Options {
	if o.GCell == 0 {
		o.GCell = 0.5 * rowHeight
	}
	if o.Capacity == 0 {
		// Marker: calibrate from wire demand once connections exist.
		o.Capacity = capacityFromDemand
	}
	if o.MaxIters == 0 {
		o.MaxIters = 8
	}
	if o.Workers == 0 {
		o.Workers = 1
	}
	if o.HistoryCost == 0 {
		o.HistoryCost = 1.5
	}
	return o
}

// Result summarizes a routing run.
type Result struct {
	GridW, GridH int
	// Wirelength is the total routed length in grid edges.
	Wirelength int
	// Overflow is the number of edge-capacity violations remaining.
	Overflow int
	// Iterations is the number of rip-up-and-reroute rounds executed.
	Iterations int
	// Connections is the number of two-pin connections routed.
	Connections int
	// TileLocalFraction is the fraction of connections whose bounding
	// box fits inside one scheduling tile (the parallelizable part).
	TileLocalFraction float64
	// BusyTiles is the number of distinct tiles owning local work (the
	// concurrency limit for the machine model).
	BusyTiles int
	// FailedConnections counts connections with unreachable endpoints
	// (should be zero on sane grids).
	FailedConnections int
}

// connection is one two-pin route: driver gcell to sink gcell.
type connection struct {
	net    netlist.NetID
	sx, sy int16
	tx, ty int16
	tile   int32 // owning tile, -1 when the bbox crosses tiles
	path   []int32
	order  int32
}

// grid is the shared routing fabric state.
type grid struct {
	w, h    int
	cap     int
	usage   []int32   // per edge
	history []float64 // per edge
}

// Edge indexing: horizontal edge (x,y)->(x+1,y) occupies index
// y*(w-1)+x; vertical edge (x,y)->(x,y+1) occupies hBase + x*(h-1)+y.
func (g *grid) hEdge(x, y int) int32 { return int32(y*(g.w-1) + x) }
func (g *grid) vEdge(x, y int) int32 {
	return int32((g.h)*(g.w-1) + x*(g.h-1) + y)
}
func (g *grid) numEdges() int { return g.h*(g.w-1) + g.w*(g.h-1) }

// Hot-window probe regions. The router's resident set (the grid slice
// under search plus the frontier heap) is bounded, but every search
// also touches freshly allocated visited/parent state — compulsory
// misses that no cache size absorbs, which is why routing's miss rate
// stays flat across VM sizes in the paper's Fig. 2b.
const (
	rgGrid = 0 // edge usage/history records
	rgHeap = 1 // frontier heap nodes
)

// Branch sites.
const (
	brNeighborImprove = uint64(0x21)
	brCapacityCheck   = uint64(0x22)
	brRipupDecision   = uint64(0x23)
	brGoalCheck       = uint64(0x24)
)

// capacityFromDemand is the sentinel Options.Capacity value requesting
// demand-calibrated track capacity.
const capacityFromDemand = -1

func absInt16(v int16) int {
	if v < 0 {
		return int(-v)
	}
	return int(v)
}

// Route globally routes the placed netlist. The report carries two
// phases: the initial parallel routing pass and the rip-up-and-reroute
// negotiation rounds.
func Route(nl *netlist.Netlist, pl *place.Placement, opts Options) (*Result, *perf.Report, error) {
	if nl.NumCells() == 0 {
		return nil, nil, fmt.Errorf("route: empty netlist")
	}
	if len(pl.X) != nl.NumCells() {
		return nil, nil, fmt.Errorf("route: placement has %d cells, netlist %d", len(pl.X), nl.NumCells())
	}
	opts = opts.withDefaults(pl.RowHeight)
	probe := opts.Probe
	report := &perf.Report{Job: "routing"}

	g := &grid{
		w:   int(pl.DieW/opts.GCell) + 2,
		h:   int(pl.DieH/opts.GCell) + 2,
		cap: opts.Capacity,
	}
	if g.w < 2 {
		g.w = 2
	}
	if g.h < 2 {
		g.h = 2
	}
	g.usage = make([]int32, g.numEdges())
	g.history = make([]float64, g.numEdges())
	if opts.TileSize == 0 {
		// A fixed region size (in gcells) is what makes small designs
		// saturate in the paper's Fig. 3: a small die simply does not
		// contain many independent routing regions.
		opts.TileSize = 8
	}

	conns := buildConnections(nl, pl, g, opts)
	if opts.Capacity == capacityFromDemand {
		// Calibrate track capacity to the design's wire demand, as a
		// floorplanner sizing routing resources would: mildly above the
		// average per-edge load, so congestion concentrates in genuine
		// hotspots instead of saturating the whole fabric.
		manhattan := 0
		for i := range conns {
			manhattan += absInt16(conns[i].sx-conns[i].tx) + absInt16(conns[i].sy-conns[i].ty)
		}
		g.cap = int(1.6*float64(manhattan)/float64(g.numEdges())) + 8
	}
	res := &Result{GridW: g.w, GridH: g.h, Connections: len(conns)}

	// Tile statistics drive both the real worker scheduling and the
	// machine model's parallelism profile.
	tiles := map[int32][]*connection{}
	var crossTile []*connection
	for i := range conns {
		c := &conns[i]
		if c.tile >= 0 {
			tiles[c.tile] = append(tiles[c.tile], c)
		} else {
			crossTile = append(crossTile, c)
		}
	}
	res.BusyTiles = len(tiles)
	if len(conns) > 0 {
		res.TileLocalFraction = 1 - float64(len(crossTile))/float64(len(conns))
	}

	// Initial routing pass: tile-local connections first (parallel),
	// then cross-tile connections (serialized negotiation).
	if probe == nil && opts.Workers > 1 {
		routeTilesParallel(g, tiles, opts)
	} else {
		tileIDs := make([]int32, 0, len(tiles))
		for id := range tiles {
			tileIDs = append(tileIDs, id)
		}
		sort.Slice(tileIDs, func(i, j int) bool { return tileIDs[i] < tileIDs[j] })
		for _, id := range tileIDs {
			for _, c := range tiles[id] {
				routeConnection(g, c, probe)
			}
		}
	}
	for _, c := range crossTile {
		routeConnection(g, c, probe)
	}
	pf := 0.88 + 0.11*res.TileLocalFraction
	report.AddPhase(probe.TakePhase("route-initial", pf, ints.Max(res.BusyTiles, 1)))

	// Negotiated congestion: raise history on overused edges, rip up
	// offenders, reroute.
	iters := 0
	for ; iters < opts.MaxIters; iters++ {
		overused := g.overusedEdges()
		if len(overused) == 0 {
			break
		}
		for _, e := range overused {
			g.history[e] += opts.HistoryCost
			probe.StoreHot(rgGrid, uint64(e))
		}
		bad := map[int32]bool{}
		for _, e := range overused {
			bad[e] = true
		}
		var rip []*connection
		for i := range conns {
			c := &conns[i]
			hit := false
			for _, e := range c.path {
				probe.LoadHot(rgGrid, uint64(e))
				probe.LoopBranches(2)
				if bad[e] {
					hit = true
					break
				}
			}
			probe.Branch(brRipupDecision, hit)
			if hit {
				rip = append(rip, c)
			}
		}
		for _, c := range rip {
			g.unroute(c)
		}
		for _, c := range rip {
			routeConnection(g, c, probe)
		}
	}
	res.Iterations = iters
	// Rip-up rounds stay region-parallel but synchronize on the shared
	// congestion history between rounds; scaling is somewhat poorer
	// than the initial pass.
	report.AddPhase(probe.TakePhase("rip-up-reroute", 0.60+0.35*res.TileLocalFraction, ints.Max(res.BusyTiles/2, 1)))

	// Refinement: with congestion negotiated, reroute every connection
	// once against the final cost landscape (the wire/timing cleanup
	// pass of production routers). Tile-local work again runs fully
	// parallel.
	for i := range conns {
		g.unroute(&conns[i])
	}
	if probe == nil && opts.Workers > 1 {
		routeTilesParallel(g, tiles, opts)
		for _, c := range crossTile {
			routeConnection(g, c, probe)
		}
	} else {
		tileIDs := make([]int32, 0, len(tiles))
		for id := range tiles {
			tileIDs = append(tileIDs, id)
		}
		sort.Slice(tileIDs, func(i, j int) bool { return tileIDs[i] < tileIDs[j] })
		for _, id := range tileIDs {
			for _, c := range tiles[id] {
				routeConnection(g, c, probe)
			}
		}
		for _, c := range crossTile {
			routeConnection(g, c, probe)
		}
	}
	report.AddPhase(probe.TakePhase("refine", pf, ints.Max(res.BusyTiles, 1)))

	for i := range conns {
		if conns[i].path == nil && !(conns[i].sx == conns[i].tx && conns[i].sy == conns[i].ty) {
			res.FailedConnections++
		}
		res.Wirelength += len(conns[i].path)
	}
	res.Overflow = len(g.overusedEdges())
	return res, report, nil
}

// buildConnections decomposes every net into driver-to-sink two-pin
// connections with tile assignment.
func buildConnections(nl *netlist.Netlist, pl *place.Placement, g *grid, opts Options) []connection {
	gcellOf := func(x, y float64) (int16, int16) {
		gx := int16(x / opts.GCell)
		gy := int16(y / opts.GCell)
		if int(gx) >= g.w {
			gx = int16(g.w - 1)
		}
		if int(gy) >= g.h {
			gy = int16(g.h - 1)
		}
		return gx, gy
	}
	tileOf := func(sx, sy, tx, ty int16) int32 {
		ts := int16(opts.TileSize)
		t0x, t0y := sx/ts, sy/ts
		t1x, t1y := tx/ts, ty/ts
		if t0x != t1x || t0y != t1y {
			return -1
		}
		tilesPerRow := int32(g.w/opts.TileSize + 1)
		return int32(t0y)*tilesPerRow + int32(t0x)
	}

	type pt struct{ x, y int16 }
	var conns []connection
	for id := range nl.Nets {
		net := &nl.Nets[id]
		var root pt
		switch {
		case net.Driver != netlist.NoCell:
			root.x, root.y = gcellOf(pl.X[net.Driver], pl.Y[net.Driver])
		case net.DriverPI >= 0:
			root.x, root.y = gcellOf(pl.PIx[net.DriverPI], pl.PIy[net.DriverPI])
		default:
			continue
		}
		var sinks []pt
		for _, s := range net.Sinks {
			x, y := gcellOf(pl.X[s.Cell], pl.Y[s.Cell])
			sinks = append(sinks, pt{x, y})
		}
		for _, po := range net.POs {
			x, y := gcellOf(pl.POx[po], pl.POy[po])
			sinks = append(sinks, pt{x, y})
		}
		// Prim-style topology: attach each remaining sink to its
		// nearest already-connected terminal, approximating the Steiner
		// tree a real global router builds instead of a driver star.
		tree := []pt{root}
		for len(sinks) > 0 {
			bestS, bestT, bestD := -1, -1, 1<<30
			for si, s := range sinks {
				for ti, t := range tree {
					d := absInt16(s.x-t.x) + absInt16(s.y-t.y)
					if d < bestD {
						bestD, bestS, bestT = d, si, ti
					}
				}
			}
			s, t := sinks[bestS], tree[bestT]
			sinks = append(sinks[:bestS], sinks[bestS+1:]...)
			tree = append(tree, s)
			if s == t {
				continue // same gcell: no global routing needed
			}
			conns = append(conns, connection{
				net: netlist.NetID(id),
				sx:  t.x, sy: t.y, tx: s.x, ty: s.y,
				tile:  tileOf(t.x, t.y, s.x, s.y),
				order: int32(len(conns)),
			})
		}
	}
	return conns
}

// routeTilesParallel routes tile-local connection groups on the shared
// par worker pool (sized to opts.Workers). Tile-local paths can leave
// their tile only through A* detours; to keep workers disjoint we
// clamp the search to the tile's bounding box (one gcell margin),
// which is also what keeps their grid state writes race-free.
func routeTilesParallel(g *grid, tiles map[int32][]*connection, opts Options) {
	ids := make([]int32, 0, len(tiles))
	for id := range tiles {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	par.Fixed(opts.Workers).For(len(ids), 1, func(lo, hi int) {
		for _, id := range ids[lo:hi] {
			for _, c := range tiles[id] {
				routeConnectionBounded(g, c, nil, tileBounds(g, id, opts.TileSize))
			}
		}
	})
}

// tileBounds returns the search window of a tile id. Windows of
// distinct tiles touch disjoint edge sets (the window-boundary edge is
// never used by the bounded search), which is what makes concurrent
// tile routing race-free.
func tileBounds(g *grid, id int32, tileSize int) [4]int {
	tilesPerRow := int32(g.w/tileSize + 1)
	tx := int(id % tilesPerRow)
	ty := int(id / tilesPerRow)
	x0 := tx * tileSize
	y0 := ty * tileSize
	x1 := (tx + 1) * tileSize
	y1 := (ty + 1) * tileSize
	if x1 > g.w {
		x1 = g.w
	}
	if y1 > g.h {
		y1 = g.h
	}
	return [4]int{x0, y0, x1, y1}
}

// routeConnection routes within the whole grid.
func routeConnection(g *grid, c *connection, probe *perf.Probe) {
	routeConnectionBounded(g, c, probe, [4]int{0, 0, g.w, g.h})
}

// pqItem is an A* frontier entry.
type pqItem struct {
	cost, est float64
	x, y      int16
}

type pq []pqItem

func (q pq) Len() int            { return len(q) }
func (q pq) Less(i, j int) bool  { return q[i].est < q[j].est }
func (q pq) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *pq) Push(x interface{}) { *q = append(*q, x.(pqItem)) }
func (q *pq) Pop() interface{} {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// routeConnectionBounded is the A* maze router under the negotiated
// congestion cost function, restricted to a window.
func routeConnectionBounded(g *grid, c *connection, probe *perf.Probe, win [4]int) {
	x0, y0, x1, y1 := win[0], win[1], win[2], win[3]
	w := x1 - x0
	h := y1 - y0
	if w <= 0 || h <= 0 {
		return
	}
	inWin := func(x, y int16) bool {
		return int(x) >= x0 && int(x) < x1 && int(y) >= y0 && int(y) < y1
	}
	if !inWin(c.sx, c.sy) || !inWin(c.tx, c.ty) {
		// Endpoints outside the window (tile clamp too small): fall
		// back to the full grid.
		if x0 != 0 || y0 != 0 || x1 != g.w || y1 != g.h {
			routeConnectionBounded(g, c, probe, [4]int{0, 0, g.w, g.h})
		}
		return
	}

	idx := func(x, y int16) int32 { return int32((int(y)-y0)*w + (int(x) - x0)) }
	dist := make([]float64, w*h)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	from := make([]int32, w*h)
	for i := range from {
		from[i] = -1
	}

	edgeCost := func(e int32) float64 {
		probe.LoadHot(rgGrid, uint64(e))
		u := g.usage[e]
		over := u >= int32(g.cap)
		probe.Branch(brCapacityCheck, over)
		cost := 1.0 + g.history[e]
		if over {
			cost += 4 * float64(u-int32(g.cap)+1)
		}
		return cost
	}
	heuristic := func(x, y int16) float64 {
		dx := float64(x - c.tx)
		dy := float64(y - c.ty)
		return math.Abs(dx) + math.Abs(dy)
	}

	frontier := &pq{{cost: 0, est: heuristic(c.sx, c.sy), x: c.sx, y: c.sy}}
	dist[idx(c.sx, c.sy)] = 0
	found := false
	for frontier.Len() > 0 {
		it := heap.Pop(frontier).(pqItem)
		probe.LoadHot(rgHeap, uint64(frontier.Len()))
		// Freshly touched visited/parent entries: compulsory misses.
		probe.LoadCold(2)
		// Per-node bookkeeping of a production 3D router: layer
		// assignment, via costing and design-rule legality per visit.
		probe.Ops(140)
		probe.LoopBranches(9)
		goal := it.x == c.tx && it.y == c.ty
		probe.Branch(brGoalCheck, goal)
		if goal {
			found = true
			break
		}
		if it.cost > dist[idx(it.x, it.y)] {
			continue // stale entry
		}
		type nb struct {
			x, y int16
			e    int32
		}
		var nbs [4]nb
		n := 0
		if int(it.x) > x0 {
			nbs[n] = nb{it.x - 1, it.y, g.hEdge(int(it.x)-1, int(it.y))}
			n++
		}
		if int(it.x) < x1-1 {
			nbs[n] = nb{it.x + 1, it.y, g.hEdge(int(it.x), int(it.y))}
			n++
		}
		if int(it.y) > y0 {
			nbs[n] = nb{it.x, it.y - 1, g.vEdge(int(it.x), int(it.y)-1)}
			n++
		}
		if int(it.y) < y1-1 {
			nbs[n] = nb{it.x, it.y + 1, g.vEdge(int(it.x), int(it.y))}
			n++
		}
		for k := 0; k < n; k++ {
			nbk := nbs[k]
			cand := it.cost + edgeCost(nbk.e)
			di := idx(nbk.x, nbk.y)
			better := cand < dist[di]
			probe.Branch(brNeighborImprove, better)
			if !better {
				continue
			}
			dist[di] = cand
			from[di] = idx(it.x, it.y)
			heap.Push(frontier, pqItem{cost: cand, est: cand + heuristic(nbk.x, nbk.y), x: nbk.x, y: nbk.y})
			probe.StoreHot(rgHeap, uint64(frontier.Len()))
		}
	}
	if !found {
		c.path = nil
		return
	}
	// Trace back the path, collecting edges and bumping usage.
	var path []int32
	cur := idx(c.tx, c.ty)
	for from[cur] >= 0 {
		prev := from[cur]
		cx, cy := int(cur)%w+x0, int(cur)/w+y0
		px, py := int(prev)%w+x0, int(prev)/w+y0
		var e int32
		switch {
		case cx == px+1:
			e = g.hEdge(px, py)
		case cx == px-1:
			e = g.hEdge(cx, cy)
		case cy == py+1:
			e = g.vEdge(px, py)
		default:
			e = g.vEdge(cx, cy)
		}
		path = append(path, e)
		g.usage[e]++
		probe.StoreHot(rgGrid, uint64(e))
		cur = prev
	}
	c.path = path
}

// unroute removes a connection's path from the grid usage.
func (g *grid) unroute(c *connection) {
	for _, e := range c.path {
		g.usage[e]--
	}
	c.path = nil
}

// overusedEdges lists edges above capacity.
func (g *grid) overusedEdges() []int32 {
	var out []int32
	for e, u := range g.usage {
		if u > int32(g.cap) {
			out = append(out, int32(e))
		}
	}
	return out
}
