package techlib

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
)

func TestTableLookupCorners(t *testing.T) {
	tab := Table{
		Slews:  []float64{0.0, 1.0},
		Loads:  []float64{0.0, 2.0},
		Values: [][]float64{{1, 3}, {5, 7}},
	}
	cases := []struct {
		slew, load, want float64
	}{
		{0, 0, 1}, {0, 2, 3}, {1, 0, 5}, {1, 2, 7}, // corners
		{0.5, 1, 4},      // center: mean of all corners
		{-5, -5, 1},      // clamp below
		{9, 9, 7},        // clamp above
		{0, 1, 2},        // edge midpoint
		{0.5, 0, 3},      // edge midpoint
		{0.25, 0.5, 2.5}, // general bilinear: fi=0.25, fj=0.25
	}
	for _, c := range cases {
		if got := tab.Lookup(c.slew, c.load); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Lookup(%g,%g) = %g, want %g", c.slew, c.load, got, c.want)
		}
	}
}

func TestTableLookupSinglePoint(t *testing.T) {
	tab := Table{Slews: []float64{0.01}, Loads: []float64{0.004}, Values: [][]float64{{0.42}}}
	if got := tab.Lookup(5, 5); got != 0.42 {
		t.Fatalf("single-point table lookup = %g", got)
	}
}

func TestQuickLookupWithinBounds(t *testing.T) {
	lib := Default14nm()
	arc := lib.MustCell("NAND2_X1").Arcs[0]
	minV, maxV := math.Inf(1), math.Inf(-1)
	for _, row := range arc.Delay.Values {
		for _, v := range row {
			minV = math.Min(minV, v)
			maxV = math.Max(maxV, v)
		}
	}
	f := func(slew, load float64) bool {
		v := arc.Delay.Lookup(math.Abs(slew), math.Abs(load))
		return v >= minV-1e-12 && v <= maxV+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDefault14nmSanity(t *testing.T) {
	lib := Default14nm()
	if len(lib.Cells) < 20 {
		t.Fatalf("library too small: %d cells", len(lib.Cells))
	}
	for _, c := range lib.Cells {
		if c.Area <= 0 {
			t.Errorf("%s: non-positive area", c.Name)
		}
		if !c.Seq && len(c.Arcs) != len(c.Inputs) {
			t.Errorf("%s: %d arcs for %d inputs", c.Name, len(c.Arcs), len(c.Inputs))
		}
		for _, a := range c.Arcs {
			if len(a.Delay.Slews) == 0 || len(a.Delay.Loads) == 0 {
				t.Errorf("%s/%s: empty delay table", c.Name, a.From)
			}
			if a.Delay.Lookup(0.01, 0.002) <= 0 {
				t.Errorf("%s/%s: non-positive delay", c.Name, a.From)
			}
		}
	}
	if lib.Cell("NO_SUCH_CELL") != nil {
		t.Fatal("lookup of absent cell returned non-nil")
	}
}

func TestMustCellPanics(t *testing.T) {
	lib := Default14nm()
	defer func() {
		if recover() == nil {
			t.Fatal("MustCell on absent cell did not panic")
		}
	}()
	lib.MustCell("NO_SUCH_CELL")
}

func TestCellFunctions(t *testing.T) {
	lib := Default14nm()
	check := func(name string, fn func(ins uint16) bool) {
		c := lib.MustCell(name)
		rows := uint16(1) << len(c.Inputs)
		for b := uint16(0); b < rows; b++ {
			if got, want := c.Eval(b), fn(b); got != want {
				t.Errorf("%s(%0*b) = %v, want %v", name, len(c.Inputs), b, got, want)
			}
		}
	}
	check("INV_X1", func(b uint16) bool { return b&1 == 0 })
	check("BUF_X2", func(b uint16) bool { return b&1 == 1 })
	check("NAND2_X1", func(b uint16) bool { return !(b&1 == 1 && b>>1&1 == 1) })
	check("NOR2_X2", func(b uint16) bool { return b&3 == 0 })
	check("XOR2_X1", func(b uint16) bool { return (b&1)^(b>>1&1) == 1 })
	check("AND3_X1", func(b uint16) bool { return b&7 == 7 })
	check("AOI21_X1", func(b uint16) bool { return !((b&1 == 1 && b>>1&1 == 1) || b>>2&1 == 1) })
	check("OAI21_X1", func(b uint16) bool { return !((b&1 == 1 || b>>1&1 == 1) && b>>2&1 == 1) })
	check("MUX2_X1", func(b uint16) bool {
		if b>>2&1 == 1 {
			return b>>1&1 == 1
		}
		return b&1 == 1
	})
}

func TestMatchTTFindsPermutations(t *testing.T) {
	lib := Default14nm()
	// !(C & (A|B)) is OAI21 with its C pin moved: over leaves (x,y,z)
	// query the function !((y|z) & x).
	var tt uint16
	for b := 0; b < 8; b++ {
		x := b&1 == 1
		y := b>>1&1 == 1
		z := b>>2&1 == 1
		if !((y || z) && x) {
			tt |= 1 << b
		}
	}
	matches := lib.MatchTT(tt, 3)
	found := false
	for _, m := range matches {
		if m.Cell.Name != "OAI21_X1" {
			continue
		}
		found = true
		// Verify the permutation: leaf i -> cell input m.Perm[i].
		for b := uint16(0); b < 8; b++ {
			var cellIns uint16
			for leaf := 0; leaf < 3; leaf++ {
				if b>>leaf&1 == 1 {
					cellIns |= 1 << m.Perm[leaf]
				}
			}
			if m.Cell.Eval(cellIns) != (tt>>b&1 == 1) {
				t.Fatalf("permutation wrong at row %d", b)
			}
		}
	}
	if !found {
		t.Fatal("OAI21 not matched under permutation")
	}
}

func TestMatchTTInverter(t *testing.T) {
	lib := Default14nm()
	matches := lib.MatchTT(0b01, 1)
	names := map[string]bool{}
	for _, m := range matches {
		names[m.Cell.Name] = true
	}
	for _, want := range []string{"INV_X1", "INV_X2", "INV_X4"} {
		if !names[want] {
			t.Errorf("inverter match missing %s (got %v)", want, names)
		}
	}
}

func TestPermuteTTIdentityAndInverse(t *testing.T) {
	tt := uint16(0b10010110)
	id := []int{0, 1, 2}
	if got := permuteTT(tt, id, 3); got != tt {
		t.Fatalf("identity permutation changed TT: %b -> %b", tt, got)
	}
	perm := []int{2, 0, 1}
	inv := []int{1, 2, 0}
	if got := permuteTT(permuteTT(tt, perm, 3), inv, 3); got != tt {
		t.Fatalf("perm∘inv != id: %b", got)
	}
}

func TestLibertyRoundTrip(t *testing.T) {
	lib := Default14nm()
	var buf bytes.Buffer
	if err := lib.WriteLiberty(&buf); err != nil {
		t.Fatalf("WriteLiberty: %v", err)
	}
	lib2, err := ParseLiberty(&buf)
	if err != nil {
		t.Fatalf("ParseLiberty: %v", err)
	}
	if lib2.Name != lib.Name || len(lib2.Cells) != len(lib.Cells) {
		t.Fatalf("shape mismatch: %s/%d vs %s/%d", lib2.Name, len(lib2.Cells), lib.Name, len(lib.Cells))
	}
	for i, c := range lib.Cells {
		c2 := lib2.Cells[i]
		if c.Name != c2.Name || c.TT != c2.TT || c.Area != c2.Area || c.Seq != c2.Seq {
			t.Errorf("cell %s round-trip mismatch", c.Name)
		}
		if len(c.Arcs) != len(c2.Arcs) {
			t.Errorf("cell %s arcs %d vs %d", c.Name, len(c.Arcs), len(c2.Arcs))
			continue
		}
		for j := range c.Arcs {
			d1 := c.Arcs[j].Delay.Lookup(0.01, 0.005)
			d2 := c2.Arcs[j].Delay.Lookup(0.01, 0.005)
			if math.Abs(d1-d2) > 1e-12 {
				t.Errorf("cell %s arc %d delay %g vs %g", c.Name, j, d1, d2)
			}
		}
	}
	// The rebuilt matching index must work too.
	if len(lib2.MatchTT(0b01, 1)) == 0 {
		t.Fatal("round-tripped library lost matching index")
	}
}

func TestParseLibertyErrors(t *testing.T) {
	cases := []string{
		"",
		"library x\ncell c\n",               // missing end markers
		"library x\nbogus 1\nend_library\n", // unknown keyword
		"library x\ncell c\narea 1 2\nend_cell\n",                 // bad arity (and missing end_library)
		"library x\narea 5\nend_library\n",                        // attr outside cell
		"library x\ncell c\npin A 1\nend_cell\n",                  // malformed pin
		"library x\ncell c\ntt zz\nend_cell\n",                    // bad number
		"cell c\nend_cell\nend_library\n",                         // attr before library is fine? cell has no library name -> accept; use delay row outside arc instead
		"library x\ncell c\ndelay_row 1\nend_cell\nend_library\n", // table outside arc
	}
	for i, src := range cases {
		if i == 7 {
			continue // documented acceptable case above
		}
		if _, err := ParseLiberty(bytes.NewReader([]byte(src))); err == nil {
			t.Errorf("case %d: expected parse error", i)
		}
	}
}

func TestArcFrom(t *testing.T) {
	c := Default14nm().MustCell("NAND2_X1")
	if a := c.ArcFrom("A"); a == nil || a.From != "A" {
		t.Fatal("ArcFrom(A) failed")
	}
	if c.ArcFrom("Z") != nil {
		t.Fatal("ArcFrom on absent pin should be nil")
	}
	if c.InputCap(0) <= 0 {
		t.Fatal("non-positive input cap")
	}
}

func TestDriveStrengthOrdering(t *testing.T) {
	lib := Default14nm()
	// Higher drive must be faster under the same heavy load.
	d1 := lib.MustCell("INV_X1").Arcs[0].Delay.Lookup(0.01, 0.05)
	d4 := lib.MustCell("INV_X4").Arcs[0].Delay.Lookup(0.01, 0.05)
	if d4 >= d1 {
		t.Fatalf("INV_X4 (%.4g) not faster than INV_X1 (%.4g) under load", d4, d1)
	}
}
