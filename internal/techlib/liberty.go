package techlib

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteLiberty serializes the library in a compact Liberty-like text
// format. The format is a simplified dialect (one attribute per line,
// explicit end markers) that round-trips through ParseLiberty; it is not
// intended to be consumed by commercial tools.
func (lib *Library) WriteLiberty(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "library %s\n", lib.Name)
	fmt.Fprintf(bw, "  time_unit ns\n  cap_unit pF\n")
	for _, c := range lib.Cells {
		fmt.Fprintf(bw, "  cell %s\n", c.Name)
		fmt.Fprintf(bw, "    area %g\n    leakage %g\n    max_cap %g\n", c.Area, c.Leakage, c.MaxCap)
		if c.Seq {
			fmt.Fprintf(bw, "    seq true\n")
		}
		fmt.Fprintf(bw, "    tt %d\n", c.TT)
		for _, p := range c.Inputs {
			fmt.Fprintf(bw, "    pin %s cap %g\n", p.Name, p.Cap)
		}
		fmt.Fprintf(bw, "    output %s\n", c.Output)
		for _, a := range c.Arcs {
			fmt.Fprintf(bw, "    arc %s\n", a.From)
			writeTable(bw, "delay", &a.Delay)
			writeTable(bw, "slew", &a.Slew)
			fmt.Fprintf(bw, "    end_arc\n")
		}
		fmt.Fprintf(bw, "  end_cell\n")
	}
	fmt.Fprintf(bw, "end_library\n")
	return bw.Flush()
}

func writeTable(w io.Writer, kind string, t *Table) {
	fmt.Fprintf(w, "      %s_slews %s\n", kind, joinFloats(t.Slews))
	fmt.Fprintf(w, "      %s_loads %s\n", kind, joinFloats(t.Loads))
	for _, row := range t.Values {
		fmt.Fprintf(w, "      %s_row %s\n", kind, joinFloats(row))
	}
}

func joinFloats(fs []float64) string {
	parts := make([]string, len(fs))
	for i, f := range fs {
		parts[i] = strconv.FormatFloat(f, 'g', -1, 64)
	}
	return strings.Join(parts, " ")
}

func parseFloats(fields []string) ([]float64, error) {
	out := make([]float64, len(fields))
	for i, f := range fields {
		v, err := strconv.ParseFloat(f, 64)
		if err != nil {
			return nil, fmt.Errorf("techlib: bad number %q", f)
		}
		out[i] = v
	}
	return out, nil
}

// ParseLiberty reads the format produced by WriteLiberty and rebuilds
// the library, including its function-matching index.
func ParseLiberty(r io.Reader) (*Library, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 8*1024*1024)

	var libName string
	var cells []*Cell
	var cur *Cell
	var curArc *Arc

	lineNo := 0
	fail := func(msg string) error { return fmt.Errorf("techlib: line %d: %s", lineNo, msg) }

	for sc.Scan() {
		lineNo++
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		key := fields[0]
		args := fields[1:]
		switch key {
		case "library":
			if len(args) != 1 {
				return nil, fail("library needs a name")
			}
			libName = args[0]
		case "time_unit", "cap_unit":
			// Informational only in this dialect.
		case "cell":
			if len(args) != 1 {
				return nil, fail("cell needs a name")
			}
			cur = &Cell{Name: args[0]}
		case "end_cell":
			if cur == nil {
				return nil, fail("end_cell outside cell")
			}
			cells = append(cells, cur)
			cur = nil
		case "area", "leakage", "max_cap", "tt", "seq", "pin", "output", "arc", "end_arc",
			"delay_slews", "delay_loads", "delay_row", "slew_slews", "slew_loads", "slew_row":
			if cur == nil {
				return nil, fail(key + " outside cell")
			}
			if err := parseCellAttr(cur, &curArc, key, args); err != nil {
				return nil, fmt.Errorf("techlib: line %d: %w", lineNo, err)
			}
		case "end_library":
			if cur != nil {
				return nil, fail("end_library inside cell")
			}
			return NewLibrary(libName, cells), nil
		default:
			return nil, fail("unknown keyword " + key)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return nil, fmt.Errorf("techlib: missing end_library")
}

func parseCellAttr(cur *Cell, curArc **Arc, key string, args []string) error {
	num := func() (float64, error) {
		if len(args) != 1 {
			return 0, fmt.Errorf("%s needs one value", key)
		}
		return strconv.ParseFloat(args[0], 64)
	}
	switch key {
	case "area":
		v, err := num()
		if err != nil {
			return err
		}
		cur.Area = v
	case "leakage":
		v, err := num()
		if err != nil {
			return err
		}
		cur.Leakage = v
	case "max_cap":
		v, err := num()
		if err != nil {
			return err
		}
		cur.MaxCap = v
	case "tt":
		v, err := num()
		if err != nil {
			return err
		}
		cur.TT = uint16(v)
	case "seq":
		cur.Seq = len(args) == 1 && args[0] == "true"
	case "pin":
		if len(args) != 3 || args[1] != "cap" {
			return fmt.Errorf("pin wants: pin NAME cap VALUE")
		}
		c, err := strconv.ParseFloat(args[2], 64)
		if err != nil {
			return err
		}
		cur.Inputs = append(cur.Inputs, Pin{Name: args[0], Cap: c})
	case "output":
		if len(args) != 1 {
			return fmt.Errorf("output needs a name")
		}
		cur.Output = args[0]
	case "arc":
		if len(args) != 1 {
			return fmt.Errorf("arc needs a from-pin")
		}
		cur.Arcs = append(cur.Arcs, Arc{From: args[0]})
		*curArc = &cur.Arcs[len(cur.Arcs)-1]
	case "end_arc":
		*curArc = nil
	default:
		if *curArc == nil {
			return fmt.Errorf("%s outside arc", key)
		}
		vals, err := parseFloats(args)
		if err != nil {
			return err
		}
		var t *Table
		if strings.HasPrefix(key, "delay_") {
			t = &(*curArc).Delay
		} else {
			t = &(*curArc).Slew
		}
		switch {
		case strings.HasSuffix(key, "_slews"):
			t.Slews = vals
		case strings.HasSuffix(key, "_loads"):
			t.Loads = vals
		case strings.HasSuffix(key, "_row"):
			t.Values = append(t.Values, vals)
		}
	}
	return nil
}
