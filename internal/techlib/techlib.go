// Package techlib provides a synthetic 14nm-class standard-cell library
// used by the technology mapper, the placer and the static timing
// engine. The library substitutes for the proprietary GF 14nm kit used
// in the paper: cell functions, areas and non-linear delay-model (NLDM)
// tables are generated from an analytical RC model calibrated to
// plausible 14nm magnitudes (picosecond gate delays, femtofarad pin
// capacitances, square-micron areas).
//
// Combinational cell logic functions are stored as truth tables over the
// input pins in declaration order, enabling exact Boolean matching
// during technology mapping (see internal/synth).
package techlib

import (
	"fmt"
	"math"
	"sort"
)

// Table is a two-dimensional NLDM lookup table indexed by input slew
// (rows) and output load (columns).
type Table struct {
	Slews  []float64 // ascending input transition times (ns)
	Loads  []float64 // ascending output capacitive loads (pF)
	Values [][]float64
}

// Lookup returns the bilinear interpolation of the table at the given
// slew and load, clamping to the table boundary outside the indexed
// region (the standard EDA extrapolation-free convention).
func (t *Table) Lookup(slew, load float64) float64 {
	i0, i1, fi := bracket(t.Slews, slew)
	j0, j1, fj := bracket(t.Loads, load)
	v00 := t.Values[i0][j0]
	v01 := t.Values[i0][j1]
	v10 := t.Values[i1][j0]
	v11 := t.Values[i1][j1]
	return v00*(1-fi)*(1-fj) + v01*(1-fi)*fj + v10*fi*(1-fj) + v11*fi*fj
}

// bracket finds indices i0<=i1 and fraction f such that x sits between
// axis[i0] and axis[i1], clamped to the axis range.
func bracket(axis []float64, x float64) (int, int, float64) {
	n := len(axis)
	if n == 1 || x <= axis[0] {
		return 0, 0, 0
	}
	if x >= axis[n-1] {
		return n - 1, n - 1, 0
	}
	i := sort.SearchFloat64s(axis, x)
	// axis[i-1] < x <= axis[i] here (Search returns first >= x).
	if axis[i] == x {
		return i, i, 0
	}
	lo, hi := i-1, i
	f := (x - axis[lo]) / (axis[hi] - axis[lo])
	return lo, hi, f
}

// Pin describes a cell input pin.
type Pin struct {
	Name string
	Cap  float64 // input pin capacitance (pF)
}

// Arc is a timing arc from one input pin to the cell output, carrying
// NLDM delay and output-slew tables.
type Arc struct {
	From  string
	Delay Table // ns
	Slew  Table // ns
}

// Cell is a standard cell. Combinational cells have a single output
// whose function over the input pins (in declaration order) is given by
// TT: bit b of TT is the output under the input assignment where input
// i takes bit i of b.
type Cell struct {
	Name    string
	Area    float64 // um^2
	Leakage float64 // nW
	Inputs  []Pin
	Output  string
	TT      uint16 // truth table over len(Inputs) <= 4 inputs
	Arcs    []Arc
	MaxCap  float64 // max output load (pF)
	Seq     bool    // sequential element (DFF); TT is ignored
}

// NumInputs returns the number of input pins.
func (c *Cell) NumInputs() int { return len(c.Inputs) }

// InputCap returns the capacitance of input pin i.
func (c *Cell) InputCap(i int) float64 { return c.Inputs[i].Cap }

// ArcFrom returns the timing arc from the named input pin, or nil.
func (c *Cell) ArcFrom(pin string) *Arc {
	for i := range c.Arcs {
		if c.Arcs[i].From == pin {
			return &c.Arcs[i]
		}
	}
	return nil
}

// Eval evaluates the cell function for the given input bits (bit i of
// ins is input pin i).
func (c *Cell) Eval(ins uint16) bool {
	return c.TT>>(ins&((1<<len(c.Inputs))-1))&1 == 1
}

// Library is a collection of standard cells plus derived matching
// indexes.
type Library struct {
	Name  string
	Cells []*Cell

	byName map[string]*Cell
	// match maps (inputs, canonical permuted truth table) to candidate
	// cells with the pin permutation that realizes the function:
	// perm[i] = cell pin index receiving cut leaf i.
	match map[matchKey][]Match
}

type matchKey struct {
	n  int
	tt uint16
}

// Match pairs a cell with the input permutation under which its
// function equals the queried truth table.
type Match struct {
	Cell *Cell
	Perm []int // cut leaf i connects to cell input Perm[i]
}

// NewLibrary builds a library from cells and constructs the matching
// index over all input permutations of every combinational cell.
func NewLibrary(name string, cells []*Cell) *Library {
	lib := &Library{
		Name:   name,
		Cells:  cells,
		byName: make(map[string]*Cell, len(cells)),
		match:  make(map[matchKey][]Match),
	}
	for _, c := range cells {
		lib.byName[c.Name] = c
		if c.Seq || len(c.Inputs) == 0 {
			continue
		}
		n := len(c.Inputs)
		permute(n, func(perm []int) {
			tt := permuteTT(c.TT, perm, n)
			key := matchKey{n, tt}
			// Deduplicate: symmetric cells generate the same TT under
			// several permutations; keep the first.
			for _, m := range lib.match[key] {
				if m.Cell == c {
					return
				}
			}
			p := append([]int(nil), perm...)
			lib.match[key] = append(lib.match[key], Match{Cell: c, Perm: p})
		})
	}
	return lib
}

// Cell returns the named cell, or nil when absent.
func (lib *Library) Cell(name string) *Cell { return lib.byName[name] }

// MustCell returns the named cell and panics when absent.
func (lib *Library) MustCell(name string) *Cell {
	c := lib.byName[name]
	if c == nil {
		panic(fmt.Sprintf("techlib: no cell %q in library %s", name, lib.Name))
	}
	return c
}

// MatchTT returns the cells (with pin permutations) whose function over
// n inputs equals truth table tt.
func (lib *Library) MatchTT(tt uint16, n int) []Match {
	return lib.match[matchKey{n, tt & mask(n)}]
}

func mask(n int) uint16 {
	if n >= 4 {
		return 0xffff
	}
	return uint16(1)<<(1<<n) - 1
}

// permute enumerates all permutations of [0,n) calling fn with each.
func permute(n int, fn func(perm []int)) {
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	var rec func(k int)
	rec = func(k int) {
		if k == n {
			fn(perm)
			return
		}
		for i := k; i < n; i++ {
			perm[k], perm[i] = perm[i], perm[k]
			rec(k + 1)
			perm[k], perm[i] = perm[i], perm[k]
		}
	}
	rec(0)
}

// permuteTT rewires truth table tt over n inputs so that input i of the
// result corresponds to input perm[i] of the original.
func permuteTT(tt uint16, perm []int, n int) uint16 {
	var out uint16
	rows := 1 << n
	for b := 0; b < rows; b++ {
		// Build the original row index from the permuted assignment.
		var orig int
		for i := 0; i < n; i++ {
			if b>>i&1 == 1 {
				orig |= 1 << perm[i]
			}
		}
		if tt>>orig&1 == 1 {
			out |= 1 << b
		}
	}
	return out
}

// genTable builds an NLDM table from the linear model
// value = base + kSlew*slew + kLoad*load, sampled on a 5x5 grid.
func genTable(base, kSlew, kLoad float64) Table {
	slews := []float64{0.002, 0.008, 0.024, 0.06, 0.15}
	loads := []float64{0.0005, 0.002, 0.008, 0.024, 0.06}
	vals := make([][]float64, len(slews))
	for i, s := range slews {
		vals[i] = make([]float64, len(loads))
		for j, l := range loads {
			vals[i][j] = base + kSlew*s + kLoad*l
		}
	}
	return Table{Slews: slews, Loads: loads, Values: vals}
}

// cellSpec drives the synthetic library generator.
type cellSpec struct {
	name  string
	tt    uint16
	nIns  int
	area  float64
	drive float64 // relative drive strength: higher = faster under load
	seq   bool
}

// buildCell expands a spec into a full cell with per-arc NLDM tables.
// Delay magnitudes follow a 14nm-class FO4 of roughly 10-15 ps.
func buildCell(s cellSpec) *Cell {
	c := &Cell{
		Name:    s.name,
		Area:    s.area,
		Leakage: 0.5 * s.area,
		Output:  "Y",
		TT:      s.tt & mask(s.nIns),
		MaxCap:  0.06 * s.drive,
		Seq:     s.seq,
	}
	pinNames := []string{"A", "B", "C", "D"}
	for i := 0; i < s.nIns; i++ {
		c.Inputs = append(c.Inputs, Pin{
			Name: pinNames[i],
			Cap:  0.0009 * s.drive * (1 + 0.1*float64(i)),
		})
	}
	// Later pins are slightly slower arcs (series stack position).
	for i := 0; i < s.nIns; i++ {
		stack := 1 + 0.15*float64(i)
		base := 0.010 * stack * (1 + 0.3*float64(s.nIns-1)) / math.Sqrt(s.drive)
		kLoad := 0.45 / s.drive
		c.Arcs = append(c.Arcs, Arc{
			From:  pinNames[i],
			Delay: genTable(base, 0.25, kLoad),
			Slew:  genTable(base*0.8, 0.15, kLoad*1.2),
		})
	}
	if s.seq {
		c.Output = "Q"
		c.Inputs = []Pin{{Name: "D", Cap: 0.0011}, {Name: "CK", Cap: 0.0008}}
		c.Arcs = []Arc{{From: "CK", Delay: genTable(0.022, 0.2, 0.5), Slew: genTable(0.015, 0.1, 0.6)}}
	}
	return c
}

// Truth tables over pin-order inputs (bit b: input i = bit i of b).
const (
	ttBuf   uint16 = 0b10       // Y = A
	ttInv   uint16 = 0b01       // Y = !A
	ttAnd2  uint16 = 0b1000     // Y = A&B
	ttNand2 uint16 = 0b0111     // Y = !(A&B)
	ttOr2   uint16 = 0b1110     // Y = A|B
	ttNor2  uint16 = 0b0001     // Y = !(A|B)
	ttXor2  uint16 = 0b0110     // Y = A^B
	ttXnor2 uint16 = 0b1001     // Y = !(A^B)
	ttAnd3  uint16 = 0b10000000 // Y = A&B&C
	ttNand3 uint16 = 0b01111111 // Y = !(A&B&C)
	ttOr3   uint16 = 0b11111110 // Y = A|B|C
	ttNor3  uint16 = 0b00000001 // Y = !(A|B|C)
)

// aoi21TT returns !(A&B | C) over pins A,B,C.
func aoi21TT() uint16 {
	var tt uint16
	for b := 0; b < 8; b++ {
		a := b & 1
		bb := b >> 1 & 1
		c := b >> 2 & 1
		if !((a == 1 && bb == 1) || c == 1) {
			tt |= 1 << b
		}
	}
	return tt
}

// oai21TT returns !((A|B) & C) over pins A,B,C.
func oai21TT() uint16 {
	var tt uint16
	for b := 0; b < 8; b++ {
		a := b & 1
		bb := b >> 1 & 1
		c := b >> 2 & 1
		if !((a == 1 || bb == 1) && c == 1) {
			tt |= 1 << b
		}
	}
	return tt
}

// mux2TT returns S ? B : A over pins A,B,S.
func mux2TT() uint16 {
	var tt uint16
	for b := 0; b < 8; b++ {
		a := b & 1
		bb := b >> 1 & 1
		s := b >> 2 & 1
		v := a
		if s == 1 {
			v = bb
		}
		if v == 1 {
			tt |= 1 << b
		}
	}
	return tt
}

// Default14nm returns the built-in synthetic 14nm-class library with
// inverters, buffers, basic NAND/NOR/AND/OR/XOR gates in several drive
// strengths, three-input gates, AOI/OAI/MUX complex gates and a D
// flip-flop.
func Default14nm() *Library {
	specs := []cellSpec{
		{"INV_X1", ttInv, 1, 0.25, 1, false},
		{"INV_X2", ttInv, 1, 0.38, 2, false},
		{"INV_X4", ttInv, 1, 0.64, 4, false},
		{"BUF_X1", ttBuf, 1, 0.38, 1, false},
		{"BUF_X2", ttBuf, 1, 0.51, 2, false},
		{"BUF_X4", ttBuf, 1, 0.77, 4, false},
		{"NAND2_X1", ttNand2, 2, 0.38, 1, false},
		{"NAND2_X2", ttNand2, 2, 0.51, 2, false},
		{"NOR2_X1", ttNor2, 2, 0.38, 1, false},
		{"NOR2_X2", ttNor2, 2, 0.51, 2, false},
		{"AND2_X1", ttAnd2, 2, 0.51, 1, false},
		{"OR2_X1", ttOr2, 2, 0.51, 1, false},
		{"XOR2_X1", ttXor2, 2, 0.77, 1, false},
		{"XNOR2_X1", ttXnor2, 2, 0.77, 1, false},
		{"NAND3_X1", ttNand3, 3, 0.51, 1, false},
		{"NOR3_X1", ttNor3, 3, 0.51, 1, false},
		{"AND3_X1", ttAnd3, 3, 0.64, 1, false},
		{"OR3_X1", ttOr3, 3, 0.64, 1, false},
		{"AOI21_X1", aoi21TT(), 3, 0.51, 1, false},
		{"OAI21_X1", oai21TT(), 3, 0.51, 1, false},
		{"MUX2_X1", mux2TT(), 3, 0.90, 1, false},
		{"DFF_X1", 0, 0, 1.28, 1, true},
	}
	cells := make([]*Cell, len(specs))
	for i, s := range specs {
		cells[i] = buildCell(s)
	}
	return NewLibrary("synth14", cells)
}
