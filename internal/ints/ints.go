// Package ints collects the small scalar helpers the engines all need,
// replacing the per-package copies that accumulated across sta, route,
// core, gcn and place.
package ints

// Max returns the larger of a and b.
func Min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func Max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Abs returns the absolute value of v.
func Abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// CeilDiv returns ceil(a/b) for positive b.
func CeilDiv(a, b int) int {
	return (a + b - 1) / b
}
