package dse

import (
	"math"
	"math/rand"
	"sort"

	"edacloud/internal/synth"
)

// Params is one point of the search space, spanning all three axes the
// tentpole names: the synthesis recipe (Passes), a stage parameter
// (the STA clock period, by index into Config.ClockPeriodsNs), and the
// instance plan (the deadline slack factor, by index into
// Config.SlackFactors — the knob that decides which machines the
// deployment optimizer buys).
type Params struct {
	Passes   []synth.PassKind
	ClockIdx int
	SlackIdx int
}

// passLetters is the canonical short code per pass kind.
func passLetter(p synth.PassKind) byte {
	switch p {
	case synth.PassBalance:
		return 'b'
	case synth.PassRewrite:
		return 'w'
	case synth.PassRefactor:
		return 'f'
	}
	return '?'
}

// Recipe renders the pass list as a synth.Recipe whose name derives
// canonically from the passes ("dse:bwf"). The canonical name matters:
// recipe identity participates in artifact-cache keys, so two trials
// sampling the same pass sequence must produce byte-identical recipes
// to share cache entries.
func (p Params) Recipe() synth.Recipe {
	if len(p.Passes) == 0 {
		return synth.Recipe{Name: "dse:raw"}
	}
	name := make([]byte, 0, 4+len(p.Passes))
	name = append(name, "dse:"...)
	for _, k := range p.Passes {
		name = append(name, passLetter(k))
	}
	return synth.Recipe{Name: string(name), Passes: append([]synth.PassKind(nil), p.Passes...)}
}

// key is the canonical identity used for within-round dedup.
func (p Params) key() string {
	r := p.Recipe()
	return r.Name + "|" + string(rune('0'+p.ClockIdx)) + "|" + string(rune('0'+p.SlackIdx))
}

const (
	// samplerGamma is the fraction of history treated as the "good"
	// density; samplerMinHistory gates the model on a uniform prior
	// until enough observations exist; samplerEpsilon keeps a floor of
	// pure prior exploration forever.
	samplerGamma      = 0.25
	samplerMinHistory = 4
	samplerEpsilon    = 0.15
	samplerCandidates = 8
)

// observation is one evaluated point the sampler learns from.
type observation struct {
	p   Params
	obj Objectives
}

// sampler is a TPE-style model over the categorical search space: the
// evaluated history is split into a good quantile and the rest, each
// side fitted with smoothed categorical densities per dimension
// (recipe length, pass identity per position, clock index, slack
// index); candidates are drawn from the good density and ranked by the
// likelihood ratio l(x)/g(x). Everything runs off one seeded rng on
// one goroutine, so the emission sequence is a pure function of the
// seed and the observation order.
type sampler struct {
	rng       *rand.Rand
	maxPasses int
	nClocks   int
	nSlacks   int
	hist      []observation
}

func newSampler(seed int64, maxPasses, nClocks, nSlacks int) *sampler {
	return &sampler{
		rng:       rand.New(rand.NewSource(seed)),
		maxPasses: maxPasses,
		nClocks:   nClocks,
		nSlacks:   nSlacks,
	}
}

// observe records an evaluated point.
func (s *sampler) observe(p Params, obj Objectives) {
	s.hist = append(s.hist, observation{p: p, obj: obj})
}

// randomParams draws from the uniform prior over the whole space.
func (s *sampler) randomParams() Params {
	n := s.rng.Intn(s.maxPasses + 1)
	p := Params{
		Passes:   make([]synth.PassKind, n),
		ClockIdx: s.rng.Intn(s.nClocks),
		SlackIdx: s.rng.Intn(s.nSlacks),
	}
	for i := range p.Passes {
		p.Passes[i] = synth.PassKind(s.rng.Intn(3))
	}
	return p
}

// density is one side's smoothed categorical counts.
type density struct {
	length []float64   // recipe length 0..maxPasses
	pass   [][]float64 // [position][kind], positions 0..maxPasses-1
	clock  []float64
	slack  []float64
}

func newDensity(maxPasses, nClocks, nSlacks int) *density {
	d := &density{
		length: make([]float64, maxPasses+1),
		pass:   make([][]float64, maxPasses),
		clock:  make([]float64, nClocks),
		slack:  make([]float64, nSlacks),
	}
	for i := range d.pass {
		d.pass[i] = make([]float64, 3)
	}
	return d
}

func (d *density) add(p Params) {
	d.length[len(p.Passes)]++
	for i, k := range p.Passes {
		d.pass[i][int(k)]++
	}
	d.clock[p.ClockIdx]++
	d.slack[p.SlackIdx]++
}

// logProb scores one categorical pick under +1-smoothed counts.
func logProb(counts []float64, idx int) float64 {
	total := float64(len(counts))
	for _, c := range counts {
		total += c
	}
	return math.Log((counts[idx] + 1) / total)
}

// drawCat samples an index from +1-smoothed counts.
func drawCat(rng *rand.Rand, counts []float64) int {
	total := float64(len(counts))
	for _, c := range counts {
		total += c
	}
	x := rng.Float64() * total
	for i, c := range counts {
		x -= c + 1
		if x < 0 {
			return i
		}
	}
	return len(counts) - 1
}

// logDensity scores a full point under one side.
func (d *density) logDensity(p Params) float64 {
	lp := logProb(d.length, len(p.Passes))
	for i, k := range p.Passes {
		lp += logProb(d.pass[i], int(k))
	}
	lp += logProb(d.clock, p.ClockIdx)
	lp += logProb(d.slack, p.SlackIdx)
	return lp
}

// draw samples a full point from one side's densities.
func (d *density) draw(rng *rand.Rand) Params {
	n := drawCat(rng, d.length)
	p := Params{Passes: make([]synth.PassKind, n)}
	for i := range p.Passes {
		p.Passes[i] = synth.PassKind(drawCat(rng, d.pass[i]))
	}
	p.ClockIdx = drawCat(rng, d.clock)
	p.SlackIdx = drawCat(rng, d.slack)
	return p
}

// sample emits the next point to evaluate: the uniform prior while the
// history is thin (or with the epsilon exploration floor), else the
// TPE step — split history into good/bad by non-dominated rank with a
// scalarized tie-break, draw candidates from the good density and keep
// the best likelihood ratio.
func (s *sampler) sample() Params {
	if len(s.hist) < samplerMinHistory || s.rng.Float64() < samplerEpsilon {
		return s.randomParams()
	}
	objs := make([]Objectives, len(s.hist))
	for i, o := range s.hist {
		objs[i] = o.obj
	}
	rank := nonDominatedRanks(objs)
	scalar := scalarize(objs)
	order := make([]int, len(s.hist))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		ia, ib := order[a], order[b]
		if rank[ia] != rank[ib] {
			return rank[ia] < rank[ib]
		}
		if scalar[ia] != scalar[ib] {
			return scalar[ia] < scalar[ib]
		}
		return ia < ib
	})
	nGood := int(math.Ceil(samplerGamma * float64(len(s.hist))))
	if nGood < 1 {
		nGood = 1
	}
	good := newDensity(s.maxPasses, s.nClocks, s.nSlacks)
	bad := newDensity(s.maxPasses, s.nClocks, s.nSlacks)
	for i, idx := range order {
		if i < nGood {
			good.add(s.hist[idx].p)
		} else {
			bad.add(s.hist[idx].p)
		}
	}
	var best Params
	bestScore := math.Inf(-1)
	for c := 0; c < samplerCandidates; c++ {
		cand := good.draw(s.rng)
		score := good.logDensity(cand) - bad.logDensity(cand)
		if score > bestScore {
			bestScore = score
			best = cand
		}
	}
	return best
}

// SampleParams draws n points from a fresh sampler seeded with seed —
// the prior over the whole search space a Config spans. It exists for
// property tests: every recipe the DSE sampler can emit (any pass
// sequence up to MaxPasses over balance/rewrite/refactor) must uphold
// the synthesis layer's functional-equivalence and determinism
// contracts.
func SampleParams(cfg Config, seed int64, n int) []Params {
	cfg = cfg.withDefaults()
	s := newSampler(seed, cfg.MaxPasses, len(cfg.ClockPeriodsNs), len(cfg.SlackFactors))
	out := make([]Params, n)
	for i := range out {
		out[i] = s.sample()
	}
	return out
}
