package dse

import (
	"math/rand"
	"testing"
)

func randObjectives(rng *rand.Rand) Objectives {
	// Coarse grid values force frequent dominance relations and exact
	// ties, which is where archive bookkeeping goes wrong.
	return Objectives{
		QoR:        float64(rng.Intn(5)),
		CostUSD:    float64(rng.Intn(5)),
		RuntimeSec: float64(rng.Intn(5)),
	}
}

func TestDominates(t *testing.T) {
	a := Objectives{QoR: 1, CostUSD: 1, RuntimeSec: 1}
	b := Objectives{QoR: 2, CostUSD: 1, RuntimeSec: 1}
	if !a.Dominates(b) {
		t.Fatal("better-on-one, equal-elsewhere must dominate")
	}
	if b.Dominates(a) || a.Dominates(a) {
		t.Fatal("dominance must be strict and irreflexive")
	}
	c := Objectives{QoR: 0, CostUSD: 9, RuntimeSec: 1}
	if a.Dominates(c) || c.Dominates(a) {
		t.Fatal("trade-off points must be mutually non-dominated")
	}
}

// TestArchiveHoldsNoDominatedPoint is the tentpole's provable-
// non-dominance claim: after any sequence of Adds, no archived point
// dominates another, and every rejected or evicted trial is dominated
// by (or objective-identical to) something archived.
func TestArchiveHoldsNoDominatedPoint(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		var a Archive
		var all []Trial
		for i := 0; i < 60; i++ {
			tr := Trial{ID: i, Full: randObjectives(rng)}
			all = append(all, tr)
			a.Add(tr)
		}
		pts := a.Points()
		if len(pts) == 0 {
			t.Fatalf("seed %d: empty archive after 60 adds", seed)
		}
		for i := range pts {
			for j := range pts {
				if i != j && pts[i].Full.Dominates(pts[j].Full) {
					t.Fatalf("seed %d: archived %+v dominates archived %+v", seed, pts[i].Full, pts[j].Full)
				}
			}
		}
		// Completeness: nothing outside the archive may dominate an
		// archived point, and everything outside must be covered.
		for _, tr := range all {
			covered := false
			for _, p := range pts {
				if tr.Full.Dominates(p.Full) {
					t.Fatalf("seed %d: dropped trial %+v dominates archived %+v", seed, tr.Full, p.Full)
				}
				if p.Full.Dominates(tr.Full) || p.Full == tr.Full {
					covered = true
				}
			}
			if !covered {
				t.Fatalf("seed %d: trial %+v neither archived nor dominated", seed, tr.Full)
			}
		}
	}
}

// TestArchiveInsertionOrderIrrelevant: the final Pareto set (as
// objective vectors) must not depend on the order trials arrive.
func TestArchiveInsertionOrderIrrelevant(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		trials := make([]Trial, 40)
		for i := range trials {
			trials[i] = Trial{ID: i, Full: randObjectives(rng)}
		}
		front := func(order []int) map[Objectives]bool {
			var a Archive
			for _, i := range order {
				a.Add(trials[i])
			}
			set := map[Objectives]bool{}
			for _, p := range a.Points() {
				set[p.Full] = true
			}
			return set
		}
		fwd := make([]int, len(trials))
		rev := make([]int, len(trials))
		for i := range trials {
			fwd[i] = i
			rev[i] = len(trials) - 1 - i
		}
		shuf := rng.Perm(len(trials))
		a, b, c := front(fwd), front(rev), front(shuf)
		if len(a) != len(b) || len(a) != len(c) {
			t.Fatalf("seed %d: front size depends on order: %d/%d/%d", seed, len(a), len(b), len(c))
		}
		for o := range a {
			if !b[o] || !c[o] {
				t.Fatalf("seed %d: front membership depends on order at %+v", seed, o)
			}
		}
	}
}

// TestPromoteNeverPromotesDominatedTrial is the successive-halving
// invariant the issue demands: a promoted trial is never dominated on
// all objectives by a sibling the rung pruned.
func TestPromoteNeverPromotesDominatedTrial(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(20)
		objs := make([]Objectives, n)
		for i := range objs {
			objs[i] = randObjectives(rng)
		}
		k := 1 + rng.Intn(n)
		picked := promote(objs, k)
		if len(picked) != k {
			t.Fatalf("seed %d: promote returned %d of requested %d", seed, len(picked), k)
		}
		isPicked := make([]bool, n)
		for _, i := range picked {
			isPicked[i] = true
		}
		for _, p := range picked {
			for s := 0; s < n; s++ {
				if !isPicked[s] && objs[s].Dominates(objs[p]) {
					t.Fatalf("seed %d: pruned %+v dominates promoted %+v", seed, objs[s], objs[p])
				}
			}
		}
	}
}

func TestPromoteEdgeCases(t *testing.T) {
	objs := []Objectives{{QoR: 1}, {QoR: 2}, {QoR: 3}}
	if got := promote(objs, 5); len(got) != 3 {
		t.Fatalf("k>=n must promote everything, got %v", got)
	}
	if got := promote(objs, 0); got != nil {
		t.Fatalf("k<=0 must promote nothing, got %v", got)
	}
	if got := promote(nil, 3); len(got) != 0 {
		t.Fatalf("empty cohort must promote nothing, got %v", got)
	}
}

func TestNonDominatedRanks(t *testing.T) {
	objs := []Objectives{
		{QoR: 1, CostUSD: 1, RuntimeSec: 1}, // front 0
		{QoR: 2, CostUSD: 2, RuntimeSec: 2}, // dominated by 0 only
		{QoR: 0, CostUSD: 3, RuntimeSec: 1}, // front 0 (trade-off)
		{QoR: 3, CostUSD: 3, RuntimeSec: 3}, // dominated by 0 and 1
	}
	want := []int{0, 1, 0, 2}
	got := nonDominatedRanks(objs)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("rank[%d] = %d, want %d (all: %v)", i, got[i], want[i], got)
		}
	}
}
