// Package dse is the design-space-exploration autopilot over the
// repo's deterministic cloud simulation: a seeded multi-objective
// search (successive halving with a TPE-style sampler) over synthesis
// recipes, STA clock periods and deployment slack factors, evaluated
// on the bounded fleet the lower layers already model.
//
// Every round samples a population, prices it cheaply — one
// synthesis-only scheduler batch for real QoR plus the GCN runtime
// predictor for the downstream stages — promotes the best Pareto
// fronts, and fully evaluates the survivors as one co-optimized batch
// (mckp.BatchOptimize selection, flow scheduler execution) whose
// simulated bill draws down the exploration budget. All trial
// executions route through the scheduler's artifact cache when one is
// attached, so trials sharing a recipe prefix dedup: a warm store
// evaluates more trials per simulated dollar than a cache-blind
// search, never fewer — objectives and the search trajectory are
// cache-independent by construction, only bills shrink.
package dse

import (
	"fmt"
	"math"

	"edacloud/internal/cache"
	"edacloud/internal/cloud"
	"edacloud/internal/core"
	"edacloud/internal/designs"
	"edacloud/internal/flow"
	"edacloud/internal/gcn"
	"edacloud/internal/mckp"
	"edacloud/internal/netlist"
	"edacloud/internal/synth"
	"edacloud/internal/techlib"
)

// Config assembles an exploration.
type Config struct {
	// Design is the evaluation design whose flow is being explored.
	Design string
	// Scale sizes the generated design (core.CharacterizeOptions.Scale);
	// 0 means 0.03.
	Scale float64
	// ClockPeriodsNs is the STA clock-period axis; nil means
	// {0.8, 1.0, 1.25}. Trials differing only in clock share every
	// artifact except timing.
	ClockPeriodsNs []float64
	// SlackFactors is the deadline-slack axis: a trial's deployment
	// deadline is its plan's fastest achievable time times the factor.
	// nil means {1.05, 1.2, 1.5, 2.0}. Trials differing only in slack
	// share all four artifacts — cache keys are machine-independent.
	SlackFactors []float64
	// MaxPasses bounds sampled recipe length; 0 means 6.
	MaxPasses int
	// Population is the per-round sample count; 0 means 8.
	Population int
	// Eta is the halving factor: ceil(Population/Eta) trials survive the
	// cheap rung; 0 means 4.
	Eta int
	// Rounds bounds the sampling rounds; 0 means 3.
	Rounds int
	// BudgetUSD stops the search once the simulated spend (cheap-rung
	// synthesis bills plus full-evaluation batch bills) reaches it,
	// checked at round boundaries; 0 means unlimited.
	BudgetUSD float64
	// Seed drives the sampler; the whole exploration is a pure function
	// of it. Workers bounds host-level fan-out; results are identical
	// for every value.
	Seed    int64
	Workers int

	// Fleet is the bounded instance pool trials contend for (never
	// mutated; executions run on clones). Catalog prices the deployment
	// problems. Lib is the technology library. Predictor supplies the
	// GCN runtime estimates for the cheap rung.
	Fleet     *cloud.Fleet
	Catalog   *cloud.Catalog
	Lib       *techlib.Library
	Predictor *core.Predictor
	// Store, when non-nil, is the shared artifact cache every trial
	// execution routes through. Nil explores cache-blind.
	Store *cache.Store
}

func (cfg Config) withDefaults() Config {
	if cfg.Scale == 0 {
		cfg.Scale = 0.03
	}
	if cfg.ClockPeriodsNs == nil {
		cfg.ClockPeriodsNs = []float64{0.8, 1.0, 1.25}
	}
	if cfg.SlackFactors == nil {
		cfg.SlackFactors = []float64{1.05, 1.2, 1.5, 2.0}
	}
	if cfg.MaxPasses == 0 {
		cfg.MaxPasses = 6
	}
	if cfg.Population == 0 {
		cfg.Population = 8
	}
	if cfg.Eta == 0 {
		cfg.Eta = 4
	}
	if cfg.Rounds == 0 {
		cfg.Rounds = 3
	}
	return cfg
}

func (cfg Config) validate() error {
	if cfg.Design == "" {
		return fmt.Errorf("dse: config needs a design")
	}
	if cfg.Fleet == nil || len(cfg.Fleet.Instances) == 0 {
		return fmt.Errorf("dse: config needs a non-empty fleet")
	}
	if cfg.Catalog == nil || cfg.Lib == nil {
		return fmt.Errorf("dse: config needs a catalog and a library")
	}
	if cfg.Predictor == nil {
		return fmt.Errorf("dse: config needs a trained runtime predictor")
	}
	for _, c := range cfg.ClockPeriodsNs {
		if c <= 0 {
			return fmt.Errorf("dse: clock period %g must be positive", c)
		}
	}
	for _, s := range cfg.SlackFactors {
		if s < 1 {
			return fmt.Errorf("dse: slack factor %g below 1 makes every plan infeasible", s)
		}
	}
	return nil
}

// Trial is one evaluated point of the search space.
type Trial struct {
	ID            int
	Params        Params
	Recipe        synth.Recipe
	ClockPeriodNs float64
	SlackFactor   float64
	// Cheap is the pruning rung's estimate: real synthesis cells,
	// GCN-predicted downstream runtimes priced by a per-trial knapsack.
	Cheap Objectives
	// Full is the promoted rung's score: executed QoR (cells plus
	// timing-violation penalty at the trial's clock) and the nominal
	// deployment plan's cost and runtime at the trial's slack.
	Full Objectives
	// FullyEvaluated marks trials that survived to the full rung.
	FullyEvaluated bool
}

// Result is one exploration's outcome.
type Result struct {
	// Front is the Pareto archive over fully evaluated trials, in
	// canonical order; no point dominates another.
	Front []Trial
	// Trials holds every sampled trial in sample order (the promoted
	// ones carry Full objectives).
	Trials []Trial
	// Rounds, Sampled and Evaluated count completed rounds, sampled
	// candidates and full evaluations; Evaluated is the "trials
	// completed" currency the cache-vs-blind comparison is stated in.
	Rounds    int
	Sampled   int
	Evaluated int
	// SpentUSD is the simulated spend: every scheduler bill of every
	// rung. RoundSpentUSD is the cumulative spend after each completed
	// round — the curve the budget gate walks. CacheStats snapshots the
	// store when one was attached.
	SpentUSD      float64
	RoundSpentUSD []float64
	CacheStats    cache.Stats
}

// workScale extrapolates the cheap rung's synthesis-only runtimes to
// full-design magnitudes, matching the effort constant the
// characterization layer applies (workScaleFor's fixed factor); it
// keeps simulated stage times well above the cache-probe constant so
// a served hit is always cheaper than a re-run.
const workScale = 400

// cheapInstance picks the fleet's cheapest instance type for the
// pruning rung's synthesis runs: lowest hourly price, name as the
// deterministic tie-break.
func cheapInstance(fleet *cloud.Fleet) cloud.InstanceType {
	var best cloud.InstanceType
	for _, e := range fleet.Profile() {
		if best.Name == "" || e.Type.PricePerHour < best.PricePerHour ||
			(e.Type.PricePerHour == best.PricePerHour && e.Type.Name < best.Name) {
			best = e.Type
		}
	}
	return best
}

// explorer carries one Explore invocation's state.
type explorer struct {
	cfg     Config
	design  string
	sampler *sampler
	archive Archive
	res     *Result
	// synthSeconds is the GCN prediction for the synthesis stage on the
	// input AIG — recipe-independent, computed once.
	synthSeconds []float64
	// chars memoizes per-recipe characterizations (keyed by canonical
	// recipe name): the planning-side effort treated as free, as in the
	// paper's offline characterization.
	chars map[string]*core.DesignCharacterization
}

// Explore runs the search. The result is a pure function of the
// config: same seed, same trials, same archive, for any Workers value
// — only SpentUSD and CacheStats react to an attached store.
func Explore(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	g, err := designs.EvalDesign(cfg.Design, cfg.Scale)
	if err != nil {
		return nil, err
	}
	synthPred, err := cfg.Predictor.PredictRuntimes(flow.JobSynthesis, gcn.FromStarGraph(netlist.AIGGraph(g)))
	if err != nil {
		return nil, err
	}
	e := &explorer{
		cfg:          cfg,
		sampler:      newSampler(cfg.Seed, cfg.MaxPasses, len(cfg.ClockPeriodsNs), len(cfg.SlackFactors)),
		res:          &Result{},
		synthSeconds: synthPred,
		chars:        map[string]*core.DesignCharacterization{},
	}
	for round := 0; round < cfg.Rounds; round++ {
		if cfg.BudgetUSD > 0 && e.res.SpentUSD >= cfg.BudgetUSD {
			break
		}
		if err := e.runRound(round); err != nil {
			return nil, err
		}
		e.res.Rounds++
		e.res.RoundSpentUSD = append(e.res.RoundSpentUSD, e.res.SpentUSD)
	}
	e.res.Front = e.archive.Points()
	if cfg.Store != nil {
		e.res.CacheStats = cfg.Store.Stats()
	}
	return e.res, nil
}

// sampleRound draws a round's population, deduplicating within the
// round so one batch never evaluates the same point twice.
func (e *explorer) sampleRound() []*Trial {
	seen := map[string]bool{}
	var out []*Trial
	for attempts := 0; len(out) < e.cfg.Population && attempts < 20*e.cfg.Population; attempts++ {
		p := e.sampler.sample()
		k := p.key()
		if seen[k] {
			continue
		}
		seen[k] = true
		t := &Trial{
			ID:            e.res.Sampled + len(out),
			Params:        p,
			Recipe:        p.Recipe(),
			ClockPeriodNs: e.cfg.ClockPeriodsNs[p.ClockIdx],
			SlackFactor:   e.cfg.SlackFactors[p.SlackIdx],
		}
		out = append(out, t)
	}
	return out
}

// runRound executes one sample → cheap rung → promote → full rung
// cycle.
func (e *explorer) runRound(round int) error {
	trials := e.sampleRound()
	if len(trials) == 0 {
		return fmt.Errorf("dse: round %d sampled no candidates", round)
	}
	if err := e.cheapRung(round, trials); err != nil {
		return err
	}
	objs := make([]Objectives, len(trials))
	for i, t := range trials {
		objs[i] = t.Cheap
		e.sampler.observe(t.Params, t.Cheap)
	}
	k := (len(trials) + e.cfg.Eta - 1) / e.cfg.Eta
	promoted := promote(objs, k)
	survivors := make([]*Trial, len(promoted))
	for i, idx := range promoted {
		survivors[i] = trials[idx]
	}
	if err := e.fullRung(round, survivors); err != nil {
		return err
	}
	for _, t := range trials {
		e.res.Trials = append(e.res.Trials, *t)
	}
	e.res.Sampled += len(trials)
	e.res.Evaluated += len(survivors)
	return nil
}

// cheapRung prices every candidate without running its full flow: one
// synthesis-only batch on the fleet (through the shared cache, so
// repeated recipes settle as hits) gives real cell counts and netlist
// graphs; the GCN predictor plus a per-trial min-cost knapsack over
// the predicted runtimes prices the downstream deployment.
func (e *explorer) cheapRung(round int, trials []*Trial) error {
	g, err := designs.EvalDesign(e.cfg.Design, e.cfg.Scale)
	if err != nil {
		return err
	}
	cheap := cheapInstance(e.cfg.Fleet)
	jobs := make([]flow.Job, len(trials))
	for i, t := range trials {
		jobs[i] = flow.Job{
			Name:   fmt.Sprintf("r%d-%s", round, t.Recipe.Name),
			Design: g,
			Lib:    e.cfg.Lib,
			Options: []flow.Option{
				flow.WithStages(flow.Synthesis(synth.Options{Recipe: t.Recipe})),
			},
			Plan:      flow.StagePlan{flow.JobSynthesis: cheap},
			WorkScale: workScale,
		}
	}
	sched := &flow.Scheduler{
		Workers: e.cfg.Workers,
		Fleet:   e.cfg.Fleet.Clone(),
		Policy:  flow.PlanPolicy{},
		Cache:   e.cfg.Store,
	}
	run, err := sched.Run(nil, jobs)
	if err != nil {
		return err
	}
	e.res.SpentUSD += run.TotalCostUSD

	graphs := make([]*gcn.Graph, len(trials))
	for i := range trials {
		jr := run.Jobs[i]
		if jr.Err != nil {
			return fmt.Errorf("dse: cheap rung %s: %w", jr.Name, jr.Err)
		}
		trials[i].Cheap.QoR = float64(jr.Run.Netlist.NumCells())
		graphs[i] = gcn.FromStarGraph(jr.Run.Netlist.StarGraph())
	}

	// Predict the downstream stages per trial netlist; synthesis uses
	// the shared input-AIG prediction.
	pred := map[flow.JobKind][][]float64{}
	for _, k := range core.JobKinds() {
		if k == flow.JobSynthesis {
			continue
		}
		p, err := e.cfg.Predictor.PredictRuntimesBatch(k, graphs)
		if err != nil {
			return err
		}
		pred[k] = p
	}
	for i, t := range trials {
		classes, err := e.predictedClasses(func(k flow.JobKind) []float64 {
			if k == flow.JobSynthesis {
				return e.synthSeconds
			}
			return pred[k][i]
		})
		if err != nil {
			return err
		}
		deadline := int(math.Ceil(float64(mckp.MinTotalTime(classes)) * t.SlackFactor))
		sel, err := mckp.SolveMinCost(classes, deadline)
		if err != nil {
			return err
		}
		if !sel.Feasible {
			return fmt.Errorf("dse: cheap plan infeasible for %s at slack %g", t.Recipe.Name, t.SlackFactor)
		}
		t.Cheap.CostUSD = sel.TotalCost
		t.Cheap.RuntimeSec = float64(sel.TotalTime)
	}
	return nil
}

// predictedClasses builds a knapsack choice table from predicted
// per-configuration runtimes, priced like BuildDeploymentProblem:
// each stage's candidates are its recommended family's sizes at the
// predictor's vCPU grid. Predictions are floored at one second — the
// GCN extrapolates and must not emit non-positive runtimes into a DP
// over integral seconds.
func (e *explorer) predictedClasses(secondsFor func(flow.JobKind) []float64) ([]mckp.Class, error) {
	var classes []mckp.Class
	for _, k := range core.JobKinds() {
		secs := secondsFor(k)
		cl := mckp.Class{Name: k.String()}
		fam := core.RecommendedFamily(k)
		for vi, v := range e.cfg.Predictor.VCPUs {
			it, err := e.cfg.Catalog.Size(fam, v)
			if err != nil {
				return nil, err
			}
			s := secs[vi]
			if s < 1 {
				s = 1
			}
			cl.Items = append(cl.Items, mckp.Item{
				Label:   it.Name,
				TimeSec: int(math.Ceil(s)),
				Cost:    it.Cost(s),
			})
		}
		classes = append(classes, cl)
	}
	return classes, nil
}

// charFor characterizes the design under one recipe, memoized by the
// canonical recipe name.
func (e *explorer) charFor(recipe synth.Recipe) (*core.DesignCharacterization, error) {
	if c, ok := e.chars[recipe.Name]; ok {
		return c, nil
	}
	c, err := core.CharacterizeEval(e.cfg.Lib, e.cfg.Design, core.CharacterizeOptions{
		Scale:   e.cfg.Scale,
		Recipe:  recipe,
		Workers: e.cfg.Workers,
	})
	if err != nil {
		return nil, err
	}
	e.chars[recipe.Name] = c
	return c, nil
}

// fullRung fully evaluates the promoted trials as one co-optimized
// batch on the bounded fleet. Each trial's nominal objectives (cost,
// runtime) come from its own fleet-restricted min-cost plan at its
// slack-derived deadline — solved cache-blind, so objectives never
// depend on store contents — and its QoR from the executed artifacts.
// The execution routes through the shared store: cached stages book no
// lease, which is the entire cache dividend, and per-second billing
// means queueing never changes a bill.
func (e *explorer) fullRung(round int, trials []*Trial) error {
	if len(trials) == 0 {
		return nil
	}
	specs := make([]core.BatchJobSpec, len(trials))
	for i, t := range trials {
		char, err := e.charFor(t.Recipe)
		if err != nil {
			return err
		}
		prob, err := core.BuildDeploymentProblem(char, e.cfg.Catalog)
		if err != nil {
			return err
		}
		restricted, err := prob.Restrict(e.cfg.Fleet)
		if err != nil {
			return err
		}
		deadline := int(math.Ceil(float64(restricted.MinTime()) * t.SlackFactor))
		plan, deadline, err := solveWithRelax(restricted, deadline)
		if err != nil {
			return err
		}
		t.Full.CostUSD = plan.TotalCost
		t.Full.RuntimeSec = float64(plan.TotalTime)
		specs[i] = core.BatchJobSpec{
			Name:          fmt.Sprintf("r%d-t%d-%s", round, t.ID, t.Recipe.Name),
			Char:          char,
			Prob:          prob,
			DeadlineSec:   deadline,
			Recipe:        t.Recipe,
			ClockPeriodNs: t.ClockPeriodNs,
		}
	}
	bp, err := solveBatchWithRelax(specs, e.cfg.Fleet, core.BatchOptions{Cache: e.cfg.Store})
	if err != nil {
		return err
	}
	sched, err := core.ExecuteBatchPlan(e.cfg.Lib, specs, bp,
		core.CharacterizeOptions{Scale: e.cfg.Scale, Workers: e.cfg.Workers},
		e.cfg.Fleet.Clone(), false)
	if err != nil {
		return err
	}
	e.res.SpentUSD += sched.TotalCostUSD
	for i, t := range trials {
		jr := sched.Jobs[i]
		if jr.Err != nil {
			return fmt.Errorf("dse: full rung %s: %w", jr.Name, jr.Err)
		}
		t.Full.QoR = qor(jr.Run.Netlist.NumCells(), jr.Run.Timing.WNS, t.ClockPeriodNs)
		t.FullyEvaluated = true
		e.archive.Add(*t)
	}
	return nil
}

// qor folds timing quality into the cell count: a met clock scores the
// area alone; a violated one inflates it by the violation's share of
// the period, so a smaller-but-slower mapping cannot win on QoR alone.
func qor(cells int, wnsNs, clockNs float64) float64 {
	q := float64(cells)
	if wnsNs < 0 {
		q *= 1 - wnsNs/clockNs
	}
	return q
}

// solveWithRelax prices one trial's nominal plan, doubling an
// infeasible deadline up to three times before falling back to the
// always-feasible under-provision horizon. The relax sequence depends
// only on the choice table, never on the cache.
func solveWithRelax(prob *core.DeploymentProblem, deadline int) (*core.Plan, int, error) {
	d := deadline
	for attempt := 0; attempt < 3; attempt++ {
		plan, err := prob.Optimize(d)
		if err != nil {
			return nil, 0, err
		}
		if plan.Feasible {
			return plan, d, nil
		}
		d *= 2
	}
	d = prob.UnderProvision().TotalTime
	plan, err := prob.Optimize(d)
	if err != nil {
		return nil, 0, err
	}
	if !plan.Feasible {
		return nil, 0, fmt.Errorf("dse: %s infeasible even at the under-provision horizon", prob.Design)
	}
	return plan, d, nil
}

// solveBatchWithRelax co-optimizes the promoted batch, doubling every
// deadline up to three times on joint infeasibility (fleet contention
// can starve deadlines that are feasible solo), then dropping to
// deadline-free. Cache contents never influence the solve — specs
// carry no hit predictions — so warm and blind explorations price and
// execute identical plans.
func solveBatchWithRelax(specs []core.BatchJobSpec, fleet *cloud.Fleet, opts core.BatchOptions) (*core.BatchPlan, error) {
	bp, err := core.OptimizeBatchOpts(specs, fleet, opts)
	if err != nil {
		return nil, err
	}
	for attempt := 0; !bp.Feasible && attempt < 3; attempt++ {
		for i := range specs {
			specs[i].DeadlineSec *= 2
		}
		if bp, err = core.OptimizeBatchOpts(specs, fleet, opts); err != nil {
			return nil, err
		}
	}
	if !bp.Feasible {
		for i := range specs {
			specs[i].DeadlineSec = 0
		}
		if bp, err = core.OptimizeBatchOpts(specs, fleet, opts); err != nil {
			return nil, err
		}
		if !bp.Feasible {
			return nil, fmt.Errorf("dse: deadline-free batch infeasible on the fleet")
		}
	}
	return bp, nil
}
