package dse

import "sort"

// Objectives is one trial's score vector. All three axes are
// minimized: QoR is the mapped cell count inflated by a timing-
// violation penalty, CostUSD and RuntimeSec are the trial's nominal
// deployment-plan bill and wall clock at its chosen slack. Objectives
// are deliberately cache-independent — a warm artifact store changes
// what a trial *bills*, never how it *scores* — which is what makes
// the search trajectory a pure function of the seed.
type Objectives struct {
	QoR        float64
	CostUSD    float64
	RuntimeSec float64
}

// vector flattens the objectives for axis-generic arithmetic.
func (o Objectives) vector() [3]float64 { return [3]float64{o.QoR, o.CostUSD, o.RuntimeSec} }

// Dominates reports Pareto dominance: a is no worse than b on every
// objective and strictly better on at least one.
func (a Objectives) Dominates(b Objectives) bool {
	av, bv := a.vector(), b.vector()
	strict := false
	for i := range av {
		if av[i] > bv[i] {
			return false
		}
		if av[i] < bv[i] {
			strict = true
		}
	}
	return strict
}

// nonDominatedRanks assigns each point its Pareto front index: rank 0
// points are dominated by nobody, rank 1 only by rank 0 points, and so
// on (the NSGA-style peeling). O(n^2) per front, fine at exploration
// population sizes.
func nonDominatedRanks(objs []Objectives) []int {
	n := len(objs)
	rank := make([]int, n)
	for i := range rank {
		rank[i] = -1
	}
	assigned := 0
	for r := 0; assigned < n; r++ {
		var front []int
		for i := 0; i < n; i++ {
			if rank[i] >= 0 {
				continue
			}
			dominated := false
			for j := 0; j < n; j++ {
				if j == i || rank[j] >= 0 {
					continue
				}
				if objs[j].Dominates(objs[i]) {
					dominated = true
					break
				}
			}
			if !dominated {
				front = append(front, i)
			}
		}
		for _, i := range front {
			rank[i] = r
		}
		assigned += len(front)
	}
	return rank
}

// scalarize collapses an objective vector to one deterministic number
// for tie-breaking inside a front: each axis min-max normalized over
// the cohort, then summed. Degenerate axes (all equal) contribute 0.
func scalarize(objs []Objectives) []float64 {
	if len(objs) == 0 {
		return nil
	}
	lo, hi := objs[0].vector(), objs[0].vector()
	for _, o := range objs[1:] {
		v := o.vector()
		for i := range v {
			if v[i] < lo[i] {
				lo[i] = v[i]
			}
			if v[i] > hi[i] {
				hi[i] = v[i]
			}
		}
	}
	out := make([]float64, len(objs))
	for k, o := range objs {
		v := o.vector()
		s := 0.0
		for i := range v {
			if hi[i] > lo[i] {
				s += (v[i] - lo[i]) / (hi[i] - lo[i])
			}
		}
		out[k] = s
	}
	return out
}

// promote selects k of the cohort for the next rung, whole Pareto
// fronts first (rank 0, then rank 1, ...) with the front that
// straddles the cut ordered by scalarized score and then input index.
// Taking fronts wholesale is what makes the successive-halving
// invariant structural: a pruned sibling can never dominate a promoted
// trial, because domination forces a strictly lower rank and lower
// ranks are exhausted before higher ones.
func promote(objs []Objectives, k int) []int {
	n := len(objs)
	if k >= n {
		out := make([]int, n)
		for i := range out {
			out[i] = i
		}
		return out
	}
	if k <= 0 {
		return nil
	}
	rank := nonDominatedRanks(objs)
	scalar := scalarize(objs)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		ia, ib := order[a], order[b]
		if rank[ia] != rank[ib] {
			return rank[ia] < rank[ib]
		}
		if scalar[ia] != scalar[ib] {
			return scalar[ia] < scalar[ib]
		}
		return ia < ib
	})
	picked := append([]int(nil), order[:k]...)
	sort.Ints(picked)
	return picked
}

// Archive is the evolving Pareto set of fully evaluated trials. The
// invariant — no archived point dominates another — holds after every
// Add, and insertion order never matters for the final contents.
type Archive struct {
	points []Trial
}

// Add offers a fully evaluated trial to the archive. A trial dominated
// by (or duplicating the objectives of) an archived point is rejected;
// otherwise it enters and every point it dominates leaves. Returns
// whether the trial was admitted.
func (a *Archive) Add(t Trial) bool {
	for _, p := range a.points {
		if p.Full.Dominates(t.Full) || p.Full == t.Full {
			return false
		}
	}
	kept := a.points[:0]
	for _, p := range a.points {
		if !t.Full.Dominates(p.Full) {
			kept = append(kept, p)
		}
	}
	a.points = append(kept, t)
	return true
}

// Points returns the archive sorted by (QoR, CostUSD, RuntimeSec, ID)
// — a canonical order independent of insertion history.
func (a *Archive) Points() []Trial {
	out := append([]Trial(nil), a.points...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Full.QoR != out[j].Full.QoR {
			return out[i].Full.QoR < out[j].Full.QoR
		}
		if out[i].Full.CostUSD != out[j].Full.CostUSD {
			return out[i].Full.CostUSD < out[j].Full.CostUSD
		}
		if out[i].Full.RuntimeSec != out[j].Full.RuntimeSec {
			return out[i].Full.RuntimeSec < out[j].Full.RuntimeSec
		}
		return out[i].ID < out[j].ID
	})
	return out
}
