package dse

import (
	"reflect"
	"sync"
	"testing"

	"edacloud/internal/cache"
	"edacloud/internal/cloud"
	"edacloud/internal/core"
	"edacloud/internal/gcn"
	"edacloud/internal/synth"
	"edacloud/internal/techlib"
)

var lib = techlib.Default14nm()

var (
	predOnce sync.Once
	predOut  *core.Predictor
	predErr  error
)

// testPredictor trains one tiny runtime predictor for the whole test
// binary — predictions only need to be deterministic and positive for
// the search mechanics under test, not accurate.
func testPredictor(t *testing.T) *core.Predictor {
	t.Helper()
	predOnce.Do(func() {
		ds, err := core.BuildDataset(lib, core.DatasetOptions{
			Benchmarks: []string{"adder", "bar", "dec"},
			Recipes:    synth.StandardRecipes[:1],
			Scale:      0.05,
		})
		if err != nil {
			predErr = err
			return
		}
		cfg := gcn.Config{Hidden1: 8, Hidden2: 6, FCHidden: 6, LR: 3e-3, Epochs: 5}
		predOut, _, predErr = core.TrainPredictor(ds, cfg, 0.34, 7)
	})
	if predErr != nil {
		t.Fatal(predErr)
	}
	return predOut
}

func testFleet(t *testing.T) *cloud.Fleet {
	t.Helper()
	fleet, err := cloud.ParseFleetSpec(cloud.DefaultCatalog(), "gp.1x=1,gp.2x=1,mem.1x=1,mem.2x=1")
	if err != nil {
		t.Fatal(err)
	}
	return fleet
}

// testConfig builds a small but complete exploration: two rounds of
// four candidates, one full evaluation per round.
func testConfig(t *testing.T, seed int64, workers int, store *cache.Store) Config {
	t.Helper()
	return Config{
		Design:     "dyn_node",
		Scale:      0.02,
		MaxPasses:  3,
		Population: 4,
		Eta:        4,
		Rounds:     2,
		Seed:       seed,
		Workers:    workers,
		Fleet:      testFleet(t),
		Catalog:    cloud.DefaultCatalog(),
		Lib:        lib,
		Predictor:  testPredictor(t),
		Store:      store,
	}
}

// TestExploreDeterministicAcrossWorkers: the whole result — trials,
// objectives, archive, bills — is a pure function of the seed, for any
// host worker count.
func TestExploreDeterministicAcrossWorkers(t *testing.T) {
	for _, seed := range []int64{1, 4} {
		base, err := Explore(testConfig(t, seed, 1, nil))
		if err != nil {
			t.Fatal(err)
		}
		if base.Sampled == 0 || base.Evaluated == 0 || len(base.Front) == 0 {
			t.Fatalf("seed %d: degenerate exploration: %+v", seed, base)
		}
		for _, workers := range []int{2, 8} {
			got, err := Explore(testConfig(t, seed, workers, nil))
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(base, got) {
				t.Fatalf("seed %d: workers=%d diverged from workers=1\nbase: %+v\ngot:  %+v",
					seed, workers, base, got)
			}
		}
	}
}

// TestExploreFrontNonDominated: the returned Pareto front never
// contains a dominated point, and re-running the same seed reproduces
// the archive bit-for-bit (seed determinism of the archive).
func TestExploreFrontNonDominated(t *testing.T) {
	for _, seed := range []int64{2, 9} {
		res, err := Explore(testConfig(t, seed, 4, nil))
		if err != nil {
			t.Fatal(err)
		}
		for i := range res.Front {
			if !res.Front[i].FullyEvaluated {
				t.Fatalf("seed %d: archived trial %d never fully evaluated", seed, res.Front[i].ID)
			}
			for j := range res.Front {
				if i != j && res.Front[i].Full.Dominates(res.Front[j].Full) {
					t.Fatalf("seed %d: front point %d dominates front point %d", seed, i, j)
				}
			}
		}
		again, err := Explore(testConfig(t, seed, 4, nil))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(res.Front, again.Front) {
			t.Fatalf("seed %d: archive not seed-deterministic", seed)
		}
	}
}

// TestExploreObjectivesCacheIndependent: a warm store changes what an
// exploration bills, never what its trials score — trial sequence,
// objectives and archive are bit-identical warm vs blind, and the warm
// bill never exceeds the blind bill over the same rounds.
func TestExploreObjectivesCacheIndependent(t *testing.T) {
	blind, err := Explore(testConfig(t, 3, 4, nil))
	if err != nil {
		t.Fatal(err)
	}
	store := cache.New(0)
	warm, err := Explore(testConfig(t, 3, 4, store))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(blind.Trials, warm.Trials) {
		t.Fatal("store contents leaked into trial objectives")
	}
	if !reflect.DeepEqual(blind.Front, warm.Front) {
		t.Fatal("store contents leaked into the archive")
	}
	if warm.SpentUSD > blind.SpentUSD+1e-9 {
		t.Fatalf("warm bill $%.6f exceeds blind bill $%.6f", warm.SpentUSD, blind.SpentUSD)
	}
	if warm.CacheStats.Hits == 0 {
		t.Fatal("warm exploration never hit its own cache")
	}
}

// TestWarmCacheNeverCompletesFewerTrials is the tentpole's economic
// claim, stated as a 50-seed property: under the same simulated
// budget, a cache-enabled exploration completes at least as many full
// trial evaluations as a cache-blind one — never fewer — and strictly
// more for some seeds. The budget is set per seed to exactly the blind
// run's first-round spend, the point where any cache dividend decides
// whether a second round is affordable.
func TestWarmCacheNeverCompletesFewerTrials(t *testing.T) {
	if testing.Short() {
		t.Skip("property sweep")
	}
	strict := 0
	for seed := int64(0); seed < 50; seed++ {
		pilot, err := Explore(testConfig(t, seed, 4, nil))
		if err != nil {
			t.Fatal(err)
		}
		budget := pilot.RoundSpentUSD[0]

		blindCfg := testConfig(t, seed, 4, nil)
		blindCfg.BudgetUSD = budget
		blind, err := Explore(blindCfg)
		if err != nil {
			t.Fatal(err)
		}
		warmCfg := testConfig(t, seed, 4, cache.New(0))
		warmCfg.BudgetUSD = budget
		warm, err := Explore(warmCfg)
		if err != nil {
			t.Fatal(err)
		}

		if blind.Rounds != 1 {
			t.Fatalf("seed %d: blind run should stop after round 1 at its own round-1 spend, ran %d", seed, blind.Rounds)
		}
		if warm.Evaluated < blind.Evaluated {
			t.Fatalf("seed %d: warm completed %d trials, blind %d — cache must never cost trials",
				seed, warm.Evaluated, blind.Evaluated)
		}
		if warm.Evaluated > blind.Evaluated {
			strict++
		}
		// The rounds both runs execute are the same search: the shared
		// prefix of the trial sequence is bit-identical.
		n := len(blind.Trials)
		if len(warm.Trials) < n {
			t.Fatalf("seed %d: warm sampled fewer trials than blind", seed)
		}
		if !reflect.DeepEqual(blind.Trials, warm.Trials[:n]) {
			t.Fatalf("seed %d: warm trial prefix diverged from blind", seed)
		}
	}
	if strict == 0 {
		t.Fatal("cache dividend never bought a single extra round across 50 seeds")
	}
	t.Logf("warm strictly ahead on %d/50 seeds", strict)
}
