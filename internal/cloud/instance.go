// Package cloud models the cloud-provider substrate of the paper: a
// catalog of VM instance types (general-purpose and memory-optimized
// families at 1/2/4/8 vCPUs), an AWS-style per-second on-demand billing
// model, and a Linux-cgroups-like fair-share CPU scheduler that
// reproduces the multi-tenancy interference of shared hosts.
package cloud

import (
	"fmt"
	"math"
)

// Family is an instance family with a characteristic resource balance.
type Family int

// Instance families. The paper's recommendations map synthesis and STA
// onto general-purpose instances and placement and routing onto
// memory-optimized instances (its Sec. III.A takeaways).
const (
	GeneralPurpose   Family = iota // balanced compute/memory ("m5"-like)
	MemoryOptimized                // high memory-to-core ratio ("r5"-like)
	ComputeOptimized               // high clock, AVX ("c5"-like)
)

func (f Family) String() string {
	switch f {
	case GeneralPurpose:
		return "general-purpose"
	case MemoryOptimized:
		return "memory-optimized"
	case ComputeOptimized:
		return "compute-optimized"
	}
	return fmt.Sprintf("family(%d)", int(f))
}

// InstanceType describes one rentable VM configuration.
type InstanceType struct {
	Name   string
	Family Family
	VCPUs  int
	MemGiB float64
	// AVX reports whether the underlying processor exposes 256-bit
	// vector extensions; the catalog's general-purpose family is backed
	// by older silicon without them, which is what makes the paper's
	// "run placement on AVX hardware" recommendation actionable.
	AVX bool
	// LLCSliceMiB is the last-level-cache slice accompanying each vCPU.
	LLCSliceMiB float64
	// PricePerHour is the on-demand price in USD.
	PricePerHour float64
	// MinBillSec is the minimum billing granularity in seconds: any
	// lease shorter than this is billed as if it ran this long (AWS
	// per-second billing carries a 60 s minimum). 0 means pure
	// per-second billing with no floor.
	MinBillSec float64
	// Revocable marks spot/preemptible capacity: the provider may
	// reclaim the instance mid-lease (see RevocationModel). On-demand
	// types are never revoked.
	Revocable bool
	// OnDemand names the on-demand counterpart of a revocable type —
	// the escalation target when a job gives up on spot capacity.
	// Empty for on-demand types.
	OnDemand string
}

// Cost returns the billed USD amount for occupying the instance for the
// given runtime. Cloud billing is per second with no fractions — the
// paper leans on this to make its knapsack times integral — so the
// runtime is rounded up to whole seconds, and never below the
// instance's minimum billing granularity.
func (it InstanceType) Cost(seconds float64) float64 {
	if seconds <= 0 {
		return 0
	}
	billed := math.Ceil(seconds)
	if billed < it.MinBillSec {
		billed = it.MinBillSec
	}
	return billed * it.PricePerHour / 3600
}

// Catalog is a set of instance types queryable by family and size.
type Catalog struct {
	Types []InstanceType
}

// familyPricing captures the linear base + per-vCPU on-demand pricing
// the AWS tables exhibit within one family.
type familyPricing struct {
	prefix  string
	family  Family
	memPer  float64 // GiB per vCPU
	avx     bool
	llcMiB  float64
	base    float64 // USD/h fixed component
	perVCPU float64 // USD/h per vCPU
}

// DefaultCatalog returns the instance catalog used throughout the
// reproduction. Prices are calibrated to the cost columns of the
// paper's Table I (general-purpose ~= $0.094/h at 1 vCPU rising to
// ~$0.40/h at 8; memory-optimized ~= $0.11/h to ~$0.54/h).
func DefaultCatalog() *Catalog {
	fams := []familyPricing{
		{"gp", GeneralPurpose, 4, false, 2, 0.050, 0.044},
		{"mem", MemoryOptimized, 8, true, 2, 0.052, 0.060},
		{"cpu", ComputeOptimized, 2, true, 2, 0.040, 0.040},
	}
	var c Catalog
	for _, f := range fams {
		for _, v := range []int{1, 2, 4, 8} {
			c.Types = append(c.Types, InstanceType{
				Name:         fmt.Sprintf("%s.%dx", f.prefix, v),
				Family:       f.family,
				VCPUs:        v,
				MemGiB:       f.memPer * float64(v),
				AVX:          f.avx,
				LLCSliceMiB:  f.llcMiB,
				PricePerHour: f.base + f.perVCPU*float64(v),
			})
		}
	}
	return &c
}

// ByName returns the named instance type, or an error.
func (c *Catalog) ByName(name string) (InstanceType, error) {
	for _, it := range c.Types {
		if it.Name == name {
			return it, nil
		}
	}
	return InstanceType{}, fmt.Errorf("cloud: no instance type %q", name)
}

// Sizes returns the instance types of one family ordered by vCPUs.
func (c *Catalog) Sizes(f Family) []InstanceType {
	var out []InstanceType
	for _, it := range c.Types {
		if it.Family == f {
			out = append(out, it)
		}
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].VCPUs < out[j-1].VCPUs; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// WithMinBill returns a copy of the catalog whose every instance type
// bills with the given minimum granularity (seconds). The default
// catalog bills purely per second so the paper's Table I calibration
// is untouched; fleets that model realistic short-lease billing opt in
// through this.
func (c *Catalog) WithMinBill(seconds float64) *Catalog {
	out := &Catalog{Types: append([]InstanceType(nil), c.Types...)}
	for i := range out.Types {
		out.Types[i].MinBillSec = seconds
	}
	return out
}

// WithSpot returns a copy of the catalog extended with a spot-priced
// variant of every on-demand type: "<name>.spot", the same hardware at
// the given fractional discount (0.7 means 70% off on-demand), marked
// Revocable and pointing back at its OnDemand counterpart. Variants
// are appended after the originals, so family/size lookups (Size,
// Sizes first-match behavior) and every existing name keep resolving
// to on-demand capacity; spot is only ever an explicit opt-in.
func (c *Catalog) WithSpot(discount float64) (*Catalog, error) {
	if discount <= 0 || discount >= 1 {
		return nil, fmt.Errorf("cloud: spot discount %g outside (0,1)", discount)
	}
	out := &Catalog{Types: append([]InstanceType(nil), c.Types...)}
	for _, it := range c.Types {
		if it.Revocable {
			continue // never derive spot-of-spot
		}
		spot := it
		spot.Name = it.Name + ".spot"
		spot.PricePerHour = it.PricePerHour * (1 - discount)
		spot.Revocable = true
		spot.OnDemand = it.Name
		out.Types = append(out.Types, spot)
	}
	return out, nil
}

// Size returns the instance of the given family and vCPU count.
func (c *Catalog) Size(f Family, vcpus int) (InstanceType, error) {
	for _, it := range c.Types {
		if it.Family == f && it.VCPUs == vcpus {
			return it, nil
		}
	}
	return InstanceType{}, fmt.Errorf("cloud: no %v instance with %d vCPUs", f, vcpus)
}
