package cloud

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// This file models the bounded side of the paper's deployment problem:
// a batch of flows does not rent an unlimited number of VMs — it
// contends for a finite fleet. A Fleet is that pool: a fixed set of
// rentable instances, each with a busy timeline of leases and a
// utilization/cost ledger. The flow scheduler's event loop acquires
// and books instances against simulated time; everything here is plain
// deterministic arithmetic, so a schedule built on a Fleet is
// bit-identical for any real worker count.

// Lease is one booked interval on a fleet instance: one stage (or one
// whole single-instance flow) of one job.
type Lease struct {
	Job   string
	Stage string
	// StartSec/EndSec bound the interval in simulated seconds.
	StartSec, EndSec float64
	// CostUSD is the bill for the interval under the instance type's
	// per-second pricing and minimum billing granularity.
	CostUSD float64
	// Revoked marks a lease truncated by a spot revocation: the
	// instance was reclaimed at RevokedAt (== EndSec), the work past it
	// was lost, and the ledger bills only up to that point.
	Revoked   bool
	RevokedAt float64
}

// FleetInstance is one rentable machine of a fleet.
type FleetInstance struct {
	// ID labels the instance uniquely within its fleet, e.g. "mem.8x#1".
	ID   string
	Type InstanceType
	// FreeAtSec is the simulated time the instance next becomes
	// available (the end of its last lease).
	FreeAtSec float64
	// BusySec totals leased time; CostUSD totals the bills.
	BusySec float64
	CostUSD float64
	Leases  []Lease
}

// Fleet is a bounded pool of rentable instances.
type Fleet struct {
	Instances []*FleetInstance
	// Revocation, when non-nil, injects seeded spot revocations into
	// Book and Extend: a lease overlapping a revocation event of its
	// (revocable) instance is truncated there and billed only up to
	// the event. nil — or a zero-hazard model — never truncates.
	Revocation *RevocationModel
}

// FleetEntry sizes one slice of a fleet: Count instances of one type.
type FleetEntry struct {
	Type  InstanceType
	Count int
}

// NewFleet builds a fleet from typed entries. Instances are numbered
// per type in entry order, so the pool layout — and therefore every
// tie-break in Acquire — is deterministic.
func NewFleet(entries ...FleetEntry) *Fleet {
	f := &Fleet{}
	seen := map[string]int{}
	for _, e := range entries {
		for i := 0; i < e.Count; i++ {
			n := seen[e.Type.Name]
			seen[e.Type.Name]++
			f.Instances = append(f.Instances, &FleetInstance{
				ID:   fmt.Sprintf("%s#%d", e.Type.Name, n),
				Type: e.Type,
			})
		}
	}
	return f
}

// ParseFleetSpec builds a fleet from a "name=count,name=count" spec
// against a catalog, e.g. "gp.4x=2,mem.8x=1". A bare name means one
// instance.
func ParseFleetSpec(catalog *Catalog, spec string) (*Fleet, error) {
	var entries []FleetEntry
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, countStr, hasCount := strings.Cut(part, "=")
		count := 1
		if hasCount {
			v, err := strconv.Atoi(strings.TrimSpace(countStr))
			if err != nil || v < 1 {
				return nil, fmt.Errorf("cloud: bad fleet count in %q", part)
			}
			count = v
		}
		it, err := catalog.ByName(strings.TrimSpace(name))
		if err != nil {
			return nil, err
		}
		entries = append(entries, FleetEntry{Type: it, Count: count})
	}
	if len(entries) == 0 {
		return nil, fmt.Errorf("cloud: empty fleet spec %q", spec)
	}
	return NewFleet(entries...), nil
}

// Acquire returns the index of the instance of the named type (any
// type when typeName is empty) that can start work earliest at or
// after readySec, and that start time. Ties break toward the lowest
// instance index, so grants are a pure function of the fleet state.
func (f *Fleet) Acquire(typeName string, readySec float64) (int, float64, error) {
	best, bestStart := -1, 0.0
	for i, inst := range f.Instances {
		if typeName != "" && inst.Type.Name != typeName {
			continue
		}
		start := inst.FreeAtSec
		if start < readySec {
			start = readySec
		}
		if best < 0 || start < bestStart {
			best, bestStart = i, start
		}
	}
	if best < 0 {
		if typeName == "" {
			return 0, 0, fmt.Errorf("cloud: fleet has no instances")
		}
		return 0, 0, fmt.Errorf("cloud: fleet has no %q instances", typeName)
	}
	return best, bestStart, nil
}

// Book leases instance idx for [startSec, startSec+durSec), billing it
// under the instance type's pricing, and returns the lease index. The
// start must not precede the instance's free time. Under a revocation
// model, a revocation event inside the interval truncates the lease
// there: the instance is reclaimed, the bill covers only the time up
// to the event, and the replacement capacity is free again at the
// event time (the provider refills the pool). Callers detect the cut
// via the returned lease's Revoked flag.
func (f *Fleet) Book(idx int, job, stage string, startSec, durSec float64) int {
	inst := f.Instances[idx]
	end := startSec + durSec
	l := Lease{
		Job: job, Stage: stage,
		StartSec: startSec,
		EndSec:   end,
	}
	if rev, ok := f.nextRevocation(inst, startSec); ok && rev < end {
		l.EndSec = rev
		l.Revoked = true
		l.RevokedAt = rev
	}
	l.CostUSD = inst.Type.Cost(l.EndSec - l.StartSec)
	inst.Leases = append(inst.Leases, l)
	inst.FreeAtSec = l.EndSec
	inst.BusySec += l.EndSec - l.StartSec
	inst.CostUSD = instanceCost(inst)
	return len(inst.Leases) - 1
}

// nextRevocation asks the fleet's model (if any) for the instance's
// first revocation strictly after afterSec.
func (f *Fleet) nextRevocation(inst *FleetInstance, afterSec float64) (float64, bool) {
	if f.Revocation == nil {
		return 0, false
	}
	return f.Revocation.NextRevocation(inst, afterSec)
}

// Extend stretches instance idx's latest lease by durSec — a job
// holding its machine across consecutive stages instead of releasing
// it — appending the stage to the lease label and re-billing the whole
// interval. It returns the marginal cost of the extension. Under a
// revocation model the extension can be truncated just like a fresh
// booking: the earlier part of the lease already survived (Book and
// prior Extends checked their own intervals), so only an event inside
// the new segment cuts it, marking the whole lease Revoked.
func (f *Fleet) Extend(idx int, stage string, durSec float64) float64 {
	inst := f.Instances[idx]
	l := &inst.Leases[len(inst.Leases)-1]
	before := l.CostUSD
	prevEnd := l.EndSec
	l.EndSec += durSec
	l.Stage += "+" + stage
	if rev, ok := f.nextRevocation(inst, prevEnd); ok && rev < l.EndSec {
		l.EndSec = rev
		l.Revoked = true
		l.RevokedAt = rev
	}
	l.CostUSD = inst.Type.Cost(l.EndSec - l.StartSec)
	inst.FreeAtSec = l.EndSec
	inst.BusySec += l.EndSec - prevEnd
	inst.CostUSD = instanceCost(inst)
	return l.CostUSD - before
}

// instanceCost re-sums an instance's lease bills so the ledger equals
// the exact sum of final lease costs regardless of extension order.
func instanceCost(inst *FleetInstance) float64 {
	var c float64
	for _, l := range inst.Leases {
		c += l.CostUSD
	}
	return c
}

// Lease returns one lease of one instance.
func (f *Fleet) Lease(idx, lease int) Lease { return f.Instances[idx].Leases[lease] }

// TotalCostUSD sums the fleet bill over all instances.
func (f *Fleet) TotalCostUSD() float64 {
	var c float64
	for _, inst := range f.Instances {
		c += inst.CostUSD
	}
	return c
}

// HorizonSec returns the end of the latest lease in the fleet — the
// schedule's makespan as the fleet saw it.
func (f *Fleet) HorizonSec() float64 {
	var h float64
	for _, inst := range f.Instances {
		if inst.FreeAtSec > h {
			h = inst.FreeAtSec
		}
	}
	return h
}

// Utilization returns busy time over capacity across the fleet for the
// given horizon (0 means HorizonSec): 1.0 is a fleet with no idle
// gaps. An unused fleet reports 0.
func (f *Fleet) Utilization(horizonSec float64) float64 {
	if horizonSec <= 0 {
		horizonSec = f.HorizonSec()
	}
	if horizonSec <= 0 || len(f.Instances) == 0 {
		return 0
	}
	var busy float64
	for _, inst := range f.Instances {
		busy += inst.BusySec
	}
	return busy / (horizonSec * float64(len(f.Instances)))
}

// Reset clears every timeline and ledger, returning the fleet to an
// unused state so it can back another schedule.
func (f *Fleet) Reset() {
	for _, inst := range f.Instances {
		inst.FreeAtSec = 0
		inst.BusySec = 0
		inst.CostUSD = 0
		inst.Leases = nil
	}
}

// LedgerRow is one line of the fleet's utilization/cost summary.
type LedgerRow struct {
	ID      string
	Leases  int
	BusySec float64
	CostUSD float64
	// UtilizationPct is the instance's busy share of the fleet horizon.
	UtilizationPct float64
}

// Ledger summarizes per-instance usage, ordered by instance index, for
// the given horizon (0 means HorizonSec).
func (f *Fleet) Ledger(horizonSec float64) []LedgerRow {
	if horizonSec <= 0 {
		horizonSec = f.HorizonSec()
	}
	rows := make([]LedgerRow, len(f.Instances))
	for i, inst := range f.Instances {
		rows[i] = LedgerRow{
			ID:      inst.ID,
			Leases:  len(inst.Leases),
			BusySec: inst.BusySec,
			CostUSD: inst.CostUSD,
		}
		if horizonSec > 0 {
			rows[i].UtilizationPct = 100 * inst.BusySec / horizonSec
		}
	}
	return rows
}

// Profile returns the fleet's capacity profile: the distinct instance
// types present with their counts, in first-appearance order. It is
// the form a batch optimizer consumes — per-type capacity constraints
// — and, fed back through NewFleet, reproduces a fleet whose
// within-type instance ordering (and therefore every typed Acquire
// tie-break) matches this one.
func (f *Fleet) Profile() []FleetEntry {
	var entries []FleetEntry
	index := map[string]int{}
	for _, inst := range f.Instances {
		if i, ok := index[inst.Type.Name]; ok {
			entries[i].Count++
			continue
		}
		index[inst.Type.Name] = len(entries)
		entries = append(entries, FleetEntry{Type: inst.Type, Count: 1})
	}
	return entries
}

// Clone returns an unused copy of the fleet: the same instance
// sequence — IDs, types, order, so every Acquire tie-break matches —
// with fresh timelines and ledgers. A schedule forecast books leases
// on a clone without dirtying the fleet the real run will use. The
// revocation model is shared, not copied: its timelines are a pure
// function of (seed, instance ID), so the clone sees exactly the
// revocations the original will — the property that makes forecasts
// under faults bit-exact.
func (f *Fleet) Clone() *Fleet {
	out := &Fleet{
		Instances:  make([]*FleetInstance, len(f.Instances)),
		Revocation: f.Revocation,
	}
	for i, inst := range f.Instances {
		out.Instances[i] = &FleetInstance{ID: inst.ID, Type: inst.Type}
	}
	return out
}

// Snapshot returns a deep copy of the fleet including every lease and
// ledger total — unlike Clone, which returns an unused twin. A serving
// layer trial-books a re-plan on a snapshot and adopts or discards the
// whole fleet state atomically. The revocation model is shared, not
// copied, for the same reason Clone shares it: its timelines are a pure
// function of (seed, instance ID).
func (f *Fleet) Snapshot() *Fleet {
	out := &Fleet{
		Instances:  make([]*FleetInstance, len(f.Instances)),
		Revocation: f.Revocation,
	}
	for i, inst := range f.Instances {
		cp := *inst
		cp.Leases = append([]Lease(nil), inst.Leases...)
		out.Instances[i] = &cp
	}
	return out
}

// ReleaseFrom cancels every lease that has not started by tSec —
// reservations for future work — and recomputes each instance's
// free-time, busy and cost ledgers from the leases that remain. Leases
// already running at tSec (start < tSec) stand untouched, ends and all:
// a booked stage runs to completion once started (its checkpoint is the
// stage boundary). This is the rolling-horizon seam: a re-optimizer
// releases the uncommitted tail of the schedule and re-books it against
// the fleet's remaining capacity. It returns the number of leases
// released.
func (f *Fleet) ReleaseFrom(tSec float64) int {
	released := 0
	for _, inst := range f.Instances {
		kept := inst.Leases[:0]
		for _, l := range inst.Leases {
			if l.StartSec >= tSec {
				released++
				continue
			}
			kept = append(kept, l)
		}
		inst.Leases = kept
		inst.FreeAtSec = 0
		inst.BusySec = 0
		for _, l := range inst.Leases {
			if l.EndSec > inst.FreeAtSec {
				inst.FreeAtSec = l.EndSec
			}
			inst.BusySec += l.EndSec - l.StartSec
		}
		inst.CostUSD = instanceCost(inst)
	}
	return released
}

// TypeByName returns the instance type of the given name present in
// the fleet — the lookup a retry policy uses to escalate a revoked
// stage from a spot type to its on-demand counterpart, which only
// works when the fleet actually holds such machines.
func (f *Fleet) TypeByName(name string) (InstanceType, bool) {
	for _, inst := range f.Instances {
		if inst.Type.Name == name {
			return inst.Type, true
		}
	}
	return InstanceType{}, false
}

// Types lists the distinct instance type names present in the fleet,
// sorted, with counts — the menu a scheduling policy can choose from.
func (f *Fleet) Types() map[string]int {
	out := map[string]int{}
	for _, inst := range f.Instances {
		out[inst.Type.Name]++
	}
	return out
}

// String renders a compact spec of the fleet ("gp.4x=2,mem.8x=1").
func (f *Fleet) String() string {
	counts := f.Types()
	names := make([]string, 0, len(counts))
	for n := range counts {
		names = append(names, n)
	}
	sort.Strings(names)
	parts := make([]string, len(names))
	for i, n := range names {
		parts[i] = fmt.Sprintf("%s=%d", n, counts[n])
	}
	return strings.Join(parts, ",")
}
