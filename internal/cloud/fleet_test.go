package cloud

import (
	"math"
	"testing"
)

func testFleet(t *testing.T) *Fleet {
	t.Helper()
	c := DefaultCatalog()
	gp, err := c.ByName("gp.4x")
	if err != nil {
		t.Fatal(err)
	}
	mem, err := c.ByName("mem.8x")
	if err != nil {
		t.Fatal(err)
	}
	return NewFleet(FleetEntry{Type: gp, Count: 2}, FleetEntry{Type: mem, Count: 1})
}

func TestNewFleetLayout(t *testing.T) {
	f := testFleet(t)
	if len(f.Instances) != 3 {
		t.Fatalf("%d instances, want 3", len(f.Instances))
	}
	for i, want := range []string{"gp.4x#0", "gp.4x#1", "mem.8x#0"} {
		if f.Instances[i].ID != want {
			t.Fatalf("instance %d ID %q, want %q", i, f.Instances[i].ID, want)
		}
	}
	if f.String() != "gp.4x=2,mem.8x=1" {
		t.Fatalf("fleet spec %q", f.String())
	}
	if n := f.Types()["gp.4x"]; n != 2 {
		t.Fatalf("Types gp.4x = %d", n)
	}
}

func TestParseFleetSpec(t *testing.T) {
	c := DefaultCatalog()
	f, err := ParseFleetSpec(c, "gp.4x=2, mem.8x")
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Instances) != 3 || f.String() != "gp.4x=2,mem.8x=1" {
		t.Fatalf("parsed fleet %q with %d instances", f.String(), len(f.Instances))
	}
	for _, bad := range []string{"", "nope=1", "gp.4x=0", "gp.4x=x"} {
		if _, err := ParseFleetSpec(c, bad); err == nil {
			t.Fatalf("spec %q accepted", bad)
		}
	}
}

func TestAcquireEarliestFreeDeterministicTies(t *testing.T) {
	f := testFleet(t)
	// Fresh fleet: ties break toward the lowest index.
	idx, start, err := f.Acquire("gp.4x", 0)
	if err != nil || idx != 0 || start != 0 {
		t.Fatalf("Acquire = %d @ %g, %v", idx, start, err)
	}
	f.Book(idx, "a", "synthesis", start, 100)
	// First gp instance busy until 100: the second wins.
	idx, start, err = f.Acquire("gp.4x", 10)
	if err != nil || idx != 1 || start != 10 {
		t.Fatalf("Acquire = %d @ %g, %v", idx, start, err)
	}
	f.Book(idx, "b", "synthesis", start, 200)
	// Both busy: earliest-free wins; start clamps to the free time.
	idx, start, err = f.Acquire("gp.4x", 0)
	if err != nil || idx != 0 || start != 100 {
		t.Fatalf("Acquire = %d @ %g, %v", idx, start, err)
	}
	// Any-type acquisition may pick the idle memory instance.
	idx, start, err = f.Acquire("", 5)
	if err != nil || idx != 2 || start != 5 {
		t.Fatalf("Acquire(any) = %d @ %g, %v", idx, start, err)
	}
	if _, _, err := f.Acquire("cpu.8x", 0); err == nil {
		t.Fatal("absent type accepted")
	}
	if _, _, err := (&Fleet{}).Acquire("", 0); err == nil {
		t.Fatal("empty fleet accepted")
	}
}

func TestBookAndLedger(t *testing.T) {
	f := testFleet(t)
	li := f.Book(0, "a", "synthesis", 0, 90.5)
	l := f.Lease(0, li)
	if l.Job != "a" || l.StartSec != 0 || l.EndSec != 90.5 {
		t.Fatalf("lease %+v", l)
	}
	if want := f.Instances[0].Type.Cost(90.5); l.CostUSD != want {
		t.Fatalf("lease cost %g, want %g", l.CostUSD, want)
	}
	f.Book(2, "b", "routing", 10, 200)
	if got := f.TotalCostUSD(); math.Abs(got-(l.CostUSD+f.Instances[2].Type.Cost(200))) > 1e-12 {
		t.Fatalf("fleet bill %g", got)
	}
	if f.HorizonSec() != 210 {
		t.Fatalf("horizon %g", f.HorizonSec())
	}
	// Busy 90.5+200 over 3 instances x 210s horizon.
	if got, want := f.Utilization(0), (90.5+200)/(3*210.0); math.Abs(got-want) > 1e-12 {
		t.Fatalf("utilization %g, want %g", got, want)
	}
	rows := f.Ledger(0)
	if len(rows) != 3 || rows[0].Leases != 1 || rows[1].Leases != 0 || rows[2].BusySec != 200 {
		t.Fatalf("ledger %+v", rows)
	}
	f.Reset()
	if f.TotalCostUSD() != 0 || f.HorizonSec() != 0 || len(f.Instances[0].Leases) != 0 {
		t.Fatal("Reset left state behind")
	}
}

func TestExtendRebillsWholeLease(t *testing.T) {
	f := testFleet(t)
	f.Book(0, "a", "synthesis", 0, 40)
	delta := f.Extend(0, "placement", 30)
	l := f.Lease(0, 0)
	if l.EndSec != 70 || l.Stage != "synthesis+placement" {
		t.Fatalf("extended lease %+v", l)
	}
	typ := f.Instances[0].Type
	if want := typ.Cost(70); l.CostUSD != want {
		t.Fatalf("extended cost %g, want %g", l.CostUSD, want)
	}
	if want := typ.Cost(70) - typ.Cost(40); math.Abs(delta-want) > 1e-12 {
		t.Fatalf("marginal %g, want %g", delta, want)
	}
	if f.Instances[0].FreeAtSec != 70 || f.Instances[0].BusySec != 70 {
		t.Fatalf("instance state %+v", f.Instances[0])
	}
}

// TestMinBillGranularity: the fleet ledger floors short leases at the
// billing minimum, and extensions only start costing once the lease
// grows past it.
func TestMinBillGranularity(t *testing.T) {
	c := DefaultCatalog().WithMinBill(60)
	it, err := c.ByName("gp.1x")
	if err != nil {
		t.Fatal(err)
	}
	// Sub-minimum runtimes bill the floor; longer ones per second.
	if got, want := it.Cost(0.2), 60*it.PricePerHour/3600; math.Abs(got-want) > 1e-12 {
		t.Fatalf("Cost(0.2) = %g, want %g", got, want)
	}
	if got, want := it.Cost(59.9), 60*it.PricePerHour/3600; math.Abs(got-want) > 1e-12 {
		t.Fatalf("Cost(59.9) = %g, want %g", got, want)
	}
	if got, want := it.Cost(120.5), 121*it.PricePerHour/3600; math.Abs(got-want) > 1e-12 {
		t.Fatalf("Cost(120.5) = %g, want %g", got, want)
	}
	if it.Cost(0) != 0 {
		t.Fatal("zero runtime should still cost nothing")
	}

	f := NewFleet(FleetEntry{Type: it, Count: 1})
	f.Book(0, "a", "sta", 0, 10)
	if got := f.Lease(0, 0).CostUSD; math.Abs(got-it.Cost(60)) > 1e-12 {
		t.Fatalf("short lease billed %g, want the 60 s floor", got)
	}
	// Growing to 30 s stays inside the floor: zero marginal cost.
	if delta := f.Extend(0, "sta2", 20); math.Abs(delta) > 1e-12 {
		t.Fatalf("extension inside the floor billed %g", delta)
	}
	// Growing past the floor bills the excess.
	delta := f.Extend(0, "sta3", 45)
	if want := it.Cost(75) - it.Cost(60); math.Abs(delta-want) > 1e-12 {
		t.Fatalf("past-floor extension billed %g, want %g", delta, want)
	}
	if got := f.TotalCostUSD(); math.Abs(got-it.Cost(75)) > 1e-12 {
		t.Fatalf("ledger total %g, want %g", got, it.Cost(75))
	}
}

// TestFleetProfileAndClone: the capacity profile preserves
// first-appearance type order with counts, and a clone replays every
// typed Acquire tie-break of the original while starting unused.
func TestFleetProfileAndClone(t *testing.T) {
	c := DefaultCatalog()
	gp, err := c.ByName("gp.4x")
	if err != nil {
		t.Fatal(err)
	}
	mem, err := c.ByName("mem.8x")
	if err != nil {
		t.Fatal(err)
	}
	// Interleaved entries: the profile collapses counts but keeps
	// first-appearance order and within-type instance order.
	f := NewFleet(
		FleetEntry{Type: gp, Count: 1},
		FleetEntry{Type: mem, Count: 1},
		FleetEntry{Type: gp, Count: 2},
	)
	prof := f.Profile()
	if len(prof) != 2 || prof[0].Type.Name != "gp.4x" || prof[0].Count != 3 ||
		prof[1].Type.Name != "mem.8x" || prof[1].Count != 1 {
		t.Fatalf("profile = %+v", prof)
	}

	f.Book(0, "a", "synthesis", 0, 100)
	clone := f.Clone()
	if len(clone.Instances) != len(f.Instances) {
		t.Fatalf("clone has %d instances, want %d", len(clone.Instances), len(f.Instances))
	}
	for i, inst := range clone.Instances {
		orig := f.Instances[i]
		if inst.ID != orig.ID || inst.Type.Name != orig.Type.Name {
			t.Fatalf("clone instance %d = %s/%s, want %s/%s",
				i, inst.ID, inst.Type.Name, orig.ID, orig.Type.Name)
		}
		if inst.FreeAtSec != 0 || inst.BusySec != 0 || inst.CostUSD != 0 || inst.Leases != nil {
			t.Fatalf("clone instance %d not pristine: %+v", i, inst)
		}
	}
	// The original's lease survives the cloning untouched.
	if len(f.Instances[0].Leases) != 1 || f.Instances[0].FreeAtSec != 100 {
		t.Fatal("cloning disturbed the original fleet")
	}
	// Same tie-breaks: booking the clone like the (pre-lease) original
	// grants the same instance indices.
	wantIdx, wantStart, err := clone.Acquire("gp.4x", 0)
	if err != nil {
		t.Fatal(err)
	}
	if wantIdx != 0 || wantStart != 0 {
		t.Fatalf("clone Acquire granted %d@%g, want 0@0", wantIdx, wantStart)
	}
}

func TestSnapshotDeepCopiesLeases(t *testing.T) {
	f := testFleet(t)
	f.Book(0, "a", "synthesis", 0, 100)
	f.Book(2, "b", "placement", 50, 200)

	snap := f.Snapshot()
	if len(snap.Instances) != len(f.Instances) {
		t.Fatalf("snapshot has %d instances, want %d", len(snap.Instances), len(f.Instances))
	}
	for i, inst := range snap.Instances {
		orig := f.Instances[i]
		if inst.ID != orig.ID || inst.FreeAtSec != orig.FreeAtSec ||
			inst.BusySec != orig.BusySec || inst.CostUSD != orig.CostUSD ||
			len(inst.Leases) != len(orig.Leases) {
			t.Fatalf("snapshot instance %d = %+v, want %+v", i, inst, orig)
		}
	}
	// Mutating the snapshot leaves the original untouched.
	snap.Book(1, "c", "routing", 0, 300)
	if len(f.Instances[1].Leases) != 0 || f.Instances[1].FreeAtSec != 0 {
		t.Fatal("booking the snapshot disturbed the original fleet")
	}
	// And vice versa.
	f.Book(0, "d", "sta", 100, 10)
	if len(snap.Instances[0].Leases) != 1 {
		t.Fatal("booking the original disturbed the snapshot")
	}
}

func TestReleaseFromCancelsFutureLeases(t *testing.T) {
	f := testFleet(t)
	f.Book(0, "a", "synthesis", 0, 100)   // running at t=50: stands
	f.Book(0, "a", "placement", 100, 50)  // starts at 100 >= 50: released
	f.Book(1, "b", "synthesis", 50, 100)  // starts exactly at 50: released
	f.Book(2, "c", "synthesis", 10, 20)   // finished before 50: stands

	if n := f.ReleaseFrom(50); n != 2 {
		t.Fatalf("released %d leases, want 2", n)
	}
	i0 := f.Instances[0]
	if len(i0.Leases) != 1 || i0.FreeAtSec != 100 || i0.BusySec != 100 {
		t.Fatalf("instance 0 after release: %+v", i0)
	}
	if want := i0.Type.Cost(100); math.Abs(i0.CostUSD-want) > 1e-12 {
		t.Fatalf("instance 0 cost %g, want %g", i0.CostUSD, want)
	}
	i1 := f.Instances[1]
	if len(i1.Leases) != 0 || i1.FreeAtSec != 0 || i1.BusySec != 0 || i1.CostUSD != 0 {
		t.Fatalf("instance 1 after release: %+v", i1)
	}
	i2 := f.Instances[2]
	if len(i2.Leases) != 1 || i2.FreeAtSec != 30 {
		t.Fatalf("instance 2 after release: %+v", i2)
	}
	// Releasing everything returns the fleet to an unused state.
	f.ReleaseFrom(0)
	for i, inst := range f.Instances {
		if len(inst.Leases) != 0 || inst.FreeAtSec != 0 || inst.BusySec != 0 || inst.CostUSD != 0 {
			t.Fatalf("instance %d not pristine after ReleaseFrom(0): %+v", i, inst)
		}
	}
}
