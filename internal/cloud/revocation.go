package cloud

import (
	"math"
	"sync"
)

// This file is the fault injector of the preemptible-capacity model:
// spot instances are cheap because the provider may reclaim them, and
// an optimizer that ignores that fact silently assumes infallible
// machines. A RevocationModel turns reclamation into deterministic,
// replayable data: every fleet instance gets its own revocation
// timeline — a pure function of (model seed, instance ID) — drawn as
// exponential inter-arrival gaps under the instance type's hazard
// rate. Because the timeline depends on nothing else, a forecast on a
// fleet Clone and the real execution see bit-identical revocations,
// which is what keeps the repo's forecast-matches-execution contract
// alive under faults.

// RevocationModel injects seeded, reproducible revocations into a
// fleet's revocable instances. The zero hazard map (or a nil model)
// never revokes anything, so attaching a zero-hazard model reproduces
// fault-free schedules byte for byte.
type RevocationModel struct {
	// Seed roots every per-instance random stream. Two models with the
	// same seed and hazards produce identical timelines.
	Seed int64
	// HazardPerHour maps instance-type names to expected revocations
	// per hour of wall time. Types absent from the map — and types not
	// marked Revocable — are never revoked.
	HazardPerHour map[string]float64

	mu        sync.Mutex
	timelines map[string]*revTimeline
}

// revTimeline is one instance's memoized revocation event stream:
// absolute simulated times, extended lazily and never regenerated, so
// queries are order-independent.
type revTimeline struct {
	rng    uint64
	last   float64
	events []float64
}

// NewRevocationModel builds a model from a seed and per-type hazards.
func NewRevocationModel(seed int64, hazardPerHour map[string]float64) *RevocationModel {
	return &RevocationModel{Seed: seed, HazardPerHour: hazardPerHour}
}

// UniformSpotHazards maps every revocable type of the catalog to one
// hazard rate — the common "all spot capacity is equally risky" setup
// the CLI flags expose.
func UniformSpotHazards(c *Catalog, ratePerHour float64) map[string]float64 {
	out := map[string]float64{}
	for _, it := range c.Types {
		if it.Revocable {
			out[it.Name] = ratePerHour
		}
	}
	return out
}

// Rate returns the hazard (revocations per hour) for an instance type:
// zero unless the type is revocable and carries a positive hazard.
func (m *RevocationModel) Rate(it InstanceType) float64 {
	if m == nil || !it.Revocable {
		return 0
	}
	r := m.HazardPerHour[it.Name]
	if r < 0 {
		return 0
	}
	return r
}

// NextRevocation returns the first revocation of the given instance
// strictly after afterSec, or ok=false when the instance is never
// revoked. The result is a pure function of (seed, hazards, instance
// ID, afterSec): timelines are memoized and extended monotonically, so
// interleaving queries across instances cannot change any answer.
func (m *RevocationModel) NextRevocation(inst *FleetInstance, afterSec float64) (float64, bool) {
	rate := m.Rate(inst.Type)
	if rate <= 0 {
		return 0, false
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.timelines == nil {
		m.timelines = map[string]*revTimeline{}
	}
	tl := m.timelines[inst.ID]
	if tl == nil {
		tl = &revTimeline{rng: streamSeed(m.Seed, inst.ID)}
		m.timelines[inst.ID] = tl
	}
	// Mean inter-arrival gap is 3600/rate seconds (Poisson arrivals).
	lambda := rate / 3600
	for tl.last <= afterSec {
		gap := -math.Log(uniform01(&tl.rng)) / lambda
		tl.last += gap
		tl.events = append(tl.events, tl.last)
	}
	for _, t := range tl.events {
		if t > afterSec {
			return t, true
		}
	}
	// Unreachable: the loop above extended the stream past afterSec.
	return tl.last, true
}

// streamSeed derives an instance's private PRNG state by folding its
// ID into the model seed (FNV-1a) and scrambling with splitmix64, so
// "gp.4x.spot#0" and "gp.4x.spot#1" get decorrelated streams.
func streamSeed(seed int64, id string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(id); i++ {
		h ^= uint64(id[i])
		h *= 1099511628211
	}
	return splitmix64(h ^ uint64(seed))
}

// splitmix64 is the standard 64-bit finalizer; it doubles as the
// step function of the per-instance stream.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// uniform01 draws from (0, 1] — never 0, so -log stays finite — and
// advances the stream state.
func uniform01(state *uint64) float64 {
	*state = splitmix64(*state)
	// 53 mantissa bits; +1 shifts the support off exact zero.
	return (float64(*state>>11) + 1) / (1 << 53)
}
