package cloud

import "fmt"

// The paper simulates multi-tenancy by confining EDA jobs with Linux
// Control Groups on a 14-core Xeon host. This file reproduces the
// relevant scheduler behaviour: weighted fair sharing of host cores
// with optional hard quotas, computed by progressive filling (the
// steady-state allocation of CFS bandwidth control).

// CGroup is one tenant's CPU controller settings plus its offered load.
type CGroup struct {
	Name string
	// Shares is the cpu.shares weight (default 1024).
	Shares int
	// QuotaCores caps the group's CPU consumption in cores
	// (cpu.cfs_quota_us / cpu.cfs_period_us); 0 means unlimited.
	QuotaCores float64
	// DemandCores is the load the tenant tries to run (its runnable
	// threads).
	DemandCores float64
}

// Allocation is the scheduler's steady-state CPU grant for one group.
type Allocation struct {
	Name   string
	Demand float64
	Got    float64
	// Throttle is Got/Demand in (0,1]; 1 means no throttling.
	Throttle float64
}

// Slowdown returns the multiplicative runtime overhead the tenant
// experiences: extra-time fraction Demand/Got - 1, so 0 means no
// interference.
func (a Allocation) Slowdown() float64 {
	if a.Demand <= 0 {
		return 0
	}
	if a.Got <= 0 {
		return 1e9
	}
	return a.Demand/a.Got - 1
}

// Host is a physical machine shared by tenant cgroups.
type Host struct {
	Cores int
}

// DefaultHost mirrors the paper's characterization machine: a 14-core
// Xeon E5-2680.
func DefaultHost() Host { return Host{Cores: 14} }

// Schedule computes the steady-state CPU allocation of the groups on
// the host using progressive filling: capacity is repeatedly divided
// among unsatisfied groups in proportion to their shares, capping each
// group at min(demand, quota). The returned allocations preserve input
// order.
func (h Host) Schedule(groups []CGroup) ([]Allocation, error) {
	if h.Cores <= 0 {
		return nil, fmt.Errorf("cloud: host has no cores")
	}
	out := make([]Allocation, len(groups))
	type state struct {
		idx    int
		weight float64
		cap    float64 // min(demand, quota)
		got    float64
	}
	states := make([]*state, 0, len(groups))
	var active []*state
	for i, g := range groups {
		if g.Shares < 0 || g.QuotaCores < 0 || g.DemandCores < 0 {
			return nil, fmt.Errorf("cloud: cgroup %q has negative settings", g.Name)
		}
		shares := g.Shares
		if shares == 0 {
			shares = 1024
		}
		lim := g.DemandCores
		if g.QuotaCores > 0 && g.QuotaCores < lim {
			lim = g.QuotaCores
		}
		out[i] = Allocation{Name: g.Name, Demand: g.DemandCores, Throttle: 1}
		if lim > 0 {
			s := &state{idx: i, weight: float64(shares), cap: lim}
			states = append(states, s)
			active = append(active, s)
		}
	}
	remaining := float64(h.Cores)
	for len(active) > 0 && remaining > 1e-12 {
		var totalW float64
		for _, s := range active {
			totalW += s.weight
		}
		// The proportional fill rate (cores per unit weight) is limited
		// by the first group to saturate its cap.
		fill := remaining / totalW
		saturating := false
		for _, s := range active {
			if need := (s.cap - s.got) / s.weight; need < fill {
				fill = need
				saturating = true
			}
		}
		var used float64
		next := active[:0]
		for _, s := range active {
			grant := fill * s.weight
			s.got += grant
			used += grant
			if s.cap-s.got > 1e-12 {
				next = append(next, s)
			}
		}
		active = next
		remaining -= used
		if !saturating {
			break // everyone got the proportional share of the remainder
		}
	}
	for _, s := range states {
		out[s.idx].Got = s.got
		if out[s.idx].Demand > 0 {
			t := s.got / out[s.idx].Demand
			if t > 1 {
				t = 1
			}
			out[s.idx].Throttle = t
		}
	}
	return out, nil
}

// Interference returns the slowdown factor an EDA job with the given
// vCPU demand experiences on the host when the listed background
// tenants are also runnable. The job runs with default shares and a
// quota equal to its demand (the paper's cgroup confinement).
func (h Host) Interference(jobCores float64, background []CGroup) (float64, error) {
	groups := append([]CGroup{{
		Name:        "eda-job",
		QuotaCores:  jobCores,
		DemandCores: jobCores,
	}}, background...)
	alloc, err := h.Schedule(groups)
	if err != nil {
		return 0, err
	}
	return alloc[0].Slowdown(), nil
}
