package cloud

import (
	"math"
	"reflect"
	"testing"
)

func spotCatalog(t *testing.T) *Catalog {
	t.Helper()
	c, err := DefaultCatalog().WithSpot(0.7)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestWithSpotCatalogShape(t *testing.T) {
	base := DefaultCatalog()
	c := spotCatalog(t)
	if got, want := len(c.Types), 2*len(base.Types); got != want {
		t.Fatalf("spot catalog has %d types, want %d", got, want)
	}
	spot, err := c.ByName("gp.4x.spot")
	if err != nil {
		t.Fatal(err)
	}
	od, err := c.ByName("gp.4x")
	if err != nil {
		t.Fatal(err)
	}
	if !spot.Revocable || spot.OnDemand != "gp.4x" {
		t.Fatalf("spot variant not marked revocable with on-demand link: %+v", spot)
	}
	if od.Revocable || od.OnDemand != "" {
		t.Fatalf("on-demand type contaminated: %+v", od)
	}
	if spot.VCPUs != od.VCPUs || spot.AVX != od.AVX || spot.MemGiB != od.MemGiB {
		t.Fatal("spot variant changed the hardware, not just the price")
	}
	if want := od.PricePerHour * 0.3; math.Abs(spot.PricePerHour-want) > 1e-12 {
		t.Fatalf("spot price %g, want %g", spot.PricePerHour, want)
	}
	// Family/size lookups must still resolve to on-demand capacity.
	it, err := c.Size(GeneralPurpose, 4)
	if err != nil {
		t.Fatal(err)
	}
	if it.Name != "gp.4x" {
		t.Fatalf("Size resolved to %q, want the on-demand gp.4x", it.Name)
	}
	if _, err := c.WithSpot(0); err == nil {
		t.Fatal("discount 0 accepted")
	}
	if _, err := c.WithSpot(1); err == nil {
		t.Fatal("discount 1 accepted")
	}
	// Spot-of-spot must not appear on a second application.
	c2, err := c.WithSpot(0.5)
	if err != nil {
		t.Fatal(err)
	}
	for _, it := range c2.Types {
		if _, err := c2.ByName(it.Name + ".spot.spot"); err == nil {
			t.Fatalf("derived spot-of-spot from %q", it.Name)
		}
	}
}

// TestRevocationTimelinesDeterministic: timelines are a pure function
// of (seed, instance ID) — query order, interleaving across instances,
// and model recreation cannot change any event.
func TestRevocationTimelinesDeterministic(t *testing.T) {
	c := spotCatalog(t)
	mk := func() (*RevocationModel, *Fleet) {
		f, err := ParseFleetSpec(c, "gp.4x.spot=2,mem.8x.spot=1")
		if err != nil {
			t.Fatal(err)
		}
		m := NewRevocationModel(42, UniformSpotHazards(c, 6))
		f.Revocation = m
		return m, f
	}
	m1, f1 := mk()
	m2, f2 := mk()

	// Forward scan on model 1, scattered queries on model 2.
	var fwd []float64
	at := 0.0
	for i := 0; i < 5; i++ {
		tnext, ok := m1.NextRevocation(f1.Instances[0], at)
		if !ok {
			t.Fatal("hazard >0 produced no events")
		}
		if tnext <= at {
			t.Fatalf("event %g not after %g", tnext, at)
		}
		fwd = append(fwd, tnext)
		at = tnext
	}
	// Interleave other instances' queries, then ask the same questions.
	m2.NextRevocation(f2.Instances[2], 1e6)
	m2.NextRevocation(f2.Instances[1], 5000)
	at = 0.0
	for i := 0; i < 5; i++ {
		tnext, ok := m2.NextRevocation(f2.Instances[0], at)
		if !ok || tnext != fwd[i] {
			t.Fatalf("event %d: %g vs %g — timeline not a pure function", i, tnext, fwd[i])
		}
		at = tnext
	}

	// Distinct instances of one type get decorrelated streams.
	a, _ := m1.NextRevocation(f1.Instances[0], 0)
	b, _ := m1.NextRevocation(f1.Instances[1], 0)
	if a == b {
		t.Fatalf("instances share a stream: first event %g for both", a)
	}

	// Different seed, different timeline.
	m3 := NewRevocationModel(43, UniformSpotHazards(c, 6))
	c3, _ := m3.NextRevocation(f1.Instances[0], 0)
	if c3 == a {
		t.Fatal("seed does not enter the stream")
	}

	// On-demand types and zero-hazard models never revoke.
	od, err := c.ByName("gp.4x")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := m1.NextRevocation(&FleetInstance{ID: "gp.4x#0", Type: od}, 0); ok {
		t.Fatal("on-demand instance revoked")
	}
	zero := NewRevocationModel(42, nil)
	if _, ok := zero.NextRevocation(f1.Instances[0], 0); ok {
		t.Fatal("zero-hazard model revoked")
	}
}

// TestBookTruncatesAtRevocation: a lease overlapping a revocation event
// ends there, bills only the survived interval, and frees the
// (replaced) instance at the event time.
func TestBookTruncatesAtRevocation(t *testing.T) {
	c := spotCatalog(t)
	f, err := ParseFleetSpec(c, "gp.4x.spot=1")
	if err != nil {
		t.Fatal(err)
	}
	m := NewRevocationModel(7, UniformSpotHazards(c, 6))
	f.Revocation = m

	rev, ok := m.NextRevocation(f.Instances[0], 0)
	if !ok {
		t.Fatal("no revocation events")
	}
	dur := rev + 100 // guaranteed to straddle the first event
	li := f.Book(0, "job", "synthesis", 0, dur)
	l := f.Lease(0, li)
	if !l.Revoked || l.RevokedAt != rev || l.EndSec != rev {
		t.Fatalf("lease not truncated at %g: %+v", rev, l)
	}
	inst := f.Instances[0]
	if want := inst.Type.Cost(rev); l.CostUSD != want {
		t.Fatalf("truncated lease billed %g, want %g (up to revocation only)", l.CostUSD, want)
	}
	if inst.FreeAtSec != rev {
		t.Fatalf("instance free at %g, want the revocation time %g", inst.FreeAtSec, rev)
	}
	if inst.BusySec != rev {
		t.Fatalf("busy %g, want %g", inst.BusySec, rev)
	}
	if inst.CostUSD != l.CostUSD {
		t.Fatalf("ledger %g vs lease sum %g", inst.CostUSD, l.CostUSD)
	}

	// A booking that fits entirely before the next event survives.
	next, ok := m.NextRevocation(inst, rev)
	if !ok {
		t.Fatal("stream ended")
	}
	gap := next - rev
	li = f.Book(0, "job", "synthesis", rev, gap/2)
	if l := f.Lease(0, li); l.Revoked {
		t.Fatalf("lease inside the survival gap revoked: %+v", l)
	}
}

// TestExtendTruncatesAtRevocation: only an event inside the extension
// segment cuts a held lease; the surviving prefix stays billed.
func TestExtendTruncatesAtRevocation(t *testing.T) {
	c := spotCatalog(t)
	f, err := ParseFleetSpec(c, "mem.8x.spot=1")
	if err != nil {
		t.Fatal(err)
	}
	m := NewRevocationModel(11, UniformSpotHazards(c, 6))
	f.Revocation = m
	inst := f.Instances[0]

	rev, ok := m.NextRevocation(inst, 0)
	if !ok {
		t.Fatal("no events")
	}
	// Book a surviving prefix, then extend across the event.
	first := rev / 2
	li := f.Book(0, "job", "synthesis", 0, first)
	if f.Lease(0, li).Revoked {
		t.Fatal("prefix revoked")
	}
	marginal := f.Extend(0, "placement", rev) // would end at 1.5*rev
	l := f.Lease(0, li)
	if !l.Revoked || l.RevokedAt != rev || l.EndSec != rev {
		t.Fatalf("extension not truncated at %g: %+v", rev, l)
	}
	if want := inst.Type.Cost(rev); l.CostUSD != want {
		t.Fatalf("lease billed %g, want %g", l.CostUSD, want)
	}
	if want := inst.Type.Cost(rev) - inst.Type.Cost(first); math.Abs(marginal-want) > 1e-12 {
		t.Fatalf("marginal %g, want %g", marginal, want)
	}
	if inst.BusySec != rev || inst.FreeAtSec != rev {
		t.Fatalf("busy/free %g/%g, want %g/%g", inst.BusySec, inst.FreeAtSec, rev, rev)
	}
}

// TestZeroHazardFleetIdentical: attaching a zero-hazard model changes
// nothing — bookings, ledgers and clones match a model-free fleet
// field for field.
func TestZeroHazardFleetIdentical(t *testing.T) {
	c := spotCatalog(t)
	run := func(attach bool) *Fleet {
		f, err := ParseFleetSpec(c, "gp.4x.spot=2,gp.4x=1")
		if err != nil {
			t.Fatal(err)
		}
		if attach {
			f.Revocation = NewRevocationModel(42, nil)
		}
		f.Book(0, "a", "synthesis", 0, 300)
		f.Book(1, "b", "synthesis", 10, 500)
		f.Extend(1, "placement", 200)
		f.Book(2, "c", "sta", 0, 50)
		return f
	}
	plain, modeled := run(false), run(true)
	for i := range plain.Instances {
		if !reflect.DeepEqual(*plain.Instances[i], *modeled.Instances[i]) {
			t.Fatalf("instance %d differs under zero hazard:\n%+v\n%+v",
				i, *plain.Instances[i], *modeled.Instances[i])
		}
	}
	// Clone shares the model so forecasts replay the same timelines.
	modeled.Revocation = NewRevocationModel(42, UniformSpotHazards(c, 6))
	clone := modeled.Clone()
	if clone.Revocation != modeled.Revocation {
		t.Fatal("clone does not share the revocation model")
	}
}
