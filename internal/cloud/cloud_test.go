package cloud

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDefaultCatalogShape(t *testing.T) {
	c := DefaultCatalog()
	if len(c.Types) != 12 {
		t.Fatalf("catalog has %d types, want 12", len(c.Types))
	}
	for _, f := range []Family{GeneralPurpose, MemoryOptimized, ComputeOptimized} {
		sizes := c.Sizes(f)
		if len(sizes) != 4 {
			t.Fatalf("%v: %d sizes", f, len(sizes))
		}
		for i, it := range sizes {
			want := 1 << i
			if it.VCPUs != want {
				t.Errorf("%v size %d: vCPUs %d, want %d", f, i, it.VCPUs, want)
			}
			if it.PricePerHour <= 0 || it.MemGiB <= 0 {
				t.Errorf("%s: non-positive price or memory", it.Name)
			}
		}
		// Prices strictly increase with size within a family.
		for i := 1; i < len(sizes); i++ {
			if sizes[i].PricePerHour <= sizes[i-1].PricePerHour {
				t.Errorf("%v: price not increasing at %s", f, sizes[i].Name)
			}
		}
	}
	// Memory-optimized carries more memory per vCPU than general-purpose.
	gp, _ := c.Size(GeneralPurpose, 4)
	mem, _ := c.Size(MemoryOptimized, 4)
	if mem.MemGiB <= gp.MemGiB {
		t.Error("memory-optimized not memory-richer than general-purpose")
	}
	if !mem.AVX || gp.AVX {
		t.Error("AVX flags: want memory-optimized AVX, general-purpose non-AVX")
	}
}

func TestCatalogLookups(t *testing.T) {
	c := DefaultCatalog()
	it, err := c.ByName("gp.4x")
	if err != nil || it.VCPUs != 4 || it.Family != GeneralPurpose {
		t.Fatalf("ByName(gp.4x) = %+v, %v", it, err)
	}
	if _, err := c.ByName("nope"); err == nil {
		t.Fatal("ByName on absent type should error")
	}
	if _, err := c.Size(MemoryOptimized, 3); err == nil {
		t.Fatal("Size with absent vCPU count should error")
	}
	if GeneralPurpose.String() == "" || Family(99).String() == "" {
		t.Fatal("empty family string")
	}
}

func TestPerSecondBilling(t *testing.T) {
	c := DefaultCatalog()
	it, _ := c.Size(GeneralPurpose, 1)
	// 3600 seconds bills exactly one hour.
	if got := it.Cost(3600); math.Abs(got-it.PricePerHour) > 1e-12 {
		t.Fatalf("Cost(3600) = %g, want %g", got, it.PricePerHour)
	}
	// Fractional seconds round up.
	if got, want := it.Cost(0.2), it.PricePerHour/3600; math.Abs(got-want) > 1e-12 {
		t.Fatalf("Cost(0.2) = %g, want %g", got, want)
	}
	if it.Cost(0) != 0 || it.Cost(-5) != 0 {
		t.Fatal("non-positive runtime should cost nothing")
	}
}

// Property: billing is monotone and per-second granular.
func TestQuickBillingMonotone(t *testing.T) {
	it := InstanceType{PricePerHour: 0.36}
	f := func(a, b float64) bool {
		a, b = math.Abs(a), math.Abs(b)
		if a > b {
			a, b = b, a
		}
		return it.Cost(a) <= it.Cost(b)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestScheduleSingleTenant(t *testing.T) {
	h := DefaultHost()
	alloc, err := h.Schedule([]CGroup{{Name: "only", DemandCores: 4}})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(alloc[0].Got-4) > 1e-9 || alloc[0].Throttle != 1 {
		t.Fatalf("single tenant alloc = %+v", alloc[0])
	}
	if alloc[0].Slowdown() != 0 {
		t.Fatalf("idle-host slowdown = %g", alloc[0].Slowdown())
	}
}

func TestScheduleEqualSharesSplitEvenly(t *testing.T) {
	h := Host{Cores: 8}
	alloc, err := h.Schedule([]CGroup{
		{Name: "a", DemandCores: 8},
		{Name: "b", DemandCores: 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(alloc[0].Got-4) > 1e-9 || math.Abs(alloc[1].Got-4) > 1e-9 {
		t.Fatalf("equal split failed: %+v", alloc)
	}
	if math.Abs(alloc[0].Slowdown()-1.0) > 1e-9 {
		t.Fatalf("slowdown = %g, want 1 (runs at half speed)", alloc[0].Slowdown())
	}
}

func TestScheduleSharesWeighting(t *testing.T) {
	h := Host{Cores: 6}
	alloc, err := h.Schedule([]CGroup{
		{Name: "heavy", Shares: 2048, DemandCores: 6},
		{Name: "light", Shares: 1024, DemandCores: 6},
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(alloc[0].Got-4) > 1e-9 || math.Abs(alloc[1].Got-2) > 1e-9 {
		t.Fatalf("2:1 shares split = %+v", alloc)
	}
}

func TestScheduleQuotaCaps(t *testing.T) {
	h := Host{Cores: 8}
	alloc, err := h.Schedule([]CGroup{
		{Name: "capped", QuotaCores: 2, DemandCores: 8},
		{Name: "free", DemandCores: 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(alloc[0].Got-2) > 1e-9 {
		t.Fatalf("quota not enforced: %+v", alloc[0])
	}
	// Freed capacity flows to the unconstrained tenant.
	if math.Abs(alloc[1].Got-6) > 1e-9 {
		t.Fatalf("spare capacity not redistributed: %+v", alloc[1])
	}
}

func TestScheduleUnderloadedHostSatisfiesAll(t *testing.T) {
	h := Host{Cores: 14}
	alloc, err := h.Schedule([]CGroup{
		{Name: "a", DemandCores: 3},
		{Name: "b", DemandCores: 2},
		{Name: "c", DemandCores: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range alloc {
		if math.Abs(a.Got-a.Demand) > 1e-9 {
			t.Fatalf("underloaded host throttled %s: %+v", a.Name, a)
		}
	}
}

func TestScheduleZeroDemandGroup(t *testing.T) {
	h := Host{Cores: 4}
	alloc, err := h.Schedule([]CGroup{
		{Name: "idle", DemandCores: 0},
		{Name: "busy", DemandCores: 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	if alloc[0].Got != 0 || alloc[0].Slowdown() != 0 {
		t.Fatalf("idle group alloc = %+v", alloc[0])
	}
	if math.Abs(alloc[1].Got-4) > 1e-9 {
		t.Fatalf("busy group alloc = %+v", alloc[1])
	}
}

func TestScheduleRejectsBadInput(t *testing.T) {
	if _, err := (Host{Cores: 0}).Schedule(nil); err == nil {
		t.Fatal("zero-core host accepted")
	}
	if _, err := DefaultHost().Schedule([]CGroup{{Name: "x", DemandCores: -1}}); err == nil {
		t.Fatal("negative demand accepted")
	}
}

// Property: allocations never exceed capacity, demand, or quota.
func TestQuickScheduleInvariants(t *testing.T) {
	h := Host{Cores: 14}
	f := func(d1, d2, d3 uint8, q2 uint8) bool {
		groups := []CGroup{
			{Name: "a", DemandCores: float64(d1 % 20)},
			{Name: "b", DemandCores: float64(d2 % 20), QuotaCores: float64(q2%8) + 0.5},
			{Name: "c", DemandCores: float64(d3 % 20), Shares: 512},
		}
		alloc, err := h.Schedule(groups)
		if err != nil {
			return false
		}
		var total float64
		for i, a := range alloc {
			total += a.Got
			if a.Got > a.Demand+1e-9 {
				return false
			}
			if groups[i].QuotaCores > 0 && a.Got > groups[i].QuotaCores+1e-9 {
				return false
			}
		}
		return total <= float64(h.Cores)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestInterferenceGrowsWithBackgroundLoad(t *testing.T) {
	h := DefaultHost()
	idle, err := h.Interference(8, nil)
	if err != nil {
		t.Fatal(err)
	}
	if idle != 0 {
		t.Fatalf("idle interference = %g", idle)
	}
	busy, err := h.Interference(8, []CGroup{
		{Name: "t1", DemandCores: 8},
		{Name: "t2", DemandCores: 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	if busy <= 0 {
		t.Fatalf("loaded-host interference = %g, want > 0", busy)
	}
	moreBusy, err := h.Interference(8, []CGroup{
		{Name: "t1", DemandCores: 14},
		{Name: "t2", DemandCores: 14},
		{Name: "t3", DemandCores: 14},
	})
	if err != nil {
		t.Fatal(err)
	}
	if moreBusy <= busy {
		t.Fatalf("interference not increasing: %g then %g", busy, moreBusy)
	}
}
