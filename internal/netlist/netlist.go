// Package netlist represents gate-level mapped netlists: standard cells
// from a technology library connected by single-driver nets. It is the
// shared currency between the synthesis engine (which produces
// netlists), the placer, router and STA engines (which consume them),
// and the GCN runtime predictor (which consumes the star-model graph
// export defined in graph.go).
package netlist

import (
	"fmt"

	"edacloud/internal/techlib"
)

// CellID identifies a cell instance within one netlist.
type CellID int32

// NetID identifies a net within one netlist.
type NetID int32

// NoCell and NoNet are sentinel identifiers.
const (
	NoCell CellID = -1
	NoNet  NetID  = -1
)

// PinRef addresses one input pin of one cell instance.
type PinRef struct {
	Cell CellID
	Pin  int32 // index into the cell type's Inputs
}

// Cell is a placed-or-unplaced standard-cell instance.
type Cell struct {
	Name string
	Type *techlib.Cell
	Ins  []NetID // input nets in pin order; NoNet when unconnected
	Out  NetID   // output net; NoNet when unconnected
}

// Net is a signal wire with a single driver and any number of sinks.
type Net struct {
	Name     string
	Driver   CellID // driving cell, or NoCell when driven by a PI
	DriverPI int32  // PI index when Driver == NoCell, else -1
	Sinks    []PinRef
	POs      []int32 // primary-output indices fed by this net
}

// Port is a primary input or output of the design.
type Port struct {
	Name string
	Net  NetID
}

// Netlist is a mapped gate-level design.
type Netlist struct {
	Name  string
	Lib   *techlib.Library
	Cells []Cell
	Nets  []Net
	PIs   []Port
	POs   []Port
}

// New returns an empty netlist bound to the given library.
func New(name string, lib *techlib.Library) *Netlist {
	return &Netlist{Name: name, Lib: lib}
}

// AddNet creates a new undriven net and returns its identifier.
func (n *Netlist) AddNet(name string) NetID {
	id := NetID(len(n.Nets))
	n.Nets = append(n.Nets, Net{Name: name, Driver: NoCell, DriverPI: -1})
	return id
}

// AddPI creates a primary input port driving a fresh net and returns
// the net.
func (n *Netlist) AddPI(name string) NetID {
	net := n.AddNet(name)
	n.Nets[net].DriverPI = int32(len(n.PIs))
	n.PIs = append(n.PIs, Port{Name: name, Net: net})
	return net
}

// AddPO registers net as a primary output.
func (n *Netlist) AddPO(name string, net NetID) {
	n.Nets[net].POs = append(n.Nets[net].POs, int32(len(n.POs)))
	n.POs = append(n.POs, Port{Name: name, Net: net})
}

// AddCell instantiates a cell of the given type. The input slice length
// must match the cell's pin count; out may be NoNet for sink-only
// pseudo-cells. Connectivity (net sink/driver lists) is updated.
func (n *Netlist) AddCell(name string, typ *techlib.Cell, ins []NetID, out NetID) (CellID, error) {
	if len(ins) != typ.NumInputs() {
		return NoCell, fmt.Errorf("netlist: cell %s of type %s: %d connections for %d pins",
			name, typ.Name, len(ins), typ.NumInputs())
	}
	id := CellID(len(n.Cells))
	c := Cell{Name: name, Type: typ, Ins: append([]NetID(nil), ins...), Out: out}
	n.Cells = append(n.Cells, c)
	for pin, net := range ins {
		if net == NoNet {
			continue
		}
		n.Nets[net].Sinks = append(n.Nets[net].Sinks, PinRef{Cell: id, Pin: int32(pin)})
	}
	if out != NoNet {
		if d := n.Nets[out].Driver; d != NoCell {
			return NoCell, fmt.Errorf("netlist: net %s already driven by cell %s",
				n.Nets[out].Name, n.Cells[d].Name)
		}
		if n.Nets[out].DriverPI >= 0 {
			return NoCell, fmt.Errorf("netlist: net %s already driven by a primary input", n.Nets[out].Name)
		}
		n.Nets[out].Driver = id
	}
	return id, nil
}

// MustAddCell is AddCell that panics on error; for use by generators
// with statically correct pin counts.
func (n *Netlist) MustAddCell(name string, typ *techlib.Cell, ins []NetID, out NetID) CellID {
	id, err := n.AddCell(name, typ, ins, out)
	if err != nil {
		panic(err)
	}
	return id
}

// NumCells returns the number of cell instances.
func (n *Netlist) NumCells() int { return len(n.Cells) }

// NumNets returns the number of nets.
func (n *Netlist) NumNets() int { return len(n.Nets) }

// Area returns the summed cell area.
func (n *Netlist) Area() float64 {
	var a float64
	for i := range n.Cells {
		a += n.Cells[i].Type.Area
	}
	return a
}

// NumSeq returns the number of sequential cells.
func (n *Netlist) NumSeq() int {
	k := 0
	for i := range n.Cells {
		if n.Cells[i].Type.Seq {
			k++
		}
	}
	return k
}

// Check validates structural invariants: every net is driven by exactly
// one source (cell, PI, or is explicitly floating with no sinks), pin
// references are in range, cell pin counts match their types, and the
// combinational core is acyclic.
func (n *Netlist) Check() error {
	for id := range n.Cells {
		c := &n.Cells[id]
		if len(c.Ins) != c.Type.NumInputs() {
			return fmt.Errorf("netlist: cell %s: %d connections for %d pins", c.Name, len(c.Ins), c.Type.NumInputs())
		}
		for pin, net := range c.Ins {
			if net != NoNet && (net < 0 || int(net) >= len(n.Nets)) {
				return fmt.Errorf("netlist: cell %s pin %d: net %d out of range", c.Name, pin, net)
			}
		}
		if c.Out != NoNet && n.Nets[c.Out].Driver != CellID(id) {
			return fmt.Errorf("netlist: cell %s: output net %s driver mismatch", c.Name, n.Nets[c.Out].Name)
		}
	}
	for id := range n.Nets {
		net := &n.Nets[id]
		if net.Driver != NoCell && net.DriverPI >= 0 {
			return fmt.Errorf("netlist: net %s has two drivers", net.Name)
		}
		if net.Driver == NoCell && net.DriverPI < 0 && len(net.Sinks)+len(net.POs) > 0 {
			return fmt.Errorf("netlist: net %s has sinks but no driver", net.Name)
		}
		for _, s := range net.Sinks {
			if s.Cell < 0 || int(s.Cell) >= len(n.Cells) {
				return fmt.Errorf("netlist: net %s: sink cell out of range", net.Name)
			}
			if n.Cells[s.Cell].Ins[s.Pin] != NetID(id) {
				return fmt.Errorf("netlist: net %s: sink back-reference mismatch", net.Name)
			}
		}
	}
	if _, err := n.TopoCells(); err != nil {
		return err
	}
	return nil
}

// TopoCells returns the cell instances in combinational topological
// order: a cell appears after the drivers of all its input nets.
// Sequential cell outputs are treated as sources (their D inputs are
// sinks), which breaks registered feedback loops. An error is returned
// when a purely combinational cycle exists.
func (n *Netlist) TopoCells() ([]CellID, error) {
	indeg := make([]int32, len(n.Cells))
	for id := range n.Cells {
		c := &n.Cells[id]
		if c.Type.Seq {
			continue // sequential outputs are level-0 sources
		}
		for _, net := range c.Ins {
			if net == NoNet {
				continue
			}
			d := n.Nets[net].Driver
			if d != NoCell && !n.Cells[d].Type.Seq {
				indeg[id]++
			}
		}
	}
	queue := make([]CellID, 0, len(n.Cells))
	for id := range n.Cells {
		if indeg[id] == 0 {
			queue = append(queue, CellID(id))
		}
	}
	order := make([]CellID, 0, len(n.Cells))
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		order = append(order, id)
		c := &n.Cells[id]
		if c.Out == NoNet {
			continue
		}
		for _, s := range n.Nets[c.Out].Sinks {
			if n.Cells[s.Cell].Type.Seq {
				continue
			}
			indeg[s.Cell]--
			if indeg[s.Cell] == 0 {
				queue = append(queue, s.Cell)
			}
		}
	}
	if len(order) != len(n.Cells) {
		return nil, fmt.Errorf("netlist: combinational cycle detected (%d of %d cells ordered)",
			len(order), len(n.Cells))
	}
	return order, nil
}

// Levels returns the combinational logic level of every cell: sequential
// cells and cells fed only by PIs are level 0; otherwise one more than
// the deepest combinational driver.
func (n *Netlist) Levels() ([]int32, error) {
	order, err := n.TopoCells()
	if err != nil {
		return nil, err
	}
	lv := make([]int32, len(n.Cells))
	for _, id := range order {
		c := &n.Cells[id]
		if c.Type.Seq {
			continue
		}
		var best int32 = -1
		for _, net := range c.Ins {
			if net == NoNet {
				continue
			}
			d := n.Nets[net].Driver
			if d == NoCell || n.Cells[d].Type.Seq {
				continue
			}
			if lv[d] > best {
				best = lv[d]
			}
		}
		lv[id] = best + 1
	}
	return lv, nil
}

// FanoutCounts returns per-cell output fanout (sink pins plus POs).
func (n *Netlist) FanoutCounts() []int {
	fo := make([]int, len(n.Cells))
	for id := range n.Cells {
		c := &n.Cells[id]
		if c.Out == NoNet {
			continue
		}
		fo[id] = len(n.Nets[c.Out].Sinks) + len(n.Nets[c.Out].POs)
	}
	return fo
}

// Stats summarizes a netlist.
type Stats struct {
	Cells  int
	Seq    int
	Nets   int
	PIs    int
	POs    int
	Area   float64
	Levels int
}

// Stats computes summary statistics; Levels is -1 for cyclic netlists.
func (n *Netlist) Stats() Stats {
	s := Stats{
		Cells: len(n.Cells),
		Seq:   n.NumSeq(),
		Nets:  len(n.Nets),
		PIs:   len(n.PIs),
		POs:   len(n.POs),
		Area:  n.Area(),
	}
	if lv, err := n.Levels(); err == nil {
		var max int32
		for _, l := range lv {
			if l > max {
				max = l
			}
		}
		s.Levels = int(max)
	} else {
		s.Levels = -1
	}
	return s
}

func (s Stats) String() string {
	return fmt.Sprintf("cells=%d (seq=%d) nets=%d pi/po=%d/%d area=%.1f levels=%d",
		s.Cells, s.Seq, s.Nets, s.PIs, s.POs, s.Area, s.Levels)
}
