package netlist

import "edacloud/internal/aig"

// Graph is the star-model directed-graph export of a netlist (or an
// AIG), the input representation of the paper's GCN predictor (its
// Fig. 4). Nodes are cell instances plus primary I/O pins; every net
// becomes a star of directed edges from the driving node to each sink
// node. Features carries one fixed-width feature vector per node.
type Graph struct {
	Name     string
	NumNodes int
	// Edges in compressed sparse row form: for node u, the successor
	// nodes are Succ[Start[u]:Start[u+1]].
	Start []int32
	Succ  []int32
	// Features is a NumNodes x FeatureDim matrix.
	Features [][]float64
}

// FeatureDim is the width of per-node feature vectors produced by the
// graph exports. Layout:
//
//	0: is primary input pin
//	1: is primary output pin
//	2: is sequential cell
//	3: is inverting gate (or AIG AND node)
//	4: fanin count (normalized by 4)
//	5: fanout count (log-scaled)
//	6: logic level (normalized by graph depth)
//	7: cell area (normalized; 0 for AIG nodes)
const FeatureDim = 8

// NumEdges returns the number of directed edges.
func (g *Graph) NumEdges() int { return len(g.Succ) }

// OutDegree returns the out-degree of node u.
func (g *Graph) OutDegree(u int) int { return int(g.Start[u+1] - g.Start[u]) }

// Successors returns the successor list of node u (shared storage).
func (g *Graph) Successors(u int) []int32 { return g.Succ[g.Start[u]:g.Start[u+1]] }

// edgeAccum builds CSR adjacency from an edge list in two passes.
type edgeAccum struct {
	n     int
	us    []int32
	vs    []int32
	count []int32
}

func newEdgeAccum(n int) *edgeAccum {
	return &edgeAccum{n: n, count: make([]int32, n+1)}
}

func (e *edgeAccum) add(u, v int32) {
	e.us = append(e.us, u)
	e.vs = append(e.vs, v)
	e.count[u+1]++
}

func (e *edgeAccum) build() ([]int32, []int32) {
	start := e.count
	for i := 0; i < e.n; i++ {
		start[i+1] += start[i]
	}
	succ := make([]int32, len(e.us))
	cursor := make([]int32, e.n)
	for i, u := range e.us {
		succ[start[u]+cursor[u]] = e.vs[i]
		cursor[u]++
	}
	return start, succ
}

// StarGraph exports the netlist as a star-model directed graph with GCN
// features. Node numbering: cells first (by CellID), then PI pins, then
// PO pins.
func (n *Netlist) StarGraph() *Graph {
	nCells := len(n.Cells)
	nNodes := nCells + len(n.PIs) + len(n.POs)
	piNode := func(pi int32) int32 { return int32(nCells) + pi }
	poNode := func(po int32) int32 { return int32(nCells+len(n.PIs)) + po }

	acc := newEdgeAccum(nNodes)
	for id := range n.Nets {
		net := &n.Nets[id]
		var src int32
		switch {
		case net.Driver != NoCell:
			src = int32(net.Driver)
		case net.DriverPI >= 0:
			src = piNode(net.DriverPI)
		default:
			continue // floating net
		}
		for _, s := range net.Sinks {
			acc.add(src, int32(s.Cell))
		}
		for _, po := range net.POs {
			acc.add(src, poNode(po))
		}
	}
	start, succ := acc.build()

	g := &Graph{
		Name:     n.Name,
		NumNodes: nNodes,
		Start:    start,
		Succ:     succ,
		Features: make([][]float64, nNodes),
	}

	levels, err := n.Levels()
	var maxLevel float64 = 1
	if err == nil {
		for _, l := range levels {
			if float64(l) > maxLevel {
				maxLevel = float64(l)
			}
		}
	}
	var maxArea float64 = 1e-9
	for _, c := range n.Lib.Cells {
		if c.Area > maxArea {
			maxArea = c.Area
		}
	}
	fo := n.FanoutCounts()

	for id := range n.Cells {
		c := &n.Cells[id]
		f := make([]float64, FeatureDim)
		if c.Type.Seq {
			f[2] = 1
		}
		if isInverting(c.Type.TT, c.Type.NumInputs()) && !c.Type.Seq {
			f[3] = 1
		}
		f[4] = float64(len(c.Ins)) / 4
		f[5] = logScale(float64(fo[id]))
		if err == nil {
			f[6] = float64(levels[id]) / maxLevel
		}
		f[7] = c.Type.Area / maxArea
		g.Features[id] = f
	}
	for i := range n.PIs {
		f := make([]float64, FeatureDim)
		f[0] = 1
		f[5] = logScale(float64(len(n.Nets[n.PIs[i].Net].Sinks)))
		g.Features[nCells+i] = f
	}
	for i := range n.POs {
		f := make([]float64, FeatureDim)
		f[1] = 1
		f[6] = 1
		g.Features[nCells+len(n.PIs)+i] = f
	}
	return g
}

// AIGGraph exports an And-Inverter Graph as a directed graph with the
// same feature layout, used by the synthesis-runtime predictor. Node
// numbering: AIG variables 1..N-1 (the constant node is dropped) then
// PO pseudo-nodes.
func AIGGraph(g *aig.Graph) *Graph {
	nVars := g.NumVars() - 1 // skip constant
	nNodes := nVars + g.NumOutputs()
	varNode := func(v int) int32 { return int32(v - 1) }

	acc := newEdgeAccum(nNodes)
	g.TopoAnds(func(v int, f0, f1 aig.Lit) {
		if f0.Var() != 0 {
			acc.add(varNode(f0.Var()), varNode(v))
		}
		if f1.Var() != 0 {
			acc.add(varNode(f1.Var()), varNode(v))
		}
	})
	outs := g.Outputs()
	for i, o := range outs {
		if o.Var() != 0 {
			acc.add(varNode(o.Var()), int32(nVars+i))
		}
	}
	start, succ := acc.build()

	og := &Graph{
		Name:     g.Name,
		NumNodes: nNodes,
		Start:    start,
		Succ:     succ,
		Features: make([][]float64, nNodes),
	}
	levels := g.Levels()
	maxLevel := float64(g.Depth())
	if maxLevel < 1 {
		maxLevel = 1
	}
	fanout := g.FanoutCounts()
	for v := 1; v <= nVars; v++ {
		f := make([]float64, FeatureDim)
		if g.IsInput(v) {
			f[0] = 1
		} else {
			f[3] = 1 // AND node
			f[4] = 2.0 / 4
		}
		f[5] = logScale(float64(fanout[v]))
		f[6] = float64(levels[v]) / maxLevel
		og.Features[v-1] = f
	}
	for i := range outs {
		f := make([]float64, FeatureDim)
		f[1] = 1
		f[6] = 1
		og.Features[nVars+i] = f
	}
	return og
}

// isInverting reports whether the output is 0 under the all-ones input,
// a cheap proxy for "inverting CMOS stage" used as a node feature.
func isInverting(tt uint16, nIns int) bool {
	if nIns == 0 {
		return false
	}
	allOnes := uint16(1)<<nIns - 1
	return tt>>allOnes&1 == 0
}

// logScale maps a non-negative count to log2(1+x)/8, keeping typical
// fanouts in [0,1].
func logScale(x float64) float64 {
	v := 0.0
	for x >= 1 {
		x /= 2
		v++
	}
	return (v + x) / 8 // piecewise-linear log2(1+x) approximation
}
