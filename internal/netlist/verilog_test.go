package netlist

import (
	"bytes"
	"strings"
	"testing"
)

func TestVerilogRoundTrip(t *testing.T) {
	n := buildSmall(t)
	var buf bytes.Buffer
	if err := n.WriteVerilog(&buf); err != nil {
		t.Fatalf("write: %v", err)
	}
	src := buf.String()
	for _, want := range []string{"module small", "input a;", "output f;", "NAND2_X1", "DFF_X1", "endmodule"} {
		if !strings.Contains(src, want) {
			t.Errorf("verilog missing %q in:\n%s", want, src)
		}
	}
	back, err := ParseVerilog(strings.NewReader(src), lib)
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, src)
	}
	if back.NumCells() != n.NumCells() {
		t.Fatalf("cells %d -> %d", n.NumCells(), back.NumCells())
	}
	if len(back.PIs) != len(n.PIs) || len(back.POs) != len(n.POs) {
		t.Fatalf("ports changed: %d/%d vs %d/%d", len(back.PIs), len(back.POs), len(n.PIs), len(n.POs))
	}
	if err := back.Check(); err != nil {
		t.Fatalf("round-tripped netlist invalid: %v", err)
	}
	// Cell type multiset must survive.
	count := func(nl *Netlist) map[string]int {
		m := map[string]int{}
		for i := range nl.Cells {
			m[nl.Cells[i].Type.Name]++
		}
		return m
	}
	a, b := count(n), count(back)
	for k, v := range a {
		if b[k] != v {
			t.Errorf("cell count %s: %d vs %d", k, v, b[k])
		}
	}
}

func TestVerilogRoundTripFunctional(t *testing.T) {
	// Build f = AOI21(a, b, c) and check one input vector end to end.
	n := New("fn", lib)
	a := n.AddPI("a")
	b := n.AddPI("b")
	c := n.AddPI("c")
	out := n.AddNet("f")
	n.MustAddCell("g", lib.MustCell("AOI21_X1"), []NetID{a, b, c}, out)
	n.AddPO("f", out)

	var buf bytes.Buffer
	if err := n.WriteVerilog(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ParseVerilog(&buf, lib)
	if err != nil {
		t.Fatal(err)
	}
	// Pin order must be preserved through named connections: evaluate
	// (a=1,b=1,c=0) -> AOI21 = !(a&b | c) = 0.
	eval := func(nl *Netlist, ins map[string]bool) bool {
		vals := make([]bool, nl.NumNets())
		for _, pi := range nl.PIs {
			vals[pi.Net] = ins[pi.Name]
		}
		order, err := nl.TopoCells()
		if err != nil {
			t.Fatal(err)
		}
		for _, id := range order {
			cell := &nl.Cells[id]
			var bits uint16
			for pin, net := range cell.Ins {
				if vals[net] {
					bits |= 1 << uint(pin)
				}
			}
			vals[cell.Out] = cell.Type.Eval(bits)
		}
		return vals[nl.POs[0].Net]
	}
	for _, tc := range []map[string]bool{
		{"a": true, "b": true, "c": false},
		{"a": false, "b": true, "c": false},
		{"a": true, "b": false, "c": true},
	} {
		if eval(n, tc) != eval(back, tc) {
			t.Fatalf("function changed for %v", tc)
		}
	}
}

func TestParseVerilogErrors(t *testing.T) {
	cases := []string{
		"",
		"module m (a); input a;", // missing endmodule
		"module m (a); input a; BOGUS u0 (.A(a)); endmodule",                                           // unknown cell
		"module m (a); input a; INV_X1 u0 (.Z(a)); endmodule",                                          // unknown pin
		"module m (a, f); input a; output f; endmodule",                                                // undriven output
		"module m (a); input a; input a; endmodule",                                                    // duplicate signal
		"module m (a); @ endmodule",                                                                    // bad character
		"module m (a); input a; wire w; INV_X1 u0 (.A(a), .Y(w)); INV_X1 u1 (.A(a), .Y(w)); endmodule", // double driver
	}
	for i, src := range cases {
		if _, err := ParseVerilog(strings.NewReader(src), lib); err == nil {
			t.Errorf("case %d accepted:\n%s", i, src)
		}
	}
}

func TestParseVerilogComments(t *testing.T) {
	src := `
// line comment
module m (a, f); /* block
comment */ input a; output f;
wire w;
INV_X1 u0 (.A(a), .Y(w)); // another
assign f = w;
endmodule`
	nl, err := ParseVerilog(strings.NewReader(src), lib)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if nl.NumCells() != 1 || len(nl.POs) != 1 {
		t.Fatalf("parsed shape wrong: %v", nl.Stats())
	}
}

func TestSanitizeID(t *testing.T) {
	cases := map[string]string{
		"abc":   "abc",
		"a[3]":  "a_3_",
		"3x":    "_3x",
		"a.b-c": "a_b_c",
		"":      "",
		"_ok_9": "_ok_9",
	}
	for in, want := range cases {
		if got := sanitizeID(in); got != want {
			t.Errorf("sanitizeID(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestVerilogMappedDesign(t *testing.T) {
	// A mapped benchmark must round-trip through Verilog.
	n := buildSmall(t)
	var buf bytes.Buffer
	if err := n.WriteVerilog(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := ParseVerilog(&buf, lib); err != nil {
		t.Fatal(err)
	}
}
