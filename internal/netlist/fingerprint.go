package netlist

// Canonical structural identity for the content-addressed artifact
// cache: the fingerprint covers every cell (name, type, pin binding),
// every net (driver and sinks) and the port lists, so two netlists
// hash equal exactly when they are the same mapped circuit. FNV-1a
// over fixed-width words — structure, not formatting.

const (
	fpOffset = 14695981039346656037
	fpPrime  = 1099511628211
)

type fpHasher uint64

func (h *fpHasher) word(v uint64) {
	x := uint64(*h)
	for i := 0; i < 8; i++ {
		x ^= (v >> (8 * i)) & 0xff
		x *= fpPrime
	}
	*h = fpHasher(x)
}

func (h *fpHasher) str(s string) {
	h.word(uint64(len(s)))
	x := uint64(*h)
	for i := 0; i < len(s); i++ {
		x ^= uint64(s[i])
		x *= fpPrime
	}
	*h = fpHasher(x)
}

// Fingerprint returns the netlist's canonical structural hash.
func (n *Netlist) Fingerprint() uint64 {
	h := fpHasher(fpOffset)
	h.str(n.Name)
	h.word(uint64(len(n.Cells)))
	for _, c := range n.Cells {
		h.str(c.Name)
		if c.Type != nil {
			h.str(c.Type.Name)
		}
		h.word(uint64(int64(c.Out)))
		for _, in := range c.Ins {
			h.word(uint64(int64(in)))
		}
	}
	h.word(uint64(len(n.Nets)))
	for _, net := range n.Nets {
		h.str(net.Name)
		h.word(uint64(int64(net.Driver)))
		h.word(uint64(int64(net.DriverPI)))
		for _, s := range net.Sinks {
			h.word(uint64(int64(s.Cell)))
			h.word(uint64(int64(s.Pin)))
		}
	}
	for _, p := range n.PIs {
		h.str(p.Name)
		h.word(uint64(int64(p.Net)))
	}
	for _, p := range n.POs {
		h.str(p.Name)
		h.word(uint64(int64(p.Net)))
	}
	return uint64(h)
}

// ApproxBytes estimates the netlist's in-memory footprint — the unit
// a byte-budgeted artifact cache accounts this netlist in.
func (n *Netlist) ApproxBytes() int64 {
	var b int64
	for _, c := range n.Cells {
		b += 32 + int64(len(c.Name)) + 4*int64(len(c.Ins))
	}
	for _, net := range n.Nets {
		b += 32 + int64(len(net.Name)) + 8*int64(len(net.Sinks))
	}
	for _, p := range n.PIs {
		b += 16 + int64(len(p.Name))
	}
	for _, p := range n.POs {
		b += 16 + int64(len(p.Name))
	}
	return b
}
