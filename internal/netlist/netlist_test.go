package netlist

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"edacloud/internal/techlib"
)

var lib = techlib.Default14nm()

func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// buildSmall constructs: PO = NAND2(AND2(a,b), c) with a DFF on input c.
func buildSmall(t *testing.T) *Netlist {
	t.Helper()
	n := New("small", lib)
	a := n.AddPI("a")
	b := n.AddPI("b")
	c := n.AddPI("c")
	clk := n.AddPI("clk")

	qNet := n.AddNet("q")
	n.MustAddCell("ff", lib.MustCell("DFF_X1"), []NetID{c, clk}, qNet)

	andNet := n.AddNet("and_out")
	n.MustAddCell("u_and", lib.MustCell("AND2_X1"), []NetID{a, b}, andNet)

	outNet := n.AddNet("f")
	n.MustAddCell("u_nand", lib.MustCell("NAND2_X1"), []NetID{andNet, qNet}, outNet)

	n.AddPO("f", outNet)
	return n
}

func TestBuildAndCheck(t *testing.T) {
	n := buildSmall(t)
	if err := n.Check(); err != nil {
		t.Fatalf("Check: %v", err)
	}
	if n.NumCells() != 3 || n.NumSeq() != 1 {
		t.Fatalf("cells=%d seq=%d", n.NumCells(), n.NumSeq())
	}
	if n.Area() <= 0 {
		t.Fatal("non-positive area")
	}
	s := n.Stats()
	if s.PIs != 4 || s.POs != 1 || s.Levels != 1 {
		t.Fatalf("stats = %+v", s)
	}
	if !strings.Contains(s.String(), "cells=3") {
		t.Fatalf("stats string: %s", s)
	}
}

func TestAddCellRejectsBadPinCount(t *testing.T) {
	n := New("bad", lib)
	a := n.AddPI("a")
	if _, err := n.AddCell("x", lib.MustCell("NAND2_X1"), []NetID{a}, n.AddNet("o")); err == nil {
		t.Fatal("expected pin-count error")
	}
}

func TestAddCellRejectsDoubleDriver(t *testing.T) {
	n := New("dd", lib)
	a := n.AddPI("a")
	o := n.AddNet("o")
	n.MustAddCell("inv1", lib.MustCell("INV_X1"), []NetID{a}, o)
	if _, err := n.AddCell("inv2", lib.MustCell("INV_X1"), []NetID{a}, o); err == nil {
		t.Fatal("expected double-driver error")
	}
	// Driving a PI net is also a double drive.
	if _, err := n.AddCell("inv3", lib.MustCell("INV_X1"), []NetID{o}, a); err == nil {
		t.Fatal("expected PI-drive error")
	}
}

func TestMustAddCellPanics(t *testing.T) {
	n := New("panic", lib)
	a := n.AddPI("a")
	defer func() {
		if recover() == nil {
			t.Fatal("MustAddCell did not panic")
		}
	}()
	n.MustAddCell("x", lib.MustCell("NAND2_X1"), []NetID{a}, NoNet)
}

func TestTopoOrderRespectsDependencies(t *testing.T) {
	n := buildSmall(t)
	order, err := n.TopoCells()
	if err != nil {
		t.Fatalf("TopoCells: %v", err)
	}
	pos := make(map[CellID]int)
	for i, id := range order {
		pos[id] = i
	}
	// u_and (id 1) must precede u_nand (id 2).
	if pos[1] > pos[2] {
		t.Fatalf("AND after NAND in topo order: %v", order)
	}
	if len(order) != 3 {
		t.Fatalf("order misses cells: %v", order)
	}
}

func TestCombinationalCycleDetected(t *testing.T) {
	n := New("cyc", lib)
	a := n.AddPI("a")
	n1 := n.AddNet("n1")
	n2 := n.AddNet("n2")
	n.MustAddCell("g1", lib.MustCell("NAND2_X1"), []NetID{a, n2}, n1)
	n.MustAddCell("g2", lib.MustCell("NAND2_X1"), []NetID{n1, a}, n2)
	if _, err := n.TopoCells(); err == nil {
		t.Fatal("combinational cycle not detected")
	}
	if err := n.Check(); err == nil {
		t.Fatal("Check accepted cyclic netlist")
	}
}

func TestSequentialLoopAllowed(t *testing.T) {
	// DFF feedback: q -> inv -> d of same DFF. Legal.
	n := New("seqloop", lib)
	clk := n.AddPI("clk")
	q := n.AddNet("q")
	d := n.AddNet("d")
	n.MustAddCell("ff", lib.MustCell("DFF_X1"), []NetID{d, clk}, q)
	n.MustAddCell("inv", lib.MustCell("INV_X1"), []NetID{q}, d)
	n.AddPO("q", q)
	if err := n.Check(); err != nil {
		t.Fatalf("registered loop rejected: %v", err)
	}
}

func TestUndrivenNetDetected(t *testing.T) {
	n := New("undriven", lib)
	float := n.AddNet("floating")
	n.MustAddCell("inv", lib.MustCell("INV_X1"), []NetID{float}, NoNet)
	if err := n.Check(); err == nil {
		t.Fatal("undriven net with sink not detected")
	}
}

func TestLevelsAndFanout(t *testing.T) {
	n := buildSmall(t)
	lv, err := n.Levels()
	if err != nil {
		t.Fatal(err)
	}
	if lv[0] != 0 { // DFF
		t.Fatalf("DFF level = %d", lv[0])
	}
	if lv[1] != 0 || lv[2] != 1 {
		t.Fatalf("levels = %v", lv)
	}
	fo := n.FanoutCounts()
	if fo[2] != 1 { // NAND drives PO
		t.Fatalf("fanout(nand) = %d", fo[2])
	}
}

func TestStarGraphShape(t *testing.T) {
	n := buildSmall(t)
	g := n.StarGraph()
	wantNodes := 3 + 4 + 1
	if g.NumNodes != wantNodes {
		t.Fatalf("NumNodes = %d, want %d", g.NumNodes, wantNodes)
	}
	// Edges: a->and, b->and, c->ff, clk->ff, q->nand, and->nand, nand->PO = 7.
	if g.NumEdges() != 7 {
		t.Fatalf("NumEdges = %d, want 7", g.NumEdges())
	}
	for u := 0; u < g.NumNodes; u++ {
		if len(g.Features[u]) != FeatureDim {
			t.Fatalf("node %d: feature width %d", u, len(g.Features[u]))
		}
		for _, s := range g.Successors(u) {
			if s < 0 || int(s) >= g.NumNodes {
				t.Fatalf("edge target out of range: %d", s)
			}
		}
	}
	// PI nodes flagged.
	if g.Features[3][0] != 1 {
		t.Fatal("PI feature flag missing")
	}
	// PO node flagged (last node).
	if g.Features[wantNodes-1][1] != 1 {
		t.Fatal("PO feature flag missing")
	}
	// Sequential cell flagged (cell 0 is the DFF).
	if g.Features[0][2] != 1 {
		t.Fatal("seq feature flag missing")
	}
}

func TestStarGraphEdgeConsistency(t *testing.T) {
	n := buildSmall(t)
	g := n.StarGraph()
	total := 0
	for u := 0; u < g.NumNodes; u++ {
		total += g.OutDegree(u)
	}
	if total != g.NumEdges() {
		t.Fatalf("sum of out-degrees %d != edges %d", total, g.NumEdges())
	}
	if g.Start[0] != 0 || int(g.Start[g.NumNodes]) != len(g.Succ) {
		t.Fatal("CSR boundaries wrong")
	}
}

func TestQuickRandomNetlistInvariants(t *testing.T) {
	gates := []*techlib.Cell{
		lib.MustCell("INV_X1"), lib.MustCell("NAND2_X1"),
		lib.MustCell("NOR2_X1"), lib.MustCell("AOI21_X1"),
	}
	f := func(seed int64) bool {
		rng := newRand(seed)
		n := New("rand", lib)
		nets := []NetID{}
		for i := 0; i < 4; i++ {
			nets = append(nets, n.AddPI(""))
		}
		for i := 0; i < 30; i++ {
			typ := gates[rng.Intn(len(gates))]
			ins := make([]NetID, typ.NumInputs())
			for p := range ins {
				ins[p] = nets[rng.Intn(len(nets))]
			}
			out := n.AddNet("")
			n.MustAddCell("", typ, ins, out)
			nets = append(nets, out)
		}
		n.AddPO("f", nets[len(nets)-1])
		if n.Check() != nil {
			return false
		}
		g := n.StarGraph()
		// Star model: edge count equals total sink pins + POs.
		sinks := 0
		for i := range n.Nets {
			if n.Nets[i].Driver != NoCell || n.Nets[i].DriverPI >= 0 {
				sinks += len(n.Nets[i].Sinks) + len(n.Nets[i].POs)
			}
		}
		return g.NumEdges() == sinks
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestLogScaleMonotone(t *testing.T) {
	prev := -1.0
	for x := 0.0; x < 300; x += 7 {
		v := logScale(x)
		if v < prev {
			t.Fatalf("logScale not monotone at %g", x)
		}
		prev = v
	}
	if logScale(0) != 0 {
		t.Fatalf("logScale(0) = %g", logScale(0))
	}
}

func TestIsInverting(t *testing.T) {
	if !isInverting(0b0111, 2) { // NAND
		t.Fatal("NAND not inverting")
	}
	if isInverting(0b1000, 2) { // AND
		t.Fatal("AND marked inverting")
	}
	if isInverting(0, 0) {
		t.Fatal("0-input cell marked inverting")
	}
}
