package netlist

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"

	"edacloud/internal/techlib"
)

// WriteVerilog serializes the netlist as structural Verilog: one
// module with the design's ports, wire declarations, and one instance
// per cell using named port connections — the interchange format every
// downstream physical tool consumes.
func (n *Netlist) WriteVerilog(w io.Writer) error {
	bw := bufio.NewWriter(w)

	name := sanitizeID(n.Name)
	if name == "" {
		name = "top"
	}
	var ports []string
	for _, p := range n.PIs {
		ports = append(ports, sanitizeID(p.Name))
	}
	for _, p := range n.POs {
		ports = append(ports, sanitizeID(p.Name))
	}
	fmt.Fprintf(bw, "module %s (%s);\n", name, strings.Join(ports, ", "))

	for _, p := range n.PIs {
		fmt.Fprintf(bw, "  input %s;\n", sanitizeID(p.Name))
	}
	for _, p := range n.POs {
		fmt.Fprintf(bw, "  output %s;\n", sanitizeID(p.Name))
	}

	// Net names: PI nets take their port name; PO nets are assigned
	// from their driver wire; everything else gets a wire declaration.
	netName := make([]string, len(n.Nets))
	for i, p := range n.PIs {
		netName[p.Net] = sanitizeID(n.PIs[i].Name)
	}
	for id := range n.Nets {
		if netName[id] == "" {
			base := n.Nets[id].Name
			if base == "" {
				base = fmt.Sprintf("n%d", id)
			}
			netName[id] = sanitizeID(base)
		}
	}
	// Deduplicate wire names that sanitization may have collided.
	seen := map[string]int{}
	for id := range netName {
		nm := netName[id]
		if c, ok := seen[nm]; ok {
			seen[nm] = c + 1
			netName[id] = fmt.Sprintf("%s__%d", nm, c+1)
		} else {
			seen[nm] = 0
		}
	}

	declared := map[string]bool{}
	for _, p := range n.PIs {
		declared[netName[p.Net]] = true
	}
	var wires []string
	for id := range n.Nets {
		if !declared[netName[id]] {
			wires = append(wires, netName[id])
			declared[netName[id]] = true
		}
	}
	sort.Strings(wires)
	for _, wn := range wires {
		fmt.Fprintf(bw, "  wire %s;\n", wn)
	}

	for id := range n.Cells {
		c := &n.Cells[id]
		var conns []string
		for pin, net := range c.Ins {
			if net == NoNet {
				continue
			}
			conns = append(conns, fmt.Sprintf(".%s(%s)", c.Type.Inputs[pin].Name, netName[net]))
		}
		if c.Out != NoNet {
			conns = append(conns, fmt.Sprintf(".%s(%s)", c.Type.Output, netName[c.Out]))
		}
		inst := sanitizeID(c.Name)
		if inst == "" {
			inst = fmt.Sprintf("u%d", id)
		}
		fmt.Fprintf(bw, "  %s %s (%s);\n", c.Type.Name, inst, strings.Join(conns, ", "))
	}

	for _, p := range n.POs {
		po := sanitizeID(p.Name)
		if netName[p.Net] != po {
			fmt.Fprintf(bw, "  assign %s = %s;\n", po, netName[p.Net])
		}
	}
	fmt.Fprintf(bw, "endmodule\n")
	return bw.Flush()
}

// sanitizeID turns an arbitrary name into a Verilog-legal identifier.
func sanitizeID(s string) string {
	var b strings.Builder
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_':
			b.WriteRune(r)
		case r >= '0' && r <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// ParseVerilog reads the structural subset produced by WriteVerilog
// (and by typical synthesis tools): one module, scalar ports and
// wires, gate instances with named port connections, and simple
// wire-to-wire assigns. The referenced cell types must exist in lib.
func ParseVerilog(r io.Reader, lib *techlib.Library) (*Netlist, error) {
	toks, err := tokenizeVerilog(r)
	if err != nil {
		return nil, err
	}
	p := &vParser{toks: toks, lib: lib}
	return p.parseModule()
}

// tokenizeVerilog splits the stream into identifiers, punctuation and
// keywords, stripping // and /* */ comments.
func tokenizeVerilog(r io.Reader) ([]string, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	src := string(data)
	var toks []string
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '/' && i+1 < len(src) && src[i+1] == '/':
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case c == '/' && i+1 < len(src) && src[i+1] == '*':
			end := strings.Index(src[i+2:], "*/")
			if end < 0 {
				return nil, fmt.Errorf("netlist: unterminated block comment")
			}
			i += end + 4
		case isIdentChar(c):
			j := i
			for j < len(src) && isIdentChar(src[j]) {
				j++
			}
			toks = append(toks, src[i:j])
			i = j
		case strings.IndexByte("();,.=", c) >= 0:
			toks = append(toks, string(c))
			i++
		default:
			return nil, fmt.Errorf("netlist: unexpected character %q", c)
		}
	}
	return toks, nil
}

func isIdentChar(c byte) bool {
	return c == '_' || c == '$' || c == '\\' ||
		(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
}

type vParser struct {
	toks []string
	pos  int
	lib  *techlib.Library
}

func (p *vParser) peek() string {
	if p.pos >= len(p.toks) {
		return ""
	}
	return p.toks[p.pos]
}

func (p *vParser) next() string {
	t := p.peek()
	p.pos++
	return t
}

func (p *vParser) expect(t string) error {
	if got := p.next(); got != t {
		return fmt.Errorf("netlist: expected %q, got %q", t, got)
	}
	return nil
}

// identList parses "a, b, c" up to (but not consuming) a terminator.
func (p *vParser) identList(term string) ([]string, error) {
	var out []string
	for {
		id := p.next()
		if id == "" {
			return nil, fmt.Errorf("netlist: unexpected end of input in list")
		}
		out = append(out, id)
		switch p.peek() {
		case ",":
			p.next()
		case term:
			return out, nil
		default:
			return nil, fmt.Errorf("netlist: expected ',' or %q, got %q", term, p.peek())
		}
	}
}

func (p *vParser) parseModule() (*Netlist, error) {
	if err := p.expect("module"); err != nil {
		return nil, err
	}
	modName := p.next()
	if modName == "" {
		return nil, fmt.Errorf("netlist: missing module name")
	}
	if err := p.expect("("); err != nil {
		return nil, err
	}
	if _, err := p.identList(")"); err != nil {
		return nil, err
	}
	p.next() // ')'
	if err := p.expect(";"); err != nil {
		return nil, err
	}

	nl := New(modName, p.lib)
	nets := map[string]NetID{}
	var outputs []string
	type assign struct{ lhs, rhs string }
	var assigns []assign

	getNet := func(name string) NetID {
		if id, ok := nets[name]; ok {
			return id
		}
		id := nl.AddNet(name)
		nets[name] = id
		return id
	}

	for {
		switch tok := p.next(); tok {
		case "endmodule":
			// Outputs resolve after all assigns are known: a PO is fed
			// either directly by its named net or through an assign.
			rhsOf := map[string]string{}
			for _, a := range assigns {
				rhsOf[a.lhs] = a.rhs
			}
			for _, name := range outputs {
				src := name
				for seen := 0; seen < len(assigns)+1; seen++ {
					if r, ok := rhsOf[src]; ok {
						src = r
						continue
					}
					break
				}
				id, ok := nets[src]
				if !ok {
					return nil, fmt.Errorf("netlist: output %s has no driver net", name)
				}
				nl.AddPO(name, id)
			}
			if err := nl.Check(); err != nil {
				return nil, fmt.Errorf("netlist: parsed module invalid: %w", err)
			}
			return nl, nil
		case "input":
			names, err := p.identList(";")
			if err != nil {
				return nil, err
			}
			p.next() // ';'
			for _, name := range names {
				if _, dup := nets[name]; dup {
					return nil, fmt.Errorf("netlist: duplicate signal %s", name)
				}
				nets[name] = nl.AddPI(name)
			}
		case "output":
			names, err := p.identList(";")
			if err != nil {
				return nil, err
			}
			p.next() // ';'
			outputs = append(outputs, names...)
		case "wire":
			names, err := p.identList(";")
			if err != nil {
				return nil, err
			}
			p.next() // ';'
			for _, name := range names {
				getNet(name)
			}
		case "assign":
			lhs := p.next()
			if err := p.expect("="); err != nil {
				return nil, err
			}
			rhs := p.next()
			if err := p.expect(";"); err != nil {
				return nil, err
			}
			assigns = append(assigns, assign{lhs, rhs})
		case "":
			return nil, fmt.Errorf("netlist: unexpected end of input (missing endmodule)")
		default:
			// Cell instance: TYPE name ( .pin(net), ... );
			typ := p.lib.Cell(tok)
			if typ == nil {
				return nil, fmt.Errorf("netlist: unknown cell type %q", tok)
			}
			inst := p.next()
			if err := p.expect("("); err != nil {
				return nil, err
			}
			ins := make([]NetID, typ.NumInputs())
			for i := range ins {
				ins[i] = NoNet
			}
			out := NoNet
			for {
				if err := p.expect("."); err != nil {
					return nil, err
				}
				pin := p.next()
				if err := p.expect("("); err != nil {
					return nil, err
				}
				net := getNet(p.next())
				if err := p.expect(")"); err != nil {
					return nil, err
				}
				if pin == typ.Output {
					out = net
				} else {
					found := false
					for i, ip := range typ.Inputs {
						if ip.Name == pin {
							ins[i] = net
							found = true
							break
						}
					}
					if !found {
						return nil, fmt.Errorf("netlist: cell %s has no pin %q", typ.Name, pin)
					}
				}
				if p.peek() == "," {
					p.next()
					continue
				}
				break
			}
			if err := p.expect(")"); err != nil {
				return nil, err
			}
			if err := p.expect(";"); err != nil {
				return nil, err
			}
			if _, err := nl.AddCell(inst, typ, ins, out); err != nil {
				return nil, err
			}
		}
	}
}
