package aig

import "slices"

// Cone partitioning splits an AIG into independent resynthesis units —
// the substrate of the synthesis engine's cone-parallel rewriting. Each
// AND node reachable from a primary output is *owned* by exactly one
// partition: the partition of the first (lowest-index) output whose
// transitive fanin cone contains it. Because ownership follows the
// first covering output, every cross-partition fanin edge points from a
// higher-index partition into a strictly lower-index one: if an owned
// node v references u, then u is reachable from v's covering output,
// so u's first covering output index is <= v's. Partitions can
// therefore be resynthesized concurrently against private structural
// hash tables — foreign references become placeholder leaves — and
// merged back in ascending partition order, each merge seeing every
// literal it needs already resolved.
//
// The partitioning is a pure function of the graph and the grain: no
// worker count, machine property or map-iteration order enters it,
// which is what lets the parallel synthesis passes stay bit-identical
// at any pool size.

// ConePartition is one group of primary outputs plus the AND nodes it
// owns.
type ConePartition struct {
	// Outputs holds the indices of the primary outputs grouped into
	// this partition, ascending.
	Outputs []int
	// Nodes holds the owned AND variables in ascending (topological)
	// order.
	Nodes []int32
}

// ConePartitioning is the result of PartitionCones.
type ConePartitioning struct {
	Parts []ConePartition
	// Owner maps each variable to the partition owning it, or -1 for
	// inputs, the constant node and dangling logic.
	Owner []int32
}

// NumParts returns the number of partitions.
func (cp *ConePartitioning) NumParts() int { return len(cp.Parts) }

// PartitionCones groups the primary outputs into contiguous partitions
// owning roughly grain AND nodes each (grain <= 0 means 256). Outputs
// are assigned in order, so two runs over the same graph always
// produce the same partitioning. Dangling AND nodes (unreachable from
// every output) are owned by no partition.
func (g *Graph) PartitionCones(grain int) *ConePartitioning {
	if grain <= 0 {
		grain = 256
	}
	owner := make([]int32, len(g.nodes))
	for i := range owner {
		owner[i] = -1
	}
	cp := &ConePartitioning{Owner: owner}
	if len(g.outputs) == 0 {
		return cp
	}

	// Mark each output's cone in output order; a node joins the
	// partition current when it is first reached. Partitions close once
	// they own at least grain AND nodes, so partition sizes track the
	// *incremental* cone sizes — the actual resynthesis work — rather
	// than raw (overlapping) cone sizes.
	seen := make([]bool, len(g.nodes))
	seen[0] = true
	cur := ConePartition{}
	curAnds := 0
	var stack []int
	for oi, o := range g.outputs {
		cur.Outputs = append(cur.Outputs, oi)
		stack = append(stack[:0], o.Var())
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if seen[v] {
				continue
			}
			seen[v] = true
			n := &g.nodes[v]
			if n.kind != kindAnd {
				continue
			}
			owner[v] = int32(len(cp.Parts))
			cur.Nodes = append(cur.Nodes, int32(v))
			curAnds++
			stack = append(stack, n.fan0.Var(), n.fan1.Var())
		}
		if curAnds >= grain {
			slices.Sort(cur.Nodes)
			cp.Parts = append(cp.Parts, cur)
			cur = ConePartition{}
			curAnds = 0
		}
	}
	if len(cur.Outputs) > 0 {
		slices.Sort(cur.Nodes)
		cp.Parts = append(cp.Parts, cur)
	}
	return cp
}

// Append copies sub's AND nodes into g in topological order, folding
// and structurally hashing them against g's existing nodes. Sub's i-th
// primary input is identified with inputMap[i] (a literal of g), which
// is how a resynthesized partition shard rejoins the merged graph: the
// shard's placeholder leaves map to the final literals of already
// merged partitions. It returns a map from sub variable to g literal.
// Sub's outputs are not copied; callers resolve them through the
// returned map.
func (g *Graph) Append(sub *Graph, inputMap []Lit) []Lit {
	if len(inputMap) != sub.NumInputs() {
		panic("aig: Append input map length mismatch")
	}
	old2new := make([]Lit, len(sub.nodes))
	old2new[0] = False
	for i, v := range sub.inputs {
		old2new[v] = inputMap[i]
	}
	for v := 1; v < len(sub.nodes); v++ {
		n := &sub.nodes[v]
		if n.kind != kindAnd {
			continue
		}
		f0 := old2new[n.fan0.Var()].NotIf(n.fan0.IsNeg())
		f1 := old2new[n.fan1.Var()].NotIf(n.fan1.IsNeg())
		old2new[v] = g.And(f0, f1)
	}
	return old2new
}
