package aig

import (
	"fmt"
	"slices"
)

// Cone partitioning splits an AIG into independent resynthesis units —
// the substrate of the synthesis engine's cone-parallel rewriting. Each
// AND node reachable from a primary output is *owned* by exactly one
// partition: the partition of the first (lowest-index) output whose
// transitive fanin cone contains it. Because ownership follows the
// first covering output, every cross-partition fanin edge points from a
// higher-index partition into a strictly lower-index one: if an owned
// node v references u, then u is reachable from v's covering output,
// so u's first covering output index is <= v's. Partitions can
// therefore be resynthesized concurrently against private structural
// hash tables — foreign references become placeholder leaves — and
// merged back in ascending partition order, each merge seeing every
// literal it needs already resolved.
//
// The partitioning is a pure function of the graph and the grain: no
// worker count, machine property or map-iteration order enters it,
// which is what lets the parallel synthesis passes stay bit-identical
// at any pool size.

// ConePartition is one group of primary outputs plus the AND nodes it
// owns.
type ConePartition struct {
	// Outputs holds the indices of the primary outputs grouped into
	// this partition, ascending.
	Outputs []int
	// Nodes holds the owned AND variables in ascending (topological)
	// order.
	Nodes []int32
}

// ConePartitioning is the result of PartitionCones.
type ConePartitioning struct {
	Parts []ConePartition
	// Owner maps each variable to the partition owning it, or -1 for
	// inputs, the constant node and dangling logic.
	Owner []int32
}

// NumParts returns the number of partitions.
func (cp *ConePartitioning) NumParts() int { return len(cp.Parts) }

// PartitionCones groups the primary outputs into contiguous partitions
// owning roughly grain AND nodes each (grain <= 0 means 256). Outputs
// are assigned in order, so two runs over the same graph always
// produce the same partitioning. Dangling AND nodes (unreachable from
// every output) are owned by no partition.
func (g *Graph) PartitionCones(grain int) *ConePartitioning {
	if grain <= 0 {
		grain = 256
	}
	owner := make([]int32, len(g.nodes))
	for i := range owner {
		owner[i] = -1
	}
	cp := &ConePartitioning{Owner: owner}
	if len(g.outputs) == 0 {
		return cp
	}

	// Mark each output's cone in output order; a node joins the
	// partition current when it is first reached. Partitions close once
	// they own at least grain AND nodes, so partition sizes track the
	// *incremental* cone sizes — the actual resynthesis work — rather
	// than raw (overlapping) cone sizes.
	seen := make([]bool, len(g.nodes))
	seen[0] = true
	cur := ConePartition{}
	curAnds := 0
	var stack []int
	for oi, o := range g.outputs {
		cur.Outputs = append(cur.Outputs, oi)
		stack = append(stack[:0], o.Var())
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if seen[v] {
				continue
			}
			seen[v] = true
			n := &g.nodes[v]
			if n.kind != kindAnd {
				continue
			}
			owner[v] = int32(len(cp.Parts))
			cur.Nodes = append(cur.Nodes, int32(v))
			curAnds++
			stack = append(stack, n.fan0.Var(), n.fan1.Var())
		}
		if curAnds >= grain {
			slices.Sort(cur.Nodes)
			cp.Parts = append(cp.Parts, cur)
			cur = ConePartition{}
			curAnds = 0
		}
	}
	if len(cur.Outputs) > 0 {
		slices.Sort(cur.Nodes)
		cp.Parts = append(cp.Parts, cur)
	}
	return cp
}

// Append copies sub's AND nodes into g in topological order, folding
// and structurally hashing them against g's existing nodes. Sub's i-th
// primary input is identified with inputMap[i] (a literal of g), which
// is how a resynthesized partition shard rejoins the merged graph: the
// shard's placeholder leaves map to the final literals of already
// merged partitions. It returns a map from sub variable to g literal.
// Sub's outputs are not copied; callers resolve them through the
// returned map.
func (g *Graph) Append(sub *Graph, inputMap []Lit) []Lit {
	if len(inputMap) != sub.NumInputs() {
		panic("aig: Append input map length mismatch")
	}
	old2new := make([]Lit, len(sub.nodes))
	old2new[0] = False
	for i, v := range sub.inputs {
		old2new[v] = inputMap[i]
	}
	for v := 1; v < len(sub.nodes); v++ {
		n := &sub.nodes[v]
		if n.kind != kindAnd {
			continue
		}
		f0 := old2new[n.fan0.Var()].NotIf(n.fan0.IsNeg())
		f1 := old2new[n.fan1.Var()].NotIf(n.fan1.IsNeg())
		old2new[v] = g.And(f0, f1)
	}
	return old2new
}

// SubDesign is one partition of a parent graph lifted into a standalone
// design, the unit of hierarchical flows: each sub-design can run a
// full synthesis flow on its own (even on its own fleet machine) and
// StitchSubDesigns reassembles the results. The interface is the
// contract: Graph's inputs are backed by the parent variables in
// Imports, its first len(Outputs) outputs realize the parent primary
// outputs listed in Outputs, and the remaining outputs drive the parent
// variables in Exports — owned nodes that other partitions reference.
// Any transformation that preserves input count and per-output function
// (every synthesis pass does) keeps the sub-design stitchable.
type SubDesign struct {
	Graph *Graph
	// Imports holds the parent variables backing Graph's inputs, in
	// input order (ascending): primary inputs of the parent and nodes
	// owned by lower-index partitions.
	Imports []int32
	// Outputs holds the parent primary-output indices realized by
	// Graph's first len(Outputs) outputs, in order.
	Outputs []int
	// Exports holds the parent variables driven by Graph's remaining
	// outputs, ascending.
	Exports []int32
}

// ExtractSubDesigns lifts every partition of cp into a standalone
// SubDesign. Cross-partition references always point from a partition
// into a strictly lower-index one (see the package comment), so the
// sub-designs form a DAG that StitchSubDesigns can reassemble in
// ascending order. The extraction is serial and reuses one var-indexed
// scratch across partitions, so its footprint is O(NumVars) plus the
// sub-graphs themselves.
func (g *Graph) ExtractSubDesigns(cp *ConePartitioning) []SubDesign {
	n := cp.NumParts()
	subs := make([]SubDesign, n)
	exportsOf := make([][]int32, n)
	exported := make([]bool, len(g.nodes))
	mark := make([]bool, len(g.nodes))

	// Pass 1: each partition's foreign reference set — direct fanins of
	// owned nodes plus the vars of its assigned primary outputs — split
	// into imports (of this partition) and exports (of the owner).
	for pi := 0; pi < n; pi++ {
		part := &cp.Parts[pi]
		var imp []int32
		foreign := func(u int) {
			if u == 0 || cp.Owner[u] == int32(pi) || mark[u] {
				return
			}
			mark[u] = true
			imp = append(imp, int32(u))
			if pj := cp.Owner[u]; pj >= 0 && !exported[u] {
				exported[u] = true
				exportsOf[pj] = append(exportsOf[pj], int32(u))
			}
		}
		for _, v := range part.Nodes {
			f0, f1 := g.Fanins(int(v))
			foreign(f0.Var())
			foreign(f1.Var())
		}
		for _, oi := range part.Outputs {
			foreign(g.outputs[oi].Var())
		}
		slices.Sort(imp)
		subs[pi].Imports = imp
		subs[pi].Outputs = append([]int(nil), part.Outputs...)
		for _, u := range imp {
			mark[u] = false
		}
	}

	// Pass 2: build each sub-graph — placeholder inputs, owned nodes in
	// topological order, primary outputs then export outputs.
	o2n := make([]Lit, len(g.nodes))
	o2n[0] = False
	for pi := 0; pi < n; pi++ {
		part := &cp.Parts[pi]
		sub := &subs[pi]
		sg := New(fmt.Sprintf("%s/p%03d", g.Name, pi))
		for _, u := range sub.Imports {
			o2n[u] = sg.AddInput("")
		}
		for _, v := range part.Nodes {
			f0, f1 := g.Fanins(int(v))
			a := o2n[f0.Var()].NotIf(f0.IsNeg())
			b := o2n[f1.Var()].NotIf(f1.IsNeg())
			o2n[v] = sg.And(a, b)
		}
		for _, oi := range part.Outputs {
			o := g.outputs[oi]
			sg.AddOutput(o2n[o.Var()].NotIf(o.IsNeg()), g.OutputName(oi))
		}
		slices.Sort(exportsOf[pi])
		sub.Exports = exportsOf[pi]
		for _, u := range sub.Exports {
			sg.AddOutput(o2n[u], "")
		}
		sub.Graph = sg
		for _, u := range sub.Imports {
			o2n[u] = 0
		}
		for _, v := range part.Nodes {
			o2n[v] = 0
		}
	}
	return subs
}

// StitchSubDesigns reassembles a full design from the sub-designs of a
// cone partitioning, in ascending partition order: each sub-design's
// placeholder inputs map to the stitched literals of parent inputs and
// lower partitions' exports, its nodes re-strash against the
// accumulated graph, and its outputs resolve the parent primary
// outputs (restored to their original order) and the exported
// variables. The subs may have been independently re-synthesized since
// extraction — stitching only relies on the SubDesign interface, not
// on the extracted structure.
func StitchSubDesigns(g *Graph, cp *ConePartitioning, subs []SubDesign) *Graph {
	ng := New(g.Name)
	final := make([]Lit, len(g.nodes))
	final[0] = False
	for i, v := range g.inputs {
		final[v] = ng.AddInput(g.InputName(i))
	}
	outLits := make([]Lit, len(g.outputs))
	for pi := range subs {
		sub := &subs[pi]
		inMap := make([]Lit, len(sub.Imports))
		for i, u := range sub.Imports {
			inMap[i] = final[u]
		}
		m := ng.Append(sub.Graph, inMap)
		souts := sub.Graph.Outputs()
		if len(souts) != len(sub.Outputs)+len(sub.Exports) {
			panic("aig: sub-design output arity mismatch")
		}
		for j, oi := range sub.Outputs {
			so := souts[j]
			outLits[oi] = m[so.Var()].NotIf(so.IsNeg())
		}
		for j, u := range sub.Exports {
			so := souts[len(sub.Outputs)+j]
			final[u] = m[so.Var()].NotIf(so.IsNeg())
		}
	}
	for oi, l := range outLits {
		ng.AddOutput(l, g.OutputName(oi))
	}
	return ng
}
