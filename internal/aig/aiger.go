package aig

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteASCII serializes the graph in the ASCII AIGER (aag) format.
// Latches are not emitted; the synthesis flow treats sequential elements
// at the netlist level. Symbol-table entries are written for named
// inputs and outputs, and the graph name becomes a comment.
func (g *Graph) WriteASCII(w io.Writer) error {
	bw := bufio.NewWriter(w)
	maxVar := len(g.nodes) - 1
	fmt.Fprintf(bw, "aag %d %d 0 %d %d\n", maxVar, len(g.inputs), len(g.outputs), g.NumAnds())
	for _, v := range g.inputs {
		fmt.Fprintf(bw, "%d\n", MakeLit(v, false))
	}
	for _, o := range g.outputs {
		fmt.Fprintf(bw, "%d\n", o)
	}
	for v := 1; v < len(g.nodes); v++ {
		n := &g.nodes[v]
		if n.kind != kindAnd {
			continue
		}
		fmt.Fprintf(bw, "%d %d %d\n", MakeLit(v, false), n.fan1, n.fan0)
	}
	for i, name := range g.inNames {
		if name != "" {
			fmt.Fprintf(bw, "i%d %s\n", i, name)
		}
	}
	for i, name := range g.outNames {
		if name != "" {
			fmt.Fprintf(bw, "o%d %s\n", i, name)
		}
	}
	if g.Name != "" {
		fmt.Fprintf(bw, "c\n%s\n", g.Name)
	}
	return bw.Flush()
}

// ReadASCII parses an ASCII AIGER (aag) stream produced by WriteASCII or
// any conforming tool. Latch declarations are rejected. The returned
// graph is re-hashed, so structurally duplicate ANDs in the input are
// merged.
func ReadASCII(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	if !sc.Scan() {
		return nil, fmt.Errorf("aig: empty AIGER stream")
	}
	header := strings.Fields(sc.Text())
	if len(header) != 6 || header[0] != "aag" {
		return nil, fmt.Errorf("aig: bad AIGER header %q", sc.Text())
	}
	nums := make([]int, 5)
	for i, f := range header[1:] {
		n, err := strconv.Atoi(f)
		if err != nil || n < 0 {
			return nil, fmt.Errorf("aig: bad AIGER header field %q", f)
		}
		nums[i] = n
	}
	maxVar, nIn, nLatch, nOut, nAnd := nums[0], nums[1], nums[2], nums[3], nums[4]
	if nLatch != 0 {
		return nil, fmt.Errorf("aig: latches are not supported (got %d)", nLatch)
	}
	if maxVar < nIn+nAnd {
		return nil, fmt.Errorf("aig: header claims %d vars for %d inputs + %d ands", maxVar, nIn, nAnd)
	}

	g := New("")
	// old literal -> new literal, indexed by variable.
	old2new := make([]Lit, maxVar+1)
	old2new[0] = False

	readLit := func(field string) (Lit, error) {
		n, err := strconv.Atoi(field)
		if err != nil || n < 0 || n>>1 > maxVar {
			return 0, fmt.Errorf("aig: bad literal %q", field)
		}
		return Lit(n), nil
	}
	nextLine := func() (string, error) {
		if !sc.Scan() {
			if err := sc.Err(); err != nil {
				return "", err
			}
			return "", io.ErrUnexpectedEOF
		}
		return sc.Text(), nil
	}

	for i := 0; i < nIn; i++ {
		line, err := nextLine()
		if err != nil {
			return nil, err
		}
		l, err := readLit(strings.TrimSpace(line))
		if err != nil {
			return nil, err
		}
		if l.IsNeg() {
			return nil, fmt.Errorf("aig: complemented input literal %d", l)
		}
		old2new[l.Var()] = g.AddInput("")
	}
	outLits := make([]Lit, nOut)
	for i := 0; i < nOut; i++ {
		line, err := nextLine()
		if err != nil {
			return nil, err
		}
		l, err := readLit(strings.TrimSpace(line))
		if err != nil {
			return nil, err
		}
		outLits[i] = l
	}
	// AIGER requires fanins to be declared before use, so each AND line
	// is built the moment it is read: the only buffered state is the
	// output-literal list (forward references are legal there) and the
	// variable map itself. At million-gate scale this keeps the reader's
	// footprint at the graph being built, with no whole-file declaration
	// buffer alongside it.
	for i := 0; i < nAnd; i++ {
		line, err := nextLine()
		if err != nil {
			return nil, err
		}
		fields := strings.Fields(line)
		if len(fields) != 3 {
			return nil, fmt.Errorf("aig: bad AND line %q", line)
		}
		var lits [3]Lit
		for j, f := range fields {
			l, err := readLit(f)
			if err != nil {
				return nil, err
			}
			lits[j] = l
		}
		if lits[0].IsNeg() {
			return nil, fmt.Errorf("aig: complemented AND lhs %d", lits[0])
		}
		f0 := old2new[lits[1].Var()]
		f1 := old2new[lits[2].Var()]
		old2new[lits[0].Var()] = g.And(f0.NotIf(lits[1].IsNeg()), f1.NotIf(lits[2].IsNeg()))
	}
	for _, l := range outLits {
		g.AddOutput(old2new[l.Var()].NotIf(l.IsNeg()), "")
	}

	// Optional symbol table and comment section.
	for sc.Scan() {
		line := sc.Text()
		if line == "c" {
			if sc.Scan() {
				g.Name = strings.TrimSpace(sc.Text())
			}
			break
		}
		if len(line) < 2 {
			continue
		}
		idx, err := strconv.Atoi(strings.Fields(line[1:])[0])
		if err != nil {
			continue
		}
		name := ""
		if sp := strings.IndexByte(line, ' '); sp >= 0 {
			name = line[sp+1:]
		}
		switch {
		case line[0] == 'i' && idx < len(g.inNames):
			g.inNames[idx] = name
		case line[0] == 'o' && idx < len(g.outNames):
			g.outNames[idx] = name
		}
	}
	return g, sc.Err()
}
