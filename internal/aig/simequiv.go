package aig

import "math/rand"

// SimEquiv is the functional-equivalence oracle used by the synthesis
// test harness: it reports whether a and b compute the same function
// over identical I/O signatures. Three fast paths run before any
// simulation:
//
//   - an I/O-shape mismatch refutes immediately;
//   - structurally identical graphs (same node array and output
//     literals) are equivalent without simulating;
//   - graphs with at most 6 inputs are checked *exhaustively* in one
//     64-pattern word, so the answer is exact, not probabilistic.
//
// Otherwise the graphs are co-simulated on `rounds` words of 64 seeded
// random patterns each and any differing output word refutes. Like
// Equivalent, a "true" from the random path can be a false positive
// with probability vanishing in rounds; "false" is always a proof of
// difference. Unlike Equivalent's rotate-XOR signatures, SimEquiv
// compares raw output words round by round, so a refutation needs no
// accumulation and the first differing pattern word stops the run.
func SimEquiv(a, b *Graph, seed int64, rounds int) bool {
	if a.NumInputs() != b.NumInputs() || a.NumOutputs() != b.NumOutputs() {
		return false
	}
	if structurallyIdentical(a, b) {
		return true
	}
	// Constant fast path: outputs that are literally the constant node
	// in both graphs decide without simulation; a constant/constant
	// mismatch is a proof of difference.
	for i, oa := range a.outputs {
		ob := b.outputs[i]
		if oa.Var() == 0 && ob.Var() == 0 && oa != ob {
			return false
		}
	}
	if a.NumInputs() <= 6 {
		return simEquivExhaustive(a, b)
	}
	if rounds < 1 {
		rounds = 1
	}
	rng := rand.New(rand.NewSource(seed))
	simA, simB := NewSimulator(a), NewSimulator(b)
	in := make([]uint64, a.NumInputs())
	for r := 0; r < rounds; r++ {
		for i := range in {
			in[i] = rng.Uint64()
		}
		if !sameWords(simA.Run(in), simB.Run(in)) {
			return false
		}
	}
	return true
}

// structurallyIdentical reports whether the two graphs are the same
// DAG: equal node arrays, input lists and output literals. Name
// differences are ignored. This is the cheap "pass changed nothing"
// fast path.
func structurallyIdentical(a, b *Graph) bool {
	if len(a.nodes) != len(b.nodes) || len(a.outputs) != len(b.outputs) {
		return false
	}
	for v := range a.nodes {
		if a.nodes[v] != b.nodes[v] {
			return false
		}
	}
	for i := range a.inputs {
		if a.inputs[i] != b.inputs[i] {
			return false
		}
	}
	for i, o := range a.outputs {
		if b.outputs[i] != o {
			return false
		}
	}
	return true
}

// simEquivExhaustive proves or refutes equivalence of graphs with at
// most 6 inputs: one 64-pattern word enumerates every assignment, so
// comparing the masked output words decides the question exactly.
func simEquivExhaustive(a, b *Graph) bool {
	n := a.NumInputs()
	in := make([]uint64, n)
	for i := 0; i < n; i++ {
		// Bit p of input word i is the value of input i under
		// assignment p — the truth-table variable pattern.
		var w uint64
		for p := 0; p < 64; p++ {
			if p>>uint(i)&1 == 1 {
				w |= 1 << uint(p)
			}
		}
		in[i] = w
	}
	mask := ^uint64(0)
	if n < 6 {
		mask = 1<<(1<<uint(n)) - 1
	}
	outA := NewSimulator(a).Run(in)
	outB := NewSimulator(b).Run(in)
	for i := range outA {
		if outA[i]&mask != outB[i]&mask {
			return false
		}
	}
	return true
}

func sameWords(a, b []uint64) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
