package aig

import "math/rand"

// Simulator evaluates an AIG on 64 input patterns at once using
// bit-parallel word simulation. It is used for equivalence spot-checks
// between optimization passes and for computing structural signatures.
type Simulator struct {
	g     *Graph
	words []uint64 // one 64-pattern word per variable
}

// NewSimulator allocates a simulator for g. The simulator stays valid
// across structural changes: if the graph has grown since the last run,
// Run zero-fills the widened scratch before simulating, so no stale
// word from the old layout can leak into a result.
func NewSimulator(g *Graph) *Simulator {
	return &Simulator{g: g, words: make([]uint64, g.NumVars())}
}

// Run simulates the graph on the given input words (one 64-pattern word
// per primary input, in input order) and returns one word per primary
// output. It panics if len(inputs) != NumInputs().
func (s *Simulator) Run(inputs []uint64) []uint64 {
	g := s.g
	if len(inputs) != g.NumInputs() {
		panic("aig: simulator input width mismatch")
	}
	if n := g.NumVars(); len(s.words) < n {
		// The graph grew since construction: widen the scratch and
		// zero-fill it, reusing capacity when the slice allows.
		if cap(s.words) >= n {
			s.words = s.words[:n]
			clear(s.words)
		} else {
			s.words = make([]uint64, n)
		}
	}
	w := s.words
	w[0] = 0
	for i, v := range g.inputs {
		w[v] = inputs[i]
	}
	for v := 1; v < len(g.nodes); v++ {
		n := &g.nodes[v]
		if n.kind != kindAnd {
			continue
		}
		a := w[n.fan0.Var()]
		if n.fan0.IsNeg() {
			a = ^a
		}
		b := w[n.fan1.Var()]
		if n.fan1.IsNeg() {
			b = ^b
		}
		w[v] = a & b
	}
	out := make([]uint64, len(g.outputs))
	for i, o := range g.outputs {
		x := w[o.Var()]
		if o.IsNeg() {
			x = ^x
		}
		out[i] = x
	}
	return out
}

// Signature returns a functional fingerprint of the graph: the output
// words produced by `rounds` rounds of seeded random simulation, XOR
// accumulated per output. Two equivalent graphs with identical I/O order
// always produce identical signatures; differing signatures prove the
// graphs differ.
func Signature(g *Graph, seed int64, rounds int) []uint64 {
	rng := rand.New(rand.NewSource(seed))
	sim := NewSimulator(g)
	in := make([]uint64, g.NumInputs())
	sig := make([]uint64, g.NumOutputs())
	for r := 0; r < rounds; r++ {
		for i := range in {
			in[i] = rng.Uint64()
		}
		out := sim.Run(in)
		for i, w := range out {
			// Rotate before mixing so pattern order matters.
			sig[i] = (sig[i]<<1 | sig[i]>>63) ^ w
		}
	}
	return sig
}

// Equivalent reports whether a and b are indistinguishable under
// `rounds` rounds of seeded random simulation. It can produce false
// positives (claims of equivalence) with probability vanishing in
// rounds, but never false negatives.
func Equivalent(a, b *Graph, seed int64, rounds int) bool {
	if a.NumInputs() != b.NumInputs() || a.NumOutputs() != b.NumOutputs() {
		return false
	}
	sa := Signature(a, seed, rounds)
	sb := Signature(b, seed, rounds)
	for i := range sa {
		if sa[i] != sb[i] {
			return false
		}
	}
	return true
}
