package aig

import (
	"math/rand"
	"testing"
)

// TestSimulatorZeroFillsOnGrow: a simulator built before structural
// changes must produce the same results as a fresh one after the graph
// grows — Run widens and zero-fills its scratch instead of leaving
// stale words behind.
func TestSimulatorZeroFillsOnGrow(t *testing.T) {
	g := randGraph(9, 6, 50, 4)
	sim := NewSimulator(g)
	rng := rand.New(rand.NewSource(1))
	in := make([]uint64, g.NumInputs())
	for i := range in {
		in[i] = rng.Uint64()
	}
	first := sim.Run(in)

	// Grow the graph: new logic over the existing inputs plus an extra
	// output, leaving the original outputs in place.
	ins := g.InputVars()
	acc := MakeLit(ins[0], false)
	for _, v := range ins[1:] {
		acc = g.And(acc, MakeLit(v, true)).Not()
	}
	g.AddOutput(acc, "grown")

	got := sim.Run(in)
	want := NewSimulator(g).Run(in)
	if len(got) != len(want) {
		t.Fatalf("output width %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("output %d: stale simulator word %x, fresh %x", i, got[i], want[i])
		}
	}
	// The pre-growth outputs must also be untouched by the growth.
	for i := range first {
		if got[i] != first[i] {
			t.Fatalf("output %d changed across growth: %x vs %x", i, got[i], first[i])
		}
	}
}
