package aig

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestLitBasics(t *testing.T) {
	l := MakeLit(5, false)
	if l.Var() != 5 || l.IsNeg() {
		t.Fatalf("MakeLit(5,false) = %v", l)
	}
	if n := l.Not(); n.Var() != 5 || !n.IsNeg() {
		t.Fatalf("Not() = %v", n)
	}
	if l.Not().Not() != l {
		t.Fatal("double negation is not identity")
	}
	if l.NotIf(false) != l || l.NotIf(true) != l.Not() {
		t.Fatal("NotIf misbehaves")
	}
	if l.Not().Reg() != l {
		t.Fatal("Reg should strip complement")
	}
	if False.Not() != True || True.Not() != False {
		t.Fatal("constant literals are not complements")
	}
}

func TestAndConstantFolding(t *testing.T) {
	g := New("fold")
	a := g.AddInput("a")
	cases := []struct {
		x, y, want Lit
		name       string
	}{
		{False, a, False, "0&a"},
		{a, False, False, "a&0"},
		{True, a, a, "1&a"},
		{a, True, a, "a&1"},
		{a, a, a, "a&a"},
		{a, a.Not(), False, "a&!a"},
		{a.Not(), a, False, "!a&a"},
	}
	for _, c := range cases {
		if got := g.And(c.x, c.y); got != c.want {
			t.Errorf("%s: got %v want %v", c.name, got, c.want)
		}
	}
	if g.NumAnds() != 0 {
		t.Fatalf("folding created %d AND nodes", g.NumAnds())
	}
}

func TestStructuralHashing(t *testing.T) {
	g := New("strash")
	a := g.AddInput("a")
	b := g.AddInput("b")
	x := g.And(a, b)
	y := g.And(b, a) // commuted
	if x != y {
		t.Fatal("strashing missed commuted AND")
	}
	z := g.And(a.Not(), b)
	if z == x {
		t.Fatal("distinct AND collapsed")
	}
	if g.NumAnds() != 2 {
		t.Fatalf("NumAnds = %d, want 2", g.NumAnds())
	}
}

func TestXorMuxTruthTables(t *testing.T) {
	g := New("tt")
	a := g.AddInput("a")
	b := g.AddInput("b")
	s := g.AddInput("s")
	g.AddOutput(g.Xor(a, b), "xor")
	g.AddOutput(g.Xnor(a, b), "xnor")
	g.AddOutput(g.Mux(s, a, b), "mux")
	g.AddOutput(g.Maj(a, b, s), "maj")

	sim := NewSimulator(g)
	// Exhaustive 8-row truth table packed into the low bits of the words.
	// Bit i of each word corresponds to assignment i = (a,b,s) bits.
	var wa, wb, ws uint64
	for i := 0; i < 8; i++ {
		if i&1 != 0 {
			wa |= 1 << i
		}
		if i&2 != 0 {
			wb |= 1 << i
		}
		if i&4 != 0 {
			ws |= 1 << i
		}
	}
	out := sim.Run([]uint64{wa, wb, ws})
	mask := uint64(0xff)
	if got, want := out[0]&mask, (wa^wb)&mask; got != want {
		t.Errorf("xor: got %08b want %08b", got, want)
	}
	if got, want := out[1]&mask, (^(wa ^ wb))&mask; got != want {
		t.Errorf("xnor: got %08b want %08b", got, want)
	}
	if got, want := out[2]&mask, ((ws&wa)|(^ws&wb))&mask; got != want {
		t.Errorf("mux: got %08b want %08b", got, want)
	}
	if got, want := out[3]&mask, ((wa&wb)|(wa&ws)|(wb&ws))&mask; got != want {
		t.Errorf("maj: got %08b want %08b", got, want)
	}
}

func TestAndNOrNDepth(t *testing.T) {
	g := New("depth")
	var ls []Lit
	for i := 0; i < 64; i++ {
		ls = append(ls, g.AddInput(""))
	}
	g.AddOutput(g.AndN(ls), "and64")
	if d := g.Depth(); d != 6 {
		t.Fatalf("balanced AndN(64) depth = %d, want 6", d)
	}
	if g.AndN(nil) != True {
		t.Fatal("AndN(nil) != True")
	}
	if g.OrN(nil) != False {
		t.Fatal("OrN(nil) != False")
	}
	if g.AndN(ls[:1]) != ls[0] || g.OrN(ls[:1]) != ls[0] {
		t.Fatal("single-element reduction is not identity")
	}
}

func TestLevelsAndFanouts(t *testing.T) {
	g := New("lv")
	a := g.AddInput("a")
	b := g.AddInput("b")
	x := g.And(a, b)
	y := g.And(x, b.Not())
	g.AddOutput(y, "y")
	lv := g.Levels()
	if lv[a.Var()] != 0 || lv[x.Var()] != 1 || lv[y.Var()] != 2 {
		t.Fatalf("levels = %v", lv)
	}
	fo := g.FanoutCounts()
	if fo[b.Var()] != 2 {
		t.Fatalf("fanout(b) = %d, want 2", fo[b.Var()])
	}
	if fo[y.Var()] != 1 {
		t.Fatalf("fanout(y) = %d, want 1 (the output)", fo[y.Var()])
	}
	h := g.LevelHistogram()
	if h[1] != 1 || h[2] != 1 {
		t.Fatalf("level histogram = %v", h)
	}
	if sl := g.SortedLevels(); len(sl) != 2 || sl[0] != 1 || sl[1] != 2 {
		t.Fatalf("sorted levels = %v", sl)
	}
}

func TestSweepRemovesDanglingNodes(t *testing.T) {
	g := New("sweep")
	a := g.AddInput("a")
	b := g.AddInput("b")
	used := g.And(a, b)
	g.And(a.Not(), b.Not()) // dangling
	g.AddOutput(used, "f")
	if g.NumAnds() != 2 {
		t.Fatalf("precondition: NumAnds = %d", g.NumAnds())
	}
	sw, _ := g.Sweep()
	if sw.NumAnds() != 1 {
		t.Fatalf("after sweep NumAnds = %d, want 1", sw.NumAnds())
	}
	if sw.NumInputs() != 2 || sw.NumOutputs() != 1 {
		t.Fatalf("sweep changed I/O: %v", sw.Stats())
	}
	if !Equivalent(g, sw, 1, 8) {
		t.Fatal("sweep changed function")
	}
}

func TestCloneIsIndependent(t *testing.T) {
	g := New("orig")
	a := g.AddInput("a")
	b := g.AddInput("b")
	g.AddOutput(g.And(a, b), "f")
	c := g.Clone()
	c.AddOutput(g.Or(a, b), "g")
	if g.NumOutputs() != 1 {
		t.Fatal("clone mutation leaked into original outputs")
	}
	if !Equivalent(g, g.Clone(), 7, 4) {
		t.Fatal("clone not equivalent to original")
	}
}

func buildAdder(t *testing.T, width int) *Graph {
	t.Helper()
	g := New("adder")
	as := make([]Lit, width)
	bs := make([]Lit, width)
	for i := 0; i < width; i++ {
		as[i] = g.AddInput("")
	}
	for i := 0; i < width; i++ {
		bs[i] = g.AddInput("")
	}
	carry := False
	for i := 0; i < width; i++ {
		sum := g.Xor(g.Xor(as[i], bs[i]), carry)
		carry = g.Maj(as[i], bs[i], carry)
		g.AddOutput(sum, "")
	}
	g.AddOutput(carry, "cout")
	return g
}

func TestAdderFunctional(t *testing.T) {
	const width = 8
	g := buildAdder(t, width)
	sim := NewSimulator(g)
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		a := rng.Intn(1 << width)
		b := rng.Intn(1 << width)
		in := make([]uint64, 2*width)
		for i := 0; i < width; i++ {
			if a>>i&1 == 1 {
				in[i] = ^uint64(0)
			}
			if b>>i&1 == 1 {
				in[width+i] = ^uint64(0)
			}
		}
		out := sim.Run(in)
		got := 0
		for i := 0; i <= width; i++ {
			if out[i]&1 == 1 {
				got |= 1 << i
			}
		}
		if got != a+b {
			t.Fatalf("adder(%d,%d) = %d, want %d", a, b, got, a+b)
		}
	}
}

func TestAigerRoundTrip(t *testing.T) {
	g := buildAdder(t, 6)
	g.Name = "adder6"
	var buf bytes.Buffer
	if err := g.WriteASCII(&buf); err != nil {
		t.Fatalf("WriteASCII: %v", err)
	}
	h, err := ReadASCII(&buf)
	if err != nil {
		t.Fatalf("ReadASCII: %v", err)
	}
	if h.Name != "adder6" {
		t.Errorf("name lost: %q", h.Name)
	}
	if h.NumInputs() != g.NumInputs() || h.NumOutputs() != g.NumOutputs() {
		t.Fatalf("I/O mismatch after round trip: %v vs %v", h.Stats(), g.Stats())
	}
	if !Equivalent(g, h, 99, 16) {
		t.Fatal("round trip changed function")
	}
}

func TestAigerRejectsBadInput(t *testing.T) {
	cases := []string{
		"",
		"aig 1 1 0 0 0\n2\n",         // binary header keyword
		"aag 1 1 9 0 0\n2\n",         // latches
		"aag 0 1 0 0 0\n2\n",         // header var count too small
		"aag 2 1 0 1 1\n2\n",         // truncated
		"aag 2 1 0 0 1\n2\n5 2 2\n",  // complemented AND lhs
		"aag 2 1 0 0 0\n3\n",         // complemented input
		"aag x 1 0 0 0\n2\n",         // non-numeric header
		"aag 2 1 0 1 1\n2\n4\nx y\n", // bad AND line
	}
	for i, src := range cases {
		if _, err := ReadASCII(bytes.NewReader([]byte(src))); err == nil {
			t.Errorf("case %d: expected error for %q", i, src)
		}
	}
}

func TestSignatureDetectsDifference(t *testing.T) {
	g := New("and")
	a := g.AddInput("a")
	b := g.AddInput("b")
	g.AddOutput(g.And(a, b), "f")

	h := New("or")
	a2 := h.AddInput("a")
	b2 := h.AddInput("b")
	h.AddOutput(h.Or(a2, b2), "f")

	if Equivalent(g, h, 3, 4) {
		t.Fatal("AND and OR reported equivalent")
	}
	if !Equivalent(g, g, 3, 4) {
		t.Fatal("graph not equivalent to itself")
	}
	one := New("one")
	one.AddInput("a")
	if Equivalent(g, one, 3, 4) {
		t.Fatal("graphs with different I/O reported equivalent")
	}
}

// Property: DeMorgan — !(a & b) == !a | !b for random 64-pattern words.
func TestQuickDeMorgan(t *testing.T) {
	f := func(wa, wb uint64) bool {
		g := New("dm")
		a := g.AddInput("a")
		b := g.AddInput("b")
		g.AddOutput(g.And(a, b).Not(), "nand")
		g.AddOutput(g.Or(a.Not(), b.Not()), "demorgan")
		out := NewSimulator(g).Run([]uint64{wa, wb})
		return out[0] == out[1]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Xor is associative under simulation.
func TestQuickXorAssociative(t *testing.T) {
	f := func(wa, wb, wc uint64) bool {
		g := New("assoc")
		a := g.AddInput("a")
		b := g.AddInput("b")
		c := g.AddInput("c")
		g.AddOutput(g.Xor(g.Xor(a, b), c), "l")
		g.AddOutput(g.Xor(a, g.Xor(b, c)), "r")
		out := NewSimulator(g).Run([]uint64{wa, wb, wc})
		return out[0] == out[1]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Sweep preserves the function of randomly built graphs.
func TestQuickSweepPreservesFunction(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := New("rand")
		lits := []Lit{}
		for i := 0; i < 6; i++ {
			lits = append(lits, g.AddInput(""))
		}
		for i := 0; i < 40; i++ {
			a := lits[rng.Intn(len(lits))].NotIf(rng.Intn(2) == 0)
			b := lits[rng.Intn(len(lits))].NotIf(rng.Intn(2) == 0)
			lits = append(lits, g.And(a, b))
		}
		// Output only a few nodes so some become dangling.
		for i := 0; i < 3; i++ {
			g.AddOutput(lits[rng.Intn(len(lits))], "")
		}
		sw, _ := g.Sweep()
		return Equivalent(g, sw, seed^0x5a5a, 8) && sw.NumAnds() <= g.NumAnds()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestConeSize(t *testing.T) {
	g := New("cone")
	a := g.AddInput("a")
	b := g.AddInput("b")
	c := g.AddInput("c")
	x := g.And(a, b)
	y := g.And(x, c)
	z := g.And(a, c) // outside y's cone? a and c are shared inputs, but z is a distinct AND
	g.AddOutput(y, "y")
	g.AddOutput(z, "z")
	if got := g.ConeSize(y); got != 2 {
		t.Fatalf("ConeSize(y) = %d, want 2", got)
	}
	if got := g.ConeSize(z); got != 1 {
		t.Fatalf("ConeSize(z) = %d, want 1", got)
	}
	if got := g.ConeSize(a); got != 0 {
		t.Fatalf("ConeSize(input) = %d, want 0", got)
	}
}

func TestFaninsPanicsOnNonAnd(t *testing.T) {
	g := New("panic")
	a := g.AddInput("a")
	defer func() {
		if recover() == nil {
			t.Fatal("Fanins on input did not panic")
		}
	}()
	g.Fanins(a.Var())
}

func TestStatsString(t *testing.T) {
	g := buildAdder(t, 4)
	s := g.Stats()
	if s.Inputs != 8 || s.Outputs != 5 {
		t.Fatalf("stats = %+v", s)
	}
	if s.String() == "" {
		t.Fatal("empty stats string")
	}
}

func TestWriteDot(t *testing.T) {
	g := New("dot")
	a := g.AddInput("a")
	b := g.AddInput("b")
	g.AddOutput(g.And(a, b.Not()), "f")
	var buf bytes.Buffer
	if err := g.WriteDot(&buf); err != nil {
		t.Fatalf("dot: %v", err)
	}
	out := buf.String()
	for _, want := range []string{"digraph", "shape=box", "shape=circle", "doublecircle", "style=dashed", "->"} {
		if !strings.Contains(out, want) {
			t.Errorf("dot output missing %q:\n%s", want, out)
		}
	}
}
