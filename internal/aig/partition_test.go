package aig

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// randGraph builds a seeded random multi-output AIG.
func randGraph(seed int64, inputs, ands, outputs int) *Graph {
	rng := rand.New(rand.NewSource(seed))
	g := New("rand")
	lits := make([]Lit, 0, inputs+ands)
	for i := 0; i < inputs; i++ {
		lits = append(lits, g.AddInput(""))
	}
	for i := 0; i < ands; i++ {
		a := lits[rng.Intn(len(lits))].NotIf(rng.Intn(2) == 0)
		b := lits[rng.Intn(len(lits))].NotIf(rng.Intn(2) == 0)
		lits = append(lits, g.And(a, b))
	}
	for i := 0; i < outputs; i++ {
		g.AddOutput(lits[rng.Intn(len(lits))].NotIf(rng.Intn(2) == 0), "")
	}
	return g
}

// TestPartitionConesCoversReachableAnds: every AND node reachable from
// an output is owned by exactly one partition, dangling nodes by none,
// and partition node lists are sorted, disjoint and consistent with
// Owner.
func TestPartitionConesCoversReachableAnds(t *testing.T) {
	g := randGraph(11, 8, 300, 12)
	cp := g.PartitionCones(40)
	if cp.NumParts() < 2 {
		t.Fatalf("expected multiple partitions, got %d", cp.NumParts())
	}
	reach := make([]bool, g.NumVars())
	for _, o := range g.Outputs() {
		g.MarkCone(o, reach)
	}
	seen := make([]int32, g.NumVars())
	for i := range seen {
		seen[i] = -1
	}
	outs := 0
	for pi, part := range cp.Parts {
		outs += len(part.Outputs)
		for i, v := range part.Nodes {
			if i > 0 && part.Nodes[i-1] >= v {
				t.Fatalf("partition %d nodes not ascending", pi)
			}
			if seen[v] != -1 {
				t.Fatalf("var %d owned by partitions %d and %d", v, seen[v], pi)
			}
			seen[v] = int32(pi)
			if cp.Owner[v] != int32(pi) {
				t.Fatalf("Owner[%d] = %d, want %d", v, cp.Owner[v], pi)
			}
			if !g.IsAnd(int(v)) || !reach[v] {
				t.Fatalf("partition %d owns non-reachable or non-AND var %d", pi, v)
			}
		}
	}
	if outs != g.NumOutputs() {
		t.Fatalf("partitions cover %d outputs, want %d", outs, g.NumOutputs())
	}
	for v := 1; v < g.NumVars(); v++ {
		if g.IsAnd(v) && reach[v] && seen[v] == -1 {
			t.Fatalf("reachable AND %d unowned", v)
		}
		if (!g.IsAnd(v) || !reach[v]) && cp.Owner[v] != -1 {
			t.Fatalf("var %d should be unowned", v)
		}
	}
}

// TestPartitionEdgesPointBackward: the invariant cone-parallel
// resynthesis rests on — a fanin of an owned node is an input, the
// constant, or owned by the same or an earlier partition.
func TestPartitionEdgesPointBackward(t *testing.T) {
	f := func(seed int64) bool {
		g := randGraph(seed, 6, 150, 9)
		cp := g.PartitionCones(30)
		for _, part := range cp.Parts {
			for _, v := range part.Nodes {
				f0, f1 := g.Fanins(int(v))
				for _, u := range []int{f0.Var(), f1.Var()} {
					if g.IsAnd(u) && cp.Owner[u] > cp.Owner[v] {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestPartitionConesSingleAndEmpty: degenerate shapes.
func TestPartitionConesSingleAndEmpty(t *testing.T) {
	g := New("empty")
	g.AddInput("a")
	if cp := g.PartitionCones(8); cp.NumParts() != 0 {
		t.Fatalf("no-output graph got %d partitions", cp.NumParts())
	}
	h := New("one")
	a := h.AddInput("a")
	b := h.AddInput("b")
	h.AddOutput(h.And(a, b), "f")
	cp := h.PartitionCones(8)
	if cp.NumParts() != 1 || len(cp.Parts[0].Nodes) != 1 {
		t.Fatalf("single-cone graph: %+v", cp.Parts)
	}
}

// TestPartitionGrainControlsCount: a smaller grain yields at least as
// many partitions, and a huge grain collapses to one.
func TestPartitionGrainControlsCount(t *testing.T) {
	g := randGraph(5, 8, 400, 16)
	fine := g.PartitionCones(20).NumParts()
	coarse := g.PartitionCones(200).NumParts()
	one := g.PartitionCones(1 << 30).NumParts()
	if fine < coarse {
		t.Fatalf("finer grain produced fewer partitions: %d < %d", fine, coarse)
	}
	if one != 1 {
		t.Fatalf("unbounded grain produced %d partitions", one)
	}
}

// TestAppendIdentityMerge: appending a graph onto a fresh graph with
// identity input mapping reproduces the function.
func TestAppendIdentityMerge(t *testing.T) {
	g := randGraph(21, 7, 120, 6)
	ng := New(g.Name)
	inMap := make([]Lit, g.NumInputs())
	for i := 0; i < g.NumInputs(); i++ {
		inMap[i] = ng.AddInput(g.InputName(i))
	}
	m := ng.Append(g, inMap)
	for i, o := range g.Outputs() {
		ng.AddOutput(m[o.Var()].NotIf(o.IsNeg()), g.OutputName(i))
	}
	if !SimEquiv(g, ng, 3, 8) {
		t.Fatal("Append changed function")
	}
	if ng.NumAnds() > g.NumAnds() {
		t.Fatalf("Append grew the graph: %d > %d ands", ng.NumAnds(), g.NumAnds())
	}
}

// TestAppendDeduplicatesAcrossShards: two shards computing overlapping
// logic merge into shared nodes through the target strash.
func TestAppendDeduplicatesAcrossShards(t *testing.T) {
	mk := func() *Graph {
		s := New("shard")
		a := s.AddInput("a")
		b := s.AddInput("b")
		s.AddOutput(s.And(a, b), "f")
		return s
	}
	ng := New("merged")
	a := ng.AddInput("a")
	b := ng.AddInput("b")
	m1 := mk()
	m2 := mk()
	l1 := ng.Append(m1, []Lit{a, b})[m1.Output(0).Var()]
	l2 := ng.Append(m2, []Lit{a, b})[m2.Output(0).Var()]
	if l1 != l2 {
		t.Fatalf("identical shard nodes not deduped: %v vs %v", l1, l2)
	}
	if ng.NumAnds() != 1 {
		t.Fatalf("merged graph has %d ands, want 1", ng.NumAnds())
	}
}

// TestAppendFoldsMappedConstants: input mapping onto constants and
// complementary literals must fold like direct construction.
func TestAppendFoldsMappedConstants(t *testing.T) {
	s := New("shard")
	x := s.AddInput("x")
	y := s.AddInput("y")
	s.AddOutput(s.And(x, y), "f")

	ng := New("merged")
	a := ng.AddInput("a")
	m := ng.Append(s, []Lit{a, a.Not()})
	if got := m[s.Output(0).Var()]; got != False {
		t.Fatalf("AND(a, !a) after mapping = %v, want False", got)
	}
	if ng.NumAnds() != 0 {
		t.Fatalf("fold created %d ands", ng.NumAnds())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Append with short input map did not panic")
		}
	}()
	ng.Append(s, []Lit{a})
}
