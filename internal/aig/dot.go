package aig

import (
	"bufio"
	"fmt"
	"io"
)

// WriteDot emits the graph in Graphviz DOT form for visual inspection:
// inputs as boxes, AND nodes as circles, outputs as double circles,
// with dashed edges marking complemented fanins. Intended for small
// graphs (debugging rewrites, documenting examples); the output of a
// 200k-node design is valid but unreadable.
func (g *Graph) WriteDot(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "digraph %q {\n  rankdir=BT;\n", g.Name)
	for i, v := range g.inputs {
		label := g.inNames[i]
		if label == "" {
			label = fmt.Sprintf("i%d", i)
		}
		fmt.Fprintf(bw, "  n%d [shape=box, label=%q];\n", v, label)
	}
	g.TopoAnds(func(v int, f0, f1 Lit) {
		fmt.Fprintf(bw, "  n%d [shape=circle, label=\"\"];\n", v)
		for _, f := range []Lit{f0, f1} {
			style := "solid"
			if f.IsNeg() {
				style = "dashed"
			}
			fmt.Fprintf(bw, "  n%d -> n%d [style=%s];\n", f.Var(), v, style)
		}
	})
	for i, o := range g.outputs {
		label := g.outNames[i]
		if label == "" {
			label = fmt.Sprintf("o%d", i)
		}
		fmt.Fprintf(bw, "  out%d [shape=doublecircle, label=%q];\n", i, label)
		style := "solid"
		if o.IsNeg() {
			style = "dashed"
		}
		fmt.Fprintf(bw, "  n%d -> out%d [style=%s];\n", o.Var(), i, style)
	}
	fmt.Fprintf(bw, "}\n")
	return bw.Flush()
}
