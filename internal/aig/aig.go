// Package aig implements And-Inverter Graphs (AIGs), the intermediate
// representation used by the synthesis engine and the GCN runtime
// predictor. An AIG is a directed acyclic graph whose internal nodes are
// two-input AND gates and whose edges may be complemented. The package
// provides structural hashing, constant propagation, levelization,
// 64-way parallel simulation, dead-node sweeping and ASCII AIGER I/O.
//
// Literals follow the AIGER convention: a literal is 2*variable plus a
// complementation bit. Variable 0 is the constant-false node, so literal
// 0 is FALSE and literal 1 is TRUE.
package aig

import (
	"fmt"
	"sort"
)

// Lit is an AIG literal: 2*variable + complement bit.
type Lit uint32

// Constant literals.
const (
	False Lit = 0 // constant false (variable 0, uncomplemented)
	True  Lit = 1 // constant true (variable 0, complemented)
)

// MakeLit builds the literal for variable v, complemented when neg is true.
func MakeLit(v int, neg bool) Lit {
	l := Lit(v) << 1
	if neg {
		l |= 1
	}
	return l
}

// Var returns the variable index of the literal.
func (l Lit) Var() int { return int(l >> 1) }

// IsNeg reports whether the literal is complemented.
func (l Lit) IsNeg() bool { return l&1 == 1 }

// Not returns the complemented literal.
func (l Lit) Not() Lit { return l ^ 1 }

// NotIf complements the literal when c is true.
func (l Lit) NotIf(c bool) Lit {
	if c {
		return l ^ 1
	}
	return l
}

// Reg returns the uncomplemented (regular) version of the literal.
func (l Lit) Reg() Lit { return l &^ 1 }

func (l Lit) String() string {
	if l.IsNeg() {
		return fmt.Sprintf("!n%d", l.Var())
	}
	return fmt.Sprintf("n%d", l.Var())
}

// kind discriminates node types. Variable 0 is always the constant node.
type kind uint8

const (
	kindConst kind = iota
	kindInput
	kindAnd
)

// node is an AIG node. For AND nodes fan0 and fan1 are the fanin
// literals with fan0 <= fan1 (canonical order for structural hashing).
type node struct {
	fan0, fan1 Lit
	kind       kind
}

// Graph is a mutable And-Inverter Graph. The zero value is not usable;
// create graphs with New. Nodes are stored in topological order: an AND
// node's fanins always have smaller variable indices, so iterating
// variables 1..N-1 visits fanins before fanouts.
type Graph struct {
	Name string

	nodes   []node
	inputs  []int // variable indices of primary inputs, in creation order
	outputs []Lit // primary output literals, in creation order

	inNames  []string
	outNames []string

	strash map[uint64]Lit // structural hashing: packed fanin pair -> AND literal

	levels     []int32 // memoized logic levels, nil when stale
	fanoutSize []int32 // memoized fanout counts, nil when stale
}

// New returns an empty graph containing only the constant node.
func New(name string) *Graph {
	g := &Graph{
		Name:   name,
		nodes:  make([]node, 1, 1024),
		strash: make(map[uint64]Lit),
	}
	g.nodes[0] = node{kind: kindConst}
	return g
}

// NumVars returns the number of variables including the constant node.
func (g *Graph) NumVars() int { return len(g.nodes) }

// NumInputs returns the number of primary inputs.
func (g *Graph) NumInputs() int { return len(g.inputs) }

// NumOutputs returns the number of primary outputs.
func (g *Graph) NumOutputs() int { return len(g.outputs) }

// NumAnds returns the number of AND nodes (the conventional AIG size).
func (g *Graph) NumAnds() int { return len(g.nodes) - 1 - len(g.inputs) }

// AddInput appends a fresh primary input and returns its literal.
func (g *Graph) AddInput(name string) Lit {
	v := len(g.nodes)
	g.nodes = append(g.nodes, node{kind: kindInput})
	g.inputs = append(g.inputs, v)
	g.inNames = append(g.inNames, name)
	g.invalidate()
	return MakeLit(v, false)
}

// Input returns the literal of the i-th primary input.
func (g *Graph) Input(i int) Lit { return MakeLit(g.inputs[i], false) }

// InputName returns the name of the i-th primary input.
func (g *Graph) InputName(i int) string { return g.inNames[i] }

// AddOutput registers l as a primary output.
func (g *Graph) AddOutput(l Lit, name string) {
	g.outputs = append(g.outputs, l)
	g.outNames = append(g.outNames, name)
}

// Output returns the literal of the i-th primary output.
func (g *Graph) Output(i int) Lit { return g.outputs[i] }

// OutputName returns the name of the i-th primary output.
func (g *Graph) OutputName(i int) string { return g.outNames[i] }

// IsInput reports whether variable v is a primary input.
func (g *Graph) IsInput(v int) bool { return g.nodes[v].kind == kindInput }

// IsAnd reports whether variable v is an AND node.
func (g *Graph) IsAnd(v int) bool { return g.nodes[v].kind == kindAnd }

// Fanins returns the two fanin literals of AND variable v.
// It panics when v is not an AND node.
func (g *Graph) Fanins(v int) (Lit, Lit) {
	n := &g.nodes[v]
	if n.kind != kindAnd {
		panic(fmt.Sprintf("aig: variable %d is not an AND node", v))
	}
	return n.fan0, n.fan1
}

func (g *Graph) invalidate() {
	g.levels = nil
	g.fanoutSize = nil
}

func strashKey(a, b Lit) uint64 { return uint64(a)<<32 | uint64(b) }

// And returns a literal computing the conjunction of a and b, reusing an
// existing structurally identical node when one exists and folding the
// trivial cases (constants, equal and complementary fanins).
func (g *Graph) And(a, b Lit) Lit {
	// Constant and trivial folding.
	if a == False || b == False || a == b.Not() {
		return False
	}
	if a == True {
		return b
	}
	if b == True || a == b {
		return a
	}
	if a > b {
		a, b = b, a
	}
	key := strashKey(a, b)
	if l, ok := g.strash[key]; ok {
		return l
	}
	v := len(g.nodes)
	g.nodes = append(g.nodes, node{fan0: a, fan1: b, kind: kindAnd})
	l := MakeLit(v, false)
	g.strash[key] = l
	g.invalidate()
	return l
}

// Or returns a literal computing the disjunction of a and b.
func (g *Graph) Or(a, b Lit) Lit { return g.And(a.Not(), b.Not()).Not() }

// Xor returns a literal computing a XOR b (three AND nodes).
func (g *Graph) Xor(a, b Lit) Lit {
	return g.Or(g.And(a, b.Not()), g.And(a.Not(), b))
}

// Xnor returns a literal computing NOT(a XOR b).
func (g *Graph) Xnor(a, b Lit) Lit { return g.Xor(a, b).Not() }

// Mux returns a literal computing (sel ? t : e).
func (g *Graph) Mux(sel, t, e Lit) Lit {
	return g.Or(g.And(sel, t), g.And(sel.Not(), e))
}

// Maj returns the majority of three literals, the carry function.
func (g *Graph) Maj(a, b, c Lit) Lit {
	return g.Or(g.And(a, b), g.Or(g.And(a, c), g.And(b, c)))
}

// AndN folds And over a literal slice. An empty slice yields True.
// The reduction is balanced to keep logic depth logarithmic.
func (g *Graph) AndN(ls []Lit) Lit {
	switch len(ls) {
	case 0:
		return True
	case 1:
		return ls[0]
	}
	mid := len(ls) / 2
	return g.And(g.AndN(ls[:mid]), g.AndN(ls[mid:]))
}

// OrN folds Or over a literal slice. An empty slice yields False.
func (g *Graph) OrN(ls []Lit) Lit {
	switch len(ls) {
	case 0:
		return False
	case 1:
		return ls[0]
	}
	mid := len(ls) / 2
	return g.Or(g.OrN(ls[:mid]), g.OrN(ls[mid:]))
}

// Levels returns the logic level of every variable: inputs and the
// constant are level 0 and an AND node is one more than its deepest
// fanin. The result is memoized until the graph changes.
func (g *Graph) Levels() []int32 {
	if g.levels != nil {
		return g.levels
	}
	lv := make([]int32, len(g.nodes))
	for v := 1; v < len(g.nodes); v++ {
		n := &g.nodes[v]
		if n.kind != kindAnd {
			continue
		}
		l0 := lv[n.fan0.Var()]
		l1 := lv[n.fan1.Var()]
		if l1 > l0 {
			l0 = l1
		}
		lv[v] = l0 + 1
	}
	g.levels = lv
	return lv
}

// Depth returns the maximum logic level over the primary outputs.
func (g *Graph) Depth() int {
	lv := g.Levels()
	var d int32
	for _, o := range g.outputs {
		if l := lv[o.Var()]; l > d {
			d = l
		}
	}
	return int(d)
}

// FanoutCounts returns, for every variable, the number of fanout
// references from AND nodes and primary outputs.
func (g *Graph) FanoutCounts() []int32 {
	if g.fanoutSize != nil {
		return g.fanoutSize
	}
	fo := make([]int32, len(g.nodes))
	for v := 1; v < len(g.nodes); v++ {
		n := &g.nodes[v]
		if n.kind != kindAnd {
			continue
		}
		fo[n.fan0.Var()]++
		fo[n.fan1.Var()]++
	}
	for _, o := range g.outputs {
		fo[o.Var()]++
	}
	g.fanoutSize = fo
	return fo
}

// Stats summarizes graph size and shape.
type Stats struct {
	Inputs  int
	Outputs int
	Ands    int
	Depth   int
}

// Stats returns size and depth statistics for the graph.
func (g *Graph) Stats() Stats {
	return Stats{
		Inputs:  g.NumInputs(),
		Outputs: g.NumOutputs(),
		Ands:    g.NumAnds(),
		Depth:   g.Depth(),
	}
}

func (s Stats) String() string {
	return fmt.Sprintf("i/o=%d/%d ands=%d depth=%d", s.Inputs, s.Outputs, s.Ands, s.Depth)
}

// MarkCone sets mark[v] for every variable in the transitive fanin cone
// of root (including root itself).
func (g *Graph) MarkCone(root Lit, mark []bool) {
	stack := []int{root.Var()}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if mark[v] {
			continue
		}
		mark[v] = true
		if n := &g.nodes[v]; n.kind == kindAnd {
			stack = append(stack, n.fan0.Var(), n.fan1.Var())
		}
	}
}

// ConeSize returns the number of AND nodes in the transitive fanin cone
// of the given literal.
func (g *Graph) ConeSize(root Lit) int {
	mark := make([]bool, len(g.nodes))
	g.MarkCone(root, mark)
	count := 0
	for v, m := range mark {
		if m && g.nodes[v].kind == kindAnd {
			count++
		}
	}
	return count
}

// Sweep returns a copy of the graph containing only nodes reachable from
// a primary output, along with a map from old variable to new literal.
// Input and output order and names are preserved.
func (g *Graph) Sweep() (*Graph, []Lit) {
	mark := make([]bool, len(g.nodes))
	for _, o := range g.outputs {
		g.MarkCone(o, mark)
	}
	ng := New(g.Name)
	old2new := make([]Lit, len(g.nodes))
	old2new[0] = False
	// Inputs are kept even when dangling so that I/O signatures match.
	for i, v := range g.inputs {
		old2new[v] = ng.AddInput(g.inNames[i])
	}
	for v := 1; v < len(g.nodes); v++ {
		n := &g.nodes[v]
		if n.kind != kindAnd || !mark[v] {
			continue
		}
		f0 := old2new[n.fan0.Var()].NotIf(n.fan0.IsNeg())
		f1 := old2new[n.fan1.Var()].NotIf(n.fan1.IsNeg())
		old2new[v] = ng.And(f0, f1)
	}
	for i, o := range g.outputs {
		ng.AddOutput(old2new[o.Var()].NotIf(o.IsNeg()), g.outNames[i])
	}
	return ng, old2new
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	ng := &Graph{
		Name:     g.Name,
		nodes:    append([]node(nil), g.nodes...),
		inputs:   append([]int(nil), g.inputs...),
		outputs:  append([]Lit(nil), g.outputs...),
		inNames:  append([]string(nil), g.inNames...),
		outNames: append([]string(nil), g.outNames...),
		strash:   make(map[uint64]Lit, len(g.strash)),
	}
	for k, v := range g.strash {
		ng.strash[k] = v
	}
	return ng
}

// TopoAnds calls fn for every AND variable in topological (fanin-first)
// order, passing the variable index and the two fanin literals.
func (g *Graph) TopoAnds(fn func(v int, f0, f1 Lit)) {
	for v := 1; v < len(g.nodes); v++ {
		n := &g.nodes[v]
		if n.kind == kindAnd {
			fn(v, n.fan0, n.fan1)
		}
	}
}

// InputVars returns the variable indices of the primary inputs in order.
func (g *Graph) InputVars() []int { return append([]int(nil), g.inputs...) }

// Outputs returns the primary output literals in order.
func (g *Graph) Outputs() []Lit { return append([]Lit(nil), g.outputs...) }

// LevelHistogram returns a map from logic level to the number of AND
// nodes at that level; useful as a structural feature.
func (g *Graph) LevelHistogram() map[int]int {
	lv := g.Levels()
	h := make(map[int]int)
	for v := 1; v < len(g.nodes); v++ {
		if g.nodes[v].kind == kindAnd {
			h[int(lv[v])]++
		}
	}
	return h
}

// SortedLevels returns the distinct logic levels of AND nodes ascending.
func (g *Graph) SortedLevels() []int {
	h := g.LevelHistogram()
	out := make([]int, 0, len(h))
	for l := range h {
		out = append(out, l)
	}
	sort.Ints(out)
	return out
}
