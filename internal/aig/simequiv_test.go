package aig

import (
	"testing"
	"testing/quick"
)

func TestSimEquivShapeMismatch(t *testing.T) {
	g := New("g")
	a := g.AddInput("a")
	g.AddOutput(a, "f")
	h := New("h")
	h.AddInput("a")
	h.AddInput("b")
	if SimEquiv(g, h, 1, 4) {
		t.Fatal("I/O mismatch reported equivalent")
	}
}

func TestSimEquivStructuralFastPath(t *testing.T) {
	g := randGraph(7, 8, 100, 5)
	if !SimEquiv(g, g.Clone(), 1, 0) {
		t.Fatal("clone not structurally identical")
	}
}

func TestSimEquivConstantFastPath(t *testing.T) {
	g := New("g")
	g.AddInput("a")
	g.AddOutput(True, "f")
	h := New("h")
	h.AddInput("a")
	h.AddOutput(False, "f")
	if SimEquiv(g, h, 1, 4) {
		t.Fatal("True vs False reported equivalent")
	}
	h2 := New("h2")
	h2.AddInput("a")
	h2.AddOutput(True, "f")
	if !SimEquiv(g, h2, 1, 4) {
		t.Fatal("True vs True reported different")
	}
}

// TestSimEquivExhaustiveIsExact: at <= 6 inputs SimEquiv must find the
// single differing assignment no random round could be trusted with —
// two functions differing in exactly one minterm.
func TestSimEquivExhaustiveIsExact(t *testing.T) {
	g := New("and6")
	h := New("true6")
	var gl []Lit
	for i := 0; i < 6; i++ {
		gl = append(gl, g.AddInput(""))
		h.AddInput("")
	}
	// g = AND of all six inputs; h = constant true. They agree on 63 of
	// 64 assignments.
	g.AddOutput(g.AndN(gl), "f")
	h.AddOutput(True, "f")
	if SimEquiv(g, h, 42, 1) {
		t.Fatal("one-minterm difference missed at <=6 inputs")
	}
}

// TestSimEquivRefutesOnWideGraphs: the random path must separate AND
// from OR over many inputs.
func TestSimEquivRefutesOnWideGraphs(t *testing.T) {
	g := New("wand")
	h := New("wor")
	var gl, hl []Lit
	for i := 0; i < 16; i++ {
		gl = append(gl, g.AddInput(""))
		hl = append(hl, h.AddInput(""))
	}
	g.AddOutput(g.AndN(gl).Not(), "f")
	h.AddOutput(h.OrN(hlNot(h, hl)), "f")
	// By De Morgan these are actually equivalent; SimEquiv must agree.
	if !SimEquiv(g, h, 3, 16) {
		t.Fatal("De Morgan pair reported different")
	}
	// Flip one output polarity: must refute.
	g2 := New("wand2")
	var g2l []Lit
	for i := 0; i < 16; i++ {
		g2l = append(g2l, g2.AddInput(""))
	}
	g2.AddOutput(g2.AndN(g2l), "f")
	if SimEquiv(g2, h, 3, 16) {
		t.Fatal("complemented function reported equivalent")
	}
}

func hlNot(g *Graph, ls []Lit) []Lit {
	out := make([]Lit, len(ls))
	for i, l := range ls {
		out[i] = l.Not()
	}
	return out
}

// Property: SimEquiv agrees with the signature-based Equivalent on
// random graph pairs (same graph swept vs a random rebuild).
func TestQuickSimEquivMatchesEquivalent(t *testing.T) {
	f := func(seed int64) bool {
		g := randGraph(seed, 7, 80, 4)
		sw, _ := g.Sweep()
		other := randGraph(seed+1, 7, 80, 4)
		return SimEquiv(g, sw, seed, 8) &&
			SimEquiv(g, other, seed, 8) == Equivalent(g, other, seed, 8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
