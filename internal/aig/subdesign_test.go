package aig

import (
	"testing"
	"testing/quick"
)

// TestExtractStitchRoundTrip: lifting every partition into a standalone
// sub-design and stitching them back must reproduce the function, the
// I/O shape and the port names.
func TestExtractStitchRoundTrip(t *testing.T) {
	for _, grain := range []int{10, 40, 1 << 30} {
		g := randGraph(17, 8, 300, 12)
		cp := g.PartitionCones(grain)
		subs := g.ExtractSubDesigns(cp)
		if len(subs) != cp.NumParts() {
			t.Fatalf("grain %d: %d subs for %d partitions", grain, len(subs), cp.NumParts())
		}
		ng := StitchSubDesigns(g, cp, subs)
		if !SimEquiv(g, ng, 3, 16) {
			t.Fatalf("grain %d: stitched graph differs from original", grain)
		}
		if ng.NumInputs() != g.NumInputs() || ng.NumOutputs() != g.NumOutputs() {
			t.Fatalf("grain %d: stitched I/O %d/%d, want %d/%d",
				grain, ng.NumInputs(), ng.NumOutputs(), g.NumInputs(), g.NumOutputs())
		}
	}
}

// TestSubDesignInterfaceInvariants: each sub-design's Graph matches its
// declared interface, reference lists are ascending, and imports only
// name parent inputs or nodes owned by strictly lower partitions.
func TestSubDesignInterfaceInvariants(t *testing.T) {
	f := func(seed int64) bool {
		g := randGraph(seed, 7, 200, 10)
		cp := g.PartitionCones(30)
		subs := g.ExtractSubDesigns(cp)
		for pi, sub := range subs {
			if sub.Graph.NumInputs() != len(sub.Imports) {
				return false
			}
			if sub.Graph.NumOutputs() != len(sub.Outputs)+len(sub.Exports) {
				return false
			}
			for i, u := range sub.Imports {
				if i > 0 && sub.Imports[i-1] >= u {
					return false
				}
				if own := cp.Owner[u]; own >= int32(pi) {
					return false
				}
			}
			for i, u := range sub.Exports {
				if i > 0 && sub.Exports[i-1] >= u {
					return false
				}
				if cp.Owner[u] != int32(pi) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestStitchAfterIndependentRework: sub-designs transformed between
// extraction and stitching — here swept, the function-preserving
// transformation available at this layer — still stitch to an
// equivalent whole. This is the contract hierarchical flows rely on
// when every sub-design runs its own synthesis job.
func TestStitchAfterIndependentRework(t *testing.T) {
	g := randGraph(23, 8, 250, 10)
	cp := g.PartitionCones(40)
	subs := g.ExtractSubDesigns(cp)
	for i := range subs {
		swept, _ := subs[i].Graph.Sweep()
		swept.Name = subs[i].Graph.Name
		subs[i].Graph = swept
	}
	ng := StitchSubDesigns(g, cp, subs)
	if !SimEquiv(g, ng, 5, 16) {
		t.Fatal("stitch after per-sub rework changed function")
	}
}

// TestExtractSubDesignsDegenerate: graphs with no outputs produce no
// sub-designs and stitch back to an input-only shell; constant outputs
// survive the round trip.
func TestExtractSubDesignsDegenerate(t *testing.T) {
	g := New("empty")
	g.AddInput("a")
	cp := g.PartitionCones(8)
	subs := g.ExtractSubDesigns(cp)
	if len(subs) != 0 {
		t.Fatalf("no-output graph produced %d subs", len(subs))
	}
	ng := StitchSubDesigns(g, cp, subs)
	if ng.NumInputs() != 1 || ng.NumOutputs() != 0 {
		t.Fatalf("degenerate stitch: %d inputs, %d outputs", ng.NumInputs(), ng.NumOutputs())
	}

	h := New("const")
	a := h.AddInput("a")
	h.AddOutput(True, "t")
	h.AddOutput(a, "w")
	hcp := h.PartitionCones(8)
	hng := StitchSubDesigns(h, hcp, h.ExtractSubDesigns(hcp))
	if !SimEquiv(h, hng, 1, 4) {
		t.Fatal("constant/wire outputs broken by round trip")
	}
}
