package aig

// Canonical structural identity for the content-addressed artifact
// cache: two graphs with the same fingerprint are the same circuit
// node for node — variable layout, input/output bindings, names and
// every AND's fanin pair — independent of how they were built or
// serialized. FNV-1a over fixed-width words, so the hash covers
// structure, not formatting.

const (
	fpOffset = 14695981039346656037
	fpPrime  = 1099511628211
)

type fpHasher uint64

func (h *fpHasher) word(v uint64) {
	x := uint64(*h)
	for i := 0; i < 8; i++ {
		x ^= (v >> (8 * i)) & 0xff
		x *= fpPrime
	}
	*h = fpHasher(x)
}

func (h *fpHasher) str(s string) {
	h.word(uint64(len(s)))
	x := uint64(*h)
	for i := 0; i < len(s); i++ {
		x ^= uint64(s[i])
		x *= fpPrime
	}
	*h = fpHasher(x)
}

// Fingerprint returns the graph's canonical structural hash.
func (g *Graph) Fingerprint() uint64 {
	h := fpHasher(fpOffset)
	h.word(uint64(g.NumVars()))
	h.word(uint64(g.NumInputs()))
	h.word(uint64(g.NumOutputs()))
	for i := 0; i < g.NumInputs(); i++ {
		h.str(g.InputName(i))
		h.word(uint64(g.Input(i)))
	}
	for i := 0; i < g.NumOutputs(); i++ {
		h.str(g.OutputName(i))
		h.word(uint64(g.Output(i)))
	}
	for v := 0; v < g.NumVars(); v++ {
		if !g.IsAnd(v) {
			continue
		}
		a, b := g.Fanins(v)
		h.word(uint64(int64(v)))
		h.word(uint64(a))
		h.word(uint64(b))
	}
	return uint64(h)
}

// ApproxBytes estimates the graph's in-memory footprint — the unit a
// byte-budgeted artifact cache accounts this graph in.
func (g *Graph) ApproxBytes() int64 {
	// Two fanin literals per var plus node bookkeeping, and the
	// input/output binding tables with their names.
	b := int64(g.NumVars()) * 24
	for i := 0; i < g.NumInputs(); i++ {
		b += 16 + int64(len(g.InputName(i)))
	}
	for i := 0; i < g.NumOutputs(); i++ {
		b += 16 + int64(len(g.OutputName(i)))
	}
	return b
}
