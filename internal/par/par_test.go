package par

import (
	"sync/atomic"
	"testing"

	"edacloud/internal/perf"
)

func testPools(t *testing.T) []*Pool {
	t.Helper()
	return []*Pool{Fixed(1), Fixed(2), Fixed(8)}
}

func TestForCoversEveryIndexOnce(t *testing.T) {
	for _, p := range testPools(t) {
		for _, n := range []int{0, 1, 7, 100, 1000} {
			for _, grain := range []int{0, 1, 3, 64, 5000} {
				hits := make([]int32, n)
				p.For(n, grain, func(lo, hi int) {
					if lo < 0 || hi > n || lo >= hi {
						t.Errorf("workers=%d n=%d grain=%d: bad chunk [%d,%d)", p.Workers(), n, grain, lo, hi)
					}
					for i := lo; i < hi; i++ {
						atomic.AddInt32(&hits[i], 1)
					}
				})
				for i, h := range hits {
					if h != 1 {
						t.Fatalf("workers=%d n=%d grain=%d: index %d visited %d times", p.Workers(), n, grain, i, h)
					}
				}
			}
		}
	}
}

func TestForNilPoolRunsSerially(t *testing.T) {
	var p *Pool
	sum := 0
	p.For(10, 3, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			sum += i
		}
	})
	if sum != 45 {
		t.Fatalf("nil-pool For sum = %d", sum)
	}
}

func TestMapOrder(t *testing.T) {
	for _, p := range testPools(t) {
		got := Map(p, 100, func(i int) int { return i * i })
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: Map[%d] = %d", p.Workers(), i, v)
			}
		}
	}
	if Map(Fixed(2), 0, func(i int) int { return i }) != nil {
		t.Fatal("empty Map should be nil")
	}
}

// TestReduceBitIdentical: a floating-point sum whose merge order is
// fixed by chunk index must be bit-identical for every worker count.
func TestReduceBitIdentical(t *testing.T) {
	xs := make([]float64, 10007)
	for i := range xs {
		xs[i] = 1.0 / float64(i+1)
	}
	chunk := func(lo, hi int) float64 {
		var s float64
		for i := lo; i < hi; i++ {
			s += xs[i]
		}
		return s
	}
	merge := func(a, b float64) float64 { return a + b }
	want := Reduce(Fixed(1), len(xs), 64, 0.0, chunk, merge)
	for _, p := range testPools(t) {
		got := Reduce(p, len(xs), 64, 0.0, chunk, merge)
		if got != want {
			t.Fatalf("workers=%d: Reduce = %x, want %x", p.Workers(), got, want)
		}
	}
}

// TestForProbeDeterministicCounters: the shard layout is a pure
// function of the iteration shape, so the simulated counters must be
// identical for every worker count.
func TestForProbeDeterministicCounters(t *testing.T) {
	run := func(p *Pool) perf.Counters {
		probe := perf.NewProbe(perf.DefaultProbeConfig())
		// Two regions back to back: shard state must persist and merge
		// deterministically across regions.
		for region := 0; region < 2; region++ {
			p.ForProbe(probe, 1000, 16, func(lo, hi, shard int, sp *perf.Probe) {
				for i := lo; i < hi; i++ {
					sp.LoadHot(region, uint64(i))
					sp.Branch(0x7, i%3 == 0)
					sp.Ops(5)
				}
			})
		}
		return probe.Counters()
	}
	want := run(Fixed(1))
	if want.Instrs == 0 {
		t.Fatal("no events recorded")
	}
	for _, p := range testPools(t) {
		if got := run(p); got != want {
			t.Fatalf("workers=%d: counters %+v, want %+v", p.Workers(), got, want)
		}
	}
}

func TestForProbeNilProbe(t *testing.T) {
	hits := make([]int32, 500)
	Fixed(4).ForProbe(nil, len(hits), 8, func(lo, hi, shard int, sp *perf.Probe) {
		if sp != nil {
			t.Error("nil probe should yield nil shards")
		}
		for i := lo; i < hi; i++ {
			atomic.AddInt32(&hits[i], 1)
		}
	})
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("index %d visited %d times", i, h)
		}
	}
}

// TestNestedForNoDeadlock: a parallel region launched from inside a
// parallel region must degrade gracefully instead of deadlocking on a
// saturated pool.
func TestNestedForNoDeadlock(t *testing.T) {
	p := Fixed(2)
	var total atomic.Int64
	p.For(8, 1, func(lo, hi int) {
		p.For(100, 10, func(ilo, ihi int) {
			total.Add(int64(ihi - ilo))
		})
	})
	if total.Load() != 800 {
		t.Fatalf("nested For total = %d, want 800", total.Load())
	}
}

func TestPoolReuseAcrossCalls(t *testing.T) {
	p := Fixed(4)
	for iter := 0; iter < 200; iter++ {
		var n atomic.Int64
		p.For(64, 4, func(lo, hi int) { n.Add(int64(hi - lo)) })
		if n.Load() != 64 {
			t.Fatalf("iter %d: covered %d of 64", iter, n.Load())
		}
	}
}

func TestFixedPoolsAreCached(t *testing.T) {
	if Fixed(3) != Fixed(3) {
		t.Fatal("Fixed(3) not cached")
	}
	if Default() != Fixed(0) {
		t.Fatal("Default is not the GOMAXPROCS pool")
	}
	if Fixed(5).Workers() != 5 {
		t.Fatalf("Workers = %d", Fixed(5).Workers())
	}
}

func TestNewPoolClose(t *testing.T) {
	p := NewPool(3)
	var n atomic.Int64
	p.For(30, 1, func(lo, hi int) { n.Add(int64(hi - lo)) })
	p.Close()
	if n.Load() != 30 {
		t.Fatalf("covered %d of 30", n.Load())
	}
}
