// Package par is the shared parallel execution engine of the EDA
// flows. The source paper's central observation is that EDA jobs have
// heterogeneous, stage-dependent parallel speedup; this package is the
// substrate that lets every hot kernel — synthesis cut enumeration,
// STA level sweeps, placement matrix-vector products, GCN matrix
// kernels, routing tiles and characterization fan-out — actually use
// the machine's cores while keeping results byte-identical to a
// serial run.
//
// # Pools
//
// A Pool owns a fixed set of long-lived worker goroutines and is
// reusable across any number of parallel regions, so per-call
// goroutine churn is zero. Default returns the process-wide
// GOMAXPROCS-sized pool; Fixed(n) returns a cached pool of exactly n
// workers (used by tests and by callers honoring a Workers option).
// Pools never block the caller on a saturated pool: when every worker
// is busy (nested parallelism), the submitting goroutine simply keeps
// the work and runs it inline, so parallel regions degrade gracefully
// to serial execution instead of deadlocking.
//
// # Determinism
//
// Every scheduling decision that could affect an observable result is
// a pure function of the problem shape, never of the worker count or
// OS scheduling:
//
//   - For splits [0,n) into fixed chunks of `grain` consecutive
//     indices. Chunks are claimed dynamically, but each output index
//     is written by exactly one chunk, so data results are identical
//     for any worker count.
//   - Reduce evaluates fixed chunks and merges the partial results in
//     ascending chunk order, so floating-point reductions are
//     bit-identical regardless of which worker computed which chunk.
//   - ForProbe statically assigns chunk c to shard c%S where
//     S = min(ProbeShards, chunks) depends only on the iteration
//     shape. Each shard's chunks run in ascending order on one
//     goroutine with that shard's perf.Probe, and shard counters are
//     merged into the parent probe in shard order afterwards. The
//     simulated performance counters are therefore the same on a
//     1-core laptop and a 64-core server.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"

	"edacloud/internal/ints"
	"edacloud/internal/perf"
)

// ProbeShards is the fixed fan-out of instrumented parallel regions.
// It is a constant (not GOMAXPROCS) so that simulated performance
// counters are machine-independent: a probed region always splits its
// work across the same shard set, whatever the real core count.
const ProbeShards = 8

// Pool is a reusable bounded worker pool. The zero value is not
// usable; construct with NewPool, Fixed or Default. A nil *Pool is
// valid everywhere and runs serially.
type Pool struct {
	workers int
	tasks   chan func()
}

// NewPool starts a pool of n workers; n <= 0 means GOMAXPROCS.
// Callers that create ad-hoc pools should Close them; the pools
// returned by Default and Fixed live for the process and must not be
// closed.
func NewPool(n int) *Pool {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	p := &Pool{workers: n, tasks: make(chan func())}
	for i := 0; i < n; i++ {
		go p.work()
	}
	return p
}

func (p *Pool) work() {
	for fn := range p.tasks {
		fn()
	}
}

// Close stops the pool's workers once queued work finishes.
func (p *Pool) Close() { close(p.tasks) }

// Workers returns the pool's worker count (1 for a nil pool).
func (p *Pool) Workers() int {
	if p == nil {
		return 1
	}
	return p.workers
}

var (
	poolsMu sync.Mutex
	pools   = map[int]*Pool{}
)

// Default returns the shared GOMAXPROCS-sized pool.
func Default() *Pool { return Fixed(0) }

// Fixed returns the shared pool with exactly n workers (n <= 0 means
// GOMAXPROCS). Pools are created on first use and cached for the
// process lifetime, so engines can resolve a Workers option to a pool
// on every call without goroutine churn.
func Fixed(n int) *Pool {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	poolsMu.Lock()
	defer poolsMu.Unlock()
	p := pools[n]
	if p == nil {
		p = NewPool(n)
		pools[n] = p
	}
	return p
}

// trySubmit hands fn to an idle worker, returning false when every
// worker is busy; the caller then keeps the work. Never blocks.
func (p *Pool) trySubmit(fn func()) bool {
	select {
	case p.tasks <- fn:
		return true
	default:
		return false
	}
}

func chunkCount(n, grain int) int { return ints.CeilDiv(n, grain) }

// For runs fn over consecutive chunks [start, end) covering [0, n),
// each at most grain long (grain <= 0 picks one aimed at ~4 chunks
// per worker). Chunks are claimed dynamically; fn must only write
// state derived from its own index range. The calling goroutine
// participates in the work.
func (p *Pool) For(n, grain int, fn func(start, end int)) {
	if n <= 0 {
		return
	}
	if grain <= 0 {
		grain = n/(p.Workers()*4) + 1
	}
	nchunks := chunkCount(n, grain)
	if p == nil || p.workers == 1 || nchunks == 1 {
		fn(0, n)
		return
	}
	var next atomic.Int64
	body := func() {
		for {
			c := int(next.Add(1)) - 1
			if c >= nchunks {
				return
			}
			lo := c * grain
			hi := lo + grain
			if hi > n {
				hi = n
			}
			fn(lo, hi)
		}
	}
	p.runShared(body, min(p.workers, nchunks))
}

// runShared runs body on up to want goroutines: the caller plus as
// many idle pool workers as it can recruit without blocking.
func (p *Pool) runShared(body func(), want int) {
	var wg sync.WaitGroup
	for i := 0; i < want-1; i++ {
		wg.Add(1)
		ok := p.trySubmit(func() {
			defer wg.Done()
			body()
		})
		if !ok {
			wg.Done()
			break // pool saturated: the caller absorbs the rest
		}
	}
	body()
	wg.Wait()
}

// ForProbe is For for instrumented kernels. It partitions [0, n) into
// chunks of exactly grain (grain <= 0 means 1) and statically assigns
// chunk c to shard c % S, S = min(ProbeShards, chunks) — a layout
// that depends only on the iteration shape. Shard s's chunks run in
// ascending order on a single goroutine, with probe.Shards(S)[s] (a
// per-worker probe with its own cache and predictor state, persistent
// across regions) passed to fn; afterwards the shard counters are
// merged into probe in shard order. Both data results and simulated
// counters are therefore identical for every pool size, including 1.
//
// fn receives the shard index so callers can keep shard-local scratch
// state; with a nil probe the same static schedule runs with a nil
// shard probe.
func (p *Pool) ForProbe(probe *perf.Probe, n, grain int, fn func(start, end, shard int, probe *perf.Probe)) {
	if n <= 0 {
		return
	}
	if grain <= 0 {
		grain = 1
	}
	nchunks := chunkCount(n, grain)
	shards := min(ProbeShards, nchunks)
	if shards == 1 {
		fn(0, n, 0, probe)
		return
	}
	shardProbes := probe.Shards(shards)
	var next atomic.Int64
	body := func() {
		for {
			s := int(next.Add(1)) - 1
			if s >= shards {
				return
			}
			for c := s; c < nchunks; c += shards {
				lo := c * grain
				hi := lo + grain
				if hi > n {
					hi = n
				}
				fn(lo, hi, s, shardProbes[s])
			}
		}
	}
	p.runShared(body, min(p.Workers(), shards))
	probe.MergeShards(shardProbes)
}

// Map evaluates fn for every index in [0, n) on the pool and returns
// the results in index order.
func Map[T any](p *Pool, n int, fn func(i int) T) []T {
	if n <= 0 {
		return nil
	}
	out := make([]T, n)
	p.For(n, 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = fn(i)
		}
	})
	return out
}

// Reduce evaluates chunk over fixed grain-sized chunks of [0, n) in
// parallel and folds the partial results in ascending chunk order:
// merge(...merge(merge(zero, c0), c1)..., cLast). Because the chunk
// layout depends only on n and grain and the fold order is fixed, the
// result — floating-point included — is identical for any worker
// count.
func Reduce[T any](p *Pool, n, grain int, zero T, chunk func(start, end int) T, merge func(acc, part T) T) T {
	if n <= 0 {
		return zero
	}
	if grain <= 0 {
		grain = 1
	}
	nchunks := chunkCount(n, grain)
	parts := make([]T, nchunks)
	p.For(nchunks, 1, func(lo, hi int) {
		for c := lo; c < hi; c++ {
			s := c * grain
			e := s + grain
			if e > n {
				e = n
			}
			parts[c] = chunk(s, e)
		}
	})
	acc := zero
	for _, part := range parts {
		acc = merge(acc, part)
	}
	return acc
}
