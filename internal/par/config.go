package par

import "edacloud/internal/perf"

// StageConfig bundles the two execution knobs every flow engine
// accepts: the worker-pool bound and the performance probe. The four
// stage engines (synthesis, placement, routing, STA) embed it in their
// Options so flow-level code can thread one uniform configuration
// through a whole pipeline instead of re-plumbing the same pair of
// fields per stage (flow.StageConfig is an alias of this type).
type StageConfig struct {
	// Workers bounds the engine's worker pool; 0 means GOMAXPROCS.
	// Results are identical for every value.
	Workers int
	// Probe receives simulated performance events; nil runs the engine
	// uninstrumented.
	Probe *perf.Probe
}

// Pool resolves the configured worker bound to a shared pool.
func (c StageConfig) Pool() *Pool { return Fixed(c.Workers) }
