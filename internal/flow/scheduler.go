package flow

import (
	"context"
	"fmt"

	"edacloud/internal/aig"
	"edacloud/internal/cache"
	"edacloud/internal/cloud"
	"edacloud/internal/par"
	"edacloud/internal/perf"
	"edacloud/internal/techlib"
)

// Job is one flow to run against the scheduler's fleet — the unit of
// the paper's deployment problem. Under the default SingleInstance
// policy the job rents its Instance for the whole flow; under a
// stage-level policy each stage queues for its own machine. The zero
// Instance is a free single-vCPU machine, useful in tests.
type Job struct {
	// Name labels the job in results and fleet leases.
	Name string
	// Design is the input AIG; the scheduler clones it per run, so one
	// graph may back many jobs.
	Design *aig.Graph
	// Lib is the technology library.
	Lib *techlib.Library
	// Options shape the job's pipeline. The scheduler prepends the
	// shared context and an instance-sized probe factory, so options
	// here override both (e.g. WithStages for a partial flow).
	Options []Option
	// Instance is the VM the job rents under the SingleInstance policy
	// (and the probe-sizing fallback when a policy requests "any"
	// machine): its vCPU count and AVX capability drive the simulated
	// runtime, its price the bill.
	Instance cloud.InstanceType
	// Plan maps stages to instance types for the PlanPolicy — the
	// executable form of a deployment optimizer plan.
	Plan StagePlan
	// Choices is the optimizer's per-stage choice table in executable
	// form: the candidate instance types with their predicted runtimes.
	// AdaptivePolicy consults it to upgrade a stage whose queue wait has
	// eaten the job's slack; the placement engine reads it for the
	// runtime of a stage placed on a type other than the one its probe
	// was sized for.
	Choices StageChoices
	// DeadlineSec is the job's completion deadline in simulated
	// seconds, measured against FinishSec (queueing included); 0 means
	// none.
	DeadlineSec float64
	// Retry governs the job's reaction to spot revocations (backoff,
	// per-stage attempt cap, escalation to on-demand). The zero value
	// applies defaults and never engages without a revocation model on
	// the fleet.
	Retry RetryPolicy
	// Interference is the multi-tenant slowdown on the job's host (see
	// cloud.Host.Interference); 0 means an idle host.
	Interference float64
	// WorkScale extrapolates simulated runtime to full design size;
	// 0 means 1 (no extrapolation).
	WorkScale float64
}

// StageResult is one stage's placement in the simulated schedule.
type StageResult struct {
	Kind JobKind
	// Instance is the fleet instance ID the stage ran on, Type its
	// instance type.
	Instance string
	Type     cloud.InstanceType
	// StartSec is when the stage began; WaitSec is how long it queued
	// for its machine beyond its ready time.
	StartSec float64
	WaitSec  float64
	// Seconds is the stage's simulated runtime on its instance.
	Seconds float64
	// CostUSD is the stage's lease bill; for a job holding one machine
	// across stages it is the marginal bill of extending the lease.
	CostUSD float64
	// Attempt is the 1-based run count of this stage kind within the
	// job: 1 for a first run, higher for retries after revocations.
	Attempt int
	// Cached marks a stage served from the artifact cache: its Seconds
	// are the cache-probe constant and — unless the job was holding a
	// machine across stages — it booked no lease and cost nothing.
	Cached bool
	// Revoked marks an attempt cut short by a spot revocation at
	// RevokedAt; Seconds then holds only the survived (lost) work and
	// the stage re-enters the queue from its last checkpoint.
	Revoked   bool
	RevokedAt float64
}

// JobResult is one job's outcome.
type JobResult struct {
	Name     string
	Instance cloud.InstanceType
	// Run holds the flow's artifacts; on error it carries whatever the
	// completed stages produced.
	Run *RunContext
	Err error
	// Stages records the per-stage placements in execution order.
	Stages []StageResult
	// Seconds is the busy machine time: the sum of the stage runtimes
	// on their instances. Bills can exceed it under a minimum billing
	// granularity (cloud.InstanceType.MinBillSec).
	Seconds float64
	// StartSec and FinishSec bound the job in simulated batch time;
	// WaitSec totals the time spent queueing for machines, so
	// FinishSec-StartSec-Seconds is the job's internal wait.
	StartSec, FinishSec, WaitSec float64
	// CostUSD sums the job's lease bills.
	CostUSD float64
	// DeadlineMet reports whether the job finished (FinishSec) within
	// its deadline (always false on error; true when no deadline was
	// set).
	DeadlineMet bool
	// Revocations counts the job's stage attempts cut by spot
	// reclamations; RetriedSec totals the work those attempts lost
	// (billed busy time that had to be redone).
	Revocations int
	RetriedSec  float64
	// RecoveredFromCheckpoint counts revocations the job survived by
	// resuming from a completed-stage boundary instead of from scratch.
	RecoveredFromCheckpoint int
}

// Schedule aggregates a batch of jobs. All aggregates fold in job
// order, so they are identical for any scheduler worker count.
type Schedule struct {
	Jobs []JobResult
	// Policy names the placement policy the schedule ran under.
	Policy string
	// Fleet is the instance pool the schedule ran on — the internally
	// built one-instance-per-job pool when Scheduler.Fleet was nil —
	// with its lease timelines and cost ledger filled in.
	Fleet *cloud.Fleet
	// TotalCostUSD is the batch bill across all instances.
	TotalCostUSD float64
	// TotalCPUSeconds sums simulated busy runtime over instances; the
	// bill follows it except where a minimum billing granularity floors
	// short leases.
	TotalCPUSeconds float64
	// MakespanSec is the latest job finish time — the batch completion
	// time.
	MakespanSec float64
	// TotalWaitSec sums the jobs' queueing time — zero on an unbounded
	// (dedicated) fleet, the contention signal on a bounded one.
	TotalWaitSec float64
	// UtilizationPct is the fleet's busy share over the makespan.
	UtilizationPct float64
	// DeadlinesMissed counts jobs that finished past their deadline.
	DeadlinesMissed int
	// Failed counts jobs that returned an error.
	Failed int
	// Revocations and RetriedSec aggregate the jobs' spot-reclamation
	// counts and lost work; both zero on fleets without a revocation
	// model.
	Revocations int
	RetriedSec  float64
	// CacheHits counts the stages served from the artifact cache.
	CacheHits int
}

// Scheduler runs flow jobs over a bounded fleet of simulated cloud
// instances — the multi-job batch deployment the paper optimizes for.
// The expensive pipeline runs fan out across the real host's cores via
// internal/par; instance placement happens afterwards in a serial
// event-driven simulation over the fleet, so simulated start times,
// waits, costs and deadlines are deterministic for any worker count.
//
// The zero Scheduler reproduces the historical behavior: every job on
// its own dedicated instance (an unbounded fleet) under the
// SingleInstance policy.
type Scheduler struct {
	// Workers bounds how many jobs run concurrently on the real host;
	// 0 means GOMAXPROCS. Results are identical for every value.
	Workers int
	// Fleet is the bounded instance pool jobs contend for. nil builds a
	// dedicated pool with one instance per job (each job's own
	// Instance), which never queues. A caller-supplied fleet is mutated
	// with the schedule's leases; Reset it before reuse.
	Fleet *cloud.Fleet
	// Policy decides which instance type each stage queues for; nil
	// means SingleInstance. Stage-level policies (ReInstance true)
	// require an explicit Fleet.
	Policy Policy
	// Cache is the fleet-wide content-addressed artifact store. When
	// set, pipelines look stages up under the frozen-store discipline
	// (Peek only — race-free in the parallel phase) and the scheduler
	// settles all accounting serially in job order before placement, so
	// hit/miss billing, schedules and artifacts are bit-identical at
	// any worker count. Eviction to the store's byte budget runs once,
	// at the end of the batch.
	Cache *cache.Store
}

// preparedJob is the phase-1 output for one job: its executed
// artifacts and reports plus the policy's per-stage instance requests,
// ready for the placement simulation.
type preparedJob struct {
	res      JobResult
	kinds    []JobKind
	requests map[JobKind]cloud.InstanceType
	// seconds, when non-nil, fixes each stage's simulated runtime
	// directly instead of replaying a probed report through the placed
	// machine's model — the forecast path (see Forecast), which has
	// predictions but no executed pipeline.
	seconds map[JobKind]float64
	// hold forces this job to keep one machine across its stages even
	// under a re-instancing policy — the forecast-side mirror of a
	// SingleInstance execution (ForecastJob.Hold).
	hold bool
	// readySec is the earliest simulated time the job's first stage may
	// start — the arrival time of a job entering a rolling-horizon
	// forecast (ForecastJob.ReadySec). Zero for batch runs.
	readySec float64
	// cached marks the stages the batch settled as artifact-cache hits
	// (adopted, or deduped against an earlier job of the same batch):
	// they run for the probe constant and book no lease unless the job
	// holds its machine.
	cached map[JobKind]bool
}

// stageSeconds predicts stage k's runtime on instance type it. Order
// of preference: the forecast's fixed prediction; the probed report
// replayed through the machine model when the stage was probed for
// this type (the exact path plan execution is validated on); the
// job's choice table for a stage adaptively placed on a different
// type than its probe was sized for; and the probed report again as
// the last resort.
func (p *preparedJob) stageSeconds(job *Job, k JobKind, it cloud.InstanceType) float64 {
	// A cached stage costs the probe constant on any machine — checked
	// first so forecasts and executions price hits identically.
	if p.cached[k] {
		return cache.ProbeSeconds
	}
	if p.seconds != nil {
		return p.seconds[k]
	}
	if req, ok := p.requests[k]; ok && req.Name == it.Name {
		return jobMachine(job, it).Seconds(p.res.Run.Reports[k])
	}
	if opt, ok := job.Choices.Option(k, it.Name); ok {
		return opt.Seconds
	}
	return jobMachine(job, it).Seconds(p.res.Run.Reports[k])
}

// Run executes the jobs and returns the aggregated schedule. A
// cancelled context fails the jobs that have not started and is
// reported both per job and as the returned error.
func (s *Scheduler) Run(ctx context.Context, jobs []Job) (*Schedule, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	policy := s.Policy
	if policy == nil {
		policy = SingleInstance{}
	}
	fleet := s.Fleet
	if fleet == nil {
		if policy.ReInstance() {
			return nil, fmt.Errorf("flow: policy %s re-instances between stages and needs an explicit Fleet", policy.Name())
		}
		entries := make([]cloud.FleetEntry, len(jobs))
		for i := range jobs {
			entries[i] = cloud.FleetEntry{Type: jobs[i].Instance, Count: 1}
		}
		fleet = cloud.NewFleet(entries...)
	}

	// Phase 1: run every job's pipeline (the real compute) in parallel.
	// With a cache attached the store is frozen for this phase: runs
	// only Peek and record their lookups.
	pool := par.Fixed(s.Workers)
	prepared := par.Map(pool, len(jobs), func(i int) *preparedJob {
		return prepare(ctx, &jobs[i], policy, s.Cache)
	})

	// Settle the cache serially in job order: bill hits and misses,
	// land computed entries (which is what turns two jobs sharing a
	// prefix into one compute plus one billed hit), then enforce the
	// byte budget once for the whole batch.
	if s.Cache != nil {
		for i := range prepared {
			if prepared[i].res.Run != nil {
				prepared[i].cached = replayAccounting(s.Cache, prepared[i].res.Run)
			}
		}
		s.Cache.EvictOver()
	}

	// Phase 2: place stages onto the fleet in a serial, deterministic
	// event simulation. With the internally built dedicated fleet, job
	// i is pinned to instance i, reproducing the historical
	// one-job-one-instance schedule exactly.
	pinned := s.Fleet == nil
	simulate(fleet, policy, jobs, prepared, pinned, nil)

	return buildSchedule(policy.Name(), fleet, prepared), ctx.Err()
}

// buildSchedule folds the placed jobs into the aggregate Schedule, in
// job order so every float sum is identical for any worker count. It
// serves both real runs and forecasts.
func buildSchedule(policyName string, fleet *cloud.Fleet, prepared []*preparedJob) *Schedule {
	sched := &Schedule{Policy: policyName, Fleet: fleet}
	for i := range prepared {
		r := &prepared[i].res
		sched.Jobs = append(sched.Jobs, *r)
		sched.TotalCostUSD += r.CostUSD
		sched.TotalCPUSeconds += r.Seconds
		sched.TotalWaitSec += r.WaitSec
		sched.Revocations += r.Revocations
		sched.RetriedSec += r.RetriedSec
		for _, st := range r.Stages {
			if st.Cached {
				sched.CacheHits++
			}
		}
		if r.FinishSec > sched.MakespanSec {
			sched.MakespanSec = r.FinishSec
		}
		if r.Err != nil {
			sched.Failed++
			continue
		}
		if !r.DeadlineMet {
			sched.DeadlinesMissed++
		}
	}
	sched.UtilizationPct = 100 * fleet.Utilization(sched.MakespanSec)
	return sched
}

// prepare runs one job's pipeline with per-stage probes sized to the
// policy's requested instance types, and collects the stage kinds and
// requests the placement simulation needs. It performs no fleet
// accounting — everything here is independent per job, which is what
// lets phase 1 fan out across cores.
func prepare(ctx context.Context, job *Job, policy Policy, store *cache.Store) *preparedJob {
	p := &preparedJob{res: JobResult{Name: job.Name, Instance: job.Instance}}
	if err := ctx.Err(); err != nil {
		p.res.Err = err
		return p
	}
	if job.Design == nil || job.Lib == nil {
		p.res.Err = fmt.Errorf("flow: job %q needs a design and a library", job.Name)
		return p
	}

	estCells := EstimateCells(job.Design.NumAnds())
	p.requests = map[JobKind]cloud.InstanceType{}
	opts := []Option{
		WithContext(ctx),
		WithNewProbe(func(k JobKind) *perf.Probe {
			return NewJobProbe(probeVCPUs(job, p.requests[k]), estCells)
		}),
	}
	if store != nil {
		opts = append(opts, withFrozenCache(store))
	}
	opts = append(opts, job.Options...)
	pipe := NewPipeline(opts...)

	// The pipeline's stage list determines which stages will run;
	// resolve the policy's per-stage instance requests before running
	// so each stage's probe is sized to the machine it is destined for
	// (the probe factory above reads the map lazily).
	for _, st := range pipe.Stages() {
		k := st.Kind()
		if _, ok := p.requests[k]; ok {
			continue
		}
		it, err := policy.Choose(job, k)
		if err != nil {
			p.res.Err = err
			return p
		}
		p.requests[k] = it
	}

	rc, err := pipe.Run(job.Design.Clone(), job.Lib)
	p.res.Run = rc
	if err != nil {
		p.res.Err = err
		return p
	}
	// Fixed kind order keeps stage sequencing — and therefore every
	// floating-point sum over stages — independent of which stages ran.
	for _, k := range JobKinds() {
		if rc.Reports[k] != nil {
			p.kinds = append(p.kinds, k)
		}
	}
	return p
}

// probeVCPUs sizes a stage's instrumentation: the requested instance's
// vCPU count, falling back to the job's own instance (a policy that
// requests "any" machine profiles at the job's nominal size) and then
// to a single vCPU.
func probeVCPUs(job *Job, req cloud.InstanceType) int {
	if req.VCPUs > 0 {
		return req.VCPUs
	}
	if job.Instance.VCPUs > 0 {
		return job.Instance.VCPUs
	}
	return 1
}

// jobMachine builds the cycle model of one instance type running one
// job's stages.
func jobMachine(job *Job, it cloud.InstanceType) perf.Machine {
	vcpus := it.VCPUs
	if vcpus <= 0 {
		vcpus = 1
	}
	m := perf.Xeon14(vcpus)
	if !it.AVX {
		m = m.WithoutAVX()
	}
	m.Interference = job.Interference
	m.WorkScale = job.WorkScale
	if m.WorkScale == 0 {
		m.WorkScale = 1
	}
	return m
}
