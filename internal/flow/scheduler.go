package flow

import (
	"context"
	"fmt"

	"edacloud/internal/aig"
	"edacloud/internal/cloud"
	"edacloud/internal/par"
	"edacloud/internal/perf"
	"edacloud/internal/techlib"
)

// Job is one flow to run on one rented cloud instance — the unit of
// the paper's deployment problem. The zero Instance is a free
// single-vCPU machine, useful in tests.
type Job struct {
	// Name labels the job in results.
	Name string
	// Design is the input AIG; the scheduler clones it per run, so one
	// graph may back many jobs.
	Design *aig.Graph
	// Lib is the technology library.
	Lib *techlib.Library
	// Options shape the job's pipeline. The scheduler prepends the
	// shared context and an instance-sized probe factory, so options
	// here override both (e.g. WithStages for a partial flow).
	Options []Option
	// Instance is the VM the job rents: its vCPU count and AVX
	// capability drive the simulated runtime, its price the bill.
	Instance cloud.InstanceType
	// DeadlineSec is the job's completion deadline in simulated
	// seconds; 0 means none.
	DeadlineSec float64
	// Interference is the multi-tenant slowdown on the job's host (see
	// cloud.Host.Interference); 0 means an idle host.
	Interference float64
	// WorkScale extrapolates simulated runtime to full design size;
	// 0 means 1 (no extrapolation).
	WorkScale float64
}

// JobResult is one job's outcome.
type JobResult struct {
	Name     string
	Instance cloud.InstanceType
	// Run holds the flow's artifacts; on error it carries whatever the
	// completed stages produced.
	Run *RunContext
	Err error
	// Seconds is the simulated runtime of the whole flow on the job's
	// instance.
	Seconds float64
	// CostUSD is the instance's per-second bill for that runtime.
	CostUSD float64
	// DeadlineMet reports whether the job finished within its deadline
	// (always false on error; true when no deadline was set).
	DeadlineMet bool
}

// Schedule aggregates a batch of jobs. All aggregates fold in job
// order, so they are identical for any scheduler worker count.
type Schedule struct {
	Jobs []JobResult
	// TotalCostUSD is the batch bill across all instances.
	TotalCostUSD float64
	// TotalCPUSeconds sums simulated runtime over instances (the
	// billed machine time).
	TotalCPUSeconds float64
	// MakespanSec is the slowest job's runtime — the batch completion
	// time, since every job runs on its own instance.
	MakespanSec float64
	// DeadlinesMissed counts jobs that finished past their deadline.
	DeadlinesMissed int
	// Failed counts jobs that returned an error.
	Failed int
}

// Scheduler runs independent flow jobs concurrently, each on its own
// simulated cloud instance — the multi-job deployment the paper
// optimizes for. Real host fan-out uses internal/par; simulated
// runtimes, costs and deadlines come from each job's instance model
// and are deterministic for any worker count.
type Scheduler struct {
	// Workers bounds how many jobs run concurrently on the real host;
	// 0 means GOMAXPROCS. Results are identical for every value.
	Workers int
}

// Run executes the jobs and returns the aggregated schedule. A
// cancelled context fails the jobs that have not started and is
// reported both per job and as the returned error.
func (s *Scheduler) Run(ctx context.Context, jobs []Job) (*Schedule, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	pool := par.Fixed(s.Workers)
	results := par.Map(pool, len(jobs), func(i int) JobResult {
		return runJob(ctx, jobs[i])
	})
	sched := &Schedule{Jobs: results}
	for i := range results {
		r := &results[i]
		sched.TotalCostUSD += r.CostUSD
		sched.TotalCPUSeconds += r.Seconds
		if r.Seconds > sched.MakespanSec {
			sched.MakespanSec = r.Seconds
		}
		if r.Err != nil {
			sched.Failed++
			continue
		}
		if !r.DeadlineMet {
			sched.DeadlinesMissed++
		}
	}
	return sched, ctx.Err()
}

// runJob executes one flow on its instance's machine model.
func runJob(ctx context.Context, job Job) JobResult {
	res := JobResult{Name: job.Name, Instance: job.Instance}
	if err := ctx.Err(); err != nil {
		res.Err = err
		return res
	}
	if job.Design == nil || job.Lib == nil {
		res.Err = fmt.Errorf("flow: job %q needs a design and a library", job.Name)
		return res
	}
	vcpus := job.Instance.VCPUs
	if vcpus <= 0 {
		vcpus = 1
	}
	estCells := EstimateCells(job.Design.NumAnds())
	opts := append([]Option{
		WithContext(ctx),
		WithNewProbe(func(JobKind) *perf.Probe { return NewJobProbe(vcpus, estCells) }),
	}, job.Options...)
	p := NewPipeline(opts...)
	rc, err := p.Run(job.Design.Clone(), job.Lib)
	res.Run = rc
	if err != nil {
		res.Err = err
		return res
	}

	m := perf.Xeon14(vcpus)
	if !job.Instance.AVX {
		m = m.WithoutAVX()
	}
	m.Interference = job.Interference
	m.WorkScale = job.WorkScale
	if m.WorkScale == 0 {
		m.WorkScale = 1
	}
	// Fixed kind order keeps the floating-point sum order independent
	// of which stages ran.
	for _, k := range JobKinds() {
		if r := rc.Reports[k]; r != nil {
			res.Seconds += m.Seconds(r)
		}
	}
	res.CostUSD = job.Instance.Cost(res.Seconds)
	res.DeadlineMet = job.DeadlineSec <= 0 || res.Seconds <= job.DeadlineSec
	return res
}
