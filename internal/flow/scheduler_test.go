package flow

import (
	"context"
	"math"
	"reflect"
	"testing"

	"edacloud/internal/cloud"
	"edacloud/internal/designs"
	"edacloud/internal/synth"
)

func batchJobs(t *testing.T) []Job {
	t.Helper()
	catalog := cloud.DefaultCatalog()
	var jobs []Job
	for i, spec := range []struct {
		design string
		family cloud.Family
		vcpus  int
	}{
		{"dyn_node", cloud.MemoryOptimized, 8},
		{"aes", cloud.GeneralPurpose, 4},
		{"ibex", cloud.MemoryOptimized, 2},
		{"ibex", cloud.ComputeOptimized, 8},
		{"aes", cloud.GeneralPurpose, 1},
	} {
		inst, err := catalog.Size(spec.family, spec.vcpus)
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, Job{
			Name:      spec.design,
			Design:    designs.MustEvalDesign(spec.design, testScale),
			Lib:       lib,
			Instance:  inst,
			WorkScale: 2e4,
			// Exercise both deadline outcomes without depending on
			// absolute magnitudes more than coarsely.
			DeadlineSec: float64(20 * (i + 1)),
		})
	}
	return jobs
}

// TestSchedulerDeterministicAcrossWorkers: the aggregate cost,
// makespan and every per-job runtime must be identical at any worker
// count — the scheduler analogue of the engines' determinism tests.
func TestSchedulerDeterministicAcrossWorkers(t *testing.T) {
	jobs := batchJobs(t)
	run := func(workers int) *Schedule {
		sched, err := (&Scheduler{Workers: workers}).Run(context.Background(), jobs)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return sched
	}
	want := run(1)
	if want.Failed != 0 {
		for _, j := range want.Jobs {
			if j.Err != nil {
				t.Fatalf("job %s failed: %v", j.Name, j.Err)
			}
		}
	}
	for _, w := range []int{2, 8} {
		got := run(w)
		if got.TotalCostUSD != want.TotalCostUSD ||
			got.TotalCPUSeconds != want.TotalCPUSeconds ||
			got.MakespanSec != want.MakespanSec ||
			got.DeadlinesMissed != want.DeadlinesMissed {
			t.Fatalf("workers=%d: aggregates differ: %+v vs %+v", w, got, want)
		}
		for i := range want.Jobs {
			g, s := got.Jobs[i], want.Jobs[i]
			if g.Name != s.Name || g.Seconds != s.Seconds || g.CostUSD != s.CostUSD || g.DeadlineMet != s.DeadlineMet {
				t.Fatalf("workers=%d: job %d differs: %+v vs %+v", w, i, g, s)
			}
			if !reflect.DeepEqual(g.Run.Timing, s.Run.Timing) {
				t.Fatalf("workers=%d: job %d artifacts differ", w, i)
			}
		}
	}
}

// TestSchedulerCostsAndDeadlines: per-job bills follow the instance's
// per-second pricing, aggregates fold consistently, and deadline
// bookkeeping matches the runtimes.
func TestSchedulerCostsAndDeadlines(t *testing.T) {
	jobs := batchJobs(t)
	sched, err := (&Scheduler{}).Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	if len(sched.Jobs) != len(jobs) {
		t.Fatalf("%d results for %d jobs", len(sched.Jobs), len(jobs))
	}
	var cost, secs, makespan float64
	missed := 0
	for i, j := range sched.Jobs {
		if j.Err != nil {
			t.Fatalf("job %s: %v", j.Name, j.Err)
		}
		if j.Seconds <= 0 {
			t.Fatalf("job %s: non-positive runtime", j.Name)
		}
		if want := j.Instance.Cost(j.Seconds); j.CostUSD != want {
			t.Fatalf("job %s: cost %g, want %g", j.Name, j.CostUSD, want)
		}
		if met := j.Seconds <= jobs[i].DeadlineSec; met != j.DeadlineMet {
			t.Fatalf("job %s: deadline %gs, runtime %gs, met=%v", j.Name, jobs[i].DeadlineSec, j.Seconds, j.DeadlineMet)
		}
		cost += j.CostUSD
		secs += j.Seconds
		makespan = math.Max(makespan, j.Seconds)
		if !j.DeadlineMet {
			missed++
		}
	}
	if sched.TotalCostUSD != cost || sched.TotalCPUSeconds != secs ||
		sched.MakespanSec != makespan || sched.DeadlinesMissed != missed {
		t.Fatalf("aggregates inconsistent: %+v", sched)
	}
	// The same design on a smaller instance must run longer: the
	// paper's whole premise that vCPU count is a price/runtime knob.
	var ibex2, ibex8 float64
	for _, j := range sched.Jobs {
		if j.Name != "ibex" {
			continue
		}
		switch j.Instance.VCPUs {
		case 2:
			ibex2 = j.Seconds
		case 8:
			ibex8 = j.Seconds
		}
	}
	if ibex8 >= ibex2 {
		t.Fatalf("8-vCPU run (%gs) not faster than 2-vCPU run (%gs)", ibex8, ibex2)
	}
}

// TestSchedulerPartialFlowJobs: jobs may carry their own pipeline
// options, e.g. a synthesis-only flow, and still get priced.
func TestSchedulerPartialFlowJobs(t *testing.T) {
	inst, err := cloud.DefaultCatalog().Size(cloud.GeneralPurpose, 4)
	if err != nil {
		t.Fatal(err)
	}
	jobs := []Job{{
		Name:      "synth-only",
		Design:    designs.MustEvalDesign("dyn_node", testScale),
		Lib:       lib,
		Options:   []Option{WithStages(Synthesis(synth.Options{}))},
		Instance:  inst,
		WorkScale: 2e4,
	}}
	sched, err := (&Scheduler{}).Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	j := sched.Jobs[0]
	if j.Err != nil {
		t.Fatal(j.Err)
	}
	if j.Run.Netlist == nil || j.Run.Timing != nil {
		t.Fatal("partial-flow job ran the wrong stages")
	}
	if j.Seconds <= 0 || j.CostUSD <= 0 {
		t.Fatalf("partial-flow job not priced: %+v", j)
	}
	if !j.DeadlineMet {
		t.Fatal("deadline-free job marked missed")
	}
}

// TestSchedulerFailures: invalid jobs and cancelled contexts are
// reported per job and in the aggregates without aborting the batch.
func TestSchedulerFailures(t *testing.T) {
	good := Job{
		Name:   "good",
		Design: designs.MustEvalDesign("dyn_node", testScale),
		Lib:    lib,
	}
	sched, err := (&Scheduler{}).Run(context.Background(), []Job{good, {Name: "no-design", Lib: lib}})
	if err != nil {
		t.Fatal(err)
	}
	if sched.Failed != 1 || sched.Jobs[1].Err == nil || sched.Jobs[0].Err != nil {
		t.Fatalf("failure bookkeeping wrong: %+v", sched)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sched, err = (&Scheduler{Workers: 1}).Run(ctx, []Job{good, good})
	if err == nil {
		t.Fatal("cancelled context not reported")
	}
	if sched.Failed != len(sched.Jobs) {
		t.Fatalf("cancelled jobs not failed: %+v", sched)
	}
}
