package flow

import (
	"fmt"

	"edacloud/internal/aig"
)

// HierarchicalBatch is one huge design split into schedulable
// sub-design jobs — the hierarchical flow mode that lets a
// million-gate design exploit design-level parallelism on a bounded
// fleet instead of saturating one machine. Each cone partition of the
// parent becomes a standalone aig.SubDesign wrapped in a plain Job, so
// every scheduler policy, the forecast machinery and the conformance
// invariants apply to hierarchical batches unchanged.
type HierarchicalBatch struct {
	// Design is the parent graph the batch was split from.
	Design *aig.Graph
	// Parts is the cone partitioning the split used.
	Parts *aig.ConePartitioning
	// Subs holds the extracted sub-designs, one per partition.
	Subs []aig.SubDesign
	// Jobs holds one flow job per sub-design, in partition order. The
	// scheduler returns results in job order, so Schedule.Jobs can be
	// passed to Stitch directly.
	Jobs []Job
}

// Hierarchical splits base.Design into cone partitions of roughly
// grain AND nodes (grain <= 0 means 256) and returns one job per
// partition, each inheriting base's library, options, instance and
// deadline. Job names are "<design>/p<NNN>" in partition order.
func Hierarchical(base Job, grain int) (*HierarchicalBatch, error) {
	if base.Design == nil {
		return nil, fmt.Errorf("flow: hierarchical batch needs a design")
	}
	g := base.Design
	cp := g.PartitionCones(grain)
	if cp.NumParts() == 0 {
		return nil, fmt.Errorf("flow: design %s has no output cones to partition", g.Name)
	}
	name := base.Name
	if name == "" {
		name = g.Name
	}
	subs := g.ExtractSubDesigns(cp)
	jobs := make([]Job, len(subs))
	for pi := range subs {
		j := base
		j.Name = fmt.Sprintf("%s/p%03d", name, pi)
		j.Design = subs[pi].Graph
		jobs[pi] = j
	}
	return &HierarchicalBatch{Design: g, Parts: cp, Subs: subs, Jobs: jobs}, nil
}

// Stitch reassembles the sub-design jobs' optimized AIGs into one
// design-level graph, in partition order. results must be parallel to
// Jobs (Schedule.Jobs is). Every job must have succeeded and run a
// synthesis stage, and each optimized graph must preserve its
// sub-design interface — which every synthesis pass does, so this only
// rejects flows that never synthesized or custom stages that reshaped
// the I/O.
func (hb *HierarchicalBatch) Stitch(results []JobResult) (*aig.Graph, error) {
	if len(results) != len(hb.Subs) {
		return nil, fmt.Errorf("flow: %d results for %d sub-designs", len(results), len(hb.Subs))
	}
	reworked := append([]aig.SubDesign(nil), hb.Subs...)
	for i := range results {
		r := &results[i]
		if r.Err != nil {
			return nil, fmt.Errorf("flow: sub-design job %s failed: %w", r.Name, r.Err)
		}
		var opt *aig.Graph
		if r.Run != nil {
			opt = r.Run.Optimized
		}
		if opt == nil {
			return nil, fmt.Errorf("flow: sub-design job %s produced no optimized AIG; hierarchical flows need a synthesis stage", r.Name)
		}
		sub := &hb.Subs[i]
		if opt.NumInputs() != len(sub.Imports) || opt.NumOutputs() != len(sub.Outputs)+len(sub.Exports) {
			return nil, fmt.Errorf("flow: sub-design job %s changed its interface: %d in/%d out, want %d/%d",
				r.Name, opt.NumInputs(), opt.NumOutputs(), len(sub.Imports), len(sub.Outputs)+len(sub.Exports))
		}
		reworked[i].Graph = opt
	}
	return aig.StitchSubDesigns(hb.Design, hb.Parts, reworked), nil
}
