package flow

import "edacloud/internal/perf"

// NewJobProbe builds the per-stage instrumentation for a VM of the
// given vCPU count profiling a design of roughly estCells instances.
// Cache capacities are sized relative to the design — 2.5 bytes of LLC
// slice per cell, mirroring the paper testbed's ratio of a
// 200k-instance design to a 2.5 MiB-per-core LLC — so
// working-set-to-cache ratios (the quantity behind its Fig. 2b) carry
// over from full-size runs to the reduced-scale simulation. The LLC
// gets one slice per vCPU, which is how cloud VMs inherit cache, and
// each engine's bounded hot window is half a slice.
func NewJobProbe(vcpus, estCells int) *perf.Probe {
	cfg := perf.DefaultProbeConfig()
	slice := estCells * 5 / 2
	if slice < 4<<10 {
		slice = 4 << 10
	}
	if slice > 8<<20 {
		slice = 8 << 20
	}
	cfg.LLCBytes = slice
	l1 := slice / 8
	if l1 < 512 {
		l1 = 512
	}
	if l1 > 32<<10 {
		l1 = 32 << 10
	}
	cfg.L1Bytes = l1
	cfg = cfg.WithLLCSlices(vcpus)
	p := perf.NewProbe(cfg)
	// Three hot regions per engine must together fit one LLC slice, as
	// real working windows fit a single core's cache.
	p.HotBytes = uint64(slice / 6)
	return p
}

// EstimateCells predicts mapped instance count from AIG size (the
// mapper covers roughly two AND nodes per cell).
func EstimateCells(ands int) int {
	c := ands / 2
	if c < 64 {
		c = 64
	}
	return c
}
