package flow

import (
	"context"
	"math"
	"reflect"
	"testing"

	"edacloud/internal/cloud"
)

// This file is the policy conformance suite: table-driven invariants
// every flow.Policy must satisfy, run through one shared harness so a
// future policy gets coverage by adding a single table entry. The
// invariants are the scheduler's load-bearing promises — a fleet
// instance never runs two leases at once, jobs are served FIFO within
// an instance type, the fleet ledger and the per-job bills agree, and
// the schedule is bit-identical at any worker count.

// conformanceCase is one policy under test: how to build its jobs and
// the fleet they contend for.
type conformanceCase struct {
	name      string
	policy    Policy
	fleetSpec string
	minBill   float64
	jobs      func(t *testing.T) []Job
}

// conformancePlan builds the shared stage plan and choice table the
// plan-driven policies run under: cheap planned types with faster
// upgrade candidates, deliberately contended on a small fleet.
func conformancePlan(t *testing.T) (StagePlan, StageChoices) {
	t.Helper()
	catalog := cloud.DefaultCatalog()
	plan := StagePlan{}
	choices := StageChoices{}
	for k, names := range map[JobKind][]string{
		JobSynthesis: {"gp.1x", "gp.8x"},
		JobPlacement: {"mem.1x", "mem.8x"},
		JobRouting:   {"mem.1x", "mem.8x"},
		JobSTA:       {"gp.1x", "gp.8x"},
	} {
		for i, name := range names {
			it, err := catalog.ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			if i == 0 {
				plan[k] = it
			}
			// Predicted runtimes scale down with size — plausible values
			// are all the invariants need.
			choices[k] = append(choices[k], StageOption{
				Type:    it,
				Seconds: 90 / float64(it.VCPUs),
				CostUSD: it.Cost(90 / float64(it.VCPUs)),
			})
		}
	}
	return plan, choices
}

func conformanceCases() []conformanceCase {
	planJobs := func(deadline float64) func(t *testing.T) []Job {
		return func(t *testing.T) []Job {
			plan, choices := conformancePlan(t)
			jobs := fleetJobs(t, 4)
			for i := range jobs {
				jobs[i].Plan = plan
				jobs[i].Choices = choices
				jobs[i].DeadlineSec = deadline
			}
			return jobs
		}
	}
	singleJobs := func(t *testing.T) []Job {
		jobs := fleetJobs(t, 4)
		inst, err := cloud.DefaultCatalog().ByName("mem.4x")
		if err != nil {
			t.Fatal(err)
		}
		for i := range jobs {
			jobs[i].Instance = inst
		}
		return jobs
	}
	return []conformanceCase{
		{name: "single-instance", policy: SingleInstance{}, fleetSpec: "mem.4x=2", jobs: singleJobs},
		{name: "single-instance-minbill", policy: SingleInstance{}, fleetSpec: "mem.4x=2", minBill: 60, jobs: singleJobs},
		{name: "first-fit", policy: FirstFit{}, fleetSpec: "gp.4x=1,mem.4x=1,cpu.2x=1", jobs: func(t *testing.T) []Job {
			return fleetJobs(t, 5)
		}},
		{name: "plan", policy: PlanPolicy{}, fleetSpec: "gp.1x=1,gp.8x=1,mem.1x=1,mem.8x=1", jobs: planJobs(0)},
		// A tight deadline forces the adaptive policy off-plan, so the
		// invariants cover its upgrade path, not just plan replay.
		{name: "adaptive", policy: AdaptivePolicy{}, fleetSpec: "gp.1x=1,gp.8x=1,mem.1x=1,mem.8x=1", jobs: planJobs(120)},
	}
}

// TestPolicyConformance runs every policy through the shared invariant
// harness.
func TestPolicyConformance(t *testing.T) {
	for _, tc := range conformanceCases() {
		t.Run(tc.name, func(t *testing.T) {
			catalog := cloud.DefaultCatalog()
			if tc.minBill > 0 {
				catalog = catalog.WithMinBill(tc.minBill)
			}
			fleet, err := cloud.ParseFleetSpec(catalog, tc.fleetSpec)
			if err != nil {
				t.Fatal(err)
			}
			jobs := tc.jobs(t)

			run := func(workers int) *Schedule {
				f := fleet.Clone()
				sched, err := (&Scheduler{Workers: workers, Fleet: f, Policy: tc.policy}).Run(context.Background(), jobs)
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				for _, j := range sched.Jobs {
					if j.Err != nil {
						t.Fatalf("workers=%d: job %s: %v", workers, j.Name, j.Err)
					}
				}
				return sched
			}

			want := run(1)
			checkNoLeaseOverlap(t, want)
			checkFIFOReadyOrder(t, want, tc.policy)
			checkLedgerConsistency(t, want)
			checkIdenticalSchedules(t, want, run)
		})
	}
}

// checkNoLeaseOverlap: no fleet instance ever runs two leases at once,
// and every lease lies within the schedule makespan.
func checkNoLeaseOverlap(t *testing.T, sched *Schedule) {
	t.Helper()
	for _, inst := range sched.Fleet.Instances {
		for i, l := range inst.Leases {
			if l.EndSec < l.StartSec {
				t.Fatalf("instance %s lease %d runs backwards: %+v", inst.ID, i, l)
			}
			if l.EndSec > sched.MakespanSec {
				t.Fatalf("instance %s lease %d ends at %g past makespan %g", inst.ID, i, l.EndSec, sched.MakespanSec)
			}
			if i > 0 && l.StartSec < inst.Leases[i-1].EndSec {
				t.Fatalf("instance %s leases overlap: %+v then %+v", inst.ID, inst.Leases[i-1], l)
			}
		}
	}
}

// checkFIFOReadyOrder: among placements queueing for the same instance
// type (or for any machine, under an untyped policy), a stage that
// became ready strictly earlier never starts later. Holding policies
// acquire once per job, so only their first stage is an acquisition.
func checkFIFOReadyOrder(t *testing.T, sched *Schedule, policy Policy) {
	t.Helper()
	type acquisition struct {
		job, stage string
		key        string
		ready      float64
		start      float64
	}
	var acqs []acquisition
	untyped := false
	if _, ok := policy.(FirstFit); ok {
		untyped = true
	}
	for _, j := range sched.Jobs {
		for s, st := range j.Stages {
			if !policy.ReInstance() && s > 0 {
				continue // held machine: no queueing after the first stage
			}
			key := st.Type.Name
			if untyped {
				key = ""
			}
			acqs = append(acqs, acquisition{
				job: j.Name, stage: st.Kind.String(), key: key,
				ready: st.StartSec - st.WaitSec, start: st.StartSec,
			})
		}
	}
	for i, a := range acqs {
		for _, b := range acqs[i+1:] {
			if a.key != b.key {
				continue
			}
			if a.ready < b.ready && a.start > b.start {
				t.Fatalf("FIFO violated on %q: %s/%s ready %g started %g after %s/%s ready %g started %g",
					a.key, a.job, a.stage, a.ready, a.start, b.job, b.stage, b.ready, b.start)
			}
			if b.ready < a.ready && b.start > a.start {
				t.Fatalf("FIFO violated on %q: %s/%s ready %g started %g after %s/%s ready %g started %g",
					b.key, b.job, b.stage, b.ready, b.start, a.job, a.stage, a.ready, a.start)
			}
		}
	}
}

// checkLedgerConsistency: the fleet ledger, the schedule total, the
// per-job bills and the per-stage bills all tell one story.
func checkLedgerConsistency(t *testing.T, sched *Schedule) {
	t.Helper()
	var jobSum float64
	for _, j := range sched.Jobs {
		var stageSum float64
		for _, st := range j.Stages {
			if st.CostUSD < 0 || st.Seconds < 0 || st.WaitSec < 0 {
				t.Fatalf("job %s stage %s negative accounting: %+v", j.Name, st.Kind, st)
			}
			stageSum += st.CostUSD
		}
		if math.Abs(stageSum-j.CostUSD) > 1e-9 {
			t.Fatalf("job %s bills %g, stages sum to %g", j.Name, j.CostUSD, stageSum)
		}
		jobSum += j.CostUSD
	}
	if math.Abs(jobSum-sched.TotalCostUSD) > 1e-9 {
		t.Fatalf("schedule bills %g, jobs sum to %g", sched.TotalCostUSD, jobSum)
	}
	if got := sched.Fleet.TotalCostUSD(); math.Abs(got-sched.TotalCostUSD) > 1e-9 {
		t.Fatalf("fleet ledger %g, schedule bill %g", got, sched.TotalCostUSD)
	}
	var leaseSum float64
	for _, inst := range sched.Fleet.Instances {
		for _, l := range inst.Leases {
			leaseSum += l.CostUSD
		}
	}
	if math.Abs(leaseSum-sched.TotalCostUSD) > 1e-9 {
		t.Fatalf("leases bill %g, schedule %g", leaseSum, sched.TotalCostUSD)
	}
}

// checkIdenticalSchedules: the whole schedule — every placement, bill
// and aggregate — is bit-identical at workers 1, 2 and 8.
func checkIdenticalSchedules(t *testing.T, want *Schedule, run func(int) *Schedule) {
	t.Helper()
	for _, w := range []int{2, 8} {
		got := run(w)
		if got.TotalCostUSD != want.TotalCostUSD ||
			got.TotalCPUSeconds != want.TotalCPUSeconds ||
			got.MakespanSec != want.MakespanSec ||
			got.TotalWaitSec != want.TotalWaitSec ||
			got.UtilizationPct != want.UtilizationPct ||
			got.DeadlinesMissed != want.DeadlinesMissed {
			t.Fatalf("workers=%d: aggregates differ", w)
		}
		for i := range want.Jobs {
			g, s := got.Jobs[i], want.Jobs[i]
			if g.Seconds != s.Seconds || g.CostUSD != s.CostUSD ||
				g.StartSec != s.StartSec || g.FinishSec != s.FinishSec || g.WaitSec != s.WaitSec {
				t.Fatalf("workers=%d: job %d differs: %+v vs %+v", w, i, g, s)
			}
			if !reflect.DeepEqual(g.Stages, s.Stages) {
				t.Fatalf("workers=%d: job %d placements differ:\n%+v\n%+v", w, i, g.Stages, s.Stages)
			}
		}
	}
}

// TestAdaptiveConformanceUpgrades: the adaptive table entry must
// actually exercise the upgrade path — otherwise the suite is only
// re-testing PlanPolicy under another name.
func TestAdaptiveConformanceUpgrades(t *testing.T) {
	var tc conformanceCase
	for _, c := range conformanceCases() {
		if c.name == "adaptive" {
			tc = c
		}
	}
	if tc.name == "" {
		t.Fatal("no adaptive conformance case")
	}
	fleet, err := cloud.ParseFleetSpec(cloud.DefaultCatalog(), tc.fleetSpec)
	if err != nil {
		t.Fatal(err)
	}
	jobs := tc.jobs(t)
	sched, err := (&Scheduler{Fleet: fleet, Policy: tc.policy}).Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	upgrades := 0
	for i, j := range sched.Jobs {
		if j.Err != nil {
			t.Fatal(j.Err)
		}
		for _, st := range j.Stages {
			if st.Type.Name != jobs[i].Plan[st.Kind].Name {
				upgrades++
			}
		}
	}
	if upgrades == 0 {
		t.Fatal("adaptive conformance case never upgrades; tighten its deadline")
	}
}
